// Cache-friendly two-phase matching (paper Fig. 9).
//
//   CacheFriendlyFindMatching(G):
//     1. Partition G into g[1..p].
//     2. m[i] = FindMatching(g[i], {})        // sub-problem fits cache
//     3. M = UnionAll(m)
//     4. M = FindMatching(G, M)               // finish globally
//
// Phase 2's per-part sub-graphs are materialized as compact CSRs with
// local vertex ids, so each sub-problem's working set really is
// O(part size) — that reduced working set is where the paper's 2x-4x
// comes from. In the best case (maximum matching already found locally)
// total processor-memory traffic is O(N+E).
#pragma once

#include <algorithm>
#include <vector>

#if defined(CACHEGRAPH_HAVE_OPENMP)
#include <omp.h>
#endif

#include "cachegraph/matching/matching.hpp"
#include "cachegraph/matching/partition.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/obs/trace.hpp"

namespace cachegraph::matching {

struct TwoPhaseStats {
  std::size_t local_matched = 0;       ///< |M| after the union (phase 1 output)
  std::size_t final_matched = 0;       ///< |M| at the end
  std::uint64_t global_searches = 0;   ///< BFS invocations in phase 2
  std::uint64_t global_augmentations = 0;
  std::size_t largest_subproblem_bytes = 0;
};

/// Runs the two-phase algorithm on `g` under `partition`; returns the
/// maximum matching in `out`.
///
/// `use_primitive_search` selects the Fig. 8 full-reset FindMatching
/// for both phases instead of the timestamped engine — the benches use
/// it so baseline and optimized run the *same* search code, exactly as
/// in the paper (where the optimization is the partitioning, not the
/// search internals).
template <memsim::MemPolicy Mem = memsim::NullMem>
TwoPhaseStats cache_friendly_matching(const graph::BipartiteGraph& g,
                                      const Partition& partition, Matching& out,
                                      Mem mem = Mem{}, bool use_primitive_search = false) {
  CG_CHECK(partition.left_part.size() == static_cast<std::size_t>(g.left) &&
               partition.right_part.size() == static_cast<std::size_t>(g.right),
           "partition does not fit graph");
  TwoPhaseStats stats;
  out = Matching::empty(g.left, g.right);

  // ---- Phase 1: local matchings on compact per-part sub-graphs.
  // All sub-graphs are materialized in ONE pass over vertices and one
  // pass over edges (O(N+E) total partitioning work, as in the paper),
  // then each compact sub-problem is solved while it is cache-hot.
  const std::uint8_t parts = partition.parts;
  std::vector<graph::BipartiteGraph> subs(parts);
  std::vector<std::vector<vertex_t>> lmap(parts), rmap(parts);
  std::vector<vertex_t> llocal(static_cast<std::size_t>(g.left));
  std::vector<vertex_t> rlocal(static_cast<std::size_t>(g.right));
  {
    CG_TRACE_SPAN("matching.phase1.partition");
    for (vertex_t l = 0; l < g.left; ++l) {
      const std::uint8_t p = partition.left_part[static_cast<std::size_t>(l)];
      llocal[static_cast<std::size_t>(l)] = static_cast<vertex_t>(lmap[p].size());
      lmap[p].push_back(l);
    }
    for (vertex_t r = 0; r < g.right; ++r) {
      const std::uint8_t p = partition.right_part[static_cast<std::size_t>(r)];
      rlocal[static_cast<std::size_t>(r)] = static_cast<vertex_t>(rmap[p].size());
      rmap[p].push_back(r);
    }
    for (const auto& [l, r] : g.edges) {
      const std::uint8_t p = partition.left_part[static_cast<std::size_t>(l)];
      if (p == partition.right_part[static_cast<std::size_t>(r)]) {
        subs[p].edges.emplace_back(llocal[static_cast<std::size_t>(l)],
                                   rlocal[static_cast<std::size_t>(r)]);
      }
    }
  }

  {
    CG_TRACE_SPAN("matching.phase1.local");
    for (std::uint8_t part = 0; part < parts; ++part) {
      graph::BipartiteGraph& sub = subs[part];
      sub.left = static_cast<vertex_t>(lmap[part].size());
      sub.right = static_cast<vertex_t>(rmap[part].size());
      if (sub.left == 0 || sub.edges.empty()) continue;

      CG_COUNTER_INC("matching.local_subproblems");
      const BipartiteCsr sub_rep(sub);
      stats.largest_subproblem_bytes =
          std::max(stats.largest_subproblem_bytes, sub_rep.footprint_bytes());
      Matching local = Matching::empty(sub.left, sub.right);
      if (use_primitive_search) {
        primitive_matching(sub_rep, local, mem);
      } else {
        max_bipartite_matching(sub_rep, local, mem);
      }

      // ---- UnionAll: copy local matches back in global ids.
      for (vertex_t ll = 0; ll < sub.left; ++ll) {
        const vertex_t lr = local.match_left[static_cast<std::size_t>(ll)];
        if (lr == kNoVertex) continue;
        const vertex_t gl = lmap[part][static_cast<std::size_t>(ll)];
        const vertex_t gr = rmap[part][static_cast<std::size_t>(lr)];
        out.match_left[static_cast<std::size_t>(gl)] = gr;
        out.match_right[static_cast<std::size_t>(gr)] = gl;
      }
    }
  }
  stats.local_matched = out.size();
  CG_COUNTER_ADD("matching.local_matched", stats.local_matched);

  // ---- Phase 2: finish on the whole graph starting from the union.
  CG_TRACE_SPAN("matching.phase2.global");
  const BipartiteCsr full(g);
  const MatchingStats global = use_primitive_search
                                   ? primitive_matching(full, out, mem)
                                   : max_bipartite_matching(full, out, mem);
  stats.global_searches = global.searches;
  stats.global_augmentations = global.augmentations;
  stats.final_matched = out.size();
  CG_COUNTER_ADD("matching.global_searches", global.searches);
  CG_COUNTER_ADD("matching.global_augmentations", global.augmentations);
  return stats;
}

/// Parallel two-phase matching — the Conclusion's future-work item
/// ("our matching implementation can easily be transformed into
/// parallel code. Since computation and data are already decomposed").
/// The per-part local matchings are independent, so phase 1 runs under
/// OpenMP; the union and the global finish are sequential. Produces the
/// same maximum cardinality as the sequential version.
inline TwoPhaseStats cache_friendly_matching_parallel(const graph::BipartiteGraph& g,
                                                      const Partition& partition,
                                                      Matching& out, int num_threads = 0) {
  CG_CHECK(partition.left_part.size() == static_cast<std::size_t>(g.left) &&
               partition.right_part.size() == static_cast<std::size_t>(g.right),
           "partition does not fit graph");
  TwoPhaseStats stats;
  out = Matching::empty(g.left, g.right);

  const std::uint8_t parts = partition.parts;
  std::vector<graph::BipartiteGraph> subs(parts);
  std::vector<std::vector<vertex_t>> lmap(parts), rmap(parts);
  std::vector<vertex_t> llocal(static_cast<std::size_t>(g.left));
  std::vector<vertex_t> rlocal(static_cast<std::size_t>(g.right));
  for (vertex_t l = 0; l < g.left; ++l) {
    const std::uint8_t p = partition.left_part[static_cast<std::size_t>(l)];
    llocal[static_cast<std::size_t>(l)] = static_cast<vertex_t>(lmap[p].size());
    lmap[p].push_back(l);
  }
  for (vertex_t r = 0; r < g.right; ++r) {
    const std::uint8_t p = partition.right_part[static_cast<std::size_t>(r)];
    rlocal[static_cast<std::size_t>(r)] = static_cast<vertex_t>(rmap[p].size());
    rmap[p].push_back(r);
  }
  for (const auto& [l, r] : g.edges) {
    const std::uint8_t p = partition.left_part[static_cast<std::size_t>(l)];
    if (p == partition.right_part[static_cast<std::size_t>(r)]) {
      subs[p].edges.emplace_back(llocal[static_cast<std::size_t>(l)],
                                 rlocal[static_cast<std::size_t>(r)]);
    }
  }

#if defined(CACHEGRAPH_HAVE_OPENMP)
  if (num_threads > 0) omp_set_num_threads(num_threads);
#else
  (void)num_threads;
#endif

  std::vector<Matching> locals(parts);
#if defined(CACHEGRAPH_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
  for (int part = 0; part < static_cast<int>(parts); ++part) {
    graph::BipartiteGraph& sub = subs[static_cast<std::size_t>(part)];
    sub.left = static_cast<vertex_t>(lmap[static_cast<std::size_t>(part)].size());
    sub.right = static_cast<vertex_t>(rmap[static_cast<std::size_t>(part)].size());
    locals[static_cast<std::size_t>(part)] = Matching::empty(sub.left, sub.right);
    if (sub.left == 0 || sub.edges.empty()) continue;
    const BipartiteCsr sub_rep(sub);
    max_bipartite_matching(sub_rep, locals[static_cast<std::size_t>(part)]);
  }

  for (std::uint8_t part = 0; part < parts; ++part) {
    const Matching& local = locals[part];
    for (std::size_t ll = 0; ll < local.match_left.size(); ++ll) {
      const vertex_t lr = local.match_left[ll];
      if (lr == kNoVertex) continue;
      const vertex_t gl = lmap[part][ll];
      const vertex_t gr = rmap[part][static_cast<std::size_t>(lr)];
      out.match_left[static_cast<std::size_t>(gl)] = gr;
      out.match_right[static_cast<std::size_t>(gr)] = gl;
    }
  }
  stats.local_matched = out.size();

  const BipartiteCsr full(g);
  const MatchingStats global = max_bipartite_matching(full, out);
  stats.global_searches = global.searches;
  stats.global_augmentations = global.augmentations;
  stats.final_matched = out.size();
  return stats;
}

/// Convenience baseline: single-phase matching over the whole graph
/// with the given representation (what the two-phase variant is
/// benchmarked against).
template <BipartiteRep Rep, memsim::MemPolicy Mem = memsim::NullMem>
Matching baseline_matching(const Rep& g, Mem mem = Mem{}) {
  Matching m = Matching::empty(g.left_vertices(), g.right_vertices());
  max_bipartite_matching(g, m, mem);
  return m;
}

}  // namespace cachegraph::matching
