// Graph partitioning for the two-phase matching algorithm (Section 3.3).
//
// A partition assigns every left and right vertex a part id in [0, p).
// Phase 1 of the cache-friendly matching only sees edges whose two
// endpoints share a part.
//
// Two schemes:
//   - chunk_partition: "arbitrary" index-range chunks (the baseline the
//     paper starts from, and what its worst-case experiment defeats).
//   - two_way_partition: the paper's linear-time partitioner — split
//     vertices arbitrarily into 4 equal parts, count edges between each
//     pair of parts, then combine parts pairwise into 2 groups so as
//     many edges as possible become internal.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/graph/generators.hpp"

namespace cachegraph::matching {

struct Partition {
  std::vector<std::uint8_t> left_part;   ///< part id per left vertex
  std::vector<std::uint8_t> right_part;  ///< part id per right vertex
  std::uint8_t parts = 1;

  /// Edges with both endpoints in the same part.
  [[nodiscard]] index_t internal_edges(const graph::BipartiteGraph& g) const {
    index_t internal = 0;
    for (const auto& [l, r] : g.edges) {
      internal += (left_part[static_cast<std::size_t>(l)] ==
                   right_part[static_cast<std::size_t>(r)]);
    }
    return internal;
  }
};

/// Index-range chunks: part k holds left vertices [k*L/p, (k+1)*L/p)
/// and the analogous right range.
[[nodiscard]] Partition chunk_partition(const graph::BipartiteGraph& g, std::uint8_t parts);

/// The paper's linear-time two-way edge partitioner. Returns a 2-part
/// partition that maximizes internal edges over the three ways of
/// pairing the 4 arbitrary chunks.
[[nodiscard]] Partition two_way_partition(const graph::BipartiteGraph& g);

/// Recursive bisection into 2^levels parts, applying two_way_partition
/// to each side's induced subgraph (extension beyond the paper's p=2
/// experiments).
[[nodiscard]] Partition recursive_partition(const graph::BipartiteGraph& g, int levels);

}  // namespace cachegraph::matching
