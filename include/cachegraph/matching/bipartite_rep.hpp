// Bipartite graph representations for the matching algorithms.
//
// Mirrors the Section 3.2 story inside Section 3.3: the breadth-first
// search for augmenting paths streams over each left vertex's
// neighbours, so the contiguous adjacency array (BipartiteCsr) beats
// the pointer-chasing list (BipartiteList) — that swap is the paper's
// *first* matching optimization; the two-phase algorithm is the second.
//
// Unlike the weighted GraphRep interface, neighbour callbacks here may
// return false to stop early (an augmenting BFS stops as soon as it
// reaches a free vertex).
#pragma once

#include <numeric>
#include <vector>

#include "cachegraph/common/rng.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/generators.hpp"
#include "cachegraph/memsim/mem_policy.hpp"

namespace cachegraph::matching {

/// CSR over left vertices: neighbours of left vertex l are the
/// contiguous run targets_[offsets_[l] .. offsets_[l+1]).
class BipartiteCsr {
 public:
  explicit BipartiteCsr(const graph::BipartiteGraph& g) : left_(g.left), right_(g.right) {
    const auto nl = static_cast<std::size_t>(g.left);
    offsets_.assign(nl + 1, 0);
    for (const auto& [l, r] : g.edges) {
      (void)r;
      ++offsets_[static_cast<std::size_t>(l) + 1];
    }
    for (std::size_t v = 0; v < nl; ++v) offsets_[v + 1] += offsets_[v];
    targets_.resize(g.edges.size());
    std::vector<index_t> fill(offsets_.begin(), offsets_.end() - 1);
    for (const auto& [l, r] : g.edges) {
      targets_[static_cast<std::size_t>(fill[static_cast<std::size_t>(l)]++)] = r;
    }
  }

  [[nodiscard]] vertex_t left_vertices() const noexcept { return left_; }
  [[nodiscard]] vertex_t right_vertices() const noexcept { return right_; }
  [[nodiscard]] index_t num_edges() const noexcept {
    return static_cast<index_t>(targets_.size());
  }

  /// fn(right_vertex) -> bool; return false to stop the scan.
  template <memsim::MemPolicy Mem, typename Fn>
  void for_neighbors(vertex_t l, Mem& mem, Fn&& fn) const {
    const auto u = static_cast<std::size_t>(l);
    mem.read(&offsets_[u]);
    mem.read(&offsets_[u + 1]);
    const vertex_t* first = targets_.data() + offsets_[u];
    const vertex_t* last = targets_.data() + offsets_[u + 1];
    for (const vertex_t* p = first; p != last; ++p) {
      mem.read(p);
      if (!fn(*p)) return;
    }
  }

  template <memsim::MemPolicy Mem>
  void map_buffers(Mem& mem) const {
    if constexpr (Mem::tracing) {
      mem.map_buffer(offsets_.data(), offsets_.size() * sizeof(index_t));
      mem.map_buffer(targets_.data(), targets_.size() * sizeof(vertex_t));
    }
  }

  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return offsets_.size() * sizeof(index_t) + targets_.size() * sizeof(vertex_t);
  }

 private:
  vertex_t left_;
  vertex_t right_;
  std::vector<index_t> offsets_;
  std::vector<vertex_t> targets_;
};

/// Linked-list representation — the baseline the CSR replaces. Node
/// placement defaults to allocation order (a freshly built list); pass
/// a non-zero seed to scatter nodes (long-lived-heap adversarial case).
class BipartiteList {
 public:
  explicit BipartiteList(const graph::BipartiteGraph& g, std::uint64_t placement_seed = 0)
      : left_(g.left),
        right_(g.right),
        pool_(g.edges.size()),
        heads_(static_cast<std::size_t>(g.left), nullptr) {
    const auto m = g.edges.size();
    std::vector<std::size_t> slot(m);
    std::iota(slot.begin(), slot.end(), std::size_t{0});
    if (placement_seed != 0) {
      Rng rng(placement_seed);
      shuffle(slot.begin(), slot.end(), rng);
    }
    for (std::size_t idx = m; idx-- > 0;) {
      const auto& [l, r] = g.edges[idx];
      Node& node = pool_[slot[idx]];
      node = Node{r, heads_[static_cast<std::size_t>(l)]};
      heads_[static_cast<std::size_t>(l)] = &node;
    }
  }

  [[nodiscard]] vertex_t left_vertices() const noexcept { return left_; }
  [[nodiscard]] vertex_t right_vertices() const noexcept { return right_; }
  [[nodiscard]] index_t num_edges() const noexcept { return static_cast<index_t>(pool_.size()); }

  template <memsim::MemPolicy Mem, typename Fn>
  void for_neighbors(vertex_t l, Mem& mem, Fn&& fn) const {
    mem.read(&heads_[static_cast<std::size_t>(l)]);
    for (const Node* n = heads_[static_cast<std::size_t>(l)]; n != nullptr; n = n->next) {
      mem.read(n);
      if (!fn(n->to)) return;
    }
  }

  template <memsim::MemPolicy Mem>
  void map_buffers(Mem& mem) const {
    if constexpr (Mem::tracing) {
      mem.map_buffer(heads_.data(), heads_.size() * sizeof(Node*));
      mem.map_buffer(pool_.data(), pool_.size() * sizeof(Node));
    }
  }

  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return heads_.size() * sizeof(Node*) + pool_.size() * sizeof(Node);
  }

 private:
  struct Node {
    vertex_t to;
    const Node* next;
  };
  vertex_t left_;
  vertex_t right_;
  std::vector<Node> pool_;
  std::vector<const Node*> heads_;
};

template <typename R>
concept BipartiteRep = requires(const R r, vertex_t v, memsim::NullMem mem) {
  { r.left_vertices() } -> std::convertible_to<vertex_t>;
  { r.right_vertices() } -> std::convertible_to<vertex_t>;
  { r.num_edges() } -> std::convertible_to<index_t>;
  r.for_neighbors(v, mem, [](vertex_t) { return true; });
  r.map_buffers(mem);
};

static_assert(BipartiteRep<BipartiteCsr>);
static_assert(BipartiteRep<BipartiteList>);

}  // namespace cachegraph::matching
