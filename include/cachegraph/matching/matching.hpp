// Augmenting-path bipartite matching (paper Fig. 8).
//
// FindMatching(G, M): while an augmenting path exists, flip it. The
// search is the breadth-first search the paper describes; starting from
// a free left vertex it alternates unmatched/matched edges until it
// reaches a free right vertex. O(N*E) worst case.
//
// `max_bipartite_matching` accepts a starting matching — that is the
// hook the two-phase cache-friendly algorithm (Fig. 9) uses: pass the
// union of the sub-problem matchings and only the residual augmenting
// work remains.
#pragma once

#include <algorithm>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/matching/bipartite_rep.hpp"

namespace cachegraph::matching {

struct Matching {
  std::vector<vertex_t> match_left;   ///< match_left[l] = matched right vertex or kNoVertex
  std::vector<vertex_t> match_right;  ///< match_right[r] = matched left vertex or kNoVertex

  [[nodiscard]] static Matching empty(vertex_t left, vertex_t right) {
    Matching m;
    m.match_left.assign(static_cast<std::size_t>(left), kNoVertex);
    m.match_right.assign(static_cast<std::size_t>(right), kNoVertex);
    return m;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t s = 0;
    for (const vertex_t r : match_left) s += (r != kNoVertex);
    return s;
  }
};

struct MatchingStats {
  std::uint64_t searches = 0;       ///< BFS invocations
  std::uint64_t augmentations = 0;  ///< successful ones (|M| increments)
  std::uint64_t edges_scanned = 0;
};

namespace detail {

/// Tightened augmenting-BFS engine: one search per free left vertex,
/// timestamped visitation marks (O(1) reset), early exit at the first
/// free right vertex. This is the engine the library APIs use.
template <BipartiteRep Rep, memsim::MemPolicy Mem>
MatchingStats augmenting_bfs_matching(const Rep& g, Matching& m, Mem mem) {
  const auto nl = static_cast<std::size_t>(g.left_vertices());
  const auto nr = static_cast<std::size_t>(g.right_vertices());
  CG_CHECK(m.match_left.size() == nl && m.match_right.size() == nr,
           "matching arrays must match graph dimensions");

  if constexpr (Mem::tracing) {
    g.map_buffers(mem);
    mem.map_buffer(m.match_left.data(), nl * sizeof(vertex_t));
    mem.map_buffer(m.match_right.data(), nr * sizeof(vertex_t));
  }

  MatchingStats stats;
  std::vector<vertex_t> prev_right(nr, kNoVertex);  // BFS predecessor on the right side
  std::vector<std::uint32_t> visited(nr, 0);
  std::uint32_t stamp = 0;
  std::vector<vertex_t> queue;
  queue.reserve(nl);
  if constexpr (Mem::tracing) {
    mem.map_buffer(prev_right.data(), nr * sizeof(vertex_t));
    mem.map_buffer(visited.data(), nr * sizeof(std::uint32_t));
  }

  for (std::size_t start = 0; start < nl; ++start) {
    mem.read(&m.match_left[start]);
    if (m.match_left[start] != kNoVertex) continue;  // already matched
    ++stats.searches;
    ++stamp;
    queue.clear();
    queue.push_back(static_cast<vertex_t>(start));
    vertex_t found_free_right = kNoVertex;

    for (std::size_t qi = 0; qi < queue.size() && found_free_right == kNoVertex; ++qi) {
      const vertex_t l = queue[qi];
      mem.read(&queue[qi]);
      g.for_neighbors(l, mem, [&](vertex_t r) {
        const auto ur = static_cast<std::size_t>(r);
        ++stats.edges_scanned;
        mem.read(&visited[ur]);
        if (visited[ur] == stamp) return true;  // keep scanning
        visited[ur] = stamp;
        mem.write(&visited[ur]);
        prev_right[ur] = l;
        mem.write(&prev_right[ur]);
        mem.read(&m.match_right[ur]);
        if (m.match_right[ur] == kNoVertex) {
          found_free_right = r;  // augmenting path complete
          return false;
        }
        queue.push_back(m.match_right[ur]);  // continue through the matched edge
        return true;
      });
    }

    if (found_free_right != kNoVertex) {
      // Flip the alternating path back to `start`.
      vertex_t r = found_free_right;
      while (r != kNoVertex) {
        const auto ur = static_cast<std::size_t>(r);
        const vertex_t l = prev_right[ur];
        const auto ul = static_cast<std::size_t>(l);
        mem.read(&prev_right[ur]);
        const vertex_t next_r = m.match_left[ul];
        mem.read(&m.match_left[ul]);
        m.match_left[ul] = r;
        mem.write(&m.match_left[ul]);
        m.match_right[ur] = l;
        mem.write(&m.match_right[ur]);
        r = next_r;
      }
      ++stats.augmentations;
    }
  }
  return stats;
}

}  // namespace detail

/// Maximum-cardinality matching by repeated BFS augmentation, starting
/// from `m` (pass Matching::empty for the plain algorithm). Uses
/// timestamped visitation marks (cheap search resets) and stops each
/// search at the first free right vertex.
template <BipartiteRep Rep, memsim::MemPolicy Mem = memsim::NullMem>
MatchingStats max_bipartite_matching(const Rep& g, Matching& m, Mem mem = Mem{}) {
  return detail::augmenting_bfs_matching(g, m, mem);
}

/// The paper's Fig. 8 "primitive" FindMatching, as the 2002 baseline
/// would have been coded (Lawler's textbook algorithm): each iteration
/// clears its working arrays in full, runs a breadth-first search of
/// the entire alternating forest from *all* free left vertices, and
/// flips ONE augmenting path — giving the O(N*E) running time and the
/// access volumes the paper's Table 8 reports. This is the baseline for
/// the matching benches (Figs. 17-19, Table 8); the two-phase variant
/// runs this same routine over cache-sized sub-problems.
template <BipartiteRep Rep, memsim::MemPolicy Mem = memsim::NullMem>
MatchingStats primitive_matching(const Rep& g, Matching& m, Mem mem = Mem{}) {
  const auto nl = static_cast<std::size_t>(g.left_vertices());
  const auto nr = static_cast<std::size_t>(g.right_vertices());
  CG_CHECK(m.match_left.size() == nl && m.match_right.size() == nr,
           "matching arrays must match graph dimensions");
  if constexpr (Mem::tracing) {
    g.map_buffers(mem);
    mem.map_buffer(m.match_left.data(), nl * sizeof(vertex_t));
    mem.map_buffer(m.match_right.data(), nr * sizeof(vertex_t));
  }

  MatchingStats stats;
  std::vector<vertex_t> prev_right(nr, kNoVertex);
  std::vector<char> enqueued_left(nl, 0);
  std::vector<vertex_t> queue;
  queue.reserve(nl);
  if constexpr (Mem::tracing) {
    mem.map_buffer(prev_right.data(), nr * sizeof(vertex_t));
    mem.map_buffer(enqueued_left.data(), nl);
  }

  while (true) {
    ++stats.searches;
    // Full per-iteration reset — part of the primitive algorithm's cost.
    std::fill(prev_right.begin(), prev_right.end(), kNoVertex);
    std::fill(enqueued_left.begin(), enqueued_left.end(), 0);
    mem.write_range(prev_right.data(), nr);
    mem.write_range(enqueued_left.data(), nl);

    // Seed the BFS with every free left vertex.
    queue.clear();
    for (std::size_t l = 0; l < nl; ++l) {
      mem.read(&m.match_left[l]);
      if (m.match_left[l] == kNoVertex) {
        queue.push_back(static_cast<vertex_t>(l));
        enqueued_left[l] = 1;
      }
    }

    // One full BFS of the alternating forest (no early exit — the
    // primitive implementation completes its search).
    vertex_t found_free_right = kNoVertex;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const vertex_t l = queue[qi];
      g.for_neighbors(l, mem, [&](vertex_t r) {
        const auto ur = static_cast<std::size_t>(r);
        ++stats.edges_scanned;
        mem.read(&prev_right[ur]);
        if (prev_right[ur] != kNoVertex) return true;
        prev_right[ur] = l;
        mem.write(&prev_right[ur]);
        mem.read(&m.match_right[ur]);
        const vertex_t ml = m.match_right[ur];
        if (ml == kNoVertex) {
          if (found_free_right == kNoVertex) found_free_right = r;
        } else if (!enqueued_left[static_cast<std::size_t>(ml)]) {
          enqueued_left[static_cast<std::size_t>(ml)] = 1;
          mem.write(&enqueued_left[static_cast<std::size_t>(ml)]);
          queue.push_back(ml);
        }
        return true;
      });
    }

    if (found_free_right == kNoVertex) return stats;  // maximal: no augmenting path

    // Flip the single augmenting path back to its free left endpoint.
    vertex_t r = found_free_right;
    while (r != kNoVertex) {
      const auto ur = static_cast<std::size_t>(r);
      const vertex_t l = prev_right[ur];
      const auto ul = static_cast<std::size_t>(l);
      const vertex_t next_r = m.match_left[ul];
      m.match_left[ul] = r;
      mem.write(&m.match_left[ul]);
      m.match_right[ur] = l;
      mem.write(&m.match_right[ur]);
      r = next_r;
    }
    ++stats.augmentations;
  }
}

/// Independent oracle for tests: Kuhn's algorithm with DFS instead of
/// BFS (same maximum cardinality, different search order, no shared
/// code path with the BFS implementation).
template <BipartiteRep Rep>
Matching kuhn_dfs_matching(const Rep& g) {
  const auto nl = static_cast<std::size_t>(g.left_vertices());
  const auto nr = static_cast<std::size_t>(g.right_vertices());
  Matching m = Matching::empty(g.left_vertices(), g.right_vertices());
  std::vector<std::uint32_t> visited(nr, 0);
  std::uint32_t stamp = 0;
  memsim::NullMem mem;

  // Recursive try_kuhn via explicit lambda recursion.
  auto try_augment = [&](auto&& self, vertex_t l) -> bool {
    bool augmented = false;
    g.for_neighbors(l, mem, [&](vertex_t r) {
      const auto ur = static_cast<std::size_t>(r);
      if (visited[ur] == stamp) return true;
      visited[ur] = stamp;
      if (m.match_right[ur] == kNoVertex || self(self, m.match_right[ur])) {
        m.match_left[static_cast<std::size_t>(l)] = r;
        m.match_right[ur] = l;
        augmented = true;
        return false;
      }
      return true;
    });
    return augmented;
  };

  for (std::size_t l = 0; l < nl; ++l) {
    if (m.match_left[l] != kNoVertex) continue;
    ++stamp;
    try_augment(try_augment, static_cast<vertex_t>(l));
  }
  return m;
}

/// Validity check: every matched pair is a real edge and the matching
/// is an involution (match_left and match_right agree, no vertex used
/// twice).
template <BipartiteRep Rep>
[[nodiscard]] bool is_valid_matching(const Rep& g, const Matching& m) {
  const auto nl = static_cast<std::size_t>(g.left_vertices());
  const auto nr = static_cast<std::size_t>(g.right_vertices());
  if (m.match_left.size() != nl || m.match_right.size() != nr) return false;
  memsim::NullMem mem;
  for (std::size_t l = 0; l < nl; ++l) {
    const vertex_t r = m.match_left[l];
    if (r == kNoVertex) continue;
    if (r < 0 || static_cast<std::size_t>(r) >= nr) return false;
    if (m.match_right[static_cast<std::size_t>(r)] != static_cast<vertex_t>(l)) return false;
    bool edge_exists = false;
    g.for_neighbors(static_cast<vertex_t>(l), mem, [&](vertex_t to) {
      if (to == r) {
        edge_exists = true;
        return false;
      }
      return true;
    });
    if (!edge_exists) return false;
  }
  for (std::size_t r = 0; r < nr; ++r) {
    const vertex_t l = m.match_right[r];
    if (l == kNoVertex) continue;
    if (l < 0 || static_cast<std::size_t>(l) >= nl) return false;
    if (m.match_left[static_cast<std::size_t>(l)] != static_cast<vertex_t>(r)) return false;
  }
  return true;
}

}  // namespace cachegraph::matching
