// Retry with exponential backoff for transient failures.
//
// The engine reports RESOURCE_EXHAUSTED (scratch pool at capacity,
// injected alloc fault) and OVERLOADED (admission reject) as statuses
// rather than blocking, which moves the wait-or-give-up decision to
// the caller — and this helper is that decision, packaged: retry while
// the status is transient (see is_transient), sleeping
// initial_delay · multiplier^attempt, capped at max_delay, with
// deterministic seeded jitter so a thundering herd of identical
// clients still decorrelates (and so tests can assert the exact
// backoff schedule).
//
// The sleeper is a parameter: production uses sleep_for, tests pass a
// recorder and run the full schedule in microseconds of real time. A
// deadline bounds the whole loop — it is checked *before* each sleep
// (an expired budget never sleeps at all) and each sleep is clamped to
// the remaining budget, so the loop can overrun the deadline by at
// most one fn() call, never by a backoff delay. An optional
// CancelToken on the policy is polled at the same points: a fired
// token resolves CANCELLED immediately instead of sleeping through
// the rest of the schedule.
//
// Works over both shapes of fallible call:
//   Status        fn()   -> retry_status(...)  -> Status
//   Expected<T>   fn()   -> retry(...)         -> Expected<T>
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/rng.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/obs/trace.hpp"
#include "cachegraph/reliability/cancel.hpp"
#include "cachegraph/reliability/status.hpp"

namespace cachegraph::reliability {

struct BackoffPolicy {
  int max_attempts = 4;  ///< total calls, including the first
  std::chrono::microseconds initial_delay{200};
  double multiplier = 2.0;
  std::chrono::microseconds max_delay{50'000};
  /// Each delay is scaled by a factor drawn uniformly from
  /// [1 - jitter, 1 + jitter], deterministically from `seed`.
  double jitter = 0.25;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  Deadline deadline{};  ///< bounds the whole retry loop (none = unbounded)
  /// Polled before each sleep and between attempts; fired ⇒ CANCELLED
  /// immediately. Must outlive the retry call. Null = not cancellable.
  const CancelToken* cancel = nullptr;
};

namespace detail {

/// The pure backoff schedule (attempt 0 ⇒ delay before attempt 1).
[[nodiscard]] inline std::chrono::microseconds backoff_delay(const BackoffPolicy& p,
                                                             int attempt, Rng& rng) {
  double us = static_cast<double>(p.initial_delay.count());
  for (int i = 0; i < attempt; ++i) us *= p.multiplier;
  const double cap = static_cast<double>(p.max_delay.count());
  if (us > cap) us = cap;
  if (p.jitter > 0.0) {
    us *= 1.0 - p.jitter + 2.0 * p.jitter * rng.uniform01();
  }
  return std::chrono::microseconds(static_cast<std::int64_t>(us));
}

/// The scheduled delay, clamped to the deadline's remaining budget so
/// a sleep can never outlive the loop's time budget.
[[nodiscard]] inline std::chrono::microseconds clamp_to_deadline(
    std::chrono::microseconds delay, const Deadline& deadline) {
  if (!deadline.armed()) return delay;
  const auto left =
      std::chrono::duration_cast<std::chrono::microseconds>(deadline.remaining());
  return delay < left ? delay : left;
}

[[nodiscard]] inline bool cancel_fired(const BackoffPolicy& p) {
  return p.cancel != nullptr && p.cancel->cancelled();
}

[[nodiscard]] inline Status cancelled_status(int attempts_done, const Status& last) {
  return cancelled("retry cancelled after " + std::to_string(attempts_done) +
                   " attempt(s); last: " + last.to_string());
}

[[nodiscard]] inline Status deadline_status(int attempts_done, const Status& last) {
  CG_COUNTER_INC("reliability.retry.deadline_giveups");
  return deadline_exceeded("retry budget spent after " + std::to_string(attempts_done) +
                           " attempt(s); last: " + last.to_string());
}

}  // namespace detail

/// The default sleeper.
inline void sleep_for_backoff(std::chrono::microseconds d) {
  std::this_thread::sleep_for(d);
}

/// Retries `fn` (returning Status) on transient failure. Returns the
/// first non-transient status, the last transient one when attempts
/// run out, DEADLINE_EXCEEDED when the policy deadline expires between
/// attempts (checked before sleeping, and each sleep is clamped to the
/// remaining budget), or CANCELLED when the policy token fires.
template <typename Fn, typename Sleep = void (*)(std::chrono::microseconds)>
[[nodiscard]] Status retry_status(Fn&& fn, const BackoffPolicy& policy = {},
                                  Sleep&& sleep = sleep_for_backoff) {
  CG_CHECK(policy.max_attempts >= 1, "retry needs at least one attempt");
  Rng rng(policy.seed);
  Status last;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      CG_COUNTER_INC("reliability.retry.attempts");
      // The first attempt always runs; cancel/deadline only stop
      // retries — and they do so *before* the backoff sleep, so a
      // spent budget never sleeps at all.
      if (detail::cancel_fired(policy)) return detail::cancelled_status(attempt, last);
      if (policy.deadline.expired()) return detail::deadline_status(attempt, last);
      const auto delay = detail::clamp_to_deadline(
          detail::backoff_delay(policy, attempt - 1, rng), policy.deadline);
      {
        CG_TRACE_SPAN("reliability.retry.backoff");
        sleep(delay);
      }
      if (detail::cancel_fired(policy)) return detail::cancelled_status(attempt, last);
      if (policy.deadline.expired()) return detail::deadline_status(attempt, last);
    }
    last = fn();
    if (!is_transient(last.code())) return last;
  }
  CG_COUNTER_INC("reliability.retry.giveups");
  return last;
}

/// Expected<T> flavour: same schedule, first success or non-transient
/// failure wins.
template <typename Fn, typename Sleep = void (*)(std::chrono::microseconds)>
[[nodiscard]] auto retry(Fn&& fn, const BackoffPolicy& policy = {},
                         Sleep&& sleep = sleep_for_backoff) -> decltype(fn()) {
  using Result = decltype(fn());
  Result out = fn();
  if (out.has_value() || !is_transient(out.status().code())) return out;
  CG_CHECK(policy.max_attempts >= 1, "retry needs at least one attempt");
  Rng rng(policy.seed);
  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    CG_COUNTER_INC("reliability.retry.attempts");
    if (detail::cancel_fired(policy)) {
      return Result(detail::cancelled_status(attempt, out.status()));
    }
    if (policy.deadline.expired()) {
      return Result(detail::deadline_status(attempt, out.status()));
    }
    const auto delay = detail::clamp_to_deadline(
        detail::backoff_delay(policy, attempt - 1, rng), policy.deadline);
    {
      CG_TRACE_SPAN("reliability.retry.backoff");
      sleep(delay);
    }
    if (detail::cancel_fired(policy)) {
      return Result(detail::cancelled_status(attempt, out.status()));
    }
    if (policy.deadline.expired()) {
      return Result(detail::deadline_status(attempt, out.status()));
    }
    out = fn();
    if (out.has_value() || !is_transient(out.status().code())) return out;
  }
  CG_COUNTER_INC("reliability.retry.giveups");
  return out;
}

}  // namespace cachegraph::reliability
