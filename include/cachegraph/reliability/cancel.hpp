// Cooperative cancellation and deadlines for the serving stack.
//
// Nothing here preempts anything: a CancelToken is a flag the *work*
// polls at points it chooses (search_core checks every
// `Limits::check_every` settled vertices), which is the only
// cancellation model that composes with tight kernel loops — the
// kernel decides how often it can afford a flag load, and the
// worst-case cancellation latency is K settled vertices, measured in
// EXPERIMENTS.md.
//
// Tokens chain: a token constructed with a parent reports cancelled
// when either it or the parent fires. The query engine uses this to
// give every in-flight request its own token (so the shed admission
// policy can cancel one victim) parented on the caller's batch token
// (so cancelling the batch cancels everything) — one pointer chase per
// poll, no allocation, no registration list.
//
// A Deadline is an absolute steady_clock point (monotonic — wall-clock
// jumps must not time out requests). Default-constructed means "none":
// expired() is false forever and costs no clock read.
#pragma once

#include <atomic>
#include <chrono>

namespace cachegraph::reliability {

class CancelToken {
 public:
  CancelToken() = default;
  /// A token that also reports cancelled whenever `parent` does. The
  /// parent must outlive this token.
  explicit CancelToken(const CancelToken* parent) noexcept : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() noexcept { flag_.store(true, std::memory_order_release); }

  [[nodiscard]] bool cancelled() const noexcept {
    if (flag_.load(std::memory_order_acquire)) return true;
    return parent_ != nullptr && parent_->cancelled();
  }

  /// Re-arms this token (the parent's state is untouched). Only valid
  /// at quiescent points — no work may be polling it concurrently.
  void reset() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
  const CancelToken* parent_ = nullptr;
};

class Deadline {
 public:
  using clock = std::chrono::steady_clock;

  /// No deadline: never expires, never reads the clock.
  constexpr Deadline() = default;

  [[nodiscard]] static Deadline at(clock::time_point when) noexcept {
    Deadline d;
    d.when_ = when;
    d.armed_ = true;
    return d;
  }

  /// `after(0ns)` is the deadline-at-zero: already expired on arrival.
  [[nodiscard]] static Deadline after(clock::duration budget) noexcept {
    return at(clock::now() + budget);
  }

  [[nodiscard]] static constexpr Deadline none() noexcept { return Deadline(); }

  [[nodiscard]] constexpr bool armed() const noexcept { return armed_; }

  [[nodiscard]] bool expired() const noexcept {
    return armed_ && clock::now() >= when_;
  }

  /// Time left; zero when expired, clock::duration::max() when none.
  [[nodiscard]] clock::duration remaining() const noexcept {
    if (!armed_) return clock::duration::max();
    const auto now = clock::now();
    return now >= when_ ? clock::duration::zero() : when_ - now;
  }

  [[nodiscard]] constexpr clock::time_point when() const noexcept { return when_; }

 private:
  clock::time_point when_{};
  bool armed_ = false;
};

}  // namespace cachegraph::reliability
