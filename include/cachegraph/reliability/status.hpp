// cachegraph::reliability — the typed error model for the serving
// stack.
//
// CG_CHECK stays what it always was: a programmer-error tripwire that
// throws PreconditionError and should never fire in a healthy binary.
// Everything that can go wrong *in production traffic* — a malformed
// request, a deadline, a cancelled client, an overloaded engine, an
// exhausted scratch pool, a corrupt snapshot — is not a programmer
// error, and throwing for it makes every caller a try/catch chimney.
// Those paths return values instead:
//
//   Status       a code from the closed set below plus a human message;
//   Expected<T>  either a T or a non-OK Status (a poor man's
//                std::expected — the toolchain floor here is C++20).
//
// The code set is deliberately small and closed (gRPC-style): every
// query-path failure in this codebase maps onto one of these seven,
// and tests enumerate them exhaustively. Codes, not messages, are the
// contract — messages are for humans and logs.
//
//   kOk                 success
//   kInvalidArgument    request refused by validation (also: snapshot
//                       for a different graph / weight type)
//   kDeadlineExceeded   per-request or batch budget ran out
//   kCancelled          cancel token fired, a shed victim, or a task
//                       aborted by an exception before completing
//   kOverloaded         admission control rejected the request
//   kResourceExhausted  transient allocation failure (scratch pool at
//                       capacity, injected alloc fault, disk full) —
//                       the retryable code, see retry.hpp
//   kDataLoss           persisted state failed validation (truncated /
//                       corrupt snapshot); caller must rebuild
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "cachegraph/common/check.hpp"

namespace cachegraph::reliability {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kDeadlineExceeded = 2,
  kCancelled = 3,
  kOverloaded = 4,
  kResourceExhausted = 5,
  kDataLoss = 6,
};

[[nodiscard]] constexpr const char* to_string(StatusCode c) noexcept {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kOverloaded: return "OVERLOADED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "?";
}

/// True for codes a caller may retry verbatim and reasonably expect a
/// different answer (the condition is load, not the request itself).
[[nodiscard]] constexpr bool is_transient(StatusCode c) noexcept {
  return c == StatusCode::kResourceExhausted || c == StatusCode::kOverloaded;
}

class Status {
 public:
  /// Default-constructed Status is OK (so a Response's status field
  /// starts in the success state and only failures need assignment).
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "DEADLINE_EXCEEDED: batch budget spent" — for logs and test output.
  [[nodiscard]] std::string to_string() const {
    std::string out = reliability::to_string(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  /// Codes are the contract; messages are not compared.
  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Factory per code — call sites read as the outcome they report.
[[nodiscard]] inline Status invalid_argument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
[[nodiscard]] inline Status deadline_exceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
[[nodiscard]] inline Status cancelled(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}
[[nodiscard]] inline Status overloaded(std::string msg) {
  return Status(StatusCode::kOverloaded, std::move(msg));
}
[[nodiscard]] inline Status resource_exhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
[[nodiscard]] inline Status data_loss(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}

/// The exception form of kDataLoss, for the one place a Status cannot
/// flow: inside `for_neighbors`-style iteration, whose signature is
/// shared with in-memory graphs that cannot fail. OutOfCoreGraph
/// throws this when a block fails its read or checksum mid-scan; the
/// hardened query surfaces (try_serve / try_run) catch it and map it
/// back to a DATA_LOSS Status, so the exception never crosses the
/// serving boundary. The message names the failing block id.
class DataLossError : public std::runtime_error {
 public:
  explicit DataLossError(const std::string& what) : std::runtime_error(what) {}
};

/// Either a T or a non-OK Status. Constructing one from an OK status
/// is a programmer error (an OK Expected must carry a value).
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)), has_value_(true) {}  // NOLINT(google-explicit-constructor)

  Expected(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    CG_CHECK(!status_.is_ok(), "Expected built from an OK status must carry a value");
  }

  [[nodiscard]] bool has_value() const noexcept { return has_value_; }
  [[nodiscard]] explicit operator bool() const noexcept { return has_value_; }

  /// OK when a value is present, the failure otherwise.
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() {
    CG_CHECK(has_value_, "Expected::value() on a failed result");
    return value_;
  }
  [[nodiscard]] const T& value() const {
    CG_CHECK(has_value_, "Expected::value() on a failed result");
    return value_;
  }
  [[nodiscard]] T& operator*() { return value(); }
  [[nodiscard]] const T& operator*() const { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  [[nodiscard]] T value_or(T fallback) const {
    return has_value_ ? value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff has_value_
  T value_{};
  bool has_value_ = false;
};

}  // namespace cachegraph::reliability
