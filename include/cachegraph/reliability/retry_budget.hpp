// Token-bucket retry budget: the anti-retry-storm valve.
//
// Retrying a failed sub-operation (a portal probe against a sick
// replica, a hedged read) is only safe while failures are rare: when a
// whole shard goes dark, every request wants a second attempt at once
// and naive retries double the offered load exactly when capacity
// halved. The budget caps the *global* retry rate the way gRPC does:
// a bucket holds at most `capacity` tokens, each retry/hedge spends
// one, and each *success* earns back a small fraction
// (`refill_per_success`). In steady state retries are free; in a storm
// the bucket drains in `capacity` retries and stays empty until real
// successes refill it — so the retry rate is bounded at
// `refill_per_success` × success rate, a fixed overhead instead of an
// amplification factor.
//
// Lock-free: the balance is milli-tokens in one atomic, CAS to spend,
// saturating CAS to earn. Counters record grants/denials so chaos
// tests and bench scene 8 can prove the valve actually closed.
#pragma once

#include <atomic>
#include <cstdint>

#include "cachegraph/common/check.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::reliability {

/// Namespace-scope so `= {}` default arguments work in non-template
/// classes (aliased as RetryBudget::Config).
struct RetryBudgetConfig {
  /// Maximum banked tokens (= burst of retries tolerated at once).
  double capacity = 10.0;
  /// Tokens earned per reported success. 0.1 ⇒ at most one retry
  /// per ten successes once the bucket has drained.
  double refill_per_success = 0.1;
};

class RetryBudget {
 public:
  using Config = RetryBudgetConfig;

  struct Stats {
    std::uint64_t granted = 0;
    std::uint64_t denied = 0;
  };

  explicit RetryBudget(const Config& cfg = {}) : cfg_(cfg), milli_(to_milli(cfg.capacity)) {
    CG_CHECK(cfg.capacity >= 0.0, "retry budget capacity must be >= 0");
    CG_CHECK(cfg.refill_per_success >= 0.0, "retry budget refill must be >= 0");
  }

  RetryBudget(const RetryBudget&) = delete;
  RetryBudget& operator=(const RetryBudget&) = delete;

  /// Spend one token. False ⇒ the budget is exhausted and the caller
  /// must fail with what it has instead of retrying.
  [[nodiscard]] bool try_acquire() noexcept {
    std::int64_t cur = milli_.load(std::memory_order_relaxed);
    while (cur >= kMilli) {
      if (milli_.compare_exchange_weak(cur, cur - kMilli, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        granted_.fetch_add(1, std::memory_order_relaxed);
        CG_COUNTER_INC("reliability.retry_budget.granted");
        return true;
      }
    }
    denied_.fetch_add(1, std::memory_order_relaxed);
    CG_COUNTER_INC("reliability.retry_budget.denied");
    return false;
  }

  /// Report a success: earn refill_per_success tokens, saturating at
  /// capacity.
  void on_success() noexcept {
    const std::int64_t add = to_milli(cfg_.refill_per_success);
    if (add == 0) return;
    const std::int64_t cap = to_milli(cfg_.capacity);
    std::int64_t cur = milli_.load(std::memory_order_relaxed);
    while (true) {
      const std::int64_t next = cur + add > cap ? cap : cur + add;
      if (next == cur) return;
      if (milli_.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        return;
      }
    }
  }

  /// Current balance in whole-token units (observability only).
  [[nodiscard]] double tokens() const noexcept {
    return static_cast<double>(milli_.load(std::memory_order_relaxed)) /
           static_cast<double>(kMilli);
  }

  [[nodiscard]] Stats stats() const noexcept {
    return Stats{granted_.load(std::memory_order_relaxed),
                 denied_.load(std::memory_order_relaxed)};
  }

 private:
  static constexpr std::int64_t kMilli = 1000;

  [[nodiscard]] static std::int64_t to_milli(double tokens) noexcept {
    return static_cast<std::int64_t>(tokens * static_cast<double>(kMilli) + 0.5);
  }

  Config cfg_;
  std::atomic<std::int64_t> milli_;
  std::atomic<std::uint64_t> granted_{0};
  std::atomic<std::uint64_t> denied_{0};
};

}  // namespace cachegraph::reliability
