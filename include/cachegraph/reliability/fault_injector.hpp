// Deterministic, seeded fault injection for the chaos suite.
//
// A FaultInjector is armed with a FaultPlan (per-site probabilities +
// a seed) and then consulted from fixed *sites* compiled into the
// stack:
//
//   kAlloc          LeasePool::try_acquire — a would-be allocation
//                   fails as if memory were exhausted
//   kTaskThrow      QueryEngine::execute entry — the request's task
//                   dies with InjectedFault mid-service
//   kWorkerLatency  TaskPool's task wrapper — the worker stalls for
//                   plan.latency_spins dummy iterations (a slow disk,
//                   a page fault storm, a noisy neighbour)
//   kForceTimeout   the search core's periodic deadline poll — the
//                   clock "jumps" past the deadline
//
// Determinism: each site keeps a ticket counter; decision t at site s
// is a pure function hash(seed, s, t) < p. Thread scheduling decides
// which *request* draws ticket t, but the decision sequence per site
// is identical for a given seed — so a chaos run's fault density is
// reproducible even though its interleaving is not, which is exactly
// what a termination/safety suite needs (assert invariants, not
// schedules).
//
// The sites are compiled behind CACHEGRAPH_FAULT_INJECT (a CMake
// option): when off, CG_FAULT_FIRE expands to a constant false and
// CG_FAULT_LATENCY to nothing — the serving stack carries zero
// residue. When on but disarmed (the default at runtime), each site
// costs one relaxed atomic load.
//
// Threading contract: should_fire/maybe_latency are safe from any
// thread; arm/disarm must be externally quiesced (no traffic in
// flight) — they are test-harness controls, not a runtime API.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace cachegraph::reliability {

enum class FaultSite : std::uint8_t {
  kAlloc = 0,
  kTaskThrow = 1,
  kWorkerLatency = 2,
  kForceTimeout = 3,
};
inline constexpr std::size_t kNumFaultSites = 4;

[[nodiscard]] constexpr const char* to_string(FaultSite s) noexcept {
  switch (s) {
    case FaultSite::kAlloc: return "alloc";
    case FaultSite::kTaskThrow: return "task_throw";
    case FaultSite::kWorkerLatency: return "worker_latency";
    case FaultSite::kForceTimeout: return "force_timeout";
  }
  return "?";
}

/// What the kTaskThrow site throws: a distinct type so tests can tell
/// injected failures from real bugs.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  double alloc_fail = 0.0;
  double task_throw = 0.0;
  double worker_latency = 0.0;
  double force_timeout = 0.0;
  std::uint32_t latency_spins = 20'000;  ///< dummy iterations per latency hit

  [[nodiscard]] double probability(FaultSite s) const noexcept {
    switch (s) {
      case FaultSite::kAlloc: return alloc_fail;
      case FaultSite::kTaskThrow: return task_throw;
      case FaultSite::kWorkerLatency: return worker_latency;
      case FaultSite::kForceTimeout: return force_timeout;
    }
    return 0.0;
  }
};

class FaultInjector {
 public:
  struct SiteStats {
    std::uint64_t checks = 0;
    std::uint64_t fires = 0;
  };

  /// The process-wide injector the CG_FAULT_* sites consult.
  static FaultInjector& instance();

  /// Installs `plan` and starts firing. Resets ticket counters so the
  /// decision sequence restarts from ticket 0.
  void arm(const FaultPlan& plan);
  /// Stops firing (sites fall back to "never").
  void disarm();
  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_acquire);
  }

  /// Draws the next ticket for `site`; true when the fault fires.
  [[nodiscard]] bool should_fire(FaultSite site) noexcept;

  /// Burns plan.latency_spins iterations when the kWorkerLatency site
  /// fires (no-op while disarmed).
  void maybe_latency() noexcept;

  [[nodiscard]] SiteStats stats(FaultSite site) const noexcept;
  [[nodiscard]] std::uint64_t total_fires() const noexcept;

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  FaultPlan plan_;  ///< written while disarmed only
  std::array<std::atomic<std::uint64_t>, kNumFaultSites> tickets_{};
  std::array<std::atomic<std::uint64_t>, kNumFaultSites> fires_{};
};

}  // namespace cachegraph::reliability

#if defined(CACHEGRAPH_FAULT_INJECT)

/// True when the (armed) injector fires the next ticket at `site`.
#define CG_FAULT_FIRE(site) \
  (::cachegraph::reliability::FaultInjector::instance().should_fire(site))
/// Injected worker stall (no-op unless armed and the site fires).
#define CG_FAULT_LATENCY() \
  ::cachegraph::reliability::FaultInjector::instance().maybe_latency()

#else  // !CACHEGRAPH_FAULT_INJECT — sites vanish entirely.

#define CG_FAULT_FIRE(site) false
#define CG_FAULT_LATENCY() \
  do {                     \
  } while (false)

#endif  // CACHEGRAPH_FAULT_INJECT
