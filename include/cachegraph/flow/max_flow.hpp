// Maximum flow — the Conclusion's last extension: "the Ford-Fulkerson
// algorithm shares the same structure with the matching algorithm ...
// the optimization for the matching algorithm can be directly applied".
//
// Implementation: Edmonds-Karp (BFS augmenting paths) on a CSR residual
// graph with paired reverse edges — the flow-side analogue of the
// adjacency array. `bipartite_max_flow` wires a bipartite graph into a
// unit-capacity network, providing the classic max-flow == maximum
// matching cross-check used by the tests.
#pragma once

#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/edge_list.hpp"
#include "cachegraph/graph/generators.hpp"

namespace cachegraph::flow {

/// Residual network in CSR form: arc k and its reverse arc k^1 are
/// adjacent in the arc array (classic trick), so pushing flow touches
/// one cache line for both directions.
template <Weight W>
class FlowNetwork {
 public:
  explicit FlowNetwork(vertex_t num_vertices)
      : n_(num_vertices), heads_(static_cast<std::size_t>(num_vertices), -1) {
    CG_CHECK(num_vertices >= 0);
  }

  /// Adds arc u->v with capacity `cap` (and residual v->u with 0).
  void add_arc(vertex_t u, vertex_t v, W cap) {
    CG_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_ && cap >= W{0});
    arcs_.push_back(Arc{v, heads_[static_cast<std::size_t>(u)], cap});
    heads_[static_cast<std::size_t>(u)] = static_cast<index_t>(arcs_.size() - 1);
    arcs_.push_back(Arc{u, heads_[static_cast<std::size_t>(v)], W{0}});
    heads_[static_cast<std::size_t>(v)] = static_cast<index_t>(arcs_.size() - 1);
  }

  [[nodiscard]] vertex_t num_vertices() const noexcept { return n_; }

  /// Edmonds-Karp: O(V * E^2), returns the max-flow value from s to t.
  W max_flow(vertex_t s, vertex_t t) {
    CG_CHECK(s >= 0 && s < n_ && t >= 0 && t < n_ && s != t);
    W total{0};
    const auto un = static_cast<std::size_t>(n_);
    std::vector<index_t> in_arc(un);
    std::vector<vertex_t> queue;
    queue.reserve(un);
    std::vector<std::uint32_t> visited(un, 0);
    std::uint32_t stamp = 0;

    while (true) {
      // BFS for the shortest augmenting path.
      ++stamp;
      queue.clear();
      queue.push_back(s);
      visited[static_cast<std::size_t>(s)] = stamp;
      bool reached = false;
      for (std::size_t qi = 0; qi < queue.size() && !reached; ++qi) {
        const vertex_t u = queue[qi];
        for (index_t a = heads_[static_cast<std::size_t>(u)]; a >= 0;
             a = arcs_[static_cast<std::size_t>(a)].next) {
          const Arc& arc = arcs_[static_cast<std::size_t>(a)];
          const auto tv = static_cast<std::size_t>(arc.to);
          if (arc.residual <= W{0} || visited[tv] == stamp) continue;
          visited[tv] = stamp;
          in_arc[tv] = a;
          if (arc.to == t) {
            reached = true;
            break;
          }
          queue.push_back(arc.to);
        }
      }
      if (!reached) break;

      // Bottleneck along the path.
      W push = inf<W>();
      for (vertex_t v = t; v != s;) {
        const Arc& arc = arcs_[static_cast<std::size_t>(in_arc[static_cast<std::size_t>(v)])];
        push = arc.residual < push ? arc.residual : push;
        v = arcs_[static_cast<std::size_t>(in_arc[static_cast<std::size_t>(v)] ^ 1)].to;
      }
      // Apply.
      for (vertex_t v = t; v != s;) {
        const auto a = static_cast<std::size_t>(in_arc[static_cast<std::size_t>(v)]);
        arcs_[a].residual = static_cast<W>(arcs_[a].residual - push);
        arcs_[a ^ 1].residual = static_cast<W>(arcs_[a ^ 1].residual + push);
        v = arcs_[a ^ 1].to;
      }
      total = sat_add(total, push);
    }
    return total;
  }

  /// Current flow on the k-th *added* arc (in add_arc order).
  [[nodiscard]] W flow_on(std::size_t added_index) const {
    return arcs_[2 * added_index + 1].residual;  // reverse residual == pushed flow
  }

 private:
  struct Arc {
    vertex_t to;
    index_t next;  ///< next arc out of the same tail, -1 ends the chain
    W residual;
  };
  vertex_t n_;
  std::vector<index_t> heads_;
  std::vector<Arc> arcs_;
};

/// Maximum matching cardinality of a bipartite graph via unit-capacity
/// max-flow (source -> left -> right -> sink). The independent oracle
/// for the matching module.
inline std::size_t bipartite_max_flow(const graph::BipartiteGraph& g) {
  const vertex_t s = g.left + g.right;
  const vertex_t t = s + 1;
  FlowNetwork<std::int32_t> net(g.left + g.right + 2);
  for (vertex_t l = 0; l < g.left; ++l) net.add_arc(s, l, 1);
  for (vertex_t r = 0; r < g.right; ++r) net.add_arc(g.left + r, t, 1);
  for (const auto& [l, r] : g.edges) net.add_arc(l, g.left + r, 1);
  return static_cast<std::size_t>(net.max_flow(s, t));
}

}  // namespace cachegraph::flow
