// Graph traversals — BFS, DFS, connected components, Tarjan SCC — over
// any GraphRep. The paper's Conclusion: "graph traversals such as depth
// and breadth first search and algorithms built on top of those, such
// as finding strongly connected components, can also benefit from our
// data layout optimization" — these templates make that claim testable
// (bench_ablation_traversal) because the representation is a parameter.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "cachegraph/graph/concepts.hpp"

namespace cachegraph::traversal {

struct BfsResult {
  std::vector<index_t> depth;     ///< -1 if unreached
  std::vector<vertex_t> parent;
  std::vector<vertex_t> order;    ///< visit order
};

template <graph::GraphRep G, memsim::MemPolicy Mem = memsim::NullMem>
BfsResult bfs(const G& g, vertex_t source, Mem mem = Mem{}) {
  using W = typename G::weight_type;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  CG_CHECK(source >= 0 && static_cast<std::size_t>(source) < n, "source out of range");
  BfsResult r;
  r.depth.assign(n, -1);
  r.parent.assign(n, kNoVertex);
  r.order.reserve(n);
  if constexpr (Mem::tracing) {
    g.map_buffers(mem);
    mem.map_buffer(r.depth.data(), n * sizeof(index_t));
    mem.map_buffer(r.parent.data(), n * sizeof(vertex_t));
  }

  std::vector<vertex_t> queue;
  queue.reserve(n);
  queue.push_back(source);
  r.depth[static_cast<std::size_t>(source)] = 0;
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const vertex_t u = queue[qi];
    r.order.push_back(u);
    g.for_neighbors(u, mem, [&](const graph::Neighbor<W>& nb) {
      const auto tv = static_cast<std::size_t>(nb.to);
      mem.read(&r.depth[tv]);
      if (r.depth[tv] >= 0) return;
      r.depth[tv] = r.depth[static_cast<std::size_t>(u)] + 1;
      mem.write(&r.depth[tv]);
      r.parent[tv] = u;
      mem.write(&r.parent[tv]);
      queue.push_back(nb.to);
    });
  }
  return r;
}

struct DfsResult {
  std::vector<index_t> pre;   ///< preorder number, -1 if unreached
  std::vector<index_t> post;  ///< postorder number
  std::vector<vertex_t> parent;
};

/// Iterative DFS over the whole graph (restarts at every unvisited
/// vertex, in id order).
template <graph::GraphRep G, memsim::MemPolicy Mem = memsim::NullMem>
DfsResult dfs(const G& g, Mem mem = Mem{}) {
  using W = typename G::weight_type;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  DfsResult r;
  r.pre.assign(n, -1);
  r.post.assign(n, -1);
  r.parent.assign(n, kNoVertex);
  if constexpr (Mem::tracing) g.map_buffers(mem);

  index_t pre_counter = 0, post_counter = 0;
  // Explicit stack of (vertex, child iterator state). We pre-collect
  // each vertex's neighbours when it is first opened; this keeps the
  // representation access pattern identical to the recursive algorithm.
  struct Frame {
    vertex_t v;
    std::vector<vertex_t> children;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;

  for (std::size_t s = 0; s < n; ++s) {
    if (r.pre[s] >= 0) continue;
    r.pre[s] = pre_counter++;
    stack.push_back(Frame{static_cast<vertex_t>(s), {}, 0});
    g.for_neighbors(static_cast<vertex_t>(s), mem,
                    [&](const graph::Neighbor<W>& nb) { stack.back().children.push_back(nb.to); });
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next < f.children.size()) {
        const vertex_t c = f.children[f.next++];
        const auto uc = static_cast<std::size_t>(c);
        if (r.pre[uc] >= 0) continue;
        r.pre[uc] = pre_counter++;
        r.parent[uc] = f.v;
        stack.push_back(Frame{c, {}, 0});
        g.for_neighbors(c, mem,
                        [&](const graph::Neighbor<W>& nb) { stack.back().children.push_back(nb.to); });
      } else {
        r.post[static_cast<std::size_t>(f.v)] = post_counter++;
        stack.pop_back();
      }
    }
  }
  return r;
}

/// Connected components of a symmetric (undirected) graph via repeated
/// BFS. Returns component id per vertex and the component count.
template <graph::GraphRep G, memsim::MemPolicy Mem = memsim::NullMem>
std::pair<std::vector<vertex_t>, vertex_t> connected_components(const G& g, Mem mem = Mem{}) {
  using W = typename G::weight_type;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<vertex_t> comp(n, kNoVertex);
  vertex_t count = 0;
  std::vector<vertex_t> queue;
  for (std::size_t s = 0; s < n; ++s) {
    if (comp[s] != kNoVertex) continue;
    const vertex_t id = count++;
    comp[s] = id;
    queue.clear();
    queue.push_back(static_cast<vertex_t>(s));
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      g.for_neighbors(queue[qi], mem, [&](const graph::Neighbor<W>& nb) {
        const auto tv = static_cast<std::size_t>(nb.to);
        if (comp[tv] != kNoVertex) return;
        comp[tv] = id;
        queue.push_back(nb.to);
      });
    }
  }
  return {std::move(comp), count};
}

/// Tarjan's strongly connected components (iterative). Returns scc id
/// per vertex (ids in reverse topological order of the condensation)
/// and the scc count.
template <graph::GraphRep G, memsim::MemPolicy Mem = memsim::NullMem>
std::pair<std::vector<vertex_t>, vertex_t> strongly_connected_components(const G& g,
                                                                         Mem mem = Mem{}) {
  using W = typename G::weight_type;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  constexpr index_t kUnvisited = -1;
  std::vector<index_t> idx(n, kUnvisited), low(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<vertex_t> scc_stack, comp(n, kNoVertex);
  index_t counter = 0;
  vertex_t scc_count = 0;

  struct Frame {
    vertex_t v;
    std::vector<vertex_t> children;
    std::size_t next = 0;
  };
  std::vector<Frame> call_stack;

  auto open = [&](vertex_t v) {
    const auto uv = static_cast<std::size_t>(v);
    idx[uv] = low[uv] = counter++;
    scc_stack.push_back(v);
    on_stack[uv] = 1;
    call_stack.push_back(Frame{v, {}, 0});
    g.for_neighbors(
        v, mem, [&](const graph::Neighbor<W>& nb) { call_stack.back().children.push_back(nb.to); });
  };

  for (std::size_t s = 0; s < n; ++s) {
    if (idx[s] != kUnvisited) continue;
    open(static_cast<vertex_t>(s));
    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      const auto uv = static_cast<std::size_t>(f.v);
      if (f.next < f.children.size()) {
        const vertex_t c = f.children[f.next++];
        const auto uc = static_cast<std::size_t>(c);
        if (idx[uc] == kUnvisited) {
          open(c);
        } else if (on_stack[uc]) {
          low[uv] = std::min(low[uv], idx[uc]);
        }
      } else {
        if (low[uv] == idx[uv]) {
          // f.v roots an SCC: pop it off.
          while (true) {
            const vertex_t w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = 0;
            comp[static_cast<std::size_t>(w)] = scc_count;
            if (w == f.v) break;
          }
          ++scc_count;
        }
        const vertex_t child = f.v;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const auto up = static_cast<std::size_t>(call_stack.back().v);
          low[up] = std::min(low[up], low[static_cast<std::size_t>(child)]);
        }
      }
    }
  }
  return {std::move(comp), scc_count};
}

}  // namespace cachegraph::traversal
