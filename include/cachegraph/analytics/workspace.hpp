// Derived graph views the analytics kernels run over, built lazily
// from any GraphRep and cached per engine:
//
//   out_degrees()  out-degree per vertex (PageRank contribution split)
//   undirected()   symmetrized, deduplicated, self-loop-free CSR
//                  (WCC label propagation, triangle counting)
//   forward()      degree-ordered oriented adjacency in rank space
//                  (the standard triangle-counting orientation: each
//                  edge points from lower to higher (degree, id) rank,
//                  so every triangle is counted exactly once and the
//                  per-vertex forward lists stay short on skewed
//                  degree distributions)
//
// All three are O(V + E) to build and live in flat arrays — the
// paper's layout discipline applied to the analytics side. Builds are
// serial (one-time per graph version) and guarded so concurrent
// requests share one build; invalidate() forces a rebuild after the
// underlying graph mutates.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <span>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/memsim/mem_policy.hpp"

namespace cachegraph::analytics {

/// Flat symmetrized CSR: neighbors(v) is sorted, self-loop-free, and
/// duplicate-free regardless of how many parallel arcs the source
/// graph carries between a pair.
class UndirectedCsr {
 public:
  template <graph::GraphRep G>
  void build(const G& g) {
    memsim::NullMem mem;
    const vertex_t n = g.num_vertices();
    const auto un = static_cast<std::size_t>(n);
    std::vector<index_t> count(un + 1, 0);
    for (vertex_t u = 0; u < n; ++u) {
      g.for_neighbors(u, mem, [&](const auto& nb) {
        if (nb.to == u) return;  // self-loops carry no connectivity
        ++count[static_cast<std::size_t>(u) + 1];
        ++count[static_cast<std::size_t>(nb.to) + 1];
      });
    }
    std::partial_sum(count.begin(), count.end(), count.begin());
    std::vector<vertex_t> raw(static_cast<std::size_t>(count[un]));
    std::vector<index_t> cursor(count.begin(), count.end() - 1);
    for (vertex_t u = 0; u < n; ++u) {
      g.for_neighbors(u, mem, [&](const auto& nb) {
        if (nb.to == u) return;
        raw[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = nb.to;
        raw[static_cast<std::size_t>(cursor[static_cast<std::size_t>(nb.to)]++)] = u;
      });
    }
    // Sort + dedup each row, then compact into the final arrays.
    offsets_.assign(un + 1, 0);
    for (std::size_t u = 0; u < un; ++u) {
      const auto first = raw.begin() + static_cast<std::ptrdiff_t>(count[u]);
      const auto last = raw.begin() + static_cast<std::ptrdiff_t>(count[u + 1]);
      std::sort(first, last);
      offsets_[u + 1] = offsets_[u] + static_cast<index_t>(std::unique(first, last) - first);
    }
    adj_.resize(static_cast<std::size_t>(offsets_[un]));
    for (std::size_t u = 0; u < un; ++u) {
      const auto first = raw.begin() + static_cast<std::ptrdiff_t>(count[u]);
      const auto row = static_cast<std::size_t>(offsets_[u + 1] - offsets_[u]);
      std::copy(first, first + static_cast<std::ptrdiff_t>(row),
                adj_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]));
    }
    n_ = n;
  }

  [[nodiscard]] vertex_t num_vertices() const noexcept { return n_; }

  /// Undirected (deduplicated) edge count.
  [[nodiscard]] index_t num_edges() const noexcept {
    return offsets_.empty() ? 0 : offsets_.back() / 2;
  }

  [[nodiscard]] index_t degree(vertex_t v) const noexcept {
    const auto u = static_cast<std::size_t>(v);
    return offsets_[u + 1] - offsets_[u];
  }

  [[nodiscard]] std::span<const vertex_t> neighbors(vertex_t v) const noexcept {
    const auto u = static_cast<std::size_t>(v);
    return {adj_.data() + offsets_[u], static_cast<std::size_t>(degree(v))};
  }

 private:
  std::vector<index_t> offsets_;
  std::vector<vertex_t> adj_;
  vertex_t n_ = 0;
};

/// Oriented adjacency in rank space for triangle counting: vertex v's
/// rank is its position when sorted by (undirected degree, id), and
/// forward(r) lists the *ranks* of v's higher-ranked neighbors,
/// sorted — so the counting loop is pure sorted-list intersection
/// with no indirection back through vertex ids.
class ForwardCsr {
 public:
  void build(const UndirectedCsr& und) {
    const vertex_t n = und.num_vertices();
    const auto un = static_cast<std::size_t>(n);
    std::vector<vertex_t> order(un);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](vertex_t a, vertex_t b) {
      const index_t da = und.degree(a);
      const index_t db = und.degree(b);
      return da != db ? da < db : a < b;
    });
    rank_.assign(un, 0);
    for (std::size_t i = 0; i < un; ++i) {
      rank_[static_cast<std::size_t>(order[i])] = static_cast<vertex_t>(i);
    }
    offsets_.assign(un + 1, 0);
    for (vertex_t v = 0; v < n; ++v) {
      const vertex_t rv = rank_[static_cast<std::size_t>(v)];
      index_t fwd = 0;
      for (const vertex_t w : und.neighbors(v)) {
        if (rank_[static_cast<std::size_t>(w)] > rv) ++fwd;
      }
      offsets_[static_cast<std::size_t>(rv) + 1] = fwd;
    }
    std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
    adj_.resize(static_cast<std::size_t>(offsets_[un]));
    for (vertex_t v = 0; v < n; ++v) {
      const auto rv = static_cast<std::size_t>(rank_[static_cast<std::size_t>(v)]);
      auto cursor = static_cast<std::size_t>(offsets_[rv]);
      for (const vertex_t w : und.neighbors(v)) {
        const vertex_t rw = rank_[static_cast<std::size_t>(w)];
        if (rw > static_cast<vertex_t>(rv)) adj_[cursor++] = rw;
      }
      std::sort(adj_.begin() + static_cast<std::ptrdiff_t>(offsets_[rv]),
                adj_.begin() + static_cast<std::ptrdiff_t>(cursor));
    }
    n_ = n;
  }

  [[nodiscard]] vertex_t num_vertices() const noexcept { return n_; }

  [[nodiscard]] std::span<const vertex_t> forward(vertex_t rank) const noexcept {
    const auto r = static_cast<std::size_t>(rank);
    return {adj_.data() + offsets_[r],
            static_cast<std::size_t>(offsets_[r + 1] - offsets_[r])};
  }

 private:
  std::vector<index_t> offsets_;
  std::vector<vertex_t> adj_;
  std::vector<vertex_t> rank_;
  vertex_t n_ = 0;
};

/// Lazily-built, engine-cached derived views. Thread-safe: concurrent
/// requests race to one mutex-guarded build; readers after the build
/// see an immutable structure (the atomic flag is the publish point).
template <graph::GraphRep G>
class Workspace {
 public:
  explicit Workspace(const G& g) noexcept : g_(&g) {}

  [[nodiscard]] const std::vector<index_t>& out_degrees() {
    ensure(kDegrees);
    return degrees_;
  }

  [[nodiscard]] const UndirectedCsr& undirected() {
    ensure(kUndirected);
    return und_;
  }

  [[nodiscard]] const ForwardCsr& forward() {
    ensure(kForward);
    return fwd_;
  }

  /// Drop every cached view (call after the underlying graph mutates,
  /// from a quiescent point — no requests in flight).
  void invalidate() noexcept { built_.store(0, std::memory_order_release); }

 private:
  enum : unsigned { kDegrees = 1, kUndirected = 2, kForward = 4 };

  void ensure(unsigned want) {
    if ((built_.load(std::memory_order_acquire) & want) == want) return;
    const std::scoped_lock lock(build_mutex_);
    unsigned built = built_.load(std::memory_order_relaxed);
    if ((built & want) == want) return;
    if ((want & kDegrees) != 0 && (built & kDegrees) == 0) {
      build_degrees();
      built |= kDegrees;
    }
    if ((want & (kUndirected | kForward)) != 0 && (built & kUndirected) == 0) {
      und_.build(*g_);
      built |= kUndirected;
    }
    if ((want & kForward) != 0 && (built & kForward) == 0) {
      fwd_.build(und_);
      built |= kForward;
    }
    built_.store(built, std::memory_order_release);
  }

  void build_degrees() {
    memsim::NullMem mem;
    const vertex_t n = g_->num_vertices();
    degrees_.assign(static_cast<std::size_t>(n), 0);
    for (vertex_t u = 0; u < n; ++u) {
      index_t d = 0;
      g_->for_neighbors(u, mem, [&](const auto&) { ++d; });
      degrees_[static_cast<std::size_t>(u)] = d;
    }
  }

  const G* g_;
  std::vector<index_t> degrees_;
  UndirectedCsr und_;
  ForwardCsr fwd_;
  std::mutex build_mutex_;
  std::atomic<unsigned> built_{0};
};

}  // namespace cachegraph::analytics
