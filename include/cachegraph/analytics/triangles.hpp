// Global triangle count by oriented sorted-list intersection.
//
// Over the degree-ordered forward adjacency (Workspace::forward()):
// every triangle {a, b, c} has exactly one orientation with both
// edges pointing "up" in rank, so summing |fwd(u) ∩ fwd(v)| over
// forward edges (u, v) counts each triangle once. The forward lists
// are flat, sorted, and short for high-degree vertices (they rank
// last), which keeps the intersection loop streaming — no hash sets,
// no per-probe random access. The `binned` request toggle is a no-op
// here (there is no push phase), so both modes are trivially
// bit-identical.
#pragma once

#include <cstdint>
#include <span>

#include "cachegraph/analytics/core.hpp"
#include "cachegraph/analytics/workspace.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::analytics {

struct TriangleStats {
  Stop stop = Stop::done;
  std::uint64_t triangles = 0;
};

template <graph::GraphRep G>
TriangleStats triangles(const G& g, Workspace<G>& ws, Scratch& sc, parallel::TaskPool* pool,
                        const Budget& budget) {
  TriangleStats stats;
  const vertex_t n = g.num_vertices();
  if (n == 0) return stats;
  if (const Stop s = budget.poll(); s != Stop::done) {
    stats.stop = s;
    return stats;
  }
  const ForwardCsr& fwd = ws.forward();
  const auto un = static_cast<std::size_t>(n);
  const std::size_t shards = shard_count(pool);
  sc.prepare(n, shards);

  for_shards(pool, un, shards, [&](std::size_t s, std::size_t b, std::size_t e) {
    std::uint64_t acc = 0;
    for (std::size_t ru = b; ru < e; ++ru) {
      const std::span<const vertex_t> up = fwd.forward(static_cast<vertex_t>(ru));
      for (const vertex_t rv : up) {
        const std::span<const vertex_t> vp = fwd.forward(rv);
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < up.size() && j < vp.size()) {
          const vertex_t a = up[i];
          const vertex_t b2 = vp[j];
          if (a == b2) {
            ++acc;
            ++i;
            ++j;
          } else if (a < b2) {
            ++i;
          } else {
            ++j;
          }
        }
      }
    }
    sc.upartials()[s] = acc;
  });
  for (const std::uint64_t c : sc.upartials()) stats.triangles += c;
  CG_COUNTER_ADD("analytics.triangles.counted", stats.triangles);
  return stats;
}

}  // namespace cachegraph::analytics
