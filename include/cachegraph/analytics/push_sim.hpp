// memsim twin of the PageRank push phase — the propagation-blocking
// A/B exhibit.
//
// Replays the exact logical access pattern of one push iteration
// through a MemPolicy so CacheHierarchy can price both modes on any
// machine model:
//
//   direct  stream rank[] and the adjacency, scatter one
//           read-modify-write into next[dest] per edge — at n beyond
//           the LLC almost every scatter misses
//   binned  phase 1 streams rank[]/adjacency and *appends* each
//           update to its destination bin (sequential writes at
//           num_bins rolling cursors); phase 2 streams each bin's
//           updates back and applies them to an accumulator slice
//           sized to fit the LLC — the random writes never leave it
//
// The replay is serial (memsim hierarchies are single-stream by
// design) and arithmetic-free: only the access sequence matters.
// bench_analytics records both SimStats; analytics_test pins the
// inequality (binned L2+L3 misses < direct) at sizes beyond the LLC.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "cachegraph/analytics/core.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/memsim/mem_policy.hpp"

namespace cachegraph::analytics {

template <graph::GraphRep G, memsim::MemPolicy Mem>
void sim_push_iteration(const G& g, bool binned, const BinLayout& layout, Mem& mem) {
  const vertex_t n = g.num_vertices();
  if (n == 0) return;
  const auto un = static_cast<std::size_t>(n);
  std::vector<double> rank(un, 0.0);
  std::vector<double> next(un, 0.0);
  if constexpr (Mem::tracing) {
    g.map_buffers(mem);
    mem.map_buffer(rank.data(), rank.size() * sizeof(double));
    mem.map_buffer(next.data(), next.size() * sizeof(double));
  }

  if (!binned) {
    for (vertex_t u = 0; u < n; ++u) {
      mem.read(&rank[static_cast<std::size_t>(u)]);
      g.for_neighbors(u, mem, [&](const auto& nb) {
        const auto dest = static_cast<std::size_t>(nb.to);
        mem.read(&next[dest]);
        mem.write(&next[dest]);
      });
    }
    return;
  }

  // Bin storage as one flat (dest, contrib) array with per-bin
  // regions, so phase-1 appends are sequential within each bin.
  memsim::NullMem null;
  const std::size_t bins = layout.num_bins();
  std::vector<index_t> bin_edges(bins + 1, 0);
  for (vertex_t u = 0; u < n; ++u) {
    g.for_neighbors(u, null,
                    [&](const auto& nb) { ++bin_edges[layout.bin_of(nb.to) + 1]; });
  }
  std::partial_sum(bin_edges.begin(), bin_edges.end(), bin_edges.begin());
  std::vector<RankUpdate> buffer(static_cast<std::size_t>(bin_edges[bins]));
  if constexpr (Mem::tracing) {
    mem.map_buffer(buffer.data(), buffer.size() * sizeof(RankUpdate));
  }

  // Phase 1: walk, append each update at its bin's cursor.
  std::vector<index_t> cursor(bin_edges.begin(), bin_edges.end() - 1);
  for (vertex_t u = 0; u < n; ++u) {
    mem.read(&rank[static_cast<std::size_t>(u)]);
    g.for_neighbors(u, mem, [&](const auto& nb) {
      const std::size_t bin = layout.bin_of(nb.to);
      const auto pos = static_cast<std::size_t>(cursor[bin]++);
      buffer[pos] = RankUpdate{nb.to, 0.0};
      mem.write(&buffer[pos]);
    });
  }

  // Phase 2: drain bin-at-a-time; the accumulator slice stays hot.
  for (std::size_t bin = 0; bin < bins; ++bin) {
    for (auto pos = static_cast<std::size_t>(bin_edges[bin]);
         pos < static_cast<std::size_t>(bin_edges[bin + 1]); ++pos) {
      mem.read(&buffer[pos]);
      const auto dest = static_cast<std::size_t>(buffer[pos].dest);
      mem.read(&next[dest]);
      mem.write(&next[dest]);
    }
  }
}

}  // namespace cachegraph::analytics
