// Level-synchronous multi-source BFS over the directed graph.
//
// out[v] becomes the hop depth from the nearest seed (kNoVertex when
// unreached). Rounds are levels, so depths are deterministic no
// matter the visit order — which makes the binned and direct push
// phases bit-identical:
//
//   direct  CAS-claim depth[dest] from kNoVertex to d+1; the winning
//           thread enqueues dest (the claim IS the dedup)
//   binned  buffer dest ids per LLC-sized bin during the frontier
//           scan (depths read-only), then drain bin-at-a-time: the
//           first update to an unvisited dest inside its bin sets the
//           depth and enqueues, later duplicates see it visited
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cachegraph/analytics/core.hpp"
#include "cachegraph/common/check.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/memsim/mem_policy.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::analytics {

struct BfsParams {
  bool binned = false;
};

struct BfsStats {
  Stop stop = Stop::done;
  std::uint32_t rounds = 0;       ///< levels expanded (max depth assigned)
  std::uint64_t reached = 0;      ///< vertices with a finite depth
};

template <graph::GraphRep G>
BfsStats bfs_from_set(const G& g, Scratch& sc, const BfsParams& p,
                      std::span<const vertex_t> sources, std::span<vertex_t> out,
                      parallel::TaskPool* pool, const Budget& budget) {
  const vertex_t n = g.num_vertices();
  CG_CHECK(out.size() == static_cast<std::size_t>(n),
           "bfs_from_set: out span must have num_vertices entries");
  BfsStats stats;
  const auto un = static_cast<std::size_t>(n);
  const std::size_t shards = shard_count(pool);
  sc.prepare(n, shards);
  if (p.binned) {
    sc.dest_bins().configure(BinLayout::pick(n, sizeof(vertex_t), sc.llc_bytes()), shards);
  }

  for_shards(pool, un, shards, [&](std::size_t, std::size_t b, std::size_t e) {
    for (std::size_t v = b; v < e; ++v) out[v] = kNoVertex;
  });
  for (const vertex_t s : sources) {
    CG_CHECK(s >= 0 && s < n, "bfs_from_set: source out of range");
    auto& slot = out[static_cast<std::size_t>(s)];
    if (slot == kNoVertex) {
      slot = 0;
      sc.frontier().push_back(s);
    }
  }
  stats.reached = sc.frontier().size();

  memsim::NullMem mem;
  const auto make_local = [] { return std::make_unique<std::vector<vertex_t>>(); };
  vertex_t depth = 0;
  while (!sc.frontier().empty()) {
    if (const Stop s = budget.poll(); s != Stop::done) {
      stats.stop = s;
      break;
    }
    const vertex_t next_depth = depth + 1;
    const std::size_t fsize = sc.frontier().size();
    if (!p.binned) {
      for_shards(pool, fsize, shards, [&](std::size_t, std::size_t b, std::size_t e) {
        auto local = sc.locals().acquire(make_local);
        for (std::size_t i = b; i < e; ++i) {
          g.for_neighbors(sc.frontier()[i], mem, [&](const auto& nb) {
            std::atomic_ref<vertex_t> slot(out[static_cast<std::size_t>(nb.to)]);
            vertex_t expected = kNoVertex;
            if (slot.load(std::memory_order_relaxed) == kNoVertex &&
                slot.compare_exchange_strong(expected, next_depth, std::memory_order_relaxed)) {
              local.get().push_back(nb.to);
            }
          });
        }
        sc.merge_local(local.get());
      });
    } else {
      auto& bins = sc.dest_bins();
      bins.clear_all();
      for_shards(pool, fsize, shards, [&](std::size_t s, std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          g.for_neighbors(sc.frontier()[i], mem, [&](const auto& nb) {
            if (out[static_cast<std::size_t>(nb.to)] == kNoVertex) {
              bins.append(s, nb.to, nb.to);
            }
          });
        }
      });
      const std::size_t nbins = bins.bins();
      for_shards(pool, nbins, nbins < shards ? nbins : shards,
                 [&](std::size_t, std::size_t b, std::size_t e) {
                   auto local = sc.locals().acquire(make_local);
                   for (std::size_t bin = b; bin < e; ++bin) {
                     for (std::size_t s = 0; s < shards; ++s) {
                       for (const vertex_t dest : bins.bin(s, bin)) {
                         auto& slot = out[static_cast<std::size_t>(dest)];
                         if (slot == kNoVertex) {
                           slot = next_depth;
                           local.get().push_back(dest);
                         }
                       }
                     }
                   }
                   sc.merge_local(local.get());
                 });
    }
    stats.reached += sc.next().size();
    sc.advance_round();
    if (!sc.frontier().empty()) ++stats.rounds;
    depth = next_depth;
  }
  CG_COUNTER_ADD("analytics.bfs.rounds", stats.rounds);
  return stats;
}

}  // namespace cachegraph::analytics
