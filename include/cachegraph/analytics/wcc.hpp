// Weakly-connected components by frontier-driven min-label
// propagation over the symmetrized CSR.
//
// labels start at vertex ids; each round, every frontier vertex
// pushes its label to neighbors with a larger one, and any vertex
// whose label drops joins the next frontier (claimed exactly once via
// a per-round flag). Labels only decrease, so the fixed point —
// label[v] == min vertex id in v's component — is deterministic, and
// the binned and direct push phases are bit-identical by
// construction:
//
//   direct  atomic fetch-min straight into labels[] (the oracle)
//   binned  buffer (dest, label) per LLC-sized destination bin during
//           the scan (labels are read-only in that phase), then drain
//           bin-at-a-time with plain min-writes — bins partition the
//           destinations, so no two drain tasks share a vertex
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cachegraph/analytics/core.hpp"
#include "cachegraph/analytics/workspace.hpp"
#include "cachegraph/common/check.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::analytics {

struct WccParams {
  bool binned = false;
};

struct WccStats {
  Stop stop = Stop::done;
  std::uint32_t rounds = 0;
  vertex_t components = 0;  ///< valid when stop == done
};

template <graph::GraphRep G>
WccStats wcc(const G& g, Workspace<G>& ws, Scratch& sc, const WccParams& p,
             std::span<vertex_t> out, parallel::TaskPool* pool, const Budget& budget) {
  const vertex_t n = g.num_vertices();
  CG_CHECK(out.size() == static_cast<std::size_t>(n),
           "wcc: out span must have num_vertices entries");
  WccStats stats;
  if (n == 0) return stats;

  const UndirectedCsr& und = ws.undirected();
  const auto un = static_cast<std::size_t>(n);
  const std::size_t shards = shard_count(pool);
  sc.prepare(n, shards);
  if (p.binned) {
    sc.label_bins().configure(BinLayout::pick(n, sizeof(vertex_t), sc.llc_bytes()), shards);
  }

  for_shards(pool, un, shards, [&](std::size_t, std::size_t b, std::size_t e) {
    for (std::size_t v = b; v < e; ++v) out[v] = static_cast<vertex_t>(v);
  });
  sc.frontier().resize(un);
  for (std::size_t v = 0; v < un; ++v) sc.frontier()[v] = static_cast<vertex_t>(v);

  const auto make_local = [] { return std::make_unique<std::vector<vertex_t>>(); };
  while (!sc.frontier().empty()) {
    if (const Stop s = budget.poll(); s != Stop::done) {
      stats.stop = s;
      break;
    }
    const std::size_t fsize = sc.frontier().size();
    if (!p.binned) {
      for_shards(pool, fsize, shards, [&](std::size_t, std::size_t b, std::size_t e) {
        auto local = sc.locals().acquire(make_local);
        for (std::size_t i = b; i < e; ++i) {
          const vertex_t u = sc.frontier()[i];
          const vertex_t lu =
              std::atomic_ref<vertex_t>(out[static_cast<std::size_t>(u)])
                  .load(std::memory_order_relaxed);
          for (const vertex_t w : und.neighbors(u)) {
            if (atomic_fetch_min(out[static_cast<std::size_t>(w)], lu) &&
                atomic_claim(sc.claimed()[static_cast<std::size_t>(w)])) {
              local.get().push_back(w);
            }
          }
        }
        sc.merge_local(local.get());
      });
    } else {
      auto& bins = sc.label_bins();
      bins.clear_all();
      // Phase 1: scan the frontier, labels read-only, bin the pushes.
      for_shards(pool, fsize, shards, [&](std::size_t s, std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const vertex_t u = sc.frontier()[i];
          const vertex_t lu = out[static_cast<std::size_t>(u)];
          for (const vertex_t w : und.neighbors(u)) {
            if (lu < out[static_cast<std::size_t>(w)]) {
              bins.append(s, w, LabelUpdate{w, lu});
            }
          }
        }
      });
      // Phase 2: drain bin-at-a-time; bins partition destinations, so
      // plain reads/writes suffice inside one drain task.
      const std::size_t nbins = bins.bins();
      for_shards(pool, nbins, nbins < shards ? nbins : shards,
                 [&](std::size_t, std::size_t b, std::size_t e) {
                   auto local = sc.locals().acquire(make_local);
                   for (std::size_t bin = b; bin < e; ++bin) {
                     for (std::size_t s = 0; s < shards; ++s) {
                       for (const LabelUpdate& u : bins.bin(s, bin)) {
                         auto& slot = out[static_cast<std::size_t>(u.dest)];
                         if (u.label < slot) {
                           slot = u.label;
                           auto& flag = sc.claimed()[static_cast<std::size_t>(u.dest)];
                           if (flag == 0) {
                             flag = 1;
                             local.get().push_back(u.dest);
                           }
                         }
                       }
                     }
                   }
                   sc.merge_local(local.get());
                 });
    }
    sc.advance_round();
    ++stats.rounds;
  }

  if (stats.stop == Stop::done) {
    for_shards(pool, un, shards, [&](std::size_t s, std::size_t b, std::size_t e) {
      std::uint64_t roots = 0;
      for (std::size_t v = b; v < e; ++v) {
        if (out[v] == static_cast<vertex_t>(v)) ++roots;
      }
      sc.upartials()[s] = roots;
    });
    std::uint64_t components = 0;
    for (const std::uint64_t c : sc.upartials()) components += c;
    stats.components = static_cast<vertex_t>(components);
  }
  CG_COUNTER_ADD("analytics.wcc.rounds", stats.rounds);
  return stats;
}

}  // namespace cachegraph::analytics
