// cachegraph::analytics — shared machinery for the frontier/worklist
// engine: round budgets (cancellation + deadline polled once per
// round), lock-free claim/merge primitives for per-worker private
// next-frontiers, the LLC-sized destination binning used by the
// propagation-blocking push phase, and the reusable Scratch that keeps
// every kernel zero-allocation in steady state.
//
// The design follows "Making Caches Work for Graph Analytics"
// (PAPERS.md): a push-phase kernel's destination writes are the random
// part of its traffic, so we partition destinations into segments
// whose accumulator slice fits in (half) the LLC, buffer (dest,
// contribution) updates per bin in contiguous per-shard arrays during
// the walk, then drain bin-at-a-time — both phases stream. The
// unbinned (direct, atomic) path stays available at runtime as the
// differential oracle.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/memsim/config.hpp"
#include "cachegraph/parallel/lease_pool.hpp"
#include "cachegraph/parallel/task_pool.hpp"
#include "cachegraph/reliability/cancel.hpp"
#include "cachegraph/reliability/fault_injector.hpp"

namespace cachegraph::analytics {

/// Why a kernel returned. `done` means converged/complete; the other
/// two mean the per-round poll tripped and the output spans hold an
/// unspecified (but type-valid) partial state.
enum class Stop : std::uint8_t {
  done = 0,
  cancelled = 1,
  deadline = 2,
};

[[nodiscard]] constexpr const char* to_string(Stop s) noexcept {
  switch (s) {
    case Stop::done: return "done";
    case Stop::cancelled: return "cancelled";
    case Stop::deadline: return "deadline";
  }
  return "?";
}

/// Cooperative interruption budget, polled once per frontier round
/// (rounds are the natural poll cadence for level-synchronous kernels:
/// cheap, and every poll point is a barrier so partial state is
/// well-formed). Mirrors query::Limits' entry-poll semantics: an
/// already-cancelled token or spent deadline stops before round 0.
struct Budget {
  const reliability::CancelToken* cancel = nullptr;
  reliability::Deadline deadline{};

  [[nodiscard]] Stop poll() const noexcept {
    if (cancel != nullptr && cancel->cancelled()) return Stop::cancelled;
    if (deadline.armed() &&
        (deadline.expired() || CG_FAULT_FIRE(reliability::FaultSite::kForceTimeout))) {
      return Stop::deadline;
    }
    return Stop::done;
  }
};

/// fetch_add for doubles via CAS on an atomic_ref — the direct
/// (unbinned) push phase's accumulator update. Relaxed is enough: the
/// round-end TaskGroup::wait() is the ordering barrier.
inline void atomic_add(double& slot, double delta) noexcept {
  std::atomic_ref<double> ref(slot);
  double cur = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

/// Lower `slot` to min(slot, value); returns true iff this call
/// lowered it (the claim signal for WCC's next-frontier).
inline bool atomic_fetch_min(vertex_t& slot, vertex_t value) noexcept {
  std::atomic_ref<vertex_t> ref(slot);
  vertex_t cur = ref.load(std::memory_order_relaxed);
  while (value < cur) {
    if (ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) return true;
  }
  return false;
}

/// One-shot claim flag (0 -> 1); exactly one claimant wins per round.
inline bool atomic_claim(std::uint8_t& flag) noexcept {
  std::atomic_ref<std::uint8_t> ref(flag);
  std::uint8_t expected = 0;
  return ref.load(std::memory_order_relaxed) == 0 &&
         ref.compare_exchange_strong(expected, 1, std::memory_order_relaxed);
}

/// Number of static shards a kernel partitions its work (and its bin
/// buffers) into. Modest oversubscription smooths imbalance from
/// skewed degree ranges without multiplying bin-buffer memory.
[[nodiscard]] inline std::size_t shard_count(parallel::TaskPool* pool) noexcept {
  if (pool == nullptr) return 1;
  const int threads = pool->num_threads() <= 0 ? 1 : pool->num_threads();
  return threads == 1 ? 1 : static_cast<std::size_t>(threads) * 2;
}

/// Run fn(shard, begin, end) over [0, total) split into `shards`
/// contiguous ranges — as pool tasks when a pool is given (the caller
/// blocks in TaskGroup::wait(), which participates in stealing), or as
/// plain calls when pool is null / there is one shard. Shards with an
/// empty range are skipped; fn must tolerate any shard subset.
template <typename Fn>
void for_shards(parallel::TaskPool* pool, std::size_t total, std::size_t shards, Fn&& fn) {
  CG_CHECK(shards > 0, "for_shards: shards must be positive");
  if (total == 0) return;
  const std::size_t chunk = (total + shards - 1) / shards;
  if (pool == nullptr || shards == 1 || total <= chunk) {
    std::size_t begin = 0;
    for (std::size_t s = 0; s < shards && begin < total; ++s, begin += chunk) {
      const std::size_t end = begin + chunk < total ? begin + chunk : total;
      fn(s, begin, end);
    }
    return;
  }
  parallel::TaskGroup group(*pool);
  std::size_t begin = 0;
  for (std::size_t s = 0; s < shards && begin < total; ++s, begin += chunk) {
    const std::size_t end = begin + chunk < total ? begin + chunk : total;
    group.run([&fn, s, begin, end] { fn(s, begin, end); });
  }
  group.wait();
}

/// Destination partitioning for propagation blocking: bins are
/// contiguous id ranges of 2^bin_bits vertices, sized so one bin's
/// accumulator slice fits in half the LLC (the other half is left for
/// the bin buffer being drained and the graph stream).
struct BinLayout {
  std::uint32_t bin_bits = 0;
  vertex_t n = 0;

  /// Choose bin_bits for `n` destinations whose accumulator entry is
  /// `entry_bytes` wide against a last-level cache of `llc_bytes`.
  [[nodiscard]] static BinLayout pick(vertex_t n, std::size_t entry_bytes,
                                      std::size_t llc_bytes) noexcept {
    BinLayout layout;
    layout.n = n;
    if (entry_bytes == 0) entry_bytes = 1;
    const std::size_t budget = llc_bytes / 2;
    std::size_t dests = budget / entry_bytes;
    if (dests < 1) dests = 1;
    // Round down to a power of two so bin_of() is a shift.
    const auto width = static_cast<std::uint32_t>(std::bit_width(dests));
    layout.bin_bits = width == 0 ? 0 : width - 1;
    if (layout.bin_bits > 30) layout.bin_bits = 30;
    return layout;
  }

  /// Layout from a memsim machine description: the LLC is L3 when the
  /// machine has one, else L2.
  [[nodiscard]] static BinLayout from_machine(vertex_t n, std::size_t entry_bytes,
                                              const memsim::MachineConfig& machine) noexcept {
    const std::size_t llc =
        machine.has_l3() ? machine.l3.size_bytes : machine.l2.size_bytes;
    return pick(n, entry_bytes, llc);
  }

  [[nodiscard]] std::size_t num_bins() const noexcept {
    if (n <= 0) return 1;
    return ((static_cast<std::size_t>(n) - 1) >> bin_bits) + 1;
  }

  [[nodiscard]] std::size_t bin_of(vertex_t v) const noexcept {
    return static_cast<std::size_t>(static_cast<std::uint32_t>(v)) >> bin_bits;
  }
};

/// Per-shard, per-bin contiguous update buffers. Phase 1 appends into
/// buffers_[shard][bin] with no synchronization (shards own their
/// rows); phase 2 assigns bins to tasks, each draining its bin across
/// all shards — destinations within a bin are touched by exactly one
/// task, so the drain needs no atomics. configure() keeps capacity
/// across requests, so steady-state appends never allocate.
template <typename Update>
class BinShards {
 public:
  void configure(const BinLayout& layout, std::size_t shards) {
    layout_ = layout;
    const std::size_t bins = layout.num_bins();
    if (buffers_.size() < shards) buffers_.resize(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      if (buffers_[s].size() < bins) buffers_[s].resize(bins);
      for (auto& bin : buffers_[s]) bin.clear();
    }
    shards_ = shards;
    bins_ = bins;
  }

  void append(std::size_t shard, vertex_t dest, Update u) {
    buffers_[shard][layout_.bin_of(dest)].push_back(u);
  }

  void clear_all() noexcept {
    for (std::size_t s = 0; s < shards_; ++s) {
      for (std::size_t b = 0; b < bins_; ++b) buffers_[s][b].clear();
    }
  }

  [[nodiscard]] const BinLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] std::size_t bins() const noexcept { return bins_; }

  [[nodiscard]] std::vector<Update>& bin(std::size_t shard, std::size_t b) noexcept {
    return buffers_[shard][b];
  }
  [[nodiscard]] const std::vector<Update>& bin(std::size_t shard, std::size_t b) const noexcept {
    return buffers_[shard][b];
  }

 private:
  BinLayout layout_{};
  std::vector<std::vector<std::vector<Update>>> buffers_;
  std::size_t shards_ = 0;
  std::size_t bins_ = 0;
};

/// A (dest, PageRank contribution) buffered update.
struct RankUpdate {
  vertex_t dest = 0;
  double contrib = 0.0;
};

/// A (dest, candidate component label) buffered update.
struct LabelUpdate {
  vertex_t dest = 0;
  vertex_t label = 0;
};

/// Reusable per-request working state for every analytics kernel.
/// prepare() sizes the dense arrays for the graph at hand; all
/// std::vector growth sticks, so a Scratch leased across requests of
/// the same graph reaches zero allocation in steady state (the
/// LeasePool stats in QueryEngine expose reuse counts).
class Scratch {
 public:
  void prepare(vertex_t n, std::size_t shards) {
    const auto un = static_cast<std::size_t>(n);
    if (claimed_.size() < un) claimed_.resize(un);
    std::fill(claimed_.begin(), claimed_.begin() + static_cast<std::ptrdiff_t>(un), 0);
    partial_.assign(shards, 0.0);
    upartial_.assign(shards, 0);
    frontier_.clear();
    next_.clear();
    shards_ = shards;
  }

  /// Dense double working arrays (PageRank rank/next).
  void prepare_values(vertex_t n) {
    const auto un = static_cast<std::size_t>(n);
    value_a_.assign(un, 0.0);
    value_b_.assign(un, 0.0);
  }

  [[nodiscard]] std::vector<double>& value_a() noexcept { return value_a_; }
  [[nodiscard]] std::vector<double>& value_b() noexcept { return value_b_; }
  [[nodiscard]] std::vector<vertex_t>& frontier() noexcept { return frontier_; }
  [[nodiscard]] std::vector<vertex_t>& next() noexcept { return next_; }
  [[nodiscard]] std::vector<std::uint8_t>& claimed() noexcept { return claimed_; }
  [[nodiscard]] std::vector<double>& partials() noexcept { return partial_; }
  [[nodiscard]] std::vector<std::uint64_t>& upartials() noexcept { return upartial_; }
  [[nodiscard]] BinShards<RankUpdate>& rank_bins() noexcept { return rank_bins_; }
  [[nodiscard]] BinShards<LabelUpdate>& label_bins() noexcept { return label_bins_; }
  [[nodiscard]] BinShards<vertex_t>& dest_bins() noexcept { return dest_bins_; }

  /// A worker-local frontier segment: leased per shard-task, appended
  /// without synchronization, then bulk-merged (one lock per shard per
  /// round). Capacity persists through the pool, so steady-state
  /// rounds don't allocate.
  [[nodiscard]] parallel::LeasePool<std::vector<vertex_t>>& locals() noexcept { return locals_; }

  /// Merge a local frontier segment into next() and recycle it.
  void merge_local(std::vector<vertex_t>& local) {
    if (local.empty()) return;
    const std::scoped_lock lock(merge_mutex_);
    next_.insert(next_.end(), local.begin(), local.end());
    local.clear();
  }

  /// Swap next into frontier and clear the claim flags of the new
  /// frontier's members (O(|frontier|), not O(n)).
  void advance_round() noexcept {
    frontier_.swap(next_);
    next_.clear();
    for (const vertex_t v : frontier_) claimed_[static_cast<std::size_t>(v)] = 0;
  }

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

  /// LLC budget driving BinLayout::pick for the propagation-blocking
  /// modes. Defaults to a conservative 2 MiB; QueryEngine forwards its
  /// configured memsim machine here.
  void set_llc_bytes(std::size_t bytes) noexcept {
    llc_bytes_ = bytes == 0 ? kDefaultLlcBytes : bytes;
  }
  [[nodiscard]] std::size_t llc_bytes() const noexcept { return llc_bytes_; }

  static constexpr std::size_t kDefaultLlcBytes = 2u << 20;

 private:
  std::vector<double> value_a_;
  std::vector<double> value_b_;
  std::vector<vertex_t> frontier_;
  std::vector<vertex_t> next_;
  std::vector<std::uint8_t> claimed_;
  std::vector<double> partial_;
  std::vector<std::uint64_t> upartial_;
  BinShards<RankUpdate> rank_bins_;
  BinShards<LabelUpdate> label_bins_;
  BinShards<vertex_t> dest_bins_;
  parallel::LeasePool<std::vector<vertex_t>> locals_;
  std::mutex merge_mutex_;
  std::size_t shards_ = 1;
  std::size_t llc_bytes_ = kDefaultLlcBytes;
};

}  // namespace cachegraph::analytics
