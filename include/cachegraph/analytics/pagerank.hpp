// PageRank by synchronous power iteration, push formulation.
//
// Each iteration: every vertex u pushes damping * rank[u] / outdeg(u)
// to its out-neighbors' next-rank accumulators; dangling vertices
// (outdeg 0) donate their mass uniformly. The pull side of the
// iteration (base term, dangling sum, L1 delta) streams both arrays —
// cache-friendly already. The push side's destination writes are the
// random traffic, and the two modes differ exactly there:
//
//   direct  atomic add straight into next[dest] — random writes across
//           the whole accumulator (the differential oracle)
//   binned  propagation blocking: append (dest, contribution) to the
//           dest's LLC-sized bin (sequential writes), then drain
//           bin-at-a-time with plain adds (bounded working set)
//
// Both modes do identical arithmetic per edge; they differ only in
// accumulation order, so results agree to floating-point
// reassociation (the differential tests bound the drift).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "cachegraph/analytics/core.hpp"
#include "cachegraph/analytics/workspace.hpp"
#include "cachegraph/common/check.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/memsim/mem_policy.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::analytics {

struct PageRankParams {
  double damping = 0.85;
  std::uint32_t max_iters = 50;
  double tol = 1e-9;  ///< L1 convergence threshold; 0 = always run max_iters
  bool binned = false;
};

struct PageRankStats {
  Stop stop = Stop::done;
  std::uint32_t iterations = 0;
  double delta = 0.0;  ///< L1 change of the final iteration
};

template <graph::GraphRep G>
PageRankStats pagerank(const G& g, Workspace<G>& ws, Scratch& sc, const PageRankParams& p,
                       std::span<double> out, parallel::TaskPool* pool, const Budget& budget) {
  const vertex_t n = g.num_vertices();
  CG_CHECK(out.size() == static_cast<std::size_t>(n),
           "pagerank: out span must have num_vertices entries");
  PageRankStats stats;
  if (n == 0) return stats;

  const auto un = static_cast<std::size_t>(n);
  const std::vector<index_t>& deg = ws.out_degrees();
  const std::size_t shards = shard_count(pool);
  sc.prepare(n, shards);
  sc.prepare_values(n);
  std::vector<double>* rank = &sc.value_a();
  std::vector<double>* next = &sc.value_b();
  if (p.binned) {
    sc.rank_bins().configure(BinLayout::pick(n, sizeof(double), sc.llc_bytes()), shards);
  }

  const double init = 1.0 / static_cast<double>(n);
  for_shards(pool, un, shards, [&](std::size_t, std::size_t b, std::size_t e) {
    for (std::size_t v = b; v < e; ++v) (*rank)[v] = init;
  });

  memsim::NullMem mem;
  for (std::uint32_t iter = 0; iter < p.max_iters; ++iter) {
    if (const Stop s = budget.poll(); s != Stop::done) {
      stats.stop = s;
      break;
    }
    // Dangling mass (streaming reduce over rank + degrees).
    for_shards(pool, un, shards, [&](std::size_t s, std::size_t b, std::size_t e) {
      double acc = 0.0;
      for (std::size_t v = b; v < e; ++v) {
        if (deg[v] == 0) acc += (*rank)[v];
      }
      sc.partials()[s] = acc;
    });
    double dangling = 0.0;
    for (const double d : sc.partials()) dangling += d;
    const double base =
        (1.0 - p.damping) / static_cast<double>(n) + p.damping * dangling / static_cast<double>(n);
    for_shards(pool, un, shards, [&](std::size_t, std::size_t b, std::size_t e) {
      for (std::size_t v = b; v < e; ++v) (*next)[v] = base;
    });

    // Push phase — the propagation-blocking A/B.
    if (!p.binned) {
      for_shards(pool, un, shards, [&](std::size_t, std::size_t b, std::size_t e) {
        for (std::size_t v = b; v < e; ++v) {
          if (deg[v] == 0) continue;
          const double contrib = p.damping * (*rank)[v] / static_cast<double>(deg[v]);
          g.for_neighbors(static_cast<vertex_t>(v), mem, [&](const auto& nb) {
            atomic_add((*next)[static_cast<std::size_t>(nb.to)], contrib);
          });
        }
      });
    } else {
      auto& bins = sc.rank_bins();
      bins.clear_all();
      for_shards(pool, un, shards, [&](std::size_t s, std::size_t b, std::size_t e) {
        for (std::size_t v = b; v < e; ++v) {
          if (deg[v] == 0) continue;
          const double contrib = p.damping * (*rank)[v] / static_cast<double>(deg[v]);
          g.for_neighbors(static_cast<vertex_t>(v), mem, [&](const auto& nb) {
            bins.append(s, nb.to, RankUpdate{nb.to, contrib});
          });
        }
      });
      const std::size_t nbins = bins.bins();
      for_shards(pool, nbins, nbins < shards ? nbins : shards,
                 [&](std::size_t, std::size_t b, std::size_t e) {
                   for (std::size_t bin = b; bin < e; ++bin) {
                     for (std::size_t s = 0; s < shards; ++s) {
                       for (const RankUpdate& u : bins.bin(s, bin)) {
                         (*next)[static_cast<std::size_t>(u.dest)] += u.contrib;
                       }
                     }
                   }
                 });
    }

    // L1 delta (streaming reduce), then swap.
    for_shards(pool, un, shards, [&](std::size_t s, std::size_t b, std::size_t e) {
      double acc = 0.0;
      for (std::size_t v = b; v < e; ++v) acc += std::fabs((*next)[v] - (*rank)[v]);
      sc.partials()[s] = acc;
    });
    double delta = 0.0;
    for (const double d : sc.partials()) delta += d;
    std::swap(rank, next);
    ++stats.iterations;
    stats.delta = delta;
    if (p.tol > 0.0 && delta <= p.tol) break;
  }

  for_shards(pool, un, shards, [&](std::size_t, std::size_t b, std::size_t e) {
    for (std::size_t v = b; v < e; ++v) out[v] = (*rank)[v];
  });
  CG_COUNTER_ADD("analytics.pagerank.iterations", stats.iterations);
  const std::uint64_t pushed = static_cast<std::uint64_t>(g.num_edges()) * stats.iterations;
  // Two call sites: the counter macro binds its slot statically per use.
  if (p.binned) {
    CG_COUNTER_ADD("analytics.push.binned_edges", pushed);
  } else {
    CG_COUNTER_ADD("analytics.push.direct_edges", pushed);
  }
  return stats;
}

}  // namespace cachegraph::analytics
