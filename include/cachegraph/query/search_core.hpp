// The bounded early-exit Dijkstra core shared by every query shape,
// templated on the priority-queue policy so the query path can be
// ablated the way sssp::dijkstra is.
//
// Two queue policies:
//
//   IndexedQueue  — the paper's indexed heap (default pq::BinaryHeap,
//                   any IndexedHeap with clear() works): one entry per
//                   vertex, improvements are decrease_key. Early exit
//                   leaves entries behind, so the O(size) clear() is
//                   part of the scratch reset.
//   LazyQueue     — dijkstra_lazy-style lazy deletion (Sach & Clifford
//                   study queues without Update): improvements push
//                   fresh entries, stale ones are skipped at
//                   extraction. O(E) entries worst case, no position
//                   index to maintain.
//
// Early-exit correctness rests on the classic Dijkstra invariant
// (non-negative weights): extraction keys are nondecreasing, and a
// vertex's key at first extraction is its final shortest distance.
// Hence:
//   - stop at target extraction  → its distance is exact;
//   - stop after k extractions   → the settled set is a valid
//     k-nearest set (every settled distance <= every unsettled one);
//   - stop at first key > radius → exactly the vertices within the
//     radius have settled, and none beyond it ever will be closer.
// Settling order doubles as distance order, so `settled_order()` is
// already sorted for k-nearest answers.
//
// The scratch reset stays O(touched): the touched list undoes dist/
// parent/done marks, and the queue clears in O(entries remaining).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/pq/binary_heap.hpp"
#include "cachegraph/pq/concepts.hpp"
#include "cachegraph/query/request.hpp"
#include "cachegraph/reliability/cancel.hpp"
#include "cachegraph/reliability/fault_injector.hpp"

namespace cachegraph::query {

/// Indexed-heap queue policy: insert-on-first-sight, decrease_key on
/// improvement, nothing stale ever surfaces.
template <Weight W, template <class, class> class HeapT = pq::BinaryHeap>
class IndexedQueue {
 public:
  static constexpr bool kLazy = false;
  using Heap = HeapT<W, memsim::NullMem>;
  static_assert(pq::IndexedHeap<Heap>);

  explicit IndexedQueue(vertex_t n) : heap_(n) {}

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  void insert(vertex_t v, W key) { heap_.insert(v, key); }
  void improve(vertex_t v, W key) { heap_.decrease_key(v, key); }
  [[nodiscard]] auto extract_min() { return heap_.extract_min(); }
  void clear() noexcept { heap_.clear(); }

 private:
  Heap heap_;
};

/// Lazy-deletion queue policy: a plain array heap of {key, vertex}
/// entries; improve() pushes a duplicate and the search loop discards
/// entries whose vertex already settled.
template <Weight W>
class LazyQueue {
 public:
  static constexpr bool kLazy = true;

  struct Entry {
    W key;
    vertex_t vertex;
  };

  explicit LazyQueue(vertex_t n) { entries_.reserve(static_cast<std::size_t>(n)); }

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  void insert(vertex_t v, W key) {
    entries_.push_back(Entry{key, v});
    std::push_heap(entries_.begin(), entries_.end(), Greater{});
    if (entries_.size() > peak_entries_) peak_entries_ = entries_.size();
  }
  void improve(vertex_t v, W key) { insert(v, key); }
  Entry extract_min() {
    // std::pop_heap on an empty range is UB (it dereferences begin());
    // the search loop guards with empty(), but direct users get a
    // diagnosable precondition failure instead of a silent corruption.
    CG_CHECK(!entries_.empty(), "LazyQueue::extract_min on an empty queue");
    std::pop_heap(entries_.begin(), entries_.end(), Greater{});
    const Entry e = entries_.back();
    entries_.pop_back();
    return e;
  }
  void clear() noexcept {
    entries_.clear();
    peak_entries_ = 0;
  }

  /// High-water entry count since the last clear(). Duplicates make
  /// this O(E) in the worst case — the number the queue-policy
  /// ablation needs to see duplicate pressure (query.lazy.peak_entries
  /// records the per-search max).
  [[nodiscard]] std::size_t peak_entries() const noexcept { return peak_entries_; }

 private:
  struct Greater {
    bool operator()(const Entry& a, const Entry& b) const noexcept { return a.key > b.key; }
  };
  std::vector<Entry> entries_;
  std::size_t peak_entries_ = 0;
};

/// Default cancellation/deadline poll cadence (settled vertices per
/// poll). Polls cost an atomic flag load plus — for deadlines — a
/// steady_clock read, so K trades termination latency against
/// per-vertex overhead; EXPERIMENTS.md measures the ladder.
inline constexpr vertex_t kDefaultCheckEvery = 256;

/// Early-exit bounds, all optional; the all-defaults value runs a full
/// SSSP. Combined bounds stop at whichever triggers first.
///
/// `cancel`/`deadline` make the search *interruptible*: both are
/// polled once on entry (so a pre-cancelled token or a deadline at
/// zero settles nothing) and then every `check_every` settled
/// vertices. When neither is set, the loop carries no poll at all —
/// the legacy full-speed path.
template <Weight W>
struct Limits {
  vertex_t target = kNoVertex;  ///< stop once this vertex settles
  vertex_t k = 0;               ///< stop once this many settle (0 = no bound)
  W radius = inf<W>();          ///< stop past this distance (inclusive)
  /// Stop once *every* vertex in this set settles (empty = no bound;
  /// duplicates counted once). The span must outlive the search.
  std::span<const vertex_t> targets{};
  const reliability::CancelToken* cancel = nullptr;  ///< cooperative stop flag
  reliability::Deadline deadline{};                  ///< absolute time budget
  vertex_t check_every = kDefaultCheckEvery;         ///< poll cadence (>= 1)
};

/// Per-query reusable state (leased per worker by the engine, reset in
/// O(touched) between queries).
template <Weight W, class Queue = IndexedQueue<W>>
class SearchScratch {
 public:
  explicit SearchScratch(vertex_t n)
      : dist_(static_cast<std::size_t>(n), inf<W>()),
        parent_(static_cast<std::size_t>(n), kNoVertex),
        done_(static_cast<std::size_t>(n), 0),
        is_target_(static_cast<std::size_t>(n), 0),
        queue_(n) {
    touched_.reserve(static_cast<std::size_t>(n));
    settled_order_.reserve(static_cast<std::size_t>(n));
  }

  /// dist[v]: exact for settled vertices, an upper bound for touched-
  /// but-unsettled frontier vertices, inf untouched.
  [[nodiscard]] const std::vector<W>& dist() const noexcept { return dist_; }
  [[nodiscard]] const std::vector<vertex_t>& parent() const noexcept { return parent_; }
  [[nodiscard]] bool settled(vertex_t v) const noexcept {
    return done_[static_cast<std::size_t>(v)] != 0;
  }
  /// Every vertex with a non-inf dist (settled or frontier).
  [[nodiscard]] std::span<const vertex_t> touched() const noexcept { return touched_; }
  /// Settled vertices in settling order == nondecreasing distance
  /// order — a k-nearest answer needs no sort.
  [[nodiscard]] std::span<const vertex_t> settled_order() const noexcept {
    return settled_order_;
  }
  [[nodiscard]] std::uint64_t relaxations() const noexcept { return relaxations_; }
  [[nodiscard]] std::uint64_t stale_pops() const noexcept { return stale_pops_; }

  /// Undo the previous query's marks — O(touched + queue remnant).
  void reset() noexcept {
    for (const vertex_t v : touched_) {
      const auto u = static_cast<std::size_t>(v);
      dist_[u] = inf<W>();
      parent_[u] = kNoVertex;
      done_[u] = 0;
    }
    touched_.clear();
    settled_order_.clear();
    queue_.clear();
    relaxations_ = 0;
    stale_pops_ = 0;
  }

 private:
  template <class Q, graph::GraphRep G>
  friend Outcome search(const G& g, vertex_t source, const Limits<typename G::weight_type>& lim,
                        SearchScratch<typename G::weight_type, Q>& sc);

  std::vector<W> dist_;
  std::vector<vertex_t> parent_;
  std::vector<char> done_;
  std::vector<char> is_target_;  ///< MultiTarget marks; zeroed before search returns
  std::vector<vertex_t> touched_;
  std::vector<vertex_t> settled_order_;
  Queue queue_;
  std::uint64_t relaxations_ = 0;
  std::uint64_t stale_pops_ = 0;
};

/// One bounded Dijkstra from `source` under `lim`, writing into `sc`
/// (which is reset first). Requires non-negative edge weights.
template <class Queue, graph::GraphRep G>
Outcome search(const G& g, vertex_t source, const Limits<typename G::weight_type>& lim,
               SearchScratch<typename G::weight_type, Queue>& sc) {
  using W = typename G::weight_type;
  sc.reset();

  // Entry poll: a pre-cancelled token or an already-spent deadline
  // terminates before any work — "deadline at zero settles nothing"
  // is part of the contract the status tests pin down.
  const bool interruptible = lim.cancel != nullptr || lim.deadline.armed();
  if (interruptible) {
    CG_DCHECK(lim.check_every >= 1, "check_every must be positive");
    if (lim.cancel != nullptr && lim.cancel->cancelled()) return Outcome::cancelled;
    if (lim.deadline.armed() &&
        (lim.deadline.expired() ||
         CG_FAULT_FIRE(reliability::FaultSite::kForceTimeout))) {
      return Outcome::deadline_exceeded;
    }
  }

  // Mark the multi-target set; counting only 0→1 flips dedupes
  // repeated entries so `pending` is the number of *distinct* targets.
  // The guard erases the marks at EVERY exit — including the unwind
  // when the backing graph throws mid-scan (an out-of-core block read
  // surfacing DataLossError). reset() cannot undo marks (it tracks
  // touched vertices, not targets), and a leased scratch with stale
  // marks mis-counts the next search's `pending`: settling a stale
  // mark drains it early and the search reports targets_settled with
  // the real targets still at inf — silent data loss dressed as OK.
  struct MarkGuard {
    SearchScratch<W, Queue>& sc;
    std::span<const vertex_t> targets;
    ~MarkGuard() {
      for (const vertex_t t : targets) sc.is_target_[static_cast<std::size_t>(t)] = 0;
    }
  } mark_guard{sc, lim.targets};
  vertex_t pending = 0;
  for (const vertex_t t : lim.targets) {
    auto& mark = sc.is_target_[static_cast<std::size_t>(t)];
    if (mark == 0) {
      mark = 1;
      ++pending;
    }
  }

  const auto us = static_cast<std::size_t>(source);
  sc.dist_[us] = W{0};
  sc.touched_.push_back(source);
  sc.queue_.insert(source, W{0});

  memsim::NullMem mem;
  Outcome outcome = Outcome::exhausted;
  bool clipped = false;          // did the radius prune drop any candidate?
  vertex_t until_poll = lim.check_every;  // settled vertices until the next poll
  while (!sc.queue_.empty()) {
    const auto top = sc.queue_.extract_min();
    const vertex_t u = top.vertex;
    const auto uu = static_cast<std::size_t>(u);
    if constexpr (Queue::kLazy) {
      if (sc.done_[uu]) {
        ++sc.stale_pops_;  // superseded by an earlier, shorter entry
        continue;
      }
    }
    // Keys extract in nondecreasing order: once one passes the radius,
    // everything still queued is farther out. Do not settle u.
    if (top.key > lim.radius) {
      outcome = Outcome::radius_exceeded;
      break;
    }
    sc.done_[uu] = 1;
    sc.settled_order_.push_back(u);
    if (u == lim.target) {
      outcome = Outcome::target_settled;  // top.key is the exact answer
      break;
    }
    if (pending > 0 && sc.is_target_[uu] != 0) {
      sc.is_target_[uu] = 0;  // settled targets unmark themselves
      if (--pending == 0) {
        outcome = Outcome::targets_settled;  // whole set now exact
        break;
      }
    }
    if (lim.k != 0 && sc.settled_order_.size() >= static_cast<std::size_t>(lim.k)) {
      outcome = Outcome::k_settled;
      break;
    }
    // Periodic poll: every settled vertex already paid for a heap
    // extraction and an edge scan, so one flag load (plus a clock read
    // when a deadline is armed) every check_every of them is noise —
    // the K-ladder in EXPERIMENTS.md quantifies it. Polling *after*
    // settling keeps the invariant that everything in settled_order()
    // is exact, even for a terminated search.
    if (interruptible && --until_poll <= 0) {
      until_poll = lim.check_every;
      if (lim.cancel != nullptr && lim.cancel->cancelled()) {
        outcome = Outcome::cancelled;
        break;
      }
      if (lim.deadline.armed() &&
          (lim.deadline.expired() ||
           CG_FAULT_FIRE(reliability::FaultSite::kForceTimeout))) {
        outcome = Outcome::deadline_exceeded;
        break;
      }
    }
    const W du = top.key;
    g.for_neighbors(u, mem, [&](const graph::Neighbor<W>& nb) {
      const auto tv = static_cast<std::size_t>(nb.to);
      const W nd = sat_add(du, nb.weight);
      if (nd >= sc.dist_[tv]) return;
      CG_DCHECK(!sc.done_[tv], "negative edge weight in query search");
      if (sc.done_[tv]) return;
      // Radius prune: along any shortest path prefix distances are
      // nondecreasing, so a vertex within the radius is never reached
      // only through relaxations beyond it — dropping them shrinks the
      // frontier without losing answers.
      if (nd > lim.radius) {
        clipped = true;
        return;
      }
      if (is_inf(sc.dist_[tv])) {
        sc.touched_.push_back(nb.to);
        sc.queue_.insert(nb.to, nd);
      } else {
        sc.queue_.improve(nb.to, nd);
      }
      sc.dist_[tv] = nd;
      sc.parent_[tv] = u;
      ++sc.relaxations_;
    });
  }
  // The prune keeps out-of-radius keys from ever entering the queue, so
  // a bounded search drains rather than hitting the key check above;
  // report the clip so callers can tell "ball smaller than component"
  // from "whole component inside the radius".
  if (outcome == Outcome::exhausted && clipped) outcome = Outcome::radius_exceeded;
  CG_COUNTER_ADD("query.settled", sc.settled_order_.size());
  CG_COUNTER_ADD("query.relaxations", sc.relaxations_);
  CG_COUNTER_ADD("query.stale_pops", sc.stale_pops_);
  if constexpr (Queue::kLazy) {
    // Duplicate pressure: the lazy queue's entry high-water mark is
    // O(E) where the indexed heap's is O(V) — the ablation's whole
    // trade-off in one number.
    CG_COUNTER_MAX("query.lazy.peak_entries", sc.queue_.peak_entries());
  }
  return outcome;
}

}  // namespace cachegraph::query
