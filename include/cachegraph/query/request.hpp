// cachegraph::query — typed requests for the concurrent shortest-path
// query engine.
//
// The ROADMAP's online serving layer needs more than "full SSSP from
// s": most production queries want a single destination, the K closest
// vertices, or everything within a radius — and each of those can stop
// a Dijkstra search early, keeping the frontier (and therefore the
// working set) a fraction of the graph. "Making Caches Work for Graph
// Analytics" motivates exactly this bounding: the settled region is
// the working set, so the less a query explores, the more of it stays
// cache-resident. Four request shapes cover the ladder:
//
//   PointToPoint{source, target}  stop when target settles
//   KNearest{source, k}           stop when k vertices settle
//   Bounded<W>{source, radius}    stop when the frontier passes radius
//   FullSSSP{source}              run to exhaustion (the batch case)
#pragma once

#include <cstdint>
#include <variant>

#include "cachegraph/common/types.hpp"

namespace cachegraph::query {

/// Exact distance (and settled tree prefix) from source to target;
/// every other vertex settled on the way is a byproduct.
struct PointToPoint {
  vertex_t source = 0;
  vertex_t target = 0;
};

/// The k vertices nearest to source (the source itself counts; ties
/// beyond position k are dropped in settling order).
struct KNearest {
  vertex_t source = 0;
  vertex_t k = 1;
};

/// Every vertex within distance `radius` of source (inclusive).
template <Weight W>
struct Bounded {
  vertex_t source = 0;
  W radius = W{0};
};

/// The classic full single-source tree (what sssp::BatchEngine runs).
struct FullSSSP {
  vertex_t source = 0;
};

template <Weight W>
using Request = std::variant<PointToPoint, KNearest, Bounded<W>, FullSSSP>;

template <Weight W>
[[nodiscard]] constexpr vertex_t source_of(const Request<W>& r) noexcept {
  return std::visit([](const auto& req) { return req.source; }, r);
}

/// Dense request-kind index in variant-alternative order — the
/// telemetry layer's histogram/record key (matches obs::RequestKind's
/// first four values; telemetry_test asserts the label tables agree).
template <Weight W>
[[nodiscard]] constexpr std::uint8_t kind_index_of(const Request<W>& r) noexcept {
  return static_cast<std::uint8_t>(r.index());
}

/// Stable span/counter label per request shape.
template <Weight W>
[[nodiscard]] constexpr const char* kind_of(const Request<W>& r) noexcept {
  struct Visitor {
    constexpr const char* operator()(const PointToPoint&) const { return "point_to_point"; }
    constexpr const char* operator()(const KNearest&) const { return "k_nearest"; }
    constexpr const char* operator()(const Bounded<W>&) const { return "bounded"; }
    constexpr const char* operator()(const FullSSSP&) const { return "full_sssp"; }
  };
  return std::visit(Visitor{}, r);
}

/// Why a search stopped. The first four are *answers* (the request's
/// bound was met or the component drained); the last two are
/// *terminations* — the search was told to stop before it could
/// answer, and the scratch holds only a correct prefix (every settled
/// distance is still exact; the request is simply unanswered).
enum class Outcome {
  exhausted,          ///< frontier drained — every reachable vertex settled
  target_settled,     ///< PointToPoint: target extracted with final distance
  k_settled,          ///< KNearest: k-th vertex settled
  radius_exceeded,    ///< Bounded: the radius clipped the search short
  cancelled,          ///< cancel token fired at a poll point
  deadline_exceeded,  ///< deadline passed at a poll point (or on entry)
};

[[nodiscard]] constexpr const char* to_string(Outcome o) noexcept {
  switch (o) {
    case Outcome::exhausted: return "exhausted";
    case Outcome::target_settled: return "target_settled";
    case Outcome::k_settled: return "k_settled";
    case Outcome::radius_exceeded: return "radius_exceeded";
    case Outcome::cancelled: return "cancelled";
    case Outcome::deadline_exceeded: return "deadline_exceeded";
  }
  return "?";
}

}  // namespace cachegraph::query
