// cachegraph::query — typed requests for the concurrent shortest-path
// query engine.
//
// The ROADMAP's online serving layer needs more than "full SSSP from
// s": most production queries want a single destination, the K closest
// vertices, or everything within a radius — and each of those can stop
// a Dijkstra search early, keeping the frontier (and therefore the
// working set) a fraction of the graph. "Making Caches Work for Graph
// Analytics" motivates exactly this bounding: the settled region is
// the working set, so the less a query explores, the more of it stays
// cache-resident. Four request shapes cover the ladder:
//
//   PointToPoint{source, target}  stop when target settles
//   KNearest{source, k}           stop when k vertices settle
//   Bounded<W>{source, radius}    stop when the frontier passes radius
//   FullSSSP{source}              run to exhaustion (the batch case)
//   MultiTarget{source, targets}  stop when a *set* of targets settles
//                                 (the router's boundary-stitch probe)
//
// The analytics kinds (PageRank, Wcc, BfsFromSet, TriangleCount) ride
// the same variant: frontier/worklist kernels from
// cachegraph::analytics served with the identical deadline /
// cancellation / admission / telemetry plumbing. They write dense
// per-vertex results into caller-owned spans (the Response stays
// fixed-size); `binned` selects the propagation-blocking push phase,
// with the unbinned path as the differential oracle.
#pragma once

#include <cstdint>
#include <span>
#include <variant>

#include "cachegraph/common/types.hpp"

namespace cachegraph::query {

/// Exact distance (and settled tree prefix) from source to target;
/// every other vertex settled on the way is a byproduct.
struct PointToPoint {
  vertex_t source = 0;
  vertex_t target = 0;
};

/// The k vertices nearest to source (the source itself counts; ties
/// beyond position k are dropped in settling order).
struct KNearest {
  vertex_t source = 0;
  vertex_t k = 1;
};

/// Every vertex within distance `radius` of source (inclusive).
template <Weight W>
struct Bounded {
  vertex_t source = 0;
  W radius = W{0};
};

/// The classic full single-source tree (what sssp::BatchEngine runs).
struct FullSSSP {
  vertex_t source = 0;
};

/// PageRank by synchronous power iteration over the directed graph.
/// Dangling mass is redistributed uniformly; `out` must be a span of
/// exactly num_vertices doubles (the final ranks, summing to ~1).
/// Stops on max_iters or when the L1 delta between iterations drops
/// to `tol` (tol == 0 always runs max_iters — the differential mode).
struct PageRank {
  double damping = 0.85;
  std::uint32_t max_iters = 50;
  double tol = 1e-9;
  bool binned = false;  ///< propagation-blocking push phase
  std::span<double> out{};
};

/// Weakly-connected components by min-label propagation over the
/// symmetrized graph. `out[v]` becomes the smallest vertex id in v's
/// component — deterministic, so binned and unbinned are bit-identical.
struct Wcc {
  bool binned = false;
  std::span<vertex_t> out{};
};

/// Multi-source BFS over directed out-edges: `out[v]` is the hop depth
/// from the nearest seed (kNoVertex if unreached). Depths are
/// level-deterministic, so binned and unbinned are bit-identical.
struct BfsFromSet {
  std::span<const vertex_t> sources{};
  bool binned = false;
  std::span<vertex_t> out{};
};

/// Global triangle count over the symmetrized simple graph (self-loops
/// and parallel edges ignored). The count lands in Response::aux.
struct TriangleCount {};

/// Exact distances from source to *every* vertex in `targets`: the
/// bounded search stops once the whole set has settled (or the
/// component drains first, leaving the unreachable ones at inf). One
/// search amortizes the settled prefix across all targets — the
/// router's boundary stitching asks exactly this question (source →
/// every exit vertex of a shard). `targets` must stay alive for the
/// duration of the call; duplicates are allowed and counted once.
struct MultiTarget {
  vertex_t source = 0;
  std::span<const vertex_t> targets{};
};

template <Weight W>
using Request = std::variant<PointToPoint, KNearest, Bounded<W>, FullSSSP,  //
                             PageRank, Wcc, BfsFromSet, TriangleCount,      //
                             MultiTarget>;

/// True for the frontier-analytics kinds (dense whole-graph kernels
/// dispatched to cachegraph::analytics instead of the search core).
/// MultiTarget sits *after* the analytics block (appended to keep the
/// first eight indices stable) and is a search shape.
template <Weight W>
[[nodiscard]] constexpr bool is_analytics(const Request<W>& r) noexcept {
  return r.index() >= 4 && r.index() <= 7;
}

/// The request's source vertex where the shape has one; analytics
/// kinds are source-free and report 0 (telemetry records only).
template <Weight W>
[[nodiscard]] constexpr vertex_t source_of(const Request<W>& r) noexcept {
  return std::visit(
      [](const auto& req) -> vertex_t {
        if constexpr (requires { req.source; }) {
          return req.source;
        } else {
          return vertex_t{0};
        }
      },
      r);
}

/// Dense request-kind index — the telemetry layer's histogram/record
/// key (obs::RequestKind). The search shapes map identity to the first
/// four values; the analytics shapes skip over obs's batch_source /
/// cache_snapshot slots (telemetry_test asserts the label tables
/// agree).
template <Weight W>
[[nodiscard]] constexpr std::uint8_t kind_index_of(const Request<W>& r) noexcept {
  const auto idx = static_cast<std::uint8_t>(r.index());
  return idx < 4 ? idx : static_cast<std::uint8_t>(idx + 2);  // 8 → kKindMultiTarget (10)
}

/// Stable span/counter label per request shape.
template <Weight W>
[[nodiscard]] constexpr const char* kind_of(const Request<W>& r) noexcept {
  struct Visitor {
    constexpr const char* operator()(const PointToPoint&) const { return "point_to_point"; }
    constexpr const char* operator()(const KNearest&) const { return "k_nearest"; }
    constexpr const char* operator()(const Bounded<W>&) const { return "bounded"; }
    constexpr const char* operator()(const FullSSSP&) const { return "full_sssp"; }
    constexpr const char* operator()(const PageRank&) const { return "pagerank"; }
    constexpr const char* operator()(const Wcc&) const { return "wcc"; }
    constexpr const char* operator()(const BfsFromSet&) const { return "bfs_from_set"; }
    constexpr const char* operator()(const TriangleCount&) const { return "triangle_count"; }
    constexpr const char* operator()(const MultiTarget&) const { return "multi_target"; }
  };
  return std::visit(Visitor{}, r);
}

/// Why a search stopped. The first four are *answers* (the request's
/// bound was met or the component drained); the last two are
/// *terminations* — the search was told to stop before it could
/// answer, and the scratch holds only a correct prefix (every settled
/// distance is still exact; the request is simply unanswered).
enum class Outcome {
  exhausted,          ///< frontier drained — every reachable vertex settled
  target_settled,     ///< PointToPoint: target extracted with final distance
  k_settled,          ///< KNearest: k-th vertex settled
  radius_exceeded,    ///< Bounded: the radius clipped the search short
  cancelled,          ///< cancel token fired at a poll point
  deadline_exceeded,  ///< deadline passed at a poll point (or on entry)
  targets_settled,    ///< MultiTarget: every distinct target extracted
};

[[nodiscard]] constexpr const char* to_string(Outcome o) noexcept {
  switch (o) {
    case Outcome::exhausted: return "exhausted";
    case Outcome::target_settled: return "target_settled";
    case Outcome::k_settled: return "k_settled";
    case Outcome::radius_exceeded: return "radius_exceeded";
    case Outcome::cancelled: return "cancelled";
    case Outcome::deadline_exceeded: return "deadline_exceeded";
    case Outcome::targets_settled: return "targets_settled";
  }
  return "?";
}

}  // namespace cachegraph::query
