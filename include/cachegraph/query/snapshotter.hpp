// CacheSnapshotter — periodic background ResultCache snapshots off a
// timer thread (the ROADMAP carried item).
//
// The snapshot format and its durability story already exist
// (ResultCache::save_snapshot → io::write_file_durable: checksummed
// CGSNAP01, tmp + fsync + rename + parent-dir fsync); what was missing
// is *cadence* — a warm cache is only worth its disk image if someone
// actually writes one before the crash. The snapshotter owns that: a
// timer thread calls save_snapshot every `interval`, start/stop with a
// clean condition-variable join (no detached threads, no sleeping past
// shutdown).
//
// Two clocks, deliberately: the background thread runs on the real
// steady_clock; tests drive the same decision logic through
// `poll(now)` with a synthetic clock and pin the exact write schedule
// without sleeping.
//
// Concurrency contract: save_snapshot is safe against concurrent
// *serving* (the cache locks its tables) but, like every snapshot
// call, requires no concurrent overlay mutation (the graph fingerprint
// walks the overlay). Mutating deployments stop() around the quiescent
// mutation point — symmetric with the overlay's own contract.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <thread>

#include "cachegraph/common/check.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/query/result_cache.hpp"
#include "cachegraph/reliability/status.hpp"

namespace cachegraph::query {

template <Weight W, class Queue = IndexedQueue<W>>
class CacheSnapshotter {
 public:
  using clock = std::chrono::steady_clock;

  struct Config {
    std::filesystem::path path;
    std::chrono::milliseconds interval{1000};
  };

  struct Stats {
    std::uint64_t snapshots = 0;  ///< successful durable writes
    std::uint64_t failures = 0;   ///< save_snapshot returned non-OK
  };

  CacheSnapshotter(ResultCache<W, Queue>& cache, Config cfg)
      : cache_(cache), cfg_(std::move(cfg)) {
    CG_CHECK(!cfg_.path.empty(), "snapshotter needs a target path");
    CG_CHECK(cfg_.interval.count() > 0, "snapshot interval must be positive");
  }

  CacheSnapshotter(const CacheSnapshotter&) = delete;
  CacheSnapshotter& operator=(const CacheSnapshotter&) = delete;

  ~CacheSnapshotter() { stop(); }

  /// One durable snapshot, now, on the calling thread.
  [[nodiscard]] reliability::Status snapshot_now() {
    auto st = cache_.save_snapshot(cfg_.path);
    std::lock_guard lk(mu_);
    if (st.is_ok()) {
      ++stats_.snapshots;
      CG_COUNTER_INC("query.snapshotter.snapshots");
    } else {
      ++stats_.failures;
      CG_COUNTER_INC("query.snapshotter.failures");
    }
    return st;
  }

  /// Synthetic-clock surface: writes a snapshot iff `interval` has
  /// elapsed since the last write (the first poll always writes).
  /// Returns whether a write happened. Tests drive this with fabricated
  /// time_points; production uses start()/stop() instead.
  bool poll(clock::time_point now) {
    {
      std::lock_guard lk(mu_);
      if (last_write_ && now - *last_write_ < cfg_.interval) return false;
      last_write_ = now;
    }
    (void)snapshot_now();
    return true;
  }

  /// Starts the timer thread: one snapshot per interval until stop().
  void start() {
    CG_CHECK(!running(), "snapshotter already running");
    stop_ = false;
    thread_ = std::thread([this] {
      std::unique_lock lk(mu_);
      while (!stop_) {
        if (cv_.wait_for(lk, cfg_.interval, [this] { return stop_; })) break;
        lk.unlock();
        (void)snapshot_now();
        lk.lock();
      }
    });
  }

  /// Stops and joins the timer thread. Idempotent; the destructor
  /// calls it, so a snapshotter can never outlive its thread.
  void stop() {
    {
      std::lock_guard lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] bool running() const noexcept { return thread_.joinable(); }

  [[nodiscard]] Stats stats() const {
    std::lock_guard lk(mu_);
    return stats_;
  }

 private:
  ResultCache<W, Queue>& cache_;
  Config cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::optional<clock::time_point> last_write_;
  Stats stats_;
  std::thread thread_;
};

}  // namespace cachegraph::query
