// QueryEngine — the concurrent shortest-path query service.
//
// Accepts typed requests (PointToPoint / KNearest / Bounded /
// FullSSSP), executes them as TaskPool tasks over one shared graph
// view, and early-exits each search the moment its request is
// answered (see search_core.hpp for the bounding proof sketch). The
// graph view is any GraphRep — the immutable AdjacencyArray for a
// static service, or a DynamicOverlay when edges churn.
//
// Cache discipline (the reason this layer exists, per "Making Caches
// Work for Graph Analytics"): per-query scratch is leased per worker
// from a parallel::LeasePool and reset in O(touched), so a bounded
// query pays only for the region it explored, and the scratch a
// worker reuses is the one already resident in its cache. At most
// `pool.num_threads()` scratches are ever allocated.
//
// The queue policy is a template parameter (indexed heap vs lazy
// deletion) so the query path can be ablated under realistic request
// mixes — bench_query_engine does exactly that.
//
// Observability: `query.*` counters (requests by kind, settled,
// relaxations, stale_pops, early_exits), a per-batch
// CG_TRACE_SPAN("query.run") plus one span per request named after
// its kind, and a pool counter flush per batch.
//
// Threading contract: the graph view must stay unmodified while
// requests run (mutate a DynamicOverlay only at quiescent points —
// the ResultCache's revalidation flow). run() may be called from one
// thread at a time per engine; the serial helpers (distance /
// k_nearest / within / full) are safe from any thread, including
// concurrently with each other.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <variant>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/obs/trace.hpp"
#include "cachegraph/parallel/lease_pool.hpp"
#include "cachegraph/parallel/task_pool.hpp"
#include "cachegraph/query/request.hpp"
#include "cachegraph/query/search_core.hpp"

namespace cachegraph::query {

template <graph::GraphRep G, class Queue = IndexedQueue<typename G::weight_type>>
class QueryEngine {
 public:
  using weight_type = typename G::weight_type;
  using W = weight_type;
  using Scratch = SearchScratch<W, Queue>;

  /// Per-request summary handed to sinks alongside the scratch.
  struct Response {
    Outcome outcome = Outcome::exhausted;
    std::uint64_t settled = 0;     ///< vertices with exact final distances
    W target_dist = inf<W>();      ///< PointToPoint answer; inf otherwise
  };

  /// Engine-lifetime tallies (atomic; readable any time).
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t settled = 0;
    std::uint64_t early_exits = 0;     ///< requests that stopped before exhaustion
    std::uint64_t scratch_allocs = 0;
    std::uint64_t scratch_reuses = 0;
  };

  explicit QueryEngine(const G& g) : g_(g), n_(g.num_vertices()) {}

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  [[nodiscard]] Stats stats() const noexcept {
    const auto lp = scratch_pool_.stats();
    return Stats{requests_.load(std::memory_order_relaxed),
                 settled_.load(std::memory_order_relaxed),
                 early_exits_.load(std::memory_order_relaxed), lp.allocs, lp.reuses};
  }

  [[nodiscard]] const G& graph() const noexcept { return g_; }

  // ------------------------------------------------------ batch serving

  /// Runs every request as a TaskPool task; `sink(index, request,
  /// response, scratch)` fires on the worker that finished it. The
  /// scratch reference (dist/parent/touched/settled_order for the
  /// request's explored region) is only valid inside the sink call.
  template <typename Sink>
  void run(std::span<const Request<W>> requests, parallel::TaskPool& pool, Sink&& sink) {
    CG_TRACE_SPAN("query.run");
    for (const auto& req : requests) validate(req);
    {
      parallel::TaskGroup group(pool);
      for (std::size_t i = 0; i < requests.size(); ++i) {
        const Request<W>& req = requests[i];
        group.run([this, i, &req, &sink] {
          const auto lease =
              scratch_pool_.acquire([this] { return std::make_unique<Scratch>(n_); });
          Scratch& sc = lease.get();
          const Response resp = execute(req, sc);
          sink(i, req, resp, static_cast<const Scratch&>(sc));
        });
      }
      group.wait();
    }
    requests_.fetch_add(requests.size(), std::memory_order_relaxed);
    CG_COUNTER_INC("query.runs");
    pool.flush_counters();
  }

  /// Materialized overload: just the per-request summaries (the sink
  /// form is the zero-copy path for payload-carrying answers).
  [[nodiscard]] std::vector<Response> run(std::span<const Request<W>> requests,
                                          parallel::TaskPool& pool) {
    std::vector<Response> out(requests.size());
    run(requests, pool,
        [&out](std::size_t i, const Request<W>&, const Response& r, const Scratch&) {
          out[i] = r;
        });
    return out;
  }

  // ------------------------------------- serial helpers (caller thread)

  /// Exact shortest distance source→target (inf when unreachable).
  [[nodiscard]] W distance(vertex_t source, vertex_t target) {
    W out = inf<W>();
    serve(Request<W>{PointToPoint{source, target}},
          [&](const Response& r, const Scratch&) { out = r.target_dist; });
    return out;
  }

  struct NearItem {
    vertex_t vertex;
    W dist;
    friend bool operator==(const NearItem&, const NearItem&) = default;
  };

  /// The (up to) k nearest vertices, nearest first (source included,
  /// distance 0). Fewer than k when the component is smaller.
  [[nodiscard]] std::vector<NearItem> k_nearest(vertex_t source, vertex_t k) {
    std::vector<NearItem> out;
    serve(Request<W>{KNearest{source, k}}, [&](const Response&, const Scratch& sc) {
      out.reserve(sc.settled_order().size());
      for (const vertex_t v : sc.settled_order()) {
        out.push_back(NearItem{v, sc.dist()[static_cast<std::size_t>(v)]});
      }
    });
    return out;
  }

  /// Every vertex within `radius` of source (inclusive), nearest first.
  [[nodiscard]] std::vector<NearItem> within(vertex_t source, W radius) {
    std::vector<NearItem> out;
    serve(Request<W>{Bounded<W>{source, radius}}, [&](const Response&, const Scratch& sc) {
      out.reserve(sc.settled_order().size());
      for (const vertex_t v : sc.settled_order()) {
        out.push_back(NearItem{v, sc.dist()[static_cast<std::size_t>(v)]});
      }
    });
    return out;
  }

  struct Tree {
    std::vector<W> dist;
    std::vector<vertex_t> parent;
  };

  /// The full single-source tree, materialized.
  [[nodiscard]] Tree full(vertex_t source) {
    Tree out;
    serve(Request<W>{FullSSSP{source}}, [&](const Response&, const Scratch& sc) {
      out.dist = sc.dist();
      out.parent = sc.parent();
    });
    return out;
  }

  /// One request on the calling thread; `fn(response, scratch)` runs
  /// before the scratch is returned to the lease pool. Thread-safe.
  template <typename Fn>
  void serve(const Request<W>& req, Fn&& fn) {
    validate(req);
    const auto lease = scratch_pool_.acquire([this] { return std::make_unique<Scratch>(n_); });
    Scratch& sc = lease.get();
    const Response resp = execute(req, sc);
    requests_.fetch_add(1, std::memory_order_relaxed);
    fn(static_cast<const Response&>(resp), static_cast<const Scratch&>(sc));
  }

 private:
  void validate(const Request<W>& req) const {
    const vertex_t s = source_of(req);
    CG_CHECK(s >= 0 && s < n_, "query source out of range");
    std::visit(
        [this](const auto& r) {
          using R = std::decay_t<decltype(r)>;
          if constexpr (std::is_same_v<R, PointToPoint>) {
            CG_CHECK(r.target >= 0 && r.target < n_, "query target out of range");
          } else if constexpr (std::is_same_v<R, KNearest>) {
            CG_CHECK(r.k >= 1, "k_nearest needs k >= 1");
          } else if constexpr (std::is_same_v<R, Bounded<W>>) {
            CG_CHECK(r.radius >= W{0}, "bounded query needs a non-negative radius");
          }
        },
        req);
  }

  Response execute(const Request<W>& req, Scratch& sc) {
    Limits<W> lim;
    vertex_t target = kNoVertex;
    std::visit(
        [&](const auto& r) {
          using R = std::decay_t<decltype(r)>;
          if constexpr (std::is_same_v<R, PointToPoint>) {
            lim.target = target = r.target;
            CG_COUNTER_INC("query.requests.point_to_point");
          } else if constexpr (std::is_same_v<R, KNearest>) {
            lim.k = r.k;
            CG_COUNTER_INC("query.requests.k_nearest");
          } else if constexpr (std::is_same_v<R, Bounded<W>>) {
            lim.radius = r.radius;
            CG_COUNTER_INC("query.requests.bounded");
          } else {
            CG_COUNTER_INC("query.requests.full_sssp");
          }
        },
        req);

    const obs::TraceSpan span(kind_of(req));
    Response resp;
    resp.outcome = search<Queue>(g_, source_of(req), lim, sc);
    resp.settled = sc.settled_order().size();
    if (target != kNoVertex) {
      // Settled ⇒ exact; otherwise the search exhausted the component
      // without reaching it, and dist() already says inf.
      resp.target_dist = sc.dist()[static_cast<std::size_t>(target)];
    }
    settled_.fetch_add(resp.settled, std::memory_order_relaxed);
    if (resp.outcome != Outcome::exhausted) {
      early_exits_.fetch_add(1, std::memory_order_relaxed);
      CG_COUNTER_INC("query.early_exits");
    }
    return resp;
  }

  const G& g_;
  vertex_t n_;
  parallel::LeasePool<Scratch> scratch_pool_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> settled_{0};
  std::atomic<std::uint64_t> early_exits_{0};
};

}  // namespace cachegraph::query
