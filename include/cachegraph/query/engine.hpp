// QueryEngine — the concurrent shortest-path query service.
//
// Accepts typed requests (PointToPoint / KNearest / Bounded /
// FullSSSP), executes them as TaskPool tasks over one shared graph
// view, and early-exits each search the moment its request is
// answered (see search_core.hpp for the bounding proof sketch). The
// graph view is any GraphRep — the immutable AdjacencyArray for a
// static service, or a DynamicOverlay when edges churn.
//
// The analytics kinds (PageRank / Wcc / BfsFromSet / TriangleCount)
// ride the same surfaces: validated the same way, admitted the same
// way, resolved with the same Status set, recorded in the same
// per-kind histograms. They dispatch to cachegraph::analytics frontier
// kernels over a second leased-scratch pool; on the batch surfaces the
// kernel parallelizes on the same TaskPool that runs the request
// (nested TaskGroups are safe — wait() participates), while the serial
// surfaces run them single-threaded. set_llc_bytes/set_llc_machine
// size the propagation-blocking bins for the `binned` request toggle.
//
// Cache discipline (the reason this layer exists, per "Making Caches
// Work for Graph Analytics"): per-query scratch is leased per worker
// from a parallel::LeasePool and reset in O(touched), so a bounded
// query pays only for the region it explored, and the scratch a
// worker reuses is the one already resident in its cache. At most
// `pool.num_threads()` scratches are ever allocated (fewer when
// set_scratch_capacity caps the pool).
//
// Two serving surfaces:
//
//   Legacy (run / serve / distance / …) — throwing validation
//   (CG_CHECK), infallible scratch, no time bounds. Unchanged.
//
//   Hardened (try_serve / try_run) — every request resolves to a
//   Response carrying a reliability::Status from the closed code set;
//   nothing escapes as an exception. ServeOptions adds a cooperative
//   cancel token, an absolute deadline, and the poll cadence; the
//   engine gives each batched request its own CancelToken parented on
//   the batch token so admission shedding can kill one victim while a
//   batch cancel kills everything. Admission control (set_admission)
//   bounds in-flight requests with a pluggable overload policy:
//   kBlock (the submitting thread helps the pool until a slot frees),
//   kReject (resolve OVERLOADED immediately), kShed (cancel the
//   oldest in-flight victim — newest wins). Transient scratch-pool
//   exhaustion is retried with exponential backoff (reliability/
//   retry.hpp) bounded by the request deadline before it surfaces as
//   RESOURCE_EXHAUSTED.
//
// Status contract for sinks: a terminated search (CANCELLED /
// DEADLINE_EXCEEDED) still hands the sink the real scratch — every
// settled distance in it is exact, a correct prefix of the answer. A
// request that never searched (INVALID_ARGUMENT, OVERLOADED,
// RESOURCE_EXHAUSTED, or an aborted task) gets a zero-vertex empty
// scratch; check response.status before reading distances.
//
// The queue policy is a template parameter (indexed heap vs lazy
// deletion) so the query path can be ablated under realistic request
// mixes — bench_query_engine does exactly that.
//
// Observability: `query.*` counters (requests by kind, settled,
// relaxations, stale_pops, early_exits) plus `reliability.*` counters
// (admission blocked/rejected/shed, cancelled / deadline_exceeded /
// aborted / exhausted resolutions, retry attempts), a per-batch
// CG_TRACE_SPAN("query.run") and one span per request named after its
// kind, and a pool counter flush per batch.
//
// Serving telemetry (CACHEGRAPH_INSTRUMENT builds; compiled out
// otherwise): every resolved request emits an obs::RequestRecord —
// admission-wait / queue-wait / compute time splits, settled and
// relaxation counts, outcome + status, deadline slack — fanned out by
// obs::note_request to the per-kind latency histograms in the
// MetricsRegistry and the always-on FlightRecorder ring; traced runs
// additionally get a retrospective "queue_wait" child span ('X' event)
// per request. Batch boundaries sample the gauges (pool queue depth,
// in-flight requests, scratch-lease utilization) and poll the periodic
// metrics snapshot writer.
//
// Threading contract: the graph view must stay unmodified while
// requests run (mutate a DynamicOverlay only at quiescent points —
// the ResultCache's revalidation flow). run()/try_run() may be called
// from one thread at a time per engine; the serial helpers (distance /
// k_nearest / within / full / try_serve) are safe from any thread,
// including concurrently with each other.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "cachegraph/analytics/bfs.hpp"
#include "cachegraph/analytics/core.hpp"
#include "cachegraph/analytics/pagerank.hpp"
#include "cachegraph/analytics/triangles.hpp"
#include "cachegraph/analytics/wcc.hpp"
#include "cachegraph/analytics/workspace.hpp"
#include "cachegraph/common/check.hpp"
#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/memsim/config.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/obs/metrics.hpp"
#include "cachegraph/obs/telemetry.hpp"
#include "cachegraph/obs/trace.hpp"
#include "cachegraph/parallel/lease_pool.hpp"
#include "cachegraph/parallel/task_pool.hpp"
#include "cachegraph/query/request.hpp"
#include "cachegraph/query/search_core.hpp"
#include "cachegraph/reliability/cancel.hpp"
#include "cachegraph/reliability/fault_injector.hpp"
#include "cachegraph/reliability/retry.hpp"
#include "cachegraph/reliability/status.hpp"

namespace cachegraph::query {

// The analytics kinds' variant slots must land on their obs
// histogram slots (telemetry_test pins the label tables too).
static_assert(kind_index_of(Request<std::int32_t>{PageRank{}}) == obs::kKindPageRank);
static_assert(kind_index_of(Request<std::int32_t>{Wcc{}}) == obs::kKindWcc);
static_assert(kind_index_of(Request<std::int32_t>{BfsFromSet{}}) == obs::kKindBfsFromSet);
static_assert(kind_index_of(Request<std::int32_t>{TriangleCount{}}) == obs::kKindTriangleCount);
static_assert(kind_index_of(Request<std::int32_t>{MultiTarget{}}) == obs::kKindMultiTarget);
static_assert(!is_analytics(Request<std::int32_t>{MultiTarget{}}));

/// What to do with a request that arrives while max_in_flight requests
/// are already running.
enum class OverloadPolicy {
  kBlock,   ///< submitting thread helps drain the pool until a slot frees
  kReject,  ///< resolve OVERLOADED immediately — fail fast, caller retries
  kShed,    ///< cancel the oldest in-flight request to make room (newest wins)
};

[[nodiscard]] constexpr const char* to_string(OverloadPolicy p) noexcept {
  switch (p) {
    case OverloadPolicy::kBlock: return "block";
    case OverloadPolicy::kReject: return "reject";
    case OverloadPolicy::kShed: return "shed";
  }
  return "?";
}

/// Deadline-aware kBlock: true once `now` has passed the halfway point
/// between `enter` (when blocking began) and the request's deadline.
/// Past that point less than half the budget remains for the search
/// itself, so continuing to queue is throwing good time after bad —
/// the request sheds to OVERLOADED while the caller can still retry
/// elsewhere, instead of limping to a near-certain DEADLINE_EXCEEDED.
/// An unarmed deadline never exhausts (legacy unbounded blocking).
[[nodiscard]] inline bool block_budget_exhausted(
    std::chrono::steady_clock::time_point enter, const reliability::Deadline& deadline,
    std::chrono::steady_clock::time_point now) noexcept {
  if (!deadline.armed()) return false;
  return now - enter >= (deadline.when() - enter) / 2;
}

template <graph::GraphRep G, class Queue = IndexedQueue<typename G::weight_type>>
class QueryEngine {
 public:
  using weight_type = typename G::weight_type;
  using W = weight_type;
  using Scratch = SearchScratch<W, Queue>;

  /// Per-request summary handed to sinks alongside the scratch.
  struct Response {
    Outcome outcome = Outcome::exhausted;
    std::uint64_t settled = 0;     ///< vertices with exact final distances
    W target_dist = inf<W>();      ///< PointToPoint answer; inf otherwise
    reliability::Status status;    ///< definite resolution (OK = answered)
    /// Analytics scalar answer: PageRank iterations run, WCC component
    /// count, BFS vertices reached, or the triangle count. 0 for the
    /// search kinds.
    std::uint64_t aux = 0;
  };

  /// Time/cancellation bounds for the hardened surface. For try_run
  /// these are *batch-level*: the deadline bounds every request in the
  /// batch, and `cancel` is the parent of each request's own token.
  struct ServeOptions {
    reliability::Deadline deadline{};                  ///< absolute budget (none = unbounded)
    const reliability::CancelToken* cancel = nullptr;  ///< caller-owned; must outlive the call
    vertex_t check_every = kDefaultCheckEvery;         ///< poll cadence in settled vertices
  };

  /// Admission control: 0 = unbounded (the default — legacy behavior).
  struct Admission {
    std::size_t max_in_flight = 0;
    OverloadPolicy policy = OverloadPolicy::kBlock;
  };

  /// Engine-lifetime tallies (atomic; readable any time).
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t settled = 0;
    std::uint64_t early_exits = 0;     ///< answered before exhausting the component
    std::uint64_t scratch_allocs = 0;
    std::uint64_t scratch_reuses = 0;
    std::uint64_t blocked = 0;         ///< admissions that waited for a slot
    std::uint64_t rejected = 0;        ///< resolved OVERLOADED at admission
    std::uint64_t shed = 0;            ///< victims cancelled to admit newer work
    std::uint64_t aborted = 0;         ///< tasks that threw (resolved CANCELLED)
    std::uint64_t lease_failures = 0;  ///< RESOURCE_EXHAUSTED after retries
    std::uint64_t deadline_rejects = 0;  ///< kBlock shed: half the budget spent queueing
  };

  explicit QueryEngine(const G& g) : g_(g), n_(g.num_vertices()), ws_(g) {}

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  [[nodiscard]] Stats stats() const noexcept {
    const auto lp = scratch_pool_.stats();
    return Stats{requests_.load(std::memory_order_relaxed),
                 settled_.load(std::memory_order_relaxed),
                 early_exits_.load(std::memory_order_relaxed),
                 lp.allocs,
                 lp.reuses,
                 blocked_.load(std::memory_order_relaxed),
                 rejected_.load(std::memory_order_relaxed),
                 shed_.load(std::memory_order_relaxed),
                 aborted_.load(std::memory_order_relaxed),
                 lease_failures_.load(std::memory_order_relaxed),
                 deadline_rejects_.load(std::memory_order_relaxed)};
  }

  [[nodiscard]] const G& graph() const noexcept { return g_; }

  // -------------------------------------------------------- configuration

  /// Bounds concurrent requests in try_run. Configuration call — make
  /// it before traffic.
  void set_admission(Admission a) noexcept { admission_ = a; }
  [[nodiscard]] Admission admission() const noexcept { return admission_; }

  /// Caps the scratch pool (0 = unbounded). With a cap below the
  /// worker count, excess concurrent requests see transient
  /// RESOURCE_EXHAUSTED — the hardened surface retries with backoff,
  /// acquire() in the legacy surface would trip CG_CHECK.
  void set_scratch_capacity(std::size_t cap) noexcept { scratch_pool_.set_capacity(cap); }

  /// Backoff schedule for transient scratch-lease failures on the
  /// hardened surface (the per-request deadline overrides the
  /// policy's own).
  void set_lease_backoff(reliability::BackoffPolicy p) noexcept { lease_backoff_ = p; }

  /// LLC budget driving the analytics propagation-blocking bin layout
  /// (default 2 MiB). Configuration call — make it before traffic.
  void set_llc_bytes(std::size_t bytes) noexcept { llc_bytes_ = bytes; }

  /// Same, from a memsim machine model (L3 when present, else L2).
  void set_llc_machine(const memsim::MachineConfig& machine) noexcept {
    llc_bytes_ = machine.has_l3() ? machine.l3.size_bytes : machine.l2.size_bytes;
  }

  /// Drops the cached analytics views (degrees, symmetrized CSR,
  /// triangle orientation). Call after mutating a DynamicOverlay, at a
  /// quiescent point — the same contract as the graph view itself.
  void refresh_analytics() noexcept { ws_.invalidate(); }

  // ------------------------------------------------------ batch serving

  /// Runs every request as a TaskPool task; `sink(index, request,
  /// response, scratch)` fires on the worker that finished it. The
  /// scratch reference (dist/parent/touched/settled_order for the
  /// request's explored region) is only valid inside the sink call.
  template <typename Sink>
  void run(std::span<const Request<W>> requests, parallel::TaskPool& pool, Sink&& sink) {
    CG_TRACE_SPAN("query.run");
    for (const auto& req : requests) validate(req);
    std::vector<tel_clock::time_point> t_submit;
    if constexpr (obs::kTelemetryEnabled) t_submit.resize(requests.size());
    {
      parallel::TaskGroup group(pool);
      for (std::size_t i = 0; i < requests.size(); ++i) {
        const Request<W>& req = requests[i];
        if constexpr (obs::kTelemetryEnabled) t_submit[i] = tel_clock::now();
        group.run([this, i, &req, &sink, &t_submit, &pool] {
          tel_clock::time_point t_start{}, e0{}, e1{};
          if constexpr (obs::kTelemetryEnabled) t_start = tel_clock::now();
          const auto lease =
              scratch_pool_.acquire([this] { return std::make_unique<Scratch>(n_); });
          Scratch& sc = lease.get();
          if constexpr (obs::kTelemetryEnabled) e0 = tel_clock::now();
          const Response resp = execute(req, sc, ServeOptions{}, &pool);
          if constexpr (obs::kTelemetryEnabled) {
            e1 = tel_clock::now();
            // No admission gate on the legacy surface: submit == admit,
            // so the record's admission wait is zero by construction.
            finish_telemetry(req, resp, &sc, ServeOptions{}, /*aborted=*/false, t_submit[i],
                             t_submit[i], t_start, e0, e1);
          }
          sink(i, req, resp, static_cast<const Scratch&>(sc));
        });
      }
      group.wait();
    }
    requests_.fetch_add(requests.size(), std::memory_order_relaxed);
    CG_COUNTER_INC("query.runs");
    pool.flush_counters();
    if constexpr (obs::kTelemetryEnabled) sample_gauges(pool);
  }

  /// Materialized overload: just the per-request summaries (the sink
  /// form is the zero-copy path for payload-carrying answers).
  [[nodiscard]] std::vector<Response> run(std::span<const Request<W>> requests,
                                          parallel::TaskPool& pool) {
    std::vector<Response> out(requests.size());
    run(requests, pool,
        [&out](std::size_t i, const Request<W>&, const Response& r, const Scratch&) {
          out[i] = r;
        });
    return out;
  }

  // -------------------------------------------- hardened batch serving

  /// The non-throwing batch: every request resolves with a definite
  /// status exactly once, whatever happens — validation failure,
  /// deadline, cancellation, admission reject/shed, scratch
  /// exhaustion, or a task that throws (resolved CANCELLED "task
  /// aborted"). The only exception that can escape is one thrown by
  /// `sink` itself; even then the group is drained first (no leaked
  /// tasks) and the affected request is re-delivered once with a
  /// CANCELLED status through a swallow-all sink call.
  template <typename Sink>
  void try_run(std::span<const Request<W>> requests, parallel::TaskPool& pool,
               const ServeOptions& opts, Sink&& sink) {
    CG_TRACE_SPAN("query.run");
    const std::size_t m = requests.size();
    // Stable-address per-request tokens, each parented on the batch
    // token: shed cancels one, the caller's token cancels all.
    std::vector<std::unique_ptr<reliability::CancelToken>> tokens;
    tokens.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      tokens.push_back(std::make_unique<reliability::CancelToken>(opts.cancel));
    }
    std::vector<char> resolved(m, 0);  // distinct-index writes; read after wait()
    std::mutex active_mu;
    std::vector<std::size_t> active;  // admission order — front is the shed victim
    std::atomic<std::size_t> in_flight{0};
    const Admission adm = admission_;

    std::vector<Response> pre(m);  // submitting-thread resolutions
    std::vector<tel_clock::time_point> t_submit, t_admit;
    if constexpr (obs::kTelemetryEnabled) {
      t_submit.resize(m);
      t_admit.resize(m);
    }
    {
      parallel::TaskGroup group(pool);
      for (std::size_t i = 0; i < m; ++i) {
        const Request<W>& req = requests[i];
        if constexpr (obs::kTelemetryEnabled) t_submit[i] = tel_clock::now();
        Response early;
        early.status = preflight(req, opts, adm, pool, in_flight, active, active_mu, tokens);
        if (!early.status.is_ok()) {
          resolved[i] = 1;
          pre[i] = early;
          if constexpr (obs::kTelemetryEnabled) {
            // Never ran: the whole life was spent (blocked) in
            // preflight, which finish_telemetry books as admission wait.
            finish_telemetry(req, early, nullptr, opts, /*aborted=*/false, t_submit[i], {}, {},
                             {}, {});
          }
          sink(i, req, static_cast<const Response&>(pre[i]), empty_);
          continue;
        }
        const std::size_t now_in_flight = in_flight.fetch_add(1, std::memory_order_relaxed) + 1;
        if constexpr (obs::kTelemetryEnabled) {
          t_admit[i] = tel_clock::now();
          static obs::Gauge& g_in_flight = obs::MetricsRegistry::instance().gauge("query.in_flight");
          g_in_flight.set(static_cast<double>(now_in_flight));
        } else {
          (void)now_in_flight;
        }
        {
          const std::lock_guard<std::mutex> lock(active_mu);
          active.push_back(i);
        }
        group.run([this, i, &req, &sink, &opts, &tokens, &resolved, &active, &active_mu,
                   &in_flight, &t_submit, &t_admit, &pool] {
          Response resp;
          bool scratch_valid = false;
          bool aborted = false;
          tel_clock::time_point t_start{}, e0{}, e1{};
          if constexpr (obs::kTelemetryEnabled) t_start = tel_clock::now();
          reliability::Status lease_status;
          auto lease = acquire_scratch(opts.deadline, lease_status);
          if (!lease) {
            resp.status = lease_status;
          } else {
            ServeOptions per = opts;
            per.cancel = tokens[i].get();
            if constexpr (obs::kTelemetryEnabled) e0 = tel_clock::now();
            try {
              resp = execute(req, lease->get(), per, &pool);
              scratch_valid = true;
            } catch (const reliability::DataLossError& e) {
              // An out-of-core graph hit a corrupt/unreadable block
              // mid-scan: the stored data is damaged, not the request.
              resp = Response{};
              resp.status = reliability::data_loss(e.what());
              CG_COUNTER_INC("reliability.requests.data_loss");
            } catch (const std::exception& e) {
              resp = Response{};
              resp.status = reliability::cancelled(std::string("task aborted: ") + e.what());
              note_abort();
              aborted = true;
            } catch (...) {
              resp = Response{};
              resp.status = reliability::cancelled("task aborted: unknown exception");
              note_abort();
              aborted = true;
            }
            if constexpr (obs::kTelemetryEnabled) e1 = tel_clock::now();
          }
          if constexpr (obs::kTelemetryEnabled) {
            finish_telemetry(req, resp, scratch_valid ? &lease->get() : nullptr, opts, aborted,
                             t_submit[i], t_admit[i], t_start, e0, e1);
          } else {
            (void)aborted;
          }
          // Bookkeeping before the sink: a throwing sink must not
          // leak its admission slot or its shed-victim entry.
          {
            const std::lock_guard<std::mutex> lock(active_mu);
            active.erase(std::find(active.begin(), active.end(), i));
          }
          in_flight.fetch_sub(1, std::memory_order_release);
          requests_.fetch_add(1, std::memory_order_relaxed);
          sink(i, req, static_cast<const Response&>(resp),
               scratch_valid ? static_cast<const Scratch&>(lease->get()) : empty_);
          resolved[i] = 1;
        });
      }
      try {
        group.wait();
      } catch (...) {
        // A sink threw. The group is already drained (wait rethrows
        // only after pending hits zero), so only re-delivery remains.
        note_abort();
      }
    }
    // Definite-status backfill: anything unresolved (a sink that threw
    // mid-delivery) gets exactly one more delivery, swallow-all.
    for (std::size_t i = 0; i < m; ++i) {
      if (resolved[i]) continue;
      Response resp;
      resp.status = reliability::cancelled("task aborted: sink threw during delivery");
      try {
        sink(i, requests[i], static_cast<const Response&>(resp), empty_);
      } catch (...) {  // NOLINT(bugprone-empty-catch) — backfill is best-effort
      }
    }
    CG_COUNTER_INC("query.runs");
    pool.flush_counters();
    if constexpr (obs::kTelemetryEnabled) sample_gauges(pool);
  }

  /// Materialized hardened batch: one definite-status Response per
  /// request, index-aligned.
  [[nodiscard]] std::vector<Response> try_run(std::span<const Request<W>> requests,
                                              parallel::TaskPool& pool,
                                              const ServeOptions& opts = {}) {
    std::vector<Response> out(requests.size());
    try_run(requests, pool, opts,
            [&out](std::size_t i, const Request<W>&, const Response& r, const Scratch&) {
              out[i] = r;
            });
    return out;
  }

  // ------------------------------------- serial helpers (caller thread)

  /// Exact shortest distance source→target (inf when unreachable).
  [[nodiscard]] W distance(vertex_t source, vertex_t target) {
    W out = inf<W>();
    serve(Request<W>{PointToPoint{source, target}},
          [&](const Response& r, const Scratch&) { out = r.target_dist; });
    return out;
  }

  struct NearItem {
    vertex_t vertex;
    W dist;
    friend bool operator==(const NearItem&, const NearItem&) = default;
  };

  /// The (up to) k nearest vertices, nearest first (source included,
  /// distance 0). Fewer than k when the component is smaller.
  [[nodiscard]] std::vector<NearItem> k_nearest(vertex_t source, vertex_t k) {
    std::vector<NearItem> out;
    serve(Request<W>{KNearest{source, k}}, [&](const Response&, const Scratch& sc) {
      out.reserve(sc.settled_order().size());
      for (const vertex_t v : sc.settled_order()) {
        out.push_back(NearItem{v, sc.dist()[static_cast<std::size_t>(v)]});
      }
    });
    return out;
  }

  /// Every vertex within `radius` of source (inclusive), nearest first.
  [[nodiscard]] std::vector<NearItem> within(vertex_t source, W radius) {
    std::vector<NearItem> out;
    serve(Request<W>{Bounded<W>{source, radius}}, [&](const Response&, const Scratch& sc) {
      out.reserve(sc.settled_order().size());
      for (const vertex_t v : sc.settled_order()) {
        out.push_back(NearItem{v, sc.dist()[static_cast<std::size_t>(v)]});
      }
    });
    return out;
  }

  struct Tree {
    std::vector<W> dist;
    std::vector<vertex_t> parent;
  };

  /// The full single-source tree, materialized.
  [[nodiscard]] Tree full(vertex_t source) {
    Tree out;
    serve(Request<W>{FullSSSP{source}}, [&](const Response&, const Scratch& sc) {
      out.dist = sc.dist();
      out.parent = sc.parent();
    });
    return out;
  }

  /// One request on the calling thread; `fn(response, scratch)` runs
  /// before the scratch is returned to the lease pool. Thread-safe.
  template <typename Fn>
  void serve(const Request<W>& req, Fn&& fn) {
    validate(req);
    const auto lease = scratch_pool_.acquire([this] { return std::make_unique<Scratch>(n_); });
    Scratch& sc = lease.get();
    const Response resp = execute(req, sc);
    requests_.fetch_add(1, std::memory_order_relaxed);
    fn(static_cast<const Response&>(resp), static_cast<const Scratch&>(sc));
  }

  /// The non-throwing single request: always returns a Response with a
  /// definite status; `fn(response, scratch)` fires exactly once (with
  /// the empty scratch when no search ran — see the status contract in
  /// the header comment). Thread-safe, no admission control (admission
  /// bounds batches; a serial caller is its own backpressure).
  template <typename Fn>
  Response try_serve(const Request<W>& req, const ServeOptions& opts, Fn&& fn) {
    tel_clock::time_point t_submit{}, e0{}, e1{};
    if constexpr (obs::kTelemetryEnabled) t_submit = tel_clock::now();
    bool aborted = false;
    bool data_lost = false;
    bool searched = false;
    Response resp;
    resp.status = validate_status(req);
    if (!resp.status.is_ok()) {
      CG_COUNTER_INC("reliability.requests.invalid");
      if constexpr (obs::kTelemetryEnabled) {
        finish_telemetry(req, resp, nullptr, opts, false, t_submit, {}, {}, {}, {});
      }
      fn(static_cast<const Response&>(resp), empty_);
      return resp;
    }
    reliability::Status lease_status;
    auto lease = acquire_scratch(opts.deadline, lease_status);
    if (!lease) {
      resp.status = lease_status;
      if constexpr (obs::kTelemetryEnabled) {
        finish_telemetry(req, resp, nullptr, opts, false, t_submit, {}, {}, {}, {});
      }
      fn(static_cast<const Response&>(resp), empty_);
      return resp;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::kTelemetryEnabled) e0 = tel_clock::now();
    try {
      resp = execute(req, lease->get(), opts);
      searched = true;
      if constexpr (obs::kTelemetryEnabled) {
        e1 = tel_clock::now();
        // Serial surface: no queue, no admission — submit is admit is
        // start, so the record's waits are zero and compute dominates.
        finish_telemetry(req, resp, &lease->get(), opts, false, t_submit, t_submit, t_submit,
                         e0, e1);
      }
      fn(static_cast<const Response&>(resp), static_cast<const Scratch&>(lease->get()));
    } catch (const reliability::DataLossError& e) {
      // Same mapping as the parallel surface: corrupt block → DATA_LOSS.
      resp = Response{};
      resp.status = reliability::data_loss(e.what());
      CG_COUNTER_INC("reliability.requests.data_loss");
      data_lost = true;
      fn(static_cast<const Response&>(resp), empty_);
    } catch (const std::exception& e) {
      resp = Response{};
      resp.status = reliability::cancelled(std::string("task aborted: ") + e.what());
      note_abort();
      aborted = true;
      fn(static_cast<const Response&>(resp), empty_);
    } catch (...) {
      resp = Response{};
      resp.status = reliability::cancelled("task aborted: unknown exception");
      note_abort();
      aborted = true;
      fn(static_cast<const Response&>(resp), empty_);
    }
    if constexpr (obs::kTelemetryEnabled) {
      if ((aborted || data_lost) && !searched) {
        // execute() itself threw (the search never resolved); the
        // success path above already recorded resolved requests.
        if (e1 == tel_clock::time_point{}) e1 = tel_clock::now();
        finish_telemetry(req, resp, nullptr, opts, aborted, t_submit, t_submit, t_submit, e0,
                         e1);
      }
    } else {
      (void)aborted;
      (void)data_lost;
      (void)searched;
    }
    return resp;
  }

  Response try_serve(const Request<W>& req, const ServeOptions& opts = {}) {
    return try_serve(req, opts, [](const Response&, const Scratch&) {});
  }

 private:
  void validate(const Request<W>& req) const {
    std::visit(
        [this](const auto& r) {
          using R = std::decay_t<decltype(r)>;
          if constexpr (requires { r.source; }) {
            CG_CHECK(r.source >= 0 && r.source < n_, "query source out of range");
          }
          if constexpr (std::is_same_v<R, PointToPoint>) {
            CG_CHECK(r.target >= 0 && r.target < n_, "query target out of range");
          } else if constexpr (std::is_same_v<R, KNearest>) {
            CG_CHECK(r.k >= 1, "k_nearest needs k >= 1");
          } else if constexpr (std::is_same_v<R, Bounded<W>>) {
            CG_CHECK(r.radius >= W{0}, "bounded query needs a non-negative radius");
          } else if constexpr (std::is_same_v<R, PageRank>) {
            CG_CHECK(r.damping > 0.0 && r.damping < 1.0, "pagerank damping must be in (0, 1)");
            CG_CHECK(r.max_iters >= 1, "pagerank needs max_iters >= 1");
            CG_CHECK(r.tol >= 0.0, "pagerank tol must be non-negative");
            CG_CHECK(r.out.size() == static_cast<std::size_t>(n_),
                     "pagerank out span must have num_vertices entries");
          } else if constexpr (std::is_same_v<R, Wcc>) {
            CG_CHECK(r.out.size() == static_cast<std::size_t>(n_),
                     "wcc out span must have num_vertices entries");
          } else if constexpr (std::is_same_v<R, BfsFromSet>) {
            CG_CHECK(r.out.size() == static_cast<std::size_t>(n_),
                     "bfs_from_set out span must have num_vertices entries");
            for (const vertex_t src : r.sources) {
              CG_CHECK(src >= 0 && src < n_, "bfs_from_set source out of range");
            }
          } else if constexpr (std::is_same_v<R, MultiTarget>) {
            CG_CHECK(!r.targets.empty(), "multi_target needs at least one target");
            for (const vertex_t t : r.targets) {
              CG_CHECK(t >= 0 && t < n_, "multi_target target out of range");
            }
          }
        },
        req);
  }

  /// The same rules as validate(), as a value: a malformed request is
  /// production traffic on the hardened surface, not a programmer
  /// error.
  [[nodiscard]] reliability::Status validate_status(const Request<W>& req) const {
    return std::visit(
        [this](const auto& r) -> reliability::Status {
          using R = std::decay_t<decltype(r)>;
          if constexpr (requires { r.source; }) {
            if (r.source < 0 || r.source >= n_) {
              return reliability::invalid_argument("query source out of range");
            }
          }
          if constexpr (std::is_same_v<R, PointToPoint>) {
            if (r.target < 0 || r.target >= n_) {
              return reliability::invalid_argument("query target out of range");
            }
          } else if constexpr (std::is_same_v<R, KNearest>) {
            if (r.k < 1) return reliability::invalid_argument("k_nearest needs k >= 1");
          } else if constexpr (std::is_same_v<R, Bounded<W>>) {
            if (r.radius < W{0}) {
              return reliability::invalid_argument("bounded query needs a non-negative radius");
            }
          } else if constexpr (std::is_same_v<R, PageRank>) {
            if (!(r.damping > 0.0 && r.damping < 1.0)) {
              return reliability::invalid_argument("pagerank damping must be in (0, 1)");
            }
            if (r.max_iters < 1) {
              return reliability::invalid_argument("pagerank needs max_iters >= 1");
            }
            if (!(r.tol >= 0.0)) {
              return reliability::invalid_argument("pagerank tol must be non-negative");
            }
            if (r.out.size() != static_cast<std::size_t>(n_)) {
              return reliability::invalid_argument(
                  "pagerank out span must have num_vertices entries");
            }
          } else if constexpr (std::is_same_v<R, Wcc>) {
            if (r.out.size() != static_cast<std::size_t>(n_)) {
              return reliability::invalid_argument("wcc out span must have num_vertices entries");
            }
          } else if constexpr (std::is_same_v<R, BfsFromSet>) {
            if (r.out.size() != static_cast<std::size_t>(n_)) {
              return reliability::invalid_argument(
                  "bfs_from_set out span must have num_vertices entries");
            }
            for (const vertex_t src : r.sources) {
              if (src < 0 || src >= n_) {
                return reliability::invalid_argument("bfs_from_set source out of range");
              }
            }
          } else if constexpr (std::is_same_v<R, MultiTarget>) {
            if (r.targets.empty()) {
              return reliability::invalid_argument("multi_target needs at least one target");
            }
            for (const vertex_t t : r.targets) {
              if (t < 0 || t >= n_) {
                return reliability::invalid_argument("multi_target target out of range");
              }
            }
          }
          return {};
        },
        req);
  }

  /// Submitting-thread gate for one batched request: validation, batch
  /// cancel/deadline, then admission. OK means "spawn it".
  reliability::Status preflight(const Request<W>& req, const ServeOptions& opts,
                                const Admission& adm, parallel::TaskPool& pool,
                                std::atomic<std::size_t>& in_flight,
                                std::vector<std::size_t>& active, std::mutex& active_mu,
                                std::vector<std::unique_ptr<reliability::CancelToken>>& tokens) {
    auto st = validate_status(req);
    if (!st.is_ok()) {
      CG_COUNTER_INC("reliability.requests.invalid");
      return st;
    }
    if (opts.cancel != nullptr && opts.cancel->cancelled()) {
      CG_COUNTER_INC("reliability.requests.cancelled");
      return reliability::cancelled("batch cancelled before start");
    }
    if (opts.deadline.expired()) {
      CG_COUNTER_INC("reliability.requests.deadline_exceeded");
      return reliability::deadline_exceeded("batch budget spent before start");
    }
    if (adm.max_in_flight == 0 ||
        in_flight.load(std::memory_order_acquire) < adm.max_in_flight) {
      return {};
    }
    switch (adm.policy) {
      case OverloadPolicy::kReject:
        rejected_.fetch_add(1, std::memory_order_relaxed);
        CG_COUNTER_INC("reliability.admission.rejected");
        return reliability::overloaded("admission: " + std::to_string(adm.max_in_flight) +
                                       " requests already in flight");
      case OverloadPolicy::kShed: {
        // Oldest not-yet-shed victim: scanning past already-cancelled
        // entries keeps the ladder moving — each overflow admission
        // kills one distinct older request (newest wins).
        const std::lock_guard<std::mutex> lock(active_mu);
        for (const std::size_t victim : active) {
          if (!tokens[victim]->cancelled()) {
            tokens[victim]->cancel();  // resolves CANCELLED at its next poll
            shed_.fetch_add(1, std::memory_order_relaxed);
            CG_COUNTER_INC("reliability.admission.shed");
            break;
          }
        }
        return {};  // admit over the cap; the victim's slot frees shortly
      }
      case OverloadPolicy::kBlock: {
        blocked_.fetch_add(1, std::memory_order_relaxed);
        CG_COUNTER_INC("reliability.admission.blocked");
        const auto enter = std::chrono::steady_clock::now();
        while (in_flight.load(std::memory_order_acquire) >= adm.max_in_flight) {
          if (opts.cancel != nullptr && opts.cancel->cancelled()) {
            CG_COUNTER_INC("reliability.requests.cancelled");
            return reliability::cancelled("batch cancelled while blocked on admission");
          }
          if (opts.deadline.expired()) {
            CG_COUNTER_INC("reliability.requests.deadline_exceeded");
            return reliability::deadline_exceeded("batch budget spent while blocked on admission");
          }
          // Deadline-aware blocking: once half the budget has gone to
          // queueing, the search that would follow is already starved —
          // shed to OVERLOADED (retryable) instead of blocking on
          // toward a certain DEADLINE_EXCEEDED (not).
          if (block_budget_exhausted(enter, opts.deadline, std::chrono::steady_clock::now())) {
            deadline_rejects_.fetch_add(1, std::memory_order_relaxed);
            CG_COUNTER_INC("reliability.admission.deadline_rejected");
            return reliability::overloaded(
                "admission: half the deadline budget spent blocked");
          }
          // Help drain the pool rather than spin — on a 1-thread pool
          // this is the only way a slot ever frees.
          if (!pool.help_one()) std::this_thread::yield();
        }
        return {};
      }
    }
    return {};
  }

  /// Scratch lease with transient-failure retry, bounded by the
  /// request deadline. Empty optional ⇒ `out` explains why
  /// (RESOURCE_EXHAUSTED, or DEADLINE_EXCEEDED when the budget ran
  /// out mid-retry).
  [[nodiscard]] std::optional<typename parallel::LeasePool<Scratch>::Lease> acquire_scratch(
      const reliability::Deadline& deadline, reliability::Status& out) {
    std::optional<typename parallel::LeasePool<Scratch>::Lease> lease;
    reliability::BackoffPolicy policy = lease_backoff_;
    if (deadline.armed()) policy.deadline = deadline;
    out = reliability::retry_status(
        [&]() -> reliability::Status {
          lease = scratch_pool_.try_acquire([this] { return std::make_unique<Scratch>(n_); });
          if (lease) return {};
          return reliability::resource_exhausted("scratch pool at capacity");
        },
        policy);
    if (!lease && out.code() == reliability::StatusCode::kResourceExhausted) {
      lease_failures_.fetch_add(1, std::memory_order_relaxed);
      CG_COUNTER_INC("reliability.requests.exhausted");
    }
    return lease;
  }

  void note_abort() noexcept {
    aborted_.fetch_add(1, std::memory_order_relaxed);
    CG_COUNTER_INC("reliability.requests.aborted");
  }

  using tel_clock = std::chrono::steady_clock;

  /// Builds one finished request's RequestRecord and fans it out
  /// (histograms + flight recorder via obs::note_request, plus a
  /// retrospective queue-wait child span when a trace session is
  /// installed). Zero time_points mean "that stage never happened":
  /// admit == {} books the whole submit→now interval as admission wait
  /// (the request died in preflight), e0 == e1 == {} means no search
  /// ran. Call sites are `if constexpr (obs::kTelemetryEnabled)`-gated.
  void finish_telemetry(const Request<W>& req, const Response& resp, const Scratch* sc,
                        const ServeOptions& opts, bool aborted, tel_clock::time_point submit,
                        tel_clock::time_point admit, tel_clock::time_point start,
                        tel_clock::time_point e0, tel_clock::time_point e1) {
    const auto now = tel_clock::now();
    const auto ns = [](tel_clock::duration d) -> std::uint64_t {
      const auto v = std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
      return v <= 0 ? 0 : static_cast<std::uint64_t>(v);
    };
    obs::RequestRecord rec;
    rec.kind = kind_index_of(req);
    rec.source = static_cast<std::int32_t>(source_of(req));
    if (const auto* p = std::get_if<PointToPoint>(&req)) {
      rec.target = static_cast<std::int32_t>(p->target);
    }
    rec.status_code = static_cast<std::uint8_t>(resp.status.code());
    rec.outcome = static_cast<std::uint8_t>(resp.outcome);
    rec.aborted = aborted;
    rec.settled = resp.settled;
    rec.relaxations = sc != nullptr ? sc->relaxations() : 0;
    rec.admission_wait_ns =
        admit == tel_clock::time_point{} ? ns(now - submit) : ns(admit - submit);
    if (start != tel_clock::time_point{} && admit != tel_clock::time_point{}) {
      rec.queue_wait_ns = ns(start - admit);
    }
    rec.compute_ns = ns(e1 - e0);
    rec.total_ns = ns(now - submit);
    if (opts.deadline.armed()) {
      rec.had_deadline = true;
      rec.deadline_slack_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(opts.deadline.when() - now)
              .count();
    }
    obs::note_request(rec);
    if (auto* session = obs::TraceSession::current()) {
      if (admit != tel_clock::time_point{} && start != tel_clock::time_point{} &&
          start > admit) {
        session->complete("queue_wait", admit, start);
      }
    }
  }

  /// Batch-boundary gauge sample + periodic-snapshot poll.
  void sample_gauges(parallel::TaskPool& pool) {
    auto& mr = obs::MetricsRegistry::instance();
    static obs::Gauge& g_depth = mr.gauge("parallel.pool.queue_depth");
    static obs::Gauge& g_out = mr.gauge("query.scratch.outstanding");
    static obs::Gauge& g_free = mr.gauge("query.scratch.available");
    g_depth.set(static_cast<double>(pool.queued()));
    g_out.set(static_cast<double>(scratch_pool_.outstanding()));
    g_free.set(static_cast<double>(scratch_pool_.available()));
    mr.poll_snapshot();
  }

  Response execute(const Request<W>& req, Scratch& sc, const ServeOptions& opts = {},
                   parallel::TaskPool* pool = nullptr) {
    if (CG_FAULT_FIRE(reliability::FaultSite::kTaskThrow)) {
      throw reliability::InjectedFault("query.execute");
    }
    if (is_analytics(req)) return execute_analytics(req, sc, opts, pool);
    Limits<W> lim;
    lim.cancel = opts.cancel;
    lim.deadline = opts.deadline;
    lim.check_every = opts.check_every;
    vertex_t target = kNoVertex;
    std::visit(
        [&](const auto& r) {
          using R = std::decay_t<decltype(r)>;
          if constexpr (std::is_same_v<R, PointToPoint>) {
            lim.target = target = r.target;
            CG_COUNTER_INC("query.requests.point_to_point");
          } else if constexpr (std::is_same_v<R, KNearest>) {
            lim.k = r.k;
            CG_COUNTER_INC("query.requests.k_nearest");
          } else if constexpr (std::is_same_v<R, Bounded<W>>) {
            lim.radius = r.radius;
            CG_COUNTER_INC("query.requests.bounded");
          } else if constexpr (std::is_same_v<R, FullSSSP>) {
            CG_COUNTER_INC("query.requests.full_sssp");
          } else if constexpr (std::is_same_v<R, MultiTarget>) {
            lim.targets = r.targets;
            CG_COUNTER_INC("query.requests.multi_target");
          }
        },
        req);

    const obs::TraceSpan span(kind_of(req));
    Response resp;
    resp.outcome = search<Queue>(g_, source_of(req), lim, sc);
    resp.settled = sc.settled_order().size();
    if (target != kNoVertex) {
      // Settled ⇒ exact; otherwise the search exhausted the component
      // without reaching it, and dist() already says inf.
      resp.target_dist = sc.dist()[static_cast<std::size_t>(target)];
    }
    if (resp.outcome == Outcome::cancelled) {
      resp.status = reliability::cancelled("cancel token fired");
      CG_COUNTER_INC("reliability.requests.cancelled");
    } else if (resp.outcome == Outcome::deadline_exceeded) {
      resp.status = reliability::deadline_exceeded("request budget spent");
      CG_COUNTER_INC("reliability.requests.deadline_exceeded");
    }
    settled_.fetch_add(resp.settled, std::memory_order_relaxed);
    if (resp.status.is_ok() && resp.outcome != Outcome::exhausted) {
      early_exits_.fetch_add(1, std::memory_order_relaxed);
      CG_COUNTER_INC("query.early_exits");
    }
    return resp;
  }

  /// The analytics kinds: frontier kernels over leased
  /// analytics::Scratch, parallel when the batch surface hands its
  /// pool through (serial on serve/try_serve — a serial caller is its
  /// own parallelism budget). The request's cancel/deadline are polled
  /// once per frontier round; `check_every` does not apply (rounds are
  /// the poll cadence). The search scratch is reset so sinks see no
  /// stale distances riding along with an analytics response.
  Response execute_analytics(const Request<W>& req, Scratch& sc, const ServeOptions& opts,
                             parallel::TaskPool* pool) {
    sc.reset();
    const obs::TraceSpan span(kind_of(req));
    const analytics::Budget budget{opts.cancel, opts.deadline};
    const auto lease =
        analytics_pool_.acquire([] { return std::make_unique<analytics::Scratch>(); });
    analytics::Scratch& asc = lease.get();
    asc.set_llc_bytes(llc_bytes_);

    Response resp;
    analytics::Stop stop = analytics::Stop::done;
    if (const auto* pr = std::get_if<PageRank>(&req)) {
      CG_COUNTER_INC("query.requests.pagerank");
      const analytics::PageRankParams params{pr->damping, pr->max_iters, pr->tol, pr->binned};
      const auto st = analytics::pagerank(g_, ws_, asc, params, pr->out, pool, budget);
      stop = st.stop;
      resp.aux = st.iterations;
      resp.settled = stop == analytics::Stop::done ? static_cast<std::uint64_t>(n_) : 0;
    } else if (const auto* wc = std::get_if<Wcc>(&req)) {
      CG_COUNTER_INC("query.requests.wcc");
      const analytics::WccParams params{wc->binned};
      const auto st = analytics::wcc(g_, ws_, asc, params, wc->out, pool, budget);
      stop = st.stop;
      resp.aux = static_cast<std::uint64_t>(st.components);
      resp.settled = stop == analytics::Stop::done ? static_cast<std::uint64_t>(n_) : 0;
    } else if (const auto* bf = std::get_if<BfsFromSet>(&req)) {
      CG_COUNTER_INC("query.requests.bfs_from_set");
      const analytics::BfsParams params{bf->binned};
      const auto st = analytics::bfs_from_set(g_, asc, params, bf->sources, bf->out, pool, budget);
      stop = st.stop;
      resp.aux = st.reached;
      resp.settled = stop == analytics::Stop::done ? st.reached : 0;
    } else {
      CG_COUNTER_INC("query.requests.triangle_count");
      const auto st = analytics::triangles(g_, ws_, asc, pool, budget);
      stop = st.stop;
      resp.aux = st.triangles;
      resp.settled = stop == analytics::Stop::done ? static_cast<std::uint64_t>(n_) : 0;
    }

    if (stop == analytics::Stop::cancelled) {
      resp.outcome = Outcome::cancelled;
      resp.status = reliability::cancelled("cancel token fired");
      CG_COUNTER_INC("reliability.requests.cancelled");
    } else if (stop == analytics::Stop::deadline) {
      resp.outcome = Outcome::deadline_exceeded;
      resp.status = reliability::deadline_exceeded("request budget spent");
      CG_COUNTER_INC("reliability.requests.deadline_exceeded");
    }
    settled_.fetch_add(resp.settled, std::memory_order_relaxed);
    return resp;
  }

  const G& g_;
  vertex_t n_;
  const Scratch empty_{0};  ///< zero-vertex scratch for failed requests
  parallel::LeasePool<Scratch> scratch_pool_;
  analytics::Workspace<G> ws_;
  parallel::LeasePool<analytics::Scratch> analytics_pool_;
  std::size_t llc_bytes_ = analytics::Scratch::kDefaultLlcBytes;
  Admission admission_{};
  reliability::BackoffPolicy lease_backoff_{};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> settled_{0};
  std::atomic<std::uint64_t> early_exits_{0};
  std::atomic<std::uint64_t> blocked_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> aborted_{0};
  std::atomic<std::uint64_t> lease_failures_{0};
  std::atomic<std::uint64_t> deadline_rejects_{0};
};

}  // namespace cachegraph::query
