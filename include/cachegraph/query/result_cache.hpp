// ResultCache — component-aware memoization of full SSSP trees over a
// DynamicOverlay.
//
// Each cached tree stores the component stamp (DynamicOverlay::
// stamp_of) of its source *as read immediately before the search ran*.
// A lookup compares the stored stamp with the current one: equal means
// no edge update has touched the source's component since the tree was
// computed, so the tree is served as-is; different means the entry is
// stale and must be recomputed. An edge update therefore invalidates
// exactly the sources whose component it touched — every other cached
// tree keeps serving without recomputation, which is the issue's
// incremental-invalidation contract.
//
// Stamps are read BEFORE computing, never after: if that ordering were
// reversed, an update landing between the search and the stamp read
// would be stamped into the entry and silently missed. Reading first
// errs the other way — the entry can only look *older* than the data
// it holds, forcing a spurious recompute, never a stale serve. (The
// overlay's threading contract quiesces mutations during compute, so
// in practice the stamp cannot move mid-batch at all.)
//
// Trees are handed out as shared_ptr<const Tree>: a reader can hold a
// consistent tree across later updates and recomputes without locking.
//
// Counters: query.cache.hits / query.cache.misses /
// query.cache.invalidations (stale entries found), mirrored in plain
// Stats for builds without CACHEGRAPH_INSTRUMENT.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/parallel/task_pool.hpp"
#include "cachegraph/query/dynamic_overlay.hpp"
#include "cachegraph/query/engine.hpp"
#include "cachegraph/query/request.hpp"

namespace cachegraph::query {

template <Weight W, class Queue = IndexedQueue<W>>
class ResultCache {
 public:
  /// An immutable full single-source tree plus the invalidation token
  /// it was computed under.
  struct Tree {
    std::vector<W> dist;
    std::vector<vertex_t> parent;
    std::uint64_t stamp = 0;  ///< source's component stamp before compute
  };
  using TreePtr = std::shared_ptr<const Tree>;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;         ///< never-computed sources
    std::uint64_t invalidations = 0;  ///< cached but stale (stamp moved)
    std::uint64_t recomputes = 0;     ///< searches actually run
  };

  /// What one ensure() call did, for tests and bench tables.
  struct EnsureReport {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t recomputed = 0;  ///< misses + invalidations
  };

  explicit ResultCache(DynamicOverlay<W>& overlay) : overlay_(overlay), engine_(overlay) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  [[nodiscard]] DynamicOverlay<W>& overlay() noexcept { return overlay_; }
  [[nodiscard]] QueryEngine<DynamicOverlay<W>, Queue>& engine() noexcept { return engine_; }

  [[nodiscard]] Stats stats() const {
    const std::scoped_lock lock(mu_);
    return stats_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mu_);
    return trees_.size();
  }

  /// Fresh tree if cached and still valid, nullptr otherwise (counts a
  /// miss or an invalidation; does not compute).
  [[nodiscard]] TreePtr get(vertex_t source) {
    const std::uint64_t now = overlay_.stamp_of(source);
    const std::scoped_lock lock(mu_);
    return lookup(source, now);
  }

  /// The fresh tree for `source`, recomputing on the calling thread if
  /// the cached one is missing or stale.
  [[nodiscard]] TreePtr get_or_compute(vertex_t source) {
    const std::uint64_t now = overlay_.stamp_of(source);
    {
      const std::scoped_lock lock(mu_);
      if (TreePtr t = lookup(source, now)) return t;
    }
    auto tree = std::make_shared<Tree>();
    tree->stamp = now;  // read before the search — see header comment
    engine_.serve(Request<W>{FullSSSP{source}},
                  [&](const auto&, const auto& sc) {
                    tree->dist = sc.dist();
                    tree->parent = sc.parent();
                  });
    TreePtr out = std::move(tree);
    const std::scoped_lock lock(mu_);
    ++stats_.recomputes;
    trees_[source] = out;
    return out;
  }

  /// Makes every listed source fresh, recomputing only the stale or
  /// missing ones — as one batch on the pool. This is the incremental
  /// re-convergence path: after edge updates, only sources whose
  /// component stamp moved are re-run.
  EnsureReport ensure(std::span<const vertex_t> sources, parallel::TaskPool& pool) {
    EnsureReport report;
    std::vector<vertex_t> stale;
    std::vector<std::uint64_t> stamps;  // read before compute, stored after
    {
      const std::scoped_lock lock(mu_);
      for (const vertex_t s : sources) {
        const std::uint64_t now = overlay_.stamp_of(s);
        if (lookup(s, now)) {
          ++report.hits;
        } else {
          const auto it = trees_.find(s);
          (it == trees_.end() ? report.misses : report.invalidations)++;
          stale.push_back(s);
          stamps.push_back(now);
        }
      }
    }
    report.recomputed = stale.size();
    if (stale.empty()) return report;

    std::vector<Request<W>> requests;
    requests.reserve(stale.size());
    for (const vertex_t s : stale) requests.push_back(Request<W>{FullSSSP{s}});

    std::vector<TreePtr> computed(stale.size());
    engine_.run(std::span<const Request<W>>(requests), pool,
                [&](std::size_t i, const Request<W>&, const auto&, const auto& sc) {
                  auto tree = std::make_shared<Tree>();
                  tree->stamp = stamps[i];
                  tree->dist = sc.dist();
                  tree->parent = sc.parent();
                  computed[i] = std::move(tree);
                });

    const std::scoped_lock lock(mu_);
    stats_.recomputes += stale.size();
    for (std::size_t i = 0; i < stale.size(); ++i) trees_[stale[i]] = std::move(computed[i]);
    return report;
  }

  /// Drops every entry (stats keep accumulating).
  void clear() {
    const std::scoped_lock lock(mu_);
    trees_.clear();
  }

 private:
  /// Requires mu_ held. Counts the outcome.
  [[nodiscard]] TreePtr lookup(vertex_t source, std::uint64_t now) {
    const auto it = trees_.find(source);
    if (it == trees_.end()) {
      ++stats_.misses;
      CG_COUNTER_INC("query.cache.misses");
      return nullptr;
    }
    if (it->second->stamp != now) {
      ++stats_.invalidations;
      CG_COUNTER_INC("query.cache.invalidations");
      return nullptr;
    }
    ++stats_.hits;
    CG_COUNTER_INC("query.cache.hits");
    return it->second;
  }

  DynamicOverlay<W>& overlay_;
  QueryEngine<DynamicOverlay<W>, Queue> engine_;
  mutable std::mutex mu_;
  std::unordered_map<vertex_t, TreePtr> trees_;
  Stats stats_;
};

}  // namespace cachegraph::query
