// ResultCache — component-aware memoization of full SSSP trees over a
// DynamicOverlay.
//
// Each cached tree stores the component stamp (DynamicOverlay::
// stamp_of) of its source *as read immediately before the search ran*.
// A lookup compares the stored stamp with the current one: equal means
// no edge update has touched the source's component since the tree was
// computed, so the tree is served as-is; different means the entry is
// stale and must be recomputed. An edge update therefore invalidates
// exactly the sources whose component it touched — every other cached
// tree keeps serving without recomputation, which is the issue's
// incremental-invalidation contract.
//
// Stamps are read BEFORE computing, never after: if that ordering were
// reversed, an update landing between the search and the stamp read
// would be stamped into the entry and silently missed. Reading first
// errs the other way — the entry can only look *older* than the data
// it holds, forcing a spurious recompute, never a stale serve. (The
// overlay's threading contract quiesces mutations during compute, so
// in practice the stamp cannot move mid-batch at all.)
//
// Trees are handed out as shared_ptr<const Tree>: a reader can hold a
// consistent tree across later updates and recomputes without locking.
//
// Persistence (save_snapshot / load_snapshot): the cache writes a
// versioned, checksummed binary snapshot so a restarted service warms
// from disk instead of recomputing every tree. Crash safety comes from
// write-temp-then-atomic-rename — a crash mid-save leaves either the
// old complete snapshot or a stray .tmp, never a torn file under the
// real name. Load validates the trailing FNV-1a checksum over the
// whole image *before* parsing a single field (truncation and bit rot
// both surface as DATA_LOSS with the cache untouched — the caller
// rebuilds cleanly on demand), then matches the snapshot's graph
// fingerprint against the live overlay (a hash over the live edge
// set); a mismatch is INVALID_ARGUMENT. Because a matching fingerprint
// proves the edge set identical, loaded entries are restamped to the
// *current* component stamps — stamps are process-local invalidation
// tokens, not durable facts, and a tree's contents depend only on the
// edge set. Format layout: DESIGN.md §11.
//
// Counters: query.cache.hits / query.cache.misses /
// query.cache.invalidations (stale entries found), mirrored in plain
// Stats for builds without CACHEGRAPH_INSTRUMENT; snapshot traffic
// under query.cache.snapshot_* and reliability.snapshot.data_loss.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cachegraph/common/atomic_file.hpp"
#include "cachegraph/common/check.hpp"
#include "cachegraph/common/checksum.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/obs/metrics.hpp"
#include "cachegraph/obs/telemetry.hpp"
#include "cachegraph/parallel/task_pool.hpp"
#include "cachegraph/query/dynamic_overlay.hpp"
#include "cachegraph/query/engine.hpp"
#include "cachegraph/query/request.hpp"
#include "cachegraph/reliability/status.hpp"

namespace cachegraph::query {

/// Snapshot format tag: bump the trailing digits on any layout change
/// so an old binary refuses a new file (and vice versa) instead of
/// misparsing it.
inline constexpr char kSnapshotMagic[8] = {'C', 'G', 'S', 'N', 'A', 'P', '0', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Encodes the weight type's identity (size | signedness | floatness)
/// so an int32 snapshot never deserializes into a double cache.
template <Weight W>
[[nodiscard]] constexpr std::uint32_t snapshot_weight_kind() noexcept {
  return static_cast<std::uint32_t>(sizeof(W)) |
         (std::is_signed_v<W> ? 0x100U : 0U) |
         (std::is_floating_point_v<W> ? 0x200U : 0U);
}

namespace snapshot_detail {

template <typename T>
void put(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

inline void put_bytes(std::string& out, const void* data, std::size_t size) {
  out.append(static_cast<const char*>(data), size);
}

/// Bounds-checked read; false means the image lied about its size
/// (cannot happen after the checksum passes, but parse defensively).
template <typename T>
[[nodiscard]] bool get(const char*& p, const char* end, T& v) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  if (static_cast<std::size_t>(end - p) < sizeof(T)) return false;
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
  return true;
}

[[nodiscard]] inline bool get_bytes(const char*& p, const char* end, void* dst,
                                    std::size_t size) noexcept {
  if (static_cast<std::size_t>(end - p) < size) return false;
  std::memcpy(dst, p, size);
  p += size;
  return true;
}

}  // namespace snapshot_detail

template <Weight W, class Queue = IndexedQueue<W>>
class ResultCache {
 public:
  /// An immutable full single-source tree plus the invalidation token
  /// it was computed under.
  struct Tree {
    std::vector<W> dist;
    std::vector<vertex_t> parent;
    std::uint64_t stamp = 0;  ///< source's component stamp before compute
  };
  using TreePtr = std::shared_ptr<const Tree>;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;         ///< never-computed sources
    std::uint64_t invalidations = 0;  ///< cached but stale (stamp moved)
    std::uint64_t recomputes = 0;     ///< searches actually run
  };

  /// What one ensure() call did, for tests and bench tables.
  struct EnsureReport {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t recomputed = 0;  ///< misses + invalidations
  };

  explicit ResultCache(DynamicOverlay<W>& overlay) : overlay_(overlay), engine_(overlay) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  [[nodiscard]] DynamicOverlay<W>& overlay() noexcept { return overlay_; }
  [[nodiscard]] QueryEngine<DynamicOverlay<W>, Queue>& engine() noexcept { return engine_; }

  [[nodiscard]] Stats stats() const {
    const std::scoped_lock lock(mu_);
    return stats_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mu_);
    return trees_.size();
  }

  /// Fresh tree if cached and still valid, nullptr otherwise (counts a
  /// miss or an invalidation; does not compute).
  [[nodiscard]] TreePtr get(vertex_t source) {
    const std::uint64_t now = overlay_.stamp_of(source);
    const std::scoped_lock lock(mu_);
    return lookup(source, now);
  }

  /// The fresh tree for `source`, recomputing on the calling thread if
  /// the cached one is missing or stale.
  [[nodiscard]] TreePtr get_or_compute(vertex_t source) {
    const std::uint64_t now = overlay_.stamp_of(source);
    {
      const std::scoped_lock lock(mu_);
      if (TreePtr t = lookup(source, now)) return t;
    }
    auto tree = std::make_shared<Tree>();
    tree->stamp = now;  // read before the search — see header comment
    engine_.serve(Request<W>{FullSSSP{source}},
                  [&](const auto&, const auto& sc) {
                    tree->dist = sc.dist();
                    tree->parent = sc.parent();
                  });
    TreePtr out = std::move(tree);
    const std::scoped_lock lock(mu_);
    ++stats_.recomputes;
    trees_[source] = out;
    return out;
  }

  /// Makes every listed source fresh, recomputing only the stale or
  /// missing ones — as one batch on the pool. This is the incremental
  /// re-convergence path: after edge updates, only sources whose
  /// component stamp moved are re-run.
  EnsureReport ensure(std::span<const vertex_t> sources, parallel::TaskPool& pool) {
    [[maybe_unused]] std::chrono::steady_clock::time_point t0{};
    if constexpr (obs::kTelemetryEnabled) t0 = std::chrono::steady_clock::now();
    EnsureReport report;
    std::vector<vertex_t> stale;
    std::vector<std::uint64_t> stamps;  // read before compute, stored after
    {
      const std::scoped_lock lock(mu_);
      for (const vertex_t s : sources) {
        const std::uint64_t now = overlay_.stamp_of(s);
        if (lookup(s, now)) {
          ++report.hits;
        } else {
          const auto it = trees_.find(s);
          (it == trees_.end() ? report.misses : report.invalidations)++;
          stale.push_back(s);
          stamps.push_back(now);
        }
      }
    }
    report.recomputed = stale.size();
    if (stale.empty()) {
      note_ensure(t0);
      return report;
    }

    std::vector<Request<W>> requests;
    requests.reserve(stale.size());
    for (const vertex_t s : stale) requests.push_back(Request<W>{FullSSSP{s}});

    std::vector<TreePtr> computed(stale.size());
    engine_.run(std::span<const Request<W>>(requests), pool,
                [&](std::size_t i, const Request<W>&, const auto&, const auto& sc) {
                  auto tree = std::make_shared<Tree>();
                  tree->stamp = stamps[i];
                  tree->dist = sc.dist();
                  tree->parent = sc.parent();
                  computed[i] = std::move(tree);
                });

    {
      const std::scoped_lock lock(mu_);
      stats_.recomputes += stale.size();
      for (std::size_t i = 0; i < stale.size(); ++i) trees_[stale[i]] = std::move(computed[i]);
    }
    note_ensure(t0);
    return report;
  }

  /// Drops every entry (stats keep accumulating).
  void clear() {
    const std::scoped_lock lock(mu_);
    trees_.clear();
  }

  // -------------------------------------------------------- persistence

  /// Writes every cached tree to `path` (format: DESIGN.md §11) via a
  /// sibling .tmp and an atomic rename. Call at a quiescent point (no
  /// concurrent overlay mutation — the fingerprint walks the live edge
  /// set). I/O failure returns RESOURCE_EXHAUSTED and leaves any
  /// previous snapshot at `path` intact.
  [[nodiscard]] reliability::Status save_snapshot(const std::filesystem::path& path) const {
    // Snapshot the map under the lock; serialize outside it (TreePtrs
    // keep the trees alive and immutable).
    std::vector<std::pair<vertex_t, TreePtr>> entries;
    {
      const std::scoped_lock lock(mu_);
      entries.assign(trees_.begin(), trees_.end());
    }
    const auto n = static_cast<std::size_t>(overlay_.num_vertices());

    namespace sd = snapshot_detail;
    std::string image;
    sd::put_bytes(image, kSnapshotMagic, sizeof(kSnapshotMagic));
    sd::put(image, kSnapshotVersion);
    sd::put(image, snapshot_weight_kind<W>());
    sd::put(image, static_cast<std::uint32_t>(overlay_.num_vertices()));
    sd::put(image, std::uint32_t{0});  // reserved
    sd::put(image, static_cast<std::uint64_t>(entries.size()));
    sd::put(image, graph_fingerprint());
    for (const auto& [source, tree] : entries) {
      CG_DCHECK(tree->dist.size() == n && tree->parent.size() == n,
                "cached tree size does not match the overlay");
      sd::put(image, source);
      sd::put(image, tree->stamp);
      sd::put_bytes(image, tree->dist.data(), n * sizeof(W));
      sd::put_bytes(image, tree->parent.data(), n * sizeof(vertex_t));
    }
    sd::put(image, fnv1a64(image.data(), image.size()));

    // Durable commit via the shared helper: write-temp + fsync + rename
    // + parent-directory fsync. The rename alone kept readers safe from
    // torn files but was not crash-durable — without the directory
    // fsync a crash after "success" could roll the rename back.
    if (reliability::Status st = io::write_file_durable(path.string(), image); !st.is_ok()) {
      return reliability::resource_exhausted("snapshot save: " + st.message());
    }
    CG_COUNTER_INC("query.cache.snapshot_saves");
    return {};
  }

  /// Replaces the cache contents with the snapshot at `path`. The
  /// checksum is verified over the whole image before any field is
  /// trusted: truncation or corruption returns DATA_LOSS, a snapshot
  /// for a different graph / weight type / format version returns
  /// INVALID_ARGUMENT — and in every failure case the in-memory cache
  /// is left exactly as it was (rebuild by serving traffic). Loaded
  /// entries are restamped against the live overlay (see header
  /// comment), so a successful load serves hits immediately.
  ///
  /// Telemetry: a failed load is exactly the event the flight recorder
  /// exists for, so every non-OK status emits a RequestRecord (kind
  /// cache_snapshot) — a DATA_LOSS code trips the recorder's auto-dump.
  [[nodiscard]] reliability::Status load_snapshot(const std::filesystem::path& path) {
    [[maybe_unused]] std::chrono::steady_clock::time_point t0{};
    if constexpr (obs::kTelemetryEnabled) t0 = std::chrono::steady_clock::now();
    const reliability::Status st = load_snapshot_impl(path);
    if constexpr (obs::kTelemetryEnabled) {
      if (!st.is_ok()) {
        obs::RequestRecord rec;
        rec.kind = obs::kKindCacheSnapshot;
        rec.status_code = static_cast<std::uint8_t>(st.code());
        rec.total_ns = elapsed_ns(t0);
        obs::note_request(rec);
      }
      sample_telemetry_gauges();
    }
    return st;
  }

 private:
  [[nodiscard]] reliability::Status load_snapshot_impl(const std::filesystem::path& path) {
    std::string image;
    {
      std::FILE* f = std::fopen(path.string().c_str(), "rb");
      if (f == nullptr) {
        return data_loss_status("cannot open " + path.string());
      }
      char buf[1 << 16];
      std::size_t got = 0;
      while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) image.append(buf, got);
      const bool read_ok = std::ferror(f) == 0;
      std::fclose(f);
      if (!read_ok) return data_loss_status("read error on " + path.string());
    }

    // Integrity first: nothing in the image is trusted until the
    // trailing checksum over everything before it matches.
    constexpr std::size_t kHeaderBytes = sizeof(kSnapshotMagic) + 4 * sizeof(std::uint32_t) +
                                         2 * sizeof(std::uint64_t);
    if (image.size() < kHeaderBytes + sizeof(std::uint64_t)) {
      return data_loss_status("snapshot truncated: " + std::to_string(image.size()) + " bytes");
    }
    const std::size_t body = image.size() - sizeof(std::uint64_t);
    std::uint64_t stored_sum = 0;
    std::memcpy(&stored_sum, image.data() + body, sizeof(stored_sum));
    if (fnv1a64(image.data(), body) != stored_sum) {
      return data_loss_status("checksum mismatch in " + path.string());
    }

    namespace sd = snapshot_detail;
    const char* p = image.data();
    const char* const end = image.data() + body;
    if (std::memcmp(p, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
      return data_loss_status("bad magic in " + path.string());
    }
    p += sizeof(kSnapshotMagic);
    std::uint32_t version = 0, weight_kind = 0, file_n = 0, reserved = 0;
    std::uint64_t entry_count = 0, fingerprint = 0;
    if (!sd::get(p, end, version) || !sd::get(p, end, weight_kind) ||
        !sd::get(p, end, file_n) || !sd::get(p, end, reserved) ||
        !sd::get(p, end, entry_count) || !sd::get(p, end, fingerprint)) {
      return data_loss_status("snapshot header truncated");
    }
    if (version != kSnapshotVersion) {
      return reliability::invalid_argument("snapshot version " + std::to_string(version) +
                                           " != " + std::to_string(kSnapshotVersion));
    }
    if (weight_kind != snapshot_weight_kind<W>()) {
      return reliability::invalid_argument("snapshot weight type does not match this cache");
    }
    if (file_n != static_cast<std::uint32_t>(overlay_.num_vertices())) {
      return reliability::invalid_argument("snapshot is for a " + std::to_string(file_n) +
                                           "-vertex graph");
    }
    if (fingerprint != graph_fingerprint()) {
      return reliability::invalid_argument("snapshot edge-set fingerprint does not match the "
                                           "live overlay");
    }

    const auto n = static_cast<std::size_t>(overlay_.num_vertices());
    std::unordered_map<vertex_t, TreePtr> loaded;
    loaded.reserve(static_cast<std::size_t>(entry_count));
    for (std::uint64_t i = 0; i < entry_count; ++i) {
      vertex_t source = kNoVertex;
      auto tree = std::make_shared<Tree>();
      tree->dist.resize(n);
      tree->parent.resize(n);
      if (!sd::get(p, end, source) || !sd::get(p, end, tree->stamp) ||
          !sd::get_bytes(p, end, tree->dist.data(), n * sizeof(W)) ||
          !sd::get_bytes(p, end, tree->parent.data(), n * sizeof(vertex_t))) {
        return data_loss_status("snapshot entry " + std::to_string(i) + " truncated");
      }
      if (source < 0 || source >= overlay_.num_vertices()) {
        return data_loss_status("snapshot entry " + std::to_string(i) + " has a bad source");
      }
      // Restamp: the fingerprint proved the edge set identical, so the
      // tree is exactly what a fresh compute would produce — fresh
      // under the *current* stamp, whatever it was at save time.
      tree->stamp = overlay_.stamp_of(source);
      loaded[source] = std::move(tree);
    }
    if (p != end) return data_loss_status("snapshot has trailing bytes");

    const std::scoped_lock lock(mu_);
    trees_ = std::move(loaded);
    CG_COUNTER_INC("query.cache.snapshot_loads");
    return {};
  }

 public:
  /// Hash of the live edge set (every surviving base edge plus every
  /// overlay insertion, per-vertex order). Two overlays agree iff a
  /// snapshot from one is servable by the other.
  [[nodiscard]] std::uint64_t graph_fingerprint() const {
    Fnv64 h;
    h.update_value(overlay_.num_vertices());
    memsim::NullMem mem;
    for (vertex_t v = 0; v < overlay_.num_vertices(); ++v) {
      overlay_.for_neighbors(v, mem, [&](const graph::Neighbor<W>& nb) {
        h.update_value(v);
        h.update_value(nb.to);
        h.update_value(nb.weight);
      });
    }
    return h.digest();
  }

 private:
  [[nodiscard]] static reliability::Status data_loss_status(std::string msg) {
    CG_COUNTER_INC("reliability.snapshot.data_loss");
    return reliability::data_loss(std::move(msg));
  }

  [[nodiscard]] static std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
    const auto dt = std::chrono::steady_clock::now() - t0;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count();
    return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
  }

  /// ensure() telemetry: batch latency histogram + the cache-health
  /// gauges, sampled once per batch (dirty_components walks the whole
  /// union-find). Compiled out with the rest of the layer.
  void note_ensure([[maybe_unused]] std::chrono::steady_clock::time_point t0) {
    if constexpr (obs::kTelemetryEnabled) {
      static obs::LatencyHistogram& ensure_ns =
          obs::MetricsRegistry::instance().histogram("query.cache.ensure_ns");
      ensure_ns.record(elapsed_ns(t0));
      sample_telemetry_gauges();
    }
  }

  /// Point-in-time cache health for the scrape: lifetime hit rate
  /// (hits over all lookups, 0 until the first lookup) and how many
  /// overlay components have ever been dirtied.
  void sample_telemetry_gauges() {
    if constexpr (obs::kTelemetryEnabled) {
      Stats s;
      {
        const std::scoped_lock lock(mu_);
        s = stats_;
      }
      auto& mr = obs::MetricsRegistry::instance();
      static obs::Gauge& hit_rate = mr.gauge("query.cache.hit_rate");
      static obs::Gauge& dirty = mr.gauge("query.overlay.dirty_components");
      const std::uint64_t lookups = s.hits + s.misses + s.invalidations;
      if (lookups > 0) {
        hit_rate.set(static_cast<double>(s.hits) / static_cast<double>(lookups));
      }
      dirty.set(static_cast<double>(overlay_.dirty_components()));
    }
  }

  /// Requires mu_ held. Counts the outcome.
  [[nodiscard]] TreePtr lookup(vertex_t source, std::uint64_t now) {
    const auto it = trees_.find(source);
    if (it == trees_.end()) {
      ++stats_.misses;
      CG_COUNTER_INC("query.cache.misses");
      return nullptr;
    }
    if (it->second->stamp != now) {
      ++stats_.invalidations;
      CG_COUNTER_INC("query.cache.invalidations");
      return nullptr;
    }
    ++stats_.hits;
    CG_COUNTER_INC("query.cache.hits");
    return it->second;
  }

  DynamicOverlay<W>& overlay_;
  QueryEngine<DynamicOverlay<W>, Queue> engine_;
  mutable std::mutex mu_;
  std::unordered_map<vertex_t, TreePtr> trees_;
  Stats stats_;
};

}  // namespace cachegraph::query
