// DynamicOverlay — edge inserts/removes over a shared immutable
// AdjacencyArray, with component tracking for incremental result
// invalidation.
//
// The base CSR stays exactly as built (the paper's streaming layout
// keeps serving the bulk of every neighbour scan); mutations live in
// two thin side structures:
//
//   - removals mark base records in a bitmap indexed by CSR record
//     position (the scan skips marked records — one predictable
//     branch per record, no compaction, no pointer chasing);
//   - insertions append to small per-vertex spill vectors scanned
//     after the base run.
//
// A long-lived service would periodically fold the overlay into a
// fresh CSR; until then queries pay one branch per base record and
// one extra contiguous run per mutated vertex.
//
// Component tracking: a union-find over the *undirected support* of
// the live edge set, each component carrying a version stamp.
// `stamp_of(source)` is the invalidation token the ResultCache stores
// with a computed tree: an edge update bumps the stamps of exactly
// the components it touches, so cached trees for every other
// component stay verifiably fresh. Removals cannot split a union-find
// — the partition becomes a conservative over-approximation (stamps
// still bump, so correctness never depends on precision) until
// `rebuild_components()` recomputes it; the rebuild carries stamps
// over, so it never invalidates by itself.
//
// Threading contract: mutations (insert/remove/rebuild) must be
// externally quiesced — no concurrent queries or component lookups.
// Read paths (for_neighbors) are safe to run concurrently with each
// other and with stamp_of/connected; stamp_of and connected mutate
// union-find internals (path halving) and must be called from one
// thread at a time.
//
// Weights must be non-negative — this overlay feeds Dijkstra-family
// searches only (CG_CHECK enforced at insert).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/union_find.hpp"
#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::query {

template <Weight W>
class DynamicOverlay {
 public:
  using weight_type = W;

  explicit DynamicOverlay(const graph::AdjacencyArray<W>& base)
      : base_(base),
        base_removed_(static_cast<std::size_t>(base.num_edges()), 0),
        added_(static_cast<std::size_t>(base.num_vertices())),
        uf_(static_cast<std::size_t>(base.num_vertices())),
        comp_version_(static_cast<std::size_t>(base.num_vertices()), 0) {
    for (vertex_t v = 0; v < base.num_vertices(); ++v) {
      for (const auto& nb : base.neighbors(v)) {
        uf_.unite(static_cast<std::size_t>(v), static_cast<std::size_t>(nb.to));
      }
    }
    live_edges_ = base.num_edges();
  }

  DynamicOverlay(const DynamicOverlay&) = delete;
  DynamicOverlay& operator=(const DynamicOverlay&) = delete;

  // ------------------------------------------------------- GraphRep view

  [[nodiscard]] vertex_t num_vertices() const noexcept { return base_.num_vertices(); }
  [[nodiscard]] index_t num_edges() const noexcept { return live_edges_; }

  template <memsim::MemPolicy Mem, typename Fn>
  void for_neighbors(vertex_t v, Mem& mem, Fn&& fn) const {
    const auto uv = static_cast<std::size_t>(v);
    if (removed_count_ == 0) {
      base_.for_neighbors(v, mem, fn);
    } else {
      const auto span = base_.neighbors(v);
      const auto first = static_cast<std::size_t>(base_.record_offset(v));
      for (std::size_t i = 0; i < span.size(); ++i) {
        if (base_removed_[first + i]) continue;
        mem.read(&span[i]);
        fn(span[i]);
      }
    }
    for (const auto& nb : added_[uv]) {
      mem.read(&nb);
      fn(nb);
    }
  }

  template <memsim::MemPolicy Mem>
  void map_buffers(Mem& mem) const {
    base_.map_buffers(mem);
  }

  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    std::size_t added = 0;
    for (const auto& a : added_) added += a.size() * sizeof(graph::Neighbor<W>);
    return base_.footprint_bytes() + base_removed_.size() + added;
  }

  [[nodiscard]] const graph::AdjacencyArray<W>& base() const noexcept { return base_; }

  // --------------------------------------------------------- mutations

  /// Adds a directed edge u->v. Affected component stamps bump; if u
  /// and v were in different (weak) components, the merged component
  /// gets a fresh stamp so cached trees of both sides invalidate.
  void insert_edge(vertex_t u, vertex_t v, W w) {
    CG_CHECK(u >= 0 && u < num_vertices() && v >= 0 && v < num_vertices(),
             "edge endpoint out of range");
    CG_CHECK(w >= W{0}, "query overlay requires non-negative weights");
    added_[static_cast<std::size_t>(u)].push_back(graph::Neighbor<W>{v, w});
    ++live_edges_;
    ++structure_version_;
    CG_COUNTER_INC("query.overlay.inserts");

    const std::uint64_t vu = comp_version_[uf_.find(static_cast<std::size_t>(u))];
    const std::uint64_t vv = comp_version_[uf_.find(static_cast<std::size_t>(v))];
    uf_.unite(static_cast<std::size_t>(u), static_cast<std::size_t>(v));
    comp_version_[uf_.find(static_cast<std::size_t>(u))] = std::max(vu, vv) + 1;
  }

  /// Removes one live directed edge u->v (any weight; insertion-order
  /// preference: overlay additions first, then the base CSR). Returns
  /// false if no such edge is live. The component stamp of the (still
  /// conservatively merged) component bumps; the partition itself is
  /// only re-tightened by rebuild_components().
  bool remove_edge(vertex_t u, vertex_t v) {
    CG_CHECK(u >= 0 && u < num_vertices() && v >= 0 && v < num_vertices(),
             "edge endpoint out of range");
    auto& spill = added_[static_cast<std::size_t>(u)];
    bool found = false;
    for (std::size_t i = 0; i < spill.size(); ++i) {
      if (spill[i].to == v) {
        spill.erase(spill.begin() + static_cast<std::ptrdiff_t>(i));
        found = true;
        break;
      }
    }
    if (!found) {
      const auto span = base_.neighbors(u);
      const auto first = static_cast<std::size_t>(base_.record_offset(u));
      for (std::size_t i = 0; i < span.size(); ++i) {
        if (span[i].to == v && !base_removed_[first + i]) {
          base_removed_[first + i] = 1;
          ++removed_count_;
          found = true;
          break;
        }
      }
    }
    if (!found) return false;
    --live_edges_;
    ++structure_version_;
    components_stale_ = true;
    ++comp_version_[uf_.find(static_cast<std::size_t>(u))];
    CG_COUNTER_INC("query.overlay.removes");
    return true;
  }

  // ------------------------------------------------- component tracking

  /// Invalidation token for v's component: changes whenever an edge
  /// update could have changed any distance from a source in that
  /// component (conservatively — it may also change when none did).
  /// Mutation-free (non-compressing root walk), so any number of
  /// concurrent readers are safe as long as mutations are quiesced —
  /// the serving router's cached-portal path reads this from every
  /// traffic worker at once.
  [[nodiscard]] std::uint64_t stamp_of(vertex_t v) const {
    return comp_version_[uf_.find_root(static_cast<std::size_t>(v))];
  }

  /// Weak connectivity under the current (possibly conservative)
  /// partition: true whenever the live edges connect u and v, but
  /// after removals may also be true when they no longer do (until
  /// rebuild_components()). Mutation-free, like stamp_of.
  [[nodiscard]] bool connected(vertex_t u, vertex_t v) const {
    return uf_.find_root(static_cast<std::size_t>(u)) ==
           uf_.find_root(static_cast<std::size_t>(v));
  }

  /// True after a removal until the next rebuild_components().
  [[nodiscard]] bool components_stale() const noexcept { return components_stale_; }

  /// Monotone counter bumped by every mutation.
  [[nodiscard]] std::uint64_t structure_version() const noexcept { return structure_version_; }

  /// How many distinct components (under the current, possibly
  /// conservative partition) have been touched by at least one edge
  /// update — i.e. how much of a ResultCache over this overlay is
  /// exposed to invalidation. O(n) union-find walk: sample it at batch
  /// boundaries (the telemetry gauge does), don't poll it per query.
  [[nodiscard]] std::size_t dirty_components() const {
    const auto n = static_cast<std::size_t>(num_vertices());
    std::size_t dirty = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (uf_.find_root(v) == v && comp_version_[v] > 0) ++dirty;
    }
    return dirty;
  }

  /// Recomputes the weak-component partition from the live edge set
  /// (removals can split components; union-find alone cannot). Each
  /// new component inherits the maximum stamp among its members'
  /// previous stamps: the rebuild only *refines* the conservative
  /// partition, so every previously-handed-out stamp stays valid and
  /// no cached result invalidates just because of the rebuild.
  void rebuild_components() {
    const auto n = static_cast<std::size_t>(num_vertices());
    UnionFind fresh(n);
    memsim::NullMem mem;
    for (vertex_t v = 0; v < num_vertices(); ++v) {
      for_neighbors(v, mem, [&](const graph::Neighbor<W>& nb) {
        fresh.unite(static_cast<std::size_t>(v), static_cast<std::size_t>(nb.to));
      });
    }
    std::vector<std::uint64_t> fresh_version(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t root = fresh.find(v);
      fresh_version[root] = std::max(fresh_version[root], comp_version_[uf_.find(v)]);
    }
    uf_ = std::move(fresh);
    comp_version_ = std::move(fresh_version);
    components_stale_ = false;
    CG_COUNTER_INC("query.overlay.rebuilds");
  }

 private:
  const graph::AdjacencyArray<W>& base_;
  std::vector<char> base_removed_;  ///< indexed by CSR record position
  std::vector<std::vector<graph::Neighbor<W>>> added_;
  index_t live_edges_ = 0;
  index_t removed_count_ = 0;
  std::uint64_t structure_version_ = 0;
  bool components_stale_ = false;

  UnionFind uf_;  ///< const readers walk roots without compressing
  std::vector<std::uint64_t> comp_version_;  ///< meaningful at UF roots
};

}  // namespace cachegraph::query
