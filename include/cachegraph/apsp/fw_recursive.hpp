// FWR — the cache-oblivious recursive Floyd-Warshall (paper Fig. 3,
// Section 3.1.1).
//
//   FWR(A, B, C):
//     if base case: FWI(A, B, C)
//     else, with X11/X12/X21/X22 the quadrants of X:
//       FWR(A11,B11,C11); FWR(A12,B11,C12); FWR(A21,B21,C11);
//       FWR(A22,B21,C12); FWR(A22,B22,C22); FWR(A21,B22,C21);
//       FWR(A12,B12,C22); FWR(A11,B12,C21);
//
// The first four calls run NW→SE, the last four in exactly the reverse
// order — this ordering is what satisfies the extra FW dependencies
// (Claim 1 / Theorem 3.1). Traffic is Θ(N³/√C) at *every* level of the
// hierarchy without knowing C (Theorems 3.2-3.4).
//
// The recursion operates on the tile grid of the underlying layout, so
// the physical matrix must have a power-of-two number of blocks per
// side (padded_size_recursive). The base case runs FWI on one tile —
// stopping recursion at tile size B rather than at 2×2 is the paper's
// "up to 2×" base-case tuning (Section 3.1 last paragraphs, and our
// bench_ablation_basecase).
#pragma once

#include "cachegraph/apsp/fwi_kernel.hpp"
#include "cachegraph/matrix/square_matrix.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::apsp {

namespace detail {

/// A square region of the block grid: tiles [bi, bi+nb) × [bj, bj+nb).
struct BlockRegion {
  std::size_t bi;
  std::size_t bj;
  std::size_t nb;

  [[nodiscard]] BlockRegion quad(std::size_t qi, std::size_t qj) const noexcept {
    const std::size_t h = nb / 2;
    return BlockRegion{bi + qi * h, bj + qj * h, h};
  }
};

template <KernelMode Mode, Weight W, layout::MatrixLayout L, memsim::MemPolicy Mem>
void fwr(matrix::SquareMatrix<W, L>& m, BlockRegion a, BlockRegion b, BlockRegion c, Mem& mem,
         std::size_t depth) {
  if (a.nb == 1) {
    CG_COUNTER_INC("fwr.base_cases");
    CG_COUNTER_MAX("fwr.max_depth", depth);
    const std::size_t bsz = m.layout().block();
    const std::size_t ld = m.layout().tile_row_stride();
    fwi_kernel<Mode>(m.tile(a.bi, a.bj), ld, m.tile(b.bi, b.bj), ld, m.tile(c.bi, c.bj), ld, bsz,
                     mem);
    return;
  }
  CG_COUNTER_INC("fwr.recursive_splits");
  const auto a11 = a.quad(0, 0), a12 = a.quad(0, 1), a21 = a.quad(1, 0), a22 = a.quad(1, 1);
  const auto b11 = b.quad(0, 0), b12 = b.quad(0, 1), b21 = b.quad(1, 0), b22 = b.quad(1, 1);
  const auto c11 = c.quad(0, 0), c12 = c.quad(0, 1), c21 = c.quad(1, 0), c22 = c.quad(1, 1);

  fwr<Mode>(m, a11, b11, c11, mem, depth + 1);
  fwr<Mode>(m, a12, b11, c12, mem, depth + 1);
  fwr<Mode>(m, a21, b21, c11, mem, depth + 1);
  fwr<Mode>(m, a22, b21, c12, mem, depth + 1);
  fwr<Mode>(m, a22, b22, c22, mem, depth + 1);
  fwr<Mode>(m, a21, b22, c21, mem, depth + 1);
  fwr<Mode>(m, a12, b12, c22, mem, depth + 1);
  fwr<Mode>(m, a11, b12, c21, mem, depth + 1);
}

}  // namespace detail

template <KernelMode Mode = KernelMode::kChecked, Weight W, layout::MatrixLayout L,
          memsim::MemPolicy Mem = memsim::NullMem>
void fw_recursive(matrix::SquareMatrix<W, L>& m, Mem mem = Mem{}) {
  const std::size_t nb = m.layout().num_blocks();
  CG_CHECK(nb > 0 && (nb & (nb - 1)) == 0,
           "recursive FW needs a power-of-two block grid (pad with padded_size_recursive)");
  const detail::BlockRegion whole{0, 0, nb};
  detail::fwr<Mode>(m, whole, whole, whole, mem, /*depth=*/0);
}

}  // namespace cachegraph::apsp
