// Uniform drivers for every Floyd-Warshall variant.
//
// Benchmarks and tests hand the same row-major weight matrix to each
// variant; these helpers deal with padding, layout conversion, running,
// and copying the logical region back out, so callers compare apples to
// apples. The conversion cost is *included* by the timed benches when
// the paper includes it (layout construction is part of the optimized
// implementations' runtime there, and is O(N²) against an O(N³)
// computation).
#pragma once

#include <string>
#include <vector>

#include "cachegraph/apsp/fw_iterative.hpp"
#include "cachegraph/apsp/fw_parallel.hpp"
#include "cachegraph/apsp/fw_recursive.hpp"
#include "cachegraph/apsp/fw_tiled.hpp"
#include "cachegraph/apsp/fwr_parallel.hpp"
#include "cachegraph/layout/padding.hpp"

namespace cachegraph::apsp {

enum class FwVariant {
  kBaseline,        ///< iterative, row-major (the paper's baseline)
  kTiledRowMajor,   ///< tiled over strided row-major tiles
  kTiledBdl,        ///< tiled + Block Data Layout (paper's best tiled)
  kTiledMorton,     ///< tiled + Z-Morton (Table 4/5 comparison)
  kRecursiveRowMajor,
  kRecursiveBdl,    ///< recursive + BDL (Table 4/5 comparison)
  kRecursiveMorton, ///< recursive + Z-Morton (paper's cache-oblivious pick)
  kParallelBdl,     ///< OpenMP tiled + BDL (future-work extension)
};

[[nodiscard]] constexpr const char* variant_name(FwVariant v) noexcept {
  switch (v) {
    case FwVariant::kBaseline: return "baseline";
    case FwVariant::kTiledRowMajor: return "tiled/row-major";
    case FwVariant::kTiledBdl: return "tiled/BDL";
    case FwVariant::kTiledMorton: return "tiled/morton";
    case FwVariant::kRecursiveRowMajor: return "recursive/row-major";
    case FwVariant::kRecursiveBdl: return "recursive/BDL";
    case FwVariant::kRecursiveMorton: return "recursive/morton";
    case FwVariant::kParallelBdl: return "parallel/BDL";
  }
  return "?";
}

namespace detail {

template <Weight W, layout::MatrixLayout L, typename RunFn>
std::vector<W> run_on_layout(L lay, const std::vector<W>& w, std::size_t n, RunFn&& run) {
  matrix::SquareMatrix<W, L> m(lay, n);
  m.load_row_major(w.data(), n);
  run(m);
  std::vector<W> out(n * n);
  m.store_row_major(out.data(), n);
  return out;
}

/// Threaded twin of run_on_layout: layout conversion fans out over the
/// pool too (at large N the sequential O(N²) conversion would otherwise
/// serialize a measurable slice of the parallel run, per Amdahl).
template <Weight W, layout::MatrixLayout L, typename RunFn>
std::vector<W> run_on_layout(L lay, const std::vector<W>& w, std::size_t n,
                             parallel::TaskPool& pool, RunFn&& run) {
  matrix::SquareMatrix<W, L> m(lay, n);
  m.load_row_major(w.data(), n, pool);
  run(m);
  std::vector<W> out(n * n);
  m.store_row_major(out.data(), n, pool);
  return out;
}

/// True when every weight is non-negative, so the branchless fast
/// kernel is sound (see fwi_kernel.hpp).
template <Weight W>
[[nodiscard]] bool all_non_negative(const std::vector<W>& w) {
  for (const W x : w) {
    if (x < W{0}) return false;
  }
  return true;
}

}  // namespace detail

/// Run the requested FW variant on a logical row-major n×n weight
/// matrix and return the row-major distance matrix. `block` is the tile
/// size B (ignored by the baseline).
template <Weight W, memsim::MemPolicy Mem = memsim::NullMem>
std::vector<W> run_fw(FwVariant v, const std::vector<W>& w, std::size_t n, std::size_t block,
                      Mem mem = Mem{}) {
  CG_CHECK(w.size() == n * n, "weight matrix must be n*n row-major");
  using layout::BlockDataLayout;
  using layout::MortonLayout;
  using layout::RowMajorLayout;
  const std::size_t nt = layout::padded_size_tiled(n, block);
  const std::size_t nr = layout::padded_size_recursive(n, block);

  // Kernel-mode selection: the branchless fast kernel needs
  // non-negative weights, and traced runs always use the checked kernel
  // so access accounting never depends on value-dependent shortcuts.
  bool fast = true;
  if constexpr (Mem::tracing) {
    fast = false;
  } else {
    fast = detail::all_non_negative(w);
  }

  switch (v) {
    case FwVariant::kBaseline: {
      std::vector<W> d = w;
      if constexpr (Mem::tracing) mem.map_buffer(d.data(), d.size() * sizeof(W));
      if (fast) {
        fw_iterative<KernelMode::kFast>(d.data(), n, mem);
      } else {
        fw_iterative(d.data(), n, mem);
      }
      return d;
    }
    case FwVariant::kTiledRowMajor:
      return detail::run_on_layout<W>(RowMajorLayout(nt, block), w, n, [&](auto& m) {
        if constexpr (Mem::tracing) mem.map_buffer(m.data(), m.storage_bytes());
        if (fast) {
          fw_tiled<KernelMode::kFast>(m, mem);
        } else {
          fw_tiled(m, mem);
        }
      });
    case FwVariant::kTiledBdl:
      return detail::run_on_layout<W>(BlockDataLayout(nt, block), w, n, [&](auto& m) {
        if constexpr (Mem::tracing) mem.map_buffer(m.data(), m.storage_bytes());
        if (fast) {
          fw_tiled<KernelMode::kFast>(m, mem);
        } else {
          fw_tiled(m, mem);
        }
      });
    case FwVariant::kTiledMorton:
      return detail::run_on_layout<W>(MortonLayout(nr, block), w, n, [&](auto& m) {
        if constexpr (Mem::tracing) mem.map_buffer(m.data(), m.storage_bytes());
        if (fast) {
          fw_tiled<KernelMode::kFast>(m, mem);
        } else {
          fw_tiled(m, mem);
        }
      });
    case FwVariant::kRecursiveRowMajor:
      return detail::run_on_layout<W>(RowMajorLayout(nr, block), w, n, [&](auto& m) {
        if constexpr (Mem::tracing) mem.map_buffer(m.data(), m.storage_bytes());
        if (fast) {
          fw_recursive<KernelMode::kFast>(m, mem);
        } else {
          fw_recursive(m, mem);
        }
      });
    case FwVariant::kRecursiveBdl:
      return detail::run_on_layout<W>(BlockDataLayout(nr, block), w, n, [&](auto& m) {
        if constexpr (Mem::tracing) mem.map_buffer(m.data(), m.storage_bytes());
        if (fast) {
          fw_recursive<KernelMode::kFast>(m, mem);
        } else {
          fw_recursive(m, mem);
        }
      });
    case FwVariant::kRecursiveMorton:
      return detail::run_on_layout<W>(MortonLayout(nr, block), w, n, [&](auto& m) {
        if constexpr (Mem::tracing) mem.map_buffer(m.data(), m.storage_bytes());
        if (fast) {
          fw_recursive<KernelMode::kFast>(m, mem);
        } else {
          fw_recursive(m, mem);
        }
      });
    case FwVariant::kParallelBdl:
      return detail::run_on_layout<W>(BlockDataLayout(nt, block), w, n,
                                      [&](auto& m) {
                                        if (fast) {
                                          fw_parallel<KernelMode::kFast>(m);
                                        } else {
                                          fw_parallel(m);
                                        }
                                      });
  }
  CG_CHECK(false, "unknown variant");
  return {};
}

/// Threaded FW driver. With `num_threads > 1` the recursive variants
/// take the task-parallel path (`fwr_parallel` on the variant's layout)
/// and the tiled variants the OpenMP phase-parallel path
/// (`fw_parallel`); layout conversion is task-parallel in both. With
/// `num_threads <= 1` — or for the baseline, which has no decomposition
/// to schedule — this is exactly `run_fw`. Results are bit-identical to
/// the sequential driver either way. Parallel runs are never traced, so
/// there is no Mem parameter.
template <Weight W>
std::vector<W> run_fw(FwVariant v, const std::vector<W>& w, std::size_t n, std::size_t block,
                      int num_threads) {
  if (num_threads <= 1 || v == FwVariant::kBaseline) return run_fw(v, w, n, block);
  CG_CHECK(w.size() == n * n, "weight matrix must be n*n row-major");
  using layout::BlockDataLayout;
  using layout::MortonLayout;
  using layout::RowMajorLayout;
  const std::size_t nt = layout::padded_size_tiled(n, block);
  const std::size_t nr = layout::padded_size_recursive(n, block);
  const bool fast = detail::all_non_negative(w);
  parallel::TaskPool pool(num_threads);

  const auto run_recursive = [&](auto& m) {
    if (fast) {
      fwr_parallel<KernelMode::kFast>(m, pool);
    } else {
      fwr_parallel(m, pool);
    }
  };
  const auto run_tiled = [&](auto& m) {
    if (fast) {
      fw_parallel<KernelMode::kFast>(m, num_threads);
    } else {
      fw_parallel(m, num_threads);
    }
  };

  switch (v) {
    case FwVariant::kBaseline:
      break;  // handled above
    case FwVariant::kTiledRowMajor:
      return detail::run_on_layout<W>(RowMajorLayout(nt, block), w, n, pool, run_tiled);
    case FwVariant::kTiledBdl:
    case FwVariant::kParallelBdl:
      return detail::run_on_layout<W>(BlockDataLayout(nt, block), w, n, pool, run_tiled);
    case FwVariant::kTiledMorton:
      return detail::run_on_layout<W>(MortonLayout(nr, block), w, n, pool, run_tiled);
    case FwVariant::kRecursiveRowMajor:
      return detail::run_on_layout<W>(RowMajorLayout(nr, block), w, n, pool, run_recursive);
    case FwVariant::kRecursiveBdl:
      return detail::run_on_layout<W>(BlockDataLayout(nr, block), w, n, pool, run_recursive);
    case FwVariant::kRecursiveMorton:
      return detail::run_on_layout<W>(MortonLayout(nr, block), w, n, pool, run_recursive);
  }
  CG_CHECK(false, "unknown variant");
  return {};
}

}  // namespace cachegraph::apsp
