// Task-parallel FWR — the paper's Fig.-3 recursion scheduled as a tile
// DAG on a work-stealing pool (the Conclusion's "our recursive
// implementation can be used to decompose data and computation for a
// parallel version", taken literally).
//
// Which of the eight recursive calls may run concurrently depends on
// how their A (output), B (row operand) and C (column operand) regions
// alias, so the recursion splits into four mutually recursive cases.
// With quadrant phases written left-to-right and `|` separating tasks
// that run in parallel:
//
//   diag(X)      — A = B = C       (the top-level call, Claim 1 order):
//     diag(X11); col(X12,X11) | row(X21,X11); gen(X22,X21,X12);
//     diag(X22); col(X21,X22) | row(X12,X22); gen(X11,X12,X21)
//   col(A,B)     — C aliases A, B is the (already final) row operand:
//     {col(A11,B11) | col(A12,B11)} ; {gen(A21,B21,A11) | gen(A22,B21,A12)} ;
//     {col(A22,B22) | col(A21,B22)} ; {gen(A12,B12,A22) | gen(A11,B12,A21)}
//   row(A,C)     — B aliases A, C is the column operand (symmetric):
//     {row(A11,C11) | row(A21,C11)} ; {gen(A12,A11,C12) | gen(A22,A21,C12)} ;
//     {row(A22,C22) | row(A12,C22)} ; {gen(A21,A22,C21) | gen(A11,A12,C21)}
//   gen(A,B,C)   — all three regions distinct (a min-plus multiply):
//     {gen(A11,B11,C11) | gen(A12,B11,C12) | gen(A21,B21,C11) | gen(A22,B21,C12)} ;
//     {gen(A22,B22,C22) | gen(A21,B22,C21) | gen(A12,B12,C22) | gen(A11,B12,C21)}
//
// Each phase barrier is exactly the write->read / write->write
// dependency set of the sequential call order, so every matrix element
// experiences the same relaxations in the same order as sequential FWR
// — the parallel result is bit-identical (tests assert this, doubles
// included).
//
// Cut-off: regions at or below `cutoff` blocks per side run the plain
// sequential recursion (detail::fwr handles every aliasing case), so
// leaf tasks amortize scheduling overhead while the upper levels expose
// the DAG. The default leaves at least kMinLeafElems elements per leaf
// side — below that, task bookkeeping rivals the tile work itself.
#pragma once

#include <algorithm>

#include "cachegraph/apsp/fw_recursive.hpp"
#include "cachegraph/obs/trace.hpp"
#include "cachegraph/parallel/task_pool.hpp"

namespace cachegraph::apsp {

namespace detail {

template <KernelMode Mode, Weight W, layout::MatrixLayout L>
struct FwrParCtx {
  matrix::SquareMatrix<W, L>* m;
  parallel::TaskPool* pool;
  std::size_t cutoff;  ///< regions with nb <= cutoff run sequentially
};

template <KernelMode Mode, Weight W, layout::MatrixLayout L>
bool fwr_par_leaf(const FwrParCtx<Mode, W, L>& ctx, BlockRegion a, BlockRegion b, BlockRegion c,
                  std::size_t depth) {
  if (a.nb > ctx.cutoff) return false;
  memsim::NullMem mem;
  fwr<Mode>(*ctx.m, a, b, c, mem, depth);
  return true;
}

template <KernelMode Mode, Weight W, layout::MatrixLayout L>
void fwr_par_gen(const FwrParCtx<Mode, W, L>& ctx, BlockRegion a, BlockRegion b, BlockRegion c,
                 std::size_t depth);

// C aliases A: per phase, the two sub-calls touch disjoint halves of A.
template <KernelMode Mode, Weight W, layout::MatrixLayout L>
void fwr_par_col(const FwrParCtx<Mode, W, L>& ctx, BlockRegion a, BlockRegion b,
                 std::size_t depth) {
  if (fwr_par_leaf(ctx, a, b, a, depth)) return;
  CG_COUNTER_INC("fwr_par.splits");
  const auto a11 = a.quad(0, 0), a12 = a.quad(0, 1), a21 = a.quad(1, 0), a22 = a.quad(1, 1);
  const auto b11 = b.quad(0, 0), b12 = b.quad(0, 1), b21 = b.quad(1, 0), b22 = b.quad(1, 1);
  const std::size_t d = depth + 1;
  {
    parallel::TaskGroup g(*ctx.pool);
    g.run([&, d] { fwr_par_col<Mode>(ctx, a11, b11, d); });
    g.run([&, d] { fwr_par_col<Mode>(ctx, a12, b11, d); });
  }
  {
    parallel::TaskGroup g(*ctx.pool);
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a21, b21, a11, d); });
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a22, b21, a12, d); });
  }
  {
    parallel::TaskGroup g(*ctx.pool);
    g.run([&, d] { fwr_par_col<Mode>(ctx, a22, b22, d); });
    g.run([&, d] { fwr_par_col<Mode>(ctx, a21, b22, d); });
  }
  {
    parallel::TaskGroup g(*ctx.pool);
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a12, b12, a22, d); });
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a11, b12, a21, d); });
  }
}

// B aliases A: the mirror image of the column-panel case.
template <KernelMode Mode, Weight W, layout::MatrixLayout L>
void fwr_par_row(const FwrParCtx<Mode, W, L>& ctx, BlockRegion a, BlockRegion c,
                 std::size_t depth) {
  if (fwr_par_leaf(ctx, a, a, c, depth)) return;
  CG_COUNTER_INC("fwr_par.splits");
  const auto a11 = a.quad(0, 0), a12 = a.quad(0, 1), a21 = a.quad(1, 0), a22 = a.quad(1, 1);
  const auto c11 = c.quad(0, 0), c12 = c.quad(0, 1), c21 = c.quad(1, 0), c22 = c.quad(1, 1);
  const std::size_t d = depth + 1;
  {
    parallel::TaskGroup g(*ctx.pool);
    g.run([&, d] { fwr_par_row<Mode>(ctx, a11, c11, d); });
    g.run([&, d] { fwr_par_row<Mode>(ctx, a21, c11, d); });
  }
  {
    parallel::TaskGroup g(*ctx.pool);
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a12, a11, c12, d); });
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a22, a21, c12, d); });
  }
  {
    parallel::TaskGroup g(*ctx.pool);
    g.run([&, d] { fwr_par_row<Mode>(ctx, a22, c22, d); });
    g.run([&, d] { fwr_par_row<Mode>(ctx, a12, c22, d); });
  }
  {
    parallel::TaskGroup g(*ctx.pool);
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a21, a22, c21, d); });
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a11, a12, c21, d); });
  }
}

// A, B, C pairwise distinct: the widest case — four-way parallel, two
// phases (each A quadrant is written once per phase).
template <KernelMode Mode, Weight W, layout::MatrixLayout L>
void fwr_par_gen(const FwrParCtx<Mode, W, L>& ctx, BlockRegion a, BlockRegion b, BlockRegion c,
                 std::size_t depth) {
  if (fwr_par_leaf(ctx, a, b, c, depth)) return;
  CG_COUNTER_INC("fwr_par.splits");
  const auto a11 = a.quad(0, 0), a12 = a.quad(0, 1), a21 = a.quad(1, 0), a22 = a.quad(1, 1);
  const auto b11 = b.quad(0, 0), b12 = b.quad(0, 1), b21 = b.quad(1, 0), b22 = b.quad(1, 1);
  const auto c11 = c.quad(0, 0), c12 = c.quad(0, 1), c21 = c.quad(1, 0), c22 = c.quad(1, 1);
  const std::size_t d = depth + 1;
  {
    parallel::TaskGroup g(*ctx.pool);
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a11, b11, c11, d); });
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a12, b11, c12, d); });
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a21, b21, c11, d); });
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a22, b21, c12, d); });
  }
  {
    parallel::TaskGroup g(*ctx.pool);
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a22, b22, c22, d); });
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a21, b22, c21, d); });
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a12, b12, c22, d); });
    g.run([&, d] { fwr_par_gen<Mode>(ctx, a11, b12, c21, d); });
  }
}

// A = B = C: the diagonal chain. The serial spine (diag -> gen -> diag
// -> gen) runs inline on the current worker; only the panel pairs fork.
template <KernelMode Mode, Weight W, layout::MatrixLayout L>
void fwr_par_diag(const FwrParCtx<Mode, W, L>& ctx, BlockRegion x, std::size_t depth) {
  if (fwr_par_leaf(ctx, x, x, x, depth)) return;
  CG_COUNTER_INC("fwr_par.splits");
  const auto x11 = x.quad(0, 0), x12 = x.quad(0, 1), x21 = x.quad(1, 0), x22 = x.quad(1, 1);
  const std::size_t d = depth + 1;
  fwr_par_diag<Mode>(ctx, x11, d);
  {
    parallel::TaskGroup g(*ctx.pool);
    g.run([&, d] { fwr_par_col<Mode>(ctx, x12, x11, d); });
    g.run([&, d] { fwr_par_row<Mode>(ctx, x21, x11, d); });
  }
  fwr_par_gen<Mode>(ctx, x22, x21, x12, d);
  fwr_par_diag<Mode>(ctx, x22, d);
  {
    parallel::TaskGroup g(*ctx.pool);
    g.run([&, d] { fwr_par_col<Mode>(ctx, x21, x22, d); });
    g.run([&, d] { fwr_par_row<Mode>(ctx, x12, x22, d); });
  }
  fwr_par_gen<Mode>(ctx, x11, x12, x21, d);
}

}  // namespace detail

/// Leaf subproblems smaller than this many elements per side are not
/// worth a task of their own (scheduling overhead rivals tile work).
inline constexpr std::size_t kFwrParMinLeafElems = 128;

/// Default cut-off (in blocks per side) for a matrix with `nb` blocks
/// of `block` elements: never recurse tasks below kFwrParMinLeafElems
/// elements per side, and with a single thread skip tasking entirely.
[[nodiscard]] inline std::size_t fwr_parallel_cutoff(std::size_t nb, std::size_t block,
                                                     int num_threads) {
  if (num_threads == 1) return nb;
  std::size_t cutoff = 1;
  while (cutoff * block < kFwrParMinLeafElems && cutoff < nb) cutoff *= 2;
  return cutoff;
}

/// Task-parallel recursive Floyd-Warshall on an externally owned pool.
/// Produces bit-identical results to fw_recursive for every weight type
/// and layout. `cutoff_blocks == 0` picks the default heuristic.
template <KernelMode Mode = KernelMode::kChecked, Weight W, layout::MatrixLayout L>
void fwr_parallel(matrix::SquareMatrix<W, L>& m, parallel::TaskPool& pool,
                  std::size_t cutoff_blocks = 0) {
  const std::size_t nb = m.layout().num_blocks();
  CG_CHECK(nb > 0 && (nb & (nb - 1)) == 0,
           "recursive FW needs a power-of-two block grid (pad with padded_size_recursive)");
  if (cutoff_blocks == 0) {
    cutoff_blocks = fwr_parallel_cutoff(nb, m.layout().block(), pool.num_threads());
  }
  CG_TRACE_SPAN("fwr_parallel");
  const detail::FwrParCtx<Mode, W, L> ctx{&m, &pool, cutoff_blocks};
  detail::fwr_par_diag<Mode>(ctx, detail::BlockRegion{0, 0, nb}, /*depth=*/0);
  pool.flush_counters();
}

/// Convenience overload: builds a pool of `num_threads` (0 = hardware
/// concurrency) for the duration of the call.
template <KernelMode Mode = KernelMode::kChecked, Weight W, layout::MatrixLayout L>
void fwr_parallel(matrix::SquareMatrix<W, L>& m, int num_threads = 0,
                  std::size_t cutoff_blocks = 0) {
  parallel::TaskPool pool(num_threads);
  fwr_parallel<Mode>(m, pool, cutoff_blocks);
}

}  // namespace cachegraph::apsp
