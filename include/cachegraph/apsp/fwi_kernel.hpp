// FWI — the 3-argument iterative Floyd-Warshall kernel (paper Fig. 2).
//
//   for k, i, j:  a[i][j] = min(a[i][j], b[i][k] + c[k][j])
//
// Used directly as the baseline (A = B = C = whole matrix) and as the
// base case of both the tiled (Fig. 4) and recursive (Fig. 3)
// implementations, where A, B, C are tiles that may alias each other in
// any combination (see the Appendix "Clarifications"). Each argument is
// a (pointer, row-stride) pair so the same kernel serves strided tiles
// of a row-major matrix and contiguous tiles of BDL/Morton matrices.
//
// Two kernel modes:
//   - kChecked: saturating adds; correct for any weights (including
//     negative edges, as long as there is no negative cycle) and used
//     for every traced (SimMem) run so the access accounting never
//     depends on value-dependent shortcuts.
//   - kFast: branchless `min(a, b + c)`. Requires non-negative weights.
//     Sound because every stored value is <= inf<W> (values only
//     decrease from their initialization), so b + c <= 2*inf never
//     overflows (inf = max/2 for integers), and with b, c >= 0 any sum
//     involving an inf operand is >= inf and thus never selected by the
//     min. The j-loop is a pure min/add stream the compiler vectorizes;
//     rows with b[i][k] == inf are skipped outright.
//
// Precondition for both modes: no negative cycles. Under that
// precondition diagonal entries never go negative and hoisting b[i][k]
// out of the j-loop is exact even when A aliases B.
//
// Memory-model accounting (kChecked + tracing): per inner iteration we
// count the loads and stores the natural compiled loop performs — load
// c[k][j], load a[i][j], store a[i][j]; b[i][k] is loaded once per
// (k, i) and held in a register.
#pragma once

#include <cstddef>

#include "cachegraph/common/types.hpp"
#include "cachegraph/memsim/mem_policy.hpp"

namespace cachegraph::apsp {

enum class KernelMode {
  kChecked,  ///< saturating arithmetic; any weights; faithful tracing
  kFast,     ///< branchless vectorizable min/add; non-negative weights
};

template <KernelMode Mode = KernelMode::kChecked, Weight W,
          memsim::MemPolicy Mem = memsim::NullMem>
void fwi_kernel(W* a, std::size_t lda, const W* b, std::size_t ldb, const W* c, std::size_t ldc,
                std::size_t n, Mem& mem) {
  for (std::size_t k = 0; k < n; ++k) {
    const W* c_row = c + k * ldc;
    for (std::size_t i = 0; i < n; ++i) {
      W* a_row = a + i * lda;
      const W b_ik = b[i * ldb + k];
      if constexpr (Mode == KernelMode::kFast) {
        if (is_inf(b_ik)) continue;  // inf + c >= inf can never improve
        for (std::size_t j = 0; j < n; ++j) {
          const W via = static_cast<W>(b_ik + c_row[j]);
          a_row[j] = via < a_row[j] ? via : a_row[j];
        }
      } else {
        mem.read(&b[i * ldb + k]);
        for (std::size_t j = 0; j < n; ++j) {
          mem.read(&c_row[j]);
          mem.read(&a_row[j]);
          a_row[j] = relax_min(a_row[j], b_ik, c_row[j]);
          mem.write(&a_row[j]);
        }
      }
    }
  }
}

}  // namespace cachegraph::apsp
