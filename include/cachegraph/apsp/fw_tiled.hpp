// Tiled Floyd-Warshall (paper Fig. 4, Section 3.1.2).
//
// The matrix is partitioned into B×B tiles. During block-iteration b:
//   1. update the (b,b) diagonal tile    — FWI(Dbb, Dbb, Dbb)
//   2. update the rest of block-row b    — FWI(Dbj, Dbb, Dbj)
//      and block-column b                — FWI(Dib, Dib, Dbb)
//   3. update every remaining tile       — FWI(Dij, Dib, Dbj)
// This satisfies all dependencies of Claim 1 with k-1 <= k' <= k+B-1.
//
// Works over any layout (row-major strided tiles, BDL or Morton
// contiguous tiles); pairing it with BlockDataLayout reproduces the
// paper's best tiled variant (Tables 2-5, Fig. 11).
#pragma once

#include "cachegraph/apsp/fwi_kernel.hpp"
#include "cachegraph/matrix/square_matrix.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/obs/trace.hpp"

namespace cachegraph::apsp {

template <KernelMode Mode = KernelMode::kChecked, Weight W, layout::MatrixLayout L,
          memsim::MemPolicy Mem = memsim::NullMem>
void fw_tiled(matrix::SquareMatrix<W, L>& m, Mem mem = Mem{}) {
  const std::size_t nb = m.layout().num_blocks();
  const std::size_t bsz = m.layout().block();
  const std::size_t ld = m.layout().tile_row_stride();

  for (std::size_t b = 0; b < nb; ++b) {
    // One timeline span per block-iteration (a no-op pointer test
    // unless a TraceSession is installed).
    CG_TRACE_SPAN("fw_tiled.block_iteration");
    CG_COUNTER_INC("fw_tiled.block_iterations");

    // Phase 1: the diagonal tile (black tile in Fig. 4).
    CG_COUNTER_INC("fw_tiled.tile_updates");
    fwi_kernel<Mode>(m.tile(b, b), ld, m.tile(b, b), ld, m.tile(b, b), ld, bsz, mem);

    // Phase 2: block-row b and block-column b (grey tiles).
    for (std::size_t j = 0; j < nb; ++j) {
      if (j == b) continue;
      CG_COUNTER_INC("fw_tiled.tile_updates");
      fwi_kernel<Mode>(m.tile(b, j), ld, m.tile(b, b), ld, m.tile(b, j), ld, bsz, mem);
    }
    for (std::size_t i = 0; i < nb; ++i) {
      if (i == b) continue;
      CG_COUNTER_INC("fw_tiled.tile_updates");
      fwi_kernel<Mode>(m.tile(i, b), ld, m.tile(i, b), ld, m.tile(b, b), ld, bsz, mem);
    }

    // Phase 3: everything else (white tiles).
    for (std::size_t i = 0; i < nb; ++i) {
      if (i == b) continue;
      for (std::size_t j = 0; j < nb; ++j) {
        if (j == b) continue;
        CG_COUNTER_INC("fw_tiled.tile_updates");
        fwi_kernel<Mode>(m.tile(i, j), ld, m.tile(i, b), ld, m.tile(b, j), ld, bsz, mem);
      }
    }
  }
}

}  // namespace cachegraph::apsp
