// Johnson's algorithm: APSP for sparse graphs = Bellman-Ford
// reweighting + N Dijkstra runs.
//
// This is the natural library companion to Figure 14 of the paper
// (Dijkstra beats FW for sparse all-pairs work): Johnson's is exactly
// "run Dijkstra from every source", made correct for negative edges.
// Because it is built on the adjacency array + binary heap fast path,
// it inherits the Section 3.2 representation optimization end to end.
//
// The N Dijkstras are independent, which makes Johnson's the canonical
// batch workload: the overloads taking a TaskPool (or thread count)
// fan the sources out through sssp::BatchEngine — one shared immutable
// adjacency array, per-worker scratch reused across sources — and
// produce a distance matrix bit-identical to the serial loop.
//
// The reweighting stage runs SPFA (queue-based Bellman-Ford,
// sssp/spfa.hpp) directly on the input graph with all-zero initial
// potentials — the virtual-source formulation without materializing
// the augmented (n+1)-vertex graph, and without the round-based scan
// that made the old BF stage the serial bottleneck of the batched
// path.
//
// At paper scale the N×N output matrix dominates memory (n=16384 of
// int32 is 1 GiB); `johnson_stream` keeps the fan-out but hands each
// finished row to a sink instead of materializing the matrix, so
// full-scale APSP aggregation (row sums, eccentricities, histograms)
// runs in O(N) extra space.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/parallel/lease_pool.hpp"
#include "cachegraph/parallel/task_pool.hpp"
#include "cachegraph/sssp/batch_engine.hpp"
#include "cachegraph/sssp/dijkstra.hpp"
#include "cachegraph/sssp/spfa.hpp"

namespace cachegraph::apsp {

template <Weight W>
struct JohnsonResult {
  std::vector<W> dist;  ///< row-major n*n, inf for unreachable
  bool negative_cycle = false;
};

namespace detail {

/// The Bellman-Ford stage shared by the serial and batched paths:
/// potentials from a virtual source, then w'(u,v) = w(u,v)+h(u)-h(v).
template <Weight W>
struct Reweighted {
  graph::EdgeListGraph<W> graph{0};  ///< non-negative reweighted edges
  std::vector<W> h;                  ///< potentials (finite for all v)
  bool negative_cycle = false;
};

template <Weight W>
Reweighted<W> johnson_reweight(const graph::EdgeListGraph<W>& g, sssp::SpfaScratch& scratch) {
  Reweighted<W> rw;

  // 1. SPFA with all-zero initial potentials — exactly the shortest
  //    distances from a virtual source wired to every vertex with
  //    weight 0, without building that augmented graph. The scratch is
  //    the caller's: reweighting batch after batch re-seeds the same
  //    FIFO/flag/count arrays instead of allocating three O(n) buffers
  //    per call (sssp_batch_test pins the steady state at zero grows).
  const graph::AdjacencyArray<W> rep(g);
  auto bf = sssp::spfa_potentials(rep, scratch);
  if (bf.negative_cycle) {
    rw.negative_cycle = true;
    return rw;
  }
  rw.h = std::move(bf.dist);

  // 2. Reweight: w'(u,v) = w(u,v) + h(u) - h(v) >= 0.
  rw.graph = graph::EdgeListGraph<W>(g.num_vertices());
  rw.graph.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const auto& e : g.edges()) {
    const W w = static_cast<W>(e.weight + rw.h[static_cast<std::size_t>(e.from)] -
                               rw.h[static_cast<std::size_t>(e.to)]);
    CG_DCHECK(w >= W{0});
    rw.graph.add_edge(e.from, e.to, w);
  }
  return rw;
}

template <Weight W>
Reweighted<W> johnson_reweight(const graph::EdgeListGraph<W>& g) {
  sssp::SpfaScratch scratch;
  return johnson_reweight(g, scratch);
}

}  // namespace detail

template <Weight W>
JohnsonResult<W> johnson(const graph::EdgeListGraph<W>& g) {
  const vertex_t n = g.num_vertices();
  JohnsonResult<W> out;

  const auto rw = detail::johnson_reweight(g);
  if (rw.negative_cycle) {
    out.negative_cycle = true;
    return out;
  }
  const std::vector<W>& h = rw.h;
  const graph::AdjacencyArray<W> rep(rw.graph);

  // Dijkstra from every source; undo the reweighting.
  const auto un = static_cast<std::size_t>(n);
  out.dist.assign(un * un, inf<W>());
  for (vertex_t s = 0; s < n; ++s) {
    const auto r = sssp::dijkstra(rep, s);
    const auto us = static_cast<std::size_t>(s);
    for (std::size_t v = 0; v < un; ++v) {
      if (is_inf(r.dist[v])) continue;
      out.dist[us * un + v] = static_cast<W>(r.dist[v] - h[us] + h[v]);
    }
  }
  return out;
}

/// Batched Johnson's: same reweighting, the N-Dijkstra fan-out runs as
/// TaskPool tasks through sssp::BatchEngine. Each completed source
/// writes its own row of the matrix (rows are disjoint, so no locking),
/// and only the vertices the query actually reached are visited.
/// The result is bit-identical to the serial overload. The scratch
/// overload keeps the reweighting stage allocation-free across
/// repeated batches (hand the same SpfaScratch to every call).
template <Weight W>
JohnsonResult<W> johnson(const graph::EdgeListGraph<W>& g, parallel::TaskPool& pool,
                         sssp::SpfaScratch& scratch) {
  const vertex_t n = g.num_vertices();
  JohnsonResult<W> out;

  const auto rw = detail::johnson_reweight(g, scratch);
  if (rw.negative_cycle) {
    out.negative_cycle = true;
    return out;
  }
  const std::vector<W>& h = rw.h;
  const graph::AdjacencyArray<W> rep(rw.graph);

  const auto un = static_cast<std::size_t>(n);
  out.dist.assign(un * un, inf<W>());
  std::vector<vertex_t> sources(un);
  for (vertex_t s = 0; s < n; ++s) sources[static_cast<std::size_t>(s)] = s;

  sssp::BatchEngine<W> engine(rep);
  using Scratch = typename sssp::BatchEngine<W>::Scratch;
  engine.run_batch(sources, pool, [&](std::size_t, vertex_t s, const Scratch& sc) {
    const auto us = static_cast<std::size_t>(s);
    W* row = out.dist.data() + us * un;
    for (const vertex_t v : sc.touched()) {
      const auto uv = static_cast<std::size_t>(v);
      row[uv] = static_cast<W>(sc.dist()[uv] - h[us] + h[uv]);
    }
  });
  return out;
}

template <Weight W>
JohnsonResult<W> johnson(const graph::EdgeListGraph<W>& g, parallel::TaskPool& pool) {
  sssp::SpfaScratch scratch;
  return johnson(g, pool, scratch);
}

/// Batched Johnson's over a freshly spun-up pool of `threads` slots.
template <Weight W>
JohnsonResult<W> johnson(const graph::EdgeListGraph<W>& g, int threads) {
  parallel::TaskPool pool(threads);
  return johnson(g, pool);
}

/// Row-streaming batched Johnson's: the same fan-out, but each
/// finished source calls `sink(source, row)` with its dense distance
/// row (inf where unreachable; un-reweighted, identical to the row the
/// matrix overloads would store) and the row buffer is immediately
/// reused — the N×N matrix is never materialized, so n is bounded by
/// time, not memory. Row buffers are leased per worker (at most
/// `pool.num_threads()` live; reset is O(touched)).
///
/// The sink runs on worker threads, one call per source, distinct
/// sources concurrently; the row span is only valid during the call.
/// Returns false (without calling the sink) on a negative cycle.
template <Weight W, typename RowSink>
bool johnson_stream(const graph::EdgeListGraph<W>& g, parallel::TaskPool& pool,
                    RowSink&& sink) {
  const vertex_t n = g.num_vertices();

  const auto rw = detail::johnson_reweight(g);
  if (rw.negative_cycle) return false;
  const std::vector<W>& h = rw.h;
  const graph::AdjacencyArray<W> rep(rw.graph);

  const auto un = static_cast<std::size_t>(n);
  std::vector<vertex_t> sources(un);
  for (vertex_t s = 0; s < n; ++s) sources[static_cast<std::size_t>(s)] = s;

  parallel::LeasePool<std::vector<W>> rows;
  sssp::BatchEngine<W> engine(rep);
  using Scratch = typename sssp::BatchEngine<W>::Scratch;
  engine.run_batch(sources, pool, [&](std::size_t, vertex_t s, const Scratch& sc) {
    const auto row_lease =
        rows.acquire([un] { return std::make_unique<std::vector<W>>(un, inf<W>()); });
    std::vector<W>& row = row_lease.get();
    const auto us = static_cast<std::size_t>(s);
    for (const vertex_t v : sc.touched()) {
      const auto uv = static_cast<std::size_t>(v);
      row[uv] = static_cast<W>(sc.dist()[uv] - h[us] + h[uv]);
    }
    sink(s, std::span<const W>(row));
    // Undo only this row's writes so the next lease starts clean.
    for (const vertex_t v : sc.touched()) row[static_cast<std::size_t>(v)] = inf<W>();
  });
  return true;
}

}  // namespace cachegraph::apsp
