// Johnson's algorithm: APSP for sparse graphs = Bellman-Ford
// reweighting + N Dijkstra runs.
//
// This is the natural library companion to Figure 14 of the paper
// (Dijkstra beats FW for sparse all-pairs work): Johnson's is exactly
// "run Dijkstra from every source", made correct for negative edges.
// Because it is built on the adjacency array + binary heap fast path,
// it inherits the Section 3.2 representation optimization end to end.
#pragma once

#include <vector>

#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/sssp/bellman_ford.hpp"
#include "cachegraph/sssp/dijkstra.hpp"

namespace cachegraph::apsp {

template <Weight W>
struct JohnsonResult {
  std::vector<W> dist;  ///< row-major n*n, inf for unreachable
  bool negative_cycle = false;
};

template <Weight W>
JohnsonResult<W> johnson(const graph::EdgeListGraph<W>& g) {
  const vertex_t n = g.num_vertices();
  JohnsonResult<W> out;

  // 1. Bellman-Ford from a virtual source connected to every vertex
  //    with weight 0. Equivalent formulation: potentials start at 0 for
  //    every vertex, which is what running BF over an (n+1)-vertex
  //    augmented graph computes.
  graph::EdgeListGraph<W> augmented(n + 1);
  augmented.reserve(static_cast<std::size_t>(g.num_edges()) + static_cast<std::size_t>(n));
  for (const auto& e : g.edges()) augmented.add_edge(e.from, e.to, e.weight);
  for (vertex_t v = 0; v < n; ++v) augmented.add_edge(n, v, W{0});

  const graph::AdjacencyArray<W> aug_rep(augmented);
  const auto bf = sssp::bellman_ford(aug_rep, n);
  if (bf.negative_cycle) {
    out.negative_cycle = true;
    return out;
  }
  const std::vector<W>& h = bf.dist;  // potentials (h[v] finite for all v)

  // 2. Reweight: w'(u,v) = w(u,v) + h(u) - h(v) >= 0.
  graph::EdgeListGraph<W> reweighted(n);
  reweighted.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const auto& e : g.edges()) {
    const W w = static_cast<W>(e.weight + h[static_cast<std::size_t>(e.from)] -
                               h[static_cast<std::size_t>(e.to)]);
    CG_DCHECK(w >= W{0});
    reweighted.add_edge(e.from, e.to, w);
  }
  const graph::AdjacencyArray<W> rep(reweighted);

  // 3. Dijkstra from every source; undo the reweighting.
  const auto un = static_cast<std::size_t>(n);
  out.dist.assign(un * un, inf<W>());
  for (vertex_t s = 0; s < n; ++s) {
    const auto r = sssp::dijkstra(rep, s);
    const auto us = static_cast<std::size_t>(s);
    for (std::size_t v = 0; v < un; ++v) {
      if (is_inf(r.dist[v])) continue;
      out.dist[us * un + v] = static_cast<W>(r.dist[v] - h[us] + h[v]);
    }
  }
  return out;
}

}  // namespace cachegraph::apsp
