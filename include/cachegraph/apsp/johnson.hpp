// Johnson's algorithm: APSP for sparse graphs = Bellman-Ford
// reweighting + N Dijkstra runs.
//
// This is the natural library companion to Figure 14 of the paper
// (Dijkstra beats FW for sparse all-pairs work): Johnson's is exactly
// "run Dijkstra from every source", made correct for negative edges.
// Because it is built on the adjacency array + binary heap fast path,
// it inherits the Section 3.2 representation optimization end to end.
//
// The N Dijkstras are independent, which makes Johnson's the canonical
// batch workload: the overloads taking a TaskPool (or thread count)
// fan the sources out through sssp::BatchEngine — one shared immutable
// adjacency array, per-worker scratch reused across sources — and
// produce a distance matrix bit-identical to the serial loop.
#pragma once

#include <vector>

#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/parallel/task_pool.hpp"
#include "cachegraph/sssp/batch_engine.hpp"
#include "cachegraph/sssp/bellman_ford.hpp"
#include "cachegraph/sssp/dijkstra.hpp"

namespace cachegraph::apsp {

template <Weight W>
struct JohnsonResult {
  std::vector<W> dist;  ///< row-major n*n, inf for unreachable
  bool negative_cycle = false;
};

namespace detail {

/// The Bellman-Ford stage shared by the serial and batched paths:
/// potentials from a virtual source, then w'(u,v) = w(u,v)+h(u)-h(v).
template <Weight W>
struct Reweighted {
  graph::EdgeListGraph<W> graph{0};  ///< non-negative reweighted edges
  std::vector<W> h;                  ///< potentials (finite for all v)
  bool negative_cycle = false;
};

template <Weight W>
Reweighted<W> johnson_reweight(const graph::EdgeListGraph<W>& g) {
  const vertex_t n = g.num_vertices();
  Reweighted<W> rw;

  // 1. Bellman-Ford from a virtual source connected to every vertex
  //    with weight 0. Equivalent formulation: potentials start at 0 for
  //    every vertex, which is what running BF over an (n+1)-vertex
  //    augmented graph computes.
  graph::EdgeListGraph<W> augmented(n + 1);
  augmented.reserve(static_cast<std::size_t>(g.num_edges()) + static_cast<std::size_t>(n));
  for (const auto& e : g.edges()) augmented.add_edge(e.from, e.to, e.weight);
  for (vertex_t v = 0; v < n; ++v) augmented.add_edge(n, v, W{0});

  const graph::AdjacencyArray<W> aug_rep(augmented);
  auto bf = sssp::bellman_ford(aug_rep, n);
  if (bf.negative_cycle) {
    rw.negative_cycle = true;
    return rw;
  }
  rw.h = std::move(bf.dist);

  // 2. Reweight: w'(u,v) = w(u,v) + h(u) - h(v) >= 0.
  rw.graph = graph::EdgeListGraph<W>(n);
  rw.graph.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const auto& e : g.edges()) {
    const W w = static_cast<W>(e.weight + rw.h[static_cast<std::size_t>(e.from)] -
                               rw.h[static_cast<std::size_t>(e.to)]);
    CG_DCHECK(w >= W{0});
    rw.graph.add_edge(e.from, e.to, w);
  }
  return rw;
}

}  // namespace detail

template <Weight W>
JohnsonResult<W> johnson(const graph::EdgeListGraph<W>& g) {
  const vertex_t n = g.num_vertices();
  JohnsonResult<W> out;

  const auto rw = detail::johnson_reweight(g);
  if (rw.negative_cycle) {
    out.negative_cycle = true;
    return out;
  }
  const std::vector<W>& h = rw.h;
  const graph::AdjacencyArray<W> rep(rw.graph);

  // Dijkstra from every source; undo the reweighting.
  const auto un = static_cast<std::size_t>(n);
  out.dist.assign(un * un, inf<W>());
  for (vertex_t s = 0; s < n; ++s) {
    const auto r = sssp::dijkstra(rep, s);
    const auto us = static_cast<std::size_t>(s);
    for (std::size_t v = 0; v < un; ++v) {
      if (is_inf(r.dist[v])) continue;
      out.dist[us * un + v] = static_cast<W>(r.dist[v] - h[us] + h[v]);
    }
  }
  return out;
}

/// Batched Johnson's: same reweighting, the N-Dijkstra fan-out runs as
/// TaskPool tasks through sssp::BatchEngine. Each completed source
/// writes its own row of the matrix (rows are disjoint, so no locking),
/// and only the vertices the query actually reached are visited.
/// The result is bit-identical to the serial overload.
template <Weight W>
JohnsonResult<W> johnson(const graph::EdgeListGraph<W>& g, parallel::TaskPool& pool) {
  const vertex_t n = g.num_vertices();
  JohnsonResult<W> out;

  const auto rw = detail::johnson_reweight(g);
  if (rw.negative_cycle) {
    out.negative_cycle = true;
    return out;
  }
  const std::vector<W>& h = rw.h;
  const graph::AdjacencyArray<W> rep(rw.graph);

  const auto un = static_cast<std::size_t>(n);
  out.dist.assign(un * un, inf<W>());
  std::vector<vertex_t> sources(un);
  for (vertex_t s = 0; s < n; ++s) sources[static_cast<std::size_t>(s)] = s;

  sssp::BatchEngine<W> engine(rep);
  using Scratch = typename sssp::BatchEngine<W>::Scratch;
  engine.run_batch(sources, pool, [&](std::size_t, vertex_t s, const Scratch& sc) {
    const auto us = static_cast<std::size_t>(s);
    W* row = out.dist.data() + us * un;
    for (const vertex_t v : sc.touched()) {
      const auto uv = static_cast<std::size_t>(v);
      row[uv] = static_cast<W>(sc.dist()[uv] - h[us] + h[uv]);
    }
  });
  return out;
}

/// Batched Johnson's over a freshly spun-up pool of `threads` slots.
template <Weight W>
JohnsonResult<W> johnson(const graph::EdgeListGraph<W>& g, int threads) {
  parallel::TaskPool pool(threads);
  return johnson(g, pool);
}

}  // namespace cachegraph::apsp
