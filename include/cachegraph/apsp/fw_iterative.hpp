// Baseline Floyd-Warshall (paper Fig. 1): the classic triple loop over
// a row-major matrix. This is exactly the implementation the paper's
// speedup figures normalize against.
#pragma once

#include <cstddef>
#include <vector>

#include "cachegraph/apsp/fwi_kernel.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/memsim/mem_policy.hpp"

namespace cachegraph::apsp {

/// In-place APSP on a row-major N×N distance matrix: d[i*n+j] holds the
/// edge weight (inf<W> for "no edge", 0 on the diagonal) and, on
/// return, the shortest-path weight.
template <KernelMode Mode = KernelMode::kChecked, Weight W,
          memsim::MemPolicy Mem = memsim::NullMem>
void fw_iterative(W* d, std::size_t n, Mem mem = Mem{}) {
  fwi_kernel<Mode>(d, n, d, n, d, n, n, mem);
}

/// Baseline FW that additionally produces the next-hop matrix:
/// next[i*n+j] is the vertex that follows i on a shortest i→j path
/// (kNoVertex if unreachable or i == j).
template <Weight W>
void fw_iterative_with_paths(W* d, vertex_t* next, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      next[i * n + j] =
          (i != j && !is_inf(d[i * n + j])) ? static_cast<vertex_t>(j) : kNoVertex;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const W d_ik = d[i * n + k];
      if (is_inf(d_ik)) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const W via = sat_add(d_ik, d[k * n + j]);
        if (via < d[i * n + j]) {
          d[i * n + j] = via;
          next[i * n + j] = next[i * n + k];
        }
      }
    }
  }
}

/// True iff the completed distance matrix certifies a negative cycle
/// (some d[i][i] < 0).
template <Weight W>
[[nodiscard]] bool has_negative_cycle(const W* d, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i * n + i] < W{0}) return true;
  }
  return false;
}

/// Walk the next-hop matrix from i to j. Returns the vertex sequence
/// including both endpoints, or an empty vector if j is unreachable.
inline std::vector<vertex_t> extract_path(const vertex_t* next, std::size_t n, vertex_t from,
                                          vertex_t to) {
  std::vector<vertex_t> path;
  if (from == to) return {from};
  if (next[static_cast<std::size_t>(from) * n + static_cast<std::size_t>(to)] == kNoVertex) {
    return path;
  }
  vertex_t u = from;
  path.push_back(u);
  while (u != to) {
    u = next[static_cast<std::size_t>(u) * n + static_cast<std::size_t>(to)];
    path.push_back(u);
  }
  return path;
}

}  // namespace cachegraph::apsp
