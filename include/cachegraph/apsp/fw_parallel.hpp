// Parallel tiled Floyd-Warshall (the paper's Conclusion / future-work
// item: "our recursive implementation can be used to decompose data and
// computation for a parallel version").
//
// Within one block-iteration b of the tiled algorithm the dependency
// structure is: diagonal tile → {block-row b, block-column b} → rest.
// Tiles inside each phase are independent, so phases 2 and 3
// parallelize directly with OpenMP. Because each task is one FWI over
// three B×B tiles, the per-core working set — and hence the per-core
// cache behaviour — is identical to the sequential tiled variant, which
// is exactly the paper's argument for why locality-optimized
// decompositions parallelize with minimal sharing.
//
// Compiles to the sequential tiled algorithm when OpenMP is absent.
#pragma once

#include "cachegraph/apsp/fwi_kernel.hpp"
#include "cachegraph/matrix/square_matrix.hpp"

#if defined(CACHEGRAPH_HAVE_OPENMP)
#include <omp.h>
#endif

namespace cachegraph::apsp {

template <KernelMode Mode = KernelMode::kChecked, Weight W, layout::MatrixLayout L>
void fw_parallel(matrix::SquareMatrix<W, L>& m, int num_threads = 0) {
  const std::size_t nb = m.layout().num_blocks();
  const std::size_t bsz = m.layout().block();
  const std::size_t ld = m.layout().tile_row_stride();
  memsim::NullMem mem;

#if defined(CACHEGRAPH_HAVE_OPENMP)
  if (num_threads > 0) omp_set_num_threads(num_threads);
#else
  (void)num_threads;
#endif

  for (std::size_t b = 0; b < nb; ++b) {
    fwi_kernel<Mode>(m.tile(b, b), ld, m.tile(b, b), ld, m.tile(b, b), ld, bsz, mem);

#if defined(CACHEGRAPH_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
    for (std::size_t t = 0; t < 2 * nb; ++t) {
      // First nb tasks: block-row b; last nb: block-column b.
      if (t < nb) {
        const std::size_t j = t;
        if (j == b) continue;
        fwi_kernel<Mode>(m.tile(b, j), ld, m.tile(b, b), ld, m.tile(b, j), ld, bsz, mem);
      } else {
        const std::size_t i = t - nb;
        if (i == b) continue;
        fwi_kernel<Mode>(m.tile(i, b), ld, m.tile(i, b), ld, m.tile(b, b), ld, bsz, mem);
      }
    }

#if defined(CACHEGRAPH_HAVE_OPENMP)
#pragma omp parallel for collapse(2) schedule(static)
#endif
    for (std::size_t i = 0; i < nb; ++i) {
      for (std::size_t j = 0; j < nb; ++j) {
        if (i == b || j == b) continue;
        fwi_kernel<Mode>(m.tile(i, j), ld, m.tile(i, b), ld, m.tile(b, j), ld, bsz, mem);
      }
    }
  }
}

}  // namespace cachegraph::apsp
