// Paper-style table printing for the bench harnesses.
//
// Every bench binary regenerates one exhibit (table or figure) of the
// paper: it prints the exhibit header, the paper's reported reference
// result for context, and then a column-aligned table (or CSV with
// --csv) of our measurements.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

namespace cachegraph::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  void print(std::ostream& os, bool csv = false) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double → string ("12.34").
[[nodiscard]] std::string fmt(double v, int precision = 2);

/// Engineering formatting of counters ("1.23e9" style for big values,
/// plain for small).
[[nodiscard]] std::string fmt_count(std::uint64_t v);

/// "3.42x" speedup string of base/optimized.
[[nodiscard]] std::string fmt_speedup(double base_seconds, double optimized_seconds);

/// Percentage string ("4.28%") of a ratio in [0,1].
[[nodiscard]] std::string fmt_pct(double ratio);

/// Prints the standard exhibit banner: id, title, and the paper's
/// reported reference values.
void print_exhibit_header(std::ostream& os, const std::string& exhibit,
                          const std::string& title, const std::string& paper_reference);

}  // namespace cachegraph::bench
