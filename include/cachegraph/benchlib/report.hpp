// Bench harness: one object that wires the observability layer through
// a bench binary.
//
// A Harness prints the usual exhibit banner, then brokers every
// measurement so each one is captured three ways at once:
//   - wall-clock (best/median/mean/stddev over reps, common/timer.hpp),
//   - hardware perf counters (obs::PerfCounters) around the rep loop,
//     degrading to "perf_available": false where the PMU is off-limits,
//   - instrumentation counters (obs::CounterRegistry), reset before and
//     snapshotted after each measured region.
// Simulation benches additionally hand their memsim::SimStats to sim()
// so predicted misses land in the same record as measured ones.
//
// On destruction the Harness writes the machine-readable JSON report
// (--json PATH — the BENCH_<exhibit>.json producer), the Chrome trace
// timeline (--trace PATH), and, with --stats, a mean ± stddev table
// next to the paper-style output.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cachegraph/benchlib/options.hpp"
#include "cachegraph/common/timer.hpp"
#include "cachegraph/memsim/config.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/obs/perf_counters.hpp"
#include "cachegraph/obs/trace.hpp"

namespace cachegraph::bench {

/// Ordered key/value workload parameters ({"n","2048"}, {"density","0.1"}…).
using Params = std::vector<std::pair<std::string, std::string>>;

/// "n=2048 density=0.1" — for table rows and span names.
[[nodiscard]] std::string params_label(const Params& params);

/// One measured (or simulated) data point of an exhibit.
struct BenchRecord {
  std::string variant;
  Params params;
  TimingResult timing;
  bool has_timing = false;
  obs::PerfReading perf;  ///< meaningful iff the harness has perf available
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  memsim::SimStats sim;
  bool has_sim = false;
};

class Harness {
 public:
  /// Prints the exhibit banner to `os` and, when --trace was given,
  /// installs a TraceSession so CG_TRACE_SPAN sites start recording.
  Harness(std::ostream& os, const Options& opt, std::string exhibit, std::string title,
          const std::string& paper_reference);
  /// Calls finish().
  ~Harness();

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  /// Times `fn()` best-of-`reps` with perf + instrumentation counters
  /// captured around the whole rep loop; records one data point.
  template <typename Fn>
  TimingResult time(const std::string& variant, Params params, int reps, Fn&& fn) {
    obs::TraceSpan span(span_name(variant, params));
    begin_measure();
    const TimingResult res = time_repeated(reps, static_cast<Fn&&>(fn));
    end_measure(variant, std::move(params), res);
    return res;
  }

  /// time() returning just the best wall-clock seconds.
  template <typename Fn>
  double time_s(const std::string& variant, Params params, int reps, Fn&& fn) {
    return time(variant, std::move(params), reps, static_cast<Fn&&>(fn)).best_s;
  }

  /// Records a simulated data point (memsim stats + any instrumentation
  /// counters accumulated since the previous measurement).
  void sim(const std::string& variant, Params params, const memsim::SimStats& stats);

  /// Records a timing-free data point: the params ARE the payload.
  /// For results a scene computed itself (percentiles from a traffic
  /// run, counts, derived ratios) that downstream JSON consumers
  /// should see as first-class records.
  void note(const std::string& variant, Params params);

  /// True iff hardware perf counters opened on this host.
  [[nodiscard]] bool perf_available() const noexcept;

  [[nodiscard]] const Options& options() const noexcept { return opt_; }
  [[nodiscard]] const std::vector<BenchRecord>& records() const noexcept { return records_; }

  /// Emits the --stats table and writes the --json / --trace files.
  /// Idempotent; called by the destructor.
  void finish();

 private:
  [[nodiscard]] static std::string span_name(const std::string& variant, const Params& params);
  void begin_measure();
  void end_measure(const std::string& variant, Params params, const TimingResult& res);
  bool write_json_report() const;
  void print_stats_table() const;

  std::ostream& os_;
  Options opt_;
  std::string exhibit_;
  std::string title_;
  std::unique_ptr<obs::PerfCounters> perf_;
  std::unique_ptr<obs::TraceSession> trace_;
  std::vector<BenchRecord> records_;
  bool finished_ = false;
};

}  // namespace cachegraph::bench
