// Shared workload runners for the bench harnesses: build the input,
// time or simulate one algorithm variant, return comparable numbers.
#pragma once

#include <vector>

#include "cachegraph/apsp/run.hpp"
#include "cachegraph/benchlib/options.hpp"
#include "cachegraph/benchlib/report.hpp"
#include "cachegraph/common/timer.hpp"
#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/graph/adjacency_list.hpp"
#include "cachegraph/graph/generators.hpp"
#include "cachegraph/layout/block_size.hpp"
#include "cachegraph/memsim/machine_configs.hpp"

namespace cachegraph::bench {

/// Reads one cache size in bytes from sysfs ("48K" / "2048K" / "8M").
/// Returns `fallback` when the file is absent (non-Linux, containers).
[[nodiscard]] std::size_t read_sysfs_cache_size(const char* path, std::size_t fallback);

/// The host L1 data cache, detected from sysfs where possible
/// (fallback 32 KB). Associativity is approximated as 8-way.
[[nodiscard]] memsim::CacheConfig host_l1();

/// The host L2 cache (fallback 1 MB), 16-way approximation.
[[nodiscard]] memsim::CacheConfig host_l2();

/// Heuristic block size for timing on this host. Following the paper's
/// Section 3.1.2.2 guidance ("with an on-chip level-2 cache often the
/// best block size is larger than the level-1"), the pick targets the
/// host L2 via Equation 13; bench_ablation_blocksize validates it
/// against a sweep.
[[nodiscard]] inline std::size_t host_block(std::size_t elem_bytes) {
  return layout::pick_block_size(host_l2(), elem_bytes, /*round_to_pow2=*/true);
}

/// Random dense weight matrix for the FW benches.
[[nodiscard]] inline std::vector<std::int32_t> fw_input(std::size_t n, std::uint64_t seed) {
  std::vector<std::int32_t> w(n * n, inf<std::int32_t>());
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    w[i * n + i] = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.chance(0.5)) {
        w[i * n + j] = static_cast<std::int32_t>(rng.uniform_int(1, 1000));
      }
    }
  }
  return w;
}

/// Best wall-clock seconds for one FW variant (input regenerated copy
/// per rep; the run includes layout conversion, as the paper's timed
/// optimized implementations do).
[[nodiscard]] inline double fw_time(apsp::FwVariant v, const std::vector<std::int32_t>& w,
                                    std::size_t n, std::size_t block, int reps) {
  const auto res = time_repeated(reps, [&] { (void)apsp::run_fw(v, w, n, block); });
  return res.best_s;
}

/// Simulated cache statistics for one FW variant.
[[nodiscard]] inline memsim::SimStats fw_sim(apsp::FwVariant v, const std::vector<std::int32_t>& w,
                                             std::size_t n, std::size_t block,
                                             const memsim::MachineConfig& machine) {
  memsim::CacheHierarchy h(machine);
  memsim::SimMem mem(h);
  (void)apsp::run_fw(v, w, n, block, mem);
  return h.stats();
}

/// Time `algo(rep)` over the representation, best of `reps`.
template <typename Rep, typename Algo>
[[nodiscard]] double time_on_rep(const Rep& rep, int reps, Algo&& algo) {
  const auto res = time_repeated(reps, [&] { algo(rep); });
  return res.best_s;
}

/// Simulate `algo(rep, mem)` on a fresh hierarchy; returns the stats.
template <typename Rep, typename Algo>
[[nodiscard]] memsim::SimStats sim_on_rep(const Rep& rep, const memsim::MachineConfig& machine,
                                          Algo&& algo) {
  memsim::CacheHierarchy h(machine);
  memsim::SimMem mem(h);
  algo(rep, mem);
  return h.stats();
}

// ---- Harness-aware variants: same measurements, but every data point
// also lands in the Harness's JSON report with perf counters and
// instrumentation counters attached.

/// fw_time through the harness; records {variant, n, B} + timing.
[[nodiscard]] inline double fw_time(Harness& h, const std::string& variant, apsp::FwVariant v,
                                    const std::vector<std::int32_t>& w, std::size_t n,
                                    std::size_t block, int reps) {
  return h.time_s(variant,
                  Params{{"n", std::to_string(n)}, {"B", std::to_string(block)}}, reps,
                  [&] { (void)apsp::run_fw(v, w, n, block); });
}

/// fw_sim through the harness; records {variant, n, B, machine} + SimStats.
[[nodiscard]] inline memsim::SimStats fw_sim(Harness& h, const std::string& variant,
                                             apsp::FwVariant v,
                                             const std::vector<std::int32_t>& w, std::size_t n,
                                             std::size_t block,
                                             const memsim::MachineConfig& machine) {
  obs::CounterRegistry::instance().reset();
  const memsim::SimStats s = fw_sim(v, w, n, block, machine);
  h.sim(variant,
        Params{{"n", std::to_string(n)}, {"B", std::to_string(block)}, {"machine", machine.name}},
        s);
  return s;
}

/// time_on_rep through the harness.
template <typename Rep, typename Algo>
[[nodiscard]] double time_on_rep(Harness& h, const std::string& variant, Params params,
                                 const Rep& rep, int reps, Algo&& algo) {
  return h.time_s(variant, std::move(params), reps, [&] { algo(rep); });
}

/// sim_on_rep through the harness.
template <typename Rep, typename Algo>
[[nodiscard]] memsim::SimStats sim_on_rep(Harness& h, const std::string& variant, Params params,
                                          const Rep& rep, const memsim::MachineConfig& machine,
                                          Algo&& algo) {
  obs::CounterRegistry::instance().reset();
  const memsim::SimStats s = sim_on_rep(rep, machine, algo);
  params.emplace_back("machine", machine.name);
  h.sim(variant, std::move(params), s);
  return s;
}

}  // namespace cachegraph::bench
