// Shared command-line options for the bench harnesses.
//
//   --full        paper-scale problem sizes (default: laptop-scale that
//                 finishes in seconds)
//   --reps=N      timing repetitions (min is reported)
//   --seed=N      workload seed
//   --csv         machine-readable output
//   --machine=M   cache preset for simulation benches
//                 (pentium3 | ultrasparc3 | alpha21264 | mips |
//                  simplescalar | modern)
#pragma once

#include <string>

#include "cachegraph/memsim/machine_configs.hpp"

namespace cachegraph::bench {

struct Options {
  bool full = false;
  bool csv = false;
  int reps = 3;
  std::uint64_t seed = 42;
  std::string machine = "simplescalar";

  [[nodiscard]] memsim::MachineConfig machine_config() const;
};

/// Parses argv; exits(2) with a usage message on unknown flags.
[[nodiscard]] Options parse_options(int argc, char** argv);

}  // namespace cachegraph::bench
