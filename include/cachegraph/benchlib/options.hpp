// Shared command-line options for the bench harnesses.
//
//   --full        paper-scale problem sizes (default: laptop-scale that
//                 finishes in seconds)
//   --reps=N      timing repetitions (min is reported)
//   --seed=N      workload seed
//   --threads=N   worker threads for the parallel FW benches
//                 (0 = sequential / all cores, bench-specific)
//   --csv         machine-readable output
//   --stats       add a mean ± stddev timing table (noise estimate)
//   --json PATH   write a machine-readable BENCH_<exhibit>.json record
//                 (wall-clock stats, perf counters, instrumentation
//                 counters, memsim stats) — the perf-trajectory producer
//   --tag LABEL   free-form label copied into the JSON record
//   --trace PATH  write a Chrome trace_event JSON timeline of the run
//                 (open in chrome://tracing or ui.perfetto.dev)
//   --metrics PATH
//                 write the MetricsRegistry Prometheus text exposition
//                 to PATH at exit (and fold the JSON metrics export
//                 into the --json report when both are given)
//   --machine=M   cache preset for simulation benches
//                 (pentium3 | ultrasparc3 | alpha21264 | mips |
//                  simplescalar | modern)
//
// --json/--tag/--trace/--metrics accept both "--flag value" and
// "--flag=value".
// Integer payloads are parsed strictly (see parse_integer): "--reps=abc"
// is a usage error, not a silent 1.
#pragma once

#include <charconv>
#include <string>
#include <string_view>
#include <system_error>

#include "cachegraph/memsim/machine_configs.hpp"

namespace cachegraph::bench {

/// Strict integer parse of the *entire* string: no leading junk, no
/// trailing junk, no partial prefix, overflow is failure. Returns false
/// without touching `out` on any failure — the caller decides whether
/// that is a usage error. (std::atoi, which this replaces, returned 0
/// for garbage and has undefined behavior on overflow.)
template <typename T>
[[nodiscard]] bool parse_integer(std::string_view text, T& out) {
  const char* const first = text.data();
  const char* const last = first + text.size();
  T value{};
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return false;
  out = value;
  return true;
}

struct Options {
  bool full = false;
  bool csv = false;
  bool stats = false;
  int reps = 3;
  int threads = 0;  ///< parallel-bench worker count (0 = bench default)
  std::uint64_t seed = 42;
  std::string machine = "simplescalar";
  std::string json;     ///< path for the JSON report ("" = none)
  std::string tag;      ///< free-form label for the JSON report
  std::string trace;    ///< path for the Chrome trace ("" = none)
  std::string metrics;  ///< path for the Prometheus export ("" = none)

  [[nodiscard]] memsim::MachineConfig machine_config() const;
};

/// Parses argv; exits(2) with a usage message on unknown flags.
[[nodiscard]] Options parse_options(int argc, char** argv);

}  // namespace cachegraph::bench
