// Shared command-line options for the bench harnesses.
//
//   --full        paper-scale problem sizes (default: laptop-scale that
//                 finishes in seconds)
//   --reps=N      timing repetitions (min is reported)
//   --seed=N      workload seed
//   --csv         machine-readable output
//   --stats       add a mean ± stddev timing table (noise estimate)
//   --json PATH   write a machine-readable BENCH_<exhibit>.json record
//                 (wall-clock stats, perf counters, instrumentation
//                 counters, memsim stats) — the perf-trajectory producer
//   --tag LABEL   free-form label copied into the JSON record
//   --trace PATH  write a Chrome trace_event JSON timeline of the run
//                 (open in chrome://tracing or ui.perfetto.dev)
//   --machine=M   cache preset for simulation benches
//                 (pentium3 | ultrasparc3 | alpha21264 | mips |
//                  simplescalar | modern)
//
// --json/--tag/--trace accept both "--flag value" and "--flag=value".
#pragma once

#include <string>

#include "cachegraph/memsim/machine_configs.hpp"

namespace cachegraph::bench {

struct Options {
  bool full = false;
  bool csv = false;
  bool stats = false;
  int reps = 3;
  std::uint64_t seed = 42;
  std::string machine = "simplescalar";
  std::string json;   ///< path for the JSON report ("" = none)
  std::string tag;    ///< free-form label for the JSON report
  std::string trace;  ///< path for the Chrome trace ("" = none)

  [[nodiscard]] memsim::MachineConfig machine_config() const;
};

/// Parses argv; exits(2) with a usage message on unknown flags.
[[nodiscard]] Options parse_options(int argc, char** argv);

}  // namespace cachegraph::bench
