// Batched multi-source SSSP engine on the work-stealing TaskPool.
//
// The paper's Section 3.2 result makes adjacency array + indexed heap
// the right SSSP engine for sparse graphs; a batch service built on it
// has two further cache obligations the serial `apsp::johnson` loop
// ignores: (1) the graph is immutable and shared — build the adjacency
// array once, let every query stream it; (2) the per-query working set
// (heap storage, dist/parent/done buffers) should be *reused*, not
// reallocated per source, so it stays resident in whichever worker's
// cache ran the previous query ("Making Caches Work for Graph
// Analytics" makes the same point for per-query state).
//
// Mechanics:
//   - one `Scratch` per concurrently-running query, leased from a
//     parallel::LeasePool (at most `pool.num_threads()` are ever
//     live, so the engine allocates that many and then never again);
//   - queries run Dijkstra with *lazy insertion* into the indexed
//     heap: only the source starts in the heap, a vertex is
//     inserted on first improvement and decrease-keyed afterwards.
//     Every inserted vertex is eventually extracted, so the heap
//     drains itself back to empty — its storage (reserved to capacity
//     up front) is reused with zero steady-state allocation;
//   - `Scratch::reset()` undoes only the entries the previous query
//     touched (O(touched), not O(N)) via an explicit touched list —
//     on a sparse graph with unreachable regions a query pays only
//     for the region it explored;
//   - distances are bit-identical to `sssp::dijkstra` (the computed
//     dist fixpoint is unique, independent of exploration order; the
//     parent *pointers* may differ on ties but the parent-tree
//     distances are equal).
//
// The engine is templated on the heap like `sssp::dijkstra`, so the
// Section 2 priority-queue ablation can be rerun under batch scratch
// reuse (bench_ablation_heaps' batched table); the default is the
// paper's indexed binary heap.
//
// Observability: `sssp.batch.*` instrumentation counters (runs,
// queries, settled, relaxations, scratch_allocs, scratch_reuses), a
// per-batch `CG_TRACE_SPAN("sssp.batch.run")`, and a pool counter
// flush after every batch so `parallel.*` tallies land in the same
// registry snapshot.
//
// Threading contract: the graph must outlive the engine and stay
// unmodified during batches. `run_batch` may be called repeatedly
// (that is the point); call it from one thread at a time per engine.
// The sink runs on worker threads, once per source, with distinct
// sources running concurrently — writes to per-source output slots
// need no locking, anything shared needs atomics.
//
// Requires non-negative edge weights (Johnson's reweighting supplies
// them when the underlying graph has negative edges).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/obs/telemetry.hpp"
#include "cachegraph/obs/trace.hpp"
#include "cachegraph/parallel/lease_pool.hpp"
#include "cachegraph/parallel/task_pool.hpp"
#include "cachegraph/pq/binary_heap.hpp"
#include "cachegraph/pq/concepts.hpp"

namespace cachegraph::sssp {

template <Weight W, template <class, class> class HeapT = pq::BinaryHeap,
          graph::GraphRep G = graph::AdjacencyArray<W>>
class BatchEngine {
 public:
  using Heap = HeapT<W, memsim::NullMem>;
  static_assert(pq::IndexedHeap<Heap>);
  static_assert(std::is_same_v<typename G::weight_type, W>,
                "BatchEngine weight must match the graph's weight type");

  /// Per-query reusable state: dist/parent/done buffers, the indexed
  /// heap, and the touched list that makes reset O(touched).
  class Scratch {
   public:
    explicit Scratch(vertex_t n)
        : dist_(static_cast<std::size_t>(n), inf<W>()),
          parent_(static_cast<std::size_t>(n), kNoVertex),
          done_(static_cast<std::size_t>(n), 0),
          heap_(n) {
      touched_.reserve(static_cast<std::size_t>(n));
    }

    /// dist[v] = shortest distance from this query's source.
    [[nodiscard]] const std::vector<W>& dist() const noexcept { return dist_; }
    /// parent[v] on a shortest-path tree (kNoVertex for source/unreached).
    [[nodiscard]] const std::vector<vertex_t>& parent() const noexcept { return parent_; }
    /// Every vertex this query reached (the source included) — lets a
    /// sink read sparse results without scanning all N entries.
    [[nodiscard]] std::span<const vertex_t> touched() const noexcept { return touched_; }
    /// Vertices settled (extracted with a final distance) this query.
    [[nodiscard]] std::uint64_t settled() const noexcept { return settled_; }
    /// Successful relaxations (insert + decrease-key) this query.
    [[nodiscard]] std::uint64_t relaxations() const noexcept { return relaxations_; }

   private:
    friend class BatchEngine;

    /// Undo the previous query's marks — O(touched), not O(N).
    void reset() noexcept {
      for (const vertex_t v : touched_) {
        const auto u = static_cast<std::size_t>(v);
        dist_[u] = inf<W>();
        parent_[u] = kNoVertex;
        done_[u] = 0;
      }
      touched_.clear();
      settled_ = 0;
      relaxations_ = 0;
    }

    std::vector<W> dist_;
    std::vector<vertex_t> parent_;
    std::vector<char> done_;
    std::vector<vertex_t> touched_;
    Heap heap_;
    std::uint64_t settled_ = 0;
    std::uint64_t relaxations_ = 0;
  };

  /// Engine-lifetime tallies (atomic; readable any time).
  struct Stats {
    std::uint64_t queries = 0;         ///< sources processed
    std::uint64_t scratch_allocs = 0;  ///< Scratch objects ever built
    std::uint64_t scratch_reuses = 0;  ///< leases served from the free list
  };

  explicit BatchEngine(const G& g) : g_(g), n_(g.num_vertices()) {}

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  [[nodiscard]] Stats stats() const noexcept {
    const auto lp = scratch_pool_.stats();
    return Stats{queries_.load(std::memory_order_relaxed), lp.allocs, lp.reuses};
  }

  /// Runs one Dijkstra per source as TaskPool tasks and calls
  /// `sink(index, source, scratch)` from the worker that finished it.
  /// The scratch reference is only valid inside the sink call.
  template <typename Sink>
  void run_batch(std::span<const vertex_t> sources, parallel::TaskPool& pool, Sink&& sink) {
    CG_TRACE_SPAN("sssp.batch.run");
    for (const vertex_t s : sources) {
      CG_CHECK(s >= 0 && s < n_, "batch source out of range");
    }
    {
      parallel::TaskGroup group(pool);
      for (std::size_t i = 0; i < sources.size(); ++i) {
        const vertex_t s = sources[i];
        group.run([this, i, s, &sink] {
          const auto lease =
              scratch_pool_.acquire([this] { return std::make_unique<Scratch>(n_); });
          if (lease.reused()) {
            CG_COUNTER_INC("sssp.batch.scratch_reuses");
          } else {
            CG_COUNTER_INC("sssp.batch.scratch_allocs");
          }
          Scratch& sc = lease.get();
          [[maybe_unused]] std::chrono::steady_clock::time_point t0{};
          if constexpr (obs::kTelemetryEnabled) t0 = std::chrono::steady_clock::now();
          run_query(sc, s);
          if constexpr (obs::kTelemetryEnabled) {
            // One record per source: the compute time IS the total here
            // (batch sources have no admission or queue-wait split of
            // their own — the TaskPool span covers scheduling).
            const auto dt = std::chrono::steady_clock::now() - t0;
            const auto raw = std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count();
            obs::RequestRecord rec;
            rec.kind = obs::kKindBatchSource;
            rec.source = static_cast<std::int32_t>(s);
            rec.compute_ns = raw > 0 ? static_cast<std::uint64_t>(raw) : 0;
            rec.total_ns = rec.compute_ns;
            rec.settled = sc.settled();
            rec.relaxations = sc.relaxations();
            obs::note_request(rec);
          }
          sink(i, s, static_cast<const Scratch&>(sc));
        });
      }
      group.wait();
    }
    queries_.fetch_add(sources.size(), std::memory_order_relaxed);
    CG_COUNTER_INC("sssp.batch.runs");
    CG_COUNTER_ADD("sssp.batch.queries", sources.size());
    pool.flush_counters();
  }

  /// One materialized result per source (allocates the output; the
  /// sink form above is the zero-copy path).
  struct QueryResult {
    std::vector<W> dist;
    std::vector<vertex_t> parent;
  };

  [[nodiscard]] std::vector<QueryResult> run_batch(std::span<const vertex_t> sources,
                                                   parallel::TaskPool& pool) {
    std::vector<QueryResult> out(sources.size());
    run_batch(sources, pool, [&out](std::size_t i, vertex_t, const Scratch& sc) {
      out[i].dist = sc.dist();
      out[i].parent = sc.parent();
    });
    return out;
  }

  /// Convenience: run over a freshly spun-up pool of `threads` slots
  /// (<= 0 uses the hardware concurrency). Long-lived callers should
  /// keep their own pool and use the overloads above.
  [[nodiscard]] std::vector<QueryResult> run_batch(std::span<const vertex_t> sources,
                                                   int threads) {
    parallel::TaskPool pool(threads);
    return run_batch(sources, pool);
  }

 private:
  /// One Dijkstra with lazy heap insertion. The heap starts and ends
  /// empty; dist/parent/done are clean (reset() undid the previous
  /// query) except where this query writes and records in touched_.
  void run_query(Scratch& sc, vertex_t source) const {
    sc.reset();
    CG_DCHECK(sc.heap_.empty());
    const auto us = static_cast<std::size_t>(source);
    sc.dist_[us] = W{0};
    sc.touched_.push_back(source);
    sc.heap_.insert(source, W{0});

    memsim::NullMem mem;
    while (!sc.heap_.empty()) {
      const auto top = sc.heap_.extract_min();
      const vertex_t u = top.vertex;
      sc.done_[static_cast<std::size_t>(u)] = 1;
      ++sc.settled_;
      const W du = top.key;
      g_.for_neighbors(u, mem, [&](const graph::Neighbor<W>& nb) {
        const auto tv = static_cast<std::size_t>(nb.to);
        const W nd = sat_add(du, nb.weight);
        if (nd >= sc.dist_[tv]) return;
        // A settled vertex cannot improve under non-negative weights.
        CG_DCHECK(!sc.done_[tv], "negative edge weight in BatchEngine");
        if (sc.done_[tv]) return;
        if (is_inf(sc.dist_[tv])) {
          sc.touched_.push_back(nb.to);
          sc.heap_.insert(nb.to, nd);
        } else {
          sc.heap_.decrease_key(nb.to, nd);
        }
        sc.dist_[tv] = nd;
        sc.parent_[tv] = u;
        ++sc.relaxations_;
      });
    }
    CG_COUNTER_ADD("sssp.batch.settled", sc.settled_);
    CG_COUNTER_ADD("sssp.batch.relaxations", sc.relaxations_);
  }

  const G& g_;
  vertex_t n_;
  parallel::LeasePool<Scratch> scratch_pool_;
  std::atomic<std::uint64_t> queries_{0};
};

}  // namespace cachegraph::sssp
