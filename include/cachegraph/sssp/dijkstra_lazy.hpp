// Dijkstra with lazy deletion — the standard workaround when the
// priority queue does not support the Update operation.
//
// Section 2 of the paper notes that the fast cached-memory heaps in the
// literature (e.g. Sanders' sequential heap) "do not support the Update
// operation"; the usual engineering answer is to insert a fresh entry
// on every relaxation and discard stale entries at extraction. That
// trades O(E) queue entries (instead of O(N)) for freedom from
// decrease-key — this implementation exists so the trade can be
// measured against the indexed-heap variant on equal terms.
#pragma once

#include <queue>
#include <vector>

#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::sssp {

template <Weight W>
struct LazySsspResult {
  std::vector<W> dist;
  std::vector<vertex_t> parent;
  std::uint64_t pops = 0;        ///< total extractions (incl. stale)
  std::uint64_t stale_pops = 0;  ///< discarded stale entries
};

/// Requires non-negative edge weights.
template <graph::GraphRep G>
LazySsspResult<typename G::weight_type> dijkstra_lazy(const G& g, vertex_t source) {
  using W = typename G::weight_type;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  CG_CHECK(source >= 0 && static_cast<std::size_t>(source) < n, "source out of range");

  LazySsspResult<W> r;
  r.dist.assign(n, inf<W>());
  r.parent.assign(n, kNoVertex);
  r.dist[static_cast<std::size_t>(source)] = W{0};

  struct Entry {
    W key;
    vertex_t vertex;
    bool operator>(const Entry& o) const noexcept { return key > o.key; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> q;
  q.push(Entry{W{0}, source});
  std::vector<char> done(n, 0);
  memsim::NullMem mem;

  while (!q.empty()) {
    const Entry top = q.top();
    q.pop();
    ++r.pops;
    CG_COUNTER_INC("dijkstra.lazy.pops");
    const auto u = static_cast<std::size_t>(top.vertex);
    if (done[u]) {
      ++r.stale_pops;  // superseded by an earlier, shorter entry
      CG_COUNTER_INC("dijkstra.lazy.stale_pops");
      continue;
    }
    done[u] = 1;
    g.for_neighbors(top.vertex, mem, [&](const graph::Neighbor<W>& nb) {
      const auto tv = static_cast<std::size_t>(nb.to);
      const W nd = sat_add(top.key, nb.weight);
      if (nd < r.dist[tv]) {
        r.dist[tv] = nd;
        r.parent[tv] = top.vertex;
        q.push(Entry{nd, nb.to});  // fresh entry instead of decrease-key
      }
    });
  }
  return r;
}

}  // namespace cachegraph::sssp
