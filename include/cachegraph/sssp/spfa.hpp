// SPFA — Bellman-Ford with an explicit work queue (Shortest Path
// Faster Algorithm). Same O(N*E) worst case and negative-edge support
// as the round-based sssp::bellman_ford, but the per-round O(N) scan
// for active vertices is replaced by a FIFO of exactly the vertices
// whose distance changed: a pass that improves nothing costs nothing,
// so the algorithm stops the moment distances stop changing.
//
// That matters for Johnson's reweighting stage, where the virtual
// source makes *every* vertex active in round one and the frontier
// then collapses: the queue tracks the shrinking frontier for free,
// while the round-based variant keeps paying the O(N) scan. On graphs
// whose negative edges are few, the queue drains in a handful of
// passes — this was the serial scalability bottleneck of the batched
// Johnson path (ROADMAP).
//
// Allocation discipline: all working state (the FIFO ring, the
// in-queue flags, the per-vertex dequeue counts) lives in an
// SpfaScratch the caller can hoist across runs — Johnson reweighting
// over repeated batches re-seeds the same arrays instead of
// reallocating three O(n) buffers per call. The in-queue invariant
// (a vertex is queued at most once) caps occupancy at n, so the FIFO
// is a fixed ring, not a deque — no per-node allocation, no chunk
// pointer chasing.
//
// Negative-cycle bound (the `dequeue_limit` proof). Partition the run
// into FIFO passes: pass 0 is the initial queue; pass k+1 is what was
// enqueued while draining pass k. By induction, after pass k drains,
// dist[v] is at most the best seed-to-v walk using <= k+1 edges. A
// vertex is dequeued at most once per pass (it is queued at most
// once). Without a reachable negative cycle every shortest walk is a
// simple path (<= n-1 edges), so pass n-1 drains with no improvement
// and pass n is empty:
//
//   spfa(source):  the source is dequeued once (its dist can only
//     improve via a negative cycle through it); any other vertex
//     first appears in pass 1 and can be dequeued in passes 1..n-1 —
//     at most n-1 dequeues (max(n-1, 1) to cover n == 1).
//   spfa_potentials: models the (n+1)-vertex virtual-source graph —
//     every vertex is seeded in pass 0 and can be dequeued in passes
//     0..n-1 — at most n dequeues. A plain negative chain really does
//     reach n dequeues legitimately (sssp_batch_test pins it), so the
//     single-source bound would false-positive here: the two
//     formulations need different limits.
//
// Exceeding the limit therefore certifies a reachable negative cycle,
// exactly one pass earlier than the old uniform `> n` check allowed
// for the single-source form.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::sssp {

template <Weight W>
struct SpfaResult {
  std::vector<W> dist;
  std::vector<vertex_t> parent;
  bool negative_cycle = false;
  std::uint64_t relaxations = 0;  ///< edge relaxations attempted
};

/// Caller-hoistable working state: a fixed-capacity FIFO ring (the
/// in-queue invariant bounds occupancy at n), the in-queue flags, and
/// the per-vertex dequeue counts. prepare() re-seeds in place; growth
/// only happens when a larger graph arrives, so repeated runs at one
/// size are allocation-free (stats() is the regression hook).
class SpfaScratch {
 public:
  struct Stats {
    std::uint64_t prepares = 0;  ///< runs seeded through this scratch
    std::uint64_t grows = 0;     ///< prepares that had to (re)allocate
    std::uint64_t reuses = 0;    ///< prepares served entirely in place
  };

  void prepare(std::size_t n) {
    ++stats_.prepares;
    if (ring_.size() < n) {
      ring_.resize(n);
      in_queue_.resize(n);
      dequeues_.resize(n);
      ++stats_.grows;
      CG_COUNTER_INC("sssp.spfa.scratch_grows");
    } else {
      ++stats_.reuses;
      CG_COUNTER_INC("sssp.spfa.scratch_reuses");
    }
    std::fill(in_queue_.begin(), in_queue_.begin() + static_cast<std::ptrdiff_t>(n), char{0});
    std::fill(dequeues_.begin(), dequeues_.begin() + static_cast<std::ptrdiff_t>(n), 0u);
    cap_ = n;
    head_ = 0;
    count_ = 0;
  }

  [[nodiscard]] Stats stats() const noexcept { return stats_; }

  [[nodiscard]] bool queue_empty() const noexcept { return count_ == 0; }

  /// Enqueue v if it is not already queued.
  void enqueue(vertex_t v) noexcept {
    const auto uv = static_cast<std::size_t>(v);
    if (in_queue_[uv] != 0) return;
    in_queue_[uv] = 1;
    std::size_t tail = head_ + count_;
    if (tail >= cap_) tail -= cap_;
    ring_[tail] = v;
    ++count_;
  }

  [[nodiscard]] vertex_t dequeue() noexcept {
    const vertex_t v = ring_[head_];
    ++head_;
    if (head_ >= cap_) head_ = 0;
    --count_;
    in_queue_[static_cast<std::size_t>(v)] = 0;
    return v;
  }

  /// Post-increment dequeue count for v.
  [[nodiscard]] std::uint32_t count_dequeue(vertex_t v) noexcept {
    return ++dequeues_[static_cast<std::size_t>(v)];
  }

 private:
  std::vector<vertex_t> ring_;
  std::vector<char> in_queue_;
  std::vector<std::uint32_t> dequeues_;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  Stats stats_;
};

namespace detail {

/// The shared SPFA core: runs from whatever dist/queue state the
/// caller seeded (one source, or everything at once for potentials).
/// `dequeue_limit` is the formulation-specific maximum legitimate
/// dequeues per vertex (see the header proof); exceeding it reports a
/// negative cycle.
template <graph::GraphRep G>
void spfa_run(const G& g, SpfaResult<typename G::weight_type>& r, SpfaScratch& scratch,
              std::uint32_t dequeue_limit) {
  using W = typename G::weight_type;
  memsim::NullMem mem;

  while (!scratch.queue_empty()) {
    const vertex_t u = scratch.dequeue();
    if (scratch.count_dequeue(u) > dequeue_limit) {
      r.negative_cycle = true;  // relaxed more often than any simple path allows
      CG_COUNTER_INC("sssp.spfa.negative_cycles");
      return;
    }
    const W du = r.dist[static_cast<std::size_t>(u)];
    g.for_neighbors(u, mem, [&](const graph::Neighbor<W>& nb) {
      const auto tv = static_cast<std::size_t>(nb.to);
      const W nd = sat_add(du, nb.weight);
      ++r.relaxations;
      if (nd < r.dist[tv]) {
        r.dist[tv] = nd;
        r.parent[tv] = u;
        scratch.enqueue(nb.to);
      }
    });
  }
  CG_COUNTER_ADD("sssp.spfa.relaxations", r.relaxations);
}

}  // namespace detail

/// Single-source shortest paths with negative edges allowed; sets
/// `negative_cycle` (dist values are then meaningless) when one is
/// reachable from the source. The scratch overload reuses the
/// caller's buffers (zero allocation once warm).
template <graph::GraphRep G>
SpfaResult<typename G::weight_type> spfa(const G& g, vertex_t source, SpfaScratch& scratch) {
  using W = typename G::weight_type;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  CG_CHECK(source >= 0 && static_cast<std::size_t>(source) < n, "source out of range");

  SpfaResult<W> r;
  r.dist.assign(n, inf<W>());
  r.parent.assign(n, kNoVertex);
  r.dist[static_cast<std::size_t>(source)] = W{0};

  scratch.prepare(n);
  scratch.enqueue(source);
  // Single-source bound: max(n-1, 1) legitimate dequeues per vertex.
  const auto limit = static_cast<std::uint32_t>(n > 2 ? n - 1 : 1);
  detail::spfa_run(g, r, scratch, limit);
  return r;
}

template <graph::GraphRep G>
SpfaResult<typename G::weight_type> spfa(const G& g, vertex_t source) {
  SpfaScratch scratch;
  return spfa(g, source, scratch);
}

/// Johnson potentials: shortest distances from a virtual source with a
/// zero-weight edge to every vertex — equivalently, every dist starts
/// at 0 and every vertex starts queued. No augmented (n+1)-vertex graph
/// is built, unlike the formulation the round-based BF stage used.
/// Every potential is finite; `negative_cycle` means any cycle in g.
template <graph::GraphRep G>
SpfaResult<typename G::weight_type> spfa_potentials(const G& g, SpfaScratch& scratch) {
  using W = typename G::weight_type;
  const auto n = static_cast<std::size_t>(g.num_vertices());

  SpfaResult<W> r;
  r.dist.assign(n, W{0});
  r.parent.assign(n, kNoVertex);

  scratch.prepare(n);
  for (std::size_t v = 0; v < n; ++v) scratch.enqueue(static_cast<vertex_t>(v));
  // Virtual-source ((n+1)-vertex) bound: n legitimate dequeues per
  // vertex — a plain negative chain reaches it, so no tighter limit
  // is sound here.
  detail::spfa_run(g, r, scratch, static_cast<std::uint32_t>(n));
  return r;
}

template <graph::GraphRep G>
SpfaResult<typename G::weight_type> spfa_potentials(const G& g) {
  SpfaScratch scratch;
  return spfa_potentials(g, scratch);
}

}  // namespace cachegraph::sssp
