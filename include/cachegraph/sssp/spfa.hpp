// SPFA — Bellman-Ford with an explicit work queue (Shortest Path
// Faster Algorithm). Same O(N*E) worst case and negative-edge support
// as the round-based sssp::bellman_ford, but the per-round O(N) scan
// for active vertices is replaced by a FIFO of exactly the vertices
// whose distance changed: a pass that improves nothing costs nothing,
// so the algorithm stops the moment distances stop changing.
//
// That matters for Johnson's reweighting stage, where the virtual
// source makes *every* vertex active in round one and the frontier
// then collapses: the queue tracks the shrinking frontier for free,
// while the round-based variant keeps paying the O(N) scan. On graphs
// whose negative edges are few, the queue drains in a handful of
// passes — this was the serial scalability bottleneck of the batched
// Johnson path (ROADMAP).
//
// Negative cycles: a shortest path visits each vertex at most once,
// so a vertex dequeued more than N times can only mean a reachable
// negative cycle; the search stops and reports it.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::sssp {

template <Weight W>
struct SpfaResult {
  std::vector<W> dist;
  std::vector<vertex_t> parent;
  bool negative_cycle = false;
  std::uint64_t relaxations = 0;  ///< edge relaxations attempted
};

namespace detail {

/// The shared SPFA core: runs from whatever dist/queue state the
/// caller seeded (one source, or everything at once for potentials).
template <graph::GraphRep G>
void spfa_run(const G& g, SpfaResult<typename G::weight_type>& r,
              std::deque<vertex_t>& queue, std::vector<char>& in_queue) {
  using W = typename G::weight_type;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<std::uint32_t> dequeues(n, 0);
  memsim::NullMem mem;

  while (!queue.empty()) {
    const vertex_t u = queue.front();
    queue.pop_front();
    const auto uu = static_cast<std::size_t>(u);
    in_queue[uu] = 0;
    if (++dequeues[uu] > n) {
      r.negative_cycle = true;  // relaxed more often than any simple path allows
      CG_COUNTER_INC("sssp.spfa.negative_cycles");
      return;
    }
    const W du = r.dist[uu];
    g.for_neighbors(u, mem, [&](const graph::Neighbor<W>& nb) {
      const auto tv = static_cast<std::size_t>(nb.to);
      const W nd = sat_add(du, nb.weight);
      ++r.relaxations;
      if (nd < r.dist[tv]) {
        r.dist[tv] = nd;
        r.parent[tv] = u;
        if (!in_queue[tv]) {
          in_queue[tv] = 1;
          queue.push_back(nb.to);
        }
      }
    });
  }
  CG_COUNTER_ADD("sssp.spfa.relaxations", r.relaxations);
}

}  // namespace detail

/// Single-source shortest paths with negative edges allowed; sets
/// `negative_cycle` (dist values are then meaningless) when one is
/// reachable from the source.
template <graph::GraphRep G>
SpfaResult<typename G::weight_type> spfa(const G& g, vertex_t source) {
  using W = typename G::weight_type;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  CG_CHECK(source >= 0 && static_cast<std::size_t>(source) < n, "source out of range");

  SpfaResult<W> r;
  r.dist.assign(n, inf<W>());
  r.parent.assign(n, kNoVertex);
  r.dist[static_cast<std::size_t>(source)] = W{0};

  std::deque<vertex_t> queue{source};
  std::vector<char> in_queue(n, 0);
  in_queue[static_cast<std::size_t>(source)] = 1;
  detail::spfa_run(g, r, queue, in_queue);
  return r;
}

/// Johnson potentials: shortest distances from a virtual source with a
/// zero-weight edge to every vertex — equivalently, every dist starts
/// at 0 and every vertex starts queued. No augmented (n+1)-vertex graph
/// is built, unlike the formulation the round-based BF stage used.
/// Every potential is finite; `negative_cycle` means any cycle in g.
template <graph::GraphRep G>
SpfaResult<typename G::weight_type> spfa_potentials(const G& g) {
  using W = typename G::weight_type;
  const auto n = static_cast<std::size_t>(g.num_vertices());

  SpfaResult<W> r;
  r.dist.assign(n, W{0});
  r.parent.assign(n, kNoVertex);

  std::deque<vertex_t> queue;
  for (std::size_t v = 0; v < n; ++v) queue.push_back(static_cast<vertex_t>(v));
  std::vector<char> in_queue(n, 1);
  detail::spfa_run(g, r, queue, in_queue);
  return r;
}

}  // namespace cachegraph::sssp
