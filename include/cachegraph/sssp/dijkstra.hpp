// Dijkstra's algorithm (paper Fig. 7), templated on the graph
// representation, the priority queue, and the memory model.
//
// The paper's Section 3.2 point is that the *representation* dominates:
// the graph structure is the largest data touched (O(N+E), each element
// exactly once), so swapping the pointer-chasing adjacency list for the
// streaming adjacency array is worth up to 2x wall-clock — reproduced
// by bench_fig12/13 and simulated by bench_table6.
#pragma once

#include <vector>

#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/pq/binary_heap.hpp"
#include "cachegraph/pq/concepts.hpp"

namespace cachegraph::sssp {

template <Weight W>
struct SsspResult {
  std::vector<W> dist;          ///< dist[v] = shortest distance from source
  std::vector<vertex_t> parent; ///< parent[v] on a shortest path tree
  std::uint64_t extract_mins = 0;
  std::uint64_t updates = 0;    ///< successful decrease-key operations
};

/// Dijkstra over any GraphRep with any IndexedHeap.
/// `HeapT<W, Mem>` defaults to the indexed binary heap. All N vertices
/// are inserted up front (Fig. 7 line 2: Q = V[G]); edge relaxations
/// use the Update operation.
///
/// Requires non-negative edge weights.
template <template <class, class> class HeapT = pq::BinaryHeap, graph::GraphRep G,
          memsim::MemPolicy Mem = memsim::NullMem>
SsspResult<typename G::weight_type> dijkstra(const G& g, vertex_t source, Mem mem = Mem{}) {
  using W = typename G::weight_type;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  CG_CHECK(source >= 0 && static_cast<std::size_t>(source) < n, "source out of range");

  SsspResult<W> r;
  r.dist.assign(n, inf<W>());
  r.parent.assign(n, kNoVertex);
  if constexpr (Mem::tracing) {
    g.map_buffers(mem);
    mem.map_buffer(r.dist.data(), n * sizeof(W));
    mem.map_buffer(r.parent.data(), n * sizeof(vertex_t));
  }

  using Heap = HeapT<W, Mem>;
  static_assert(pq::IndexedHeap<Heap>);
  Heap q(static_cast<vertex_t>(n), mem);
  r.dist[static_cast<std::size_t>(source)] = W{0};
  for (std::size_t v = 0; v < n; ++v) {
    q.insert(static_cast<vertex_t>(v), r.dist[v]);
  }

  while (!q.empty()) {
    const auto top = q.extract_min();
    if (is_inf(top.key)) break;  // everything left is unreachable
    ++r.extract_mins;
    CG_COUNTER_INC("dijkstra.settled");
    const vertex_t u = top.vertex;
    const W du = top.key;
    g.for_neighbors(u, mem, [&](const graph::Neighbor<W>& nb) {
      const auto tv = static_cast<std::size_t>(nb.to);
      const W nd = sat_add(du, nb.weight);
      mem.read(&r.dist[tv]);
      if (nd < r.dist[tv]) {
        r.dist[tv] = nd;
        mem.write(&r.dist[tv]);
        r.parent[tv] = u;
        mem.write(&r.parent[tv]);
        q.decrease_key(nb.to, nd);
        ++r.updates;
        CG_COUNTER_INC("dijkstra.relaxations");
      }
    });
  }
  return r;
}

}  // namespace cachegraph::sssp
