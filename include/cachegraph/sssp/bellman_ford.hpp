// Bellman-Ford — the Conclusion's first extension target: "visits every
// neighbor of a node once the node is labeled", so the adjacency-array
// layout matches its access pattern exactly as it does Dijkstra's.
//
// Round-based variant with an active-vertex frontier (SPFA-style early
// termination, still O(N*E) worst case) that supports negative edge
// weights and reports negative cycles.
#pragma once

#include <vector>

#include "cachegraph/graph/concepts.hpp"

namespace cachegraph::sssp {

template <Weight W>
struct BellmanFordResult {
  std::vector<W> dist;
  std::vector<vertex_t> parent;
  bool negative_cycle = false;
  std::uint64_t relaxations = 0;
};

template <graph::GraphRep G, memsim::MemPolicy Mem = memsim::NullMem>
BellmanFordResult<typename G::weight_type> bellman_ford(const G& g, vertex_t source,
                                                        Mem mem = Mem{}) {
  using W = typename G::weight_type;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  CG_CHECK(source >= 0 && static_cast<std::size_t>(source) < n, "source out of range");

  BellmanFordResult<W> r;
  r.dist.assign(n, inf<W>());
  r.parent.assign(n, kNoVertex);
  if constexpr (Mem::tracing) {
    g.map_buffers(mem);
    mem.map_buffer(r.dist.data(), n * sizeof(W));
    mem.map_buffer(r.parent.data(), n * sizeof(vertex_t));
  }
  r.dist[static_cast<std::size_t>(source)] = W{0};

  std::vector<char> active(n, 0), next_active(n, 0);
  active[static_cast<std::size_t>(source)] = 1;
  bool any_active = true;

  for (std::size_t round = 0; round < n && any_active; ++round) {
    any_active = false;
    for (std::size_t u = 0; u < n; ++u) {
      if (!active[u]) continue;
      active[u] = 0;
      const W du = r.dist[u];
      mem.read(&r.dist[u]);
      g.for_neighbors(static_cast<vertex_t>(u), mem, [&](const graph::Neighbor<W>& nb) {
        const auto tv = static_cast<std::size_t>(nb.to);
        const W nd = sat_add(du, nb.weight);
        mem.read(&r.dist[tv]);
        ++r.relaxations;
        if (nd < r.dist[tv]) {
          r.dist[tv] = nd;
          mem.write(&r.dist[tv]);
          r.parent[tv] = static_cast<vertex_t>(u);
          if (round + 1 == n) {
            r.negative_cycle = true;  // improvement in round N = cycle
          }
          next_active[tv] = 1;
          any_active = true;
        }
      });
    }
    std::swap(active, next_active);
  }

  // If the frontier is still non-empty after N rounds, a negative cycle
  // is reachable.
  if (any_active) {
    // One verification sweep: any further improvement proves the cycle.
    for (std::size_t u = 0; u < n && !r.negative_cycle; ++u) {
      if (is_inf(r.dist[u])) continue;
      const W du = r.dist[u];
      g.for_neighbors(static_cast<vertex_t>(u), mem, [&](const graph::Neighbor<W>& nb) {
        if (sat_add(du, nb.weight) < r.dist[static_cast<std::size_t>(nb.to)]) {
          r.negative_cycle = true;
        }
      });
    }
  }
  return r;
}

}  // namespace cachegraph::sssp
