// Always-on flight recorder: a fixed-size lock-free ring of the most
// recent RequestRecords, so every bad outcome (deadline blown, request
// shed, snapshot corrupt, injected fault) comes with its recent-history
// context "for free" — no tracing session required.
//
// Ring mechanics (a seqlock per slot over plain atomic words):
//   - writers claim a slot with head_.fetch_add (wait-free), bump the
//     slot's sequence to odd (write in progress), store the record as
//     10 relaxed atomic uint64 words, then bump the sequence to even
//     with release order;
//   - readers (dump()) read the sequence, copy the words, and re-read
//     the sequence: a slot is kept only if both reads saw the same
//     even value — a torn slot (writer mid-flight, or lapped by a
//     faster writer) is simply skipped. Under extreme wrap pressure a
//     dump may therefore contain fewer than capacity records; it never
//     contains a torn one.
// Every field is an atomic word, so the race between a lapping writer
// and a reader is a *data-race-free* race — TSan-clean by
// construction, resolved by the seqlock check.
//
// Auto-dump: arm_auto_dump(path) makes note() write a JSON dump (the
// triggering record + the ring contents, crash-safe tmp+rename) when a
// record resolves DEADLINE_EXCEEDED / OVERLOADED / DATA_LOSS or was
// aborted by a thrown exception (the chaos suite's injected faults).
// Dumps are rate-limited by min_interval so a storm of bad outcomes
// costs one file write, not thousands; each dump also drops an instant
// event into the installed TraceSession (if any) and bumps
// `obs.flight_recorder.dumps`.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "cachegraph/obs/telemetry.hpp"

namespace cachegraph::obs {

class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 512;  // power of two
  static constexpr std::size_t kWordsPerRecord = 10;

  /// The process-wide recorder every serving layer notes into.
  [[nodiscard]] static FlightRecorder& instance();

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one request (always, good or bad). When armed and the
  /// record is a dump trigger (see is_dump_trigger) and the rate limit
  /// allows, writes the auto-dump as a side effect.
  void note(const RequestRecord& rec) noexcept;

  /// True for the outcomes that warrant a dump: DEADLINE_EXCEEDED,
  /// OVERLOADED, DATA_LOSS, or any aborted (thrown-through) request.
  [[nodiscard]] static bool is_dump_trigger(const RequestRecord& rec) noexcept;

  /// Enables auto-dumps to `path` (overwritten per dump, crash-safe
  /// tmp+rename), at most one per `min_interval`.
  void arm_auto_dump(std::string path,
                     std::chrono::milliseconds min_interval = std::chrono::milliseconds(100));
  void disarm_auto_dump();

  /// Stable records currently in the ring, oldest first (best-effort
  /// under concurrent writes — see header comment).
  [[nodiscard]] std::vector<RequestRecord> dump() const;

  /// Writes {"trigger": ..., "recent": [...]} JSON. `trigger` may be
  /// nullptr for a manual dump. The stream form always succeeds; the
  /// file form is crash-safe (tmp+rename) and false on I/O failure.
  void write_json(std::ostream& os, const RequestRecord* trigger) const;
  [[nodiscard]] bool write_file(const std::string& path, const RequestRecord* trigger) const;

  /// Auto-dumps performed so far (monotone; survives disarm).
  [[nodiscard]] std::uint64_t dumps() const noexcept {
    return dumps_.load(std::memory_order_relaxed);
  }

  /// Total records ever noted (monotone).
  [[nodiscard]] std::uint64_t noted() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

  /// Empties the ring (quiescent-point call, for tests).
  void clear() noexcept;

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // even = stable, odd = write in progress
    std::array<std::atomic<std::uint64_t>, kWordsPerRecord> words{};
  };

  static void pack(const RequestRecord& rec, std::array<std::uint64_t, kWordsPerRecord>& w) noexcept;
  static RequestRecord unpack(const std::array<std::uint64_t, kWordsPerRecord>& w) noexcept;
  void maybe_auto_dump(const RequestRecord& rec) noexcept;

  std::array<Slot, kCapacity> ring_{};
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> dumps_{0};

  mutable std::mutex arm_mu_;
  std::string dump_path_;                     // empty = disarmed
  std::chrono::milliseconds min_interval_{100};
  std::chrono::steady_clock::time_point last_dump_{};
  bool ever_dumped_ = false;

  friend void note_request(const RequestRecord& rec) noexcept;
};

}  // namespace cachegraph::obs
