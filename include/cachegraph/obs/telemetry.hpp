// Per-request telemetry records — the shared vocabulary between the
// serving layers (query::QueryEngine, sssp::BatchEngine, the
// ResultCache) and the observability sinks (per-kind latency
// histograms in the MetricsRegistry, the FlightRecorder ring, trace
// child spans).
//
// A RequestRecord is one request's life in numbers: where the time
// went (blocked on admission → queued → computing), how much work the
// search did (settled / relaxations), how it resolved (Outcome +
// Status code), and how close it ran to its deadline. The engines fill
// one per request and hand it to note_request(), which fans it out to
// every sink. Records are plain 64-bit-packable data so the flight
// recorder can store them in a lock-free ring of atomic words.
//
// Compile-time gating: when CACHEGRAPH_INSTRUMENT is off,
// kTelemetryEnabled is false and every engine-side telemetry block is
// `if constexpr`-eliminated — no clock reads, no record construction,
// no note_request() calls. The types and registries still compile (and
// the exporters render valid, empty documents) so tooling built on
// them keeps linking.
#pragma once

#include <cstdint>

namespace cachegraph::obs {

#if defined(CACHEGRAPH_INSTRUMENT)
inline constexpr bool kTelemetryEnabled = true;
#else
inline constexpr bool kTelemetryEnabled = false;
#endif

/// Request-kind index space shared by every sink. The first four match
/// query::Request's variant order (kind_index_of); the analytics kinds
/// are the frontier engine's request shapes (query::kind_index_of maps
/// their variant slots here — engine.hpp static_asserts the mapping);
/// the rest are other serving surfaces that emit records.
enum RequestKind : std::uint8_t {
  kKindPointToPoint = 0,
  kKindKNearest = 1,
  kKindBounded = 2,
  kKindFullSssp = 3,
  kKindBatchSource = 4,     ///< one source of a BatchEngine::run_batch
  kKindCacheSnapshot = 5,   ///< ResultCache snapshot load/save
  kKindPageRank = 6,        ///< analytics: PageRank power iteration
  kKindWcc = 7,             ///< analytics: weakly-connected components
  kKindBfsFromSet = 8,      ///< analytics: multi-source BFS hop depths
  kKindTriangleCount = 9,   ///< analytics: global triangle count
  kKindMultiTarget = 10,    ///< bounded search until a target *set* settles
  kNumRequestKinds = 11,
};

/// Stable labels (histogram suffixes, dump fields). The query-request
/// kinds are asserted against query::kind_of in the test suite.
[[nodiscard]] constexpr const char* request_kind_name(std::uint8_t kind) noexcept {
  switch (kind) {
    case kKindPointToPoint: return "point_to_point";
    case kKindKNearest: return "k_nearest";
    case kKindBounded: return "bounded";
    case kKindFullSssp: return "full_sssp";
    case kKindBatchSource: return "batch_source";
    case kKindCacheSnapshot: return "cache_snapshot";
    case kKindPageRank: return "pagerank";
    case kKindWcc: return "wcc";
    case kKindBfsFromSet: return "bfs_from_set";
    case kKindTriangleCount: return "triangle_count";
    case kKindMultiTarget: return "multi_target";
    default: return "unknown";
  }
}

/// One request's telemetry. All durations in nanoseconds; vertex ids
/// as signed 32-bit (-1 = none). Fits in 10 packed words (see
/// flight_recorder.hpp for the layout).
struct RequestRecord {
  std::uint64_t id = 0;        ///< assigned by note_request (monotone, global)
  std::uint8_t kind = kKindFullSssp;
  std::uint8_t status_code = 0;   ///< reliability::StatusCode value
  std::uint8_t outcome = 0;       ///< query::Outcome value (engines) or 0
  bool aborted = false;           ///< task exited by throwing (incl. injected faults)
  bool had_deadline = false;      ///< deadline_slack_ns is meaningful
  std::uint32_t tid = 0;          ///< obs::current_tid() of the finishing thread
  std::int32_t source = -1;
  std::int32_t target = -1;
  std::uint64_t admission_wait_ns = 0;  ///< submit → admitted (blocked/preflight)
  std::uint64_t queue_wait_ns = 0;      ///< admitted → task started on a worker
  std::uint64_t compute_ns = 0;         ///< inside the search core
  std::uint64_t total_ns = 0;           ///< submit → resolved
  std::uint64_t settled = 0;
  std::uint64_t relaxations = 0;
  std::int64_t deadline_slack_ns = 0;   ///< remaining budget at resolution (<0 = overran)
};

/// Fans one finished request out to every sink: per-kind latency
/// histogram + time-split histograms in the MetricsRegistry, the
/// flight-recorder ring (with auto-dump on bad outcomes), and the
/// `obs.requests.recorded` counter. Assigns rec.id. Safe from any
/// thread; never throws. Compiled to an empty function when
/// CACHEGRAPH_INSTRUMENT is off (call sites are `if constexpr`-gated
/// anyway).
void note_request(const RequestRecord& rec) noexcept;

}  // namespace cachegraph::obs
