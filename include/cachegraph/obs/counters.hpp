// Instrumentation counters — cheap, named, process-wide tallies that
// algorithm hot paths bump through the CG_COUNTER_* macros.
//
// The macros are compile-time toggled by CACHEGRAPH_INSTRUMENT (a CMake
// option, default ON). When the toggle is off every macro expands to a
// no-op that references no registry symbol, so instrumented kernels
// compile to exactly the code they had before instrumentation. When on,
// each use site resolves its counter slot once (a function-local static
// reference into the registry) and the steady-state cost is one relaxed
// atomic add to a hot cache line — negligible next to any heap op or
// tile update.
//
// The registry itself is always compiled (tests and the bench report
// sink use it regardless of the toggle). Counter *lookup* is mutex
// guarded; the slots are std::atomic so increments are safe from any
// thread — the task pool's workers bump counters concurrently (e.g.
// "fwr.base_cases" from parallel leaf tasks), and the pool drains its
// own tallies into the registry via CG_COUNTER_ADD. Relaxed ordering is
// enough: counters are tallies read at quiescent points, not
// synchronization.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cachegraph::obs {

class CounterRegistry {
 public:
  /// The process-wide registry.
  static CounterRegistry& instance();

  /// Get-or-create the counter named `name`. The returned reference
  /// stays valid (and is zeroed in place by reset()) for the process
  /// lifetime — counters are created, never destroyed.
  std::atomic<std::uint64_t>& counter(std::string_view name);

  /// Current value; 0 if the counter has never been touched.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;

  /// Zero every counter in place (references stay valid).
  void reset();

  /// All counters, sorted by name. `nonzero_only` drops zero entries —
  /// what the report sink wants after a measured region.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> snapshot(
      bool nonzero_only = false) const;

 private:
  CounterRegistry() = default;

  mutable std::mutex mu_;
  // node-based map: stable addresses for the returned references.
  std::map<std::string, std::atomic<std::uint64_t>, std::less<>> counters_;
};

/// Raise `slot` to at least `v` (atomic max via CAS; relaxed — a tally,
/// not synchronization).
inline void counter_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < v && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace cachegraph::obs

#if defined(CACHEGRAPH_INSTRUMENT)

#define CG_COUNTER_ADD(name, delta)                                          \
  do {                                                                       \
    static std::atomic<std::uint64_t>& cg_obs_counter_ =                     \
        ::cachegraph::obs::CounterRegistry::instance().counter(name);        \
    cg_obs_counter_.fetch_add(static_cast<std::uint64_t>(delta),             \
                              std::memory_order_relaxed);                    \
  } while (false)

#define CG_COUNTER_MAX(name, v)                                              \
  do {                                                                       \
    static std::atomic<std::uint64_t>& cg_obs_counter_ =                     \
        ::cachegraph::obs::CounterRegistry::instance().counter(name);        \
    ::cachegraph::obs::counter_max(cg_obs_counter_,                          \
                                   static_cast<std::uint64_t>(v));           \
  } while (false)

#else  // !CACHEGRAPH_INSTRUMENT — expand to nothing; sizeof keeps the
       // operands "used" (no evaluation, no codegen, no warnings).

#define CG_COUNTER_ADD(name, delta)   \
  do {                                \
    (void)sizeof((name));             \
    (void)sizeof((delta));            \
  } while (false)

#define CG_COUNTER_MAX(name, v) CG_COUNTER_ADD(name, v)

#endif  // CACHEGRAPH_INSTRUMENT

#define CG_COUNTER_INC(name) CG_COUNTER_ADD(name, 1)
