// Hardware performance counters via Linux perf_event_open.
//
// The paper validates every optimization with *measured* cache
// behaviour (SimpleScalar miss counts); on a live host the analogous
// evidence is the PMU. PerfCounters samples, around a measured region:
//   cycles, instructions, L1D loads + load misses, LLC loads + load
//   misses, and dTLB load misses
// so bench reports can put measured miss counts next to the memsim's
// predicted ones.
//
// Counters are opened individually (no group) so the kernel can
// multiplex freely; each value is scaled by time_enabled/time_running.
// Where the syscall is unavailable — containers without
// CAP_PERFMON / perf_event_paranoid >= 2, non-Linux hosts — every open
// fails and the object degrades to a no-op with available() == false.
// Individual events may also be missing (e.g. LLC events on some VMs):
// those fields read 0 and are excluded from `mask`.
#pragma once

#include <array>
#include <cstdint>

namespace cachegraph::obs {

/// One sampled reading. A field is meaningful iff its bit is set in
/// `mask` (see PerfCounters::Event); unavailable fields stay 0.
struct PerfReading {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t l1d_loads = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t llc_loads = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t dtlb_misses = 0;
  unsigned mask = 0;  ///< bit i set ⇔ event i was actually counted

  [[nodiscard]] double ipc() const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) / static_cast<double>(cycles);
  }
  [[nodiscard]] double l1d_miss_rate() const noexcept {
    return l1d_loads == 0
               ? 0.0
               : static_cast<double>(l1d_misses) / static_cast<double>(l1d_loads);
  }
  [[nodiscard]] double llc_miss_rate() const noexcept {
    return llc_loads == 0
               ? 0.0
               : static_cast<double>(llc_misses) / static_cast<double>(llc_loads);
  }
};

class PerfCounters {
 public:
  enum Event : unsigned {
    kCycles = 0,
    kInstructions,
    kL1dLoads,
    kL1dMisses,
    kLlcLoads,
    kLlcMisses,
    kDtlbMisses,
    kNumEvents,
  };

  /// Tries to open all events; never throws. Check available().
  PerfCounters();
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True iff at least one hardware event opened successfully.
  [[nodiscard]] bool available() const noexcept { return mask_ != 0; }

  /// Bitmask of Events that opened (bit i ⇔ Event i).
  [[nodiscard]] unsigned mask() const noexcept { return mask_; }

  /// Zero and enable all opened counters. No-op when unavailable.
  void start() noexcept;
  /// Disable counting. No-op when unavailable.
  void stop() noexcept;
  /// Read the current (multiplex-scaled) values. All-zero reading with
  /// mask == 0 when unavailable.
  [[nodiscard]] PerfReading read() const noexcept;

  /// start(); fn(); stop(); read().
  template <typename Fn>
  PerfReading measure(Fn&& fn) {
    start();
    fn();
    stop();
    return read();
  }

 private:
  std::array<int, kNumEvents> fds_;
  unsigned mask_ = 0;
};

}  // namespace cachegraph::obs
