// Log-bucketed latency histogram (HdrHistogram-style) for the serving
// telemetry layer.
//
// Bucket layout: values below kSubBucketCount (64) get unit-width
// buckets (exact); every power-of-two octave above that is split into
// kSubBucketsPerOctave (32) linear sub-buckets, so the relative error
// of any recorded value is bounded by 1/32 ≈ 3.1%. The full uint64
// range fits in kNumBuckets (1920) slots — small enough that a
// snapshot is a cheap memcpy-sized copy and a merge is elementwise
// addition.
//
// Concurrency: record() is lock-free and wait-free after warm-up.
// Counts live in kShards per-thread-striped shards of relaxed atomics
// (a thread picks its shard by its stable small integer id from
// obs::current_tid()); shards are allocated lazily with a CAS so an
// unused histogram costs one cache line. snapshot() merges the shards
// with relaxed loads — increments are never lost (each is a real
// atomic fetch_add), a snapshot concurrent with writers is simply a
// linearization-point-free but complete-to-a-moment view, which is
// all a metrics scrape needs.
//
// Percentiles are exact-count (nearest-rank over the true total) with
// value resolution of one bucket: percentile(p) returns the inclusive
// upper bound of the bucket containing the rank-p sample, clipped to
// the recorded maximum — so percentile(100) is the exact max and any
// returned quantile is >= the true one by at most one bucket width.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cachegraph::obs {

/// Stable dense id for the calling thread (1, 2, 3, … in first-call
/// order). Used to stripe histogram shards and to label trace events;
/// never reused, so it also works as a Chrome-trace tid.
[[nodiscard]] std::uint32_t current_tid() noexcept;

namespace hist_detail {
inline constexpr std::size_t kSubBucketCount = 64;      // unit-width low range
inline constexpr std::size_t kSubBucketsPerOctave = 32; // linear slices per octave
inline constexpr unsigned kSubBucketBits = 6;           // log2(kSubBucketCount)
// Octaves with msb in [6, 63] each contribute kSubBucketsPerOctave.
inline constexpr std::size_t kNumBuckets =
    kSubBucketCount + (64 - kSubBucketBits) * kSubBucketsPerOctave;

[[nodiscard]] constexpr std::size_t index_of(std::uint64_t v) noexcept {
  if (v < kSubBucketCount) return static_cast<std::size_t>(v);
  const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
  const unsigned shift = msb - (kSubBucketBits - 1);  // v >> shift ∈ [32, 64)
  return kSubBucketCount +
         static_cast<std::size_t>(msb - kSubBucketBits) * kSubBucketsPerOctave +
         static_cast<std::size_t>((v >> shift) - kSubBucketsPerOctave);
}

/// Smallest value that lands in bucket `i`.
[[nodiscard]] constexpr std::uint64_t bucket_min(std::size_t i) noexcept {
  if (i < kSubBucketCount) return static_cast<std::uint64_t>(i);
  const std::size_t octave = (i - kSubBucketCount) / kSubBucketsPerOctave;
  const std::size_t slice = (i - kSubBucketCount) % kSubBucketsPerOctave;
  const unsigned shift = static_cast<unsigned>(octave) + 1;
  return static_cast<std::uint64_t>(kSubBucketsPerOctave + slice) << shift;
}

/// Largest value that lands in bucket `i` (inclusive; the top bucket
/// ends at UINT64_MAX with no overflow).
[[nodiscard]] constexpr std::uint64_t bucket_max(std::size_t i) noexcept {
  if (i < kSubBucketCount) return static_cast<std::uint64_t>(i);
  const std::size_t octave = (i - kSubBucketCount) / kSubBucketsPerOctave;
  const unsigned shift = static_cast<unsigned>(octave) + 1;
  return bucket_min(i) + ((std::uint64_t{1} << shift) - 1);
}
}  // namespace hist_detail

/// A point-in-time merge of a histogram's shards (or of several
/// histograms/snapshots — merge() is elementwise). Plain data: copy,
/// diff, and query it freely off the hot path.
struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;  ///< size LatencyHistogram::kNumBuckets
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min_seen = ~std::uint64_t{0};  ///< sentinel when count == 0
  std::uint64_t max_seen = 0;

  HistogramSnapshot() : counts(hist_detail::kNumBuckets, 0) {}

  [[nodiscard]] std::uint64_t min() const noexcept { return count == 0 ? 0 : min_seen; }
  [[nodiscard]] std::uint64_t max() const noexcept { return count == 0 ? 0 : max_seen; }
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Adds another snapshot into this one (histogram merge: counts are
  /// elementwise sums, extrema combine, totals add).
  void merge(const HistogramSnapshot& other) {
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
    count += other.count;
    sum += other.sum;
    min_seen = std::min(min_seen, other.min_seen);
    max_seen = std::max(max_seen, other.max_seen);
  }

  /// This snapshot minus an earlier one of the same histogram — the
  /// interval view a bench scene uses to report one ladder rung.
  /// Extrema are recomputed from the surviving buckets (bucket
  /// resolution; exact extrema of an interval are not recoverable).
  [[nodiscard]] HistogramSnapshot minus(const HistogramSnapshot& earlier) const {
    HistogramSnapshot out;
    out.count = count - earlier.count;
    out.sum = sum - earlier.sum;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      out.counts[i] = counts[i] - earlier.counts[i];
      if (out.counts[i] != 0) {
        out.min_seen = std::min(out.min_seen, hist_detail::bucket_min(i));
        out.max_seen = std::max(out.max_seen, hist_detail::bucket_max(i));
      }
    }
    return out;
  }

  /// Nearest-rank percentile, p in [0, 100]. Exact in count (ranks are
  /// computed over the true total), bucket-resolution in value: returns
  /// the inclusive upper bound of the rank's bucket, clipped to the
  /// recorded max. 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept {
    if (count == 0) return 0;
    const double clamped = std::min(std::max(p, 0.0), 100.0);
    auto rank =
        static_cast<std::uint64_t>(std::ceil(clamped / 100.0 * static_cast<double>(count)));
    rank = std::min(std::max<std::uint64_t>(rank, 1), count);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cum += counts[i];
      if (cum >= rank) return std::min(hist_detail::bucket_max(i), max_seen);
    }
    return max();  // unreachable when counts are consistent with count
  }
};

/// The recording side: lock-free, thread-striped, merge-on-read.
class LatencyHistogram {
 public:
  static constexpr std::size_t kNumBuckets = hist_detail::kNumBuckets;
  static constexpr std::size_t kShards = 8;

  LatencyHistogram() = default;
  ~LatencyHistogram() {
    for (auto& slot : shards_) delete slot.load(std::memory_order_acquire);
  }

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    return hist_detail::index_of(v);
  }
  [[nodiscard]] static constexpr std::uint64_t bucket_min(std::size_t i) noexcept {
    return hist_detail::bucket_min(i);
  }
  [[nodiscard]] static constexpr std::uint64_t bucket_max(std::size_t i) noexcept {
    return hist_detail::bucket_max(i);
  }

  void record(std::uint64_t v) noexcept {
    Shard& sh = shard_for_this_thread();
    sh.counts[hist_detail::index_of(v)].fetch_add(1, std::memory_order_relaxed);
    sh.count.fetch_add(1, std::memory_order_relaxed);
    sh.sum.fetch_add(v, std::memory_order_relaxed);
    atomic_min(sh.min_seen, v);
    atomic_max(sh.max_seen, v);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const {
    HistogramSnapshot out;
    for (const auto& slot : shards_) {
      const Shard* sh = slot.load(std::memory_order_acquire);
      if (sh == nullptr) continue;
      for (std::size_t i = 0; i < kNumBuckets; ++i) {
        out.counts[i] += sh->counts[i].load(std::memory_order_relaxed);
      }
      out.count += sh->count.load(std::memory_order_relaxed);
      out.sum += sh->sum.load(std::memory_order_relaxed);
      out.min_seen = std::min(out.min_seen, sh->min_seen.load(std::memory_order_relaxed));
      out.max_seen = std::max(out.max_seen, sh->max_seen.load(std::memory_order_relaxed));
    }
    return out;
  }

  /// Zeroes every shard in place. Quiescent-point call (a concurrent
  /// record() may land on either side of the wipe).
  void reset() noexcept {
    for (auto& slot : shards_) {
      Shard* sh = slot.load(std::memory_order_acquire);
      if (sh == nullptr) continue;
      for (auto& c : sh->counts) c.store(0, std::memory_order_relaxed);
      sh->count.store(0, std::memory_order_relaxed);
      sh->sum.store(0, std::memory_order_relaxed);
      sh->min_seen.store(~std::uint64_t{0}, std::memory_order_relaxed);
      sh->max_seen.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kNumBuckets> counts{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min_seen{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max_seen{0};
  };

  static void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  Shard& shard_for_this_thread() noexcept {
    auto& slot = shards_[current_tid() % kShards];
    Shard* sh = slot.load(std::memory_order_acquire);
    if (sh == nullptr) {
      auto* fresh = new Shard();
      if (slot.compare_exchange_strong(sh, fresh, std::memory_order_acq_rel)) {
        sh = fresh;
      } else {
        delete fresh;  // another thread won the install race
      }
    }
    return *sh;
  }

  std::array<std::atomic<Shard*>, kShards> shards_{};
};

}  // namespace cachegraph::obs
