// MetricsRegistry — the process-wide export surface for serving
// telemetry: named latency histograms (obs/histogram.hpp), named
// gauges (last-sample doubles), and, at render time, every
// CounterRegistry counter — all in one scrape.
//
// Exporters:
//   render_prometheus(os)  Prometheus text exposition (one # TYPE line
//                          per metric; histograms as cumulative `le`
//                          buckets + _sum/_count; names sanitized to
//                          [a-zA-Z0-9_:], dots become underscores, and
//                          counters get the conventional _total suffix)
//   render_json(os)        one JSON object: counters, gauges, and per-
//                          histogram {count, sum, min, max, mean, p50,
//                          p90, p99, p999}
// Both render from the same snapshots, so a scrape is consistent to a
// moment per metric (not across metrics — this is a stats export, not
// a transaction).
//
// File forms reuse the crash-safe tmp+fsync+rename idiom from the
// ResultCache snapshot path (PR 5): a reader never observes a torn
// file. configure_snapshots(path, interval) + poll_snapshot() give the
// serving loop a pull-free exporter — the engine polls at batch
// boundaries and the registry writes at most one JSON snapshot per
// interval.
//
// Lookup contract mirrors CounterRegistry: histogram(name)/gauge(name)
// return references with stable addresses for the registry's lifetime
// (node-based map), so hot paths look up once and cache the reference;
// the mutex guards only the name→slot map, never a record().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cachegraph/obs/histogram.hpp"
#include "cachegraph/reliability/status.hpp"

namespace cachegraph::obs {

/// Last-sample-wins metric (queue depth, hit rate, utilization).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

class MetricsRegistry {
 public:
  [[nodiscard]] static MetricsRegistry& instance();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Stable-address lookup-or-create (cache the reference on hot paths).
  [[nodiscard]] LatencyHistogram& histogram(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);

  /// Name-sorted snapshots (histograms merged across shards).
  [[nodiscard]] std::vector<std::pair<std::string, HistogramSnapshot>> histograms() const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges() const;

  void render_prometheus(std::ostream& os) const;
  void render_json(std::ostream& os) const;

  /// Crash-safe file exports (write path + ".tmp", fsync, rename).
  [[nodiscard]] reliability::Status write_prometheus_file(const std::string& path) const;
  [[nodiscard]] reliability::Status write_json_file(const std::string& path) const;

  /// Periodic snapshot writer: after this, poll_snapshot() writes the
  /// JSON export to `path` at most once per `min_interval` (0 = every
  /// poll). Call poll_snapshot() from serving-loop boundaries.
  void configure_snapshots(std::string path,
                           std::chrono::milliseconds min_interval = std::chrono::seconds(1));
  void disable_snapshots();
  void poll_snapshot();
  [[nodiscard]] std::uint64_t snapshots_written() const noexcept {
    return snapshots_written_.load(std::memory_order_relaxed);
  }

  /// Zeroes every histogram and gauge in place (references stay valid,
  /// as with CounterRegistry::reset). Counters are not touched — they
  /// belong to CounterRegistry.
  void reset();

  /// A metric name as Prometheus wants it: [a-zA-Z0-9_:], everything
  /// else (the registry's dots included) becomes '_'; a leading digit
  /// gets a '_' prefix.
  [[nodiscard]] static std::string sanitize_name(std::string_view name);

 private:
  mutable std::mutex mu_;
  // Node-based maps: stable addresses across inserts (same contract as
  // CounterRegistry, for the same function-local-static caching).
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>> hists_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;

  mutable std::mutex snap_mu_;
  std::string snap_path_;  // empty = disabled
  std::chrono::milliseconds snap_interval_{1000};
  std::chrono::steady_clock::time_point last_snap_{};
  bool ever_snapped_ = false;
  std::atomic<std::uint64_t> snapshots_written_{0};
};

namespace detail {
/// The crash-safe write shared by the metrics exporters and the flight
/// recorder: content → path+".tmp" (fflush + fsync) → rename(path).
[[nodiscard]] reliability::Status write_file_atomic(const std::string& path,
                                                   std::string_view content);
}  // namespace detail

}  // namespace cachegraph::obs
