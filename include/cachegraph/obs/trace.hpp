// Scoped trace spans emitting Chrome trace_event JSON.
//
// A TraceSession collects begin/end ("B"/"E") events with microsecond
// timestamps; write_json() emits the Chrome trace-event array format
// that chrome://tracing and https://ui.perfetto.dev open directly, so
// nested phases — partition → local match → global match, or the tiled
// FW's per-block-iterations — are visible on a timeline.
//
// Instrumentation sites use CG_TRACE_SPAN(name): an RAII span that is a
// single pointer test when no session is installed, so leaving the
// spans compiled in costs nothing outside traced runs. Sessions nest
// (the newest installed one records); the install slot is atomic and
// begin/end are mutex-guarded, so spans opened on task-pool workers or
// inside an OpenMP region cannot corrupt the event list.
//
// Threads: every event carries the recording thread's stable id
// (obs::current_tid()), so per-worker lanes separate in the viewer.
// Threads that register a name via set_current_thread_name() (the
// TaskPool names its workers "pool.worker-N") get an 'M'-phase
// thread_name metadata event per session, which chrome://tracing and
// Perfetto use to label the lane. complete(name, t0, t1) records an
// 'X' (complete) event after the fact — how the query engine attaches
// queue-wait child spans it only knows retrospectively.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cachegraph::obs {

/// Stable dense id for the calling thread (declared in histogram.hpp,
/// defined in trace.cpp — both layers stripe/label by it).
[[nodiscard]] std::uint32_t current_tid() noexcept;

/// Registers a display name for the calling thread; every TraceSession
/// emits it as an 'M'-phase thread_name metadata event. Re-registering
/// overwrites. Safe from any thread.
void set_current_thread_name(std::string_view name);

/// Snapshot of every registered (tid, name) pair.
[[nodiscard]] std::vector<std::pair<std::uint32_t, std::string>> thread_names();

class TraceSession {
 public:
  struct Event {
    char phase;        ///< 'B', 'E', 'i' (instant), or 'X' (complete)
    std::string name;
    double ts_us;      ///< microseconds since session start
    std::uint32_t tid; ///< recording thread (obs::current_tid())
    double dur_us;     ///< 'X' events only: span duration
  };

  /// Installs this session as the current recording target.
  TraceSession();
  /// Uninstalls (restores the previously installed session, if any).
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The innermost installed session, or nullptr when none.
  [[nodiscard]] static TraceSession* current() noexcept;

  void begin(std::string_view name);
  void end(std::string_view name);
  void instant(std::string_view name);
  /// Records a complete ('X') event for a span measured elsewhere —
  /// clamped to the session start when `t0` predates it.
  void complete(std::string_view name, std::chrono::steady_clock::time_point t0,
                std::chrono::steady_clock::time_point t1);

  [[nodiscard]] std::size_t num_events() const;
  [[nodiscard]] std::vector<Event> events() const;

  /// Chrome trace_event JSON ({"traceEvents": [...], ...}).
  void write_json(std::ostream& os) const;
  /// Writes the JSON to `path`; false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  void record(char phase, std::string_view name, double dur_us = 0.0);

  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  TraceSession* prev_ = nullptr;
};

/// RAII span: records a B event now and the matching E event on scope
/// exit — if and only if a session is installed at construction time.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) {
    if (TraceSession* s = TraceSession::current()) {
      session_ = s;
      name_.assign(name);
      s->begin(name_);
    }
  }
  ~TraceSpan() {
    if (session_ != nullptr) session_->end(name_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSession* session_ = nullptr;
  std::string name_;
};

}  // namespace cachegraph::obs

#define CG_OBS_CONCAT_IMPL(a, b) a##b
#define CG_OBS_CONCAT(a, b) CG_OBS_CONCAT_IMPL(a, b)
#define CG_TRACE_SPAN(name) \
  const ::cachegraph::obs::TraceSpan CG_OBS_CONCAT(cg_trace_span_, __LINE__)(name)
