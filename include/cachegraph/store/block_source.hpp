// BlockSource — the seam between the block cache and the bytes.
//
// A BlockSource knows how to fetch block `i` of a blocked graph file
// into a caller-provided frame; it does not parse, checksum, or cache
// anything (the BlockCache owns verification and residency). Two
// backends implement it:
//
//   PreadSource  one fd, positional reads (::pread) — no shared file
//                offset, so concurrent faults from different cache
//                shards need no lock. The OS page cache still helps,
//                but residency is explicitly bounded by the
//                BlockCache's frame budget.
//   MmapSource   maps the whole file once and memcpy's the block out
//                of the mapping — the kernel faults pages lazily, so
//                cold blocks cost page faults instead of syscalls and
//                hot blocks cost a plain copy.
//
// Both are created through make_block_source so callers select a
// backend by enum (bench and tests sweep both). On platforms without
// mmap the factory returns INVALID_ARGUMENT for Backend::kMmap rather
// than silently degrading.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>

#include "cachegraph/reliability/status.hpp"

namespace cachegraph::store {

enum class Backend : std::uint8_t {
  kPread,  ///< positional reads on one shared fd
  kMmap,   ///< whole-file mapping, copy out of the map
};

[[nodiscard]] constexpr const char* backend_name(Backend b) noexcept {
  return b == Backend::kPread ? "pread" : "mmap";
}

/// Fetches raw blocks by id. Implementations must be safe to call from
/// multiple threads concurrently (the sharded cache faults in
/// parallel). Failures are DATA_LOSS: from the store's point of view a
/// block that cannot be read is a block that is gone.
class BlockSource {
 public:
  virtual ~BlockSource() = default;

  /// Reads block `block_id` into `dst` (exactly block_bytes long).
  [[nodiscard]] virtual reliability::Status read_block(std::uint32_t block_id,
                                                       std::span<std::byte> dst) noexcept = 0;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Opens `path`'s block region: blocks live at
/// [data_offset + i * block_bytes, ...) for i in [0, num_blocks).
/// The caller (BlockedFile::open) has already validated the header and
/// footer; the source only checks that the file is long enough.
[[nodiscard]] reliability::Expected<std::unique_ptr<BlockSource>> make_block_source(
    const std::filesystem::path& path, Backend backend, std::uint64_t data_offset,
    std::uint32_t block_bytes, std::uint32_t num_blocks);

}  // namespace cachegraph::store
