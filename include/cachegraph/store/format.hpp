// cachegraph::store — the binary blocked on-disk format for
// AdjacencyArray (the paper's thesis one level down the hierarchy:
// contiguous whole-vertex neighbor runs, packed into fixed-size
// blocks, so a DRAM-resident block cache streams neighbor records off
// SSD the way a cache line streams them out of DRAM).
//
// File layout (all integers little-endian host order — this is a
// same-architecture serving format like the ResultCache snapshot, not
// an interchange format; the header's weight_kind and magic refuse
// foreign files):
//
//   [FileHeader:64]                          checksummed
//   [Block 0][Block 1]...[Block B-1]         each exactly block_bytes
//   [footer: offsets  (n+1) * int64]         the CSR offsets array
//   [        start_block  n * uint32]        vertex -> block of its run
//   [        BlockIndexEntry * B]            block -> {first record, range}
//   [footer checksum: fnv1a64 over the footer bytes]
//
// Each block: [BlockHeader:32][payload: record_count * sizeof
// Neighbor<W>][zero padding to block_bytes]. A block holds whole-
// vertex neighbor runs for a contiguous vertex range; the writer
// starts a new block rather than split a run — except when a single
// vertex's run exceeds one block's payload capacity, in which case the
// run *continues* across consecutive blocks (record-granularity split,
// detectable as first_record_b > offsets[first_vertex_b]).
//
// Integrity: the header and footer checksums are verified at open();
// each block's checksum is verified at fault time, once per fill. The
// block checksum is the *first* field of the block and covers every
// byte after it — header fields, payload, and padding — so a flipped
// bit anywhere in the block (or a pread that landed in the wrong
// place, caught by the block_id field) surfaces as DATA_LOSS naming
// the block id, never as a wrong neighbor record.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/edge_list.hpp"

namespace cachegraph::store {

/// Format tag: bump the trailing digits on any layout change so an old
/// binary refuses a new file (and vice versa) instead of misparsing it.
inline constexpr char kStoreMagic[8] = {'C', 'G', 'B', 'L', 'K', 'S', '0', '1'};
inline constexpr std::uint32_t kStoreVersion = 1;

/// "This vertex's run starts nowhere" (degree 0): never dereferenced.
inline constexpr std::uint32_t kNoBlock = 0xffffffffu;

/// Encodes the weight type's identity (size | signedness | floatness)
/// so an int32 file never deserializes into a double graph. Same
/// encoding as the ResultCache snapshot's weight kind.
template <Weight W>
[[nodiscard]] constexpr std::uint32_t weight_kind() noexcept {
  return static_cast<std::uint32_t>(sizeof(W)) | (std::is_signed_v<W> ? 0x100U : 0U) |
         (std::is_floating_point_v<W> ? 0x200U : 0U);
}

#pragma pack(push, 1)

/// 64 bytes at file offset 0. `header_checksum` is FNV-1a over the 56
/// bytes preceding it.
struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t weight_kind;
  std::int64_t num_vertices;
  std::int64_t num_records;
  std::uint32_t block_bytes;
  std::uint32_t num_blocks;
  std::uint64_t reserved[2];
  std::uint64_t header_checksum;
};
static_assert(sizeof(FileHeader) == 64);

/// 32 bytes at the start of every block. `block_checksum` is FNV-1a
/// over bytes [8, block_bytes) of the block — everything after the
/// checksum field itself — so no header field or payload byte escapes
/// verification. `block_id` is the block's own index (a pread that
/// lands in the wrong place fails the identity check even if the
/// foreign block's checksum is internally consistent). `first_record`
/// is the global record index of the payload's first record (the CSR
/// coordinate system): a block's payload covers global records
/// [first_record, first_record + record_count).
struct BlockHeader {
  std::uint64_t block_checksum;
  std::uint32_t block_id;
  std::uint32_t first_vertex;  ///< vertex owning the first payload record
  std::uint32_t vertex_count;  ///< distinct vertices with >=1 record here
  std::uint32_t record_count;
  std::uint64_t first_record;
};
static_assert(sizeof(BlockHeader) == 32);

/// One footer entry per block (block id implicit by position) — the
/// RAM-resident index the reader navigates with, so locating a run
/// never touches a block it will not read.
struct BlockIndexEntry {
  std::int64_t first_record;
  std::uint32_t first_vertex;
  std::uint32_t record_count;
};
static_assert(sizeof(BlockIndexEntry) == 16);

#pragma pack(pop)

/// Payload capacity of one block.
[[nodiscard]] constexpr std::size_t block_payload_bytes(std::size_t block_bytes) noexcept {
  return block_bytes - sizeof(BlockHeader);
}

/// Records of W that fit in one block's payload.
template <Weight W>
[[nodiscard]] constexpr std::size_t block_capacity_records(std::size_t block_bytes) noexcept {
  return block_payload_bytes(block_bytes) / sizeof(graph::Neighbor<W>);
}

/// Smallest block size the writer accepts: room for the header plus at
/// least one record of the widest supported weight (double: 12 bytes,
/// padded to 16 by Neighbor's alignment).
inline constexpr std::size_t kMinBlockBytes = 64;
inline constexpr std::size_t kDefaultBlockBytes = 1u << 16;  ///< 64 KiB

}  // namespace cachegraph::store
