// write_blocked — serializes an AdjacencyArray into the blocked
// on-disk format (format.hpp).
//
// Packing policy: blocks hold whole-vertex neighbor runs. A run that
// does not fit in the current block's remaining payload starts a new
// block (padding the old one with zeros) — locality over density,
// exactly the paper's trade. The one exception is a run larger than an
// entire block's payload: it spans consecutive blocks at record
// granularity, because the alternative (unbounded block size) would
// break the fixed frame budget.
//
// Durability: the file streams to `path + ".tmp"`, is fsync'd, then
// commits via io::commit_rename (rename + parent-directory fsync) —
// the same discipline as ResultCache snapshots, so a crash leaves
// either the previous complete file or the new one, never a torn mix.
#pragma once

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "cachegraph/common/atomic_file.hpp"
#include "cachegraph/common/checksum.hpp"
#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/reliability/status.hpp"
#include "cachegraph/store/format.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace cachegraph::store {

struct WriteOptions {
  std::size_t block_bytes = kDefaultBlockBytes;
};

namespace detail {

/// The packing plan: everything the header and footer need, computed
/// before a single byte is written.
struct PackPlan {
  std::vector<std::uint32_t> start_block;   // vertex -> first block of its run
  std::vector<BlockIndexEntry> blocks;      // block -> {first_record, first_vertex, count}
  std::vector<std::uint32_t> vertex_count;  // block -> distinct vertices with records here
};

template <Weight W>
[[nodiscard]] PackPlan pack_blocks(const graph::AdjacencyArray<W>& g, std::size_t capacity) {
  PackPlan plan;
  const vertex_t n = g.num_vertices();
  plan.start_block.assign(static_cast<std::size_t>(n), kNoBlock);

  std::size_t cur_count = 0;  // records in the currently open block
  bool open = false;
  const auto open_block = [&](index_t first_record, vertex_t first_vertex) {
    plan.blocks.push_back(BlockIndexEntry{first_record, static_cast<std::uint32_t>(first_vertex),
                                          0});
    plan.vertex_count.push_back(0);
    cur_count = 0;
    open = true;
  };
  const auto close_block = [&] {
    plan.blocks.back().record_count = static_cast<std::uint32_t>(cur_count);
    open = false;
  };

  for (vertex_t v = 0; v < n; ++v) {
    const auto deg = static_cast<std::size_t>(g.out_degree(v));
    if (deg == 0) continue;  // start_block stays kNoBlock
    if (open && cur_count + deg > capacity) close_block();
    if (!open) open_block(g.record_offset(v), v);
    plan.start_block[static_cast<std::size_t>(v)] =
        static_cast<std::uint32_t>(plan.blocks.size() - 1);
    ++plan.vertex_count.back();
    std::size_t rem = deg;
    std::size_t take = std::min(rem, capacity - cur_count);
    cur_count += take;
    rem -= take;
    while (rem > 0) {  // oversized run: continue into fresh blocks
      close_block();
      open_block(g.record_offset(v) + static_cast<index_t>(deg - rem), v);
      ++plan.vertex_count.back();
      take = std::min(rem, capacity);
      cur_count = take;
      rem -= take;
    }
  }
  if (open) close_block();
  return plan;
}

inline void append_bytes(std::vector<std::byte>& out, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::byte*>(data);
  out.insert(out.end(), p, p + size);
}

}  // namespace detail

/// Writes `g` to `path` in the blocked format. INVALID_ARGUMENT for an
/// unusable block size; RESOURCE_EXHAUSTED for I/O failures (tmp file
/// removed, any previous file at `path` left intact).
template <Weight W>
[[nodiscard]] reliability::Status write_blocked(const std::filesystem::path& path,
                                                const graph::AdjacencyArray<W>& g,
                                                WriteOptions opt = {}) {
  if (opt.block_bytes < kMinBlockBytes || opt.block_bytes > (1u << 30)) {
    return reliability::invalid_argument("block_bytes out of range: " +
                                         std::to_string(opt.block_bytes));
  }
  const std::size_t capacity = block_capacity_records<W>(opt.block_bytes);
  if (capacity == 0) {
    return reliability::invalid_argument("block_bytes too small for one record");
  }

  detail::PackPlan plan = detail::pack_blocks(g, capacity);
  if (plan.blocks.size() >= kNoBlock) {
    return reliability::invalid_argument("graph needs too many blocks for this block size");
  }

  const vertex_t n = g.num_vertices();
  FileHeader header{};
  std::memcpy(header.magic, kStoreMagic, sizeof(header.magic));
  header.version = kStoreVersion;
  header.weight_kind = weight_kind<W>();
  header.num_vertices = n;
  header.num_records = g.num_edges();
  header.block_bytes = static_cast<std::uint32_t>(opt.block_bytes);
  header.num_blocks = static_cast<std::uint32_t>(plan.blocks.size());
  header.header_checksum = fnv1a64(&header, sizeof(header) - sizeof(header.header_checksum));

  const std::string tmp = path.string() + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return reliability::resource_exhausted("cannot open " + tmp + " for writing");
  }
  const auto fail = [&](const std::string& what) {
    std::fclose(f);
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return reliability::resource_exhausted(what + " writing " + path.string());
  };
  const auto put = [&](const void* data, std::size_t size) {
    return std::fwrite(data, 1, size, f) == size;
  };

  if (!put(&header, sizeof(header))) return fail("I/O failure");

  // Blocks: assembled one at a time in a reusable buffer so the writer
  // streams in O(block_bytes) memory regardless of graph size.
  std::vector<std::byte> block(opt.block_bytes);
  const std::span<const graph::Neighbor<W>> records = g.records();
  for (std::size_t b = 0; b < plan.blocks.size(); ++b) {
    const BlockIndexEntry& e = plan.blocks[b];
    std::memset(block.data(), 0, block.size());
    BlockHeader bh{};
    bh.block_id = static_cast<std::uint32_t>(b);
    bh.first_vertex = e.first_vertex;
    bh.vertex_count = plan.vertex_count[b];
    bh.record_count = e.record_count;
    bh.first_record = static_cast<std::uint64_t>(e.first_record);
    std::memcpy(block.data() + sizeof(BlockHeader),
                records.data() + e.first_record,
                std::size_t{e.record_count} * sizeof(graph::Neighbor<W>));
    std::memcpy(block.data(), &bh, sizeof(bh));
    const std::uint64_t sum = fnv1a64(block.data() + sizeof(bh.block_checksum),
                                      block.size() - sizeof(bh.block_checksum));
    std::memcpy(block.data(), &sum, sizeof(sum));
    if (!put(block.data(), block.size())) return fail("I/O failure");
  }

  // Footer: offsets, start_block, block index, then its checksum.
  std::vector<std::byte> footer;
  footer.reserve(static_cast<std::size_t>(n + 1) * sizeof(index_t) +
                 static_cast<std::size_t>(n) * sizeof(std::uint32_t) +
                 plan.blocks.size() * sizeof(BlockIndexEntry));
  for (vertex_t v = 0; v <= n; ++v) {
    const index_t off = g.record_offset(v);
    detail::append_bytes(footer, &off, sizeof(off));
  }
  if (n > 0) {
    detail::append_bytes(footer, plan.start_block.data(),
                         plan.start_block.size() * sizeof(std::uint32_t));
  }
  if (!plan.blocks.empty()) {
    detail::append_bytes(footer, plan.blocks.data(),
                         plan.blocks.size() * sizeof(BlockIndexEntry));
  }
  const std::uint64_t footer_sum = fnv1a64(footer.data(), footer.size());
  if (!put(footer.data(), footer.size()) || !put(&footer_sum, sizeof(footer_sum))) {
    return fail("I/O failure");
  }

  bool ok = std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  ok = ::fsync(fileno(f)) == 0 && ok;
#endif
  if (!ok) return fail("flush/fsync failure");
  if (std::fclose(f) != 0) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return reliability::resource_exhausted("close failure writing " + path.string());
  }
  return io::commit_rename(tmp, path);
}

}  // namespace cachegraph::store
