// BlockCache — a sharded, pinning pool of DRAM frames over a
// BlockSource.
//
// This is the DRAM:SSD replay of the paper's cache:DRAM thesis: the
// frame budget is the "cache size", a block fault is the "miss", and
// the blocked layout's whole-vertex runs are what make one fault serve
// a whole neighbor scan. The design follows the CAVE-style concurrent
// block cache (see PAPERS.md / SNIPPETS.md): a fixed frame budget is
// split across shards (block id % shards), each shard owning its own
// mutex, LRU list, and residency map, so concurrent faults on
// different shards never contend.
//
// Pinning protocol:
//   - pin(id) returns an RAII BlockRef; while any ref to a block is
//     alive its frame cannot be evicted or reused.
//   - a miss inserts a "filling" placeholder, drops the shard lock for
//     the duration of the read + checksum verify (I/O never holds a
//     lock), then publishes the frame and wakes waiters. Concurrent
//     pins of the same block wait on the shard condvar instead of
//     issuing duplicate reads.
//   - when every frame in a shard is pinned or filling, a fault blocks
//     on the condvar until an unpin or a completed fill frees one.
//     This is deadlock-free as long as callers never hold a pin while
//     faulting another block in the same shard — OutOfCoreGraph's
//     iteration unpins block b before pinning b+1 for exactly this
//     reason.
//
// Failure mapping: a short read, a checksum mismatch, or a block-id
// mismatch is DATA_LOSS naming the block id — the fill is abandoned,
// the placeholder removed, and waiters re-dispatched, so one corrupt
// block poisons requests that touch it and nothing else.
//
// The frame budget/shard split and the shard hash are shared with
// memsim::BlockIoSim (same header), so the simulator's fault counts
// match this cache exactly on serial traces.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cachegraph/memsim/block_io.hpp"
#include "cachegraph/reliability/status.hpp"
#include "cachegraph/store/block_source.hpp"
#include "cachegraph/store/format.hpp"

namespace cachegraph::store {

class BlockCache;

/// RAII pin on one cached block: while alive, the frame's bytes are
/// immutable and resident. Cheap to move, not copyable; destruction
/// unpins (and may wake a fault waiting for a free frame).
class BlockRef {
 public:
  BlockRef() = default;
  BlockRef(BlockRef&& other) noexcept { swap(other); }
  BlockRef& operator=(BlockRef&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  BlockRef(const BlockRef&) = delete;
  BlockRef& operator=(const BlockRef&) = delete;
  ~BlockRef() { release(); }

  [[nodiscard]] explicit operator bool() const noexcept { return cache_ != nullptr; }
  [[nodiscard]] std::uint32_t id() const noexcept { return header().block_id; }
  [[nodiscard]] const BlockHeader& header() const noexcept {
    return *reinterpret_cast<const BlockHeader*>(data_);
  }
  /// First payload byte (record 0 of this block). 16-byte aligned.
  [[nodiscard]] const std::byte* payload() const noexcept { return data_ + sizeof(BlockHeader); }

  void release() noexcept;

 private:
  friend class BlockCache;
  BlockRef(BlockCache* cache, std::uint32_t shard, std::uint32_t frame,
           const std::byte* data) noexcept
      : cache_(cache), shard_(shard), frame_(frame), data_(data) {}
  void swap(BlockRef& other) noexcept {
    std::swap(cache_, other.cache_);
    std::swap(shard_, other.shard_);
    std::swap(frame_, other.frame_);
    std::swap(data_, other.data_);
  }

  BlockCache* cache_ = nullptr;
  std::uint32_t shard_ = 0;
  std::uint32_t frame_ = 0;
  const std::byte* data_ = nullptr;
};

class BlockCache {
 public:
  struct Config {
    std::size_t capacity_blocks = 64;  ///< total frame budget (clamped to num_blocks)
    std::size_t shards = 0;            ///< 0 = auto (memsim::resolve_block_shards)
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t fill_failures = 0;
    std::uint64_t pinned_high_water = 0;
    std::uint64_t pinned_now = 0;
    std::size_t cached_blocks = 0;
    std::size_t capacity_blocks = 0;
    std::size_t shards = 0;

    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  /// `source` must outlive the cache. `num_blocks` bounds valid ids and
  /// clamps the frame budget (never more frames than blocks exist).
  BlockCache(BlockSource& source, std::uint32_t block_bytes, std::uint32_t num_blocks,
             Config cfg);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Pins block `block_id`, faulting it in through the source on a
  /// miss. Blocks when the shard has no evictable frame. Fails with
  /// DATA_LOSS (naming the block) when the block cannot be read or
  /// fails verification.
  [[nodiscard]] reliability::Expected<BlockRef> pin(std::uint32_t block_id);

  [[nodiscard]] Stats stats() const;
  void reset_stats();

  /// Pushes the current stats into obs::MetricsRegistry gauges
  /// (store.cache.*) — the serving loop calls this on its metrics tick.
  void publish_gauges() const;

  [[nodiscard]] std::size_t capacity_blocks() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t num_shards() const noexcept { return shards_.size(); }
  [[nodiscard]] std::uint32_t block_bytes() const noexcept { return block_bytes_; }

 private:
  friend class BlockRef;

  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Frame {
    enum class State : std::uint8_t { kEmpty, kFilling, kValid };
    std::unique_ptr<std::byte[]> data;
    std::uint32_t block_id = kNoBlock;
    State state = State::kEmpty;
    std::uint32_t pins = 0;
    std::uint32_t lru_prev = kNone;
    std::uint32_t lru_next = kNone;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::vector<Frame> frames;
    std::unordered_map<std::uint32_t, std::uint32_t> resident;  // block -> frame
    std::uint32_t lru_head = kNone;  // next victim
    std::uint32_t lru_tail = kNone;  // most recently unpinned
    std::vector<std::uint32_t> free_frames;
  };

  void unpin(std::uint32_t shard, std::uint32_t frame) noexcept;
  void lru_remove(Shard& sh, std::uint32_t idx) noexcept;
  void lru_push_tail(Shard& sh, std::uint32_t idx) noexcept;
  [[nodiscard]] std::uint32_t lru_pop_head(Shard& sh) noexcept;
  void note_pin() noexcept;

  std::vector<std::unique_ptr<Shard>> shards_;
  BlockSource& source_;
  std::uint32_t block_bytes_;
  std::uint32_t num_blocks_;
  std::size_t capacity_;

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
  mutable std::atomic<std::uint64_t> fill_failures_{0};
  mutable std::atomic<std::uint64_t> pinned_now_{0};
  mutable std::atomic<std::uint64_t> pinned_high_water_{0};
};

inline void BlockRef::release() noexcept {
  if (cache_ != nullptr) {
    cache_->unpin(shard_, frame_);
    cache_ = nullptr;
    data_ = nullptr;
  }
}

}  // namespace cachegraph::store
