// OutOfCoreGraph — an AdjacencyArray that does not fit in RAM.
//
// Satisfies the same GraphRep surface as the in-memory layouts
// (`for_neighbors`, `map_buffers`, `footprint_bytes`), so search_core,
// QueryEngine, BatchEngine, and the analytics Workspace compose with
// it unchanged. Neighbor scans fault blocks on demand through a
// BlockCache; the RAM-resident footer index (CSR offsets + vertex →
// block) makes every scan touch exactly the blocks holding the run.
//
// Pins are scoped to one block at a time: a run spanning blocks
// b, b+1, ... unpins b before pinning b+1, which is what makes a
// 1-frame cache budget deadlock-free (see block_cache.hpp).
//
// Error model: `for_neighbors` shares its signature with in-memory
// graphs, which cannot fail — so a block that cannot be read or fails
// verification throws reliability::DataLossError (naming the block).
// The hardened query surfaces (try_serve / try_run) catch it and
// return a DATA_LOSS Status; a corrupt block therefore poisons the
// requests that touch it, never the answer.
//
// When a memsim::BlockIoSim is attached, every pin is mirrored into
// the simulator (serialized by an internal mutex); on a serial
// workload with matching budget/shards the simulated fault count
// equals the cache's real miss count exactly.
#pragma once

#include <cstring>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/memsim/block_io.hpp"
#include "cachegraph/memsim/mem_policy.hpp"
#include "cachegraph/reliability/status.hpp"
#include "cachegraph/store/block_cache.hpp"
#include "cachegraph/store/blocked_file.hpp"

namespace cachegraph::store {

template <Weight W>
class OutOfCoreGraph {
 public:
  using weight_type = W;

  /// `file` and `cache` must outlive the graph; the cache must be
  /// built over `file.source()` with `file.block_bytes()`.
  OutOfCoreGraph(const BlockedFile<W>& file, BlockCache& cache) noexcept
      : file_(&file), cache_(&cache) {}

  [[nodiscard]] vertex_t num_vertices() const noexcept { return file_->num_vertices(); }
  [[nodiscard]] index_t num_edges() const noexcept { return file_->num_records(); }
  [[nodiscard]] index_t out_degree(vertex_t v) const noexcept { return file_->out_degree(v); }
  [[nodiscard]] index_t record_offset(vertex_t v) const noexcept {
    return file_->record_offset(v);
  }

  /// Mirror every pin into `sim` (pass nullptr to detach). The mirror
  /// is mutex-serialized; attach only for single-threaded replays
  /// where the predicted fault count is meaningful.
  void attach_sim(memsim::BlockIoSim* sim) noexcept { sim_ = sim; }

  template <memsim::MemPolicy Mem, typename Fn>
  void for_neighbors(vertex_t v, Mem& mem, Fn&& fn) const {
    const index_t r0 = file_->record_offset(v);
    const index_t r1 = file_->record_offset(v + 1);
    mem.read(file_->offsets_data() + v);
    mem.read(file_->offsets_data() + v + 1);
    if (r0 == r1) return;
    std::uint32_t b = file_->start_block(v);
    index_t rec = r0;
    while (rec < r1) {
      const BlockRef ref = pin_checked(b);  // unpinned before the next iteration's pin
      const BlockIndexEntry& e = file_->block_entry(b);
      const index_t block_end = e.first_record + e.record_count;
      const index_t take = (r1 < block_end ? r1 : block_end) - rec;
      const auto* p =
          reinterpret_cast<const graph::Neighbor<W>*>(ref.payload()) + (rec - e.first_record);
      for (index_t i = 0; i < take; ++i) {
        mem.read(p + i);
        fn(p[i]);
      }
      rec += take;
      ++b;
    }
  }

  /// Scratch for the span surface: holds the pin (single-block runs)
  /// or an assembled copy (runs spanning blocks). Reuse across calls;
  /// each call invalidates the previous span.
  struct PinnedRun {
    BlockRef ref;
    std::vector<graph::Neighbor<W>> scratch;
  };

  /// The `neighbors(v)` span surface of AdjacencyArray, with the pin's
  /// lifetime made explicit: the span is valid while `run` is alive
  /// and unmodified. Single-block runs are zero-copy views into the
  /// cached frame; spanning runs are assembled into `run.scratch`.
  [[nodiscard]] std::span<const graph::Neighbor<W>> neighbors(vertex_t v, PinnedRun& run) const {
    run.ref.release();
    const index_t r0 = file_->record_offset(v);
    const index_t r1 = file_->record_offset(v + 1);
    if (r0 == r1) return {};
    std::uint32_t b = file_->start_block(v);
    {
      BlockRef ref = pin_checked(b);
      const BlockIndexEntry& e = file_->block_entry(b);
      if (r1 <= e.first_record + e.record_count) {  // whole run in one block
        const auto* p = reinterpret_cast<const graph::Neighbor<W>*>(ref.payload()) +
                        (r0 - e.first_record);
        run.ref = std::move(ref);
        return {p, static_cast<std::size_t>(r1 - r0)};
      }
    }
    run.scratch.clear();
    run.scratch.reserve(static_cast<std::size_t>(r1 - r0));
    memsim::NullMem mem;
    for_neighbors(v, mem, [&](const graph::Neighbor<W>& nb) { run.scratch.push_back(nb); });
    return {run.scratch.data(), run.scratch.size()};
  }

  /// Registers the RAM-resident index with a tracing memory model;
  /// block payloads are modeled by BlockIoSim, not the DRAM hierarchy.
  template <memsim::MemPolicy Mem>
  void map_buffers(Mem& mem) const {
    if constexpr (Mem::tracing) {
      file_->map_buffers(mem);
    }
  }

  /// Resident bytes: navigation metadata plus the cache's frame budget
  /// — the point of the exercise is that this is much smaller than the
  /// file.
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return file_->metadata_bytes() +
           cache_->capacity_blocks() * std::size_t{cache_->block_bytes()};
  }

  [[nodiscard]] const BlockedFile<W>& file() const noexcept { return *file_; }
  [[nodiscard]] BlockCache& cache() const noexcept { return *cache_; }

 private:
  [[nodiscard]] BlockRef pin_checked(std::uint32_t b) const {
    if (sim_ != nullptr) {
      const std::lock_guard<std::mutex> lock(sim_mu_);
      sim_->access(b);
    }
    auto ref = cache_->pin(b);
    if (!ref) throw reliability::DataLossError(ref.status().message());
    // Defense in depth: the frame's own header must agree with the
    // (independently checksummed) footer index before we address
    // records through it.
    const BlockHeader& h = ref->header();
    const BlockIndexEntry& e = file_->block_entry(b);
    if (h.first_record != static_cast<std::uint64_t>(e.first_record) ||
        h.record_count != e.record_count) {
      throw reliability::DataLossError("block " + std::to_string(b) +
                                       " header disagrees with the footer index");
    }
    return std::move(*ref);
  }

  const BlockedFile<W>* file_;
  BlockCache* cache_;
  memsim::BlockIoSim* sim_ = nullptr;
  mutable std::mutex sim_mu_;
};

}  // namespace cachegraph::store
