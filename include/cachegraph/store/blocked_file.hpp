// BlockedFile — the validated, open handle on a blocked graph file.
//
// open() reads and verifies the header and footer once, loads the
// RAM-resident index (CSR offsets, vertex → block, block → record
// range), and opens the chosen BlockSource backend. After a
// successful open the navigation metadata is trusted: every block id
// and record range the reader will ever ask for has been
// cross-checked against the header, so the only failures left are
// per-block ones at fault time (caught by the BlockCache's checksum).
//
// Failure mapping at open:
//   INVALID_ARGUMENT  not this format, wrong version, or a weight
//                     type mismatch (an int32 file opened as double) —
//                     the file may be fine, the request is wrong
//   DATA_LOSS         truncation, checksum mismatch, or an index that
//                     contradicts itself — the file is damaged and
//                     must be rewritten
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cachegraph/common/types.hpp"
#include "cachegraph/reliability/status.hpp"
#include "cachegraph/store/block_source.hpp"
#include "cachegraph/store/format.hpp"

namespace cachegraph::store {

namespace detail {

/// The weight-agnostic part of an opened file: everything except the
/// record-size checks lives in block_source.cpp so it compiles once.
struct RawBlockedFile {
  FileHeader header{};
  std::vector<index_t> offsets;           // (n + 1) CSR offsets
  std::vector<std::uint32_t> start_block; // vertex -> first block (kNoBlock if deg 0)
  std::vector<BlockIndexEntry> blocks;    // block -> {first_record, first_vertex, count}
  std::unique_ptr<BlockSource> source;
};

[[nodiscard]] reliability::Expected<RawBlockedFile> open_raw(const std::filesystem::path& path,
                                                             Backend backend);

}  // namespace detail

template <Weight W>
class BlockedFile {
 public:
  [[nodiscard]] static reliability::Expected<std::unique_ptr<BlockedFile>> open(
      const std::filesystem::path& path, Backend backend) {
    auto raw = detail::open_raw(path, backend);
    if (!raw) return raw.status();
    if (raw->header.weight_kind != weight_kind<W>()) {
      return reliability::invalid_argument(
          "blocked file " + path.string() + " holds weight kind " +
          std::to_string(raw->header.weight_kind) + ", not " +
          std::to_string(weight_kind<W>()));
    }
    // Record-size-aware bound: a block's payload must fit its frame.
    // open_raw validated everything weight-agnostic already.
    const std::size_t capacity = block_capacity_records<W>(raw->header.block_bytes);
    for (const BlockIndexEntry& e : raw->blocks) {
      if (e.record_count > capacity) {
        return reliability::data_loss("blocked file " + path.string() +
                                      " footer inconsistent: a block claims " +
                                      std::to_string(e.record_count) +
                                      " records, payload capacity is " +
                                      std::to_string(capacity));
      }
    }
    return std::unique_ptr<BlockedFile>(new BlockedFile(std::move(*raw)));
  }

  [[nodiscard]] vertex_t num_vertices() const noexcept { return static_cast<vertex_t>(raw_.header.num_vertices); }
  [[nodiscard]] index_t num_records() const noexcept { return raw_.header.num_records; }
  [[nodiscard]] std::uint32_t block_bytes() const noexcept { return raw_.header.block_bytes; }
  [[nodiscard]] std::uint32_t num_blocks() const noexcept { return raw_.header.num_blocks; }

  [[nodiscard]] index_t record_offset(vertex_t v) const noexcept {
    return raw_.offsets[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] index_t out_degree(vertex_t v) const noexcept {
    const auto u = static_cast<std::size_t>(v);
    return raw_.offsets[u + 1] - raw_.offsets[u];
  }
  [[nodiscard]] std::uint32_t start_block(vertex_t v) const noexcept {
    return raw_.start_block[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const BlockIndexEntry& block_entry(std::uint32_t b) const noexcept {
    return raw_.blocks[b];
  }
  [[nodiscard]] const index_t* offsets_data() const noexcept { return raw_.offsets.data(); }

  [[nodiscard]] BlockSource& source() const noexcept { return *raw_.source; }

  /// RAM-resident navigation metadata (the part that is not the cache).
  [[nodiscard]] std::size_t metadata_bytes() const noexcept {
    return raw_.offsets.size() * sizeof(index_t) +
           raw_.start_block.size() * sizeof(std::uint32_t) +
           raw_.blocks.size() * sizeof(BlockIndexEntry);
  }

  /// Registers the RAM-resident index with a tracing memory model
  /// (block payloads live in cache frames and are modeled by
  /// memsim::BlockIoSim instead).
  template <typename Mem>
  void map_buffers(Mem& mem) const {
    mem.map_buffer(raw_.offsets.data(), raw_.offsets.size() * sizeof(index_t));
    if (!raw_.start_block.empty()) {
      mem.map_buffer(raw_.start_block.data(), raw_.start_block.size() * sizeof(std::uint32_t));
    }
    if (!raw_.blocks.empty()) {
      mem.map_buffer(raw_.blocks.data(), raw_.blocks.size() * sizeof(BlockIndexEntry));
    }
  }

 private:
  explicit BlockedFile(detail::RawBlockedFile raw) : raw_(std::move(raw)) {}

  detail::RawBlockedFile raw_;
};

}  // namespace cachegraph::store
