// Block-size selection heuristic (Section 3.1, Equation 13).
//
//   1. Apply the 2:1 rule of thumb [Hennessy & Patterson] to discount
//      conflict misses in low-associativity caches: a direct-mapped
//      cache of size N misses about as often as a 2-way cache of size
//      N/2, so caches below 4-way count at half capacity (half once —
//      not once per associativity doubling).
//   2. Choose the largest B with 3*B^2*d <= C_adjusted — the working
//      set of the FW kernel is 3 tiles.
//
// The paper stresses (Sec. 3.1.2.2) that the best block size should be
// confirmed by a sweep over every cache level and the TLB;
// `bench_ablation_blocksize` does exactly that.
#pragma once

#include <cstddef>

#include "cachegraph/memsim/config.hpp"

namespace cachegraph::layout {

/// Effective capacity of a cache after the 2:1 associativity rule,
/// normalized to 4-way behaviour.
[[nodiscard]] std::size_t effective_capacity(const memsim::CacheConfig& cache);

/// Largest B with 3*B*B*elem_bytes <= effective_capacity(cache),
/// optionally rounded down to a power of two (the recursive
/// implementation prefers power-of-two blocks). Never returns less
/// than 2.
[[nodiscard]] std::size_t pick_block_size(const memsim::CacheConfig& cache,
                                          std::size_t elem_bytes,
                                          bool round_to_pow2 = true);

}  // namespace cachegraph::layout
