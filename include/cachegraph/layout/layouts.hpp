// Matrix data layouts (Section 3.1.2.2 / 3.1.3 of the paper).
//
// All three layouts expose a common interface over an N×N matrix that
// is logically partitioned into B×B tiles (N must be a multiple of B;
// see padding.hpp for the padding rules):
//
//   offset(i, j)        -> linear index of element (i, j)
//   tile_offset(bi, bj) -> linear index of the first element of tile
//                          (bi, bj)
//   tile_row_stride()   -> distance between consecutive rows *within*
//                          a tile (== N for row-major, == B for BDL
//                          and Morton, whose tiles are contiguous)
//
// The FW kernels only ever touch tiles through (tile_offset,
// tile_row_stride), so one kernel serves every layout:
//   - RowMajorLayout: the usual layout; a tile is a strided window.
//   - BlockDataLayout: tiles contiguous, tiles ordered row-major
//     (Fig. 6).
//   - MortonLayout: tiles contiguous, tiles ordered by Z-Morton index
//     (Fig. 5) — matches the recursive algorithm's access pattern.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>

#include "cachegraph/common/check.hpp"

namespace cachegraph::layout {

enum class Kind { kRowMajor, kBlock, kMorton };

[[nodiscard]] constexpr const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kRowMajor: return "row-major";
    case Kind::kBlock: return "block (BDL)";
    case Kind::kMorton: return "z-morton";
  }
  return "?";
}

namespace detail {
/// Spread the low 16 bits of x so bit k lands at position 2k
/// (constant-time interleave; grids up to 65536x65536 blocks).
[[nodiscard]] constexpr std::size_t spread_bits16(std::size_t x) noexcept {
  x &= 0xFFFFu;
  x = (x | (x << 8)) & 0x00FF00FFu;
  x = (x | (x << 4)) & 0x0F0F0F0Fu;
  x = (x | (x << 2)) & 0x33333333u;
  x = (x | (x << 1)) & 0x55555555u;
  return x;
}

/// Interleave the bits of (bi, bj) into the Z-Morton tile index with bi
/// contributing the higher bit of each pair: quadrant order NW, NE, SW,
/// SE as in Fig. 5. Called per element during layout conversion, so it
/// must be O(1), not a loop over bit positions.
[[nodiscard]] constexpr std::size_t morton_index(std::size_t bi, std::size_t bj) noexcept {
  return (spread_bits16(bi) << 1) | spread_bits16(bj);
}

[[nodiscard]] constexpr bool is_pow2(std::size_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}
}  // namespace detail

class RowMajorLayout {
 public:
  static constexpr Kind kind = Kind::kRowMajor;

  RowMajorLayout(std::size_t n, std::size_t block) : n_(n), block_(block) {
    CG_CHECK(block > 0 && n % block == 0, "N must be a multiple of the block size");
  }
  /// Un-tiled view (baseline algorithms): one N×N "tile".
  explicit RowMajorLayout(std::size_t n) : RowMajorLayout(n, n == 0 ? 1 : n) {}

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t block() const noexcept { return block_; }
  [[nodiscard]] std::size_t num_blocks() const noexcept { return n_ / block_; }
  [[nodiscard]] std::size_t storage_elements() const noexcept { return n_ * n_; }

  [[nodiscard]] std::size_t offset(std::size_t i, std::size_t j) const noexcept {
    return i * n_ + j;
  }
  [[nodiscard]] std::size_t tile_offset(std::size_t bi, std::size_t bj) const noexcept {
    return bi * block_ * n_ + bj * block_;
  }
  [[nodiscard]] std::size_t tile_row_stride() const noexcept { return n_; }

 private:
  std::size_t n_;
  std::size_t block_;
};

class BlockDataLayout {
 public:
  static constexpr Kind kind = Kind::kBlock;

  BlockDataLayout(std::size_t n, std::size_t block) : n_(n), block_(block) {
    CG_CHECK(block > 0 && n % block == 0, "N must be a multiple of the block size");
  }

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t block() const noexcept { return block_; }
  [[nodiscard]] std::size_t num_blocks() const noexcept { return n_ / block_; }
  [[nodiscard]] std::size_t storage_elements() const noexcept { return n_ * n_; }

  [[nodiscard]] std::size_t offset(std::size_t i, std::size_t j) const noexcept {
    const std::size_t bi = i / block_, bj = j / block_;
    return tile_offset(bi, bj) + (i % block_) * block_ + (j % block_);
  }
  [[nodiscard]] std::size_t tile_offset(std::size_t bi, std::size_t bj) const noexcept {
    return (bi * num_blocks() + bj) * block_ * block_;
  }
  [[nodiscard]] std::size_t tile_row_stride() const noexcept { return block_; }

 private:
  std::size_t n_;
  std::size_t block_;
};

class MortonLayout {
 public:
  static constexpr Kind kind = Kind::kMorton;

  MortonLayout(std::size_t n, std::size_t block) : n_(n), block_(block) {
    CG_CHECK(block > 0 && n % block == 0, "N must be a multiple of the block size");
    CG_CHECK(detail::is_pow2(n / block), "Morton layout needs a power-of-two block grid");
    CG_CHECK(n / block <= 65536, "Morton index spreads 16 bits per axis");
  }

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t block() const noexcept { return block_; }
  [[nodiscard]] std::size_t num_blocks() const noexcept { return n_ / block_; }
  [[nodiscard]] std::size_t storage_elements() const noexcept { return n_ * n_; }

  [[nodiscard]] std::size_t offset(std::size_t i, std::size_t j) const noexcept {
    const std::size_t bi = i / block_, bj = j / block_;
    return tile_offset(bi, bj) + (i % block_) * block_ + (j % block_);
  }
  [[nodiscard]] std::size_t tile_offset(std::size_t bi, std::size_t bj) const noexcept {
    return detail::morton_index(bi, bj) * block_ * block_;
  }
  [[nodiscard]] std::size_t tile_row_stride() const noexcept { return block_; }

 private:
  std::size_t n_;
  std::size_t block_;
};

template <typename L>
concept MatrixLayout = requires(const L l, std::size_t i) {
  { l.n() } -> std::convertible_to<std::size_t>;
  { l.block() } -> std::convertible_to<std::size_t>;
  { l.num_blocks() } -> std::convertible_to<std::size_t>;
  { l.storage_elements() } -> std::convertible_to<std::size_t>;
  { l.offset(i, i) } -> std::convertible_to<std::size_t>;
  { l.tile_offset(i, i) } -> std::convertible_to<std::size_t>;
  { l.tile_row_stride() } -> std::convertible_to<std::size_t>;
};

static_assert(MatrixLayout<RowMajorLayout>);
static_assert(MatrixLayout<BlockDataLayout>);
static_assert(MatrixLayout<MortonLayout>);

}  // namespace cachegraph::layout
