// Padding rules (Section 4.1, "Data Layout Issues").
//
// Both optimized FW implementations pad the input with +inf:
//   - the tiled implementation needs N to be a multiple of the block
//     size B;
//   - the recursive implementation needs N = B * 2^k so the matrix can
//     be halved down to the base case.
// Padding with inf<W>() is inert under min/saturating-plus, so padded
// rows/columns never alter real shortest paths.
#pragma once

#include <cstddef>

#include "cachegraph/common/check.hpp"

namespace cachegraph::layout {

/// Smallest multiple of `block` that is >= n.
[[nodiscard]] constexpr std::size_t padded_size_tiled(std::size_t n, std::size_t block) {
  CG_CHECK(block > 0);
  return (n + block - 1) / block * block;
}

/// Smallest `block * 2^k` that is >= n.
[[nodiscard]] constexpr std::size_t padded_size_recursive(std::size_t n, std::size_t block) {
  CG_CHECK(block > 0);
  std::size_t p = block;
  while (p < n) p *= 2;
  return p;
}

}  // namespace cachegraph::layout
