// Per-replica health state machine: a circuit breaker for shard
// replicas.
//
//              failure            quarantine_after
//   healthy ──────────▶ suspect ──────consecutive────▶ quarantined
//      ▲                   │                               │
//      │      success      │                 probation elapses
//      ├───────────────────┘                               │
//      │                                                   ▼
//      │        probe succeeds                          probing
//      └────────────────────────────────────────────────(half-open,
//                probe fails ⇒ re-quarantined,           one ticket)
//                probation doubles
//
// The machine never sees requests — the Router reports outcomes
// (`on_success` / `on_failure`) and asks permission to probe
// (`try_begin_probe`). Quarantine carries a probation interval with
// deterministic seeded exponential backoff (base · multiplier^(k-1),
// capped, jittered from the seed so two replicas quarantined in the
// same tick don't probe in the same tick). Half-open is a single CAS
// ticket: exactly one request probes a quarantined replica per
// probation window; everyone else keeps treating it as down until the
// probe reports.
//
// All time is passed in explicitly (steady_clock::time_point), so
// tests drive the machine with a synthetic clock and pin the exact
// probation schedule.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/rng.hpp"
#include "cachegraph/reliability/status.hpp"

namespace cachegraph::serving {

enum class ReplicaState : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kQuarantined = 2,
  kProbing = 3,
};

[[nodiscard]] constexpr const char* to_string(ReplicaState s) noexcept {
  switch (s) {
    case ReplicaState::kHealthy: return "healthy";
    case ReplicaState::kSuspect: return "suspect";
    case ReplicaState::kQuarantined: return "quarantined";
    case ReplicaState::kProbing: return "probing";
  }
  return "?";
}

struct HealthConfig {
  /// Consecutive failures before healthy → suspect (suspect still
  /// serves; it is a leading indicator for gauges/dashboards).
  int suspect_after = 1;
  /// Consecutive failures before quarantine (traffic stops).
  int quarantine_after = 3;
  /// First probation interval; doubles (×multiplier) per consecutive
  /// quarantine, capped at probation_max, jittered ±probation_jitter.
  std::chrono::milliseconds probation_base{50};
  double probation_multiplier = 2.0;
  std::chrono::milliseconds probation_max{2000};
  double probation_jitter = 0.25;
};

/// Which status codes indict the *replica* (as opposed to the client
/// or the request): corrupt blocks, timeouts, exhausted scratch, shed
/// load, and aborted tasks. CANCELLED and INVALID_ARGUMENT never do —
/// the Router additionally exempts DEADLINE_EXCEEDED when the client's
/// real deadline had in fact expired (see Router::probe_replicated).
[[nodiscard]] constexpr bool replica_fault_code(reliability::StatusCode c) noexcept {
  using reliability::StatusCode;
  return c == StatusCode::kDataLoss || c == StatusCode::kDeadlineExceeded ||
         c == StatusCode::kResourceExhausted || c == StatusCode::kOverloaded;
}

class ReplicaHealth {
 public:
  using clock = std::chrono::steady_clock;

  struct Transition {
    ReplicaState from;
    ReplicaState to;
    reliability::StatusCode cause;
  };

  struct Stats {
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t probes = 0;
    std::uint64_t recoveries = 0;
    int consecutive_failures = 0;
  };

  ReplicaHealth(const HealthConfig& cfg, std::uint64_t seed) : cfg_(cfg), rng_(seed) {
    CG_CHECK(cfg.suspect_after >= 1, "suspect_after must be >= 1");
    CG_CHECK(cfg.quarantine_after >= cfg.suspect_after,
             "quarantine_after must be >= suspect_after");
    CG_CHECK(cfg.probation_multiplier >= 1.0, "probation multiplier must be >= 1");
  }

  ReplicaHealth(const ReplicaHealth&) = delete;
  ReplicaHealth& operator=(const ReplicaHealth&) = delete;

  [[nodiscard]] ReplicaState state() const {
    std::lock_guard lk(mu_);
    return state_;
  }

  /// True when ordinary traffic may be routed here (healthy or
  /// suspect). Probing replicas serve only their one probe.
  [[nodiscard]] bool available() const {
    std::lock_guard lk(mu_);
    return state_ == ReplicaState::kHealthy || state_ == ReplicaState::kSuspect;
  }

  /// True when a request *could* reach this replica at `now`: it is
  /// available, or quarantined with probation elapsed and no probe in
  /// flight (so the next pick() would claim the half-open ticket).
  [[nodiscard]] bool reachable(clock::time_point now) const {
    std::lock_guard lk(mu_);
    if (state_ == ReplicaState::kHealthy || state_ == ReplicaState::kSuspect) return true;
    return state_ == ReplicaState::kQuarantined && now >= probation_until_;
  }

  /// A served request completed OK. Suspect heals; a probe (or stray
  /// traffic that reached a quarantined replica) recovers it.
  std::optional<Transition> on_success() {
    std::lock_guard lk(mu_);
    ++stats_.successes;
    stats_.consecutive_failures = 0;
    switch (state_) {
      case ReplicaState::kHealthy:
        return std::nullopt;
      case ReplicaState::kSuspect:
        return set_locked(ReplicaState::kHealthy, reliability::StatusCode::kOk);
      case ReplicaState::kProbing:
      case ReplicaState::kQuarantined:
        probe_inflight_ = false;
        ++stats_.recoveries;
        return set_locked(ReplicaState::kHealthy, reliability::StatusCode::kOk);
    }
    return std::nullopt;
  }

  /// A served request failed with a replica-indicting code.
  std::optional<Transition> on_failure(reliability::StatusCode cause, clock::time_point now) {
    std::lock_guard lk(mu_);
    ++stats_.failures;
    if (state_ == ReplicaState::kProbing) {
      // Failed probe: back to quarantine, probation doubles.
      probe_inflight_ = false;
      return quarantine_locked(cause, now);
    }
    if (state_ == ReplicaState::kQuarantined) return std::nullopt;
    ++stats_.consecutive_failures;
    if (stats_.consecutive_failures >= cfg_.quarantine_after) {
      return quarantine_locked(cause, now);
    }
    if (state_ == ReplicaState::kHealthy &&
        stats_.consecutive_failures >= cfg_.suspect_after) {
      return set_locked(ReplicaState::kSuspect, cause);
    }
    return std::nullopt;
  }

  /// Claim the half-open probe ticket: true iff quarantined, probation
  /// has elapsed at `now`, and nobody else holds the ticket. The
  /// caller MUST follow up with on_success / on_failure /
  /// abandon_probe, or the replica stays half-open forever.
  [[nodiscard]] bool try_begin_probe(clock::time_point now) {
    std::lock_guard lk(mu_);
    if (state_ != ReplicaState::kQuarantined || now < probation_until_ || probe_inflight_) {
      return false;
    }
    probe_inflight_ = true;
    state_ = ReplicaState::kProbing;
    ++stats_.probes;
    return true;
  }

  /// The probe resolved with a code that indicts nobody (client
  /// cancel, genuine deadline): return the ticket without doubling
  /// probation.
  void abandon_probe() {
    std::lock_guard lk(mu_);
    if (state_ != ReplicaState::kProbing) return;
    probe_inflight_ = false;
    state_ = ReplicaState::kQuarantined;
  }

  [[nodiscard]] clock::time_point probation_until() const {
    std::lock_guard lk(mu_);
    return probation_until_;
  }

  [[nodiscard]] Stats stats() const {
    std::lock_guard lk(mu_);
    return stats_;
  }

 private:
  std::optional<Transition> set_locked(ReplicaState to, reliability::StatusCode cause) {
    const ReplicaState from = state_;
    state_ = to;
    return Transition{from, to, cause};
  }

  std::optional<Transition> quarantine_locked(reliability::StatusCode cause,
                                              clock::time_point now) {
    stats_.consecutive_failures = 0;
    ++stats_.quarantines;
    double ms = static_cast<double>(cfg_.probation_base.count());
    for (std::uint64_t k = 1; k < stats_.quarantines; ++k) {
      ms *= cfg_.probation_multiplier;
      if (ms >= static_cast<double>(cfg_.probation_max.count())) break;
    }
    const double cap = static_cast<double>(cfg_.probation_max.count());
    if (ms > cap) ms = cap;
    if (cfg_.probation_jitter > 0.0) {
      ms *= 1.0 - cfg_.probation_jitter + 2.0 * cfg_.probation_jitter * rng_.uniform01();
    }
    probation_until_ =
        now + std::chrono::duration_cast<clock::duration>(std::chrono::duration<double, std::milli>(ms));
    return set_locked(ReplicaState::kQuarantined, cause);
  }

  HealthConfig cfg_;
  Rng rng_;
  mutable std::mutex mu_;
  ReplicaState state_ = ReplicaState::kHealthy;
  bool probe_inflight_ = false;
  clock::time_point probation_until_{};
  Stats stats_;
};

}  // namespace cachegraph::serving
