// serving::Router — the sharded multi-tenant front door.
//
// One Router owns S shards (see shard.hpp), a StitchedView over them,
// a QueryEngine over that view, a Coalescer, and a per-tenant
// admission layer. Requests dispatch by kind:
//
//   PointToPoint      → boundary-stitch portal search (below)
//   FullSSSP          → coalesced compute over the stitched view
//   everything else   → the stitched-view engine directly (k-nearest,
//                       bounded, multi-target, and the analytics kinds
//                       are whole-frontier shapes; sharding buys them
//                       locality, not a smaller algorithm)
//
// ## Boundary stitching (the point-to-point fast path)
//
// Every s→t walk decomposes uniquely into maximal intra-shard segments
// joined by cut edges. Each segment starts at s or at a cut-edge head
// ("entry") and ends at a cut-edge tail ("exit") or at t, and — being
// maximal — stays inside one shard, so its minimal cost is an
// *intra-shard* shortest distance, exactly what a shard-local search
// computes. Define the portal graph: nodes are {s, t} ∪ entries, with
// an arc x→y of weight dloc(x, e) + w(e→y) for every exit e reachable
// from x inside x's shard and every cut edge e→y, plus x→t of weight
// dloc(x, t) when t shares x's shard. By the decomposition, walks
// s⇝t in the original graph and in the portal graph have matching
// costs in both directions, so the portal shortest path *is* the
// global shortest path — serving_test pins this against the
// single-engine oracle across shard counts, including paths that
// re-cross the cut repeatedly.
//
// The portal search runs Dijkstra over portal nodes, computing each
// popped node's dloc row on demand: a MultiTarget probe to the shard's
// exits (stops the instant the set settles), or — for entry nodes when
// `cache_portals` is on — the shard ResultCache's full local tree
// (hot entries amortize to a lookup, and component stamps invalidate
// them across intra-shard mutations for free; cached computes are not
// deadline-interruptible, so latency-critical setups turn it off).
//
// ## Tenants
//
// add_tenant() registers a quota: max in-flight requests and an
// OverloadPolicy. kReject resolves OVERLOADED immediately; kShed
// cancels the tenant's own oldest in-flight request (newest wins,
// blast radius confined to the offender); kBlock waits for a slot —
// but sheds to OVERLOADED once half the request's deadline budget has
// been spent queueing (block_budget_exhausted — the same rule the
// QueryEngine admission gate applies).
//
// Threading contract: try_serve and the typed helpers are safe from
// any thread concurrently. insert_edge / remove_edge / add_tenant /
// enable_out_of_core require quiescence (no requests in flight).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/obs/metrics.hpp"
#include "cachegraph/obs/telemetry.hpp"
#include "cachegraph/parallel/lease_pool.hpp"
#include "cachegraph/query/engine.hpp"
#include "cachegraph/query/request.hpp"
#include "cachegraph/reliability/cancel.hpp"
#include "cachegraph/reliability/status.hpp"
#include "cachegraph/serving/coalescer.hpp"
#include "cachegraph/serving/partition.hpp"
#include "cachegraph/serving/shard.hpp"
#include "cachegraph/serving/stitched_view.hpp"

namespace cachegraph::serving {

template <Weight W, class Queue = query::IndexedQueue<W>>
class Router {
 public:
  using ShardT = Shard<W, Queue>;
  using View = StitchedView<W, Queue>;
  using StitchedEngine = query::QueryEngine<View, Queue>;
  using Tree = typename Coalescer<W>::Tree;
  using TreePtr = typename Coalescer<W>::TreePtr;

  struct Config {
    std::uint32_t shards = 1;
    int shard_pool_threads = 1;  ///< each shard's private TaskPool size
    bool cache_portals = true;   ///< entry rows via shard ResultCaches
    vertex_t check_every = query::kDefaultCheckEvery;
  };

  struct NearItem {
    vertex_t vertex;
    W dist;
    friend bool operator==(const NearItem&, const NearItem&) = default;
  };

  /// One request's resolution. `tree` is set for FullSSSP only (the
  /// coalesced shared answer); k-nearest/bounded payloads come from
  /// the typed helpers, analytics dense outputs land in the request's
  /// own out spans.
  struct RouteResult {
    reliability::Status status;
    query::Outcome outcome = query::Outcome::exhausted;
    W target_dist = inf<W>();  ///< PointToPoint answer
    std::uint64_t settled = 0;  ///< portal pops (p2p) or engine settled count
    std::uint64_t aux = 0;      ///< analytics scalar (see QueryEngine::Response)
    TreePtr tree;
  };

  struct TenantQuota {
    std::size_t max_in_flight = 0;  ///< 0 = unbounded
    query::OverloadPolicy policy = query::OverloadPolicy::kBlock;
  };

  struct TenantStats {
    std::uint64_t requests = 0;
    std::uint64_t ok = 0;
    std::uint64_t overloaded = 0;         ///< quota rejections (incl. kBlock budget sheds)
    std::uint64_t blocked = 0;            ///< admissions that waited for a slot
    std::uint64_t shed_victims = 0;       ///< own requests cancelled by kShed
    std::uint64_t deadline_rejects = 0;   ///< kBlock sheds at the half-budget mark
  };

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t portal_pops = 0;       ///< boundary states settled across all p2p
    std::uint64_t portal_probes = 0;     ///< uncached MultiTarget rows computed
    std::uint64_t portal_tree_hits = 0;  ///< rows served from shard ResultCaches
  };

  Router(const graph::AdjacencyArray<W>& global, Config cfg = {})
      : cfg_(cfg), part_(global.num_vertices(), cfg.shards) {
    shards_.reserve(cfg.shards);
    for (std::uint32_t s = 0; s < cfg.shards; ++s) {
      shards_.push_back(std::make_unique<ShardT>(global, part_, s, cfg.shard_pool_threads));
    }
    view_ = std::make_unique<View>(part_, shards_);
    stitched_ = std::make_unique<StitchedEngine>(*view_);
  }

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  [[nodiscard]] const Partition& partition() const noexcept { return part_; }
  [[nodiscard]] ShardT& shard(std::uint32_t s) noexcept { return *shards_[s]; }
  [[nodiscard]] StitchedEngine& stitched_engine() noexcept { return *stitched_; }
  [[nodiscard]] Coalescer<W>& coalescer() noexcept { return coalescer_; }

  [[nodiscard]] Stats stats() const noexcept {
    return Stats{requests_.load(std::memory_order_relaxed),
                 portal_pops_.load(std::memory_order_relaxed),
                 portal_probes_.load(std::memory_order_relaxed),
                 portal_tree_hits_.load(std::memory_order_relaxed)};
  }

  // ----------------------------------------------------------- tenants

  /// Registers a tenant; the returned id is the `tenant` argument of
  /// try_serve. Configuration call — make it before traffic.
  std::uint32_t add_tenant(std::string name, TenantQuota quota) {
    tenants_.push_back(std::make_unique<TenantState>());
    tenants_.back()->name = std::move(name);
    tenants_.back()->quota = quota;
    return static_cast<std::uint32_t>(tenants_.size() - 1);
  }

  [[nodiscard]] std::size_t num_tenants() const noexcept { return tenants_.size(); }

  [[nodiscard]] TenantStats tenant_stats(std::uint32_t tenant) const {
    const TenantState& ts = *tenants_[tenant];
    return TenantStats{ts.requests.load(std::memory_order_relaxed),
                       ts.ok.load(std::memory_order_relaxed),
                       ts.overloaded.load(std::memory_order_relaxed),
                       ts.blocked.load(std::memory_order_relaxed),
                       ts.shed_victims.load(std::memory_order_relaxed),
                       ts.deadline_rejects.load(std::memory_order_relaxed)};
  }

  // ------------------------------------------------------------ serving

  /// The multi-tenant front door: quota gate, then dispatch by kind.
  /// Every request resolves with a definite status; nothing throws.
  RouteResult try_serve(std::uint32_t tenant, const query::Request<W>& req,
                        const CallOptions& opts = {}) {
    [[maybe_unused]] std::chrono::steady_clock::time_point t0{};
    if constexpr (obs::kTelemetryEnabled) t0 = std::chrono::steady_clock::now();
    RouteResult out;
    if (tenant >= tenants_.size()) {
      out.status = reliability::invalid_argument("unknown tenant id " + std::to_string(tenant));
      return out;
    }
    TenantState& ts = *tenants_[tenant];
    ts.requests.fetch_add(1, std::memory_order_relaxed);
    CG_COUNTER_INC("serving.requests");
    out.status = admit(ts, opts);
    if (!out.status.is_ok()) {
      note_latency(ts, req, t0);
      return out;
    }
    ts.in_flight.fetch_add(1, std::memory_order_acq_rel);
    reliability::CancelToken token(opts.cancel);
    {
      const std::lock_guard<std::mutex> lock(ts.mu);
      ts.active.push_back(&token);
    }
    CallOptions inner = opts;
    inner.cancel = &token;
    out = dispatch(req, inner);
    {
      const std::lock_guard<std::mutex> lock(ts.mu);
      ts.active.erase(std::find(ts.active.begin(), ts.active.end(), &token));
    }
    ts.in_flight.fetch_sub(1, std::memory_order_acq_rel);
    if (out.status.is_ok()) ts.ok.fetch_add(1, std::memory_order_relaxed);
    note_latency(ts, req, t0);
    return out;
  }

  /// Kind dispatch without a tenant gate — the single-tenant / trusted
  /// surface (tests, tools, warmup).
  RouteResult dispatch(const query::Request<W>& req, const CallOptions& opts = {}) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (const auto* p = std::get_if<query::PointToPoint>(&req)) {
      return point_to_point(p->source, p->target, opts);
    }
    if (const auto* f = std::get_if<query::FullSSSP>(&req)) {
      return full_sssp(f->source, opts);
    }
    return serve_stitched(req, opts);
  }

  /// Exact global shortest distance source→target by boundary
  /// stitching (see the header proof sketch). OK with target_dist =
  /// inf means genuinely unreachable.
  RouteResult point_to_point(vertex_t source, vertex_t target, const CallOptions& opts = {}) {
    RouteResult out;
    const vertex_t n = part_.num_vertices();
    if (source < 0 || source >= n || target < 0 || target >= n) {
      out.status = reliability::invalid_argument("query endpoint out of range");
      return out;
    }
    if (opts.cancel != nullptr && opts.cancel->cancelled()) {
      out.outcome = query::Outcome::cancelled;
      out.status = reliability::cancelled("cancel token fired");
      return out;
    }
    if (opts.deadline.expired()) {
      out.outcome = query::Outcome::deadline_exceeded;
      out.status = reliability::deadline_exceeded("request budget spent");
      return out;
    }
    CG_COUNTER_INC("serving.requests.point_to_point");

    auto lease = portal_pool_.acquire(
        [this] { return std::make_unique<PortalScratch>(part_.num_vertices()); });
    PortalScratch& ps = lease.get();
    ps.reset();
    ps.relax(source, W{0});
    std::uint64_t pops = 0;
    while (!ps.heap.empty()) {
      const auto top = ps.pop();
      const vertex_t x = top.vertex;
      if (ps.done[static_cast<std::size_t>(x)]) continue;  // stale lazy entry
      ps.done[static_cast<std::size_t>(x)] = 1;
      ++pops;
      if (x == target) {
        out.outcome = query::Outcome::target_settled;
        out.target_dist = top.key;
        break;
      }
      // Poll between portal pops: each pop is a whole shard-local
      // search, so per-pop is the natural (coarse) cadence.
      if (opts.cancel != nullptr && opts.cancel->cancelled()) {
        out.outcome = query::Outcome::cancelled;
        out.status = reliability::cancelled("cancel token fired");
        break;
      }
      if (opts.deadline.expired()) {
        out.outcome = query::Outcome::deadline_exceeded;
        out.status = reliability::deadline_exceeded("request budget spent");
        break;
      }
      if (auto st = expand_portal(x, top.key, source, target, opts, ps); !st.is_ok()) {
        out.status = st;
        out.outcome = st.code() == reliability::StatusCode::kCancelled
                          ? query::Outcome::cancelled
                      : st.code() == reliability::StatusCode::kDeadlineExceeded
                          ? query::Outcome::deadline_exceeded
                          : out.outcome;
        break;
      }
    }
    // Drained without settling the target ⇒ unreachable: an answer,
    // not an error (outcome stays exhausted, dist stays inf).
    out.settled = pops;
    portal_pops_.fetch_add(pops, std::memory_order_relaxed);
    CG_COUNTER_ADD("serving.portal.pops", pops);
    return out;
  }

  /// The coalesced full tree from `source` over the whole stitched
  /// graph. Concurrent identical sources share one compute.
  RouteResult full_sssp(vertex_t source, const CallOptions& opts = {}) {
    RouteResult out;
    CG_COUNTER_INC("serving.requests.full_sssp");
    auto res = coalescer_.get(source, opts, [&]() -> std::pair<reliability::Status, TreePtr> {
      auto tree = std::make_shared<Tree>();
      typename StitchedEngine::ServeOptions so = to_serve_options(opts);
      const auto resp = stitched_->try_serve(
          query::Request<W>{query::FullSSSP{source}}, so, [&](const auto& r, const auto& sc) {
            if (!r.status.is_ok()) return;
            tree->dist = sc.dist();
            tree->parent = sc.parent();
          });
      if (!resp.status.is_ok()) return {resp.status, nullptr};
      return {reliability::Status{}, TreePtr(std::move(tree))};
    });
    out.status = res.status;
    out.tree = res.tree;
    if (out.tree != nullptr) out.settled = out.tree->dist.size();
    if (!out.status.is_ok()) {
      out.outcome = out.status.code() == reliability::StatusCode::kCancelled
                        ? query::Outcome::cancelled
                    : out.status.code() == reliability::StatusCode::kDeadlineExceeded
                        ? query::Outcome::deadline_exceeded
                        : out.outcome;
    }
    return out;
  }

  /// Convenience: the exact distance (inf when unreachable; CG_CHECKs
  /// on a non-OK status — use point_to_point for fallible serving).
  [[nodiscard]] W distance(vertex_t source, vertex_t target) {
    const RouteResult r = point_to_point(source, target);
    CG_CHECK(r.status.is_ok(), "distance() on a failed route");
    return r.target_dist;
  }

  /// K-nearest over the stitched graph, (dist, vertex)-sorted so the
  /// answer is comparison-stable across shard layouts even at distance
  /// ties on the k-th place... (ties beyond k still depend on settle
  /// order, exactly as in the single-engine surface).
  reliability::Status k_nearest(vertex_t source, vertex_t k, std::vector<NearItem>& out,
                                const CallOptions& opts = {}) {
    out.clear();
    typename StitchedEngine::ServeOptions so = to_serve_options(opts);
    const auto resp = stitched_->try_serve(
        query::Request<W>{query::KNearest{source, k}}, so, [&](const auto& r, const auto& sc) {
          if (!r.status.is_ok()) return;
          out.reserve(sc.settled_order().size());
          for (const vertex_t v : sc.settled_order()) {
            out.push_back(NearItem{v, sc.dist()[static_cast<std::size_t>(v)]});
          }
        });
    return resp.status;
  }

  /// Every vertex within `radius`, nearest first (same contract).
  reliability::Status within(vertex_t source, W radius, std::vector<NearItem>& out,
                             const CallOptions& opts = {}) {
    out.clear();
    typename StitchedEngine::ServeOptions so = to_serve_options(opts);
    const auto resp = stitched_->try_serve(
        query::Request<W>{query::Bounded<W>{source, radius}}, so,
        [&](const auto& r, const auto& sc) {
          if (!r.status.is_ok()) return;
          out.reserve(sc.settled_order().size());
          for (const vertex_t v : sc.settled_order()) {
            out.push_back(NearItem{v, sc.dist()[static_cast<std::size_t>(v)]});
          }
        });
    return resp.status;
  }

  // --------------------------------------------------------- mutations

  /// Inserts a directed edge (intra- or cross-shard; the owning shard
  /// routes it to its overlay or its cut list). Quiescent-point call.
  /// Shard ResultCache stamps invalidate affected portal rows; the
  /// stitched engine's analytics views rebuild lazily.
  void insert_edge(vertex_t u, vertex_t v, W w) {
    const std::uint32_t s = part_.shard_of(u);
    shards_[s]->insert_edge(u - shards_[s]->begin(), v, w, part_);
    stitched_->refresh_analytics();
  }

  /// Removes one live directed edge; false when absent. Quiescent.
  bool remove_edge(vertex_t u, vertex_t v) {
    const std::uint32_t s = part_.shard_of(u);
    const bool removed = shards_[s]->remove_edge(u - shards_[s]->begin(), v, part_);
    if (removed) stitched_->refresh_analytics();
    return removed;
  }

 private:
  struct TenantState {
    std::string name;
    TenantQuota quota;
    std::atomic<std::size_t> in_flight{0};
    std::mutex mu;
    std::vector<reliability::CancelToken*> active;  ///< admission order
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> overloaded{0};
    std::atomic<std::uint64_t> blocked{0};
    std::atomic<std::uint64_t> shed_victims{0};
    std::atomic<std::uint64_t> deadline_rejects{0};
  };

  /// Lazy-heap Dijkstra state over portal nodes, leased per request
  /// and reset in O(touched).
  struct PortalScratch {
    struct Entry {
      W key;
      vertex_t vertex;
    };
    struct Greater {
      bool operator()(const Entry& a, const Entry& b) const noexcept { return a.key > b.key; }
    };

    explicit PortalScratch(vertex_t n)
        : dist(static_cast<std::size_t>(n), inf<W>()), done(static_cast<std::size_t>(n), 0) {}

    void reset() noexcept {
      for (const vertex_t v : touched) {
        dist[static_cast<std::size_t>(v)] = inf<W>();
        done[static_cast<std::size_t>(v)] = 0;
      }
      touched.clear();
      heap.clear();
    }

    void relax(vertex_t v, W nd) {
      auto& dv = dist[static_cast<std::size_t>(v)];
      if (nd >= dv) return;
      if (is_inf(dv)) touched.push_back(v);
      dv = nd;
      heap.push_back(Entry{nd, v});
      std::push_heap(heap.begin(), heap.end(), Greater{});
    }

    Entry pop() {
      std::pop_heap(heap.begin(), heap.end(), Greater{});
      const Entry e = heap.back();
      heap.pop_back();
      return e;
    }

    std::vector<W> dist;
    std::vector<char> done;
    std::vector<vertex_t> touched;
    std::vector<Entry> heap;
    std::vector<vertex_t> targets_buf;  ///< exit probe target list
    std::vector<W> dists_buf;           ///< probe answer row
  };

  /// Settle portal node x at distance dx: compute its shard-local
  /// distance row and relax every cut edge (and the in-shard target).
  [[nodiscard]] reliability::Status expand_portal(vertex_t x, W dx, vertex_t source,
                                                  vertex_t target, const CallOptions& opts,
                                                  PortalScratch& ps) {
    const std::uint32_t s = part_.shard_of(x);
    ShardT& sh = *shards_[s];
    const vertex_t lx = x - sh.begin();
    const std::span<const vertex_t> exits = sh.exits();
    const bool target_here = part_.shard_of(target) == s;
    const vertex_t lt = target_here ? target - sh.begin() : kNoVertex;

    if (exits.empty() && !target_here) return {};  // dead-end shard

    const auto relax_row = [&](auto dist_of) {
      for (const vertex_t e : exits) {
        const W dloc = dist_of(e);
        if (is_inf(dloc)) continue;
        const W at_exit = sat_add(dx, dloc);
        for (const auto& nb : sh.cut(e)) ps.relax(nb.to, sat_add(at_exit, nb.weight));
      }
      if (target_here) {
        const W dt = dist_of(lt);
        if (!is_inf(dt)) ps.relax(target, sat_add(dx, dt));
      }
    };

    // Entry nodes (every portal node except the query's own source)
    // are shared across queries — worth a cached full local tree. The
    // source is query-private; probe it with a bounded MultiTarget.
    if (cfg_.cache_portals && x != source) {
      const auto tree = sh.local_tree(lx);
      portal_tree_hits_.fetch_add(1, std::memory_order_relaxed);
      CG_COUNTER_INC("serving.portal.tree_rows");
      relax_row([&](vertex_t lv) { return tree->dist[static_cast<std::size_t>(lv)]; });
      return {};
    }
    ps.targets_buf.assign(exits.begin(), exits.end());
    if (target_here) ps.targets_buf.push_back(lt);
    ps.dists_buf.assign(ps.targets_buf.size(), inf<W>());
    portal_probes_.fetch_add(1, std::memory_order_relaxed);
    CG_COUNTER_INC("serving.portal.probes");
    if (auto st = sh.local_dists(lx, ps.targets_buf, opts, ps.dists_buf); !st.is_ok()) {
      return st;
    }
    relax_row([&](vertex_t lv) {
      // The probe row is exit-aligned; the (optional) target rides at
      // the back.
      if (lv == lt && target_here) return ps.dists_buf.back();
      const auto it = std::lower_bound(exits.begin(), exits.end(), lv);
      return ps.dists_buf[static_cast<std::size_t>(it - exits.begin())];
    });
    return {};
  }

  RouteResult serve_stitched(const query::Request<W>& req, const CallOptions& opts) {
    typename StitchedEngine::ServeOptions so = to_serve_options(opts);
    const auto resp = stitched_->try_serve(req, so);
    RouteResult out;
    out.status = resp.status;
    out.outcome = resp.outcome;
    out.target_dist = resp.target_dist;
    out.settled = resp.settled;
    out.aux = resp.aux;
    return out;
  }

  [[nodiscard]] typename StitchedEngine::ServeOptions to_serve_options(
      const CallOptions& opts) const {
    typename StitchedEngine::ServeOptions so;
    so.deadline = opts.deadline;
    so.cancel = opts.cancel;
    so.check_every = opts.check_every != 0 ? opts.check_every : cfg_.check_every;
    return so;
  }

  /// The per-tenant admission gate (mirrors QueryEngine::preflight's
  /// policy semantics, scoped to one tenant's quota).
  [[nodiscard]] reliability::Status admit(TenantState& ts, const CallOptions& opts) {
    const TenantQuota q = ts.quota;
    if (q.max_in_flight == 0 ||
        ts.in_flight.load(std::memory_order_acquire) < q.max_in_flight) {
      return {};
    }
    switch (q.policy) {
      case query::OverloadPolicy::kReject:
        ts.overloaded.fetch_add(1, std::memory_order_relaxed);
        CG_COUNTER_INC("serving.tenant.rejected");
        return reliability::overloaded("tenant '" + ts.name + "' quota: " +
                                       std::to_string(q.max_in_flight) + " in flight");
      case query::OverloadPolicy::kShed: {
        const std::lock_guard<std::mutex> lock(ts.mu);
        for (reliability::CancelToken* victim : ts.active) {
          if (!victim->cancelled()) {
            victim->cancel();
            ts.shed_victims.fetch_add(1, std::memory_order_relaxed);
            CG_COUNTER_INC("serving.tenant.shed");
            break;
          }
        }
        return {};  // admit over the cap; the victim resolves shortly
      }
      case query::OverloadPolicy::kBlock: {
        ts.blocked.fetch_add(1, std::memory_order_relaxed);
        CG_COUNTER_INC("serving.tenant.blocked");
        const auto enter = std::chrono::steady_clock::now();
        while (ts.in_flight.load(std::memory_order_acquire) >= q.max_in_flight) {
          if (opts.cancel != nullptr && opts.cancel->cancelled()) {
            return reliability::cancelled("cancelled while blocked on tenant quota");
          }
          if (opts.deadline.expired()) {
            return reliability::deadline_exceeded(
                "deadline spent while blocked on tenant quota");
          }
          if (query::block_budget_exhausted(enter, opts.deadline,
                                            std::chrono::steady_clock::now())) {
            ts.deadline_rejects.fetch_add(1, std::memory_order_relaxed);
            ts.overloaded.fetch_add(1, std::memory_order_relaxed);
            CG_COUNTER_INC("serving.tenant.deadline_rejected");
            return reliability::overloaded("tenant '" + ts.name +
                                           "' quota: half the deadline budget spent blocked");
          }
          std::this_thread::yield();
        }
        return {};
      }
    }
    return {};
  }

  /// Per-tenant-per-kind latency histogram
  /// (serving.latency_ns.t<id>.<kind>). Compiled out when
  /// CACHEGRAPH_INSTRUMENT is off — the traffic driver keeps its own
  /// always-on histograms for the bench surface.
  void note_latency([[maybe_unused]] TenantState& ts, [[maybe_unused]] const query::Request<W>& req,
                    [[maybe_unused]] std::chrono::steady_clock::time_point t0) {
    if constexpr (obs::kTelemetryEnabled) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      auto& hist = obs::MetricsRegistry::instance().histogram(
          "serving.latency_ns.t" + std::to_string(tenant_index_of(ts)) + "." +
          query::kind_of(req));
      hist.record(ns <= 0 ? 0 : static_cast<std::uint64_t>(ns));
    }
  }

  [[nodiscard]] std::size_t tenant_index_of(const TenantState& ts) const noexcept {
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      if (tenants_[i].get() == &ts) return i;
    }
    return 0;
  }

  Config cfg_;
  Partition part_;
  std::vector<std::unique_ptr<ShardT>> shards_;
  std::unique_ptr<View> view_;
  std::unique_ptr<StitchedEngine> stitched_;
  Coalescer<W> coalescer_;
  parallel::LeasePool<PortalScratch> portal_pool_;
  std::vector<std::unique_ptr<TenantState>> tenants_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> portal_pops_{0};
  std::atomic<std::uint64_t> portal_probes_{0};
  std::atomic<std::uint64_t> portal_tree_hits_{0};
};

}  // namespace cachegraph::serving
