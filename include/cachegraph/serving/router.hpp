// serving::Router — the sharded multi-tenant front door.
//
// One Router owns S shards (see shard.hpp), a StitchedView over them,
// a QueryEngine over that view, a Coalescer, and a per-tenant
// admission layer. Requests dispatch by kind:
//
//   PointToPoint      → boundary-stitch portal search (below)
//   FullSSSP          → coalesced compute over the stitched view
//   everything else   → the stitched-view engine directly (k-nearest,
//                       bounded, multi-target, and the analytics kinds
//                       are whole-frontier shapes; sharding buys them
//                       locality, not a smaller algorithm)
//
// ## Boundary stitching (the point-to-point fast path)
//
// Every s→t walk decomposes uniquely into maximal intra-shard segments
// joined by cut edges. Each segment starts at s or at a cut-edge head
// ("entry") and ends at a cut-edge tail ("exit") or at t, and — being
// maximal — stays inside one shard, so its minimal cost is an
// *intra-shard* shortest distance, exactly what a shard-local search
// computes. Define the portal graph: nodes are {s, t} ∪ entries, with
// an arc x→y of weight dloc(x, e) + w(e→y) for every exit e reachable
// from x inside x's shard and every cut edge e→y, plus x→t of weight
// dloc(x, t) when t shares x's shard. By the decomposition, walks
// s⇝t in the original graph and in the portal graph have matching
// costs in both directions, so the portal shortest path *is* the
// global shortest path — serving_test pins this against the
// single-engine oracle across shard counts, including paths that
// re-cross the cut repeatedly.
//
// The portal search runs Dijkstra over portal nodes, computing each
// popped node's dloc row on demand: a MultiTarget probe to the shard's
// exits (stops the instant the set settles), or — for entry nodes when
// `cache_portals` is on — the shard ResultCache's full local tree
// (hot entries amortize to a lookup, and component stamps invalidate
// them across intra-shard mutations for free; cached computes are not
// deadline-interruptible, so latency-critical setups turn it off).
//
// ## Tenants
//
// add_tenant() registers a quota: max in-flight requests and an
// OverloadPolicy. kReject resolves OVERLOADED immediately; kShed
// cancels the tenant's own oldest in-flight request (newest wins,
// blast radius confined to the offender); kBlock waits for a slot —
// but sheds to OVERLOADED once half the request's deadline budget has
// been spent queueing (block_budget_exhausted — the same rule the
// QueryEngine admission gate applies).
//
// ## Replication (cfg.replicas > 1)
//
// Each shard slot becomes a ReplicaSet of R bit-identical Shards with
// per-replica circuit breakers (see replica.hpp / health.hpp). Portal
// rows are served by a healthy replica; a replica-indicting failure
// (DATA_LOSS, phantom timeout, aborted task) fails over to a sibling
// *within the request's remaining deadline*, each failover charged to
// a token-bucket RetryBudget so a sick shard cannot double the fleet's
// offered load (retry.hpp's storm argument, applied to replicas).
// `cfg.hedge` additionally hedges probe rows: the primary runs on a
// helper thread, and if it hasn't answered within the probe-latency
// histogram's p99 (cfg.hedge_delay until enough samples), a budgeted
// second attempt races it on a sibling — first success wins, the loser
// is cancelled through its own child CancelToken.
//
// Degraded mode: a shard whose replicas are all quarantined is pruned
// like a dead end; requests whose answer would then be uncertain (the
// pruned shard might have offered a shorter path) resolve OVERLOADED
// ("unavailable") immediately rather than hanging or guessing, while
// routes that settle before ever touching the dead shard still
// succeed exactly. Whole-graph kinds fail fast when any set is down.
//
// Threading contract: try_serve and the typed helpers are safe from
// any thread concurrently. insert_edge / remove_edge / add_tenant /
// enable_out_of_core require quiescence (no requests in flight).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/obs/histogram.hpp"
#include "cachegraph/obs/metrics.hpp"
#include "cachegraph/obs/telemetry.hpp"
#include "cachegraph/parallel/lease_pool.hpp"
#include "cachegraph/query/engine.hpp"
#include "cachegraph/query/request.hpp"
#include "cachegraph/reliability/cancel.hpp"
#include "cachegraph/reliability/retry_budget.hpp"
#include "cachegraph/reliability/status.hpp"
#include "cachegraph/serving/coalescer.hpp"
#include "cachegraph/serving/health.hpp"
#include "cachegraph/serving/partition.hpp"
#include "cachegraph/serving/replica.hpp"
#include "cachegraph/serving/scrubber.hpp"
#include "cachegraph/serving/shard.hpp"
#include "cachegraph/serving/stitched_view.hpp"

namespace cachegraph::serving {

template <Weight W, class Queue = query::IndexedQueue<W>>
class Router {
 public:
  using ShardT = Shard<W, Queue>;
  using SetT = ReplicaSet<W, Queue>;
  using View = StitchedView<W, Queue>;
  using StitchedEngine = query::QueryEngine<View, Queue>;
  using Tree = typename Coalescer<W>::Tree;
  using TreePtr = typename Coalescer<W>::TreePtr;

  struct Config {
    std::uint32_t shards = 1;
    int shard_pool_threads = 1;  ///< each shard's private TaskPool size
    bool cache_portals = true;   ///< entry rows via shard ResultCaches
    vertex_t check_every = query::kDefaultCheckEvery;

    // Replication + failure-domain hardening (see header).
    std::uint32_t replicas = 1;                 ///< replicas per shard
    HealthConfig health{};                      ///< per-replica circuit breaker
    reliability::RetryBudget::Config retry_budget{};  ///< failover/hedge token bucket
    bool hedge = false;                         ///< hedge probe rows to a sibling
    std::chrono::microseconds hedge_delay{500}; ///< until the histogram has samples
    std::uint32_t hedge_min_samples = 32;       ///< probes before p99-derived delay
    std::uint64_t health_seed = 0x5eedULL;      ///< probation-jitter determinism
  };

  struct NearItem {
    vertex_t vertex;
    W dist;
    friend bool operator==(const NearItem&, const NearItem&) = default;
  };

  /// One request's resolution. `tree` is set for FullSSSP only (the
  /// coalesced shared answer); k-nearest/bounded payloads come from
  /// the typed helpers, analytics dense outputs land in the request's
  /// own out spans.
  struct RouteResult {
    reliability::Status status;
    query::Outcome outcome = query::Outcome::exhausted;
    W target_dist = inf<W>();  ///< PointToPoint answer
    std::uint64_t settled = 0;  ///< portal pops (p2p) or engine settled count
    std::uint64_t aux = 0;      ///< analytics scalar (see QueryEngine::Response)
    TreePtr tree;
  };

  struct TenantQuota {
    std::size_t max_in_flight = 0;  ///< 0 = unbounded
    query::OverloadPolicy policy = query::OverloadPolicy::kBlock;
  };

  struct TenantStats {
    std::uint64_t requests = 0;
    std::uint64_t ok = 0;
    std::uint64_t overloaded = 0;         ///< quota rejections (incl. kBlock budget sheds)
    std::uint64_t blocked = 0;            ///< admissions that waited for a slot
    std::uint64_t shed_victims = 0;       ///< own requests cancelled by kShed
    std::uint64_t deadline_rejects = 0;   ///< kBlock sheds at the half-budget mark
  };

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t portal_pops = 0;       ///< boundary states settled across all p2p
    std::uint64_t portal_probes = 0;     ///< uncached MultiTarget rows computed
    std::uint64_t portal_tree_hits = 0;  ///< rows served from shard ResultCaches
    std::uint64_t failovers = 0;         ///< attempts retried on a sibling replica
    std::uint64_t hedges = 0;            ///< secondary probes launched
    std::uint64_t hedge_wins = 0;        ///< hedges that beat a failed primary
    std::uint64_t unavailable = 0;       ///< requests failed fast on a dead shard
    std::uint64_t quarantines = 0;       ///< replica quarantine transitions (all sets)
    std::uint64_t recoveries = 0;        ///< probe recoveries (all sets)
  };

  Router(const graph::AdjacencyArray<W>& global, Config cfg = {})
      : cfg_(cfg),
        part_(global.num_vertices(), cfg.shards),
        retry_budget_(cfg.retry_budget) {
    replica_sets_.reserve(cfg.shards);
    for (std::uint32_t s = 0; s < cfg.shards; ++s) {
      replica_sets_.push_back(std::make_unique<SetT>(global, part_, s, cfg.replicas,
                                                     cfg.shard_pool_threads, cfg.health,
                                                     cfg.health_seed));
    }
    view_ = std::make_unique<View>(part_, replica_sets_);
    stitched_ = std::make_unique<StitchedEngine>(*view_);
  }

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  [[nodiscard]] const Partition& partition() const noexcept { return part_; }
  /// Replica 0 of shard `s` — the single-replica surface older callers
  /// (and geometry lookups) use; all replicas are bit-identical.
  [[nodiscard]] ShardT& shard(std::uint32_t s) noexcept { return replica_sets_[s]->replica(0); }
  [[nodiscard]] SetT& replica_set(std::uint32_t s) noexcept { return *replica_sets_[s]; }
  [[nodiscard]] reliability::RetryBudget& retry_budget() noexcept { return retry_budget_; }
  [[nodiscard]] StitchedEngine& stitched_engine() noexcept { return *stitched_; }
  [[nodiscard]] Coalescer<W>& coalescer() noexcept { return coalescer_; }

  /// Enables the out-of-core mirror on every replica of every shard,
  /// under `<dir>/s<shard>/r<replica>/`. Quiescent-point call.
  [[nodiscard]] reliability::Status enable_out_of_core(const std::filesystem::path& dir,
                                                       std::size_t block_bytes,
                                                       std::size_t budget_blocks) {
    for (auto& rs : replica_sets_) {
      // Two-step concat dodges GCC 12's -Wrestrict false positive on
      // operator+(const char*, string&&) under path::/.
      std::string leaf = "s";
      leaf += std::to_string(rs->shard_id());
      const auto sub = dir / leaf;
      if (auto st = rs->enable_out_of_core(sub, block_bytes, budget_blocks); !st.is_ok()) {
        return st;
      }
    }
    return {};
  }

  /// Scrub targets for every out-of-core replica file, siblings wired
  /// for repair — feed these to a BlockScrubber.
  [[nodiscard]] std::vector<BlockScrubber::Target> scrub_targets() const {
    std::vector<BlockScrubber::Target> out;
    for (const auto& rs : replica_sets_) {
      auto t = rs->scrub_targets();
      out.insert(out.end(), std::make_move_iterator(t.begin()),
                 std::make_move_iterator(t.end()));
    }
    return out;
  }

  [[nodiscard]] Stats stats() const {
    Stats st{requests_.load(std::memory_order_relaxed),
             portal_pops_.load(std::memory_order_relaxed),
             portal_probes_.load(std::memory_order_relaxed),
             portal_tree_hits_.load(std::memory_order_relaxed),
             failovers_.load(std::memory_order_relaxed),
             hedges_.load(std::memory_order_relaxed),
             hedge_wins_.load(std::memory_order_relaxed),
             unavailable_.load(std::memory_order_relaxed),
             0,
             0};
    for (const auto& rs : replica_sets_) {
      const auto s = rs->stats();
      st.quarantines += s.quarantines;
      st.recoveries += s.recoveries;
    }
    return st;
  }

  // ----------------------------------------------------------- tenants

  /// Registers a tenant; the returned id is the `tenant` argument of
  /// try_serve. Configuration call — make it before traffic.
  std::uint32_t add_tenant(std::string name, TenantQuota quota) {
    tenants_.push_back(std::make_unique<TenantState>());
    tenants_.back()->name = std::move(name);
    tenants_.back()->quota = quota;
    return static_cast<std::uint32_t>(tenants_.size() - 1);
  }

  [[nodiscard]] std::size_t num_tenants() const noexcept { return tenants_.size(); }

  [[nodiscard]] TenantStats tenant_stats(std::uint32_t tenant) const {
    const TenantState& ts = *tenants_[tenant];
    return TenantStats{ts.requests.load(std::memory_order_relaxed),
                       ts.ok.load(std::memory_order_relaxed),
                       ts.overloaded.load(std::memory_order_relaxed),
                       ts.blocked.load(std::memory_order_relaxed),
                       ts.shed_victims.load(std::memory_order_relaxed),
                       ts.deadline_rejects.load(std::memory_order_relaxed)};
  }

  // ------------------------------------------------------------ serving

  /// The multi-tenant front door: quota gate, then dispatch by kind.
  /// Every request resolves with a definite status; nothing throws.
  RouteResult try_serve(std::uint32_t tenant, const query::Request<W>& req,
                        const CallOptions& opts = {}) {
    [[maybe_unused]] std::chrono::steady_clock::time_point t0{};
    if constexpr (obs::kTelemetryEnabled) t0 = std::chrono::steady_clock::now();
    RouteResult out;
    if (tenant >= tenants_.size()) {
      out.status = reliability::invalid_argument("unknown tenant id " + std::to_string(tenant));
      return out;
    }
    TenantState& ts = *tenants_[tenant];
    ts.requests.fetch_add(1, std::memory_order_relaxed);
    CG_COUNTER_INC("serving.requests");
    out.status = admit(ts, opts);
    if (!out.status.is_ok()) {
      note_latency(ts, req, t0);
      return out;
    }
    ts.in_flight.fetch_add(1, std::memory_order_acq_rel);
    reliability::CancelToken token(opts.cancel);
    {
      const std::lock_guard<std::mutex> lock(ts.mu);
      ts.active.push_back(&token);
    }
    CallOptions inner = opts;
    inner.cancel = &token;
    out = dispatch(req, inner);
    {
      const std::lock_guard<std::mutex> lock(ts.mu);
      ts.active.erase(std::find(ts.active.begin(), ts.active.end(), &token));
    }
    ts.in_flight.fetch_sub(1, std::memory_order_acq_rel);
    if (out.status.is_ok()) ts.ok.fetch_add(1, std::memory_order_relaxed);
    note_latency(ts, req, t0);
    return out;
  }

  /// Kind dispatch without a tenant gate — the single-tenant / trusted
  /// surface (tests, tools, warmup).
  RouteResult dispatch(const query::Request<W>& req, const CallOptions& opts = {}) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (const auto* p = std::get_if<query::PointToPoint>(&req)) {
      return point_to_point(p->source, p->target, opts);
    }
    if (const auto* f = std::get_if<query::FullSSSP>(&req)) {
      return full_sssp(f->source, opts);
    }
    return serve_stitched(req, opts);
  }

  /// Exact global shortest distance source→target by boundary
  /// stitching (see the header proof sketch). OK with target_dist =
  /// inf means genuinely unreachable.
  RouteResult point_to_point(vertex_t source, vertex_t target, const CallOptions& opts = {}) {
    RouteResult out;
    const vertex_t n = part_.num_vertices();
    if (source < 0 || source >= n || target < 0 || target >= n) {
      out.status = reliability::invalid_argument("query endpoint out of range");
      return out;
    }
    if (opts.cancel != nullptr && opts.cancel->cancelled()) {
      out.outcome = query::Outcome::cancelled;
      out.status = reliability::cancelled("cancel token fired");
      return out;
    }
    if (opts.deadline.expired()) {
      out.outcome = query::Outcome::deadline_exceeded;
      out.status = reliability::deadline_exceeded("request budget spent");
      return out;
    }
    CG_COUNTER_INC("serving.requests.point_to_point");
    {
      // Degraded mode, fast path: a request whose endpoints live in a
      // dead shard can never resolve — fail it now, not after a walk.
      const auto now = std::chrono::steady_clock::now();
      for (const vertex_t v : {source, target}) {
        const std::uint32_t s = part_.shard_of(v);
        if (!replica_sets_[s]->reachable(now)) {
          out.status = shard_unavailable_status(s);
          unavailable_.fetch_add(1, std::memory_order_relaxed);
          CG_COUNTER_INC("serving.unavailable");
          return out;
        }
      }
    }

    auto lease = portal_pool_.acquire(
        [this] { return std::make_unique<PortalScratch>(part_.num_vertices()); });
    PortalScratch& ps = lease.get();
    ps.reset();
    ps.relax(source, W{0});
    std::uint64_t pops = 0;
    while (!ps.heap.empty()) {
      const auto top = ps.pop();
      const vertex_t x = top.vertex;
      if (ps.done[static_cast<std::size_t>(x)]) continue;  // stale lazy entry
      ps.done[static_cast<std::size_t>(x)] = 1;
      ++pops;
      if (x == target) {
        out.outcome = query::Outcome::target_settled;
        out.target_dist = top.key;
        break;
      }
      // Poll between portal pops: each pop is a whole shard-local
      // search, so per-pop is the natural (coarse) cadence.
      if (opts.cancel != nullptr && opts.cancel->cancelled()) {
        out.outcome = query::Outcome::cancelled;
        out.status = reliability::cancelled("cancel token fired");
        break;
      }
      if (opts.deadline.expired()) {
        out.outcome = query::Outcome::deadline_exceeded;
        out.status = reliability::deadline_exceeded("request budget spent");
        break;
      }
      if (auto st = expand_portal(x, top.key, source, target, opts, ps); !st.is_ok()) {
        out.status = st;
        out.outcome = st.code() == reliability::StatusCode::kCancelled
                          ? query::Outcome::cancelled
                      : st.code() == reliability::StatusCode::kDeadlineExceeded
                          ? query::Outcome::deadline_exceeded
                          : out.outcome;
        break;
      }
    }
    // Drained without settling the target ⇒ unreachable: an answer,
    // not an error (outcome stays exhausted, dist stays inf) — unless
    // the search pruned a dead shard along the way. Then nothing can
    // be certified (neither a settled distance's optimality nor
    // unreachability: the pruned shard might have offered a shorter /
    // the only path), so the honest resolution is "unavailable".
    if (out.status.is_ok() && ps.degraded) {
      out.outcome = query::Outcome::exhausted;
      out.target_dist = inf<W>();
      out.status = reliability::overloaded(
          "route unavailable: a required shard has all replicas quarantined");
      unavailable_.fetch_add(1, std::memory_order_relaxed);
      CG_COUNTER_INC("serving.unavailable");
    }
    out.settled = pops;
    portal_pops_.fetch_add(pops, std::memory_order_relaxed);
    CG_COUNTER_ADD("serving.portal.pops", pops);
    return out;
  }

  /// The coalesced full tree from `source` over the whole stitched
  /// graph. Concurrent identical sources share one compute.
  RouteResult full_sssp(vertex_t source, const CallOptions& opts = {}) {
    RouteResult out;
    CG_COUNTER_INC("serving.requests.full_sssp");
    if (auto st = whole_graph_guard(); !st.is_ok()) {
      out.status = st;
      return out;
    }
    auto res = coalescer_.get(source, opts, [&]() -> std::pair<reliability::Status, TreePtr> {
      auto tree = std::make_shared<Tree>();
      typename StitchedEngine::ServeOptions so = to_serve_options(opts);
      const auto resp = stitched_->try_serve(
          query::Request<W>{query::FullSSSP{source}}, so, [&](const auto& r, const auto& sc) {
            if (!r.status.is_ok()) return;
            tree->dist = sc.dist();
            tree->parent = sc.parent();
          });
      if (!resp.status.is_ok()) return {resp.status, nullptr};
      return {reliability::Status{}, TreePtr(std::move(tree))};
    });
    out.status = res.status;
    out.tree = res.tree;
    if (out.tree != nullptr) out.settled = out.tree->dist.size();
    if (!out.status.is_ok()) {
      out.outcome = out.status.code() == reliability::StatusCode::kCancelled
                        ? query::Outcome::cancelled
                    : out.status.code() == reliability::StatusCode::kDeadlineExceeded
                        ? query::Outcome::deadline_exceeded
                        : out.outcome;
    }
    return out;
  }

  /// Convenience: the exact distance (inf when unreachable; CG_CHECKs
  /// on a non-OK status — use point_to_point for fallible serving).
  [[nodiscard]] W distance(vertex_t source, vertex_t target) {
    const RouteResult r = point_to_point(source, target);
    CG_CHECK(r.status.is_ok(), "distance() on a failed route");
    return r.target_dist;
  }

  /// K-nearest over the stitched graph, (dist, vertex)-sorted so the
  /// answer is comparison-stable across shard layouts even at distance
  /// ties on the k-th place... (ties beyond k still depend on settle
  /// order, exactly as in the single-engine surface).
  reliability::Status k_nearest(vertex_t source, vertex_t k, std::vector<NearItem>& out,
                                const CallOptions& opts = {}) {
    out.clear();
    if (auto st = whole_graph_guard(); !st.is_ok()) return st;
    typename StitchedEngine::ServeOptions so = to_serve_options(opts);
    const auto resp = stitched_->try_serve(
        query::Request<W>{query::KNearest{source, k}}, so, [&](const auto& r, const auto& sc) {
          if (!r.status.is_ok()) return;
          out.reserve(sc.settled_order().size());
          for (const vertex_t v : sc.settled_order()) {
            out.push_back(NearItem{v, sc.dist()[static_cast<std::size_t>(v)]});
          }
        });
    return resp.status;
  }

  /// Every vertex within `radius`, nearest first (same contract).
  reliability::Status within(vertex_t source, W radius, std::vector<NearItem>& out,
                             const CallOptions& opts = {}) {
    out.clear();
    if (auto st = whole_graph_guard(); !st.is_ok()) return st;
    typename StitchedEngine::ServeOptions so = to_serve_options(opts);
    const auto resp = stitched_->try_serve(
        query::Request<W>{query::Bounded<W>{source, radius}}, so,
        [&](const auto& r, const auto& sc) {
          if (!r.status.is_ok()) return;
          out.reserve(sc.settled_order().size());
          for (const vertex_t v : sc.settled_order()) {
            out.push_back(NearItem{v, sc.dist()[static_cast<std::size_t>(v)]});
          }
        });
    return resp.status;
  }

  // --------------------------------------------------------- mutations

  /// Inserts a directed edge (intra- or cross-shard; the owning shard
  /// routes it to its overlay or its cut list). Quiescent-point call.
  /// Shard ResultCache stamps invalidate affected portal rows; the
  /// stitched engine's analytics views rebuild lazily.
  void insert_edge(vertex_t u, vertex_t v, W w) {
    const std::uint32_t s = part_.shard_of(u);
    replica_sets_[s]->insert_edge(u - replica_sets_[s]->replica(0).begin(), v, w, part_);
    stitched_->refresh_analytics();
  }

  /// Removes one live directed edge; false when absent. Quiescent.
  bool remove_edge(vertex_t u, vertex_t v) {
    const std::uint32_t s = part_.shard_of(u);
    const bool removed =
        replica_sets_[s]->remove_edge(u - replica_sets_[s]->replica(0).begin(), v, part_);
    if (removed) stitched_->refresh_analytics();
    return removed;
  }

 private:
  struct TenantState {
    std::string name;
    TenantQuota quota;
    std::atomic<std::size_t> in_flight{0};
    std::mutex mu;
    std::vector<reliability::CancelToken*> active;  ///< admission order
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> overloaded{0};
    std::atomic<std::uint64_t> blocked{0};
    std::atomic<std::uint64_t> shed_victims{0};
    std::atomic<std::uint64_t> deadline_rejects{0};
  };

  /// Lazy-heap Dijkstra state over portal nodes, leased per request
  /// and reset in O(touched).
  struct PortalScratch {
    struct Entry {
      W key;
      vertex_t vertex;
    };
    struct Greater {
      bool operator()(const Entry& a, const Entry& b) const noexcept { return a.key > b.key; }
    };

    explicit PortalScratch(vertex_t n)
        : dist(static_cast<std::size_t>(n), inf<W>()), done(static_cast<std::size_t>(n), 0) {}

    void reset() noexcept {
      for (const vertex_t v : touched) {
        dist[static_cast<std::size_t>(v)] = inf<W>();
        done[static_cast<std::size_t>(v)] = 0;
      }
      touched.clear();
      heap.clear();
      degraded = false;
    }

    void relax(vertex_t v, W nd) {
      auto& dv = dist[static_cast<std::size_t>(v)];
      if (nd >= dv) return;
      if (is_inf(dv)) touched.push_back(v);
      dv = nd;
      heap.push_back(Entry{nd, v});
      std::push_heap(heap.begin(), heap.end(), Greater{});
    }

    Entry pop() {
      std::pop_heap(heap.begin(), heap.end(), Greater{});
      const Entry e = heap.back();
      heap.pop_back();
      return e;
    }

    std::vector<W> dist;
    std::vector<char> done;
    std::vector<vertex_t> touched;
    std::vector<Entry> heap;
    std::vector<vertex_t> targets_buf;  ///< exit probe target list
    std::vector<W> dists_buf;           ///< probe answer row
    bool degraded = false;  ///< a dead (all-quarantined) shard was pruned
  };

  [[nodiscard]] reliability::Status shard_unavailable_status(std::uint32_t s) const {
    return reliability::overloaded("shard " + std::to_string(s) +
                                   " unavailable: all replicas quarantined");
  }

  /// Did this status resolve by the *client's* intent (their cancel,
  /// their genuinely spent deadline, their bad argument)? Such
  /// resolutions end the request — they indict no replica and justify
  /// no failover.
  [[nodiscard]] static bool client_resolution(const reliability::Status& st,
                                              const CallOptions& opts) {
    switch (st.code()) {
      case reliability::StatusCode::kInvalidArgument:
        return true;
      case reliability::StatusCode::kCancelled:
        return opts.cancel != nullptr && opts.cancel->cancelled();
      case reliability::StatusCode::kDeadlineExceeded:
        return opts.deadline.expired();
      default:
        return false;
    }
  }

  void report_attempt(SetT& rs, std::uint32_t idx, bool probe, const reliability::Status& st,
                      const CallOptions& opts) {
    rs.report(idx, st.code(), probe, client_resolution(st, opts),
              std::chrono::steady_clock::now());
  }

  /// The cached-portal fetch is the one replica call that can *throw*
  /// (get_or_compute runs the compute inline; an injected fault or a
  /// store fault escapes as an exception) — fence it into a Status so
  /// the failover loop can treat it like any failed attempt.
  [[nodiscard]] reliability::Status fetch_tree(ShardT& sh, vertex_t lx,
                                               typename ShardT::Cache::TreePtr& out) {
    try {
      out = sh.local_tree(lx);
      return {};
    } catch (const reliability::DataLossError& e) {
      return reliability::data_loss(e.what());
    } catch (const std::exception& e) {
      return reliability::cancelled(std::string("portal tree compute aborted: ") + e.what());
    }
  }

  /// Hedge delay: the probe-latency p99 once the histogram has enough
  /// samples, the configured fallback before that.
  [[nodiscard]] std::chrono::steady_clock::duration hedge_delay() const {
    const auto snap = probe_hist_.snapshot();
    if (snap.count >= cfg_.hedge_min_samples) {
      return std::chrono::nanoseconds(snap.percentile(99.0));
    }
    return cfg_.hedge_delay;
  }

  /// Settle portal node x at distance dx: compute its shard-local
  /// distance row on a healthy replica (failing over / hedging per
  /// config) and relax every cut edge (and the in-shard target).
  [[nodiscard]] reliability::Status expand_portal(vertex_t x, W dx, vertex_t source,
                                                  vertex_t target, const CallOptions& opts,
                                                  PortalScratch& ps) {
    const std::uint32_t s = part_.shard_of(x);
    SetT& rs = *replica_sets_[s];
    // Geometry (begin/exits/cut lists) is identical across replicas —
    // read it from replica 0; only distance rows route by health.
    ShardT& sh0 = rs.replica(0);
    const vertex_t lx = x - sh0.begin();
    const std::span<const vertex_t> exits = sh0.exits();
    const bool target_here = part_.shard_of(target) == s;
    const vertex_t lt = target_here ? target - sh0.begin() : kNoVertex;

    if (exits.empty() && !target_here) return {};  // dead-end shard

    const auto relax_row = [&](auto dist_of) {
      for (const vertex_t e : exits) {
        const W dloc = dist_of(e);
        if (is_inf(dloc)) continue;
        const W at_exit = sat_add(dx, dloc);
        for (const auto& nb : sh0.cut(e)) ps.relax(nb.to, sat_add(at_exit, nb.weight));
      }
      if (target_here) {
        const W dt = dist_of(lt);
        if (!is_inf(dt)) ps.relax(target, sat_add(dx, dt));
      }
    };

    const bool cached = cfg_.cache_portals && x != source;
    std::uint32_t tried = 0;
    reliability::Status last;
    for (;;) {
      const auto pick = rs.pick(tried, std::chrono::steady_clock::now());
      if (!pick) {
        if (tried == 0) {
          // Degraded mode: every replica quarantined — prune this
          // shard like a dead end; point_to_point resolves the
          // uncertainty at the end of the walk.
          ps.degraded = true;
          return {};
        }
        return last;  // every reachable replica was tried and failed
      }
      tried |= 1u << pick->index;

      reliability::Status st;
      if (cached) {
        // Entry nodes (every portal node except the query's own
        // source) are shared across queries — worth a cached full
        // local tree.
        typename ShardT::Cache::TreePtr tree;
        st = fetch_tree(rs.replica(pick->index), lx, tree);
        report_attempt(rs, pick->index, pick->probe, st, opts);
        if (st.is_ok()) {
          retry_budget_.on_success();
          portal_tree_hits_.fetch_add(1, std::memory_order_relaxed);
          CG_COUNTER_INC("serving.portal.tree_rows");
          relax_row([&](vertex_t lv) { return tree->dist[static_cast<std::size_t>(lv)]; });
          return {};
        }
      } else {
        // The source is query-private; probe it with a bounded
        // MultiTarget (optionally hedged). probe_attempt reports every
        // participating replica itself.
        st = probe_attempt(rs, *pick, tried, lx, lt, target_here, exits, opts, ps);
        if (st.is_ok()) {
          retry_budget_.on_success();
          relax_row([&](vertex_t lv) {
            // The probe row is exit-aligned; the (optional) target
            // rides at the back.
            if (lv == lt && target_here) return ps.dists_buf.back();
            const auto it = std::lower_bound(exits.begin(), exits.end(), lv);
            return ps.dists_buf[static_cast<std::size_t>(it - exits.begin())];
          });
          return {};
        }
      }
      last = st;
      if (client_resolution(st, opts)) return st;
      // Failing over costs a retry-budget token — when the bucket is
      // dry the request resolves with what it has (no retry storms).
      if (!retry_budget_.try_acquire()) return st;
      failovers_.fetch_add(1, std::memory_order_relaxed);
      CG_COUNTER_INC("serving.failovers");
    }
  }

  /// One probe attempt against `pick`, hedged to a sibling when
  /// configured. On OK, ps.dists_buf holds the winning row. Health
  /// reporting for every participating replica happens here.
  [[nodiscard]] reliability::Status probe_attempt(SetT& rs, const typename SetT::Pick& pick,
                                                  std::uint32_t& tried, vertex_t lx,
                                                  vertex_t lt, bool target_here,
                                                  std::span<const vertex_t> exits,
                                                  const CallOptions& opts, PortalScratch& ps) {
    ps.targets_buf.assign(exits.begin(), exits.end());
    if (target_here) ps.targets_buf.push_back(lt);
    ps.dists_buf.assign(ps.targets_buf.size(), inf<W>());
    portal_probes_.fetch_add(1, std::memory_order_relaxed);
    CG_COUNTER_INC("serving.portal.probes");

    // Hedge only from a regular pick (never spend a half-open probe
    // ticket on a race) and only when a second replica is available.
    std::optional<typename SetT::Pick> second;
    if (cfg_.hedge && !pick.probe && rs.size() > 1) {
      second = rs.pick(tried | (1u << pick.index), std::chrono::steady_clock::now());
      if (second && second->probe) {
        rs.health(second->index).abandon_probe();
        second.reset();
      }
    }
    if (!second) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto st = rs.replica(pick.index).local_dists(lx, ps.targets_buf, opts, ps.dists_buf);
      probe_hist_.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                               t0)
              .count()));
      report_attempt(rs, pick.index, pick.probe, st, opts);
      return st;
    }
    return hedged_probe(rs, pick, *second, tried, lx, opts, ps);
  }

  /// The hedged race: primary runs on a helper thread; if it has not
  /// answered within hedge_delay(), a budgeted secondary races it on
  /// the caller thread. First success wins; the loser is cancelled
  /// through its own child token (parented on the request token, so a
  /// client cancel still stops both legs).
  [[nodiscard]] reliability::Status hedged_probe(SetT& rs, const typename SetT::Pick& primary,
                                                 const typename SetT::Pick& second,
                                                 std::uint32_t& tried, vertex_t lx,
                                                 const CallOptions& opts, PortalScratch& ps) {
    reliability::CancelToken ptok(opts.cancel);
    reliability::CancelToken stok(opts.cancel);
    std::vector<W> prow(ps.dists_buf.size(), inf<W>());
    reliability::Status pst;
    std::mutex m;
    std::condition_variable cv;
    bool pdone = false;
    std::thread pt([&] {
      CallOptions po = opts;
      po.cancel = &ptok;
      const auto t0 = std::chrono::steady_clock::now();
      auto st = rs.replica(primary.index).local_dists(lx, ps.targets_buf, po, prow);
      probe_hist_.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                               t0)
              .count()));
      if (st.is_ok()) stok.cancel();  // beat the hedge: cancel it
      {
        const std::lock_guard<std::mutex> lk(m);
        pst = std::move(st);
        pdone = true;
      }
      cv.notify_all();
    });
    bool launch;
    {
      std::unique_lock<std::mutex> lk(m);
      launch = !cv.wait_for(lk, hedge_delay(), [&] { return pdone; });
    }
    reliability::Status sst;
    bool sran = false;
    if (launch && retry_budget_.try_acquire()) {
      hedges_.fetch_add(1, std::memory_order_relaxed);
      CG_COUNTER_INC("serving.hedges");
      tried |= 1u << second.index;
      CallOptions so = opts;
      so.cancel = &stok;
      sst = rs.replica(second.index).local_dists(lx, ps.targets_buf, so, ps.dists_buf);
      sran = true;
      if (sst.is_ok()) ptok.cancel();  // won the race: cancel the primary
    }
    pt.join();
    if (sran) {
      // A loser cancelled *by the race* indicts nobody.
      const bool s_loser = pst.is_ok() && sst.code() == reliability::StatusCode::kCancelled;
      rs.report(second.index, sst.code(), false,
                s_loser || client_resolution(sst, opts), std::chrono::steady_clock::now());
    }
    const bool p_loser =
        sran && sst.is_ok() && pst.code() == reliability::StatusCode::kCancelled;
    rs.report(primary.index, pst.code(), primary.probe,
              p_loser || client_resolution(pst, opts), std::chrono::steady_clock::now());
    if (sran && sst.is_ok()) {
      if (!pst.is_ok()) {
        hedge_wins_.fetch_add(1, std::memory_order_relaxed);
        CG_COUNTER_INC("serving.hedge_wins");
      }
      return {};  // ps.dists_buf already holds the secondary's row
    }
    if (pst.is_ok()) {
      std::copy(prow.begin(), prow.end(), ps.dists_buf.begin());
      return {};
    }
    return pst;  // both legs failed; the primary's status is as good as any
  }

  /// Whole-graph kinds (stitched serves, coalesced trees) need every
  /// shard: when any set is unreachable, fail fast — the answer would
  /// either be wrong (missing a subgraph) or hang on faults.
  [[nodiscard]] reliability::Status whole_graph_guard() {
    const auto now = std::chrono::steady_clock::now();
    for (const auto& rs : replica_sets_) {
      if (!rs->reachable(now)) {
        unavailable_.fetch_add(1, std::memory_order_relaxed);
        CG_COUNTER_INC("serving.unavailable");
        return shard_unavailable_status(rs->shard_id());
      }
    }
    return {};
  }

  RouteResult serve_stitched(const query::Request<W>& req, const CallOptions& opts) {
    if (auto st = whole_graph_guard(); !st.is_ok()) {
      RouteResult out;
      out.status = st;
      return out;
    }
    typename StitchedEngine::ServeOptions so = to_serve_options(opts);
    const auto resp = stitched_->try_serve(req, so);
    RouteResult out;
    out.status = resp.status;
    out.outcome = resp.outcome;
    out.target_dist = resp.target_dist;
    out.settled = resp.settled;
    out.aux = resp.aux;
    return out;
  }

  [[nodiscard]] typename StitchedEngine::ServeOptions to_serve_options(
      const CallOptions& opts) const {
    typename StitchedEngine::ServeOptions so;
    so.deadline = opts.deadline;
    so.cancel = opts.cancel;
    so.check_every = opts.check_every != 0 ? opts.check_every : cfg_.check_every;
    return so;
  }

  /// The per-tenant admission gate (mirrors QueryEngine::preflight's
  /// policy semantics, scoped to one tenant's quota).
  [[nodiscard]] reliability::Status admit(TenantState& ts, const CallOptions& opts) {
    const TenantQuota q = ts.quota;
    if (q.max_in_flight == 0 ||
        ts.in_flight.load(std::memory_order_acquire) < q.max_in_flight) {
      return {};
    }
    switch (q.policy) {
      case query::OverloadPolicy::kReject:
        ts.overloaded.fetch_add(1, std::memory_order_relaxed);
        CG_COUNTER_INC("serving.tenant.rejected");
        return reliability::overloaded("tenant '" + ts.name + "' quota: " +
                                       std::to_string(q.max_in_flight) + " in flight");
      case query::OverloadPolicy::kShed: {
        const std::lock_guard<std::mutex> lock(ts.mu);
        for (reliability::CancelToken* victim : ts.active) {
          if (!victim->cancelled()) {
            victim->cancel();
            ts.shed_victims.fetch_add(1, std::memory_order_relaxed);
            CG_COUNTER_INC("serving.tenant.shed");
            break;
          }
        }
        return {};  // admit over the cap; the victim resolves shortly
      }
      case query::OverloadPolicy::kBlock: {
        ts.blocked.fetch_add(1, std::memory_order_relaxed);
        CG_COUNTER_INC("serving.tenant.blocked");
        const auto enter = std::chrono::steady_clock::now();
        while (ts.in_flight.load(std::memory_order_acquire) >= q.max_in_flight) {
          if (opts.cancel != nullptr && opts.cancel->cancelled()) {
            return reliability::cancelled("cancelled while blocked on tenant quota");
          }
          if (opts.deadline.expired()) {
            return reliability::deadline_exceeded(
                "deadline spent while blocked on tenant quota");
          }
          if (query::block_budget_exhausted(enter, opts.deadline,
                                            std::chrono::steady_clock::now())) {
            ts.deadline_rejects.fetch_add(1, std::memory_order_relaxed);
            ts.overloaded.fetch_add(1, std::memory_order_relaxed);
            CG_COUNTER_INC("serving.tenant.deadline_rejected");
            return reliability::overloaded("tenant '" + ts.name +
                                           "' quota: half the deadline budget spent blocked");
          }
          std::this_thread::yield();
        }
        return {};
      }
    }
    return {};
  }

  /// Per-tenant-per-kind latency histogram
  /// (serving.latency_ns.t<id>.<kind>). Compiled out when
  /// CACHEGRAPH_INSTRUMENT is off — the traffic driver keeps its own
  /// always-on histograms for the bench surface.
  void note_latency([[maybe_unused]] TenantState& ts, [[maybe_unused]] const query::Request<W>& req,
                    [[maybe_unused]] std::chrono::steady_clock::time_point t0) {
    if constexpr (obs::kTelemetryEnabled) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      auto& hist = obs::MetricsRegistry::instance().histogram(
          "serving.latency_ns.t" + std::to_string(tenant_index_of(ts)) + "." +
          query::kind_of(req));
      hist.record(ns <= 0 ? 0 : static_cast<std::uint64_t>(ns));
    }
  }

  [[nodiscard]] std::size_t tenant_index_of(const TenantState& ts) const noexcept {
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      if (tenants_[i].get() == &ts) return i;
    }
    return 0;
  }

  Config cfg_;
  Partition part_;
  std::vector<std::unique_ptr<SetT>> replica_sets_;
  std::unique_ptr<View> view_;
  std::unique_ptr<StitchedEngine> stitched_;
  Coalescer<W> coalescer_;
  parallel::LeasePool<PortalScratch> portal_pool_;
  std::vector<std::unique_ptr<TenantState>> tenants_;
  reliability::RetryBudget retry_budget_;
  /// Probe latency samples feeding the p99 hedge delay. Always-on (a
  /// plain member, not a registry histogram) so hedging works — and
  /// the uninstrumented build's "no registry samples" invariant holds
  /// — with CACHEGRAPH_INSTRUMENT off.
  obs::LatencyHistogram probe_hist_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> portal_pops_{0};
  std::atomic<std::uint64_t> portal_probes_{0};
  std::atomic<std::uint64_t> portal_tree_hits_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> hedges_{0};
  std::atomic<std::uint64_t> hedge_wins_{0};
  std::atomic<std::uint64_t> unavailable_{0};
};

}  // namespace cachegraph::serving
