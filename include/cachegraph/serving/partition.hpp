// serving::Partition — the vertex→shard map for the sharded front-end.
//
// Contiguous equal-width ranges: shard s owns [s*width, min(n,(s+1)*
// width)). Contiguity is the point, not a simplification — the paper's
// lesson is that a *dense range* of vertices is a working set a cache
// level can hold, and a contiguous slice of the CSR keeps each shard's
// local adjacency runs, scratch arrays, and block-cache frames packed
// over one address range. shard_of() is one divide, local ids are one
// subtract, and a shard's slice of any global per-vertex array is a
// subspan — no indirection tables on any hot path.
#pragma once

#include <cstdint>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/types.hpp"

namespace cachegraph::serving {

class Partition {
 public:
  /// Splits `n` vertices into `shards` contiguous ranges of equal
  /// width ceil(n/shards); the last range absorbs the remainder (and
  /// may be empty when shards > n — its engine just never sees
  /// traffic).
  Partition(vertex_t n, std::uint32_t shards) : n_(n), shards_(shards) {
    CG_CHECK(n >= 0, "partition needs a non-negative vertex count");
    CG_CHECK(shards >= 1, "partition needs at least one shard");
    width_ = n == 0 ? 1 : (n + static_cast<vertex_t>(shards) - 1) / static_cast<vertex_t>(shards);
    if (width_ == 0) width_ = 1;
  }

  [[nodiscard]] vertex_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t num_shards() const noexcept { return shards_; }

  /// Owning shard of global vertex v.
  [[nodiscard]] std::uint32_t shard_of(vertex_t v) const noexcept {
    const auto s = static_cast<std::uint32_t>(v / width_);
    return s < shards_ ? s : shards_ - 1;
  }

  /// First global vertex of shard s.
  [[nodiscard]] vertex_t begin(std::uint32_t s) const noexcept {
    const vertex_t b = static_cast<vertex_t>(s) * width_;
    return b < n_ ? b : n_;
  }

  /// One past the last global vertex of shard s.
  [[nodiscard]] vertex_t end(std::uint32_t s) const noexcept {
    const vertex_t e = (static_cast<vertex_t>(s) + 1) * width_;
    return e < n_ ? e : n_;
  }

  [[nodiscard]] vertex_t size(std::uint32_t s) const noexcept { return end(s) - begin(s); }

  /// Global → shard-local id (caller guarantees v belongs to s).
  [[nodiscard]] vertex_t local_id(std::uint32_t s, vertex_t v) const noexcept {
    return v - begin(s);
  }

  /// Shard-local → global id.
  [[nodiscard]] vertex_t global_id(std::uint32_t s, vertex_t lv) const noexcept {
    return begin(s) + lv;
  }

 private:
  vertex_t n_;
  std::uint32_t shards_;
  vertex_t width_;
};

}  // namespace cachegraph::serving
