// serving::ReplicaSet — R bit-identical replicas of one shard, plus
// the health machinery that decides which one serves.
//
// Each replica is a full private Shard (engine, overlay, result cache,
// TaskPool, optionally its own out-of-core store + block-cache
// budget): separate failure domains all the way down to the file. The
// replicas are deterministic functions of (global CSR, partition,
// shard id), so their local CSRs, overlays, cached trees, and blocked
// files are bit-identical — which is the whole consistency argument:
// ANY replica's answer is THE answer, and failover can never change a
// result, only whether one is produced. Differential tests pin this
// (serving_test ReplicaBitIdentity); mutations preserve it because
// insert/remove fan out to every replica at the same quiescent point.
//
// Routing policy (mechanism here, policy in Router):
//   - pick(tried, now): first available replica (healthy/suspect),
//     preferring the current primary for cache locality; when none is
//     available, a quarantined replica whose probation has elapsed may
//     be claimed as a half-open probe (one CAS ticket per window).
//   - report(idx, code, ...): feeds the outcome back into the health
//     machine; quarantine/recovery transitions publish a state gauge,
//     bump counters, advance the primary off sick replicas, and note a
//     FlightRecorder record (quarantines are exactly the "what just
//     happened" moments the black box exists for).
//   - reachable(now): degraded-mode hint — false means no replica can
//     serve *right now* (all quarantined, probation pending or probe
//     ticket taken), so the Router prunes this shard like a dead end
//     and answers that need it fail fast instead of hanging.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/obs/flight_recorder.hpp"
#include "cachegraph/obs/metrics.hpp"
#include "cachegraph/obs/telemetry.hpp"
#include "cachegraph/reliability/status.hpp"
#include "cachegraph/serving/health.hpp"
#include "cachegraph/serving/partition.hpp"
#include "cachegraph/serving/scrubber.hpp"
#include "cachegraph/serving/shard.hpp"

namespace cachegraph::serving {

template <Weight W, class Queue = query::IndexedQueue<W>>
class ReplicaSet {
 public:
  using ShardT = Shard<W, Queue>;
  using clock = std::chrono::steady_clock;

  /// A routing decision: which replica, and whether this request is
  /// the half-open probe of a quarantined one.
  struct Pick {
    std::uint32_t index;
    bool probe;
  };

  static constexpr std::uint32_t kMaxReplicas = 32;  ///< pick() uses a 32-bit tried mask

  ReplicaSet(const graph::AdjacencyArray<W>& global, const Partition& part,
             std::uint32_t shard_id, std::uint32_t replicas, int pool_threads,
             const HealthConfig& health_cfg, std::uint64_t seed) {
    CG_CHECK(replicas >= 1 && replicas <= kMaxReplicas, "1..32 replicas per shard");
    shard_id_ = shard_id;
    replicas_.reserve(replicas);
    health_.reserve(replicas);
    for (std::uint32_t r = 0; r < replicas; ++r) {
      replicas_.push_back(std::make_unique<ShardT>(global, part, shard_id, pool_threads));
      // Distinct deterministic probation streams per replica.
      const std::uint64_t mix =
          seed ^ (0x9e3779b97f4a7c15ULL * (std::uint64_t{shard_id} * kMaxReplicas + r + 1));
      health_.push_back(std::make_unique<ReplicaHealth>(health_cfg, mix));
    }
  }

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  [[nodiscard]] std::uint32_t shard_id() const noexcept { return shard_id_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(replicas_.size());
  }

  [[nodiscard]] ShardT& replica(std::uint32_t r) noexcept { return *replicas_[r]; }
  [[nodiscard]] const ShardT& replica(std::uint32_t r) const noexcept { return *replicas_[r]; }
  [[nodiscard]] ReplicaHealth& health(std::uint32_t r) noexcept { return *health_[r]; }

  /// The current primary — what non-probing read paths (the stitched
  /// whole-graph view) use. Advanced off replicas as they quarantine.
  [[nodiscard]] std::uint32_t current_index() const noexcept {
    return current_.load(std::memory_order_acquire) % size();
  }
  [[nodiscard]] ShardT& current_shard() noexcept { return *replicas_[current_index()]; }
  [[nodiscard]] const ShardT& current_shard() const noexcept {
    return *replicas_[current_index()];
  }

  /// Picks a replica for one attempt, skipping indices in `tried`
  /// (bitmask). Prefers the primary, then siblings in order; when no
  /// replica is available, tries to claim a half-open probe on a
  /// quarantined one whose probation has elapsed. nullopt = nothing
  /// can serve right now.
  [[nodiscard]] std::optional<Pick> pick(std::uint32_t tried, clock::time_point now) {
    const std::uint32_t n = size();
    const std::uint32_t cur = current_.load(std::memory_order_acquire);
    for (std::uint32_t k = 0; k < n; ++k) {
      const std::uint32_t i = (cur + k) % n;
      if ((tried & (1u << i)) != 0) continue;
      if (health_[i]->available()) return Pick{i, false};
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      if ((tried & (1u << i)) != 0) continue;
      if (health_[i]->try_begin_probe(now)) return Pick{i, true};
    }
    return std::nullopt;
  }

  /// Feeds an attempt's outcome back. `neutral` marks resolutions that
  /// indict nobody (client cancel, genuinely-expired client deadline,
  /// invalid argument): they release a probe ticket without moving the
  /// state machine.
  void report(std::uint32_t idx, reliability::StatusCode code, bool probe, bool neutral,
              clock::time_point now) {
    std::optional<ReplicaHealth::Transition> tr;
    if (neutral) {
      if (probe) health_[idx]->abandon_probe();
      return;
    }
    if (code == reliability::StatusCode::kOk) {
      tr = health_[idx]->on_success();
    } else if (replica_fault_code(code) || code == reliability::StatusCode::kCancelled) {
      // kCancelled without a fired client token = a task aborted by a
      // thrown fault inside this replica — that indicts the replica.
      tr = health_[idx]->on_failure(code, now);
    } else if (probe) {
      health_[idx]->abandon_probe();
    }
    if (tr) publish(idx, *tr);
  }

  /// Degraded-mode hint: can any replica serve a request arriving now
  /// (available, or probe-able)? False ⇒ the Router treats this shard
  /// as a dead end and fails requests that need it, fast.
  [[nodiscard]] bool reachable(clock::time_point now) const {
    for (const auto& h : health_) {
      if (h->reachable(now)) return true;
    }
    return false;
  }

  // --------------------------------------------------------- mutations

  /// Mutations fan out to every replica at the same quiescent point —
  /// this is what keeps the replicas bit-identical for free.
  void insert_edge(vertex_t lu, vertex_t global_v, W w, const Partition& part) {
    for (auto& r : replicas_) r->insert_edge(lu, global_v, w, part);
  }

  bool remove_edge(vertex_t lu, vertex_t global_v, const Partition& part) {
    bool removed = false;
    for (auto& r : replicas_) removed = r->remove_edge(lu, global_v, part) || removed;
    return removed;
  }

  // ------------------------------------------------------- out-of-core

  /// Enables the out-of-core mirror on every replica, each in its own
  /// subdirectory `<dir>/r<i>/` — separate files, so one replica's
  /// media corruption cannot touch a sibling's copy (and the scrubber
  /// has a sibling to repair from).
  [[nodiscard]] reliability::Status enable_out_of_core(const std::filesystem::path& dir,
                                                       std::size_t block_bytes,
                                                       std::size_t budget_blocks) {
    for (std::uint32_t r = 0; r < size(); ++r) {
      // Two-step concat: GCC 12's -Wrestrict false-fires on
      // operator+(const char*, string&&) inlined through path::/.
      std::string leaf = "r";
      leaf += std::to_string(r);
      const std::filesystem::path sub = dir / leaf;
      std::error_code ec;
      std::filesystem::create_directories(sub, ec);
      if (ec) return reliability::resource_exhausted("cannot create " + sub.string());
      if (auto st = replicas_[r]->enable_out_of_core(sub, block_bytes, budget_blocks);
          !st.is_ok()) {
        return st;
      }
    }
    return {};
  }

  /// Scrub targets for every out-of-core replica, siblings wired up
  /// for repair. Empty when the set is in-memory.
  [[nodiscard]] std::vector<BlockScrubber::Target> scrub_targets() const {
    std::vector<BlockScrubber::Target> out;
    for (std::uint32_t r = 0; r < size(); ++r) {
      const auto* file = replicas_[r]->ooc_file();
      if (file == nullptr) continue;
      BlockScrubber::Target t;
      t.path = replicas_[r]->ooc_path();
      t.block_bytes = static_cast<std::uint32_t>(file->block_bytes());
      t.num_blocks = static_cast<std::uint32_t>(file->num_blocks());
      for (std::uint32_t s = 0; s < size(); ++s) {
        if (s != r && replicas_[s]->ooc_file() != nullptr) {
          t.siblings.push_back(replicas_[s]->ooc_path());
        }
      }
      out.push_back(std::move(t));
    }
    return out;
  }

  // ----------------------------------------------------------- obs

  struct Stats {
    std::uint64_t quarantines = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t probes = 0;
  };

  [[nodiscard]] Stats stats() const {
    Stats s;
    for (const auto& h : health_) {
      const auto hs = h->stats();
      s.quarantines += hs.quarantines;
      s.recoveries += hs.recoveries;
      s.probes += hs.probes;
    }
    return s;
  }

 private:
  void publish(std::uint32_t idx, const ReplicaHealth::Transition& tr) {
    obs::MetricsRegistry::instance()
        .gauge("serving.replica.s" + std::to_string(shard_id_) + ".r" + std::to_string(idx) +
               ".state")
        .set(static_cast<std::int64_t>(tr.to));
    if (tr.to == ReplicaState::kQuarantined) {
      CG_COUNTER_INC("serving.replica.quarantines");
      advance_current(idx);
      // Quarantines are black-box moments: note one record so an armed
      // FlightRecorder dumps the ring (DATA_LOSS/DEADLINE/OVERLOADED
      // causes are dump triggers). source = shard, target = replica.
      if constexpr (obs::kTelemetryEnabled) {
        obs::RequestRecord rec;
        rec.kind = obs::kKindMultiTarget;
        rec.status_code = static_cast<std::uint8_t>(tr.cause);
        rec.aborted = true;
        rec.source = static_cast<std::int32_t>(shard_id_);
        rec.target = static_cast<std::int32_t>(idx);
        obs::FlightRecorder::instance().note(rec);
      }
    } else if (tr.from == ReplicaState::kProbing && tr.to == ReplicaState::kHealthy) {
      CG_COUNTER_INC("serving.replica.recoveries");
    }
  }

  /// Moves the primary off `sick` to the first available sibling (if
  /// any — all-quarantined keeps it in place; reads through it still
  /// produce correct bytes, health just reports the set unreachable).
  void advance_current(std::uint32_t sick) {
    const std::uint32_t n = size();
    std::uint32_t cur = current_.load(std::memory_order_acquire);
    if (cur % n != sick) return;
    for (std::uint32_t k = 1; k < n; ++k) {
      const std::uint32_t i = (sick + k) % n;
      if (health_[i]->available()) {
        current_.store(i, std::memory_order_release);
        return;
      }
    }
  }

  std::uint32_t shard_id_ = 0;
  std::vector<std::unique_ptr<ShardT>> replicas_;
  std::vector<std::unique_ptr<ReplicaHealth>> health_;
  std::atomic<std::uint32_t> current_{0};
};

}  // namespace cachegraph::serving
