// BlockScrubber — background integrity patrol for out-of-core shard
// replicas.
//
// The store already verifies every block at fault time (checksum-first
// BlockHeader, see store/format.hpp), so a query can never *consume*
// a corrupt block — but with replication the right response to
// corruption is no longer just DATA_LOSS: a sibling replica's blocked
// file is bit-identical (both were written from the same local CSR
// with the same WriteOptions), so a bad block can be *repaired* in
// place by copying the sibling's copy of that block. The scrubber is
// the I/O-optimal sequential walk (Haverkort's grid-traversal spirit:
// touch each block once, in file order) that finds bad blocks before a
// query does and performs that repair.
//
// Each pass scrubs at most `blocks_per_pass` blocks (the rate limit —
// a patrol, not a scan storm), resuming where the previous pass
// stopped, round-robin across registered targets. A corrupt block is
// effectively quarantined the moment it is detected: the BlockCache
// never admits a block that fails fill verification, so between
// detection and repair queries fail over to a sibling replica rather
// than read garbage. Repair re-verifies the sibling's block before and
// the target's block after the write, and fsyncs — a torn repair is
// just another corrupt block, caught on the next pass.
//
// Concurrency: reads race benignly with serving preads (both read
// committed bytes); the repair write races with a concurrent fault on
// the same block only in the direction of *more* verification — a torn
// read fails the checksum and surfaces as DATA_LOSS, never as wrong
// records. All scrubbing I/O is byte-level and weight-type-agnostic.
#pragma once

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/checksum.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/store/format.hpp"

namespace cachegraph::serving {

/// Namespace-scope (see retry_budget.hpp on the `= {}` default-arg
/// quirk); aliased as BlockScrubber::Config.
struct ScrubberConfig {
  std::uint32_t blocks_per_pass = 64;  ///< rate limit per wakeup
  std::chrono::milliseconds pass_interval{10};
};

class BlockScrubber {
 public:
  /// One blocked file to patrol, plus the sibling replicas' files to
  /// repair from. ReplicaSet::scrub_targets() builds these.
  struct Target {
    std::filesystem::path path;
    std::uint32_t block_bytes = 0;
    std::uint32_t num_blocks = 0;
    std::uint64_t data_offset = sizeof(store::FileHeader);
    std::vector<std::filesystem::path> siblings;
  };

  using Config = ScrubberConfig;

  struct Stats {
    std::uint64_t scanned = 0;       ///< blocks read + verified
    std::uint64_t corrupt = 0;       ///< verification failures found
    std::uint64_t repaired = 0;      ///< blocks rewritten from a sibling
    std::uint64_t repair_failed = 0; ///< corrupt with no good sibling copy
    std::uint64_t passes = 0;
  };

  explicit BlockScrubber(Config cfg = {}) : cfg_(cfg) {
    CG_CHECK(cfg_.blocks_per_pass >= 1, "scrubber needs a positive rate");
  }

  BlockScrubber(const BlockScrubber&) = delete;
  BlockScrubber& operator=(const BlockScrubber&) = delete;

  ~BlockScrubber() { stop(); }

  /// Register a file to patrol. Not safe concurrently with a running
  /// background thread — add targets before start().
  void add_target(Target t) {
    CG_CHECK(!running(), "add_target requires the scrubber to be stopped");
    CG_CHECK(t.block_bytes >= store::kMinBlockBytes, "target block_bytes too small");
    targets_.push_back(std::move(t));
  }

  [[nodiscard]] std::size_t num_targets() const noexcept { return targets_.size(); }

  /// One rate-limited slice of the patrol: up to blocks_per_pass
  /// blocks, resuming round-robin where the last pass stopped.
  /// Synchronous — tests call this directly for determinism.
  void scrub_pass() {
    std::uint32_t budget = cfg_.blocks_per_pass;
    std::uint64_t total = 0;
    for (const auto& t : targets_) total += t.num_blocks;
    if (total == 0) return;
    while (budget > 0 && total > 0) {
      if (target_cursor_ >= targets_.size()) target_cursor_ = 0;
      const Target& t = targets_[target_cursor_];
      if (block_cursor_ >= t.num_blocks) {
        block_cursor_ = 0;
        ++target_cursor_;
        continue;
      }
      scrub_block(t, block_cursor_);
      ++block_cursor_;
      --budget;
      --total;
    }
    passes_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Full patrol of every block of every target, ignoring the rate
  /// limit — startup integrity check and test harness entry point.
  void scrub_all() {
    for (const auto& t : targets_) {
      for (std::uint32_t b = 0; b < t.num_blocks; ++b) scrub_block(t, b);
    }
    passes_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Starts the background patrol thread (one slice per pass_interval).
  void start() {
    CG_CHECK(!running(), "scrubber already running");
    stop_ = false;
    thread_ = std::thread([this] {
      std::unique_lock lk(mu_);
      while (!stop_) {
        if (cv_.wait_for(lk, cfg_.pass_interval, [this] { return stop_; })) break;
        lk.unlock();
        scrub_pass();
        lk.lock();
      }
    });
  }

  /// Stops and joins the patrol thread. Idempotent.
  void stop() {
    {
      std::lock_guard lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] bool running() const noexcept { return thread_.joinable(); }

  [[nodiscard]] Stats stats() const noexcept {
    return Stats{scanned_.load(std::memory_order_relaxed),
                 corrupt_.load(std::memory_order_relaxed),
                 repaired_.load(std::memory_order_relaxed),
                 repair_failed_.load(std::memory_order_relaxed),
                 passes_.load(std::memory_order_relaxed)};
  }

  /// Pure verification of one block image: checksum over bytes
  /// [8, block_bytes) must match the checksum-first header field, and
  /// the header must identify itself as block `block_id`.
  [[nodiscard]] static bool verify_block(const std::uint8_t* block, std::uint32_t block_bytes,
                                         std::uint32_t block_id) noexcept {
    store::BlockHeader hdr;
    std::memcpy(&hdr, block, sizeof(hdr));
    if (hdr.block_id != block_id) return false;
    return fnv1a64(block + sizeof(std::uint64_t), block_bytes - sizeof(std::uint64_t)) ==
           hdr.block_checksum;
  }

 private:
  void scrub_block(const Target& t, std::uint32_t b) {
    scanned_.fetch_add(1, std::memory_order_relaxed);
    CG_COUNTER_INC("serving.scrub.scanned");
    std::vector<std::uint8_t> buf(t.block_bytes);
    if (read_block(t.path, t, b, buf.data()) && verify_block(buf.data(), t.block_bytes, b)) {
      return;
    }
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    CG_COUNTER_INC("serving.scrub.corrupt");
    // Repair: first sibling whose copy of this block verifies wins.
    for (const auto& sib : t.siblings) {
      if (!read_block(sib, t, b, buf.data()) || !verify_block(buf.data(), t.block_bytes, b)) {
        continue;
      }
      if (write_block(t, b, buf.data()) && read_block(t.path, t, b, buf.data()) &&
          verify_block(buf.data(), t.block_bytes, b)) {
        repaired_.fetch_add(1, std::memory_order_relaxed);
        CG_COUNTER_INC("serving.scrub.repaired");
        return;
      }
    }
    repair_failed_.fetch_add(1, std::memory_order_relaxed);
    CG_COUNTER_INC("serving.scrub.repair_failed");
  }

  [[nodiscard]] static bool read_block(const std::filesystem::path& path, const Target& t,
                                       std::uint32_t b, std::uint8_t* out) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return false;
    const auto off = static_cast<long>(t.data_offset + std::uint64_t{b} * t.block_bytes);
    const bool ok = std::fseek(f, off, SEEK_SET) == 0 &&
                    std::fread(out, 1, t.block_bytes, f) == t.block_bytes;
    std::fclose(f);
    return ok;
  }

  [[nodiscard]] static bool write_block(const Target& t, std::uint32_t b,
                                        const std::uint8_t* data) {
    std::FILE* f = std::fopen(t.path.c_str(), "rb+");
    if (f == nullptr) return false;
    const auto off = static_cast<long>(t.data_offset + std::uint64_t{b} * t.block_bytes);
    bool ok = std::fseek(f, off, SEEK_SET) == 0 &&
              std::fwrite(data, 1, t.block_bytes, f) == t.block_bytes;
    ok = std::fflush(f) == 0 && ok;
    ok = ::fsync(fileno(f)) == 0 && ok;
    std::fclose(f);
    return ok;
  }

  Config cfg_;
  std::vector<Target> targets_;
  std::size_t target_cursor_ = 0;
  std::uint32_t block_cursor_ = 0;

  std::atomic<std::uint64_t> scanned_{0};
  std::atomic<std::uint64_t> corrupt_{0};
  std::atomic<std::uint64_t> repaired_{0};
  std::atomic<std::uint64_t> repair_failed_{0};
  std::atomic<std::uint64_t> passes_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace cachegraph::serving
