// serving::TrafficDriver — a replayable open-loop load generator for
// the sharded front-end.
//
// Two cleanly separated halves:
//
//  1. build_schedule(config, n) is PURE: seed → the complete request
//     list (arrival offset, tenant, kind, source/target/k/radius),
//     byte-for-byte reproducible on any machine. Per tenant it draws
//     exponential interarrivals at the profile's rate (Poisson
//     arrivals, the standard open-loop model), a request kind from the
//     profile's mix weights, and sources from a Zipf distribution over
//     a seed-permuted vertex order — hot sources exist (they are what
//     the coalescer and result caches exploit) but *which* vertices
//     are hot is seed-dependent, not structure-dependent. traffic_test
//     pins replay equality.
//
//  2. run(router, config, schedule) is the OPEN LOOP: a dispatcher
//     walks the schedule on the wall clock and hands each arrival to a
//     worker pool the moment it is due — arrivals never wait for
//     completions, so queueing delay is real and the recorded latency
//     (completion time minus *scheduled arrival*) is the number a
//     closed-loop harness structurally cannot measure (coordinated
//     omission). Per-(tenant, kind) latencies land in driver-owned
//     LatencyHistograms — always on, independent of the
//     CACHEGRAPH_INSTRUMENT build flag, because they are the bench
//     deliverable, not telemetry.
//
// The report carries nearest-rank p50/p99/p99.9 per tenant per kind
// plus terminal-status tallies; bench_query_engine's traffic scene
// emits the rows into its JSON for the CI smoke to assert on.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/rng.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/obs/histogram.hpp"
#include "cachegraph/query/request.hpp"
#include "cachegraph/reliability/status.hpp"
#include "cachegraph/serving/router.hpp"

namespace cachegraph::serving {

/// Zipf(skew) sampler over `n` ranks, each mapped to a vertex through
/// a seeded Fisher-Yates permutation. pick() is a binary search over
/// the precomputed CDF — O(log n), no rejection.
class ZipfPicker {
 public:
  ZipfPicker(vertex_t n, double skew, Rng& rng) : perm_(static_cast<std::size_t>(n)) {
    CG_CHECK(n > 0, "zipf needs at least one vertex");
    cdf_.resize(static_cast<std::size_t>(n));
    double cum = 0.0;
    for (std::size_t r = 0; r < cdf_.size(); ++r) {
      cum += 1.0 / std::pow(static_cast<double>(r + 1), skew);
      cdf_[r] = cum;
    }
    for (double& c : cdf_) c /= cum;
    std::iota(perm_.begin(), perm_.end(), vertex_t{0});
    shuffle(perm_.begin(), perm_.end(), rng);
  }

  [[nodiscard]] vertex_t pick(Rng& rng) const {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto rank = static_cast<std::size_t>(
        it == cdf_.end() ? cdf_.size() - 1 : static_cast<std::size_t>(it - cdf_.begin()));
    return perm_[rank];
  }

 private:
  std::vector<double> cdf_;
  std::vector<vertex_t> perm_;
};

/// The request shapes the driver generates (a serving-mix subset of
/// query::Request — analytics kinds are batch work, not traffic).
enum class TrafficKind : std::uint8_t { kPointToPoint = 0, kKNearest, kBounded, kFullSssp };
inline constexpr std::size_t kNumTrafficKinds = 4;

[[nodiscard]] constexpr const char* to_string(TrafficKind k) noexcept {
  switch (k) {
    case TrafficKind::kPointToPoint: return "point_to_point";
    case TrafficKind::kKNearest: return "k_nearest";
    case TrafficKind::kBounded: return "bounded";
    case TrafficKind::kFullSssp: return "full_sssp";
  }
  return "?";
}

template <Weight W>
struct TenantProfile {
  std::string name;
  double rate_hz = 100.0;    ///< Poisson arrival rate
  double zipf_skew = 1.0;    ///< source popularity skew (0 = uniform)
  /// Kind mix (relative weights; zero drops the kind from the mix).
  double weight_p2p = 1.0;
  double weight_k_nearest = 0.0;
  double weight_bounded = 0.0;
  double weight_full_sssp = 0.0;
  vertex_t k = 8;            ///< k for generated KNearest requests
  W radius = W{4};           ///< radius for generated Bounded requests
  std::chrono::nanoseconds deadline{0};  ///< per-request budget; 0 = none
};

template <Weight W>
struct TrafficConfig {
  std::uint64_t seed = 1;
  std::chrono::nanoseconds duration{std::chrono::milliseconds(100)};
  std::vector<TenantProfile<W>> tenants;
};

/// One scheduled arrival. Plain data, equality-comparable — the replay
/// contract is schedule == schedule for equal (config, n).
template <Weight W>
struct ScheduledRequest {
  std::uint64_t at_ns = 0;  ///< offset from traffic start
  std::uint32_t tenant = 0;
  TrafficKind kind = TrafficKind::kPointToPoint;
  vertex_t source = 0;
  vertex_t target = 0;  ///< p2p only
  vertex_t k = 0;       ///< k-nearest only
  W radius = W{0};      ///< bounded only

  friend bool operator==(const ScheduledRequest&, const ScheduledRequest&) = default;
};

/// Deterministically expands a config into the full arrival list over
/// `n` vertices, sorted by arrival time (ties broken by tenant then
/// kind — total order, so the merge is reproducible too).
template <Weight W>
[[nodiscard]] std::vector<ScheduledRequest<W>> build_schedule(const TrafficConfig<W>& cfg,
                                                              vertex_t n) {
  CG_CHECK(n > 0, "traffic needs a non-empty graph");
  std::vector<ScheduledRequest<W>> out;
  const auto horizon = static_cast<double>(cfg.duration.count());
  for (std::uint32_t t = 0; t < cfg.tenants.size(); ++t) {
    const TenantProfile<W>& tp = cfg.tenants[t];
    if (tp.rate_hz <= 0.0) continue;
    // Independent per-tenant stream: tenants can be added or removed
    // without perturbing each other's draws.
    Rng rng(cfg.seed ^ (0x9e3779b97f4a7c15ULL * (t + 1)));
    const ZipfPicker sources(n, tp.zipf_skew, rng);
    const double wsum =
        tp.weight_p2p + tp.weight_k_nearest + tp.weight_bounded + tp.weight_full_sssp;
    CG_CHECK(wsum > 0.0, "tenant '" + tp.name + "' has an all-zero kind mix");
    const double cut_p2p = tp.weight_p2p / wsum;
    const double cut_kn = cut_p2p + tp.weight_k_nearest / wsum;
    const double cut_bd = cut_kn + tp.weight_bounded / wsum;
    double t_ns = 0.0;
    for (;;) {
      // Exponential interarrival at rate_hz; uniform01() < 1 so the
      // log argument stays positive.
      t_ns += -std::log(1.0 - rng.uniform01()) / tp.rate_hz * 1e9;
      if (t_ns >= horizon) break;
      ScheduledRequest<W> req;
      req.at_ns = static_cast<std::uint64_t>(t_ns);
      req.tenant = t;
      req.source = sources.pick(rng);
      const double u = rng.uniform01();
      if (u < cut_p2p) {
        req.kind = TrafficKind::kPointToPoint;
        req.target = static_cast<vertex_t>(rng.below(static_cast<std::uint64_t>(n)));
      } else if (u < cut_kn) {
        req.kind = TrafficKind::kKNearest;
        req.k = tp.k;
      } else if (u < cut_bd) {
        req.kind = TrafficKind::kBounded;
        req.radius = tp.radius;
      } else {
        req.kind = TrafficKind::kFullSssp;
      }
      out.push_back(req);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
    if (a.tenant != b.tenant) return a.tenant < b.tenant;
    return static_cast<std::uint8_t>(a.kind) < static_cast<std::uint8_t>(b.kind);
  });
  return out;
}

template <Weight W, class Queue = query::IndexedQueue<W>>
class TrafficDriver {
 public:
  struct Row {
    std::uint32_t tenant;
    std::string tenant_name;
    TrafficKind kind;
    std::uint64_t count = 0;
    std::uint64_t p50_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t p999_ns = 0;
    std::uint64_t max_ns = 0;
    std::uint64_t ok = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t other = 0;
  };

  struct Report {
    std::vector<Row> rows;  ///< tenant-major, kind-minor; count > 0 only
    std::uint64_t total_requests = 0;
    std::uint64_t total_ok = 0;
  };

  /// Registers cfg's tenants on `router` (quota from `quotas[i]` when
  /// provided), plays `schedule` open-loop with `workers` service
  /// threads, and reports per-(tenant, kind) latency percentiles.
  /// Latency is completion − scheduled arrival: service time PLUS the
  /// queueing the open loop makes visible.
  static Report run(Router<W, Queue>& router, const TrafficConfig<W>& cfg,
                    const std::vector<ScheduledRequest<W>>& schedule, int workers,
                    const std::vector<typename Router<W, Queue>::TenantQuota>& quotas = {}) {
    CG_CHECK(workers >= 1, "traffic needs at least one worker");
    const std::size_t nt = cfg.tenants.size();
    std::vector<std::uint32_t> tenant_ids(nt);
    for (std::size_t t = 0; t < nt; ++t) {
      tenant_ids[t] = router.add_tenant(
          cfg.tenants[t].name, t < quotas.size()
                                   ? quotas[t]
                                   : typename Router<W, Queue>::TenantQuota{});
    }

    Cells cells(nt);
    Dispatch dispatch;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    const auto start = std::chrono::steady_clock::now();
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&] { worker_loop(router, cfg, schedule, tenant_ids, start,
                                          dispatch, cells); });
    }
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      const auto due = start + std::chrono::nanoseconds(schedule[i].at_ns);
      std::this_thread::sleep_until(due);
      {
        const std::lock_guard<std::mutex> lock(dispatch.mu);
        dispatch.ready.push_back(i);
      }
      dispatch.cv.notify_one();
    }
    {
      const std::lock_guard<std::mutex> lock(dispatch.mu);
      dispatch.done = true;
    }
    dispatch.cv.notify_all();
    for (auto& th : pool) th.join();

    Report rep;
    rep.total_requests = schedule.size();
    for (std::size_t t = 0; t < nt; ++t) {
      for (std::size_t k = 0; k < kNumTrafficKinds; ++k) {
        const Cell& cell = *cells.grid[t * kNumTrafficKinds + k];
        const obs::HistogramSnapshot snap = cell.latency.snapshot();
        if (snap.count == 0) continue;
        Row row;
        row.tenant = static_cast<std::uint32_t>(t);
        row.tenant_name = cfg.tenants[t].name;
        row.kind = static_cast<TrafficKind>(k);
        row.count = snap.count;
        row.p50_ns = snap.percentile(50.0);
        row.p99_ns = snap.percentile(99.0);
        row.p999_ns = snap.percentile(99.9);
        row.max_ns = snap.max();
        row.ok = cell.ok.load(std::memory_order_relaxed);
        row.overloaded = cell.overloaded.load(std::memory_order_relaxed);
        row.deadline_exceeded = cell.deadline.load(std::memory_order_relaxed);
        row.cancelled = cell.cancelled.load(std::memory_order_relaxed);
        row.other = cell.other.load(std::memory_order_relaxed);
        rep.total_ok += row.ok;
        rep.rows.push_back(std::move(row));
      }
    }
    return rep;
  }

 private:
  struct Cell {
    obs::LatencyHistogram latency;
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> overloaded{0};
    std::atomic<std::uint64_t> deadline{0};
    std::atomic<std::uint64_t> cancelled{0};
    std::atomic<std::uint64_t> other{0};
  };

  struct Cells {
    explicit Cells(std::size_t tenants) {
      grid.reserve(tenants * kNumTrafficKinds);
      for (std::size_t i = 0; i < tenants * kNumTrafficKinds; ++i) {
        grid.push_back(std::make_unique<Cell>());
      }
    }
    std::vector<std::unique_ptr<Cell>> grid;  ///< tenant-major
  };

  struct Dispatch {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::size_t> ready;  ///< schedule indices due now
    bool done = false;
  };

  static void worker_loop(Router<W, Queue>& router, const TrafficConfig<W>& cfg,
                          const std::vector<ScheduledRequest<W>>& schedule,
                          const std::vector<std::uint32_t>& tenant_ids,
                          std::chrono::steady_clock::time_point start, Dispatch& dispatch,
                          Cells& cells) {
    for (;;) {
      std::size_t i;
      {
        std::unique_lock<std::mutex> lk(dispatch.mu);
        dispatch.cv.wait(lk, [&] { return !dispatch.ready.empty() || dispatch.done; });
        if (dispatch.ready.empty()) return;
        i = dispatch.ready.front();
        dispatch.ready.pop_front();
      }
      const ScheduledRequest<W>& sreq = schedule[i];
      const TenantProfile<W>& tp = cfg.tenants[sreq.tenant];
      CallOptions opts;
      if (tp.deadline.count() > 0) {
        // Budget from the *scheduled* arrival: time spent queued
        // behind the open loop counts against the request, exactly as
        // a client-side deadline would.
        opts.deadline = reliability::Deadline::at(
            start + std::chrono::nanoseconds(sreq.at_ns) + tp.deadline);
      }
      const auto result = router.try_serve(tenant_ids[sreq.tenant], to_request(sreq), opts);
      const auto lat = std::chrono::steady_clock::now() -
                       (start + std::chrono::nanoseconds(sreq.at_ns));
      Cell& cell = *cells.grid[static_cast<std::size_t>(sreq.tenant) * kNumTrafficKinds +
                               static_cast<std::size_t>(sreq.kind)];
      const auto lat_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(lat).count();
      cell.latency.record(lat_ns <= 0 ? 0 : static_cast<std::uint64_t>(lat_ns));
      switch (result.status.code()) {
        case reliability::StatusCode::kOk:
          cell.ok.fetch_add(1, std::memory_order_relaxed);
          break;
        case reliability::StatusCode::kOverloaded:
          cell.overloaded.fetch_add(1, std::memory_order_relaxed);
          break;
        case reliability::StatusCode::kDeadlineExceeded:
          cell.deadline.fetch_add(1, std::memory_order_relaxed);
          break;
        case reliability::StatusCode::kCancelled:
          cell.cancelled.fetch_add(1, std::memory_order_relaxed);
          break;
        default:
          cell.other.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
  }

  [[nodiscard]] static query::Request<W> to_request(const ScheduledRequest<W>& s) {
    switch (s.kind) {
      case TrafficKind::kPointToPoint:
        return query::Request<W>{query::PointToPoint{s.source, s.target}};
      case TrafficKind::kKNearest:
        return query::Request<W>{query::KNearest{s.source, s.k}};
      case TrafficKind::kBounded:
        return query::Request<W>{query::Bounded<W>{s.source, s.radius}};
      case TrafficKind::kFullSssp:
        return query::Request<W>{query::FullSSSP{s.source}};
    }
    return query::Request<W>{query::FullSSSP{s.source}};
  }
};

}  // namespace cachegraph::serving
