// serving::Coalescer — concurrent-duplicate suppression for full-SSSP
// computes.
//
// Zipf-shaped source popularity (the traffic driver's model, and every
// production request log) means the same hot source is asked for by
// many tenants *at the same time*. The ResultCache already dedupes
// across time; the coalescer dedupes across concurrency: the first
// thread to ask for a source becomes the *leader* and computes, every
// thread that asks while the flight is open becomes a *follower* and
// waits on the flight's condition variable; the leader publishes one
// shared immutable tree to all of them and retires the flight. N
// concurrent identical requests cost one search — stats().computes is
// the proof the tests pin.
//
// The flight table holds only open flights (this is not a cache — the
// ResultCache/shard layer owns reuse across time), so memory is
// bounded by concurrency, not by key space. The leader computes on its
// own thread, so there is no executor to deadlock: followers wait on a
// leader that is by construction making progress. A follower's
// deadline is honored while waiting (DEADLINE_EXCEEDED without
// cancelling the leader — others may still want the result); its
// cancel token is checked on entry.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cachegraph/common/types.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/reliability/status.hpp"
#include "cachegraph/serving/shard.hpp"

namespace cachegraph::serving {

template <Weight W>
class Coalescer {
 public:
  /// One immutable full single-source tree over global vertex ids.
  struct Tree {
    std::vector<W> dist;
    std::vector<vertex_t> parent;
  };
  using TreePtr = std::shared_ptr<const Tree>;

  struct Result {
    reliability::Status status;
    TreePtr tree;      ///< null on any non-OK status
    bool leader = false;  ///< true when this call ran the compute
  };

  struct Stats {
    std::uint64_t computes = 0;  ///< flights led (searches actually run)
    std::uint64_t joined = 0;    ///< calls that attached to an open flight
    std::uint64_t timeouts = 0;  ///< followers whose deadline expired waiting
  };

  /// The tree for `source`: leads a new flight (running `compute`,
  /// which must return {OK, tree} or {error, null}) or joins the open
  /// one. `compute` is invoked exactly once per flight however many
  /// callers pile on.
  template <typename ComputeFn>
  [[nodiscard]] Result get(vertex_t source, const CallOptions& opts, ComputeFn&& compute) {
    if (opts.cancel != nullptr && opts.cancel->cancelled()) {
      return Result{reliability::cancelled("cancelled before coalesced compute"), nullptr, false};
    }
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      auto it = flights_.find(source);
      if (it == flights_.end()) {
        flight = std::make_shared<Flight>();
        flights_.emplace(source, flight);
        leader = true;
      } else {
        flight = it->second;
        ++joined_;
      }
    }
    if (leader) {
      if (on_compute_) on_compute_();
      ++computes_;
      CG_COUNTER_INC("serving.coalesce.computes");
      std::pair<reliability::Status, TreePtr> r = compute();
      {
        const std::lock_guard<std::mutex> lock(flight->mu);
        flight->status = r.first;
        flight->tree = r.second;
        flight->done = true;
      }
      {
        // Retire before notifying: late arrivals start a fresh flight
        // instead of racing the wakeup.
        const std::lock_guard<std::mutex> lock(mu_);
        flights_.erase(source);
      }
      flight->cv.notify_all();
      return Result{r.first, r.second, true};
    }
    CG_COUNTER_INC("serving.coalesce.joined");
    std::unique_lock<std::mutex> lk(flight->mu);
    if (opts.deadline.armed()) {
      if (!flight->cv.wait_until(lk, opts.deadline.when(), [&] { return flight->done; })) {
        ++timeouts_;
        CG_COUNTER_INC("serving.coalesce.timeouts");
        return Result{reliability::deadline_exceeded("deadline expired waiting on coalesced "
                                                     "compute"),
                      nullptr, false};
      }
    } else {
      flight->cv.wait(lk, [&] { return flight->done; });
    }
    return Result{flight->status, flight->tree, false};
  }

  [[nodiscard]] Stats stats() const noexcept {
    return Stats{computes_.load(std::memory_order_relaxed),
                 joined_.load(std::memory_order_relaxed),
                 timeouts_.load(std::memory_order_relaxed)};
  }

  /// Test hook: runs on the leader thread after the flight opens and
  /// before the compute — a hook that blocks until stats().joined hits
  /// N-1 turns "probably concurrent" into "provably N-way coalesced".
  void set_compute_hook(std::function<void()> hook) { on_compute_ = std::move(hook); }

 private:
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    reliability::Status status;
    TreePtr tree;
  };

  std::mutex mu_;
  std::unordered_map<vertex_t, std::shared_ptr<Flight>> flights_;
  std::function<void()> on_compute_;
  std::atomic<std::uint64_t> computes_{0};
  std::atomic<std::uint64_t> joined_{0};
  std::atomic<std::uint64_t> timeouts_{0};
};

}  // namespace cachegraph::serving
