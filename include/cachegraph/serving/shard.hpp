// serving::Shard — one vertex-range slice of the graph with a private
// serving stack: local CSR + DynamicOverlay, a QueryEngine and
// ResultCache of its own (inside the cache), a private TaskPool, and
// optionally an out-of-core mirror (blocked file + per-shard
// BlockCache + OutOfCoreGraph) for slices too big to keep resident.
//
// The shard stores its slice in *local ids* (global - begin), so every
// per-vertex array — dist, parent, done marks, the local CSR offsets —
// is sized to the slice, not the graph. That is the paper's
// partitioning argument applied to serving state: a query that stays
// inside one shard touches working sets proportional to the shard, and
// the scratch a shard's engine leases is the one already hot in the
// core that serves it.
//
// Edges are split at construction:
//   - intra-shard edges (both endpoints owned) go into the local CSR
//     that the overlay, engine, and cache serve;
//   - cut edges (tail owned, head elsewhere) live in per-vertex spill
//     lists with *global* heads — the router's stitching walks them,
//     local searches never see them.
// `exits()` lists the local vertices with at least one cut edge — the
// target set of every boundary-stitch probe (see router.hpp).
//
// Threading contract: local_dists / engine() / cache() calls are safe
// concurrently (they ride QueryEngine::try_serve and the ResultCache's
// own locking); mutations (insert/remove edge, cut-edge edits,
// enable_out_of_core) require quiescence, same as DynamicOverlay.
#pragma once

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/graph/edge_list.hpp"
#include "cachegraph/parallel/task_pool.hpp"
#include "cachegraph/query/dynamic_overlay.hpp"
#include "cachegraph/query/engine.hpp"
#include "cachegraph/query/result_cache.hpp"
#include "cachegraph/reliability/status.hpp"
#include "cachegraph/serving/partition.hpp"
#include "cachegraph/store/block_cache.hpp"
#include "cachegraph/store/blocked_file.hpp"
#include "cachegraph/store/out_of_core_graph.hpp"
#include "cachegraph/store/writer.hpp"

namespace cachegraph::serving {

/// Deadline/cancellation bounds threaded through the router into each
/// shard-local search (mirrors QueryEngine::ServeOptions, which is a
/// nested type and therefore differs between the in-memory and
/// out-of-core engine instantiations).
struct CallOptions {
  reliability::Deadline deadline{};
  const reliability::CancelToken* cancel = nullptr;
  vertex_t check_every = query::kDefaultCheckEvery;
};

template <Weight W, class Queue = query::IndexedQueue<W>>
class Shard {
 public:
  using Overlay = query::DynamicOverlay<W>;
  using Engine = query::QueryEngine<Overlay, Queue>;
  using Cache = query::ResultCache<W, Queue>;

  /// Builds shard `id` of `part` from the global graph. `pool_threads`
  /// sizes the shard's private TaskPool (1 = no extra threads; the
  /// pool then only structures cache warmups on the calling thread).
  Shard(const graph::AdjacencyArray<W>& global, const Partition& part, std::uint32_t id,
        int pool_threads = 1)
      : id_(id), begin_(part.begin(id)), n_local_(part.size(id)), pool_(pool_threads) {
    graph::EdgeListGraph<W> local(n_local_ == 0 ? 1 : n_local_);
    cut_.resize(static_cast<std::size_t>(n_local_));
    for (vertex_t lv = 0; lv < n_local_; ++lv) {
      for (const auto& nb : global.neighbors(begin_ + lv)) {
        if (part.shard_of(nb.to) == id_) {
          local.add_edge(lv, nb.to - begin_, nb.weight);
        } else {
          cut_[static_cast<std::size_t>(lv)].push_back(graph::Neighbor<W>{nb.to, nb.weight});
          ++num_cut_edges_;
        }
      }
    }
    local_csr_ = std::make_unique<graph::AdjacencyArray<W>>(local);
    overlay_ = std::make_unique<Overlay>(*local_csr_);
    cache_ = std::make_unique<Cache>(*overlay_);
    rebuild_exits();
  }

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] vertex_t begin() const noexcept { return begin_; }
  [[nodiscard]] vertex_t num_local() const noexcept { return n_local_; }
  [[nodiscard]] index_t num_cut_edges() const noexcept { return num_cut_edges_; }

  [[nodiscard]] Overlay& overlay() noexcept { return *overlay_; }
  [[nodiscard]] const Overlay& overlay() const noexcept { return *overlay_; }
  [[nodiscard]] Engine& engine() noexcept { return cache_->engine(); }
  [[nodiscard]] Cache& cache() noexcept { return *cache_; }
  [[nodiscard]] parallel::TaskPool& pool() noexcept { return pool_; }

  /// Local vertices with at least one cut edge, ascending — the target
  /// set of every boundary-stitch probe into this shard.
  [[nodiscard]] std::span<const vertex_t> exits() const noexcept { return exits_; }

  /// Cut edges leaving local vertex `lv` (heads are global ids).
  [[nodiscard]] std::span<const graph::Neighbor<W>> cut(vertex_t lv) const noexcept {
    return cut_[static_cast<std::size_t>(lv)];
  }

  [[nodiscard]] bool out_of_core() const noexcept { return ooc_graph_ != nullptr; }

  /// Block-cache stats of the out-of-core mirror (zeros when in-memory).
  [[nodiscard]] store::BlockCache::Stats block_cache_stats() const {
    return ooc_cache_ != nullptr ? ooc_cache_->stats() : store::BlockCache::Stats{};
  }

  /// Path of the blocked file backing the out-of-core mirror (empty
  /// when in-memory) — the scrubber's walk target.
  [[nodiscard]] const std::filesystem::path& ooc_path() const noexcept { return ooc_path_; }

  /// The open blocked file (null when in-memory): block geometry for
  /// the scrubber.
  [[nodiscard]] const store::BlockedFile<W>* ooc_file() const noexcept {
    return ooc_file_.get();
  }

  // ----------------------------------------------------- local searches

  /// Exact *intra-shard* distances from `from_local` to each
  /// `targets_local[i]`, written to `dists_out[i]` (inf where locally
  /// unreachable). One MultiTarget search — it stops the moment the
  /// whole set settles. On a non-OK status `dists_out` is untouched.
  /// Runs on the out-of-core engine when the mirror is enabled (same
  /// CSR content, so answers are identical; block faults surface as
  /// DATA_LOSS like every store read).
  [[nodiscard]] reliability::Status local_dists(vertex_t from_local,
                                                std::span<const vertex_t> targets_local,
                                                const CallOptions& opts,
                                                std::span<W> dists_out) {
    CG_DCHECK(dists_out.size() == targets_local.size(), "dists_out must match targets");
    if (ooc_engine_ != nullptr) {
      return run_multi(*ooc_engine_, from_local, targets_local, opts, dists_out);
    }
    return run_multi(cache_->engine(), from_local, targets_local, opts, dists_out);
  }

  /// The cached full local tree from `from_local` (computed now if
  /// missing or stale — not deadline-bounded; see router.hpp on when
  /// the cached portal path is appropriate). Stamp-invalidation makes
  /// this never-stale across intra-shard mutations for free.
  [[nodiscard]] typename Cache::TreePtr local_tree(vertex_t from_local) {
    return cache_->get_or_compute(from_local);
  }

  // --------------------------------------------------------- mutations

  /// Inserts a directed edge from owned vertex `lu`; `global_v` may be
  /// owned (intra — goes through the overlay, bumping component
  /// stamps) or foreign (cut — appended to the spill list, `lu`
  /// becomes an exit). Quiescent-point call. Unsupported while the
  /// out-of-core mirror is enabled (the blocked file is immutable).
  void insert_edge(vertex_t lu, vertex_t global_v, W w, const Partition& part) {
    CG_CHECK(ooc_graph_ == nullptr, "mutations require the in-memory shard mode");
    if (part.shard_of(global_v) == id_) {
      overlay_->insert_edge(lu, global_v - begin_, w);
    } else {
      cut_[static_cast<std::size_t>(lu)].push_back(graph::Neighbor<W>{global_v, w});
      ++num_cut_edges_;
      const auto it = std::lower_bound(exits_.begin(), exits_.end(), lu);
      if (it == exits_.end() || *it != lu) exits_.insert(it, lu);
    }
  }

  /// Removes one live directed edge `lu` → `global_v` (intra or cut).
  /// Returns false when no such edge exists. Quiescent-point call.
  bool remove_edge(vertex_t lu, vertex_t global_v, const Partition& part) {
    CG_CHECK(ooc_graph_ == nullptr, "mutations require the in-memory shard mode");
    if (part.shard_of(global_v) == id_) {
      return overlay_->remove_edge(lu, global_v - begin_);
    }
    auto& spill = cut_[static_cast<std::size_t>(lu)];
    for (std::size_t i = 0; i < spill.size(); ++i) {
      if (spill[i].to == global_v) {
        spill.erase(spill.begin() + static_cast<std::ptrdiff_t>(i));
        --num_cut_edges_;
        if (spill.empty()) {
          const auto it = std::lower_bound(exits_.begin(), exits_.end(), lu);
          if (it != exits_.end() && *it == lu) exits_.erase(it);
        }
        return true;
      }
    }
    return false;
  }

  // ------------------------------------------------------- out-of-core

  /// Writes the shard's local CSR to `<dir>/shard<id>.cgb` and serves
  /// all further local searches through an OutOfCoreGraph over a
  /// private BlockCache of `budget_blocks` frames — each shard gets
  /// its own failure domain and its own cache budget, the ROADMAP
  /// follow-on from the store PR. Requires a pristine overlay (fold
  /// mutations into a fresh build first). Quiescent-point call.
  [[nodiscard]] reliability::Status enable_out_of_core(const std::filesystem::path& dir,
                                                       std::size_t block_bytes,
                                                       std::size_t budget_blocks) {
    CG_CHECK(overlay_->structure_version() == 0,
             "enable_out_of_core requires an unmutated overlay");
    const std::filesystem::path path = dir / ("shard" + std::to_string(id_) + ".cgb");
    store::WriteOptions wo;
    wo.block_bytes = block_bytes;
    if (auto st = store::write_blocked(path, *local_csr_, wo); !st.is_ok()) return st;
    auto file = store::BlockedFile<W>::open(path, store::Backend::kPread);
    if (!file) return file.status();
    ooc_path_ = path;
    ooc_file_ = std::move(*file);
    ooc_cache_ = std::make_unique<store::BlockCache>(
        ooc_file_->source(), ooc_file_->block_bytes(), ooc_file_->num_blocks(),
        store::BlockCache::Config{budget_blocks, 0});
    ooc_graph_ = std::make_unique<store::OutOfCoreGraph<W>>(*ooc_file_, *ooc_cache_);
    ooc_engine_ = std::make_unique<query::QueryEngine<store::OutOfCoreGraph<W>, Queue>>(
        *ooc_graph_);
    return {};
  }

 private:
  template <class Eng>
  [[nodiscard]] reliability::Status run_multi(Eng& eng, vertex_t from_local,
                                              std::span<const vertex_t> targets_local,
                                              const CallOptions& opts, std::span<W> dists_out) {
    typename Eng::ServeOptions so;
    so.deadline = opts.deadline;
    so.cancel = opts.cancel;
    so.check_every = opts.check_every;
    const query::Request<W> req{query::MultiTarget{from_local, targets_local}};
    const auto resp = eng.try_serve(req, so, [&](const auto& r, const auto& sc) {
      if (!r.status.is_ok()) return;
      // OK ⇒ targets_settled or exhausted, and in both cases every
      // target's dist entry is final (settled ⇒ exact, untouched ⇒
      // genuinely unreachable inside this shard).
      for (std::size_t i = 0; i < targets_local.size(); ++i) {
        dists_out[i] = sc.dist()[static_cast<std::size_t>(targets_local[i])];
      }
    });
    return resp.status;
  }

  void rebuild_exits() {
    exits_.clear();
    for (vertex_t lv = 0; lv < n_local_; ++lv) {
      if (!cut_[static_cast<std::size_t>(lv)].empty()) exits_.push_back(lv);
    }
  }

  std::uint32_t id_;
  vertex_t begin_;
  vertex_t n_local_;
  parallel::TaskPool pool_;
  std::unique_ptr<graph::AdjacencyArray<W>> local_csr_;
  std::unique_ptr<Overlay> overlay_;
  std::unique_ptr<Cache> cache_;
  std::vector<std::vector<graph::Neighbor<W>>> cut_;  ///< heads are global
  std::vector<vertex_t> exits_;                       ///< local ids, ascending
  index_t num_cut_edges_ = 0;

  std::filesystem::path ooc_path_;
  std::unique_ptr<store::BlockedFile<W>> ooc_file_;
  std::unique_ptr<store::BlockCache> ooc_cache_;
  std::unique_ptr<store::OutOfCoreGraph<W>> ooc_graph_;
  std::unique_ptr<query::QueryEngine<store::OutOfCoreGraph<W>, Queue>> ooc_engine_;
};

}  // namespace cachegraph::serving
