// serving::StitchedView — the shards re-presented as one GraphRep.
//
// for_neighbors(v) asks v's owning shard: first the intra-shard run
// (the shard overlay enumerates it over local ids; the view remaps
// heads back to global on the fly), then the cut edges (stored with
// global heads already). The edge *set* is exactly the original
// graph's (plus any overlay mutations), so any algorithm over this
// view computes the same answer as over the unsharded graph —
// distances, components, depths, and triangle counts identically;
// only enumeration order differs (intra before cut), which matters
// solely for float reassociation in PageRank-style sums.
//
// This is what lets the router serve k-nearest / bounded / full-SSSP /
// analytics kinds through one ordinary QueryEngine while point-to-
// point takes the portal fast path: correctness never depends on the
// stitching algebra, only latency does. It is also the differential
// anchor — serving_test drives the same requests through this view
// and the single-engine oracle and requires identical answers.
//
// Replication: each shard slot is a ReplicaSet; reads go through the
// set's *current* primary replica (advanced off quarantined replicas
// by the health machinery). All replicas are bit-identical, so which
// one answers can never change the bytes — only availability. The
// view reads in-memory overlays (never the out-of-core mirror), so a
// replica's disk corruption cannot surface here.
//
// Same threading contract as the shards: reads are concurrent-safe,
// mutations (through Router) must be quiesced.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/serving/partition.hpp"
#include "cachegraph/serving/replica.hpp"
#include "cachegraph/serving/shard.hpp"

namespace cachegraph::serving {

template <Weight W, class Queue = query::IndexedQueue<W>>
class StitchedView {
 public:
  using weight_type = W;
  using SetT = ReplicaSet<W, Queue>;

  StitchedView(const Partition& part, std::vector<std::unique_ptr<SetT>>& sets)
      : part_(&part), sets_(&sets) {}

  [[nodiscard]] vertex_t num_vertices() const noexcept { return part_->num_vertices(); }

  [[nodiscard]] index_t num_edges() const noexcept {
    index_t total = 0;
    for (const auto& rs : *sets_) {
      const auto& sh = rs->current_shard();
      total += sh.overlay().num_edges() + sh.num_cut_edges();
    }
    return total;
  }

  template <memsim::MemPolicy Mem, typename Fn>
  void for_neighbors(vertex_t v, Mem& mem, Fn&& fn) const {
    const std::uint32_t s = part_->shard_of(v);
    Shard<W, Queue>& sh = (*sets_)[s]->current_shard();
    const vertex_t lv = v - sh.begin();
    const vertex_t base = sh.begin();
    sh.overlay().for_neighbors(lv, mem, [&](const graph::Neighbor<W>& nb) {
      fn(graph::Neighbor<W>{nb.to + base, nb.weight});
    });
    for (const auto& nb : sh.cut(lv)) {
      mem.read(&nb);
      fn(nb);
    }
  }

  template <memsim::MemPolicy Mem>
  void map_buffers(Mem& mem) const {
    for (const auto& rs : *sets_) rs->current_shard().overlay().map_buffers(mem);
  }

  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& rs : *sets_) {
      const auto& sh = rs->current_shard();
      total += sh.overlay().footprint_bytes() +
               static_cast<std::size_t>(sh.num_cut_edges()) * sizeof(graph::Neighbor<W>);
    }
    return total;
  }

 private:
  const Partition* part_;
  std::vector<std::unique_ptr<SetT>>* sets_;
};

}  // namespace cachegraph::serving
