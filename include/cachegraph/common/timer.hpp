// Wall-clock timing helpers for the benchmark harnesses.
//
// The paper reports "real execution time"; we follow the standard
// practice of taking the minimum over R repetitions (least noisy
// estimator of the true cost on an otherwise idle machine) and also
// expose the median for sanity checking.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

namespace cachegraph {

class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

struct TimingResult {
  double best_s = 0.0;    ///< minimum over repetitions
  double median_s = 0.0;  ///< median over repetitions
  double mean_s = 0.0;    ///< arithmetic mean over repetitions
  double stddev_s = 0.0;  ///< sample standard deviation (0 when reps < 2)
  int reps = 0;
};

/// Times `fn()` `reps` times (after `setup()` before each rep) and
/// returns min/median wall-clock seconds. `setup` re-creates any state
/// the measured function mutates.
template <typename Setup, typename Fn>
TimingResult time_repeated(int reps, Setup&& setup, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    setup();
    Timer t;
    fn();
    samples.push_back(t.seconds());
  }
  std::sort(samples.begin(), samples.end());
  TimingResult out;
  out.reps = reps;
  out.best_s = samples.front();
  out.median_s = samples[samples.size() / 2];
  double sum = 0.0;
  for (const double s : samples) sum += s;
  out.mean_s = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double sq = 0.0;
    for (const double s : samples) sq += (s - out.mean_s) * (s - out.mean_s);
    out.stddev_s = std::sqrt(sq / static_cast<double>(samples.size() - 1));
  }
  return out;
}

/// Convenience overload when no per-rep setup is needed.
template <typename Fn>
TimingResult time_repeated(int reps, Fn&& fn) {
  return time_repeated(reps, [] {}, static_cast<Fn&&>(fn));
}

}  // namespace cachegraph
