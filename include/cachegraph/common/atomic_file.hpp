// Crash-durable file commits — the one place the write-tmp + fsync +
// atomic-rename discipline lives.
//
// The rename alone is not crash-durable: POSIX rename() atomically
// replaces the *name*, but the directory entry itself lives in the
// parent directory's data, and a crash between the rename and the next
// directory flush can roll the rename back — leaving the old file (or
// nothing) under the real name even though the writer saw rename()
// succeed. Durability needs a second fsync, on the parent directory fd,
// after the rename. Every atomic writer in this codebase (ResultCache
// snapshots, metrics/flight-recorder exports, the blocked graph store)
// funnels through these helpers so the directory fsync cannot be
// forgotten in one of them.
//
//   write_file_durable(path, content)  tmp → write → fsync(file) →
//                                      rename → fsync(parent dir)
//   commit_rename(tmp, path)           the tail of that sequence, for
//                                      writers that stream their own
//                                      tmp file (the blocked store
//                                      writer); the tmp must already
//                                      be written and fsync'd
//   fsync_parent_dir(path)             just the directory flush
//
// Failure mapping: all I/O failures are RESOURCE_EXHAUSTED (transient,
// retryable — disk full, permissions, a vanished directory). On any
// failure the tmp file is removed and a previous file at `path` is
// left intact (commit_rename can fail only before the rename takes
// effect or after it is already durable-in-progress; the partial
// states are "old complete file" or "new complete file", never torn).
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "cachegraph/reliability/status.hpp"

namespace cachegraph::io {

/// fsync the directory containing `path` (or `path` itself when it is
/// a directory), making a prior rename inside it durable. No-op
/// success on platforms without directory fsync.
[[nodiscard]] reliability::Status fsync_parent_dir(const std::filesystem::path& path);

/// Atomically and durably moves `tmp` over `path`: rename, then fsync
/// the parent directory. `tmp` must already be fully written and
/// fsync'd by the caller. On failure `tmp` is removed.
[[nodiscard]] reliability::Status commit_rename(const std::filesystem::path& tmp,
                                                const std::filesystem::path& path);

/// The whole discipline for in-memory content: write `content` to
/// `path + ".tmp"`, fsync it, rename over `path`, fsync the parent
/// directory. A reader never observes a torn file and a crash at any
/// point leaves either the old complete file or the new one.
[[nodiscard]] reliability::Status write_file_durable(const std::string& path,
                                                     std::string_view content);

}  // namespace cachegraph::io
