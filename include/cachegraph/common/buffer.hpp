// Cache-line- and page-aligned owning buffer.
//
// Matrix storage is aligned to 64 bytes so that block boundaries in the
// Block Data Layout coincide with cache-line boundaries — the layout
// experiments in the paper assume tiles start on line boundaries.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <type_traits>

#include "cachegraph/common/check.hpp"

namespace cachegraph {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedBuffer frees storage without running destructors");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count, std::size_t alignment = kCacheLineBytes)
      : size_(count) {
    if (count == 0) return;
    const std::size_t bytes = round_up(count * sizeof(T), alignment);
    void* p = std::aligned_alloc(alignment, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    data_.reset(static_cast<T*>(p));
    // Value-initialize: weights default to zero; callers overwrite.
    std::uninitialized_value_construct_n(data_.get(), count);
  }

  [[nodiscard]] T* data() noexcept { return data_.get(); }
  [[nodiscard]] const T* data() const noexcept { return data_.get(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  T& operator[](std::size_t i) noexcept { return data_.get()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_.get()[i]; }

  [[nodiscard]] T* begin() noexcept { return data_.get(); }
  [[nodiscard]] T* end() noexcept { return data_.get() + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_.get(); }
  [[nodiscard]] const T* end() const noexcept { return data_.get() + size_; }

 private:
  static constexpr std::size_t round_up(std::size_t v, std::size_t a) noexcept {
    return (v + a - 1) / a * a;
  }

  struct FreeDeleter {
    void operator()(T* p) const noexcept { std::free(p); }
  };

  std::unique_ptr<T, FreeDeleter> data_;
  std::size_t size_ = 0;
};

}  // namespace cachegraph
