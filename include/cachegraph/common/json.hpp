// Minimal hand-rolled JSON writer (no external dependencies, in the
// spirit of Table::print): a streaming emitter with automatic comma
// management. Used by memsim::SimStats::to_json, the obs trace writer,
// and the benchlib JSON report sink.
//
// Not a parser — the test suite carries its own tiny validity checker.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "cachegraph/common/check.hpp"

namespace cachegraph::json {

/// Escapes a string for inclusion inside JSON double quotes.
[[nodiscard]] inline std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // Every remaining control character (U+0000..U+001F) gets the
        // \u form — RFC 8259 requires all of them escaped, not just
        // the ones with short names.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Streaming JSON writer. Call sequence is checked lightly: `key` is
/// only legal inside an object, values/containers alternate with keys
/// there, and commas are inserted automatically.
class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  Writer& begin_object() {
    pre_value();
    os_ << '{';
    stack_.push_back(Frame{/*object=*/true, /*first=*/true});
    return *this;
  }
  Writer& end_object() {
    CG_CHECK(!stack_.empty() && stack_.back().object, "end_object outside object");
    stack_.pop_back();
    os_ << '}';
    return *this;
  }
  Writer& begin_array() {
    pre_value();
    os_ << '[';
    stack_.push_back(Frame{/*object=*/false, /*first=*/true});
    return *this;
  }
  Writer& end_array() {
    CG_CHECK(!stack_.empty() && !stack_.back().object, "end_array outside array");
    stack_.pop_back();
    os_ << ']';
    return *this;
  }

  Writer& key(std::string_view k) {
    CG_CHECK(!stack_.empty() && stack_.back().object, "key outside object");
    comma();
    os_ << '"' << escape(k) << "\":";
    pending_key_ = true;
    return *this;
  }

  Writer& value(std::string_view v) {
    pre_value();
    os_ << '"' << escape(v) << '"';
    return *this;
  }
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(bool v) {
    pre_value();
    os_ << (v ? "true" : "false");
    return *this;
  }
  Writer& value(std::uint64_t v) {
    pre_value();
    os_ << v;
    return *this;
  }
  Writer& value(std::int64_t v) {
    pre_value();
    os_ << v;
    return *this;
  }
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  Writer& value(double v) {
    pre_value();
    if (!std::isfinite(v)) {
      os_ << "null";  // JSON has no inf/nan
    } else {
      // Shortest round-trip form (std::to_chars with no precision):
      // the emitted text parses back to the exact same IEEE double,
      // which a fixed precision of 12 did not guarantee.
      char buf[32];
      const auto res = std::to_chars(buf, buf + sizeof(buf), v);
      os_.write(buf, res.ptr - buf);
    }
    return *this;
  }

  /// Splices pre-serialized JSON in value position (e.g. the output of
  /// SimStats::to_json). The caller vouches for its validity.
  Writer& raw(std::string_view json_text) {
    pre_value();
    os_ << json_text;
    return *this;
  }

  /// True once every container opened has been closed.
  [[nodiscard]] bool complete() const noexcept { return stack_.empty(); }

 private:
  struct Frame {
    bool object;
    bool first;
  };

  void comma() {
    if (!stack_.empty()) {
      if (!stack_.back().first) os_ << ',';
      stack_.back().first = false;
    }
  }
  void pre_value() {
    if (pending_key_) {
      pending_key_ = false;  // comma already emitted with the key
      return;
    }
    CG_CHECK(stack_.empty() || !stack_.back().object, "object member needs a key first");
    comma();
  }

  std::ostream& os_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace cachegraph::json
