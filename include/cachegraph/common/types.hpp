// Core scalar types and weight arithmetic shared by every module.
//
// All algorithm templates are parameterized on a weight type W. Both
// integral (int32_t, int64_t) and floating-point (float, double) weights
// are supported. "Infinity" is represented so that `sat_add` never
// overflows: for integral W we use max()/2, for floating W the IEEE
// infinity. Padding regions of matrices are filled with inf<W>() and
// remain inert under min/+ updates.
#pragma once

#include <cstdint>
#include <limits>
#include <type_traits>

namespace cachegraph {

/// Vertex id. 32-bit keeps graph representations compact (half the
/// memory traffic of int64 indices, which is the whole point here).
using vertex_t = std::int32_t;

/// Edge/element counts: 64-bit since E can exceed 2^31 at paper scale.
using index_t = std::int64_t;

/// Marker for "no vertex" (predecessor of a source, unreached, ...).
inline constexpr vertex_t kNoVertex = -1;

template <typename W>
concept Weight = std::is_arithmetic_v<W> && !std::is_same_v<W, bool>;

/// The value used for "no edge" / "unreachable".
template <Weight W>
[[nodiscard]] constexpr W inf() noexcept {
  if constexpr (std::is_floating_point_v<W>) {
    return std::numeric_limits<W>::infinity();
  } else {
    // Half of max so that inf + (any real edge weight) stays representable.
    return std::numeric_limits<W>::max() / 2;
  }
}

template <Weight W>
[[nodiscard]] constexpr bool is_inf(W w) noexcept {
  return w >= inf<W>();
}

/// Addition that saturates at inf<W>(): inf + x == inf, never overflow.
template <Weight W>
[[nodiscard]] constexpr W sat_add(W a, W b) noexcept {
  if constexpr (std::is_floating_point_v<W>) {
    return a + b;  // IEEE inf already saturates.
  } else {
    if (is_inf(a) || is_inf(b)) return inf<W>();
    // Finite operands are each < max/2, so the sum cannot overflow; it
    // can still land at or above the inf threshold — clamp it there so
    // downstream is_inf() stays consistent.
    const W s = static_cast<W>(a + b);
    return s >= inf<W>() ? inf<W>() : s;
  }
}

/// The FW relaxation primitive: min(a, b + c) with saturation.
template <Weight W>
[[nodiscard]] constexpr W relax_min(W a, W b, W c) noexcept {
  const W via = sat_add(b, c);
  return via < a ? via : a;
}

}  // namespace cachegraph
