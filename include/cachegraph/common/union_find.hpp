// Union-find with path halving and union by size.
//
// Moved out of mst/kruskal.hpp once it grew a second client: Kruskal's
// cycle test and the query subsystem's weak-connectivity component
// tracking (query::DynamicOverlay) share this one implementation.
#pragma once

#include <numeric>
#include <utility>
#include <vector>

namespace cachegraph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Read-only root walk: same root as find(), no path compression, so
  /// concurrent const readers never write. Mutation-free lookups (the
  /// overlay's stamp checks on the serving hot path) use this; the
  /// amortized-inverse-Ackermann bound still holds because every
  /// unite() compresses through the mutating find().
  [[nodiscard]] std::size_t find_root(std::size_t x) const noexcept {
    while (parent_[x] != x) x = parent_[x];
    return x;
  }

  /// Returns true if the sets were distinct (i.e. a merge happened).
  bool unite(std::size_t a, std::size_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  [[nodiscard]] bool connected(std::size_t a, std::size_t b) noexcept {
    return find(a) == find(b);
  }

  [[nodiscard]] bool connected(std::size_t a, std::size_t b) const noexcept {
    return find_root(a) == find_root(b);
  }

  [[nodiscard]] std::size_t component_size(std::size_t x) noexcept { return size_[find(x)]; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace cachegraph
