// FNV-1a 64-bit checksum — the integrity check for persisted state.
//
// Chosen over CRC32 for implementation transparency (eight lines, no
// tables) and over cryptographic hashes because the threat model is
// torn writes and bit rot, not adversaries. The streaming interface
// lets snapshot save/load fold bytes in as they pass through the file
// without buffering the payload twice.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace cachegraph {

class Fnv64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  void update(const void* data, std::size_t size) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = hash_;
    for (std::size_t i = 0; i < size; ++i) {
      h ^= p[i];
      h *= kPrime;
    }
    hash_ = h;
  }

  /// Folds any trivially-copyable value in by its object bytes.
  template <typename T>
  void update_value(const T& v) noexcept {
    static_assert(std::is_trivially_copyable_v<T>);
    update(&v, sizeof(T));
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return hash_; }

  void reset() noexcept { hash_ = kOffsetBasis; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

/// One-shot convenience.
[[nodiscard]] inline std::uint64_t fnv1a64(const void* data, std::size_t size) noexcept {
  Fnv64 h;
  h.update(data, size);
  return h.digest();
}

}  // namespace cachegraph
