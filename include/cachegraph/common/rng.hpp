// Deterministic, platform-stable random number generation.
//
// We avoid <random> distributions because their outputs are not
// specified bit-for-bit across standard library implementations; the
// paper's workloads (random graphs at a given density) must be
// reproducible from a seed alone. xoshiro256** (Blackman & Vigna) seeded
// via splitmix64 is the generator; rejection sampling gives unbiased
// bounded integers.
#pragma once

#include <array>
#include <cstdint>

#include "cachegraph/common/check.hpp"

namespace cachegraph {

/// splitmix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased uniform integer in [0, bound). bound must be > 0 —
  /// the modulo-threshold computation divides by it.
  constexpr std::uint64_t below(std::uint64_t bound) {
    CG_CHECK(bound > 0, "below() requires a positive bound");
    // Lemire-style rejection via the classic modulo-threshold method.
    const std::uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. The span is computed in
  /// unsigned arithmetic (hi - lo as int64 overflows for wide ranges);
  /// a span that wraps to 0 means [lo, hi] covers every int64 value,
  /// where any raw 64-bit draw is already uniform.
  constexpr std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    CG_CHECK(lo <= hi, "uniform_int requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    const std::uint64_t off = span == 0 ? (*this)() : below(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + off);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) draw.
  constexpr bool chance(double p) noexcept { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Fisher-Yates shuffle with our deterministic RNG.
template <typename RandomIt>
constexpr void shuffle(RandomIt first, RandomIt last, Rng& rng) {
  const auto n = last - first;
  for (auto i = n - 1; i > 0; --i) {
    const auto j = static_cast<decltype(i)>(rng.below(static_cast<std::uint64_t>(i) + 1));
    if (i != j) {
      auto tmp = first[i];
      first[i] = first[j];
      first[j] = tmp;
    }
  }
}

}  // namespace cachegraph
