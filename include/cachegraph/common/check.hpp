// Precondition checking.
//
// CG_CHECK is always on (it guards API misuse: wrong matrix sizes,
// negative densities, ...). CG_DCHECK compiles out in release builds
// and guards internal invariants on hot paths.
#pragma once

#include <stdexcept>
#include <string>

namespace cachegraph {

class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  throw PreconditionError(std::string("CG_CHECK failed: ") + expr + " at " + file + ":" +
                          std::to_string(line) + (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace cachegraph

#define CG_CHECK(expr, ...)                                                              \
  do {                                                                                   \
    if (!(expr)) {                                                                       \
      ::cachegraph::detail::check_failed(#expr, __FILE__, __LINE__, std::string{__VA_ARGS__}); \
    }                                                                                    \
  } while (false)

#ifdef NDEBUG
#define CG_DCHECK(expr, ...) \
  do {                       \
  } while (false)
#else
#define CG_DCHECK(expr, ...) CG_CHECK(expr, ##__VA_ARGS__)
#endif
