// Memory-access policies.
//
// Every instrumented algorithm in this library is a template
//   template <..., class Mem = NullMem> result algo(..., Mem& mem);
// where the algorithm reports each *logical* data access through `mem`.
//
//   - NullMem: the production policy. All hooks are empty inline
//     functions; optimized builds pay literally nothing, so the timed
//     benchmarks measure the pure algorithm.
//   - SimMem: the tracing policy. Each access is routed through a
//     CacheHierarchy, optionally after remapping the buffer's real heap
//     address onto a deterministic virtual address (so simulated
//     conflict misses do not depend on ASLR / allocator layout).
#pragma once

#include <cstdint>
#include <vector>

#include "cachegraph/memsim/hierarchy.hpp"

namespace cachegraph::memsim {

struct NullMem {
  static constexpr bool tracing = false;

  template <typename T>
  void read(const T*) noexcept {}
  template <typename T>
  void write(const T*) noexcept {}
  template <typename T>
  void read_range(const T*, std::size_t) noexcept {}
  template <typename T>
  void write_range(const T*, std::size_t) noexcept {}
};

/// Remaps registered host buffers onto a deterministic virtual address
/// space: buffers are placed one after another, each starting on a
/// fresh page plus a small stagger so distinct buffers do not all map
/// to set 0 of a direct-mapped cache.
class AddressMap {
 public:
  /// Register a buffer; returns its assigned virtual base.
  std::uint64_t map(const void* host_base, std::size_t bytes) {
    const auto base = reinterpret_cast<std::uint64_t>(host_base);
    Region r;
    r.host_begin = base;
    r.host_end = base + bytes;
    r.virt_base = next_;
    regions_.push_back(r);
    // Next buffer: page-align past this one, stagger by two lines.
    next_ += (bytes + 4095) / 4096 * 4096 + 2 * 64;
    return r.virt_base;
  }

  [[nodiscard]] std::uint64_t translate(std::uint64_t host_addr) const noexcept {
    for (const Region& r : regions_) {
      if (host_addr >= r.host_begin && host_addr < r.host_end) {
        return r.virt_base + (host_addr - r.host_begin);
      }
    }
    return host_addr;  // unregistered: identity (still simulated)
  }

 private:
  struct Region {
    std::uint64_t host_begin;
    std::uint64_t host_end;
    std::uint64_t virt_base;
  };
  std::vector<Region> regions_;
  std::uint64_t next_ = 0x10000;  // skip "page zero"
};

class SimMem {
 public:
  static constexpr bool tracing = true;

  explicit SimMem(CacheHierarchy& hierarchy) : hierarchy_(&hierarchy) {}

  /// Register a buffer for deterministic address translation.
  void map_buffer(const void* base, std::size_t bytes) { map_.map(base, bytes); }

  template <typename T>
  void read(const T* p) {
    hierarchy_->read(translate(p), sizeof(T));
  }
  template <typename T>
  void write(const T* p) {
    hierarchy_->write(translate(p), sizeof(T));
  }
  template <typename T>
  void read_range(const T* p, std::size_t n) {
    hierarchy_->read(translate(p), n * sizeof(T));
  }
  template <typename T>
  void write_range(const T* p, std::size_t n) {
    hierarchy_->write(translate(p), n * sizeof(T));
  }

  [[nodiscard]] CacheHierarchy& hierarchy() noexcept { return *hierarchy_; }

 private:
  template <typename T>
  [[nodiscard]] std::uint64_t translate(const T* p) const noexcept {
    return map_.translate(reinterpret_cast<std::uint64_t>(p));
  }

  CacheHierarchy* hierarchy_;
  AddressMap map_;
};

/// Concept satisfied by both policies; algorithm templates constrain on it.
template <typename M>
concept MemPolicy = requires(M m, const int* cp, std::size_t n) {
  m.read(cp);
  m.write(cp);
  m.read_range(cp, n);
  m.write_range(cp, n);
};

}  // namespace cachegraph::memsim
