// Memory-system presets for the machines in Section 4 of the paper plus
// the SimpleScalar configuration used for its simulation tables.
#pragma once

#include <vector>

#include "cachegraph/memsim/config.hpp"

namespace cachegraph::memsim {

/// Pentium III Xeon: 32 KB 4-way L1 / 1 MB 8-way L2, both 32 B lines.
[[nodiscard]] MachineConfig pentium3();

/// UltraSPARC III: 64 KB 4-way 32 B-line L1 / 8 MB direct-mapped 64 B-line L2.
[[nodiscard]] MachineConfig ultrasparc3();

/// Alpha 21264: 64 KB 2-way 64 B-line L1 / 4 MB direct-mapped 64 B-line
/// L2, plus an 8-entry fully associative victim cache.
[[nodiscard]] MachineConfig alpha21264();

/// MIPS R12000: 32 KB 2-way 32 B-line L1 / 8 MB direct-mapped 64 B-line L2.
[[nodiscard]] MachineConfig mips_r12000();

/// SimpleScalar default used for the paper's simulations: 16 KB 4-way
/// L1 (32 B lines) and 256 KB 8-way L2 (64 B lines).
[[nodiscard]] MachineConfig simplescalar_default();

/// A modern server-class host: 32 KB 8-way L1 / 1 MB 16-way L2 /
/// 32 MB 16-way L3 (64 B lines throughout). Not in the paper — used to
/// show how 2020s-scale last-level caches flatten the paper's
/// wall-clock gaps, and to exercise Theorem 3.3 at depth three.
[[nodiscard]] MachineConfig modern_host();

/// All presets, for parameterized tests and sweeps.
[[nodiscard]] const std::vector<MachineConfig>& all_machines();

}  // namespace cachegraph::memsim
