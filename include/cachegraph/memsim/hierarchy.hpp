// Multi-level cache hierarchy + TLB + optional victim cache.
//
// This is the SimpleScalar sim-cache substitute used for every
// simulation table in the paper (Tables 1, 2, 3, 6, 7, 8). The model:
//   - L1 data cache, set-associative, LRU, write-back, write-allocate.
//   - Optional fully-associative victim buffer behind L1 (Alpha 21264).
//   - L2 unified cache, same policies; non-inclusive.
//   - Optional L3 (modern hosts; none of the paper's machines had one —
//     it exists so Theorem 3.3's "every level of the hierarchy" claim
//     can be demonstrated at depth three).
//   - Dirty evictions write back to the next level without counting as
//     demand accesses (matching how sim-cache reports them).
//   - A data TLB (fully associative, LRU) counts page-translation misses.
//
// Accesses are split at cache-line granularity, so an unaligned access
// spanning two lines costs two lookups — exactly what hardware does.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cachegraph/memsim/cache_level.hpp"
#include "cachegraph/memsim/config.hpp"

namespace cachegraph::memsim {

/// Fully-associative LRU TLB over page numbers.
class Tlb {
 public:
  Tlb(std::size_t entries, std::size_t page_bytes)
      : entries_(entries), page_shift_(log2_exact(page_bytes)) {}

  void access(std::uint64_t byte_addr);

  [[nodiscard]] std::size_t page_shift() const noexcept { return page_shift_; }
  [[nodiscard]] const LevelStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = LevelStats{}; }
  void flush() { slots_.clear(); }

 private:
  static std::size_t log2_exact(std::size_t v);

  struct Slot {
    std::uint64_t page;
    std::uint64_t lru;
  };
  std::size_t entries_;
  std::size_t page_shift_;
  std::uint64_t tick_ = 0;
  std::vector<Slot> slots_;
  LevelStats stats_;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const MachineConfig& machine);

  /// Simulate a demand access of `bytes` bytes at `byte_addr`.
  void access(std::uint64_t byte_addr, std::size_t bytes, bool write);

  void read(std::uint64_t byte_addr, std::size_t bytes) { access(byte_addr, bytes, false); }
  void write(std::uint64_t byte_addr, std::size_t bytes) { access(byte_addr, bytes, true); }

  [[nodiscard]] SimStats stats() const;
  void reset_stats();
  /// Empty all caches (cold start) without touching counters.
  void flush();

  [[nodiscard]] const MachineConfig& machine() const noexcept { return machine_; }

 private:
  void access_line(std::uint64_t l1_line, bool write);
  /// Demand fill of an L2 line (after an L2 miss): consult L3 if
  /// present, else memory; install into L2 and propagate dirty spills.
  void fetch_into_l2(std::uint64_t l1_line, bool write);
  /// Handle a dirty line leaving L1 (or the victim buffer): merge into
  /// L2, spilling downward as needed.
  void writeback_to_l2(std::uint64_t l1_line);
  /// Handle a dirty line leaving L2: merge into L3 or memory.
  void writeback_from_l2(std::uint64_t l2_line);

  MachineConfig machine_;
  CacheLevel l1_;
  CacheLevel l2_;
  std::unique_ptr<CacheLevel> l3_;  ///< null when the machine has no L3
  std::unique_ptr<VictimCache> victim_;
  Tlb tlb_;
  std::size_t l1_line_bytes_;
  std::size_t l2_line_ratio_;  ///< l2_line / l1_line (>=1)
  std::size_t l3_line_ratio_ = 1;  ///< l3_line / l2_line (>=1)
  std::uint64_t victim_hits_ = 0;
  std::uint64_t mem_reads_ = 0;
  std::uint64_t mem_writebacks_ = 0;
};

}  // namespace cachegraph::memsim
