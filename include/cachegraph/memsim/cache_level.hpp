// A single set-associative cache level with true-LRU replacement.
//
// Addresses are dealt with at line granularity: callers pass
// `line_addr = byte_addr / line_bytes`. The level does not know about
// its neighbours; CacheHierarchy composes levels and routes misses,
// fills, and writebacks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cachegraph/memsim/config.hpp"

namespace cachegraph::memsim {

/// Result of installing a line: the evicted line, if any.
struct Eviction {
  std::uint64_t line_addr = 0;
  bool dirty = false;
  bool valid = false;
};

class CacheLevel {
 public:
  explicit CacheLevel(const CacheConfig& config);

  /// Demand access. Returns true on hit. Counters are updated; on a
  /// write hit with write-back policy the line is marked dirty.
  bool access(std::uint64_t line_addr, bool write);

  /// Allocate `line_addr` (after a miss, or on a writeback from the
  /// level above). Returns the evicted line if a valid one was displaced.
  Eviction install(std::uint64_t line_addr, bool dirty);

  /// True if the line is currently resident (no counter updates).
  [[nodiscard]] bool contains(std::uint64_t line_addr) const;

  /// Mark a resident line dirty (writeback from the level above that
  /// hits here). Returns false if the line is not resident.
  bool mark_dirty(std::uint64_t line_addr);

  /// Remove a line if resident (used for victim-cache swaps).
  void invalidate(std::uint64_t line_addr);

  /// Drop all contents and reset LRU state; counters are kept.
  void flush();

  [[nodiscard]] const LevelStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = LevelStats{}; }
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< global timestamp; larger = more recent
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] std::size_t set_index(std::uint64_t line_addr) const noexcept {
    return static_cast<std::size_t>(line_addr) & set_mask_;
  }
  [[nodiscard]] Line* find(std::uint64_t line_addr) noexcept;
  [[nodiscard]] const Line* find(std::uint64_t line_addr) const noexcept;

  CacheConfig config_;
  std::size_t ways_;
  std::size_t set_mask_;
  std::uint64_t tick_ = 0;
  std::vector<Line> lines_;  ///< sets * ways, set-major
  LevelStats stats_;
};

/// Small fully-associative victim buffer (Alpha 21264 style): holds the
/// last few lines evicted from L1; a hit swaps the line back.
class VictimCache {
 public:
  explicit VictimCache(std::size_t entries) : entries_(entries) {}

  /// Look up a line; on hit, remove it (it moves back into L1) and
  /// report whether it was dirty via `dirty_out`.
  bool extract(std::uint64_t line_addr, bool* dirty_out);

  /// Insert a line evicted from L1; returns the displaced victim if the
  /// buffer was full.
  Eviction insert(std::uint64_t line_addr, bool dirty);

  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }
  [[nodiscard]] std::size_t occupied() const noexcept { return slots_.size(); }
  void flush() { slots_.clear(); }

 private:
  struct Slot {
    std::uint64_t line_addr;
    std::uint64_t lru;
    bool dirty;
  };
  std::size_t entries_;
  std::uint64_t tick_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace cachegraph::memsim
