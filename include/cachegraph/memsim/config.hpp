// Cache hierarchy configuration.
//
// Geometry presets for the four machines in Section 4 of the paper and
// the SimpleScalar default used for the simulation tables live in
// machine_configs.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "cachegraph/common/check.hpp"

namespace cachegraph::memsim {

/// One level of set-associative cache.
struct CacheConfig {
  std::size_t size_bytes = 0;
  std::size_t line_bytes = 64;
  /// Ways per set; 0 means fully associative.
  std::size_t associativity = 1;
  bool write_allocate = true;
  bool write_back = true;

  [[nodiscard]] std::size_t ways() const {
    return associativity == 0 ? size_bytes / line_bytes : associativity;
  }
  [[nodiscard]] std::size_t num_sets() const {
    CG_CHECK(size_bytes % (line_bytes * ways()) == 0,
             "cache size must be divisible by line*ways");
    return size_bytes / (line_bytes * ways());
  }
  void validate() const {
    CG_CHECK(size_bytes > 0 && line_bytes > 0);
    CG_CHECK((line_bytes & (line_bytes - 1)) == 0, "line size must be a power of two");
    const std::size_t sets = num_sets();
    CG_CHECK((sets & (sets - 1)) == 0, "set count must be a power of two");
  }
};

/// Per-level demand counters. `writebacks` counts dirty lines pushed to
/// the next level (reported separately from demand misses, as
/// SimpleScalar does).
struct LevelStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] std::uint64_t hits() const noexcept { return accesses - misses; }
  [[nodiscard]] double miss_rate() const noexcept {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

/// Aggregate counters for a two- or three-level hierarchy + victim
/// cache + TLB. `l3` stays all-zero when the machine has no L3.
struct SimStats {
  LevelStats l1;
  LevelStats l2;
  LevelStats l3;
  LevelStats tlb;
  std::uint64_t victim_hits = 0;
  std::uint64_t mem_reads = 0;       ///< lines fetched from memory
  std::uint64_t mem_writebacks = 0;  ///< dirty lines written to memory

  /// Total processor-memory traffic in lines (the quantity the paper's
  /// Theorems 3.2/3.5 bound).
  [[nodiscard]] std::uint64_t memory_traffic_lines() const noexcept {
    return mem_reads + mem_writebacks;
  }

  /// Serialized as a JSON object (hand-rolled, no external deps) — the
  /// machine-readable form the benchlib report sink embeds so predicted
  /// misses sit next to measured perf counters in BENCH_*.json records.
  [[nodiscard]] std::string to_json() const;
};

/// Whole-machine memory system description (Section 4 hardware table).
/// `l3.size_bytes == 0` means the machine has no third level (all of
/// the paper's machines; modern hosts set it).
struct MachineConfig {
  std::string name;
  CacheConfig l1;
  CacheConfig l2;
  CacheConfig l3{0, 64, 16};
  std::size_t victim_entries = 0;  ///< Alpha 21264 has an 8-entry victim cache
  std::size_t tlb_entries = 64;
  std::size_t page_bytes = 4096;

  [[nodiscard]] bool has_l3() const noexcept { return l3.size_bytes > 0; }
};

}  // namespace cachegraph::memsim
