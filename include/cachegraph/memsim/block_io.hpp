// Block I/O level for the simulated memory hierarchy.
//
// The CacheHierarchy predicts LLC misses for the in-memory layouts;
// BlockIoSim extends the same idea one level down — DRAM : SSD instead
// of cache : DRAM. It models the store's BlockCache exactly: the same
// shard hash, the same per-shard frame split, the same per-shard LRU.
// Replaying a serial block-access trace through BlockIoSim therefore
// predicts the real cache's fault count *exactly* (pinned for by a
// differential test), and lets experiments sweep frame budgets without
// re-running I/O.
//
// The sharding helpers below are the single source of truth for how
// block ids map to shards and how a frame budget splits across them —
// store::BlockCache uses these same functions, so the model and the
// implementation cannot drift apart silently.
//
// Not thread-safe: like the rest of memsim this is a single-threaded
// model. OutOfCoreGraph serializes access() calls when a sim is
// attached.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

namespace cachegraph::memsim {

/// Shards the concurrent BlockCache defaults to (diminishing lock
/// contention returns past this for the query-mix workloads).
inline constexpr std::size_t kDefaultBlockShards = 8;

/// Resolves a requested shard count against a frame budget: 0 means
/// "auto" (kDefaultBlockShards), and shards never exceed frames so a
/// 1-frame budget is a single LRU, not 8 shards of nothing.
[[nodiscard]] constexpr std::size_t resolve_block_shards(std::size_t frames,
                                                         std::size_t requested) noexcept {
  std::size_t s = requested == 0 ? kDefaultBlockShards : requested;
  if (s > frames) s = frames;
  return s == 0 ? 1 : s;
}

[[nodiscard]] constexpr std::size_t block_shard_of(std::uint32_t block_id,
                                                   std::size_t shards) noexcept {
  return block_id % shards;
}

/// Frames owned by shard `shard` out of a `frames` total: the integer
/// split that hands the remainder to the lowest-numbered shards.
[[nodiscard]] constexpr std::size_t block_shard_frames(std::size_t frames, std::size_t shards,
                                                       std::size_t shard) noexcept {
  return frames / shards + (shard < frames % shards ? 1 : 0);
}

/// Sharded fully-associative LRU over block ids — the "disk level" of
/// the simulated hierarchy. An access either hits resident state or
/// faults (and possibly evicts).
class BlockIoSim {
 public:
  struct Config {
    std::size_t frames = 64;  ///< total frame budget across all shards
    std::size_t shards = 0;   ///< 0 = auto (resolve_block_shards)
  };

  struct Stats {
    std::uint64_t accesses = 0;
    std::uint64_t faults = 0;
    std::uint64_t evictions = 0;

    [[nodiscard]] double hit_rate() const noexcept {
      return accesses == 0 ? 0.0
                           : static_cast<double>(accesses - faults) /
                                 static_cast<double>(accesses);
    }
    [[nodiscard]] std::string to_json() const;
  };

  explicit BlockIoSim(Config cfg);

  /// Records one block access (the moment the real cache would pin).
  void access(std::uint32_t block_id);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t frames() const noexcept { return frames_; }
  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }

  /// Drops all residency and zeroes the stats (cold-start replay).
  void reset();

 private:
  struct Shard {
    std::size_t capacity = 0;
    std::list<std::uint32_t> lru;  // front = MRU, back = next victim
    std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator> where;
  };

  std::vector<Shard> shards_;
  std::size_t frames_;
  Stats stats_;
};

}  // namespace cachegraph::memsim
