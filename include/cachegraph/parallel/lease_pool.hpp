// A mutex-guarded free list of reusable heap objects, factored out of
// sssp::BatchEngine so every batch service (the SSSP batch engine, the
// query engine, Johnson's row-streaming sink) shares one allocation
// discipline: a task leases an object, uses it, and the lease's
// destructor returns it. At most one object per concurrently-running
// task is ever live, so a pool serving P parallel tasks allocates P
// objects and then never allocates again — the leased object stays
// resident in whichever worker's cache used it last, which is the
// whole point of reusing it.
//
// Capacity: set_capacity(k) caps the number of objects the pool will
// ever build. try_acquire() then fails (empty optional) when the free
// list is dry and the cap is reached — a *transient* condition the
// serving layer reports as RESOURCE_EXHAUSTED for the caller to retry
// (reliability/retry.hpp), instead of letting a traffic spike
// translate into unbounded allocation. acquire() keeps the original
// infallible contract for capacity-free pools. The kAlloc fault site
// makes try_acquire fail as if allocation itself had — the chaos
// suite's stand-in for a genuine bad_alloc.
//
// Threading contract: acquire()/try_acquire() and lease destruction
// are safe from any thread (the free list is mutex-guarded; the
// counters are relaxed atomics). set_capacity is a configuration call:
// make it before traffic. The pool must outlive its leases.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/reliability/fault_injector.hpp"

namespace cachegraph::parallel {

template <typename T>
class LeasePool {
 public:
  LeasePool() = default;

  LeasePool(const LeasePool&) = delete;
  LeasePool& operator=(const LeasePool&) = delete;

  struct Stats {
    std::uint64_t allocs = 0;    ///< objects ever built by make()
    std::uint64_t reuses = 0;    ///< leases served from the free list
    std::uint64_t exhausted = 0; ///< try_acquire failures (cap or fault)
  };

  [[nodiscard]] Stats stats() const noexcept {
    return Stats{allocs_.load(std::memory_order_relaxed),
                 reuses_.load(std::memory_order_relaxed),
                 exhausted_.load(std::memory_order_relaxed)};
  }

  /// Caps the total number of objects ever built (0 = unbounded, the
  /// default). Lowering the cap below the number already built only
  /// prevents further builds; existing objects keep circulating.
  void set_capacity(std::size_t cap) noexcept {
    capacity_.store(cap, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }

  /// Objects currently sitting on the free list (point-in-time).
  [[nodiscard]] std::size_t available() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

  /// Objects currently out on lease: built-ever minus free. A
  /// point-in-time utilization sample for the telemetry gauges (the
  /// two reads are not atomic together; the value may be off by one
  /// under concurrent release, which a gauge tolerates).
  [[nodiscard]] std::size_t outstanding() const {
    const auto built = static_cast<std::size_t>(allocs_.load(std::memory_order_relaxed));
    const std::size_t free_now = available();
    return built > free_now ? built - free_now : 0;
  }

  /// RAII lease: holds the object until scope exit, then returns it to
  /// the free list. Movable (so try_acquire can hand it through an
  /// optional); a moved-from lease returns nothing.
  class Lease {
   public:
    ~Lease() { release(); }

    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          obj_(std::move(other.obj_)),
          reused_(other.reused_) {}

    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        obj_ = std::move(other.obj_);
        reused_ = other.reused_;
      }
      return *this;
    }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] T& get() const noexcept { return *obj_; }
    /// True iff this lease came from the free list (no allocation).
    [[nodiscard]] bool reused() const noexcept { return reused_; }

   private:
    friend class LeasePool;
    Lease(LeasePool* pool, std::unique_ptr<T> obj, bool reused) noexcept
        : pool_(pool), obj_(std::move(obj)), reused_(reused) {}

    void release() noexcept {
      if (pool_ == nullptr || obj_ == nullptr) return;
      const std::lock_guard<std::mutex> lock(pool_->mu_);
      pool_->free_.push_back(std::move(obj_));
      pool_ = nullptr;
    }

    LeasePool* pool_ = nullptr;
    std::unique_ptr<T> obj_;
    bool reused_ = false;
  };

  /// Leases a free object, or builds one with `make()` (which must
  /// return std::unique_ptr<T>) — failing (empty optional) when the
  /// capacity cap forbids building or the kAlloc fault site fires.
  template <typename Make>
  [[nodiscard]] std::optional<Lease> try_acquire(Make&& make) {
    std::unique_ptr<T> obj;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        obj = std::move(free_.back());
        free_.pop_back();
      }
    }
    if (obj) {
      reuses_.fetch_add(1, std::memory_order_relaxed);
      return Lease(this, std::move(obj), /*reused=*/true);
    }
    const std::size_t cap = capacity_.load(std::memory_order_relaxed);
    // The cap check is advisory under concurrency (two racing builders
    // may overshoot by one); the contract is "bounded", not "exact".
    if (cap != 0 && allocs_.load(std::memory_order_relaxed) >= cap) {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    if (CG_FAULT_FIRE(reliability::FaultSite::kAlloc)) {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    obj = make();
    allocs_.fetch_add(1, std::memory_order_relaxed);
    return Lease(this, std::move(obj), /*reused=*/false);
  }

  /// The infallible original: requires an uncapped pool (use
  /// try_acquire when a capacity or fault plan is in play).
  template <typename Make>
  [[nodiscard]] Lease acquire(Make&& make) {
    auto lease = try_acquire(std::forward<Make>(make));
    CG_CHECK(lease.has_value(),
             "LeasePool::acquire on an exhausted pool — use try_acquire");
    return std::move(*lease);
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<T>> free_;
  std::atomic<std::size_t> capacity_{0};
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> reuses_{0};
  std::atomic<std::uint64_t> exhausted_{0};
};

}  // namespace cachegraph::parallel
