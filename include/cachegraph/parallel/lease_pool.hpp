// A mutex-guarded free list of reusable heap objects, factored out of
// sssp::BatchEngine so every batch service (the SSSP batch engine, the
// query engine, Johnson's row-streaming sink) shares one allocation
// discipline: a task leases an object, uses it, and the lease's
// destructor returns it. At most one object per concurrently-running
// task is ever live, so a pool serving P parallel tasks allocates P
// objects and then never allocates again — the leased object stays
// resident in whichever worker's cache used it last, which is the
// whole point of reusing it.
//
// Threading contract: acquire() and lease destruction are safe from
// any thread (the free list is mutex-guarded; the counters are
// relaxed atomics). The pool must outlive its leases.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace cachegraph::parallel {

template <typename T>
class LeasePool {
 public:
  LeasePool() = default;

  LeasePool(const LeasePool&) = delete;
  LeasePool& operator=(const LeasePool&) = delete;

  struct Stats {
    std::uint64_t allocs = 0;  ///< objects ever built by make()
    std::uint64_t reuses = 0;  ///< leases served from the free list
  };

  [[nodiscard]] Stats stats() const noexcept {
    return Stats{allocs_.load(std::memory_order_relaxed),
                 reuses_.load(std::memory_order_relaxed)};
  }

  /// RAII lease: holds the object until scope exit, then returns it to
  /// the free list. Not copyable or movable — construct it in place.
  class Lease {
   public:
    ~Lease() {
      const std::lock_guard<std::mutex> lock(pool_.mu_);
      pool_.free_.push_back(std::move(obj_));
    }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] T& get() const noexcept { return *obj_; }
    /// True iff this lease came from the free list (no allocation).
    [[nodiscard]] bool reused() const noexcept { return reused_; }

   private:
    friend class LeasePool;
    Lease(LeasePool& pool, std::unique_ptr<T> obj, bool reused) noexcept
        : pool_(pool), obj_(std::move(obj)), reused_(reused) {}

    LeasePool& pool_;
    std::unique_ptr<T> obj_;
    bool reused_;
  };

  /// Leases a free object, or builds one with `make()` (which must
  /// return std::unique_ptr<T>) when the free list is empty.
  template <typename Make>
  [[nodiscard]] Lease acquire(Make&& make) {
    std::unique_ptr<T> obj;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        obj = std::move(free_.back());
        free_.pop_back();
      }
    }
    if (obj) {
      reuses_.fetch_add(1, std::memory_order_relaxed);
      return Lease(*this, std::move(obj), /*reused=*/true);
    }
    obj = make();
    allocs_.fetch_add(1, std::memory_order_relaxed);
    return Lease(*this, std::move(obj), /*reused=*/false);
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<T>> free_;
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> reuses_{0};
};

}  // namespace cachegraph::parallel
