// A small dependency-aware work-stealing task pool (no OpenMP).
//
// The paper's conclusion names parallelization as the natural next step
// for the recursive decomposition: the FWR recursion tree *is* a task
// DAG, and its tiles are cache-resident working sets, so a scheduler
// that keeps child tasks on the spawning worker inherits the sequential
// algorithm's locality for free. This pool implements the classic
// fork-join recipe:
//
//   - one double-ended queue per worker; a worker pushes and pops its
//     own tasks LIFO (depth-first — the cache-friendly order), and
//     steals from a random victim FIFO (breadth-first — the largest
//     available subtree, amortizing the steal);
//   - `TaskGroup` provides fork-join structure: `run()` spawns,
//     `wait()` *participates* — the waiting thread executes pending
//     tasks instead of blocking, so nested groups (the FWR recursion)
//     cannot deadlock and need no extra threads;
//   - idle workers sleep on a condition variable with a short timeout,
//     so an idle pool costs (almost) no CPU.
//
// Exception safety: a task that throws can neither wedge nor kill the
// pool. The TaskGroup wrapper catches anything escaping a task,
// stores the *first* exception per group, and still performs the
// completion decrement — so wait() always terminates, and then
// rethrows the captured exception on the waiting thread (fork-join
// semantics: the join observes the child's failure). Later exceptions
// in the same group are counted (`parallel.exceptions`) and dropped,
// like std::async once the first future is consumed. A group
// destroyed without a wait() after a failure drains silently and
// bumps `parallel.exceptions_dropped` — destructors must not throw.
//
// Observability: the pool tallies tasks spawned, successful steals, and
// empty barrier polls in plain atomics (cumulative, see stats());
// `flush_counters()` adds the delta since the last flush to the
// CounterRegistry (`parallel.tasks_spawned`, `parallel.steals`,
// `parallel.barrier_waits`) at a single-threaded point. Every task executes under a `CG_TRACE_SPAN("parallel.task")`,
// so traced runs show the task timeline.
//
// Threading contract: `TaskPool` and `TaskGroup` methods are safe to
// call from any thread, including from inside tasks. Construction and
// destruction of the pool itself are single-threaded.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cachegraph::parallel {

class TaskPool {
 public:
  using Task = std::function<void()>;

  struct Stats {
    std::uint64_t tasks_spawned = 0;
    std::uint64_t steals = 0;
    std::uint64_t barrier_waits = 0;
    std::uint64_t exceptions = 0;  ///< tasks that exited by throwing
  };

  /// `num_threads <= 0` uses std::thread::hardware_concurrency(). The
  /// count includes the caller: a pool of 1 spawns no worker threads
  /// and runs every task inside TaskGroup::wait().
  explicit TaskPool(int num_threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total execution slots (workers + the participating caller).
  [[nodiscard]] int num_threads() const noexcept { return static_cast<int>(slots_.size()); }

  /// Cumulative tallies over the pool's lifetime (never reset).
  [[nodiscard]] Stats stats() const noexcept;

  /// Adds the tallies accumulated since the last flush to the counter
  /// registry (parallel.tasks_spawned / .steals / .barrier_waits /
  /// .exceptions). Call from one thread, outside any TaskGroup.
  void flush_counters();

  /// Runs one pending task on the calling thread if any is available;
  /// false when every deque is empty. For callers that must make
  /// progress while waiting on something other than a TaskGroup (the
  /// query engine's admission gate participates through this instead
  /// of blocking a slot).
  bool help_one() { return run_one(); }

  /// Tasks submitted but not yet picked up (a point-in-time sample —
  /// the telemetry layer's pool.queue_depth gauge).
  [[nodiscard]] std::size_t queued() const noexcept {
    return queued_.load(std::memory_order_relaxed);
  }

 private:
  friend class TaskGroup;

  /// One worker's deque. A mutex per deque keeps the implementation
  /// obviously correct (and ThreadSanitizer-clean); tasks here are
  /// coarse tile subproblems, so queue traffic is not the hot path.
  struct Slot {
    std::mutex mu;
    std::deque<Task> q;
  };

  void submit(Task t);
  /// Pops (or steals) one task and runs it; false if none available.
  bool run_one();
  void worker_loop(std::size_t id);
  [[nodiscard]] std::size_t my_slot() const noexcept;

  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> queued_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<std::uint64_t> tasks_spawned_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> barrier_waits_{0};
  std::atomic<std::uint64_t> exceptions_{0};
  Stats flushed_;  ///< high-water mark of the last flush (flush thread only)
};

/// Fork-join scope over a TaskPool. `run()` spawns a task; `wait()`
/// (also called by the destructor) executes pool tasks until every task
/// of *this* group has finished, then rethrows the first exception any
/// of them raised. Groups nest freely — tasks may create their own
/// groups — which is exactly how the FWR recursion schedules its tile
/// DAG.
class TaskGroup {
 public:
  explicit TaskGroup(TaskPool& pool) noexcept : pool_(pool) {}
  /// Drains like wait() but never throws: an unobserved exception is
  /// counted (parallel.exceptions_dropped) and discarded.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(TaskPool::Task t);
  /// Joins every task of this group, then rethrows the first captured
  /// exception (clearing it — the group is reusable afterwards).
  void wait();

 private:
  /// The join loop without the rethrow.
  void drain() noexcept;

  TaskPool& pool_;
  std::atomic<std::size_t> pending_{0};
  std::mutex exception_mu_;
  std::exception_ptr first_exception_;
};

}  // namespace cachegraph::parallel
