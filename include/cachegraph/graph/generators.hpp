// Workload generators for the paper's experiments.
//
// All generators are deterministic in (parameters, seed) and use the
// Batagelj-Brandes geometric-skip method for G(n, p), so building a
// graph costs O(N + E) rather than O(N²) — necessary at the paper's
// 64K-vertex scale.
#pragma once

#include <cmath>
#include <utility>
#include <vector>

#include "cachegraph/common/rng.hpp"
#include "cachegraph/graph/edge_list.hpp"

namespace cachegraph::graph {

namespace detail {

/// Visit each index in [0, total) independently with probability p,
/// in increasing order, via geometric skips: O(p * total) work.
template <typename Fn>
void gnp_visit(std::uint64_t total, double p, Rng& rng, Fn&& fn) {
  if (total == 0 || p <= 0.0) return;
  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < total; ++i) fn(i);
    return;
  }
  const double log1mp = std::log1p(-p);
  std::uint64_t i = 0;
  while (true) {
    const double u = rng.uniform01();
    const double skip = std::floor(std::log1p(-u) / log1mp);
    // skip >= 0; advance past the skipped indices to the next edge.
    if (skip >= static_cast<double>(total)) return;  // guard huge skips
    i += static_cast<std::uint64_t>(skip);
    if (i >= total) return;
    fn(i);
    ++i;
    if (i >= total) return;
  }
}

}  // namespace detail

/// Random directed graph: each ordered pair (i, j), i != j, is an edge
/// with probability `density`; weights uniform in [wmin, wmax].
template <Weight W>
EdgeListGraph<W> random_digraph(vertex_t n, double density, std::uint64_t seed, W wmin = W{1},
                                W wmax = W{100}) {
  CG_CHECK(n >= 0 && density >= 0.0 && density <= 1.0 && wmin <= wmax);
  EdgeListGraph<W> g(n);
  if (n < 2) return g;
  const auto un = static_cast<std::uint64_t>(n);
  g.reserve(static_cast<std::size_t>(density * static_cast<double>(un * (un - 1))));
  Rng rng(seed);
  detail::gnp_visit(un * (un - 1), density, rng, [&](std::uint64_t idx) {
    // idx enumerates ordered pairs with the diagonal removed:
    // row i contributes n-1 slots.
    const auto i = static_cast<vertex_t>(idx / (un - 1));
    auto j = static_cast<vertex_t>(idx % (un - 1));
    if (j >= i) ++j;  // skip the diagonal
    const W w = static_cast<W>(rng.uniform_int(static_cast<std::int64_t>(wmin),
                                               static_cast<std::int64_t>(wmax)));
    g.add_edge(i, j, w);
  });
  return g;
}

/// Random undirected graph (each unordered pair {i, j} becomes two
/// directed arcs with the same weight). With `ensure_connected`, a
/// random Hamiltonian path is added first so Prim's MST always spans
/// all of V — matching the paper's MST workloads.
template <Weight W>
EdgeListGraph<W> random_undirected(vertex_t n, double density, std::uint64_t seed,
                                   W wmin = W{1}, W wmax = W{100},
                                   bool ensure_connected = true) {
  CG_CHECK(n >= 0 && density >= 0.0 && density <= 1.0 && wmin <= wmax);
  EdgeListGraph<W> g(n);
  if (n < 2) return g;
  Rng rng(seed);
  const auto un = static_cast<std::uint64_t>(n);

  auto add_undirected = [&](vertex_t a, vertex_t b, W w) {
    g.add_edge(a, b, w);
    g.add_edge(b, a, w);
  };

  if (ensure_connected) {
    std::vector<vertex_t> perm(static_cast<std::size_t>(n));
    for (vertex_t v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
    shuffle(perm.begin(), perm.end(), rng);
    for (std::size_t i = 0; i + 1 < perm.size(); ++i) {
      const W w = static_cast<W>(rng.uniform_int(static_cast<std::int64_t>(wmin),
                                                 static_cast<std::int64_t>(wmax)));
      add_undirected(perm[i], perm[i + 1], w);
    }
  }

  detail::gnp_visit(un * (un - 1) / 2, density, rng, [&](std::uint64_t idx) {
    // idx enumerates pairs i < j in row order: row i has n-1-i slots.
    // Invert the triangular index.
    const double dn = static_cast<double>(un);
    auto i = static_cast<std::uint64_t>(
        dn - 0.5 - std::sqrt((dn - 0.5) * (dn - 0.5) - 2.0 * static_cast<double>(idx)));
    // Floating-point inversion can be off by one; correct it exactly.
    auto row_start = [&](std::uint64_t r) { return r * un - r * (r + 1) / 2; };
    while (i > 0 && row_start(i) > idx) --i;
    while (row_start(i + 1) <= idx) ++i;
    const std::uint64_t j = i + 1 + (idx - row_start(i));
    const W w = static_cast<W>(rng.uniform_int(static_cast<std::int64_t>(wmin),
                                               static_cast<std::int64_t>(wmax)));
    add_undirected(static_cast<vertex_t>(i), static_cast<vertex_t>(j), w);
  });
  return g;
}

/// Unweighted bipartite graph for the matching experiments. Left
/// vertices are 0..left-1, right vertices 0..right-1 (separate id
/// spaces); `edges` holds (l, r) pairs.
struct BipartiteGraph {
  vertex_t left = 0;
  vertex_t right = 0;
  std::vector<std::pair<vertex_t, vertex_t>> edges;

  [[nodiscard]] double density() const noexcept {
    if (left == 0 || right == 0) return 0.0;
    return static_cast<double>(edges.size()) /
           (static_cast<double>(left) * static_cast<double>(right));
  }
};

/// Random bipartite G(left x right, density) — the paper's Section 4.4
/// workload ("edges from each vertex in the partition to randomly
/// chosen vertices not in the partition").
inline BipartiteGraph random_bipartite(vertex_t left, vertex_t right, double density,
                                       std::uint64_t seed) {
  CG_CHECK(left >= 0 && right >= 0 && density >= 0.0 && density <= 1.0);
  BipartiteGraph g;
  g.left = left;
  g.right = right;
  Rng rng(seed);
  const auto ul = static_cast<std::uint64_t>(left);
  const auto ur = static_cast<std::uint64_t>(right);
  g.edges.reserve(static_cast<std::size_t>(density * static_cast<double>(ul * ur)));
  detail::gnp_visit(ul * ur, density, rng, [&](std::uint64_t idx) {
    g.edges.emplace_back(static_cast<vertex_t>(idx / ur), static_cast<vertex_t>(idx % ur));
  });
  return g;
}

/// Best-case input for the two-phase matching (paper Fig. 18): the
/// graph decomposes into `parts` chunk-aligned sub-graphs, each with a
/// perfect matching, so the local phase already finds a maximum
/// matching and the global phase has nothing to do.
inline BipartiteGraph best_case_bipartite(vertex_t n, vertex_t parts, double extra_density,
                                          std::uint64_t seed) {
  CG_CHECK(n > 0 && parts > 0 && n % parts == 0);
  BipartiteGraph g;
  g.left = n;
  g.right = n;
  Rng rng(seed);
  const vertex_t chunk = n / parts;
  // Perfect matching i -> i (inside chunk by construction)...
  for (vertex_t i = 0; i < n; ++i) g.edges.emplace_back(i, i);
  // ...plus noise edges confined to the same chunk pair.
  for (vertex_t p = 0; p < parts; ++p) {
    const auto base = static_cast<std::uint64_t>(p * chunk);
    const auto uc = static_cast<std::uint64_t>(chunk);
    detail::gnp_visit(uc * uc, extra_density, rng, [&](std::uint64_t idx) {
      const auto l = static_cast<vertex_t>(base + idx / uc);
      const auto r = static_cast<vertex_t>(base + idx % uc);
      if (l != r) g.edges.emplace_back(l, r);
    });
  }
  return g;
}

/// Worst-case input for chunk partitioning (paper Section 4.4's
/// adversarial experiment): every edge crosses chunk boundaries — left
/// chunk p only connects to right chunk (p+1) mod parts — so the local
/// phase finds *no* matches at all and the optimized algorithm pays its
/// overhead for nothing.
inline BipartiteGraph worst_case_bipartite(vertex_t n, vertex_t parts, double density,
                                           std::uint64_t seed) {
  CG_CHECK(n > 0 && parts > 1 && n % parts == 0);
  BipartiteGraph g;
  g.left = n;
  g.right = n;
  Rng rng(seed);
  const vertex_t chunk = n / parts;
  const auto uc = static_cast<std::uint64_t>(chunk);
  for (vertex_t p = 0; p < parts; ++p) {
    const auto lbase = static_cast<std::uint64_t>(p * chunk);
    const auto rbase = static_cast<std::uint64_t>(((p + 1) % parts) * chunk);
    detail::gnp_visit(uc * uc, density, rng, [&](std::uint64_t idx) {
      g.edges.emplace_back(static_cast<vertex_t>(lbase + idx / uc),
                           static_cast<vertex_t>(rbase + idx % uc));
    });
  }
  return g;
}

}  // namespace cachegraph::graph
