// Edge-list graph: the neutral interchange format every generator
// produces and every concrete representation is built from.
#pragma once

#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/types.hpp"

namespace cachegraph::graph {

template <Weight W>
struct Edge {
  vertex_t from = 0;
  vertex_t to = 0;
  W weight = W{};

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// One neighbour record as handed to per-edge callbacks by every
/// representation. Interleaving the cost with the index is deliberate
/// (the paper: "Each element must store both the cost of the path and
/// the index of the adjacent node"): a cache line holds complete
/// records, so no second array is touched per edge.
template <Weight W>
struct Neighbor {
  vertex_t to;
  W weight;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

template <Weight W>
class EdgeListGraph {
 public:
  explicit EdgeListGraph(vertex_t num_vertices) : n_(num_vertices) {
    CG_CHECK(num_vertices >= 0);
  }

  void add_edge(vertex_t from, vertex_t to, W weight) {
    CG_CHECK(from >= 0 && from < n_ && to >= 0 && to < n_, "edge endpoint out of range");
    edges_.push_back(Edge<W>{from, to, weight});
  }

  void reserve(std::size_t edges) { edges_.reserve(edges); }

  [[nodiscard]] vertex_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] index_t num_edges() const noexcept {
    return static_cast<index_t>(edges_.size());
  }
  [[nodiscard]] const std::vector<Edge<W>>& edges() const noexcept { return edges_; }

  /// Directed edge density: E / (N * (N-1)).
  [[nodiscard]] double density() const noexcept {
    if (n_ < 2) return 0.0;
    return static_cast<double>(edges_.size()) /
           (static_cast<double>(n_) * static_cast<double>(n_ - 1));
  }

 private:
  vertex_t n_;
  std::vector<Edge<W>> edges_;
};

}  // namespace cachegraph::graph
