// DIMACS shortest-path format I/O ("p sp N M" header, "a u v w" arcs,
// 1-based vertex ids) — the de-facto interchange format for graph
// algorithm benchmarks, used by the examples to load/save inputs.
//
// Parsing is hardened against hostile input: every malformed line —
// truncated fields, ids that overflow vertex_t, garbage tokens, a
// negative or absurd edge count, arcs before the header — raises a
// typed ParseError carrying the 1-based line number and the byte
// offset of that line's start, and nothing the parser does before the
// throw can allocate proportionally to a lied-about header (the
// reserve hint is clamped). ParseError derives from PreconditionError
// so existing catch sites keep working; new callers can catch the
// derived type for the location fields.
#pragma once

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "cachegraph/graph/edge_list.hpp"

namespace cachegraph::graph {

/// A malformed-input rejection with the location that triggered it.
/// Input data is production traffic, not a programmer error — but this
/// derives from PreconditionError so legacy handlers still catch it.
class ParseError : public PreconditionError {
 public:
  ParseError(const std::string& what, std::size_t line, std::uint64_t byte_offset)
      : PreconditionError(what + " (line " + std::to_string(line) + ", byte " +
                          std::to_string(byte_offset) + ")"),
        line_(line),
        byte_offset_(byte_offset) {}

  /// 1-based line number of the offending line.
  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  /// Byte offset of that line's first character in the stream.
  [[nodiscard]] std::uint64_t byte_offset() const noexcept { return byte_offset_; }

 private:
  std::size_t line_;
  std::uint64_t byte_offset_;
};

namespace detail {

/// Weight formatting for write_dimacs. Streaming a floating weight
/// through `os << w` truncates to the default 6 significant digits, so
/// write → read was lossy; std::to_chars emits the shortest decimal
/// that parses back to exactly the same value (the same policy
/// json::Writer uses for numbers).
template <Weight W>
void write_weight(std::ostream& os, W w) {
  if constexpr (std::is_floating_point_v<W>) {
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), w);
    os.write(buf, res.ptr - buf);
  } else {
    os << w;
  }
}

}  // namespace detail

template <Weight W>
void write_dimacs(std::ostream& os, const EdgeListGraph<W>& g,
                  const std::string& comment = {}) {
  if (!comment.empty()) os << "c " << comment << '\n';
  os << "p sp " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& e : g.edges()) {
    os << "a " << (e.from + 1) << ' ' << (e.to + 1) << ' ';
    detail::write_weight(os, e.weight);
    os << '\n';
  }
}

template <Weight W>
[[nodiscard]] EdgeListGraph<W> read_dimacs(std::istream& is) {
  std::string line;
  std::size_t lineno = 0;
  std::uint64_t line_start = 0;  // byte offset of the current line's start
  std::uint64_t next_start = 0;
  vertex_t n = -1;
  index_t m_declared = 0;
  EdgeListGraph<W> g(0);
  const auto fail = [&](const std::string& what) -> ParseError {
    return ParseError(what, lineno, line_start);
  };
  while (std::getline(is, line)) {
    ++lineno;
    line_start = next_start;
    next_start = line_start + line.size() + 1;  // getline consumed the '\n' too
    // CRLF input: getline stops at '\n', leaving the '\r' on the line.
    // Strip it *after* the offset bookkeeping above (the '\r' is a real
    // byte in the stream) so a DOS-saved file parses like a Unix one
    // instead of turning every blank line into an unknown tag '\r'.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'p') {
      if (n >= 0) throw fail("duplicate 'p' line");
      std::string kind;
      ls >> kind >> n >> m_declared;
      // Overflowing counts leave the stream failed — same rejection as
      // garbage tokens.
      if (ls.fail() || n < 0 || m_declared < 0) throw fail("malformed 'p' line");
      g = EdgeListGraph<W>(n);
      // The header is unverified input: clamp the reserve hint so a
      // lied-about edge count cannot force a huge allocation before
      // the (cheap, streaming) arc parse catches the mismatch.
      constexpr index_t kReserveCap = index_t{1} << 20;
      g.reserve(static_cast<std::size_t>(std::min(m_declared, kReserveCap)));
    } else if (tag == 'a') {
      if (n < 0) throw fail("'a' line before 'p' line");
      vertex_t u = 0, v = 0;
      W w{};
      ls >> u >> v >> w;
      // Covers truncated arcs, non-numeric tokens, and ids/weights
      // that overflow their type (operator>> sets failbit on all).
      if (ls.fail()) throw fail("malformed 'a' line");
      // DIMACS ids are 1-based; anything outside [1, n] would silently
      // index out of the vertex range after the -1 shift.
      if (u < 1 || u > n) {
        throw fail("arc tail " + std::to_string(u) + " out of range [1, " +
                   std::to_string(n) + "]");
      }
      if (v < 1 || v > n) {
        throw fail("arc head " + std::to_string(v) + " out of range [1, " +
                   std::to_string(n) + "]");
      }
      g.add_edge(u - 1, v - 1, w);
    } else {
      throw fail("unknown DIMACS line tag '" + std::string(1, tag) + "'");
    }
  }
  if (n < 0) throw fail("missing 'p' line");
  if (g.num_edges() != m_declared) {
    throw fail("edge count " + std::to_string(g.num_edges()) + " does not match 'p' line (" +
               std::to_string(m_declared) + ")");
  }
  return g;
}

}  // namespace cachegraph::graph
