// DIMACS shortest-path format I/O ("p sp N M" header, "a u v w" arcs,
// 1-based vertex ids) — the de-facto interchange format for graph
// algorithm benchmarks, used by the examples to load/save inputs.
#pragma once

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "cachegraph/graph/edge_list.hpp"

namespace cachegraph::graph {

template <Weight W>
void write_dimacs(std::ostream& os, const EdgeListGraph<W>& g,
                  const std::string& comment = {}) {
  if (!comment.empty()) os << "c " << comment << '\n';
  os << "p sp " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& e : g.edges()) {
    os << "a " << (e.from + 1) << ' ' << (e.to + 1) << ' ' << e.weight << '\n';
  }
}

template <Weight W>
[[nodiscard]] EdgeListGraph<W> read_dimacs(std::istream& is) {
  std::string line;
  std::size_t lineno = 0;
  vertex_t n = -1;
  index_t m_declared = 0;
  EdgeListGraph<W> g(0);
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'p') {
      std::string kind;
      ls >> kind >> n >> m_declared;
      CG_CHECK(!ls.fail() && n >= 0,
               "malformed 'p' line (line " + std::to_string(lineno) + ")");
      g = EdgeListGraph<W>(n);
      g.reserve(static_cast<std::size_t>(m_declared));
    } else if (tag == 'a') {
      CG_CHECK(n >= 0, "'a' line before 'p' line (line " + std::to_string(lineno) + ")");
      vertex_t u = 0, v = 0;
      W w{};
      ls >> u >> v >> w;
      CG_CHECK(!ls.fail(), "malformed 'a' line (line " + std::to_string(lineno) + ")");
      // DIMACS ids are 1-based; anything outside [1, n] would silently
      // index out of the vertex range after the -1 shift.
      CG_CHECK(u >= 1 && u <= n,
               "arc tail " + std::to_string(u) + " out of range [1, " + std::to_string(n) +
                   "] (line " + std::to_string(lineno) + ")");
      CG_CHECK(v >= 1 && v <= n,
               "arc head " + std::to_string(v) + " out of range [1, " + std::to_string(n) +
                   "] (line " + std::to_string(lineno) + ")");
      g.add_edge(u - 1, v - 1, w);
    } else {
      CG_CHECK(false, "unknown DIMACS line tag '" + std::string(1, tag) + "' (line " +
                          std::to_string(lineno) + ")");
    }
  }
  CG_CHECK(n >= 0, "missing 'p' line");
  CG_CHECK(g.num_edges() == m_declared, "edge count does not match 'p' line");
  return g;
}

}  // namespace cachegraph::graph
