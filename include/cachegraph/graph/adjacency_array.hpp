// Adjacency array (Section 3.2) — the paper's cache-friendly graph
// representation. A CSR-style structure where each vertex's neighbours
// live in one contiguous run of interleaved {target, weight} records:
// optimal O(N+E) space like the adjacency list, but streaming access
// with no pointer chasing, so cache pollution is minimized and hardware
// prefetching is maximized.
#pragma once

#include <span>
#include <vector>

#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/edge_list.hpp"
#include "cachegraph/memsim/mem_policy.hpp"

namespace cachegraph::graph {

template <Weight W>
class AdjacencyArray {
 public:
  using weight_type = W;

  explicit AdjacencyArray(const EdgeListGraph<W>& g) {
    const auto n = static_cast<std::size_t>(g.num_vertices());
    offsets_.assign(n + 1, 0);
    for (const auto& e : g.edges()) {
      ++offsets_[static_cast<std::size_t>(e.from) + 1];
    }
    for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
    records_.resize(g.edges().size());
    std::vector<index_t> fill(offsets_.begin(), offsets_.end() - 1);
    for (const auto& e : g.edges()) {
      records_[static_cast<std::size_t>(fill[static_cast<std::size_t>(e.from)]++)] =
          Neighbor<W>{e.to, e.weight};
    }
  }

  [[nodiscard]] vertex_t num_vertices() const noexcept {
    return static_cast<vertex_t>(offsets_.size() - 1);
  }
  [[nodiscard]] index_t num_edges() const noexcept {
    return static_cast<index_t>(records_.size());
  }
  [[nodiscard]] index_t out_degree(vertex_t v) const noexcept {
    const auto u = static_cast<std::size_t>(v);
    return offsets_[u + 1] - offsets_[u];
  }

  [[nodiscard]] std::span<const Neighbor<W>> neighbors(vertex_t v) const noexcept {
    const auto u = static_cast<std::size_t>(v);
    return {records_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// Index of v's first record in the flat records() span — lets an
  /// overlay keep per-record side tables (e.g. removal marks) without
  /// duplicating the CSR structure.
  [[nodiscard]] index_t record_offset(vertex_t v) const noexcept {
    return offsets_[static_cast<std::size_t>(v)];
  }

  /// The flat {target, weight} record array, all vertices end to end.
  [[nodiscard]] std::span<const Neighbor<W>> records() const noexcept { return records_; }

  /// Traced neighbour iteration: reports the offset lookups and the
  /// streaming record reads to the memory model, then invokes
  /// fn(neighbor) for each edge.
  template <memsim::MemPolicy Mem, typename Fn>
  void for_neighbors(vertex_t v, Mem& mem, Fn&& fn) const {
    const auto u = static_cast<std::size_t>(v);
    mem.read(&offsets_[u]);
    mem.read(&offsets_[u + 1]);
    const Neighbor<W>* first = records_.data() + offsets_[u];
    const Neighbor<W>* last = records_.data() + offsets_[u + 1];
    for (const Neighbor<W>* rec = first; rec != last; ++rec) {
      mem.read(rec);
      fn(*rec);
    }
  }

  /// Register backing storage with a tracing memory model.
  template <memsim::MemPolicy Mem>
  void map_buffers(Mem& mem) const {
    if constexpr (Mem::tracing) {
      mem.map_buffer(offsets_.data(), offsets_.size() * sizeof(index_t));
      mem.map_buffer(records_.data(), records_.size() * sizeof(Neighbor<W>));
    }
  }

  /// Bytes of live data (for working-set reporting in the benches).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return offsets_.size() * sizeof(index_t) + records_.size() * sizeof(Neighbor<W>);
  }

 private:
  std::vector<index_t> offsets_;
  std::vector<Neighbor<W>> records_;
};

}  // namespace cachegraph::graph
