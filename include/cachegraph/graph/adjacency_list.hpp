// Pointer-chasing adjacency list — the representation the paper's
// Section 3.2 optimization replaces.
//
// Space-optimal (O(N+E)) but every neighbour visit dereferences a
// `next` pointer: loads are serialized behind the pointer chain, the
// hardware prefetcher cannot run ahead, and each node carries a next
// pointer doubling its footprint versus the adjacency-array record.
//
// Node placement within the backing pool is configurable:
//   - kSequentialPlacement (default): nodes laid out in allocation
//     order, as a freshly built malloc'ed list would be. This is the
//     fair baseline the paper measures against (~2x slower than the
//     adjacency array on the Pentium III).
//   - any other seed: placement deterministically shuffled, modelling a
//     list whose nodes were allocated piecemeal over a long program
//     lifetime — the adversarial case where pointer chasing also loses
//     all spatial locality.
// Ownership stays RAII-simple — one vector owns all nodes.
#pragma once

#include <numeric>
#include <vector>

#include "cachegraph/common/rng.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/edge_list.hpp"
#include "cachegraph/memsim/mem_policy.hpp"

namespace cachegraph::graph {

template <Weight W>
class AdjacencyList {
 public:
  using weight_type = W;

  struct Node {
    vertex_t to;
    W weight;
    const Node* next;
  };

  /// `placement_seed` scrambles where in the pool each list node lives;
  /// kSequentialPlacement keeps allocation order (fresh-list behaviour).
  static constexpr std::uint64_t kSequentialPlacement = 0;

  explicit AdjacencyList(const EdgeListGraph<W>& g,
                         std::uint64_t placement_seed = kSequentialPlacement)
      : pool_(g.edges().size()), heads_(static_cast<std::size_t>(g.num_vertices()), nullptr) {
    const auto m = g.edges().size();
    std::vector<std::size_t> slot(m);
    std::iota(slot.begin(), slot.end(), std::size_t{0});
    if (placement_seed != kSequentialPlacement) {
      Rng rng(placement_seed);
      shuffle(slot.begin(), slot.end(), rng);
    }
    // Insert edges in reverse so each list preserves edge order when
    // walked head-to-tail.
    for (std::size_t idx = m; idx-- > 0;) {
      const auto& e = g.edges()[idx];
      Node& node = pool_[slot[idx]];
      const auto from = static_cast<std::size_t>(e.from);
      node = Node{e.to, e.weight, heads_[from]};
      heads_[from] = &node;
    }
    num_edges_ = static_cast<index_t>(m);
  }

  [[nodiscard]] vertex_t num_vertices() const noexcept {
    return static_cast<vertex_t>(heads_.size());
  }
  [[nodiscard]] index_t num_edges() const noexcept { return num_edges_; }

  [[nodiscard]] const Node* head(vertex_t v) const noexcept {
    return heads_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] index_t out_degree(vertex_t v) const noexcept {
    index_t d = 0;
    for (const Node* n = head(v); n != nullptr; n = n->next) ++d;
    return d;
  }

  /// Traced neighbour iteration: one head-pointer read, then one node
  /// read per edge — each potentially a fresh cache line.
  template <memsim::MemPolicy Mem, typename Fn>
  void for_neighbors(vertex_t v, Mem& mem, Fn&& fn) const {
    mem.read(&heads_[static_cast<std::size_t>(v)]);
    for (const Node* n = heads_[static_cast<std::size_t>(v)]; n != nullptr; n = n->next) {
      mem.read(n);
      fn(Neighbor<W>{n->to, n->weight});
    }
  }

  template <memsim::MemPolicy Mem>
  void map_buffers(Mem& mem) const {
    if constexpr (Mem::tracing) {
      mem.map_buffer(heads_.data(), heads_.size() * sizeof(Node*));
      mem.map_buffer(pool_.data(), pool_.size() * sizeof(Node));
    }
  }

  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return heads_.size() * sizeof(Node*) + pool_.size() * sizeof(Node);
  }

 private:
  std::vector<Node> pool_;
  std::vector<const Node*> heads_;
  index_t num_edges_ = 0;
};

}  // namespace cachegraph::graph
