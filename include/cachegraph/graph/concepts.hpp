// Concept satisfied by every graph representation (adjacency matrix,
// adjacency list, adjacency array): the contract the SSSP/MST/matching
// algorithm templates are written against.
#pragma once

#include <concepts>

#include "cachegraph/graph/edge_list.hpp"
#include "cachegraph/memsim/mem_policy.hpp"

namespace cachegraph::graph {

template <typename G>
concept GraphRep = requires(const G g, vertex_t v, memsim::NullMem mem) {
  typename G::weight_type;
  { g.num_vertices() } -> std::convertible_to<vertex_t>;
  { g.num_edges() } -> std::convertible_to<index_t>;
  g.for_neighbors(v, mem, [](const Neighbor<typename G::weight_type>&) {});
  g.map_buffers(mem);
  { g.footprint_bytes() } -> std::convertible_to<std::size_t>;
};

}  // namespace cachegraph::graph
