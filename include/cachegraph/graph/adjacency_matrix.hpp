// Dense adjacency matrix: O(N²) space, perfectly contiguous row scans.
// Cache-friendly but size-inefficient for sparse graphs — the third
// point in the paper's representation comparison (Section 3.2).
#pragma once

#include <vector>

#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/edge_list.hpp"
#include "cachegraph/memsim/mem_policy.hpp"

namespace cachegraph::graph {

template <Weight W>
class AdjacencyMatrix {
 public:
  using weight_type = W;

  explicit AdjacencyMatrix(const EdgeListGraph<W>& g)
      : n_(static_cast<std::size_t>(g.num_vertices())), w_(n_ * n_, inf<W>()) {
    for (std::size_t i = 0; i < n_; ++i) w_[i * n_ + i] = W{0};
    for (const auto& e : g.edges()) {
      W& slot = w_[static_cast<std::size_t>(e.from) * n_ + static_cast<std::size_t>(e.to)];
      if (e.from != e.to && is_inf(slot)) ++num_edges_;
      if (e.weight < slot) slot = e.weight;  // keep the lightest parallel edge
    }
  }

  [[nodiscard]] vertex_t num_vertices() const noexcept { return static_cast<vertex_t>(n_); }
  [[nodiscard]] index_t num_edges() const noexcept { return num_edges_; }

  [[nodiscard]] W weight(vertex_t from, vertex_t to) const noexcept {
    return w_[static_cast<std::size_t>(from) * n_ + static_cast<std::size_t>(to)];
  }

  /// Row-major weight matrix view — the direct input to the FW variants.
  [[nodiscard]] const std::vector<W>& weights() const noexcept { return w_; }

  /// Traced neighbour iteration: scans the whole row (that is the cost
  /// of the dense representation for sparse graphs).
  template <memsim::MemPolicy Mem, typename Fn>
  void for_neighbors(vertex_t v, Mem& mem, Fn&& fn) const {
    const W* row = w_.data() + static_cast<std::size_t>(v) * n_;
    for (std::size_t j = 0; j < n_; ++j) {
      mem.read(&row[j]);
      if (j != static_cast<std::size_t>(v) && !is_inf(row[j])) {
        fn(Neighbor<W>{static_cast<vertex_t>(j), row[j]});
      }
    }
  }

  template <memsim::MemPolicy Mem>
  void map_buffers(Mem& mem) const {
    if constexpr (Mem::tracing) {
      mem.map_buffer(w_.data(), w_.size() * sizeof(W));
    }
  }

  [[nodiscard]] std::size_t footprint_bytes() const noexcept { return w_.size() * sizeof(W); }

 private:
  std::size_t n_;
  std::vector<W> w_;
  index_t num_edges_ = 0;
};

}  // namespace cachegraph::graph
