// Owning N×N matrix over a configurable data layout.
//
// `SquareMatrix<W, L>` stores a *padded* physical matrix of size
// `L::n()` while remembering the logical problem size. Padding elements
// are initialized to inf<W>() (inert under FW relaxation, see
// layout/padding.hpp). Conversions to/from a plain row-major matrix are
// provided so the benchmarks can hand the same input to every variant;
// the TaskPool overloads split the conversion into row strips (layout
// offsets are bijective, so strips never write the same element) —
// the sequential O(N²) conversion otherwise dominates setup at large N
// once the O(N³) compute is spread over several cores.
#pragma once

#include <algorithm>
#include <cstring>

#include "cachegraph/common/buffer.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/layout/layouts.hpp"
#include "cachegraph/parallel/task_pool.hpp"

namespace cachegraph::matrix {

template <Weight W, layout::MatrixLayout L>
class SquareMatrix {
 public:
  using value_type = W;
  using layout_type = L;

  /// Build a padded matrix: `layout.n()` is the physical size,
  /// `logical_n <= layout.n()` the problem size. Storage starts as
  /// inf<W>() everywhere (so padding is correct by construction);
  /// callers then fill the logical region.
  SquareMatrix(L layout, std::size_t logical_n)
      : layout_(layout), logical_n_(logical_n), data_(layout.storage_elements()) {
    CG_CHECK(logical_n <= layout_.n(), "logical size exceeds physical size");
    for (auto& w : data_) w = inf<W>();
  }

  [[nodiscard]] const L& layout() const noexcept { return layout_; }
  [[nodiscard]] std::size_t n() const noexcept { return logical_n_; }
  [[nodiscard]] std::size_t padded_n() const noexcept { return layout_.n(); }

  [[nodiscard]] W& at(std::size_t i, std::size_t j) noexcept {
    return data_[layout_.offset(i, j)];
  }
  [[nodiscard]] const W& at(std::size_t i, std::size_t j) const noexcept {
    return data_[layout_.offset(i, j)];
  }

  [[nodiscard]] W* data() noexcept { return data_.data(); }
  [[nodiscard]] const W* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::size_t storage_elements() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t storage_bytes() const noexcept { return data_.size() * sizeof(W); }

  [[nodiscard]] W* tile(std::size_t bi, std::size_t bj) noexcept {
    return data_.data() + layout_.tile_offset(bi, bj);
  }
  [[nodiscard]] const W* tile(std::size_t bi, std::size_t bj) const noexcept {
    return data_.data() + layout_.tile_offset(bi, bj);
  }

  /// Copy the logical region in from a row-major source (stride n).
  void load_row_major(const W* src, std::size_t n) {
    CG_CHECK(n == logical_n_);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        at(i, j) = src[i * n + j];
      }
    }
  }

  /// Copy the logical region out to a row-major destination (stride n).
  void store_row_major(W* dst, std::size_t n) const {
    CG_CHECK(n == logical_n_);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        dst[i * n + j] = at(i, j);
      }
    }
  }

  /// Parallel load: one task per strip of logical rows.
  void load_row_major(const W* src, std::size_t n, parallel::TaskPool& pool) {
    CG_CHECK(n == logical_n_);
    for_row_strips(n, pool, [this, src, n](std::size_t r0, std::size_t r1) {
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          at(i, j) = src[i * n + j];
        }
      }
    });
  }

  /// Parallel store: one task per strip of logical rows.
  void store_row_major(W* dst, std::size_t n, parallel::TaskPool& pool) const {
    CG_CHECK(n == logical_n_);
    for_row_strips(n, pool, [this, dst, n](std::size_t r0, std::size_t r1) {
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          dst[i * n + j] = at(i, j);
        }
      }
    });
  }

 private:
  /// Runs body(r0, r1) over row strips [r0, r1) covering [0, n). Strips
  /// are block-aligned so a tile's interior is filled by one task, and
  /// sized for ~4 strips per pool thread to give the stealer slack.
  template <typename Body>
  void for_row_strips(std::size_t n, parallel::TaskPool& pool, Body body) const {
    const std::size_t want = static_cast<std::size_t>(pool.num_threads()) * 4;
    std::size_t strip = std::max<std::size_t>(layout_.block(), (n + want - 1) / std::max<std::size_t>(want, 1));
    strip = (strip + layout_.block() - 1) / layout_.block() * layout_.block();
    parallel::TaskGroup g(pool);
    for (std::size_t r0 = 0; r0 < n; r0 += strip) {
      const std::size_t r1 = std::min(n, r0 + strip);
      g.run([body, r0, r1] { body(r0, r1); });
    }
    g.wait();
  }

  L layout_;
  std::size_t logical_n_;
  AlignedBuffer<W> data_;
};

/// Equality over the logical region only (padding ignored).
template <Weight W, layout::MatrixLayout LA, layout::MatrixLayout LB>
[[nodiscard]] bool logically_equal(const SquareMatrix<W, LA>& a, const SquareMatrix<W, LB>& b) {
  if (a.n() != b.n()) return false;
  for (std::size_t i = 0; i < a.n(); ++i) {
    for (std::size_t j = 0; j < a.n(); ++j) {
      if (a.at(i, j) != b.at(i, j)) return false;
    }
  }
  return true;
}

}  // namespace cachegraph::matrix
