// Indexed binary min-heap with decrease-key — the priority queue the
// paper pairs with Dijkstra's and Prim's algorithms (the Update
// operation is exactly decrease_key, which the highly-optimized heaps
// in the literature, e.g. Sanders' sequential heap, do not support).
//
// Entries are {key, vertex} records stored contiguously; pos_[v] tracks
// each vertex's slot so Update is O(lg N). All logical accesses are
// reported to the memory model so the simulated tables include
// heap traffic, as SimpleScalar's did.
#pragma once

#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/memsim/mem_policy.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::pq {

template <Weight W, memsim::MemPolicy Mem = memsim::NullMem>
class BinaryHeap {
 public:
  using weight_type = W;

  struct Entry {
    W key;
    vertex_t vertex;
  };

  explicit BinaryHeap(vertex_t capacity, Mem mem = Mem{})
      : pos_(static_cast<std::size_t>(capacity), kAbsent), mem_(mem) {
    heap_.reserve(static_cast<std::size_t>(capacity));
    if constexpr (Mem::tracing) {
      mem_.map_buffer(heap_.data(), heap_.capacity() * sizeof(Entry));
      mem_.map_buffer(pos_.data(), pos_.size() * sizeof(index_t));
    }
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] bool contains(vertex_t v) const noexcept {
    return pos_[static_cast<std::size_t>(v)] != kAbsent;
  }
  [[nodiscard]] W key_of(vertex_t v) const noexcept {
    return heap_[static_cast<std::size_t>(pos_[static_cast<std::size_t>(v)])].key;
  }

  void insert(vertex_t v, W key) {
    CG_COUNTER_INC("pq.binary.inserts");
    CG_DCHECK(!contains(v));
    heap_.push_back(Entry{key, v});
    const auto slot = static_cast<index_t>(heap_.size() - 1);
    set_pos(v, slot);
    write_entry(static_cast<std::size_t>(slot));
    sift_up(static_cast<std::size_t>(slot));
  }

  Entry extract_min() {
    CG_COUNTER_INC("pq.binary.extract_mins");
    CG_CHECK(!heap_.empty(), "extract_min on empty heap");
    read_entry(0);
    const Entry top = heap_.front();
    set_pos(top.vertex, kAbsent);
    const Entry last = heap_.back();
    read_entry(heap_.size() - 1);
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      write_entry(0);
      set_pos(last.vertex, 0);
      sift_down(0);
    }
    return top;
  }

  /// The paper's Update operation: lower v's key (no-op if not lower).
  void decrease_key(vertex_t v, W key) {
    CG_COUNTER_INC("pq.binary.decrease_keys");
    const auto slot = static_cast<std::size_t>(pos_[static_cast<std::size_t>(v)]);
    read_entry(slot);
    CG_DCHECK(contains(v));
    if (key >= heap_[slot].key) return;
    heap_[slot].key = key;
    write_entry(slot);
    sift_up(slot);
  }

  /// Removes every entry in O(size), keeping the reserved capacity —
  /// the reset an early-exiting search needs (an exhausted search
  /// drains the heap itself and this is a no-op).
  void clear() noexcept {
    for (const Entry& e : heap_) pos_[static_cast<std::size_t>(e.vertex)] = kAbsent;
    heap_.clear();
  }

 private:
  static constexpr index_t kAbsent = -1;

  void read_entry(std::size_t i) { mem_.read(&heap_[i]); }
  void write_entry(std::size_t i) { mem_.write(&heap_[i]); }
  void set_pos(vertex_t v, index_t slot) {
    pos_[static_cast<std::size_t>(v)] = slot;
    mem_.write(&pos_[static_cast<std::size_t>(v)]);
  }

  void sift_up(std::size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      read_entry(parent);
      if (heap_[parent].key <= e.key) break;
      heap_[i] = heap_[parent];
      write_entry(i);
      set_pos(heap_[i].vertex, static_cast<index_t>(i));
      i = parent;
    }
    heap_[i] = e;
    write_entry(i);
    set_pos(e.vertex, static_cast<index_t>(i));
  }

  void sift_down(std::size_t i) {
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      read_entry(child);
      if (child + 1 < n) {
        read_entry(child + 1);
        if (heap_[child + 1].key < heap_[child].key) ++child;
      }
      if (heap_[child].key >= e.key) break;
      heap_[i] = heap_[child];
      write_entry(i);
      set_pos(heap_[i].vertex, static_cast<index_t>(i));
      i = child;
    }
    heap_[i] = e;
    write_entry(i);
    set_pos(e.vertex, static_cast<index_t>(i));
  }

  std::vector<Entry> heap_;
  std::vector<index_t> pos_;
  Mem mem_;
};

}  // namespace cachegraph::pq
