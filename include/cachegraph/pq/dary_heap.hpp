// Indexed d-ary min-heap with decrease-key.
//
// Wider nodes trade deeper sift-downs for fewer levels and better use
// of each cache line (D consecutive children share lines) — the classic
// cache-conscious heap refinement, included for the heap ablation bench
// that backs the paper's "Fibonacci heaps lose to simple heaps in
// practice" observation from the other side.
#pragma once

#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/memsim/mem_policy.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::pq {

template <Weight W, std::size_t D = 4, memsim::MemPolicy Mem = memsim::NullMem>
class DAryHeap {
  static_assert(D >= 2, "arity must be at least 2");

 public:
  using weight_type = W;

  struct Entry {
    W key;
    vertex_t vertex;
  };

  explicit DAryHeap(vertex_t capacity, Mem mem = Mem{})
      : pos_(static_cast<std::size_t>(capacity), kAbsent), mem_(mem) {
    heap_.reserve(static_cast<std::size_t>(capacity));
    if constexpr (Mem::tracing) {
      mem_.map_buffer(heap_.data(), heap_.capacity() * sizeof(Entry));
      mem_.map_buffer(pos_.data(), pos_.size() * sizeof(index_t));
    }
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] bool contains(vertex_t v) const noexcept {
    return pos_[static_cast<std::size_t>(v)] != kAbsent;
  }
  [[nodiscard]] W key_of(vertex_t v) const noexcept {
    return heap_[static_cast<std::size_t>(pos_[static_cast<std::size_t>(v)])].key;
  }

  void insert(vertex_t v, W key) {
    CG_COUNTER_INC("pq.dary.inserts");
    CG_DCHECK(!contains(v));
    heap_.push_back(Entry{key, v});
    const auto slot = heap_.size() - 1;
    set_pos(v, static_cast<index_t>(slot));
    mem_.write(&heap_[slot]);
    sift_up(slot);
  }

  Entry extract_min() {
    CG_COUNTER_INC("pq.dary.extract_mins");
    CG_CHECK(!heap_.empty(), "extract_min on empty heap");
    mem_.read(&heap_[0]);
    const Entry top = heap_.front();
    set_pos(top.vertex, kAbsent);
    const Entry last = heap_.back();
    mem_.read(&heap_[heap_.size() - 1]);
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      mem_.write(&heap_[0]);
      set_pos(last.vertex, 0);
      sift_down(0);
    }
    return top;
  }

  void decrease_key(vertex_t v, W key) {
    CG_COUNTER_INC("pq.dary.decrease_keys");
    const auto slot = static_cast<std::size_t>(pos_[static_cast<std::size_t>(v)]);
    CG_DCHECK(contains(v));
    mem_.read(&heap_[slot]);
    if (key >= heap_[slot].key) return;
    heap_[slot].key = key;
    mem_.write(&heap_[slot]);
    sift_up(slot);
  }

  /// Removes every entry in O(size), keeping the reserved capacity —
  /// the reset an early-exiting search needs (an exhausted search
  /// drains the heap itself and this is a no-op).
  void clear() noexcept {
    for (const Entry& e : heap_) pos_[static_cast<std::size_t>(e.vertex)] = kAbsent;
    heap_.clear();
  }

 private:
  static constexpr index_t kAbsent = -1;

  void set_pos(vertex_t v, index_t slot) {
    pos_[static_cast<std::size_t>(v)] = slot;
    mem_.write(&pos_[static_cast<std::size_t>(v)]);
  }

  void sift_up(std::size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / D;
      mem_.read(&heap_[parent]);
      if (heap_[parent].key <= e.key) break;
      heap_[i] = heap_[parent];
      mem_.write(&heap_[i]);
      set_pos(heap_[i].vertex, static_cast<index_t>(i));
      i = parent;
    }
    heap_[i] = e;
    mem_.write(&heap_[i]);
    set_pos(e.vertex, static_cast<index_t>(i));
  }

  void sift_down(std::size_t i) {
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t first = D * i + 1;
      if (first >= n) break;
      const std::size_t last = first + D < n ? first + D : n;
      std::size_t best = first;
      for (std::size_t c = first; c < last; ++c) {
        mem_.read(&heap_[c]);
        if (heap_[c].key < heap_[best].key) best = c;
      }
      if (heap_[best].key >= e.key) break;
      heap_[i] = heap_[best];
      mem_.write(&heap_[i]);
      set_pos(heap_[i].vertex, static_cast<index_t>(i));
      i = best;
    }
    heap_[i] = e;
    mem_.write(&heap_[i]);
    set_pos(e.vertex, static_cast<index_t>(i));
  }

  std::vector<Entry> heap_;
  std::vector<index_t> pos_;
  Mem mem_;
};

}  // namespace cachegraph::pq
