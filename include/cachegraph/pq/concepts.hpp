// Concept for indexed priority queues with the Update (decrease-key)
// operation — the contract Dijkstra's and Prim's algorithm templates
// require (paper Section 3.2: O(N) Extract-Mins and O(E) Updates).
#pragma once

#include <concepts>

#include "cachegraph/common/types.hpp"

namespace cachegraph::pq {

template <typename H>
concept IndexedHeap = requires(H h, const H ch, vertex_t v, typename H::weight_type k) {
  typename H::weight_type;
  { ch.empty() } -> std::convertible_to<bool>;
  { ch.size() } -> std::convertible_to<std::size_t>;
  { ch.contains(v) } -> std::convertible_to<bool>;
  h.insert(v, k);
  h.decrease_key(v, k);
  { h.extract_min().vertex } -> std::convertible_to<vertex_t>;
  { h.extract_min().key } -> std::convertible_to<typename H::weight_type>;
};

}  // namespace cachegraph::pq
