// Fibonacci heap with decrease-key.
//
// The asymptotically optimal priority queue for Dijkstra/Prim —
// O(N lg N + E) total — which the paper nevertheless found "performs
// very poorly" in practice due to large constant factors and scattered
// node accesses (Section 2). It is implemented here precisely so the
// heap ablation bench can reproduce that observation. Nodes live in a
// vertex-indexed pool; links are vertex ids.
#pragma once

#include <array>
#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/memsim/mem_policy.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::pq {

template <Weight W, memsim::MemPolicy Mem = memsim::NullMem>
class FibonacciHeap {
 public:
  using weight_type = W;

  struct Entry {
    W key;
    vertex_t vertex;
  };

  explicit FibonacciHeap(vertex_t capacity, Mem mem = Mem{})
      : nodes_(static_cast<std::size_t>(capacity)), mem_(mem) {
    if constexpr (Mem::tracing) {
      mem_.map_buffer(nodes_.data(), nodes_.size() * sizeof(Node));
    }
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool contains(vertex_t v) const noexcept {
    return nodes_[static_cast<std::size_t>(v)].in_heap;
  }
  [[nodiscard]] W key_of(vertex_t v) const noexcept {
    return nodes_[static_cast<std::size_t>(v)].key;
  }

  void insert(vertex_t v, W key) {
    CG_COUNTER_INC("pq.fibonacci.inserts");
    CG_DCHECK(!contains(v));
    Node& n = node(v);
    n = Node{};
    n.key = key;
    n.in_heap = true;
    n.left = v;
    n.right = v;
    mem_.write(&n);
    add_to_root_list(v);
    if (min_ == kNoVertex || key < node(min_).key) min_ = v;
    ++size_;
  }

  Entry extract_min() {
    CG_COUNTER_INC("pq.fibonacci.extract_mins");
    CG_CHECK(size_ > 0, "extract_min on empty heap");
    const vertex_t z = min_;
    mem_.read(&node(z));
    const Entry out{node(z).key, z};

    // Promote z's children to the root list.
    vertex_t child = node(z).child;
    if (child != kNoVertex) {
      vertex_t c = child;
      do {
        mem_.read(&node(c));
        const vertex_t next = node(c).right;
        node(c).parent = kNoVertex;
        node(c).marked = false;
        splice_into_roots(c);
        c = next;
      } while (c != child);
    }
    remove_from_circular(z);
    node(z).in_heap = false;
    node(z).child = kNoVertex;
    mem_.write(&node(z));
    --size_;

    if (size_ == 0) {
      min_ = kNoVertex;
      roots_head_ = kNoVertex;
    } else {
      min_ = roots_head_;
      consolidate();
    }
    return out;
  }

  void decrease_key(vertex_t v, W key) {
    CG_COUNTER_INC("pq.fibonacci.decrease_keys");
    Node& n = node(v);
    mem_.read(&n);
    CG_DCHECK(n.in_heap);
    if (key >= n.key) return;
    n.key = key;
    mem_.write(&n);
    const vertex_t parent = n.parent;
    if (parent != kNoVertex && node(v).key < node(parent).key) {
      cut(v, parent);
      cascading_cut(parent);
    }
    if (node(v).key < node(min_).key) min_ = v;
  }

 private:
  struct Node {
    W key{};
    vertex_t parent = kNoVertex;
    vertex_t child = kNoVertex;
    vertex_t left = kNoVertex;   ///< circular sibling list
    vertex_t right = kNoVertex;
    std::int32_t degree = 0;
    bool marked = false;
    bool in_heap = false;
  };

  [[nodiscard]] Node& node(vertex_t v) noexcept { return nodes_[static_cast<std::size_t>(v)]; }

  void add_to_root_list(vertex_t v) { splice_into_roots(v); }

  /// Insert v into the circular root list (v's left/right self-looped
  /// or about to be overwritten).
  void splice_into_roots(vertex_t v) {
    if (roots_head_ == kNoVertex) {
      node(v).left = v;
      node(v).right = v;
      roots_head_ = v;
    } else {
      Node& head = node(roots_head_);
      node(v).right = roots_head_;
      node(v).left = head.left;
      node(head.left).right = v;
      mem_.write(&node(head.left));
      head.left = v;
      mem_.write(&head);
    }
    mem_.write(&node(v));
  }

  /// Remove v from whatever circular list it is in, fixing roots_head_.
  void remove_from_circular(vertex_t v) {
    Node& n = node(v);
    if (n.right == v) {
      if (roots_head_ == v) roots_head_ = kNoVertex;
    } else {
      node(n.left).right = n.right;
      node(n.right).left = n.left;
      mem_.write(&node(n.left));
      mem_.write(&node(n.right));
      if (roots_head_ == v) roots_head_ = n.right;
    }
    n.left = v;
    n.right = v;
    mem_.write(&n);
  }

  void consolidate() {
    // Max degree is O(lg size); 64 covers everything addressable.
    std::array<vertex_t, 64> by_degree;
    by_degree.fill(kNoVertex);

    // Snapshot the root list (links change as we merge).
    std::vector<vertex_t> roots;
    if (roots_head_ != kNoVertex) {
      vertex_t c = roots_head_;
      do {
        roots.push_back(c);
        c = node(c).right;
      } while (c != roots_head_);
    }

    for (vertex_t w : roots) {
      vertex_t x = w;
      mem_.read(&node(x));
      auto d = static_cast<std::size_t>(node(x).degree);
      while (by_degree[d] != kNoVertex) {
        vertex_t y = by_degree[d];
        if (node(y).key < node(x).key) std::swap(x, y);
        link(y, x);  // y becomes child of x
        by_degree[d] = kNoVertex;
        ++d;
      }
      by_degree[d] = x;
    }

    // Rebuild the root list and find the minimum.
    roots_head_ = kNoVertex;
    min_ = kNoVertex;
    for (vertex_t v : by_degree) {
      if (v == kNoVertex) continue;
      node(v).left = v;
      node(v).right = v;
      splice_into_roots(v);
      if (min_ == kNoVertex || node(v).key < node(min_).key) min_ = v;
    }
  }

  /// Make y a child of x (both are roots, key(x) <= key(y)).
  void link(vertex_t y, vertex_t x) {
    remove_from_circular(y);
    Node& ny = node(y);
    Node& nx = node(x);
    ny.parent = x;
    ny.marked = false;
    if (nx.child == kNoVertex) {
      nx.child = y;
      ny.left = y;
      ny.right = y;
    } else {
      Node& head = node(nx.child);
      ny.right = nx.child;
      ny.left = head.left;
      node(head.left).right = y;
      mem_.write(&node(head.left));
      head.left = y;
      mem_.write(&head);
    }
    ++nx.degree;
    mem_.write(&ny);
    mem_.write(&nx);
  }

  /// Move child v of `parent` to the root list.
  void cut(vertex_t v, vertex_t parent) {
    Node& np = node(parent);
    if (np.child == v) {
      np.child = (node(v).right == v) ? kNoVertex : node(v).right;
    }
    // Remove v from the sibling ring without touching roots_head_.
    if (node(v).right != v) {
      node(node(v).left).right = node(v).right;
      node(node(v).right).left = node(v).left;
      mem_.write(&node(node(v).left));
      mem_.write(&node(node(v).right));
    }
    --np.degree;
    mem_.write(&np);
    node(v).parent = kNoVertex;
    node(v).marked = false;
    node(v).left = v;
    node(v).right = v;
    splice_into_roots(v);
  }

  void cascading_cut(vertex_t v) {
    while (true) {
      const vertex_t parent = node(v).parent;
      if (parent == kNoVertex) return;
      if (!node(v).marked) {
        node(v).marked = true;
        mem_.write(&node(v));
        return;
      }
      cut(v, parent);
      v = parent;
    }
  }

  std::vector<Node> nodes_;
  vertex_t min_ = kNoVertex;
  vertex_t roots_head_ = kNoVertex;
  std::size_t size_ = 0;
  Mem mem_;
};

}  // namespace cachegraph::pq
