// Pairing heap with decrease-key.
//
// Amortized O(1) insert/decrease-key (conjectured), O(lg N) delete-min.
// Nodes live in a pool indexed by vertex id, so there is no per-node
// allocation; links are vertex indices rather than raw pointers. Still
// a pointer-structure at heart — each link hop is a potential cache
// miss, which is exactly what the heap ablation bench quantifies.
#pragma once

#include <vector>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/types.hpp"
#include "cachegraph/memsim/mem_policy.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::pq {

template <Weight W, memsim::MemPolicy Mem = memsim::NullMem>
class PairingHeap {
 public:
  using weight_type = W;

  struct Entry {
    W key;
    vertex_t vertex;
  };

  explicit PairingHeap(vertex_t capacity, Mem mem = Mem{})
      : nodes_(static_cast<std::size_t>(capacity)), mem_(mem) {
    if constexpr (Mem::tracing) {
      mem_.map_buffer(nodes_.data(), nodes_.size() * sizeof(Node));
    }
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool contains(vertex_t v) const noexcept {
    return nodes_[static_cast<std::size_t>(v)].in_heap;
  }
  [[nodiscard]] W key_of(vertex_t v) const noexcept {
    return nodes_[static_cast<std::size_t>(v)].key;
  }

  void insert(vertex_t v, W key) {
    CG_COUNTER_INC("pq.pairing.inserts");
    CG_DCHECK(!contains(v));
    Node& n = node(v);
    n = Node{key, kNoVertex, kNoVertex, kNoVertex, true};
    mem_.write(&n);
    root_ = (root_ == kNoVertex) ? v : meld(root_, v);
    ++size_;
  }

  Entry extract_min() {
    CG_COUNTER_INC("pq.pairing.extract_mins");
    CG_CHECK(size_ > 0, "extract_min on empty heap");
    const vertex_t min_v = root_;
    mem_.read(&node(min_v));
    const Entry out{node(min_v).key, min_v};
    node(min_v).in_heap = false;
    mem_.write(&node(min_v));
    root_ = two_pass_merge(node(min_v).child);
    if (root_ != kNoVertex) {
      node(root_).prev = kNoVertex;
      node(root_).sibling = kNoVertex;
      mem_.write(&node(root_));
    }
    --size_;
    return out;
  }

  void decrease_key(vertex_t v, W key) {
    CG_COUNTER_INC("pq.pairing.decrease_keys");
    Node& n = node(v);
    mem_.read(&n);
    CG_DCHECK(n.in_heap);
    if (key >= n.key) return;
    n.key = key;
    mem_.write(&n);
    if (v == root_) return;
    detach(v);
    root_ = meld(root_, v);
  }

 private:
  struct Node {
    W key{};
    vertex_t child = kNoVertex;
    vertex_t sibling = kNoVertex;
    vertex_t prev = kNoVertex;  ///< parent if first child, else left sibling
    bool in_heap = false;
  };

  [[nodiscard]] Node& node(vertex_t v) noexcept { return nodes_[static_cast<std::size_t>(v)]; }

  /// Link two roots; the larger-key one becomes the first child.
  vertex_t meld(vertex_t a, vertex_t b) {
    mem_.read(&node(a));
    mem_.read(&node(b));
    if (node(b).key < node(a).key) std::swap(a, b);
    Node& pa = node(a);
    Node& pb = node(b);
    pb.prev = a;
    pb.sibling = pa.child;
    if (pa.child != kNoVertex) {
      node(pa.child).prev = b;
      mem_.write(&node(pa.child));
    }
    pa.child = b;
    mem_.write(&pa);
    mem_.write(&pb);
    return a;
  }

  /// Unhook v from its parent/sibling chain (for decrease-key).
  void detach(vertex_t v) {
    Node& n = node(v);
    Node& p = node(n.prev);
    mem_.read(&p);
    if (p.child == v) {
      p.child = n.sibling;
    } else {
      p.sibling = n.sibling;
    }
    mem_.write(&p);
    if (n.sibling != kNoVertex) {
      node(n.sibling).prev = n.prev;
      mem_.write(&node(n.sibling));
    }
    n.sibling = kNoVertex;
    n.prev = kNoVertex;
    mem_.write(&n);
  }

  /// Standard two-pass pairing: left-to-right pairwise meld, then
  /// right-to-left fold.
  vertex_t two_pass_merge(vertex_t first) {
    if (first == kNoVertex) return kNoVertex;
    std::vector<vertex_t> pairs;
    vertex_t cur = first;
    while (cur != kNoVertex) {
      mem_.read(&node(cur));
      const vertex_t next = node(cur).sibling;
      node(cur).sibling = kNoVertex;
      node(cur).prev = kNoVertex;
      mem_.write(&node(cur));
      if (next != kNoVertex) {
        mem_.read(&node(next));
        const vertex_t after = node(next).sibling;
        node(next).sibling = kNoVertex;
        node(next).prev = kNoVertex;
        mem_.write(&node(next));
        pairs.push_back(meld(cur, next));
        cur = after;
      } else {
        pairs.push_back(cur);
        cur = kNoVertex;
      }
    }
    vertex_t root = pairs.back();
    for (std::size_t i = pairs.size() - 1; i-- > 0;) {
      root = meld(root, pairs[i]);
    }
    return root;
  }

  std::vector<Node> nodes_;
  vertex_t root_ = kNoVertex;
  std::size_t size_ = 0;
  Mem mem_;
};

}  // namespace cachegraph::pq
