// Kruskal's algorithm + union-find.
//
// Included as the independent MST oracle for testing Prim (two
// completely different algorithms must produce equal total weight on
// every input), and as a baseline in the MST benches.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "cachegraph/common/types.hpp"
#include "cachegraph/graph/edge_list.hpp"

namespace cachegraph::mst {

/// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if the sets were distinct (i.e. a merge happened).
  bool unite(std::size_t a, std::size_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  [[nodiscard]] bool connected(std::size_t a, std::size_t b) noexcept {
    return find(a) == find(b);
  }

  [[nodiscard]] std::size_t component_size(std::size_t x) noexcept { return size_[find(x)]; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

template <Weight W>
struct KruskalResult {
  std::vector<graph::Edge<W>> tree_edges;
  W total_weight = W{0};
};

/// MST (or minimum spanning forest) of an undirected graph given as a
/// symmetric edge list; arcs (u,v) and (v,u) are deduplicated by
/// keeping u < v.
template <Weight W>
KruskalResult<W> kruskal(const graph::EdgeListGraph<W>& g) {
  std::vector<graph::Edge<W>> edges;
  edges.reserve(g.edges().size() / 2 + 1);
  for (const auto& e : g.edges()) {
    if (e.from < e.to) edges.push_back(e);
  }
  std::sort(edges.begin(), edges.end(), [](const graph::Edge<W>& a, const graph::Edge<W>& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  });

  KruskalResult<W> r;
  UnionFind uf(static_cast<std::size_t>(g.num_vertices()));
  for (const auto& e : edges) {
    if (uf.unite(static_cast<std::size_t>(e.from), static_cast<std::size_t>(e.to))) {
      r.tree_edges.push_back(e);
      r.total_weight = sat_add(r.total_weight, e.weight);
    }
  }
  return r;
}

}  // namespace cachegraph::mst
