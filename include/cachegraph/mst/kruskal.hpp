// Kruskal's algorithm + union-find.
//
// Included as the independent MST oracle for testing Prim (two
// completely different algorithms must produce equal total weight on
// every input), and as a baseline in the MST benches.
#pragma once

#include <algorithm>
#include <vector>

#include "cachegraph/common/types.hpp"
#include "cachegraph/common/union_find.hpp"
#include "cachegraph/graph/edge_list.hpp"

namespace cachegraph::mst {

/// Lives in common/union_find.hpp since the query subsystem's
/// component tracking shares it; the old name keeps working.
using cachegraph::UnionFind;

template <Weight W>
struct KruskalResult {
  std::vector<graph::Edge<W>> tree_edges;
  W total_weight = W{0};
};

/// MST (or minimum spanning forest) of an undirected graph given as a
/// symmetric edge list; arcs (u,v) and (v,u) are deduplicated by
/// keeping u < v.
template <Weight W>
KruskalResult<W> kruskal(const graph::EdgeListGraph<W>& g) {
  std::vector<graph::Edge<W>> edges;
  edges.reserve(g.edges().size() / 2 + 1);
  for (const auto& e : g.edges()) {
    if (e.from < e.to) edges.push_back(e);
  }
  std::sort(edges.begin(), edges.end(), [](const graph::Edge<W>& a, const graph::Edge<W>& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  });

  KruskalResult<W> r;
  UnionFind uf(static_cast<std::size_t>(g.num_vertices()));
  for (const auto& e : edges) {
    if (uf.unite(static_cast<std::size_t>(e.from), static_cast<std::size_t>(e.to))) {
      r.tree_edges.push_back(e);
      r.total_weight = sat_add(r.total_weight, e.weight);
    }
  }
  return r;
}

}  // namespace cachegraph::mst
