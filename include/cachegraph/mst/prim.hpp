// Prim's algorithm for Minimum Spanning Tree (paper Section 3.2).
//
// Identical access pattern to Dijkstra — N Extract-Mins, E Updates —
// differing only in the Update rule: a vertex's key is the weight of
// the lightest edge connecting it to the tree (not the distance from
// the root). Consequently the same representation optimization applies,
// and bench_fig15/16 + bench_table7 mirror the Dijkstra exhibits.
//
// The input must be symmetric (every arc present in both directions);
// on a disconnected graph the result spans only the root's component.
#pragma once

#include <vector>

#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/pq/binary_heap.hpp"
#include "cachegraph/pq/concepts.hpp"

namespace cachegraph::mst {

template <Weight W>
struct MstResult {
  std::vector<vertex_t> parent;  ///< parent[v] in the MST, kNoVertex for root/unreached
  std::vector<W> key;            ///< key[v] = weight of edge (parent[v], v)
  W total_weight = W{0};
  vertex_t tree_vertices = 0;    ///< vertices actually spanned
  std::uint64_t extract_mins = 0;
  std::uint64_t updates = 0;
};

template <template <class, class> class HeapT = pq::BinaryHeap, graph::GraphRep G,
          memsim::MemPolicy Mem = memsim::NullMem>
MstResult<typename G::weight_type> prim(const G& g, vertex_t root = 0, Mem mem = Mem{}) {
  using W = typename G::weight_type;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  CG_CHECK(root >= 0 && static_cast<std::size_t>(root) < n, "root out of range");

  MstResult<W> r;
  r.key.assign(n, inf<W>());
  r.parent.assign(n, kNoVertex);
  std::vector<char> in_tree(n, 0);
  if constexpr (Mem::tracing) {
    g.map_buffers(mem);
    mem.map_buffer(r.key.data(), n * sizeof(W));
    mem.map_buffer(r.parent.data(), n * sizeof(vertex_t));
    mem.map_buffer(in_tree.data(), n);
  }

  using Heap = HeapT<W, Mem>;
  static_assert(pq::IndexedHeap<Heap>);
  Heap q(static_cast<vertex_t>(n), mem);
  r.key[static_cast<std::size_t>(root)] = W{0};
  for (std::size_t v = 0; v < n; ++v) {
    q.insert(static_cast<vertex_t>(v), r.key[v]);
  }

  while (!q.empty()) {
    const auto top = q.extract_min();
    if (is_inf(top.key)) break;  // remaining vertices are in other components
    ++r.extract_mins;
    const vertex_t u = top.vertex;
    const auto uu = static_cast<std::size_t>(u);
    in_tree[uu] = 1;
    mem.write(&in_tree[uu]);
    r.total_weight = sat_add(r.total_weight, top.key);
    ++r.tree_vertices;

    g.for_neighbors(u, mem, [&](const graph::Neighbor<W>& nb) {
      const auto tv = static_cast<std::size_t>(nb.to);
      mem.read(&in_tree[tv]);
      if (in_tree[tv]) return;
      mem.read(&r.key[tv]);
      if (nb.weight < r.key[tv]) {  // Prim's Update: edge weight, not path length
        r.key[tv] = nb.weight;
        mem.write(&r.key[tv]);
        r.parent[tv] = u;
        mem.write(&r.parent[tv]);
        q.decrease_key(nb.to, nb.weight);
        ++r.updates;
        CG_COUNTER_INC("prim.relaxations");
      }
    });
  }
  return r;
}

}  // namespace cachegraph::mst
