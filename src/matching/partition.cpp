#include "cachegraph/matching/partition.hpp"

#include <algorithm>

namespace cachegraph::matching {

namespace {

/// part of index i when n items are divided into `parts` near-equal
/// ranges.
std::uint8_t range_part(vertex_t i, vertex_t n, std::uint8_t parts) {
  if (n == 0) return 0;
  const auto p = static_cast<std::uint64_t>(i) * parts / static_cast<std::uint64_t>(n);
  return static_cast<std::uint8_t>(std::min<std::uint64_t>(p, parts - 1u));
}

}  // namespace

Partition chunk_partition(const graph::BipartiteGraph& g, std::uint8_t parts) {
  CG_CHECK(parts >= 1);
  Partition p;
  p.parts = parts;
  p.left_part.resize(static_cast<std::size_t>(g.left));
  p.right_part.resize(static_cast<std::size_t>(g.right));
  for (vertex_t l = 0; l < g.left; ++l) {
    p.left_part[static_cast<std::size_t>(l)] = range_part(l, g.left, parts);
  }
  for (vertex_t r = 0; r < g.right; ++r) {
    p.right_part[static_cast<std::size_t>(r)] = range_part(r, g.right, parts);
  }
  return p;
}

Partition two_way_partition(const graph::BipartiteGraph& g) {
  // Step 1: arbitrarily partition the vertices into 4 equal parts
  // (index ranges — "arbitrary" in the paper's sense of not looking at
  // the edges).
  const Partition quarters = chunk_partition(g, 4);

  // Step 2: count the edges between each (left-part, right-part) pair.
  std::array<std::array<index_t, 4>, 4> e{};
  for (const auto& [l, r] : g.edges) {
    ++e[quarters.left_part[static_cast<std::size_t>(l)]]
       [quarters.right_part[static_cast<std::size_t>(r)]];
  }

  // Step 3: combine the 4 parts into 2 groups; try the three pairings
  // and keep the one creating the most internal edges.
  constexpr std::array<std::array<std::uint8_t, 4>, 3> kPairings = {{
      {0, 0, 1, 1},  // {0,1} vs {2,3}
      {0, 1, 0, 1},  // {0,2} vs {1,3}
      {0, 1, 1, 0},  // {0,3} vs {1,2}
  }};

  index_t best_internal = -1;
  std::array<std::uint8_t, 4> best = kPairings[0];
  for (const auto& grouping : kPairings) {
    index_t internal = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        if (grouping[i] == grouping[j]) internal += e[i][j];
      }
    }
    if (internal > best_internal) {
      best_internal = internal;
      best = grouping;
    }
  }

  Partition p;
  p.parts = 2;
  p.left_part.resize(static_cast<std::size_t>(g.left));
  p.right_part.resize(static_cast<std::size_t>(g.right));
  for (vertex_t l = 0; l < g.left; ++l) {
    p.left_part[static_cast<std::size_t>(l)] =
        best[quarters.left_part[static_cast<std::size_t>(l)]];
  }
  for (vertex_t r = 0; r < g.right; ++r) {
    p.right_part[static_cast<std::size_t>(r)] =
        best[quarters.right_part[static_cast<std::size_t>(r)]];
  }
  return p;
}

Partition recursive_partition(const graph::BipartiteGraph& g, int levels) {
  CG_CHECK(levels >= 0 && levels <= 7, "at most 128 parts (uint8 part ids)");
  Partition p;
  p.parts = 1;
  p.left_part.assign(static_cast<std::size_t>(g.left), 0);
  p.right_part.assign(static_cast<std::size_t>(g.right), 0);

  for (int level = 0; level < levels; ++level) {
    const std::uint8_t groups = p.parts;
    // Split each current group independently with the 2-way partitioner
    // on its induced subgraph.
    for (std::uint8_t grp = 0; grp < groups; ++grp) {
      // Collect the group's vertices and build local index maps.
      std::vector<vertex_t> lmap, rmap;
      std::vector<vertex_t> llocal(static_cast<std::size_t>(g.left), kNoVertex);
      std::vector<vertex_t> rlocal(static_cast<std::size_t>(g.right), kNoVertex);
      for (vertex_t l = 0; l < g.left; ++l) {
        if (p.left_part[static_cast<std::size_t>(l)] == grp) {
          llocal[static_cast<std::size_t>(l)] = static_cast<vertex_t>(lmap.size());
          lmap.push_back(l);
        }
      }
      for (vertex_t r = 0; r < g.right; ++r) {
        if (p.right_part[static_cast<std::size_t>(r)] == grp) {
          rlocal[static_cast<std::size_t>(r)] = static_cast<vertex_t>(rmap.size());
          rmap.push_back(r);
        }
      }
      graph::BipartiteGraph sub;
      sub.left = static_cast<vertex_t>(lmap.size());
      sub.right = static_cast<vertex_t>(rmap.size());
      for (const auto& [l, r] : g.edges) {
        if (p.left_part[static_cast<std::size_t>(l)] == grp &&
            p.right_part[static_cast<std::size_t>(r)] == grp) {
          sub.edges.emplace_back(llocal[static_cast<std::size_t>(l)],
                                 rlocal[static_cast<std::size_t>(r)]);
        }
      }
      const Partition half = two_way_partition(sub);
      // New id: children of group g are (g) and (g + groups).
      for (std::size_t i = 0; i < lmap.size(); ++i) {
        if (half.left_part[i] == 1) {
          p.left_part[static_cast<std::size_t>(lmap[i])] =
              static_cast<std::uint8_t>(grp + groups);
        }
      }
      for (std::size_t i = 0; i < rmap.size(); ++i) {
        if (half.right_part[i] == 1) {
          p.right_part[static_cast<std::size_t>(rmap[i])] =
              static_cast<std::uint8_t>(grp + groups);
        }
      }
    }
    p.parts = static_cast<std::uint8_t>(p.parts * 2);
  }
  return p;
}

}  // namespace cachegraph::matching
