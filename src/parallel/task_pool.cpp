#include "cachegraph/parallel/task_pool.hpp"

#include <chrono>
#include <utility>

#include "cachegraph/obs/counters.hpp"
#include "cachegraph/obs/trace.hpp"
#include "cachegraph/reliability/fault_injector.hpp"

namespace cachegraph::parallel {

namespace {
// Which pool slot the current thread owns: workers set their id on
// startup; external threads (the pool's caller) share slot 0.
thread_local const TaskPool* tls_pool = nullptr;
thread_local std::size_t tls_slot = 0;
}  // namespace

TaskPool::TaskPool(int num_threads) {
  std::size_t n = num_threads > 0 ? static_cast<std::size_t>(num_threads)
                                  : std::max(1u, std::thread::hardware_concurrency());
  slots_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) slots_.push_back(std::make_unique<Slot>());
  workers_.reserve(n - 1);
  for (std::size_t id = 1; id < n; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

TaskPool::~TaskPool() {
  stop_.store(true, std::memory_order_release);
  idle_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t TaskPool::my_slot() const noexcept {
  return tls_pool == this ? tls_slot : 0;
}

void TaskPool::submit(Task t) {
  const std::size_t slot = my_slot();
  {
    const std::lock_guard<std::mutex> lock(slots_[slot]->mu);
    slots_[slot]->q.push_back(std::move(t));
  }
  queued_.fetch_add(1, std::memory_order_release);
  idle_cv_.notify_one();
}

bool TaskPool::run_one() {
  const std::size_t self = my_slot();
  Task t;
  {
    // Own deque first, newest task (LIFO = depth-first, cache-warm).
    const std::lock_guard<std::mutex> lock(slots_[self]->mu);
    if (!slots_[self]->q.empty()) {
      t = std::move(slots_[self]->q.back());
      slots_[self]->q.pop_back();
    }
  }
  if (!t) {
    // Steal the oldest task (FIFO = the largest pending subtree) from
    // the first non-empty victim after us.
    for (std::size_t k = 1; k < slots_.size() && !t; ++k) {
      Slot& victim = *slots_[(self + k) % slots_.size()];
      const std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.q.empty()) {
        t = std::move(victim.q.front());
        victim.q.pop_front();
      }
    }
    if (t) steals_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!t) return false;
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  t();
  return true;
}

void TaskPool::worker_loop(std::size_t id) {
  tls_pool = this;
  tls_slot = id;
  obs::set_current_thread_name("pool.worker-" + std::to_string(id));
  while (!stop_.load(std::memory_order_acquire)) {
    if (!run_one()) {
      std::unique_lock<std::mutex> lock(idle_mu_);
      idle_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
        return stop_.load(std::memory_order_acquire) ||
               queued_.load(std::memory_order_acquire) > 0;
      });
    }
  }
  tls_pool = nullptr;
}

TaskPool::Stats TaskPool::stats() const noexcept {
  return Stats{tasks_spawned_.load(std::memory_order_relaxed),
               steals_.load(std::memory_order_relaxed),
               barrier_waits_.load(std::memory_order_relaxed),
               exceptions_.load(std::memory_order_relaxed)};
}

void TaskPool::flush_counters() {
  // Deltas computed outside the macros: CG_COUNTER_ADD does not
  // evaluate its arguments when CACHEGRAPH_INSTRUMENT is off, so side
  // effects in the argument expressions would make pool behaviour
  // depend on the build config.
  const Stats now = stats();
  CG_COUNTER_ADD("parallel.tasks_spawned", now.tasks_spawned - flushed_.tasks_spawned);
  CG_COUNTER_ADD("parallel.steals", now.steals - flushed_.steals);
  CG_COUNTER_ADD("parallel.barrier_waits", now.barrier_waits - flushed_.barrier_waits);
  CG_COUNTER_ADD("parallel.exceptions", now.exceptions - flushed_.exceptions);
  flushed_ = now;
}

TaskGroup::~TaskGroup() {
  drain();
  if (first_exception_ != nullptr) {
    // The group died without anyone calling wait(): the exception has
    // no observer and destructors must not throw. Count, drop.
    CG_COUNTER_INC("parallel.exceptions_dropped");
  }
}

void TaskGroup::run(TaskPool::Task t) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  pool_.tasks_spawned_.fetch_add(1, std::memory_order_relaxed);
  pool_.submit([this, task = std::move(t)] {
    {
      CG_TRACE_SPAN("parallel.task");
      CG_FAULT_LATENCY();  // chaos: a stalled worker, not a lost task
      try {
        task();
      } catch (...) {
        // First exception per group wins the rethrow in wait(); the
        // rest are tallied and dropped. The catch is what guarantees
        // the completion decrement below always runs — an escaping
        // exception would otherwise leave pending_ stuck forever
        // (wedged wait()) or unwind into the worker loop (terminate).
        pool_.exceptions_.fetch_add(1, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(exception_mu_);
        if (first_exception_ == nullptr) first_exception_ = std::current_exception();
      }
    }
    // Release: the waiter's acquire load of 0 must see the task's writes.
    pending_.fetch_sub(1, std::memory_order_release);
  });
}

void TaskGroup::drain() noexcept {
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (!pool_.run_one()) {
      // Nothing runnable — our tasks are in flight on other workers.
      pool_.barrier_waits_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  }
}

void TaskGroup::wait() {
  drain();
  std::exception_ptr rethrow;
  {
    // No task of this group is running (pending_ hit 0), but lock
    // anyway: wait() may race a *later* run() only through API misuse,
    // and the lock keeps the exchange well-defined regardless.
    const std::lock_guard<std::mutex> lock(exception_mu_);
    rethrow = std::exchange(first_exception_, nullptr);
  }
  if (rethrow != nullptr) std::rethrow_exception(rethrow);
}

}  // namespace cachegraph::parallel
