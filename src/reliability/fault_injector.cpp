#include "cachegraph/reliability/fault_injector.hpp"

#include "cachegraph/common/rng.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::reliability {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const FaultPlan& plan) {
  plan_ = plan;
  for (auto& t : tickets_) t.store(0, std::memory_order_relaxed);
  for (auto& f : fires_) f.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::disarm() { armed_.store(false, std::memory_order_release); }

bool FaultInjector::should_fire(FaultSite site) noexcept {
  if (!armed_.load(std::memory_order_acquire)) return false;
  const auto s = static_cast<std::size_t>(site);
  const double p = plan_.probability(site);
  const std::uint64_t ticket = tickets_[s].fetch_add(1, std::memory_order_relaxed);
  if (p <= 0.0) return false;
  // Decision = pure function of (seed, site, ticket): expand through
  // splitmix64 and take the top 53 bits as a uniform double.
  SplitMix64 mix(plan_.seed ^ (static_cast<std::uint64_t>(s + 1) << 56) ^ ticket);
  const double u = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  if (u >= p) return false;
  fires_[s].fetch_add(1, std::memory_order_relaxed);
  CG_COUNTER_INC("reliability.faults.injected");
  return true;
}

void FaultInjector::maybe_latency() noexcept {
  if (!should_fire(FaultSite::kWorkerLatency)) return;
  // A dependency-chained spin the optimizer cannot elide: simulates a
  // stalled worker without touching the scheduler.
  volatile std::uint64_t sink = 0;
  for (std::uint32_t i = 0; i < plan_.latency_spins; ++i) sink = sink + i;
}

FaultInjector::SiteStats FaultInjector::stats(FaultSite site) const noexcept {
  const auto s = static_cast<std::size_t>(site);
  return SiteStats{tickets_[s].load(std::memory_order_relaxed),
                   fires_[s].load(std::memory_order_relaxed)};
}

std::uint64_t FaultInjector::total_fires() const noexcept {
  std::uint64_t total = 0;
  for (const auto& f : fires_) total += f.load(std::memory_order_relaxed);
  return total;
}

}  // namespace cachegraph::reliability
