#include "cachegraph/memsim/machine_configs.hpp"

#include <vector>

namespace cachegraph::memsim {

namespace {
constexpr std::size_t KiB = 1024;
constexpr std::size_t MiB = 1024 * KiB;

CacheConfig cache(std::size_t size, std::size_t line, std::size_t assoc) {
  CacheConfig c;
  c.size_bytes = size;
  c.line_bytes = line;
  c.associativity = assoc;
  return c;
}
}  // namespace

MachineConfig pentium3() {
  MachineConfig m;
  m.name = "PentiumIII";
  m.l1 = cache(32 * KiB, 32, 4);
  m.l2 = cache(1 * MiB, 32, 8);
  m.tlb_entries = 64;
  return m;
}

MachineConfig ultrasparc3() {
  MachineConfig m;
  m.name = "UltraSPARC-III";
  m.l1 = cache(64 * KiB, 32, 4);
  m.l2 = cache(8 * MiB, 64, 1);
  m.tlb_entries = 128;
  return m;
}

MachineConfig alpha21264() {
  MachineConfig m;
  m.name = "Alpha21264";
  m.l1 = cache(64 * KiB, 64, 2);
  m.l2 = cache(4 * MiB, 64, 1);
  m.victim_entries = 8;
  m.tlb_entries = 128;
  return m;
}

MachineConfig mips_r12000() {
  MachineConfig m;
  m.name = "MIPS-R12000";
  m.l1 = cache(32 * KiB, 32, 2);
  m.l2 = cache(8 * MiB, 64, 1);
  m.tlb_entries = 64;
  return m;
}

MachineConfig simplescalar_default() {
  MachineConfig m;
  m.name = "SimpleScalar";
  m.l1 = cache(16 * KiB, 32, 4);
  m.l2 = cache(256 * KiB, 64, 8);
  m.tlb_entries = 64;
  return m;
}

MachineConfig modern_host() {
  MachineConfig m;
  m.name = "ModernHost";
  m.l1 = cache(32 * KiB, 64, 8);
  m.l2 = cache(1 * MiB, 64, 16);
  m.l3 = cache(32 * MiB, 64, 16);
  m.tlb_entries = 1536;
  return m;
}

const std::vector<MachineConfig>& all_machines() {
  static const std::vector<MachineConfig> machines = {pentium3(), ultrasparc3(), alpha21264(),
                                                      mips_r12000(), simplescalar_default(),
                                                      modern_host()};
  return machines;
}

}  // namespace cachegraph::memsim
