#include "cachegraph/memsim/cache_level.hpp"

#include <algorithm>

namespace cachegraph::memsim {

CacheLevel::CacheLevel(const CacheConfig& config) : config_(config) {
  config_.validate();
  ways_ = config_.ways();
  const std::size_t sets = config_.num_sets();
  set_mask_ = sets - 1;
  lines_.assign(sets * ways_, Line{});
}

CacheLevel::Line* CacheLevel::find(std::uint64_t line_addr) noexcept {
  Line* set = &lines_[set_index(line_addr) * ways_];
  for (std::size_t w = 0; w < ways_; ++w) {
    if (set[w].valid && set[w].tag == line_addr) return &set[w];
  }
  return nullptr;
}

const CacheLevel::Line* CacheLevel::find(std::uint64_t line_addr) const noexcept {
  return const_cast<CacheLevel*>(this)->find(line_addr);
}

bool CacheLevel::access(std::uint64_t line_addr, bool write) {
  ++stats_.accesses;
  if (Line* line = find(line_addr)) {
    line->lru = ++tick_;
    if (write) {
      if (config_.write_back) {
        line->dirty = true;
      }
      // Write-through caches forward the write; the hierarchy accounts
      // for that traffic, the line itself stays clean.
    }
    return true;
  }
  ++stats_.misses;
  return false;
}

Eviction CacheLevel::install(std::uint64_t line_addr, bool dirty) {
  Line* set = &lines_[set_index(line_addr) * ways_];
  // Prefer an invalid way; otherwise evict true-LRU.
  Line* slot = nullptr;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (!set[w].valid) {
      slot = &set[w];
      break;
    }
  }
  if (slot == nullptr) {
    slot = set;
    for (std::size_t w = 1; w < ways_; ++w) {
      if (set[w].lru < slot->lru) slot = &set[w];
    }
  }

  Eviction out;
  if (slot->valid) {
    out.valid = true;
    out.line_addr = slot->tag;
    out.dirty = slot->dirty;
    if (out.dirty) ++stats_.writebacks;
  }
  slot->valid = true;
  slot->tag = line_addr;
  slot->dirty = dirty;
  slot->lru = ++tick_;
  return out;
}

bool CacheLevel::contains(std::uint64_t line_addr) const { return find(line_addr) != nullptr; }

bool CacheLevel::mark_dirty(std::uint64_t line_addr) {
  if (Line* line = find(line_addr)) {
    line->dirty = true;
    line->lru = ++tick_;
    return true;
  }
  return false;
}

void CacheLevel::invalidate(std::uint64_t line_addr) {
  if (Line* line = find(line_addr)) {
    line->valid = false;
    line->dirty = false;
  }
}

void CacheLevel::flush() {
  std::fill(lines_.begin(), lines_.end(), Line{});
  tick_ = 0;
}

bool VictimCache::extract(std::uint64_t line_addr, bool* dirty_out) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].line_addr == line_addr) {
      *dirty_out = slots_[i].dirty;
      slots_[i] = slots_.back();
      slots_.pop_back();
      return true;
    }
  }
  return false;
}

Eviction VictimCache::insert(std::uint64_t line_addr, bool dirty) {
  Eviction out;
  if (entries_ == 0) {
    // Degenerate victim buffer: everything falls straight through.
    out.valid = true;
    out.line_addr = line_addr;
    out.dirty = dirty;
    return out;
  }
  if (slots_.size() == entries_) {
    auto lru = slots_.begin();
    for (auto it = slots_.begin() + 1; it != slots_.end(); ++it) {
      if (it->lru < lru->lru) lru = it;
    }
    out.valid = true;
    out.line_addr = lru->line_addr;
    out.dirty = lru->dirty;
    slots_.erase(lru);
  }
  slots_.push_back(Slot{line_addr, ++tick_, dirty});
  return out;
}

}  // namespace cachegraph::memsim
