#include "cachegraph/memsim/hierarchy.hpp"

namespace cachegraph::memsim {

std::size_t Tlb::log2_exact(std::size_t v) {
  CG_CHECK(v != 0 && (v & (v - 1)) == 0, "page size must be a power of two");
  std::size_t s = 0;
  while ((std::size_t{1} << s) != v) ++s;
  return s;
}

void Tlb::access(std::uint64_t byte_addr) {
  if (entries_ == 0) return;
  const std::uint64_t page = byte_addr >> page_shift_;
  ++stats_.accesses;
  for (auto& slot : slots_) {
    if (slot.page == page) {
      slot.lru = ++tick_;
      return;
    }
  }
  ++stats_.misses;
  if (slots_.size() == entries_) {
    auto lru = slots_.begin();
    for (auto it = slots_.begin() + 1; it != slots_.end(); ++it) {
      if (it->lru < lru->lru) lru = it;
    }
    *lru = Slot{page, ++tick_};
  } else {
    slots_.push_back(Slot{page, ++tick_});
  }
}

CacheHierarchy::CacheHierarchy(const MachineConfig& machine)
    : machine_(machine),
      l1_(machine.l1),
      l2_(machine.l2),
      tlb_(machine.tlb_entries, machine.page_bytes) {
  CG_CHECK(machine.l2.line_bytes >= machine.l1.line_bytes,
           "L2 lines must be at least as large as L1 lines");
  CG_CHECK(machine.l2.line_bytes % machine.l1.line_bytes == 0);
  l1_line_bytes_ = machine.l1.line_bytes;
  l2_line_ratio_ = machine.l2.line_bytes / machine.l1.line_bytes;
  if (machine.has_l3()) {
    CG_CHECK(machine.l3.line_bytes >= machine.l2.line_bytes,
             "L3 lines must be at least as large as L2 lines");
    CG_CHECK(machine.l3.line_bytes % machine.l2.line_bytes == 0);
    l3_ = std::make_unique<CacheLevel>(machine.l3);
    l3_line_ratio_ = machine.l3.line_bytes / machine.l2.line_bytes;
  }
  if (machine.victim_entries > 0) {
    victim_ = std::make_unique<VictimCache>(machine.victim_entries);
  }
}

void CacheHierarchy::access(std::uint64_t byte_addr, std::size_t bytes, bool write) {
  tlb_.access(byte_addr);
  if (bytes > 0) {
    const std::uint64_t last = byte_addr + bytes - 1;
    // Touch the TLB again only if the access crosses a page; rare.
    if ((last >> tlb_.page_shift()) != (byte_addr >> tlb_.page_shift())) tlb_.access(last);
    const std::uint64_t first_line = byte_addr / l1_line_bytes_;
    const std::uint64_t last_line = last / l1_line_bytes_;
    for (std::uint64_t line = first_line; line <= last_line; ++line) {
      access_line(line, write);
    }
  }
}

void CacheHierarchy::access_line(std::uint64_t l1_line, bool write) {
  if (l1_.access(l1_line, write)) return;  // L1 hit

  // L1 miss. Check the victim buffer first (Alpha 21264 behaviour).
  if (victim_) {
    bool victim_dirty = false;
    if (victim_->extract(l1_line, &victim_dirty)) {
      ++victim_hits_;
      const Eviction ev = l1_.install(l1_line, victim_dirty || (write && machine_.l1.write_back));
      if (ev.valid) {
        const Eviction spilled = victim_->insert(ev.line_addr, ev.dirty);
        if (spilled.valid && spilled.dirty) writeback_to_l2(spilled.line_addr);
      }
      return;
    }
  }

  // Go to L2 (L2 lines may span several L1 lines).
  const std::uint64_t l2_line = l1_line / l2_line_ratio_;
  if (!l2_.access(l2_line, write)) {
    fetch_into_l2(l1_line, write);
  }

  // Fill L1 (write-allocate; a write miss installs the line dirty under
  // write-back policy).
  const bool install_dirty = write && machine_.l1.write_back;
  const Eviction ev1 = l1_.install(l1_line, install_dirty);
  if (ev1.valid) {
    if (victim_) {
      const Eviction spilled = victim_->insert(ev1.line_addr, ev1.dirty);
      if (spilled.valid && spilled.dirty) writeback_to_l2(spilled.line_addr);
    } else if (ev1.dirty) {
      writeback_to_l2(ev1.line_addr);
    }
  }
}

void CacheHierarchy::fetch_into_l2(std::uint64_t l1_line, bool write) {
  const std::uint64_t l2_line = l1_line / l2_line_ratio_;
  if (l3_) {
    const std::uint64_t l3_line = l2_line / l3_line_ratio_;
    if (!l3_->access(l3_line, write)) {
      ++mem_reads_;
      const Eviction ev3 = l3_->install(l3_line, /*dirty=*/false);
      if (ev3.valid && ev3.dirty) ++mem_writebacks_;
    }
  } else {
    ++mem_reads_;
  }
  const Eviction ev2 = l2_.install(l2_line, /*dirty=*/false);
  if (ev2.valid && ev2.dirty) writeback_from_l2(ev2.line_addr);
}

void CacheHierarchy::writeback_to_l2(std::uint64_t l1_line) {
  const std::uint64_t l2_line = l1_line / l2_line_ratio_;
  if (l2_.mark_dirty(l2_line)) return;
  // Non-inclusive hierarchy: the line may have left L2. Allocate it on
  // writeback; displacing a dirty L2 line spills downward.
  const Eviction ev = l2_.install(l2_line, /*dirty=*/true);
  if (ev.valid && ev.dirty) writeback_from_l2(ev.line_addr);
}

void CacheHierarchy::writeback_from_l2(std::uint64_t l2_line) {
  if (!l3_) {
    ++mem_writebacks_;
    return;
  }
  const std::uint64_t l3_line = l2_line / l3_line_ratio_;
  if (l3_->mark_dirty(l3_line)) return;
  const Eviction ev = l3_->install(l3_line, /*dirty=*/true);
  if (ev.valid && ev.dirty) ++mem_writebacks_;
}

SimStats CacheHierarchy::stats() const {
  SimStats out;
  out.l1 = l1_.stats();
  out.l2 = l2_.stats();
  if (l3_) out.l3 = l3_->stats();
  out.tlb = tlb_.stats();
  out.victim_hits = victim_hits_;
  out.mem_reads = mem_reads_;
  out.mem_writebacks = mem_writebacks_;
  return out;
}

void CacheHierarchy::reset_stats() {
  l1_.reset_stats();
  l2_.reset_stats();
  if (l3_) l3_->reset_stats();
  tlb_.reset_stats();
  victim_hits_ = 0;
  mem_reads_ = 0;
  mem_writebacks_ = 0;
}

void CacheHierarchy::flush() {
  l1_.flush();
  l2_.flush();
  if (l3_) l3_->flush();
  tlb_.flush();
  if (victim_) victim_->flush();
}

}  // namespace cachegraph::memsim
