#include "cachegraph/memsim/block_io.hpp"

#include <sstream>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/json.hpp"

namespace cachegraph::memsim {

std::string BlockIoSim::Stats::to_json() const {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.key("accesses").value(accesses);
  w.key("faults").value(faults);
  w.key("evictions").value(evictions);
  w.key("hit_rate").value(hit_rate());
  w.end_object();
  return os.str();
}

BlockIoSim::BlockIoSim(Config cfg) : frames_(cfg.frames) {
  CG_CHECK(cfg.frames >= 1, "BlockIoSim needs at least one frame");
  const std::size_t shards = resolve_block_shards(cfg.frames, cfg.shards);
  shards_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_[s].capacity = block_shard_frames(cfg.frames, shards, s);
  }
}

void BlockIoSim::access(std::uint32_t block_id) {
  Shard& sh = shards_[block_shard_of(block_id, shards_.size())];
  ++stats_.accesses;
  const auto it = sh.where.find(block_id);
  if (it != sh.where.end()) {
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);  // re-anchor as MRU
    return;
  }
  ++stats_.faults;
  if (sh.lru.size() >= sh.capacity) {
    ++stats_.evictions;
    sh.where.erase(sh.lru.back());
    sh.lru.pop_back();
  }
  sh.lru.push_front(block_id);
  sh.where.emplace(block_id, sh.lru.begin());
}

void BlockIoSim::reset() {
  for (Shard& sh : shards_) {
    sh.lru.clear();
    sh.where.clear();
  }
  stats_ = Stats{};
}

}  // namespace cachegraph::memsim
