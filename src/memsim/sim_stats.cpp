#include <sstream>

#include "cachegraph/common/json.hpp"
#include "cachegraph/memsim/config.hpp"

namespace cachegraph::memsim {

namespace {

void write_level(json::Writer& w, const char* name, const LevelStats& s) {
  w.key(name).begin_object();
  w.key("accesses").value(s.accesses);
  w.key("misses").value(s.misses);
  w.key("writebacks").value(s.writebacks);
  w.key("miss_rate").value(s.miss_rate());
  w.end_object();
}

}  // namespace

std::string SimStats::to_json() const {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  write_level(w, "l1", l1);
  write_level(w, "l2", l2);
  write_level(w, "l3", l3);
  write_level(w, "tlb", tlb);
  w.key("victim_hits").value(victim_hits);
  w.key("mem_reads").value(mem_reads);
  w.key("mem_writebacks").value(mem_writebacks);
  w.key("memory_traffic_lines").value(memory_traffic_lines());
  w.end_object();
  return os.str();
}

}  // namespace cachegraph::memsim
