#include "cachegraph/store/block_cache.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "cachegraph/common/check.hpp"
#include "cachegraph/common/checksum.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/obs/metrics.hpp"

namespace cachegraph::store {
namespace {

/// Reads + verifies one block into `dst`. All failures are DATA_LOSS
/// naming the block id — the caller reports them verbatim.
[[nodiscard]] reliability::Status fill_frame(BlockSource& source, std::uint32_t block_id,
                                             std::byte* dst, std::uint32_t block_bytes) {
  if (reliability::Status st = source.read_block(block_id, {dst, block_bytes}); !st.is_ok()) {
    return st;
  }
  BlockHeader hdr;  // NOLINT(cppcoreguidelines-pro-type-member-init) — memcpy fills it
  std::memcpy(&hdr, dst, sizeof(hdr));
  const std::uint64_t computed =
      fnv1a64(dst + sizeof(hdr.block_checksum), block_bytes - sizeof(hdr.block_checksum));
  if (computed != hdr.block_checksum) {
    return reliability::data_loss("block " + std::to_string(block_id) +
                                  " failed checksum verification (stored " +
                                  std::to_string(hdr.block_checksum) + ", computed " +
                                  std::to_string(computed) + ")");
  }
  if (hdr.block_id != block_id) {
    return reliability::data_loss("block " + std::to_string(block_id) +
                                  ": header identifies block " + std::to_string(hdr.block_id));
  }
  return {};
}

}  // namespace

BlockCache::BlockCache(BlockSource& source, std::uint32_t block_bytes, std::uint32_t num_blocks,
                       Config cfg)
    : source_(source), block_bytes_(block_bytes), num_blocks_(num_blocks) {
  CG_CHECK(block_bytes >= kMinBlockBytes, "block_bytes below minimum");
  capacity_ = std::max<std::size_t>(1, cfg.capacity_blocks);
  if (num_blocks > 0) capacity_ = std::min<std::size_t>(capacity_, num_blocks);
  const std::size_t shards = memsim::resolve_block_shards(capacity_, cfg.shards);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto sh = std::make_unique<Shard>();
    const std::size_t frames = memsim::block_shard_frames(capacity_, shards, s);
    sh->frames.resize(frames);
    sh->free_frames.reserve(frames);
    for (std::size_t i = 0; i < frames; ++i) {
      sh->frames[i].data = std::make_unique<std::byte[]>(block_bytes);
      sh->free_frames.push_back(static_cast<std::uint32_t>(i));
    }
    shards_.push_back(std::move(sh));
  }
}

void BlockCache::lru_remove(Shard& sh, std::uint32_t idx) noexcept {
  Frame& f = sh.frames[idx];
  if (f.lru_prev != kNone) {
    sh.frames[f.lru_prev].lru_next = f.lru_next;
  } else {
    sh.lru_head = f.lru_next;
  }
  if (f.lru_next != kNone) {
    sh.frames[f.lru_next].lru_prev = f.lru_prev;
  } else {
    sh.lru_tail = f.lru_prev;
  }
  f.lru_prev = f.lru_next = kNone;
}

void BlockCache::lru_push_tail(Shard& sh, std::uint32_t idx) noexcept {
  Frame& f = sh.frames[idx];
  f.lru_prev = sh.lru_tail;
  f.lru_next = kNone;
  if (sh.lru_tail != kNone) {
    sh.frames[sh.lru_tail].lru_next = idx;
  } else {
    sh.lru_head = idx;
  }
  sh.lru_tail = idx;
}

std::uint32_t BlockCache::lru_pop_head(Shard& sh) noexcept {
  const std::uint32_t idx = sh.lru_head;
  lru_remove(sh, idx);
  return idx;
}

void BlockCache::note_pin() noexcept {
  const std::uint64_t now = pinned_now_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t high = pinned_high_water_.load(std::memory_order_relaxed);
  while (now > high &&
         !pinned_high_water_.compare_exchange_weak(high, now, std::memory_order_relaxed)) {
  }
  CG_COUNTER_MAX("store.cache.pinned_high_water", now);
}

reliability::Expected<BlockRef> BlockCache::pin(std::uint32_t block_id) {
  CG_CHECK(block_id < num_blocks_, "BlockCache::pin: block id out of range");
  const auto si = static_cast<std::uint32_t>(memsim::block_shard_of(block_id, shards_.size()));
  Shard& sh = *shards_[si];
  std::unique_lock<std::mutex> lock(sh.mu);
  for (;;) {
    const auto it = sh.resident.find(block_id);
    if (it != sh.resident.end()) {
      const std::uint32_t idx = it->second;
      Frame& f = sh.frames[idx];
      if (f.state == Frame::State::kFilling) {
        sh.cv.wait(lock);  // another thread's read is in flight; no duplicate I/O
        continue;
      }
      if (f.pins == 0) lru_remove(sh, idx);
      ++f.pins;
      hits_.fetch_add(1, std::memory_order_relaxed);
      CG_COUNTER_INC("store.cache.hits");
      note_pin();
      return BlockRef(this, si, idx, f.data.get());
    }

    // Miss: claim a frame — free first, then the LRU victim, else wait
    // for an unpin/fill to free one (see the header's deadlock note).
    std::uint32_t idx = kNone;
    if (!sh.free_frames.empty()) {
      idx = sh.free_frames.back();
      sh.free_frames.pop_back();
    } else if (sh.lru_head != kNone) {
      idx = lru_pop_head(sh);
      Frame& victim = sh.frames[idx];
      sh.resident.erase(victim.block_id);
      victim.block_id = kNoBlock;
      victim.state = Frame::State::kEmpty;
      evictions_.fetch_add(1, std::memory_order_relaxed);
      CG_COUNTER_INC("store.cache.evictions");
    } else {
      sh.cv.wait(lock);
      continue;
    }

    Frame& f = sh.frames[idx];
    f.block_id = block_id;
    f.state = Frame::State::kFilling;
    f.pins = 0;
    sh.resident.emplace(block_id, idx);
    misses_.fetch_add(1, std::memory_order_relaxed);
    CG_COUNTER_INC("store.cache.misses");

    lock.unlock();  // I/O and checksum verification never hold the shard lock
    reliability::Status st = fill_frame(source_, block_id, f.data.get(), block_bytes_);
    lock.lock();

    if (st.is_ok()) {
      f.state = Frame::State::kValid;
      f.pins = 1;
      sh.cv.notify_all();
      note_pin();
      return BlockRef(this, si, idx, f.data.get());
    }
    // Abandon the fill: waiters re-dispatch (and will fail the same
    // way themselves), the frame returns to the free pool.
    sh.resident.erase(block_id);
    f.block_id = kNoBlock;
    f.state = Frame::State::kEmpty;
    sh.free_frames.push_back(idx);
    fill_failures_.fetch_add(1, std::memory_order_relaxed);
    CG_COUNTER_INC("store.cache.fill_failures");
    sh.cv.notify_all();
    return st;
  }
}

void BlockCache::unpin(std::uint32_t shard, std::uint32_t frame) noexcept {
  Shard& sh = *shards_[shard];
  const std::lock_guard<std::mutex> lock(sh.mu);
  Frame& f = sh.frames[frame];
  CG_DCHECK(f.pins > 0, "unpin of an unpinned frame");
  if (--f.pins == 0) {
    lru_push_tail(sh, frame);
    sh.cv.notify_all();  // a fault may be waiting for an evictable frame
  }
  pinned_now_.fetch_sub(1, std::memory_order_relaxed);
}

BlockCache::Stats BlockCache::stats() const {
  Stats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  st.fill_failures = fill_failures_.load(std::memory_order_relaxed);
  st.pinned_now = pinned_now_.load(std::memory_order_relaxed);
  st.pinned_high_water = pinned_high_water_.load(std::memory_order_relaxed);
  st.capacity_blocks = capacity_;
  st.shards = shards_.size();
  for (const auto& sh : shards_) {
    const std::lock_guard<std::mutex> lock(sh->mu);
    for (const Frame& f : sh->frames) {
      if (f.state == Frame::State::kValid) ++st.cached_blocks;
    }
  }
  return st;
}

void BlockCache::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  fill_failures_.store(0, std::memory_order_relaxed);
  pinned_high_water_.store(pinned_now_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
}

void BlockCache::publish_gauges() const {
  const Stats st = stats();
  auto& mr = obs::MetricsRegistry::instance();
  static obs::Gauge& g_capacity = mr.gauge("store.cache.capacity_blocks");
  static obs::Gauge& g_cached = mr.gauge("store.cache.cached_blocks");
  static obs::Gauge& g_pinned = mr.gauge("store.cache.pinned");
  static obs::Gauge& g_hit_rate = mr.gauge("store.cache.hit_rate");
  g_capacity.set(static_cast<double>(st.capacity_blocks));
  g_cached.set(static_cast<double>(st.cached_blocks));
  g_pinned.set(static_cast<double>(st.pinned_now));
  g_hit_rate.set(st.hit_rate());
}

}  // namespace cachegraph::store
