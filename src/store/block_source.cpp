#include "cachegraph/store/block_source.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define CACHEGRAPH_HAVE_UNIX_IO 1
#else
#define CACHEGRAPH_HAVE_UNIX_IO 0
#endif

namespace cachegraph::store {
namespace {

[[nodiscard]] reliability::Status short_file_error(const std::filesystem::path& path,
                                                   std::uint64_t need, std::uint64_t got) {
  return reliability::data_loss("blocked file " + path.string() + " truncated: need " +
                                std::to_string(need) + " bytes for block region, file has " +
                                std::to_string(got));
}

#if CACHEGRAPH_HAVE_UNIX_IO

class PreadSource final : public BlockSource {
 public:
  PreadSource(int fd, std::uint64_t data_offset, std::uint32_t block_bytes) noexcept
      : fd_(fd), data_offset_(data_offset), block_bytes_(block_bytes) {}

  ~PreadSource() override { ::close(fd_); }

  PreadSource(const PreadSource&) = delete;
  PreadSource& operator=(const PreadSource&) = delete;

  reliability::Status read_block(std::uint32_t block_id,
                                 std::span<std::byte> dst) noexcept override {
    if (dst.size() != block_bytes_) {
      return reliability::invalid_argument("frame size does not match block_bytes");
    }
    const auto base =
        static_cast<off_t>(data_offset_ + std::uint64_t{block_id} * block_bytes_);
    std::size_t done = 0;
    while (done < dst.size()) {
      const ssize_t n = ::pread(fd_, dst.data() + done, dst.size() - done,
                                base + static_cast<off_t>(done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return reliability::data_loss("pread failed on block " + std::to_string(block_id) +
                                      ": " + std::strerror(errno));
      }
      if (n == 0) {
        return reliability::data_loss("pread hit EOF inside block " + std::to_string(block_id) +
                                      " (file truncated under us)");
      }
      done += static_cast<std::size_t>(n);
    }
    return {};
  }

  [[nodiscard]] const char* name() const noexcept override { return "pread"; }

 private:
  int fd_;
  std::uint64_t data_offset_;
  std::uint32_t block_bytes_;
};

class MmapSource final : public BlockSource {
 public:
  MmapSource(const std::byte* map, std::size_t map_bytes, std::uint64_t data_offset,
             std::uint32_t block_bytes) noexcept
      : map_(map), map_bytes_(map_bytes), data_offset_(data_offset), block_bytes_(block_bytes) {}

  ~MmapSource() override {
    ::munmap(const_cast<std::byte*>(map_), map_bytes_);  // NOLINT(cppcoreguidelines-pro-type-const-cast)
  }

  MmapSource(const MmapSource&) = delete;
  MmapSource& operator=(const MmapSource&) = delete;

  reliability::Status read_block(std::uint32_t block_id,
                                 std::span<std::byte> dst) noexcept override {
    if (dst.size() != block_bytes_) {
      return reliability::invalid_argument("frame size does not match block_bytes");
    }
    const std::uint64_t off = data_offset_ + std::uint64_t{block_id} * block_bytes_;
    std::memcpy(dst.data(), map_ + off, dst.size());
    return {};
  }

  [[nodiscard]] const char* name() const noexcept override { return "mmap"; }

 private:
  const std::byte* map_;
  std::size_t map_bytes_;
  std::uint64_t data_offset_;
  std::uint32_t block_bytes_;
};

#else  // !CACHEGRAPH_HAVE_UNIX_IO

// Portable fallback: one FILE* guarded by a mutex. Correct, serial.
class PreadSource final : public BlockSource {
 public:
  PreadSource(std::FILE* f, std::uint64_t data_offset, std::uint32_t block_bytes) noexcept
      : f_(f), data_offset_(data_offset), block_bytes_(block_bytes) {}

  ~PreadSource() override { std::fclose(f_); }

  PreadSource(const PreadSource&) = delete;
  PreadSource& operator=(const PreadSource&) = delete;

  reliability::Status read_block(std::uint32_t block_id,
                                 std::span<std::byte> dst) noexcept override {
    if (dst.size() != block_bytes_) {
      return reliability::invalid_argument("frame size does not match block_bytes");
    }
    const std::lock_guard<std::mutex> lock(mu_);
    const auto off =
        static_cast<long>(data_offset_ + std::uint64_t{block_id} * block_bytes_);
    if (std::fseek(f_, off, SEEK_SET) != 0 ||
        std::fread(dst.data(), 1, dst.size(), f_) != dst.size()) {
      return reliability::data_loss("read failed on block " + std::to_string(block_id));
    }
    return {};
  }

  [[nodiscard]] const char* name() const noexcept override { return "pread"; }

 private:
  std::FILE* f_;
  std::mutex mu_;
  std::uint64_t data_offset_;
  std::uint32_t block_bytes_;
};

#endif  // CACHEGRAPH_HAVE_UNIX_IO

}  // namespace

reliability::Expected<std::unique_ptr<BlockSource>> make_block_source(
    const std::filesystem::path& path, Backend backend, std::uint64_t data_offset,
    std::uint32_t block_bytes, std::uint32_t num_blocks) {
  std::error_code ec;
  const std::uint64_t file_bytes = std::filesystem::file_size(path, ec);
  if (ec) {
    return reliability::data_loss("cannot stat blocked file " + path.string() + ": " +
                                  ec.message());
  }
  const std::uint64_t need = data_offset + std::uint64_t{block_bytes} * num_blocks;
  if (file_bytes < need) return short_file_error(path, need, file_bytes);

#if CACHEGRAPH_HAVE_UNIX_IO
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return reliability::data_loss("cannot open blocked file " + path.string() + ": " +
                                  std::strerror(errno));
  }
  if (backend == Backend::kPread) {
    return std::unique_ptr<BlockSource>(new PreadSource(fd, data_offset, block_bytes));
  }
  void* map = ::mmap(nullptr, static_cast<std::size_t>(file_bytes), PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    return reliability::data_loss("mmap failed on " + path.string() + ": " +
                                  std::strerror(errno));
  }
  return std::unique_ptr<BlockSource>(new MmapSource(static_cast<const std::byte*>(map),
                                                     static_cast<std::size_t>(file_bytes),
                                                     data_offset, block_bytes));
#else
  if (backend == Backend::kMmap) {
    return reliability::invalid_argument("mmap backend is not available on this platform");
  }
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) {
    return reliability::data_loss("cannot open blocked file " + path.string());
  }
  return std::unique_ptr<BlockSource>(new PreadSource(f, data_offset, block_bytes));
#endif
}

}  // namespace cachegraph::store
