#include "cachegraph/store/blocked_file.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <system_error>

#include "cachegraph/common/checksum.hpp"

namespace cachegraph::store::detail {
namespace {

[[nodiscard]] reliability::Status damaged(const std::filesystem::path& path,
                                          const std::string& what) {
  return reliability::data_loss("blocked file " + path.string() + " " + what);
}

struct FileCloser {
  void operator()(std::FILE* f) const noexcept { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

reliability::Expected<RawBlockedFile> open_raw(const std::filesystem::path& path,
                                               Backend backend) {
  std::error_code ec;
  const std::uint64_t file_bytes = std::filesystem::file_size(path, ec);
  if (ec) {
    return reliability::data_loss("cannot stat blocked file " + path.string() + ": " +
                                  ec.message());
  }

  FilePtr f(std::fopen(path.string().c_str(), "rb"));
  if (!f) return reliability::data_loss("cannot open blocked file " + path.string());

  RawBlockedFile raw;
  if (std::fread(&raw.header, 1, sizeof(raw.header), f.get()) != sizeof(raw.header)) {
    return damaged(path, "truncated: shorter than the file header");
  }
  const FileHeader& h = raw.header;
  if (std::memcmp(h.magic, kStoreMagic, sizeof(kStoreMagic)) != 0) {
    return reliability::invalid_argument(path.string() + " is not a blocked graph file");
  }
  if (h.version != kStoreVersion) {
    return reliability::invalid_argument("blocked file " + path.string() + " is version " +
                                         std::to_string(h.version) + ", expected " +
                                         std::to_string(kStoreVersion));
  }
  const std::uint64_t computed =
      fnv1a64(&h, sizeof(h) - sizeof(h.header_checksum));
  if (computed != h.header_checksum) {
    return damaged(path, "header failed checksum verification");
  }
  if (h.num_vertices < 0 || h.num_records < 0 || h.block_bytes < kMinBlockBytes ||
      h.num_blocks >= kNoBlock) {
    return damaged(path, "header fields out of range");
  }

  const auto n = static_cast<std::uint64_t>(h.num_vertices);
  const std::uint64_t footer_bytes = (n + 1) * sizeof(index_t) + n * sizeof(std::uint32_t) +
                                     std::uint64_t{h.num_blocks} * sizeof(BlockIndexEntry);
  const std::uint64_t expected_bytes = sizeof(FileHeader) +
                                       std::uint64_t{h.block_bytes} * h.num_blocks +
                                       footer_bytes + sizeof(std::uint64_t);
  if (file_bytes != expected_bytes) {
    return damaged(path, "truncated: expected " + std::to_string(expected_bytes) +
                             " bytes, found " + std::to_string(file_bytes));
  }

  // Footer: read as one blob, verify its trailing checksum, then parse.
  const std::uint64_t footer_start =
      sizeof(FileHeader) + std::uint64_t{h.block_bytes} * h.num_blocks;
  if (std::fseek(f.get(), static_cast<long>(footer_start), SEEK_SET) != 0) {
    return damaged(path, "footer seek failed");
  }
  std::vector<std::byte> footer(static_cast<std::size_t>(footer_bytes));
  std::uint64_t stored_sum = 0;
  if (std::fread(footer.data(), 1, footer.size(), f.get()) != footer.size() ||
      std::fread(&stored_sum, 1, sizeof(stored_sum), f.get()) != sizeof(stored_sum)) {
    return damaged(path, "truncated inside the footer");
  }
  if (fnv1a64(footer.data(), footer.size()) != stored_sum) {
    return damaged(path, "footer failed checksum verification");
  }

  raw.offsets.resize(static_cast<std::size_t>(n + 1));
  raw.start_block.resize(static_cast<std::size_t>(n));
  raw.blocks.resize(h.num_blocks);
  const std::byte* p = footer.data();
  std::memcpy(raw.offsets.data(), p, raw.offsets.size() * sizeof(index_t));
  p += raw.offsets.size() * sizeof(index_t);
  if (n > 0) {
    std::memcpy(raw.start_block.data(), p, raw.start_block.size() * sizeof(std::uint32_t));
    p += raw.start_block.size() * sizeof(std::uint32_t);
  }
  if (h.num_blocks > 0) {
    std::memcpy(raw.blocks.data(), p, raw.blocks.size() * sizeof(BlockIndexEntry));
  }

  // Index invariants: after these checks the navigation metadata can be
  // trusted blindly (no bounds checks on the hot path).
  if (raw.offsets.front() != 0 || raw.offsets.back() != h.num_records) {
    return damaged(path, "footer inconsistent: offsets do not span the record array");
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (raw.offsets[v] > raw.offsets[v + 1]) {
      return damaged(path, "footer inconsistent: offsets not monotone");
    }
    const bool isolated = raw.offsets[v] == raw.offsets[v + 1];
    if (isolated != (raw.start_block[v] == kNoBlock) ||
        (!isolated && raw.start_block[v] >= h.num_blocks)) {
      return damaged(path, "footer inconsistent: vertex -> block map out of range");
    }
  }
  index_t covered = 0;
  for (std::uint32_t b = 0; b < h.num_blocks; ++b) {
    const BlockIndexEntry& e = raw.blocks[b];
    if (e.first_record != covered || e.record_count == 0 ||
        e.first_vertex >= h.num_vertices) {
      return damaged(path, "footer inconsistent: block index does not tile the records");
    }
    covered += e.record_count;
  }
  if (covered != h.num_records) {
    return damaged(path, "footer inconsistent: block index does not cover all records");
  }
  // Every non-isolated vertex's run must begin inside its start block.
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t b = raw.start_block[v];
    if (b == kNoBlock) continue;
    const BlockIndexEntry& e = raw.blocks[b];
    if (raw.offsets[v] < e.first_record ||
        raw.offsets[v] >= e.first_record + e.record_count) {
      return damaged(path, "footer inconsistent: vertex run outside its start block");
    }
  }

  f.reset();  // the BlockSource reopens the file itself
  auto source = make_block_source(path, backend, sizeof(FileHeader), h.block_bytes,
                                  h.num_blocks);
  if (!source) return source.status();
  raw.source = std::move(*source);
  return raw;
}

}  // namespace cachegraph::store::detail
