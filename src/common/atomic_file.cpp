#include "cachegraph/common/atomic_file.hpp"

#include <cstdio>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace cachegraph::io {

reliability::Status fsync_parent_dir(const std::filesystem::path& path) {
#if defined(__unix__) || defined(__APPLE__)
  std::filesystem::path dir = path.parent_path();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return reliability::resource_exhausted("cannot open directory " + dir.string() +
                                           " for fsync");
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    return reliability::resource_exhausted("fsync failed on directory " + dir.string());
  }
#else
  (void)path;  // no directory fsync on this platform; rename is best effort
#endif
  return {};
}

reliability::Status commit_rename(const std::filesystem::path& tmp,
                                  const std::filesystem::path& path) {
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    return reliability::resource_exhausted("rename " + tmp.string() + " -> " + path.string() +
                                           " failed: " + ec.message());
  }
  // The rename is visible; the directory fsync makes it durable. A
  // failure here leaves a complete, correctly-named file — report it
  // (the caller's durability promise is broken) but nothing to undo.
  return fsync_parent_dir(path);
}

reliability::Status write_file_durable(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return reliability::resource_exhausted("cannot open " + tmp + " for writing");
  }
  bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  ok = std::fflush(f) == 0 && ok;
#if defined(__unix__) || defined(__APPLE__)
  ok = ::fsync(fileno(f)) == 0 && ok;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return reliability::resource_exhausted("I/O failure writing " + path);
  }
  return commit_rename(tmp, path);
}

}  // namespace cachegraph::io
