#include "cachegraph/layout/block_size.hpp"

#include <cmath>

namespace cachegraph::layout {

std::size_t effective_capacity(const memsim::CacheConfig& cache) {
  // 2:1 rule of thumb [Hennessy & Patterson]: a direct-mapped cache of
  // size N has about the miss rate of a 2-way cache of size N/2 — one
  // halving, total. The old loop here halved once per associativity
  // doubling up to 4-way, compounding the penalty (direct-mapped was
  // charged cap/4) and driving pick_block_size a full power of two too
  // small on the paper's direct-mapped L2 machines.
  std::size_t cap = cache.size_bytes;
  if (cache.ways() < 4) cap /= 2;
  return cap;
}

std::size_t pick_block_size(const memsim::CacheConfig& cache, std::size_t elem_bytes,
                            bool round_to_pow2) {
  CG_CHECK(elem_bytes > 0);
  const std::size_t cap = effective_capacity(cache);
  // Largest B with 3*B^2*d <= cap.
  std::size_t b = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(cap) / (3.0 * static_cast<double>(elem_bytes))));
  if (b < 2) b = 2;
  if (round_to_pow2) {
    std::size_t p = 2;
    while (p * 2 <= b) p *= 2;
    b = p;
  }
  return b;
}

}  // namespace cachegraph::layout
