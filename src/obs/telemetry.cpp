#include "cachegraph/obs/telemetry.hpp"

#include <array>
#include <atomic>
#include <string>

#include "cachegraph/obs/counters.hpp"
#include "cachegraph/obs/flight_recorder.hpp"
#include "cachegraph/obs/histogram.hpp"
#include "cachegraph/obs/metrics.hpp"

namespace cachegraph::obs {

namespace {

/// Per-kind total-latency histograms, resolved once (the registry's
/// stable-address contract makes caching the references safe, same as
/// CG_COUNTER_ADD's function-local statics).
LatencyHistogram& kind_latency(std::uint8_t kind) {
  static std::array<LatencyHistogram*, kNumRequestKinds>* table = [] {
    auto* t = new std::array<LatencyHistogram*, kNumRequestKinds>();
    auto& reg = MetricsRegistry::instance();
    for (std::uint8_t k = 0; k < kNumRequestKinds; ++k) {
      (*t)[k] = &reg.histogram(std::string("query.latency_ns.") + request_kind_name(k));
    }
    return t;
  }();
  const std::uint8_t slot = kind < kNumRequestKinds ? kind : static_cast<std::uint8_t>(kKindFullSssp);
  return *(*table)[slot];
}

}  // namespace

void note_request(const RequestRecord& rec) noexcept {
  try {
    RequestRecord stamped = rec;
    if (stamped.id == 0) {
      stamped.id =
          FlightRecorder::instance().next_id_.fetch_add(1, std::memory_order_relaxed);
    }
    if (stamped.tid == 0) stamped.tid = current_tid();

    kind_latency(stamped.kind).record(stamped.total_ns);
    auto& reg = MetricsRegistry::instance();
    if (stamped.kind <= kKindFullSssp) {
      // Engine requests carry meaningful time splits; batch sources and
      // snapshot events only have a total.
      static LatencyHistogram& queue_wait = reg.histogram("query.queue_wait_ns");
      static LatencyHistogram& compute = reg.histogram("query.compute_ns");
      queue_wait.record(stamped.queue_wait_ns);
      compute.record(stamped.compute_ns);
      if (stamped.admission_wait_ns > 0) {
        static LatencyHistogram& admission = reg.histogram("query.admission_wait_ns");
        admission.record(stamped.admission_wait_ns);
      }
    }
    CG_COUNTER_INC("obs.requests.recorded");
    FlightRecorder::instance().note(stamped);
  } catch (...) {  // NOLINT(bugprone-empty-catch) — telemetry must never take a request down
  }
}

}  // namespace cachegraph::obs
