#include "cachegraph/obs/metrics.hpp"

#include <cctype>
#include <sstream>

#include "cachegraph/common/atomic_file.hpp"
#include "cachegraph/common/json.hpp"
#include "cachegraph/obs/counters.hpp"

namespace cachegraph::obs {

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry reg;
  return reg;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(std::string(name), std::make_unique<LatencyHistogram>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, HistogramSnapshot>> MetricsRegistry::histograms() const {
  // Collect the (stable) pointers under the lock, merge shards outside
  // it: snapshotting walks kShards * kNumBuckets atomics per histogram
  // and must not stall a concurrent histogram() lookup.
  std::vector<std::pair<std::string, const LatencyHistogram*>> items;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    items.reserve(hists_.size());
    for (const auto& [name, h] : hists_) items.emplace_back(name, h.get());
  }
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(items.size());
  for (const auto& [name, h] : items) out.emplace_back(name, h->snapshot());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::string MetricsRegistry::sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && std::isdigit(static_cast<unsigned char>(name.front())) != 0) {
    out += '_';
  }
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void MetricsRegistry::render_prometheus(std::ostream& os) const {
  // Counters (CounterRegistry is the system of record for monotone
  // event counts; the conventional _total suffix marks them).
  for (const auto& [name, v] : CounterRegistry::instance().snapshot()) {
    const std::string p = "cachegraph_" + sanitize_name(name) + "_total";
    os << "# TYPE " << p << " counter\n" << p << " " << v << "\n";
  }
  for (const auto& [name, v] : gauges()) {
    const std::string p = "cachegraph_" + sanitize_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << v << "\n";
  }
  for (const auto& [name, snap] : histograms()) {
    const std::string p = "cachegraph_" + sanitize_name(name);
    os << "# TYPE " << p << " histogram\n";
    // Cumulative `le` buckets, only at occupied slots (the full 1920
    // would drown a scrape); `le` is each bucket's inclusive max.
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      if (snap.counts[i] == 0) continue;
      cum += snap.counts[i];
      os << p << "_bucket{le=\"" << LatencyHistogram::bucket_max(i) << "\"} " << cum << "\n";
    }
    os << p << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
    os << p << "_sum " << snap.sum << "\n";
    os << p << "_count " << snap.count << "\n";
  }
}

void MetricsRegistry::render_json(std::ostream& os) const {
  json::Writer w(os);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : CounterRegistry::instance().snapshot()) {
    w.key(name).value(v);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges()) w.key(name).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, snap] : histograms()) {
    w.key(name).begin_object();
    w.key("count").value(snap.count);
    w.key("sum").value(snap.sum);
    w.key("min").value(snap.min());
    w.key("max").value(snap.max());
    w.key("mean").value(snap.mean());
    w.key("p50").value(snap.percentile(50));
    w.key("p90").value(snap.percentile(90));
    w.key("p99").value(snap.percentile(99));
    w.key("p999").value(snap.percentile(99.9));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

namespace detail {
reliability::Status write_file_atomic(const std::string& path, std::string_view content) {
  // One durable-write discipline for the whole codebase (tmp + fsync +
  // rename + parent-dir fsync) — the local implementation this used to
  // carry skipped the directory fsync, so a crash right after "success"
  // could silently roll the rename back.
  return io::write_file_durable(path, content);
}
}  // namespace detail

reliability::Status MetricsRegistry::write_prometheus_file(const std::string& path) const {
  std::ostringstream os;
  render_prometheus(os);
  return detail::write_file_atomic(path, os.str());
}

reliability::Status MetricsRegistry::write_json_file(const std::string& path) const {
  std::ostringstream os;
  render_json(os);
  os << "\n";
  return detail::write_file_atomic(path, os.str());
}

void MetricsRegistry::configure_snapshots(std::string path, std::chrono::milliseconds min_interval) {
  const std::lock_guard<std::mutex> lock(snap_mu_);
  snap_path_ = std::move(path);
  snap_interval_ = min_interval;
  ever_snapped_ = false;
}

void MetricsRegistry::disable_snapshots() {
  const std::lock_guard<std::mutex> lock(snap_mu_);
  snap_path_.clear();
}

void MetricsRegistry::poll_snapshot() {
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(snap_mu_);
    if (snap_path_.empty()) return;
    const auto now = std::chrono::steady_clock::now();
    if (ever_snapped_ && now - last_snap_ < snap_interval_) return;
    ever_snapped_ = true;
    last_snap_ = now;
    path = snap_path_;
  }
  // Best-effort: a snapshot that cannot be written must not take the
  // serving loop down; the failure surfaces as a missing/stale file.
  if (write_json_file(path).is_ok()) {
    snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  }
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, h] : hists_) h->reset();
  for (auto& [name, g] : gauges_) g->set(0.0);
}

}  // namespace cachegraph::obs
