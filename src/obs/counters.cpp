#include "cachegraph/obs/counters.hpp"

namespace cachegraph::obs {

CounterRegistry& CounterRegistry::instance() {
  static CounterRegistry registry;
  return registry;
}

std::uint64_t& CounterRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), 0).first->second;
}

std::uint64_t CounterRegistry::value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void CounterRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, v] : counters_) v = 0;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot(
    bool nonzero_only) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, v] : counters_) {
    if (nonzero_only && v == 0) continue;
    out.emplace_back(name, v);
  }
  return out;  // std::map iteration order is already name-sorted
}

}  // namespace cachegraph::obs
