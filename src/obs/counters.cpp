#include "cachegraph/obs/counters.hpp"

namespace cachegraph::obs {

CounterRegistry& CounterRegistry::instance() {
  static CounterRegistry registry;
  return registry;
}

std::atomic<std::uint64_t>& CounterRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), 0).first->second;
}

std::uint64_t CounterRegistry::value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.load(std::memory_order_relaxed);
}

void CounterRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, v] : counters_) v.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot(
    bool nonzero_only) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, v] : counters_) {
    const std::uint64_t val = v.load(std::memory_order_relaxed);
    if (nonzero_only && val == 0) continue;
    out.emplace_back(name, val);
  }
  return out;  // std::map iteration order is already name-sorted
}

}  // namespace cachegraph::obs
