#include "cachegraph/obs/perf_counters.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define CACHEGRAPH_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace cachegraph::obs {

#if defined(CACHEGRAPH_HAVE_PERF_EVENT)

namespace {

struct EventDesc {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr std::uint64_t hw_cache_config(std::uint64_t cache, std::uint64_t op,
                                        std::uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

// Index order must match PerfCounters::Event.
constexpr EventDesc kEvents[PerfCounters::kNumEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE, hw_cache_config(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                                         PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE, hw_cache_config(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                                         PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_HW_CACHE, hw_cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                                         PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE, hw_cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                                         PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_HW_CACHE, hw_cache_config(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
                                         PERF_COUNT_HW_CACHE_RESULT_MISS)},
};

int open_event(const EventDesc& e) noexcept {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = e.type;
  attr.config = e.config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = 0;
  // Multiplex-aware read format: {value, time_enabled, time_running}.
  attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          /*group_fd=*/-1, /*flags=*/0UL);
  return static_cast<int>(fd);  // -1 on failure (EACCES/ENOENT/EINVAL…)
}

std::uint64_t read_scaled(int fd) noexcept {
  std::uint64_t buf[3] = {0, 0, 0};  // value, enabled, running
  if (::read(fd, buf, sizeof(buf)) != static_cast<ssize_t>(sizeof(buf))) return 0;
  if (buf[2] == 0) return 0;  // never scheduled onto the PMU
  if (buf[1] == buf[2]) return buf[0];
  const double scale = static_cast<double>(buf[1]) / static_cast<double>(buf[2]);
  return static_cast<std::uint64_t>(static_cast<double>(buf[0]) * scale);
}

}  // namespace

PerfCounters::PerfCounters() {
  fds_.fill(-1);
  for (unsigned i = 0; i < kNumEvents; ++i) {
    const int fd = open_event(kEvents[i]);
    if (fd >= 0) {
      fds_[i] = fd;
      mask_ |= 1u << i;
    }
  }
}

PerfCounters::~PerfCounters() {
  for (const int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void PerfCounters::start() noexcept {
  for (const int fd : fds_) {
    if (fd < 0) continue;
    ::ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ::ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

void PerfCounters::stop() noexcept {
  for (const int fd : fds_) {
    if (fd >= 0) ::ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
}

PerfReading PerfCounters::read() const noexcept {
  PerfReading r;
  r.mask = mask_;
  std::uint64_t vals[kNumEvents] = {};
  for (unsigned i = 0; i < kNumEvents; ++i) {
    if (fds_[i] >= 0) vals[i] = read_scaled(fds_[i]);
  }
  r.cycles = vals[kCycles];
  r.instructions = vals[kInstructions];
  r.l1d_loads = vals[kL1dLoads];
  r.l1d_misses = vals[kL1dMisses];
  r.llc_loads = vals[kLlcLoads];
  r.llc_misses = vals[kLlcMisses];
  r.dtlb_misses = vals[kDtlbMisses];
  return r;
}

#else  // no perf_event_open on this platform: permanent no-op fallback

PerfCounters::PerfCounters() { fds_.fill(-1); }
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() noexcept {}
void PerfCounters::stop() noexcept {}
PerfReading PerfCounters::read() const noexcept { return PerfReading{}; }

#endif  // CACHEGRAPH_HAVE_PERF_EVENT

}  // namespace cachegraph::obs
