#include "cachegraph/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <map>

#include "cachegraph/common/json.hpp"

namespace cachegraph::obs {

namespace {
// Atomic so pool workers can observe the installed session without a
// race against the owning thread installing/uninstalling it. Release
// on install / acquire on read orders the session's construction
// before any worker records into it.
std::atomic<TraceSession*>& current_slot() noexcept {
  static std::atomic<TraceSession*> current{nullptr};
  return current;
}

// tid → display name, populated by set_current_thread_name. Guarded by
// its own mutex (registration and write_json are both cold paths).
struct ThreadNameRegistry {
  std::mutex mu;
  std::map<std::uint32_t, std::string> names;
};
ThreadNameRegistry& thread_name_registry() {
  static auto* reg = new ThreadNameRegistry();  // leaked: outlives exiting threads
  return *reg;
}
}  // namespace

std::uint32_t current_tid() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void set_current_thread_name(std::string_view name) {
  auto& reg = thread_name_registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  reg.names[current_tid()] = std::string(name);
}

std::vector<std::pair<std::uint32_t, std::string>> thread_names() {
  auto& reg = thread_name_registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  return {reg.names.begin(), reg.names.end()};
}

TraceSession::TraceSession() : start_(std::chrono::steady_clock::now()) {
  prev_ = current_slot().load(std::memory_order_relaxed);
  current_slot().store(this, std::memory_order_release);
}

TraceSession::~TraceSession() { current_slot().store(prev_, std::memory_order_release); }

TraceSession* TraceSession::current() noexcept {
  return current_slot().load(std::memory_order_acquire);
}

void TraceSession::record(char phase, std::string_view name, double dur_us) {
  const double ts_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start_)
          .count();
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{phase, std::string(name), ts_us, current_tid(), dur_us});
}

void TraceSession::begin(std::string_view name) { record('B', name); }
void TraceSession::end(std::string_view name) { record('E', name); }
void TraceSession::instant(std::string_view name) { record('i', name); }

void TraceSession::complete(std::string_view name, std::chrono::steady_clock::time_point t0,
                            std::chrono::steady_clock::time_point t1) {
  if (t1 < t0) t1 = t0;
  if (t0 < start_) t0 = start_;  // span began before the session did
  const double ts_us = std::chrono::duration<double, std::micro>(t0 - start_).count();
  const double dur_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'X', std::string(name), ts_us, current_tid(), dur_us});
}

std::size_t TraceSession::num_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceSession::Event> TraceSession::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceSession::write_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  json::Writer w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();
  // Thread-name metadata first ('M' phase): viewers label each tid's
  // lane with args.name instead of the bare number.
  for (const auto& [tid, name] : thread_names()) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(1);
    w.key("tid").value(static_cast<std::uint64_t>(tid));
    w.key("args").begin_object();
    w.key("name").value(name);
    w.end_object();
    w.end_object();
  }
  for (const Event& e : events_) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value("cachegraph");
    w.key("ph").value(std::string_view(&e.phase, 1));
    w.key("pid").value(1);
    w.key("tid").value(static_cast<std::uint64_t>(e.tid));
    w.key("ts").value(e.ts_us);
    if (e.phase == 'X') w.key("dur").value(e.dur_us);
    if (e.phase == 'i') w.key("s").value("t");  // instant scope: thread
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.end_object();
  os << "\n";
}

bool TraceSession::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return os.good();
}

}  // namespace cachegraph::obs
