#include "cachegraph/obs/trace.hpp"

#include <atomic>
#include <fstream>

#include "cachegraph/common/json.hpp"

namespace cachegraph::obs {

namespace {
// Atomic so pool workers can observe the installed session without a
// race against the owning thread installing/uninstalling it. Release
// on install / acquire on read orders the session's construction
// before any worker records into it.
std::atomic<TraceSession*>& current_slot() noexcept {
  static std::atomic<TraceSession*> current{nullptr};
  return current;
}
}  // namespace

TraceSession::TraceSession() : start_(std::chrono::steady_clock::now()) {
  prev_ = current_slot().load(std::memory_order_relaxed);
  current_slot().store(this, std::memory_order_release);
}

TraceSession::~TraceSession() { current_slot().store(prev_, std::memory_order_release); }

TraceSession* TraceSession::current() noexcept {
  return current_slot().load(std::memory_order_acquire);
}

void TraceSession::record(char phase, std::string_view name) {
  const double ts_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start_)
          .count();
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{phase, std::string(name), ts_us});
}

void TraceSession::begin(std::string_view name) { record('B', name); }
void TraceSession::end(std::string_view name) { record('E', name); }
void TraceSession::instant(std::string_view name) { record('i', name); }

std::size_t TraceSession::num_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceSession::Event> TraceSession::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceSession::write_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  json::Writer w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const Event& e : events_) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value("cachegraph");
    w.key("ph").value(std::string_view(&e.phase, 1));
    w.key("pid").value(1);
    w.key("tid").value(1);
    w.key("ts").value(e.ts_us);
    if (e.phase == 'i') w.key("s").value("t");  // instant scope: thread
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.end_object();
  os << "\n";
}

bool TraceSession::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return os.good();
}

}  // namespace cachegraph::obs
