#include "cachegraph/obs/flight_recorder.hpp"

#include <sstream>

#include "cachegraph/common/json.hpp"
#include "cachegraph/obs/metrics.hpp"
#include "cachegraph/obs/trace.hpp"
#include "cachegraph/reliability/status.hpp"

namespace cachegraph::obs {

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder rec;
  return rec;
}

// Record ⇄ 10-word wire layout. Word 1 packs the small fields:
//   bits  0..7   kind          bits  8..15  status_code
//   bits 16..23  outcome       bit  24      aborted
//   bit  25      had_deadline  bits 32..63  tid
void FlightRecorder::pack(const RequestRecord& rec,
                          std::array<std::uint64_t, kWordsPerRecord>& w) noexcept {
  w[0] = rec.id;
  w[1] = static_cast<std::uint64_t>(rec.kind) |
         (static_cast<std::uint64_t>(rec.status_code) << 8) |
         (static_cast<std::uint64_t>(rec.outcome) << 16) |
         (static_cast<std::uint64_t>(rec.aborted ? 1 : 0) << 24) |
         (static_cast<std::uint64_t>(rec.had_deadline ? 1 : 0) << 25) |
         (static_cast<std::uint64_t>(rec.tid) << 32);
  w[2] = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rec.source))) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rec.target)) << 32);
  w[3] = rec.admission_wait_ns;
  w[4] = rec.queue_wait_ns;
  w[5] = rec.compute_ns;
  w[6] = rec.total_ns;
  w[7] = rec.settled;
  w[8] = rec.relaxations;
  w[9] = static_cast<std::uint64_t>(rec.deadline_slack_ns);
}

RequestRecord FlightRecorder::unpack(const std::array<std::uint64_t, kWordsPerRecord>& w) noexcept {
  RequestRecord rec;
  rec.id = w[0];
  rec.kind = static_cast<std::uint8_t>(w[1] & 0xff);
  rec.status_code = static_cast<std::uint8_t>((w[1] >> 8) & 0xff);
  rec.outcome = static_cast<std::uint8_t>((w[1] >> 16) & 0xff);
  rec.aborted = ((w[1] >> 24) & 1) != 0;
  rec.had_deadline = ((w[1] >> 25) & 1) != 0;
  rec.tid = static_cast<std::uint32_t>(w[1] >> 32);
  rec.source = static_cast<std::int32_t>(static_cast<std::uint32_t>(w[2] & 0xffffffffull));
  rec.target = static_cast<std::int32_t>(static_cast<std::uint32_t>(w[2] >> 32));
  rec.admission_wait_ns = w[3];
  rec.queue_wait_ns = w[4];
  rec.compute_ns = w[5];
  rec.total_ns = w[6];
  rec.settled = w[7];
  rec.relaxations = w[8];
  rec.deadline_slack_ns = static_cast<std::int64_t>(w[9]);
  return rec;
}

bool FlightRecorder::is_dump_trigger(const RequestRecord& rec) noexcept {
  using reliability::StatusCode;
  const auto code = static_cast<StatusCode>(rec.status_code);
  return rec.aborted || code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kOverloaded || code == StatusCode::kDataLoss;
}

void FlightRecorder::note(const RequestRecord& rec) noexcept {
  std::array<std::uint64_t, kWordsPerRecord> w;
  pack(rec, w);
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[ticket % kCapacity];
  // Seqlock write: odd while the words are in flux, even once stable.
  // The sequence is derived from the ticket's lap (not read-modify-
  // write), so a reader knows exactly which value marks slot `ticket`
  // as stable and a lapping writer is detected by value, not parity
  // alone. Every word is an atomic, so even a pathological lap race is
  // data-race-free; the seq check discards the torn copy.
  const std::uint64_t lap = ticket / kCapacity + 1;
  slot.seq.store(2 * lap - 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t i = 0; i < kWordsPerRecord; ++i) {
    slot.words[i].store(w[i], std::memory_order_relaxed);
  }
  slot.seq.store(2 * lap, std::memory_order_release);
  if (is_dump_trigger(rec)) maybe_auto_dump(rec);
}

void FlightRecorder::arm_auto_dump(std::string path, std::chrono::milliseconds min_interval) {
  const std::lock_guard<std::mutex> lock(arm_mu_);
  dump_path_ = std::move(path);
  min_interval_ = min_interval;
  ever_dumped_ = false;
}

void FlightRecorder::disarm_auto_dump() {
  const std::lock_guard<std::mutex> lock(arm_mu_);
  dump_path_.clear();
}

void FlightRecorder::maybe_auto_dump(const RequestRecord& rec) noexcept {
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(arm_mu_);
    if (dump_path_.empty()) return;
    const auto now = std::chrono::steady_clock::now();
    if (ever_dumped_ && now - last_dump_ < min_interval_) return;
    ever_dumped_ = true;
    last_dump_ = now;
    path = dump_path_;
  }
  // Bad outcomes are rare and rate-limited; the file write happens on
  // the resolving thread, never throws out (write_file is noexcept in
  // effect: Status-returning I/O inside, swallow-all here).
  try {
    if (write_file(path, &rec)) {
      dumps_.fetch_add(1, std::memory_order_relaxed);
      if (auto* s = TraceSession::current()) s->instant("flight_recorder.dump");
    }
  } catch (...) {  // NOLINT(bugprone-empty-catch) — dumps are best-effort
  }
}

std::vector<RequestRecord> FlightRecorder::dump() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n = head < kCapacity ? head : kCapacity;
  std::vector<RequestRecord> out;
  out.reserve(n);
  for (std::uint64_t t = head - n; t < head; ++t) {
    const Slot& slot = ring_[t % kCapacity];
    const std::uint64_t want = 2 * (t / kCapacity + 1);  // "ticket t is stable here"
    if (slot.seq.load(std::memory_order_acquire) != want) continue;  // mid-write or lapped
    std::array<std::uint64_t, kWordsPerRecord> w;
    for (std::size_t i = 0; i < kWordsPerRecord; ++i) {
      w[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != want) continue;  // lapped mid-copy
    out.push_back(unpack(w));
  }
  return out;
}

namespace {
void write_record(json::Writer& w, const RequestRecord& rec) {
  w.begin_object();
  w.key("id").value(rec.id);
  w.key("kind").value(request_kind_name(rec.kind));
  w.key("status").value(
      reliability::to_string(static_cast<reliability::StatusCode>(rec.status_code)));
  w.key("outcome").value(static_cast<std::uint64_t>(rec.outcome));
  w.key("aborted").value(rec.aborted);
  w.key("tid").value(static_cast<std::uint64_t>(rec.tid));
  w.key("source").value(static_cast<std::int64_t>(rec.source));
  w.key("target").value(static_cast<std::int64_t>(rec.target));
  w.key("admission_wait_ns").value(rec.admission_wait_ns);
  w.key("queue_wait_ns").value(rec.queue_wait_ns);
  w.key("compute_ns").value(rec.compute_ns);
  w.key("total_ns").value(rec.total_ns);
  w.key("settled").value(rec.settled);
  w.key("relaxations").value(rec.relaxations);
  if (rec.had_deadline) w.key("deadline_slack_ns").value(rec.deadline_slack_ns);
  w.end_object();
}
}  // namespace

void FlightRecorder::write_json(std::ostream& os, const RequestRecord* trigger) const {
  json::Writer w(os);
  w.begin_object();
  if (trigger != nullptr) {
    w.key("trigger");
    write_record(w, *trigger);
  }
  w.key("recent").begin_array();
  for (const RequestRecord& rec : dump()) write_record(w, rec);
  w.end_array();
  w.end_object();
  os << "\n";
}

bool FlightRecorder::write_file(const std::string& path, const RequestRecord* trigger) const {
  std::ostringstream os;
  write_json(os, trigger);
  return detail::write_file_atomic(path, os.str()).is_ok();
}

void FlightRecorder::clear() noexcept {
  head_.store(0, std::memory_order_relaxed);
  for (Slot& slot : ring_) {
    slot.seq.store(0, std::memory_order_relaxed);
    for (auto& word : slot.words) word.store(0, std::memory_order_relaxed);
  }
}

}  // namespace cachegraph::obs
