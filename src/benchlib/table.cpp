#include "cachegraph/benchlib/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "cachegraph/common/check.hpp"

namespace cachegraph::bench {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  CG_CHECK(cells.size() == headers_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os, bool csv) const {
  if (csv) {
    auto emit = [&os](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) os << ',';
        os << cells[i];
      }
      os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
    return;
  }

  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto emit = [&](const std::vector<std::string>& cells) {
    os << "  ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 2;
  for (const std::size_t w : width) total += w + 2;
  os << "  " << std::string(total - 2, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_count(std::uint64_t v) {
  if (v < 1000000) return std::to_string(v);
  std::ostringstream ss;
  ss << std::setprecision(3) << static_cast<double>(v) / 1e6 << "e6";
  return ss.str();
}

std::string fmt_speedup(double base_seconds, double optimized_seconds) {
  if (optimized_seconds <= 0.0) return "inf";
  return fmt(base_seconds / optimized_seconds, 2) + "x";
}

std::string fmt_pct(double ratio) { return fmt(ratio * 100.0, 2) + "%"; }

void print_exhibit_header(std::ostream& os, const std::string& exhibit, const std::string& title,
                          const std::string& paper_reference) {
  os << "==================================================================\n";
  os << exhibit << ": " << title << '\n';
  os << "paper reports: " << paper_reference << '\n';
  os << "==================================================================\n";
}

}  // namespace cachegraph::bench
