#include "cachegraph/benchlib/report.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

#include "cachegraph/benchlib/table.hpp"
#include "cachegraph/common/json.hpp"
#include "cachegraph/obs/metrics.hpp"

namespace cachegraph::bench {

std::string params_label(const Params& params) {
  std::string out;
  for (const auto& [k, v] : params) {
    if (!out.empty()) out += ' ';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

Harness::Harness(std::ostream& os, const Options& opt, std::string exhibit, std::string title,
                 const std::string& paper_reference)
    : os_(os),
      opt_(opt),
      exhibit_(std::move(exhibit)),
      title_(std::move(title)),
      perf_(std::make_unique<obs::PerfCounters>()) {
  print_exhibit_header(os_, exhibit_, title_, paper_reference);
  // Counters accrue between measurements too (e.g. during a simulated
  // run that ends in sim()); start each exhibit from zero.
  obs::CounterRegistry::instance().reset();
  if (!opt_.trace.empty()) {
    // Label the driving thread's lane; pool workers name themselves on
    // startup. On a 1-worker pool the caller is the only lane, so this
    // keeps the trace from showing bare tids.
    obs::set_current_thread_name("bench.main");
    trace_ = std::make_unique<obs::TraceSession>();
  }
}

Harness::~Harness() {
  try {
    finish();
  } catch (...) {
    // Never throw out of a destructor; report files are best-effort.
  }
}

bool Harness::perf_available() const noexcept { return perf_->available(); }

std::string Harness::span_name(const std::string& variant, const Params& params) {
  std::string name = variant;
  const std::string label = params_label(params);
  if (!label.empty()) {
    name += " [";
    name += label;
    name += ']';
  }
  return name;
}

void Harness::begin_measure() {
  obs::CounterRegistry::instance().reset();
  perf_->start();
}

void Harness::end_measure(const std::string& variant, Params params, const TimingResult& res) {
  perf_->stop();
  BenchRecord rec;
  rec.variant = variant;
  rec.params = std::move(params);
  rec.timing = res;
  rec.has_timing = true;
  rec.perf = perf_->read();
  rec.counters = obs::CounterRegistry::instance().snapshot(/*nonzero_only=*/true);
  records_.push_back(std::move(rec));
}

void Harness::sim(const std::string& variant, Params params, const memsim::SimStats& stats) {
  BenchRecord rec;
  rec.variant = variant;
  rec.params = std::move(params);
  rec.sim = stats;
  rec.has_sim = true;
  rec.counters = obs::CounterRegistry::instance().snapshot(/*nonzero_only=*/true);
  obs::CounterRegistry::instance().reset();
  records_.push_back(std::move(rec));
}

void Harness::note(const std::string& variant, Params params) {
  BenchRecord rec;
  rec.variant = variant;
  rec.params = std::move(params);
  rec.counters = obs::CounterRegistry::instance().snapshot(/*nonzero_only=*/true);
  records_.push_back(std::move(rec));
}

void Harness::print_stats_table() const {
  Table t({"variant", "params", "best (s)", "median (s)", "mean (s)", "stddev (s)", "reps"});
  bool any = false;
  for (const BenchRecord& r : records_) {
    if (!r.has_timing) continue;
    any = true;
    t.add_row({r.variant, params_label(r.params), fmt(r.timing.best_s, 4),
               fmt(r.timing.median_s, 4), fmt(r.timing.mean_s, 4), fmt(r.timing.stddev_s, 4),
               std::to_string(r.timing.reps)});
  }
  if (!any) return;
  os_ << "\ntiming stats (mean ± sample stddev over reps):\n";
  t.print(os_, opt_.csv);
}

bool Harness::write_json_report() const {
  std::ofstream f(opt_.json);
  if (!f) {
    std::cerr << "cannot write JSON report to " << opt_.json << "\n";
    return false;
  }
  json::Writer w(f);
  w.begin_object();
  w.key("exhibit").value(exhibit_);
  w.key("title").value(title_);
  if (!opt_.tag.empty()) w.key("tag").value(opt_.tag);
  w.key("options").begin_object();
  w.key("full").value(opt_.full);
  w.key("reps").value(opt_.reps);
  w.key("seed").value(opt_.seed);
  w.key("machine").value(opt_.machine);
  w.end_object();
  w.key("perf_available").value(perf_->available());
  w.key("instrumented").value(
#if defined(CACHEGRAPH_INSTRUMENT)
      true
#else
      false
#endif
  );
  w.key("records").begin_array();
  for (const BenchRecord& r : records_) {
    w.begin_object();
    w.key("variant").value(r.variant);
    w.key("params").begin_object();
    for (const auto& [k, v] : r.params) w.key(k).value(v);
    w.end_object();
    if (r.has_timing) {
      w.key("timing").begin_object();
      w.key("best_s").value(r.timing.best_s);
      w.key("median_s").value(r.timing.median_s);
      w.key("mean_s").value(r.timing.mean_s);
      w.key("stddev_s").value(r.timing.stddev_s);
      w.key("reps").value(r.timing.reps);
      w.end_object();
    }
    if (r.has_timing && perf_->available()) {
      w.key("perf").begin_object();
      w.key("cycles").value(r.perf.cycles);
      w.key("instructions").value(r.perf.instructions);
      w.key("ipc").value(r.perf.ipc());
      w.key("l1d_loads").value(r.perf.l1d_loads);
      w.key("l1d_misses").value(r.perf.l1d_misses);
      w.key("l1d_miss_rate").value(r.perf.l1d_miss_rate());
      w.key("llc_loads").value(r.perf.llc_loads);
      w.key("llc_misses").value(r.perf.llc_misses);
      w.key("llc_miss_rate").value(r.perf.llc_miss_rate());
      w.key("dtlb_misses").value(r.perf.dtlb_misses);
      w.key("event_mask").value(static_cast<std::uint64_t>(r.perf.mask));
      w.end_object();
    }
    w.key("counters").begin_object();
    for (const auto& [name, v] : r.counters) w.key(name).value(v);
    w.end_object();
    if (r.has_sim) w.key("sim").raw(r.sim.to_json());
    w.end_object();
  }
  w.end_array();
  if (!opt_.metrics.empty()) {
    // The full metrics export (histogram percentiles included) rides
    // along in the report when the caller opted into --metrics —
    // CI's smoke job asserts percentile monotonicity on this.
    std::ostringstream metrics_json;
    obs::MetricsRegistry::instance().render_json(metrics_json);
    w.key("metrics").raw(metrics_json.str());
  }
  w.end_object();
  f << "\n";
  return static_cast<bool>(f);
}

void Harness::finish() {
  if (finished_) return;
  finished_ = true;
  if (opt_.stats) print_stats_table();
  if (!opt_.json.empty() && write_json_report()) {
    os_ << "\n(JSON report written to " << opt_.json << ")\n";
  }
  if (trace_ != nullptr && !opt_.trace.empty()) {
    if (trace_->write_file(opt_.trace)) {
      os_ << "(trace written to " << opt_.trace
          << " — open in chrome://tracing or https://ui.perfetto.dev)\n";
    } else {
      std::cerr << "cannot write trace to " << opt_.trace << "\n";
    }
  }
  if (!opt_.metrics.empty()) {
    const auto st = obs::MetricsRegistry::instance().write_prometheus_file(opt_.metrics);
    if (st.is_ok()) {
      os_ << "(metrics written to " << opt_.metrics << ")\n";
    } else {
      std::cerr << "cannot write metrics to " << opt_.metrics << ": " << st.message() << "\n";
    }
  }
}

}  // namespace cachegraph::bench
