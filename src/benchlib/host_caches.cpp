#include <fstream>
#include <string>

#include "cachegraph/benchlib/workloads.hpp"

namespace cachegraph::bench {

std::size_t read_sysfs_cache_size(const char* path, std::size_t fallback) {
  std::ifstream f(path);
  if (!f) return fallback;
  std::string text;
  f >> text;
  if (text.empty()) return fallback;
  std::size_t multiplier = 1;
  if (text.back() == 'K') {
    multiplier = 1024;
    text.pop_back();
  } else if (text.back() == 'M') {
    multiplier = 1024 * 1024;
    text.pop_back();
  }
  try {
    const std::size_t v = std::stoul(text) * multiplier;
    // Geometry sanity: the simulator needs power-of-two set counts; the
    // heuristic only uses the size, but round odd sizes (e.g. 48K) down
    // to the nearest power of two to stay conservative.
    std::size_t p = 1;
    while (p * 2 <= v) p *= 2;
    return p;
  } catch (...) {
    return fallback;
  }
}

memsim::CacheConfig host_l1() {
  const std::size_t size = read_sysfs_cache_size(
      "/sys/devices/system/cpu/cpu0/cache/index0/size", 32 * 1024);
  return memsim::CacheConfig{size, 64, 8};
}

memsim::CacheConfig host_l2() {
  const std::size_t size = read_sysfs_cache_size(
      "/sys/devices/system/cpu/cpu0/cache/index2/size", 1024 * 1024);
  return memsim::CacheConfig{size, 64, 16};
}

}  // namespace cachegraph::bench
