#include "cachegraph/benchlib/options.hpp"

#include <cstdlib>
#include <iostream>
#include <string_view>

namespace cachegraph::bench {

memsim::MachineConfig Options::machine_config() const {
  if (machine == "pentium3") return memsim::pentium3();
  if (machine == "ultrasparc3") return memsim::ultrasparc3();
  if (machine == "alpha21264") return memsim::alpha21264();
  if (machine == "mips") return memsim::mips_r12000();
  if (machine == "simplescalar") return memsim::simplescalar_default();
  if (machine == "modern") return memsim::modern_host();
  std::cerr << "unknown --machine=" << machine
            << " (want pentium3|ultrasparc3|alpha21264|mips|simplescalar|modern)\n";
  std::exit(2);
}

namespace {

/// Matches "--flag=value" or "--flag value" (consuming the next argv
/// entry); returns true and stores into `out` on a match.
bool parse_string_flag(std::string_view flag, int argc, char** argv, int& i, std::string& out) {
  const std::string_view arg = argv[i];
  const std::string eq = std::string(flag) + "=";
  if (arg.starts_with(eq)) {
    out = std::string(arg.substr(eq.size()));
    return true;
  }
  if (arg == flag) {
    if (i + 1 >= argc) {
      std::cerr << flag << " needs a value\n";
      std::exit(2);
    }
    out = argv[++i];
    return true;
  }
  return false;
}

}  // namespace

Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--full") {
      o.full = true;
    } else if (arg == "--csv") {
      o.csv = true;
    } else if (arg == "--stats") {
      o.stats = true;
    } else if (arg.starts_with("--reps=")) {
      o.reps = std::atoi(arg.substr(7).data());
      if (o.reps < 1) o.reps = 1;
    } else if (arg.starts_with("--seed=")) {
      o.seed = static_cast<std::uint64_t>(std::atoll(arg.substr(7).data()));
    } else if (arg.starts_with("--machine=")) {
      o.machine = std::string(arg.substr(10));
    } else if (parse_string_flag("--json", argc, argv, i, o.json) ||
               parse_string_flag("--tag", argc, argv, i, o.tag) ||
               parse_string_flag("--trace", argc, argv, i, o.trace)) {
      // handled
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: " << argv[0]
          << " [--full] [--csv] [--stats] [--reps=N] [--seed=N] [--machine=NAME]\n"
             "       [--json PATH] [--tag LABEL] [--trace PATH]\n"
             "\n"
             "  --full         paper-scale problem sizes (default: quick sizes)\n"
             "  --csv          machine-readable table output\n"
             "  --stats        also print a mean +/- stddev timing table\n"
             "  --reps=N       timing repetitions (best is reported; default 3)\n"
             "  --seed=N       workload seed (default 42)\n"
             "  --machine=M    simulated cache preset: pentium3|ultrasparc3|\n"
             "                 alpha21264|mips|simplescalar|modern\n"
             "  --json PATH    write a JSON report: wall-clock stats, hardware perf\n"
             "                 counters (or \"perf_available\": false), instrumentation\n"
             "                 counters, and simulated cache stats where applicable\n"
             "  --tag LABEL    free-form label copied into the JSON report\n"
             "  --trace PATH   write a Chrome trace_event timeline (open in\n"
             "                 chrome://tracing or https://ui.perfetto.dev)\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag: " << arg << " (try --help)\n";
      std::exit(2);
    }
  }
  return o;
}

}  // namespace cachegraph::bench
