#include "cachegraph/benchlib/options.hpp"

#include <cstdlib>
#include <iostream>
#include <string_view>

namespace cachegraph::bench {

memsim::MachineConfig Options::machine_config() const {
  if (machine == "pentium3") return memsim::pentium3();
  if (machine == "ultrasparc3") return memsim::ultrasparc3();
  if (machine == "alpha21264") return memsim::alpha21264();
  if (machine == "mips") return memsim::mips_r12000();
  if (machine == "simplescalar") return memsim::simplescalar_default();
  if (machine == "modern") return memsim::modern_host();
  std::cerr << "unknown --machine=" << machine
            << " (want pentium3|ultrasparc3|alpha21264|mips|simplescalar|modern)\n";
  std::exit(2);
}

namespace {

/// Matches "--flag=value" or "--flag value" (consuming the next argv
/// entry); returns true and stores into `out` on a match.
bool parse_string_flag(std::string_view flag, int argc, char** argv, int& i, std::string& out) {
  const std::string_view arg = argv[i];
  const std::string eq = std::string(flag) + "=";
  if (arg.starts_with(eq)) {
    out = std::string(arg.substr(eq.size()));
    return true;
  }
  if (arg == flag) {
    if (i + 1 >= argc) {
      std::cerr << flag << " needs a value\n";
      std::exit(2);
    }
    out = argv[++i];
    return true;
  }
  return false;
}

/// Strict "--flag=payload" integer parse; usage error (exit 2) on
/// anything from_chars does not consume completely.
template <typename T>
T parse_integer_or_die(std::string_view flag, std::string_view payload) {
  T v{};
  if (!parse_integer(payload, v)) {
    std::cerr << flag << " wants an integer, got '" << payload << "' (try --help)\n";
    std::exit(2);
  }
  return v;
}

}  // namespace

Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--full") {
      o.full = true;
    } else if (arg == "--csv") {
      o.csv = true;
    } else if (arg == "--stats") {
      o.stats = true;
    } else if (arg.starts_with("--reps=")) {
      // NB: the old atoi(arg.substr(7).data()) parsed past the
      // string_view's end (substr().data() still points into the full
      // argv string — here that was benign, "=" terminated the number —
      // and silently turned garbage into 1 rep).
      o.reps = parse_integer_or_die<int>("--reps", arg.substr(7));
      if (o.reps < 1) {
        std::cerr << "--reps wants a positive count, got " << o.reps << " (try --help)\n";
        std::exit(2);
      }
    } else if (arg.starts_with("--seed=")) {
      o.seed = parse_integer_or_die<std::uint64_t>("--seed", arg.substr(7));
    } else if (arg.starts_with("--threads=")) {
      o.threads = parse_integer_or_die<int>("--threads", arg.substr(10));
      if (o.threads < 0) {
        std::cerr << "--threads wants a count >= 0, got " << o.threads << " (try --help)\n";
        std::exit(2);
      }
    } else if (arg.starts_with("--machine=")) {
      o.machine = std::string(arg.substr(10));
    } else if (parse_string_flag("--json", argc, argv, i, o.json) ||
               parse_string_flag("--tag", argc, argv, i, o.tag) ||
               parse_string_flag("--trace", argc, argv, i, o.trace) ||
               parse_string_flag("--metrics", argc, argv, i, o.metrics)) {
      // handled
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: " << argv[0]
          << " [--full] [--csv] [--stats] [--reps=N] [--seed=N] [--threads=N]\n"
             "       [--machine=NAME] [--json PATH] [--tag LABEL] [--trace PATH]\n"
             "       [--metrics PATH]\n"
             "\n"
             "  --full         paper-scale problem sizes (default: quick sizes)\n"
             "  --csv          machine-readable table output\n"
             "  --stats        also print a mean +/- stddev timing table\n"
             "  --reps=N       timing repetitions (best is reported; default 3)\n"
             "  --seed=N       workload seed (default 42)\n"
             "  --threads=N    worker threads for the parallel FW benches\n"
             "                 (default 0 = bench-specific: thread ladder / all cores)\n"
             "  --machine=M    simulated cache preset: pentium3|ultrasparc3|\n"
             "                 alpha21264|mips|simplescalar|modern\n"
             "  --json PATH    write a JSON report: wall-clock stats, hardware perf\n"
             "                 counters (or \"perf_available\": false), instrumentation\n"
             "                 counters, and simulated cache stats where applicable\n"
             "  --tag LABEL    free-form label copied into the JSON report\n"
             "  --trace PATH   write a Chrome trace_event timeline (open in\n"
             "                 chrome://tracing or https://ui.perfetto.dev)\n"
             "  --metrics PATH write the telemetry registry's Prometheus text\n"
             "                 exposition to PATH at exit (with --json, the JSON\n"
             "                 metrics export is folded into the report too)\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag: " << arg << " (try --help)\n";
      std::exit(2);
    }
  }
  return o;
}

}  // namespace cachegraph::bench
