#include "cachegraph/benchlib/options.hpp"

#include <cstdlib>
#include <iostream>
#include <string_view>

namespace cachegraph::bench {

memsim::MachineConfig Options::machine_config() const {
  if (machine == "pentium3") return memsim::pentium3();
  if (machine == "ultrasparc3") return memsim::ultrasparc3();
  if (machine == "alpha21264") return memsim::alpha21264();
  if (machine == "mips") return memsim::mips_r12000();
  if (machine == "simplescalar") return memsim::simplescalar_default();
  if (machine == "modern") return memsim::modern_host();
  std::cerr << "unknown --machine=" << machine
            << " (want pentium3|ultrasparc3|alpha21264|mips|simplescalar|modern)\n";
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--full") {
      o.full = true;
    } else if (arg == "--csv") {
      o.csv = true;
    } else if (arg.starts_with("--reps=")) {
      o.reps = std::atoi(arg.substr(7).data());
      if (o.reps < 1) o.reps = 1;
    } else if (arg.starts_with("--seed=")) {
      o.seed = static_cast<std::uint64_t>(std::atoll(arg.substr(7).data()));
    } else if (arg.starts_with("--machine=")) {
      o.machine = std::string(arg.substr(10));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--full] [--csv] [--reps=N] [--seed=N] [--machine=NAME]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag: " << arg << " (try --help)\n";
      std::exit(2);
    }
  }
  return o;
}

}  // namespace cachegraph::bench
