// Quickstart: the one-page tour of the cachegraph public API.
//
//   $ ./quickstart
//
// Covers: building a graph, all-pairs shortest paths with the
// cache-oblivious recursive Floyd-Warshall, single-source shortest
// paths with Dijkstra over the adjacency array, an MST with Prim, and a
// bipartite matching with the two-phase cache-friendly algorithm.
#include <iostream>

#include "cachegraph/apsp/fw_iterative.hpp"
#include "cachegraph/apsp/run.hpp"
#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/graph/adjacency_matrix.hpp"
#include "cachegraph/graph/generators.hpp"
#include "cachegraph/matching/cache_friendly.hpp"
#include "cachegraph/mst/prim.hpp"
#include "cachegraph/sssp/dijkstra.hpp"

int main() {
  using namespace cachegraph;

  // --- 1. Build a small weighted digraph. -------------------------------
  graph::EdgeListGraph<int> g(6);
  g.add_edge(0, 1, 7);
  g.add_edge(0, 2, 9);
  g.add_edge(0, 5, 14);
  g.add_edge(1, 2, 10);
  g.add_edge(1, 3, 15);
  g.add_edge(2, 3, 11);
  g.add_edge(2, 5, 2);
  g.add_edge(3, 4, 6);
  g.add_edge(5, 4, 9);

  // --- 2. All-pairs shortest paths (cache-oblivious recursive FW). ------
  const graph::AdjacencyMatrix<int> dense(g);
  const auto apsp =
      apsp::run_fw(apsp::FwVariant::kRecursiveMorton, dense.weights(), 6, /*block=*/2);
  std::cout << "APSP distance 0 -> 4: " << apsp[0 * 6 + 4] << " (expect 20)\n";

  // With path reconstruction:
  auto d = dense.weights();
  std::vector<vertex_t> next(36);
  apsp::fw_iterative_with_paths(d.data(), next.data(), 6);
  std::cout << "shortest path 0 -> 4:";
  for (const vertex_t v : apsp::extract_path(next.data(), 6, 0, 4)) std::cout << ' ' << v;
  std::cout << " (expect 0 2 5 4)\n";

  // --- 3. Single-source shortest paths (Dijkstra + adjacency array). ----
  const graph::AdjacencyArray<int> arr(g);
  const auto sssp = sssp::dijkstra(arr, /*source=*/0);
  std::cout << "Dijkstra dist to 3: " << sssp.dist[3] << " via parent " << sssp.parent[3]
            << '\n';

  // --- 4. Minimum spanning tree (Prim on an undirected graph). ----------
  const auto ug = graph::random_undirected<int>(64, 0.2, /*seed=*/7);
  const auto mst = mst::prim(graph::AdjacencyArray<int>(ug), 0);
  std::cout << "MST weight of a random 64-vertex graph: " << mst.total_weight << " ("
            << mst.tree_vertices << " vertices spanned)\n";

  // --- 5. Bipartite matching (two-phase cache-friendly). ----------------
  const auto bg = graph::random_bipartite(128, 128, 0.08, /*seed=*/3);
  matching::Matching m;
  const auto stats =
      matching::cache_friendly_matching(bg, matching::two_way_partition(bg), m);
  std::cout << "maximum matching: " << stats.final_matched << " of 128 (local phase found "
            << stats.local_matched << ")\n";
  return 0;
}
