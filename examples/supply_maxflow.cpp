// Maximum flow on a supply network — exercises the Ford-Fulkerson
// extension the paper's conclusion points at ("shares the same
// structure with the matching algorithm").
//
//   $ ./supply_maxflow [warehouses] [stores] [seed]
//
// Warehouses ship through a random distribution network to stores;
// the program computes the maximum total shipment and the bottleneck
// edges (saturated arcs on the min cut side).
#include <iostream>
#include <string>
#include <vector>

#include "cachegraph/flow/max_flow.hpp"
#include "cachegraph/graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace cachegraph;
  const vertex_t warehouses = argc > 1 ? std::stoi(argv[1]) : 8;
  const vertex_t stores = argc > 2 ? std::stoi(argv[2]) : 8;
  const std::uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 17;

  // Network: super-source -> warehouses -> hub layer -> stores -> sink.
  const vertex_t hubs = 16;
  const vertex_t n = 2 + warehouses + hubs + stores;
  const vertex_t s = 0;
  const vertex_t t = 1;
  const vertex_t w0 = 2, h0 = w0 + warehouses, st0 = h0 + hubs;

  flow::FlowNetwork<int> net(n);
  Rng rng(seed);
  std::vector<std::pair<vertex_t, vertex_t>> arcs;  // for reporting
  auto arc = [&](vertex_t a, vertex_t b, int cap) {
    net.add_arc(a, b, cap);
    arcs.emplace_back(a, b);
  };

  for (vertex_t w = 0; w < warehouses; ++w) {
    arc(s, w0 + w, static_cast<int>(rng.uniform_int(50, 150)));  // supply
    for (vertex_t h = 0; h < hubs; ++h) {
      if (rng.chance(0.4)) arc(w0 + w, h0 + h, static_cast<int>(rng.uniform_int(10, 60)));
    }
  }
  for (vertex_t h = 0; h < hubs; ++h) {
    for (vertex_t v = 0; v < stores; ++v) {
      if (rng.chance(0.4)) arc(h0 + h, st0 + v, static_cast<int>(rng.uniform_int(10, 60)));
    }
  }
  for (vertex_t v = 0; v < stores; ++v) {
    arc(st0 + v, t, static_cast<int>(rng.uniform_int(40, 120)));  // demand
  }

  const int total = net.max_flow(s, t);
  std::cout << "network: " << warehouses << " warehouses, " << hubs << " hubs, " << stores
            << " stores, " << arcs.size() << " arcs\n";
  std::cout << "maximum total shipment: " << total << " units\n";

  std::cout << "shipments into stores:\n";
  for (std::size_t k = 0; k < arcs.size(); ++k) {
    if (arcs[k].second == t && net.flow_on(k) > 0) {
      std::cout << "  store " << (arcs[k].first - st0) << " receives " << net.flow_on(k)
                << '\n';
    }
  }
  return 0;
}
