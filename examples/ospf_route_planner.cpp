// OSPF route planner — the paper's introduction names the OSPF routing
// protocol as a motivating Dijkstra workload: every router computes
// shortest paths to every other router from periodically exchanged
// link-state data.
//
//   $ ./ospf_route_planner [num_routers] [avg_degree] [seed]
//
// Simulates a link-state database (random connected topology with
// latency weights), computes this router's shortest-path tree with
// Dijkstra over both graph representations, prints a routing-table
// excerpt, and reports the representation speedup on this host.
#include <atomic>
#include <iomanip>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "cachegraph/common/timer.hpp"
#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/graph/adjacency_list.hpp"
#include "cachegraph/graph/generators.hpp"
#include "cachegraph/parallel/task_pool.hpp"
#include "cachegraph/query/dynamic_overlay.hpp"
#include "cachegraph/query/result_cache.hpp"
#include "cachegraph/sssp/batch_engine.hpp"
#include "cachegraph/sssp/dijkstra.hpp"

int main(int argc, char** argv) {
  using namespace cachegraph;
  const vertex_t routers = argc > 1 ? std::stoi(argv[1]) : 4096;
  const int avg_degree = argc > 2 ? std::stoi(argv[2]) : 16;
  const std::uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 2002;

  // Link-state database: connected random topology, weights = link
  // latency in microseconds.
  const double density =
      std::min(1.0, static_cast<double>(avg_degree) / static_cast<double>(routers - 1));
  const auto lsdb = graph::random_undirected<int>(routers, density, seed, 10, 5000);
  std::cout << "link-state database: " << routers << " routers, " << lsdb.num_edges() / 2
            << " links\n";

  // SPF calculation on this router (router 0), with both representations.
  const graph::AdjacencyArray<int> arr(lsdb);
  const graph::AdjacencyList<int> list(lsdb);

  Timer t1;
  const auto spf = sssp::dijkstra(arr, 0);
  const double t_arr = t1.seconds();
  Timer t2;
  const auto spf_list = sssp::dijkstra(list, 0);
  const double t_list = t2.seconds();

  // The two runs must agree, of course.
  if (spf.dist != spf_list.dist) {
    std::cerr << "representation mismatch!\n";
    return 1;
  }

  // Routing table: next hop toward each destination = first hop on the
  // shortest-path tree.
  auto next_hop = [&](vertex_t dst) {
    vertex_t hop = dst;
    while (spf.parent[static_cast<std::size_t>(hop)] != 0 &&
           spf.parent[static_cast<std::size_t>(hop)] != kNoVertex) {
      hop = spf.parent[static_cast<std::size_t>(hop)];
    }
    return spf.parent[static_cast<std::size_t>(hop)] == 0 ? hop : kNoVertex;
  };

  std::cout << "\nrouting table of router 0 (first 10 destinations):\n";
  std::cout << "  dest   cost(us)  next-hop\n";
  for (vertex_t dst = 1; dst <= 10 && dst < routers; ++dst) {
    std::cout << "  " << std::setw(5) << dst << "  " << std::setw(8)
              << spf.dist[static_cast<std::size_t>(dst)] << "  " << std::setw(8)
              << next_hop(dst) << '\n';
  }

  std::cout << "\nSPF time: adjacency array " << t_arr * 1e3 << " ms vs adjacency list "
            << t_list * 1e3 << " ms (" << t_list / t_arr << "x — the Section 3.2 effect)\n";

  // Fleet SPF: in a real OSPF area *every* router recomputes its tree
  // after a link-state change. The batch engine runs the whole fleet's
  // SPF calculations over the shared link-state database, reusing one
  // scratch per pool slot instead of allocating per router.
  const vertex_t fleet = std::min<vertex_t>(routers, 256);
  std::vector<vertex_t> fleet_sources(static_cast<std::size_t>(fleet));
  std::iota(fleet_sources.begin(), fleet_sources.end(), vertex_t{0});

  parallel::TaskPool pool(0);  // hardware concurrency
  sssp::BatchEngine<int> engine(arr);
  std::atomic<std::uint64_t> reachable{0};
  Timer t3;
  engine.run_batch(fleet_sources, pool,
                   [&reachable](std::size_t, vertex_t,
                                const sssp::BatchEngine<int>::Scratch& sc) {
                     reachable.fetch_add(sc.touched().size(), std::memory_order_relaxed);
                   });
  const double t_fleet = t3.seconds();
  const auto stats = engine.stats();

  std::cout << "\nfleet SPF: " << fleet << " routers in " << t_fleet * 1e3 << " ms on "
            << pool.num_threads() << " thread(s) — "
            << t_fleet * 1e3 / static_cast<double>(fleet) << " ms/router, "
            << reachable.load() / static_cast<std::uint64_t>(fleet)
            << " reachable routers each\n";
  std::cout << "scratch buffers: " << stats.scratch_allocs << " allocated, "
            << stats.scratch_reuses << " reuses across " << stats.queries << " queries\n";

  // Link flap: a link's latency degrades, the LSA floods, and the area
  // re-converges. Naively every router re-runs SPF; with the query
  // layer's result cache only the routers whose component the flap
  // touched recompute — everyone else's cached tree is provably still
  // valid (component stamp unchanged). On a connected area that is
  // still everyone, but real topologies partition (multi-area, stub
  // networks, down links), and the protocol's cost then tracks the
  // blast radius instead of the fleet size.
  query::DynamicOverlay<int> overlay(arr);
  query::ResultCache<int> cache(overlay);
  Timer t4;
  (void)cache.ensure(fleet_sources, pool);
  const double t_converge = t4.seconds();
  std::cout << "\nlink flap scenario:\n  initial convergence (" << fleet << " trees): "
            << t_converge * 1e3 << " ms\n";

  // Take down one link — both directions — then re-converge.
  const auto& flapped = lsdb.edges().front();
  (void)overlay.remove_edge(flapped.from, flapped.to);
  (void)overlay.remove_edge(flapped.to, flapped.from);
  Timer t5;
  const auto down_report = cache.ensure(fleet_sources, pool);
  const double t_down = t5.seconds();
  std::cout << "  link " << flapped.from << "<->" << flapped.to << " down: "
            << down_report.recomputed << " routers recomputed, " << down_report.hits
            << " served from cache, " << t_down * 1e3 << " ms\n";

  // The link comes back: the affected component's stamp moves again,
  // the same routers re-converge, and the cache is fully warm after.
  overlay.insert_edge(flapped.from, flapped.to, flapped.weight);
  overlay.insert_edge(flapped.to, flapped.from, flapped.weight);
  Timer t6;
  const auto up_report = cache.ensure(fleet_sources, pool);
  const double t_up = t6.seconds();
  std::cout << "  link restored: " << up_report.recomputed << " routers recomputed in "
            << t_up * 1e3 << " ms\n";
  const auto quiet = cache.ensure(fleet_sources, pool);
  std::cout << "  steady state: " << quiet.hits << "/" << fleet
            << " SPF trees served from cache, 0 recomputed\n";
  return 0;
}
