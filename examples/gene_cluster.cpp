// Correlated gene-cluster extraction — the paper's introduction cites
// Nakaya et al.: a graph encodes relationships among genes; the first
// step of cluster extraction computes the distances between all pairs
// of genes with the Floyd-Warshall algorithm.
//
//   $ ./gene_cluster [num_genes] [radius] [seed]
//
// Generates a synthetic gene-relationship graph, computes all-pairs
// distances with the cache-oblivious recursive FW (timing it against
// the baseline), then reports clusters = maximal groups of genes that
// are mutually within the given distance radius (connected components
// of the thresholded closeness graph).
#include <iostream>
#include <string>
#include <vector>

#include "cachegraph/apsp/run.hpp"
#include "cachegraph/benchlib/workloads.hpp"
#include "cachegraph/common/timer.hpp"
#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/graph/adjacency_matrix.hpp"
#include "cachegraph/graph/generators.hpp"
#include "cachegraph/traversal/traversal.hpp"

int main(int argc, char** argv) {
  using namespace cachegraph;
  const vertex_t genes = argc > 1 ? std::stoi(argv[1]) : 512;
  const int radius = argc > 2 ? std::stoi(argv[2]) : 40;
  const std::uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 11;
  const auto n = static_cast<std::size_t>(genes);

  // Synthetic relationship graph: sparse, weights = dissimilarity.
  const auto rel = graph::random_undirected<int>(genes, 0.02, seed, 5, 60);
  const graph::AdjacencyMatrix<int> dense(rel);
  std::cout << genes << " genes, " << rel.num_edges() / 2 << " measured relations\n";

  // Step 1 (the paper's FW use case): all-pairs distances.
  const std::size_t block = bench::host_block(sizeof(int));
  Timer t_rec;
  const auto dist =
      apsp::run_fw(apsp::FwVariant::kRecursiveMorton, dense.weights(), n, block);
  const double rec_s = t_rec.seconds();
  Timer t_base;
  const auto dist_base = apsp::run_fw(apsp::FwVariant::kBaseline, dense.weights(), n, block);
  const double base_s = t_base.seconds();
  if (dist != dist_base) {
    std::cerr << "FW variants disagree!\n";
    return 1;
  }
  std::cout << "APSP: recursive FW " << rec_s << " s, baseline " << base_s << " s\n";

  // Step 2: threshold distances into a closeness graph and extract
  // clusters as connected components.
  graph::EdgeListGraph<int> close(genes);
  for (vertex_t i = 0; i < genes; ++i) {
    for (vertex_t j = 0; j < genes; ++j) {
      if (i != j &&
          dist[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] <= radius) {
        close.add_edge(i, j, 1);
      }
    }
  }
  const auto [comp, count] =
      traversal::connected_components(graph::AdjacencyArray<int>(close));

  std::vector<std::size_t> size(static_cast<std::size_t>(count), 0);
  for (const vertex_t c : comp) ++size[static_cast<std::size_t>(c)];
  std::size_t biggest = 0, clusters = 0;
  for (const std::size_t s : size) {
    if (s > biggest) biggest = s;
    clusters += (s >= 2);
  }
  std::cout << "radius " << radius << ": " << clusters << " clusters of >=2 genes; largest has "
            << biggest << " members\n";
  return 0;
}
