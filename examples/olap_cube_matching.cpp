// OLAP cube computation — the paper's introduction cites Sarawagi et
// al.: bipartite matching is the key algorithm when computing the cube
// operator (assigning group-by views to computation slots so that each
// view is derived from a compatible parent).
//
//   $ ./olap_cube_matching [views] [slots_per_view_density] [seed]
//
// Builds a synthetic compatibility graph between group-by views and
// materialization slots, then finds the assignment (maximum matching)
// with the two-phase cache-friendly algorithm, comparing against the
// primitive baseline.
#include <iostream>
#include <string>

#include "cachegraph/common/timer.hpp"
#include "cachegraph/graph/generators.hpp"
#include "cachegraph/matching/cache_friendly.hpp"

int main(int argc, char** argv) {
  using namespace cachegraph;
  using namespace cachegraph::matching;
  const vertex_t views = argc > 1 ? std::stoi(argv[1]) : 2048;
  const double density = argc > 2 ? std::stod(argv[2]) : 0.05;
  const std::uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 5;

  // Compatibility graph: view i can be computed in slot j.
  const auto compat = graph::random_bipartite(views, views, density, seed);
  std::cout << views << " group-by views x " << views << " slots, "
            << compat.edges.size() << " compatible pairs\n";

  // Baseline: the primitive augmenting-path matcher.
  const BipartiteCsr rep(compat);
  Timer tb;
  Matching base = Matching::empty(views, views);
  primitive_matching(rep, base);
  const double base_s = tb.seconds();

  // Optimized: partition first, match locally, finish globally.
  Timer to;
  const Partition part = two_way_partition(compat);
  Matching opt;
  const auto stats = cache_friendly_matching(compat, part, opt);
  const double opt_s = to.seconds();

  if (base.size() != stats.final_matched) {
    std::cerr << "matchers disagree on cardinality!\n";
    return 1;
  }
  std::cout << "assigned " << stats.final_matched << " views (" << stats.local_matched
            << " already in the cache-local phase)\n";
  std::cout << "baseline " << base_s << " s; two-phase " << opt_s << " s ("
            << base_s / opt_s << "x)\n";

  // A few concrete assignments.
  std::cout << "sample assignment:";
  int shown = 0;
  for (vertex_t v = 0; v < views && shown < 5; ++v) {
    if (opt.match_left[static_cast<std::size_t>(v)] != kNoVertex) {
      std::cout << " view" << v << "->slot" << opt.match_left[static_cast<std::size_t>(v)];
      ++shown;
    }
  }
  std::cout << '\n';
  return 0;
}
