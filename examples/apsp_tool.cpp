// apsp_tool — command-line all-pairs shortest paths over DIMACS files.
//
//   $ ./apsp_tool input.gr [variant] [block]
//       variant: baseline | tiled | recursive (default: recursive)
//   $ ./apsp_tool --selftest      # generate, solve, verify, report
//
// Reads a DIMACS "p sp" graph, runs the chosen Floyd-Warshall variant,
// and prints source, destination, and distance for every reachable pair
// (CSV on stdout, diagnostics on stderr).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cachegraph/apsp/run.hpp"
#include "cachegraph/benchlib/workloads.hpp"
#include "cachegraph/common/timer.hpp"
#include "cachegraph/graph/adjacency_matrix.hpp"
#include "cachegraph/graph/generators.hpp"
#include "cachegraph/graph/io.hpp"

namespace {

using namespace cachegraph;

apsp::FwVariant parse_variant(const std::string& name) {
  if (name == "baseline") return apsp::FwVariant::kBaseline;
  if (name == "tiled") return apsp::FwVariant::kTiledBdl;
  if (name == "recursive") return apsp::FwVariant::kRecursiveMorton;
  std::cerr << "unknown variant '" << name << "' (want baseline|tiled|recursive)\n";
  std::exit(2);
}

int run_on_graph(const graph::EdgeListGraph<int>& g, apsp::FwVariant variant,
                 std::size_t block) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  const graph::AdjacencyMatrix<int> dense(g);
  Timer timer;
  const auto dist = apsp::run_fw(variant, dense.weights(), n, block);
  std::cerr << "solved " << n << "x" << n << " APSP (" << apsp::variant_name(variant)
            << ", B=" << block << ") in " << timer.seconds() << " s\n";

  std::cout << "from,to,distance\n";
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && !is_inf(dist[i * n + j])) {
        std::cout << i << ',' << j << ',' << dist[i * n + j] << '\n';
      }
    }
  }
  return 0;
}

int selftest() {
  // Generate, write, re-read, solve with every variant, cross-check.
  const auto g = graph::random_digraph<int>(64, 0.2, 99);
  std::stringstream ss;
  graph::write_dimacs(ss, g, "apsp_tool selftest");
  const auto back = graph::read_dimacs<int>(ss);
  const auto n = static_cast<std::size_t>(back.num_vertices());
  const graph::AdjacencyMatrix<int> dense(back);
  const auto a = apsp::run_fw(apsp::FwVariant::kBaseline, dense.weights(), n, 8);
  const auto b = apsp::run_fw(apsp::FwVariant::kTiledBdl, dense.weights(), n, 8);
  const auto c = apsp::run_fw(apsp::FwVariant::kRecursiveMorton, dense.weights(), n, 8);
  if (a != b || a != c) {
    std::cerr << "selftest FAILED: variants disagree\n";
    return 1;
  }
  std::cerr << "selftest passed: 3 variants agree on a 64-vertex DIMACS round trip\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--selftest") return selftest();
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " input.gr [baseline|tiled|recursive] [block]\n"
              << "       " << argv[0] << " --selftest\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cannot open " << argv[1] << '\n';
    return 2;
  }
  const auto g = cachegraph::graph::read_dimacs<int>(in);
  const auto variant = parse_variant(argc > 2 ? argv[2] : "recursive");
  const std::size_t block = argc > 3 ? std::stoul(argv[3])
                                     : cachegraph::bench::host_block(sizeof(int));
  return run_on_graph(g, variant, block);
}
