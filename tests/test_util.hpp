// Shared helpers for the test suite: deterministic random weight
// matrices and an independent reference Floyd-Warshall used as the
// oracle (deliberately written as differently as possible from the
// library kernels).
#pragma once

#include <cctype>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "cachegraph/common/rng.hpp"
#include "cachegraph/common/types.hpp"

namespace cachegraph::testutil {

/// Random directed weight matrix: diagonal 0, each off-diagonal edge
/// present with probability `density` and weight in [1, max_w].
template <Weight W>
std::vector<W> random_weight_matrix(std::size_t n, double density, std::uint64_t seed,
                                    W max_w = W{100}) {
  std::vector<W> w(n * n, inf<W>());
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    w[i * n + i] = W{0};
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.chance(density)) {
        w[i * n + j] = static_cast<W>(rng.uniform_int(1, static_cast<std::int64_t>(max_w)));
      }
    }
  }
  return w;
}

/// Minimal JSON well-formedness checker (objects, arrays, strings,
/// numbers, true/false/null). Returns true iff `text` is one complete
/// JSON value. Deliberately independent of the library's json::Writer
/// so the two cannot share a bug.
inline bool json_is_valid(const std::string& text) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' || text[i] == '\r')) {
      ++i;
    }
  };
  const std::function<bool()> value = [&]() -> bool {
    skip_ws();
    if (i >= text.size()) return false;
    const char c = text[i];
    if (c == '{') {
      ++i;
      skip_ws();
      if (i < text.size() && text[i] == '}') {
        ++i;
        return true;
      }
      while (true) {
        skip_ws();
        if (i >= text.size() || text[i] != '"' || !value()) return false;  // key
        skip_ws();
        if (i >= text.size() || text[i] != ':') return false;
        ++i;
        if (!value()) return false;
        skip_ws();
        if (i < text.size() && text[i] == ',') {
          ++i;
          continue;
        }
        if (i < text.size() && text[i] == '}') {
          ++i;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++i;
      skip_ws();
      if (i < text.size() && text[i] == ']') {
        ++i;
        return true;
      }
      while (true) {
        if (!value()) return false;
        skip_ws();
        if (i < text.size() && text[i] == ',') {
          ++i;
          continue;
        }
        if (i < text.size() && text[i] == ']') {
          ++i;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      ++i;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\\') ++i;
        ++i;
      }
      if (i >= text.size()) return false;
      ++i;
      return true;
    }
    if (c == 't') {
      if (text.compare(i, 4, "true") != 0) return false;
      i += 4;
      return true;
    }
    if (c == 'f') {
      if (text.compare(i, 5, "false") != 0) return false;
      i += 5;
      return true;
    }
    if (c == 'n') {
      if (text.compare(i, 4, "null") != 0) return false;
      i += 4;
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      ++i;
      while (i < text.size() && (std::isdigit(static_cast<unsigned char>(text[i])) != 0 ||
                                 text[i] == '.' || text[i] == 'e' || text[i] == 'E' ||
                                 text[i] == '+' || text[i] == '-')) {
        ++i;
      }
      return true;
    }
    return false;
  };
  if (!value()) return false;
  skip_ws();
  return i == text.size();
}

/// Reference APSP oracle: straightforward FW with explicit double
/// buffering per k (no in-place tricks, no kernels shared with the
/// library).
template <Weight W>
std::vector<W> reference_apsp(std::vector<W> d, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<W> next = d;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const W via = sat_add(d[i * n + k], d[k * n + j]);
        if (via < next[i * n + j]) next[i * n + j] = via;
      }
    }
    d = std::move(next);
  }
  return d;
}

}  // namespace cachegraph::testutil
