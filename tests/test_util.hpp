// Shared helpers for the test suite: deterministic random weight
// matrices and an independent reference Floyd-Warshall used as the
// oracle (deliberately written as differently as possible from the
// library kernels).
#pragma once

#include <cstddef>
#include <vector>

#include "cachegraph/common/rng.hpp"
#include "cachegraph/common/types.hpp"

namespace cachegraph::testutil {

/// Random directed weight matrix: diagonal 0, each off-diagonal edge
/// present with probability `density` and weight in [1, max_w].
template <Weight W>
std::vector<W> random_weight_matrix(std::size_t n, double density, std::uint64_t seed,
                                    W max_w = W{100}) {
  std::vector<W> w(n * n, inf<W>());
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    w[i * n + i] = W{0};
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.chance(density)) {
        w[i * n + j] = static_cast<W>(rng.uniform_int(1, static_cast<std::int64_t>(max_w)));
      }
    }
  }
  return w;
}

/// Reference APSP oracle: straightforward FW with explicit double
/// buffering per k (no in-place tricks, no kernels shared with the
/// library).
template <Weight W>
std::vector<W> reference_apsp(std::vector<W> d, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<W> next = d;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const W via = sat_add(d[i * n + k], d[k * n + j]);
        if (via < next[i * n + j]) next[i * n + j] = via;
      }
    }
    d = std::move(next);
  }
  return d;
}

}  // namespace cachegraph::testutil
