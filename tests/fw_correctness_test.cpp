// Correctness of every Floyd-Warshall variant against an independent
// oracle, plus kernel aliasing semantics, padding behaviour, path
// reconstruction, and negative-weight handling.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "cachegraph/apsp/run.hpp"
#include "test_util.hpp"

namespace cachegraph::apsp {
namespace {

using testutil::random_weight_matrix;
using testutil::reference_apsp;

const std::vector<FwVariant> kAllVariants = {
    FwVariant::kBaseline,         FwVariant::kTiledRowMajor, FwVariant::kTiledBdl,
    FwVariant::kTiledMorton,      FwVariant::kRecursiveRowMajor,
    FwVariant::kRecursiveBdl,     FwVariant::kRecursiveMorton,
    FwVariant::kParallelBdl,
};

// ------------------------------------------------- hand-checked example

TEST(FwBaseline, HandCheckedFiveVertexGraph) {
  //        0 --3--> 1 --4--> 2
  //        |                 ^
  //        +------12---------+     3 isolated-ish, 4 unreachable
  const std::size_t n = 5;
  const int INF = inf<int>();
  std::vector<int> w = {
      0,   3,   12,  INF, INF,  //
      INF, 0,   4,   INF, INF,  //
      INF, INF, 0,   1,   INF,  //
      INF, INF, INF, 0,   INF,  //
      INF, 2,   INF, INF, 0,
  };
  auto d = w;
  fw_iterative(d.data(), n);
  EXPECT_EQ(d[0 * n + 1], 3);
  EXPECT_EQ(d[0 * n + 2], 7);   // 0->1->2 beats direct 12
  EXPECT_EQ(d[0 * n + 3], 8);   // 0->1->2->3
  EXPECT_EQ(d[4 * n + 3], 7);   // 4->1->2->3
  EXPECT_TRUE(is_inf(d[0 * n + 4]));
  EXPECT_TRUE(is_inf(d[3 * n + 0]));
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(d[i * n + i], 0);
}

// ------------------------------------------ variants vs oracle (TEST_P)

struct VariantCase {
  FwVariant variant;
  std::size_t n;
  std::size_t block;
  double density;
};

class FwVariantsAgree : public ::testing::TestWithParam<VariantCase> {};

TEST_P(FwVariantsAgree, MatchesReferenceInt) {
  const auto& p = GetParam();
  const auto w = random_weight_matrix<int>(p.n, p.density, /*seed=*/p.n * 1000 + p.block);
  const auto expected = reference_apsp(w, p.n);
  const auto got = run_fw(p.variant, w, p.n, p.block);
  EXPECT_EQ(got, expected) << variant_name(p.variant) << " n=" << p.n << " B=" << p.block;
}

TEST_P(FwVariantsAgree, MatchesReferenceDouble) {
  const auto& p = GetParam();
  const auto w = random_weight_matrix<double>(p.n, p.density, /*seed=*/p.n * 77 + p.block);
  const auto expected = reference_apsp(w, p.n);
  const auto got = run_fw(p.variant, w, p.n, p.block);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Different association orders of exact small integers stored in
    // doubles still compare equal; weights are integral-valued.
    EXPECT_EQ(got[i], expected[i]) << variant_name(p.variant);
  }
}

std::vector<VariantCase> variant_cases() {
  std::vector<VariantCase> cases;
  for (const FwVariant v : kAllVariants) {
    for (const std::size_t n : {1u, 2u, 3u, 7u, 8u, 16u, 23u, 32u, 45u}) {
      for (const std::size_t b : {2u, 4u, 8u}) {
        // b > n is fine: padding handles it (see BlockLargerThanProblem).
        for (const double density : {0.15, 0.6}) {
          cases.push_back({v, n, b, density});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FwVariantsAgree, ::testing::ValuesIn(variant_cases()),
                         [](const ::testing::TestParamInfo<VariantCase>& param_info) {
                           const auto& p = param_info.param;
                           std::string name = variant_name(p.variant);
                           for (char& c : name) {
                             if (c == '/' || c == '-' || c == '(' || c == ')' || c == ' ') c = '_';
                           }
                           return name + "_n" + std::to_string(p.n) + "_b" +
                                  std::to_string(p.block) + "_d" +
                                  std::to_string(static_cast<int>(p.density * 100));
                         });

// --------------------------------------------------- specific behaviours

TEST(FwVariants, LargerRandomGraphAllVariantsAgree) {
  const std::size_t n = 96;
  const auto w = random_weight_matrix<int>(n, 0.3, 4242);
  const auto expected = reference_apsp(w, n);
  for (const FwVariant v : kAllVariants) {
    EXPECT_EQ(run_fw(v, w, n, 16), expected) << variant_name(v);
  }
}

TEST(FwVariants, DisconnectedGraphStaysInf) {
  // Two components; cross-component distances must remain inf after
  // every variant (padding must not leak finite values).
  const std::size_t n = 12;
  std::vector<int> w(n * n, inf<int>());
  for (std::size_t i = 0; i < n; ++i) w[i * n + i] = 0;
  for (std::size_t i = 0; i + 1 < 6; ++i) w[i * n + i + 1] = 1;        // component A: 0..5
  for (std::size_t i = 6; i + 1 < 12; ++i) w[i * n + i + 1] = 1;       // component B: 6..11
  for (const FwVariant v : kAllVariants) {
    const auto d = run_fw(v, w, n, 4);
    EXPECT_TRUE(is_inf(d[0 * n + 7])) << variant_name(v);
    EXPECT_TRUE(is_inf(d[11 * n + 2])) << variant_name(v);
    EXPECT_EQ(d[0 * n + 5], 5) << variant_name(v);
    EXPECT_EQ(d[6 * n + 11], 5) << variant_name(v);
  }
}

TEST(FwVariants, NegativeEdgesWithoutNegativeCycles) {
  const std::size_t n = 8;
  std::vector<int> w(n * n, inf<int>());
  for (std::size_t i = 0; i < n; ++i) w[i * n + i] = 0;
  // A DAG with negative edges can't have a negative cycle.
  Rng rng(31);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.chance(0.5)) w[i * n + j] = static_cast<int>(rng.uniform_int(-5, 10));
    }
  }
  const auto expected = reference_apsp(w, n);
  for (const FwVariant v : kAllVariants) {
    EXPECT_EQ(run_fw(v, w, n, 4), expected) << variant_name(v);
  }
  EXPECT_FALSE(has_negative_cycle(expected.data(), n));
}

TEST(FwVariants, NegativeCycleIsDetected) {
  const std::size_t n = 4;
  std::vector<int> w(n * n, inf<int>());
  for (std::size_t i = 0; i < n; ++i) w[i * n + i] = 0;
  w[0 * n + 1] = 1;
  w[1 * n + 2] = -3;
  w[2 * n + 0] = 1;  // cycle 0->1->2->0 weighs -1
  auto d = w;
  fw_iterative(d.data(), n);
  EXPECT_TRUE(has_negative_cycle(d.data(), n));
}

TEST(FwVariants, BlockLargerThanProblemStillWorks) {
  const std::size_t n = 5;
  const auto w = random_weight_matrix<int>(n, 0.5, 99);
  const auto expected = reference_apsp(w, n);
  // B=8 > n=5: everything is padding-handled inside one tile.
  for (const FwVariant v : kAllVariants) {
    EXPECT_EQ(run_fw(v, w, n, 8), expected) << variant_name(v);
  }
}

TEST(FwVariants, IdempotentOnCompletedMatrix) {
  // Running FW on an already-complete distance matrix changes nothing
  // (shortest paths are a fixed point).
  const std::size_t n = 16;
  const auto w = random_weight_matrix<int>(n, 0.4, 123);
  auto d = reference_apsp(w, n);
  const auto again = run_fw(FwVariant::kRecursiveMorton, d, n, 4);
  EXPECT_EQ(again, d);
}

// ----------------------------------------------------- kernel aliasing

TEST(FwiKernel, ThreeDistinctMatricesMatchesTripleLoop) {
  const std::size_t n = 8;
  auto a = random_weight_matrix<int>(n, 0.5, 1);
  const auto b = random_weight_matrix<int>(n, 0.5, 2);
  const auto c = random_weight_matrix<int>(n, 0.5, 3);
  auto expected = a;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        expected[i * n + j] =
            relax_min(expected[i * n + j], b[i * n + k], c[k * n + j]);
      }
    }
  }
  memsim::NullMem mem;
  fwi_kernel(a.data(), n, b.data(), n, c.data(), n, n, mem);
  EXPECT_EQ(a, expected);
}

TEST(FwiKernel, FullAliasingEqualsIterativeFw) {
  const std::size_t n = 12;
  const auto w = random_weight_matrix<int>(n, 0.4, 5);
  auto a = w;
  memsim::NullMem mem;
  fwi_kernel(a.data(), n, a.data(), n, a.data(), n, n, mem);
  EXPECT_EQ(a, reference_apsp(w, n));
}

TEST(FwiKernel, StridedTileViewUpdatesOnlyTheTile) {
  // Run the kernel on the top-left 2x2 tile of a 4x4 matrix; the rest
  // must be untouched.
  const std::size_t n = 4;
  std::vector<int> a = {
      0, 9, 5, 5,  //
      1, 0, 5, 5,  //
      5, 5, 0, 5,  //
      5, 5, 5, 0,
  };
  const auto before = a;
  memsim::NullMem mem;
  fwi_kernel(a.data(), n, a.data(), n, a.data(), n, 2, mem);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i < 2 && j < 2) continue;
      EXPECT_EQ(a[i * n + j], before[i * n + j]);
    }
  }
  EXPECT_EQ(a[0 * n + 1], 9);  // no shorter path inside the tile
  EXPECT_EQ(a[1 * n + 0], 1);
}

// ------------------------------------------------- path reconstruction

TEST(FwPaths, NextHopMatrixReconstructsOptimalPaths) {
  const std::size_t n = 24;
  const auto w = random_weight_matrix<int>(n, 0.25, 7);
  auto d = w;
  std::vector<vertex_t> next(n * n);
  fw_iterative_with_paths(d.data(), next.data(), n);
  EXPECT_EQ(d, reference_apsp(w, n));

  for (vertex_t i = 0; i < static_cast<vertex_t>(n); ++i) {
    for (vertex_t j = 0; j < static_cast<vertex_t>(n); ++j) {
      const auto ui = static_cast<std::size_t>(i), uj = static_cast<std::size_t>(j);
      const auto path = extract_path(next.data(), n, i, j);
      if (is_inf(d[ui * n + uj])) {
        EXPECT_TRUE(path.empty());
        continue;
      }
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), i);
      EXPECT_EQ(path.back(), j);
      // Sum of edge weights along the path equals the distance.
      int total = 0;
      for (std::size_t s = 0; s + 1 < path.size(); ++s) {
        const auto u = static_cast<std::size_t>(path[s]);
        const auto v = static_cast<std::size_t>(path[s + 1]);
        ASSERT_FALSE(is_inf(w[u * n + v])) << "path uses a non-edge";
        total += w[u * n + v];
      }
      EXPECT_EQ(total, d[ui * n + uj]);
    }
  }
}

TEST(FwPaths, TrivialSelfPath) {
  std::vector<vertex_t> next = {kNoVertex};
  const auto p = extract_path(next.data(), 1, 0, 0);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 0);
}

}  // namespace
}  // namespace cachegraph::apsp
