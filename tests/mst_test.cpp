// Prim's algorithm vs the Kruskal oracle, across representations and
// heaps; union-find unit tests; traced-run representation comparison.
#include <gtest/gtest.h>

#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/graph/adjacency_list.hpp"
#include "cachegraph/graph/adjacency_matrix.hpp"
#include "cachegraph/graph/generators.hpp"
#include "cachegraph/mst/kruskal.hpp"
#include "cachegraph/mst/prim.hpp"
#include "cachegraph/pq/dary_heap.hpp"
#include "cachegraph/pq/fibonacci_heap.hpp"
#include "cachegraph/pq/pairing_heap.hpp"

namespace cachegraph::mst {
namespace {

using graph::AdjacencyArray;
using graph::AdjacencyList;
using graph::AdjacencyMatrix;
using graph::EdgeListGraph;
using graph::random_undirected;

template <Weight W, class M>
using FourAry = pq::DAryHeap<W, 4, M>;

// ------------------------------------------------------------ UnionFind

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_FALSE(uf.connected(0, 1));
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.unite(0, 1));  // already merged
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_EQ(uf.component_size(2), 3u);
  EXPECT_EQ(uf.component_size(4), 1u);
}

TEST(UnionFindTest, ManyMergesOneComponent) {
  const std::size_t n = 1000;
  UnionFind uf(n);
  for (std::size_t i = 1; i < n; ++i) uf.unite(i - 1, i);
  EXPECT_EQ(uf.component_size(0), n);
  EXPECT_TRUE(uf.connected(0, n - 1));
}

// --------------------------------------------------------------- Kruskal

TEST(KruskalTest, HandChecked) {
  // Triangle with weights 1,2,3: MST takes 1 and 2.
  EdgeListGraph<int> g(3);
  auto und = [&](vertex_t a, vertex_t b, int w) {
    g.add_edge(a, b, w);
    g.add_edge(b, a, w);
  };
  und(0, 1, 1);
  und(1, 2, 2);
  und(0, 2, 3);
  const auto r = kruskal(g);
  EXPECT_EQ(r.total_weight, 3);
  EXPECT_EQ(r.tree_edges.size(), 2u);
}

TEST(KruskalTest, ForestOnDisconnectedInput) {
  EdgeListGraph<int> g(4);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 0, 5);
  g.add_edge(2, 3, 7);
  g.add_edge(3, 2, 7);
  const auto r = kruskal(g);
  EXPECT_EQ(r.tree_edges.size(), 2u);
  EXPECT_EQ(r.total_weight, 12);
}

// ------------------------------------------------------------------ Prim

TEST(PrimTest, HandChecked) {
  EdgeListGraph<int> g(4);
  auto und = [&](vertex_t a, vertex_t b, int w) {
    g.add_edge(a, b, w);
    g.add_edge(b, a, w);
  };
  und(0, 1, 4);
  und(0, 2, 1);
  und(2, 1, 2);
  und(1, 3, 7);
  const AdjacencyArray<int> rep(g);
  const auto r = prim(rep, 0);
  EXPECT_EQ(r.total_weight, 1 + 2 + 7);
  EXPECT_EQ(r.tree_vertices, 4);
  EXPECT_EQ(r.parent[2], 0);
  EXPECT_EQ(r.parent[1], 2);
  EXPECT_EQ(r.parent[3], 1);
}

class PrimMatchesKruskal : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PrimMatchesKruskal, TotalWeightAgrees) {
  const auto [n, density] = GetParam();
  const auto g = random_undirected<int>(static_cast<vertex_t>(n), density,
                                        static_cast<std::uint64_t>(n * 7 + 1));
  const auto oracle = kruskal(g);
  const auto arr = prim(AdjacencyArray<int>(g), 0);
  const auto list = prim(AdjacencyList<int>(g), 0);
  const auto mat = prim(AdjacencyMatrix<int>(g), 0);
  EXPECT_EQ(arr.total_weight, oracle.total_weight);
  EXPECT_EQ(list.total_weight, oracle.total_weight);
  EXPECT_EQ(mat.total_weight, oracle.total_weight);
  EXPECT_EQ(arr.tree_vertices, n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrimMatchesKruskal,
                         ::testing::Combine(::testing::Values(8, 32, 64, 128),
                                            ::testing::Values(0.05, 0.3, 0.8)),
                         [](const ::testing::TestParamInfo<std::tuple<int, double>>& pi) {
                           return "n" + std::to_string(std::get<0>(pi.param)) + "_d" +
                                  std::to_string(static_cast<int>(std::get<1>(pi.param) * 100));
                         });

TEST(PrimTest, AllHeapsAgree) {
  const auto g = random_undirected<int>(100, 0.1, 44);
  const AdjacencyArray<int> rep(g);
  const auto w0 = prim(rep, 0).total_weight;
  EXPECT_EQ((prim<FourAry>(rep, 0).total_weight), w0);
  EXPECT_EQ((prim<pq::PairingHeap>(rep, 0).total_weight), w0);
  EXPECT_EQ((prim<pq::FibonacciHeap>(rep, 0).total_weight), w0);
}

TEST(PrimTest, DisconnectedGraphSpansRootComponentOnly) {
  EdgeListGraph<int> g(5);
  auto und = [&](vertex_t a, vertex_t b, int w) {
    g.add_edge(a, b, w);
    g.add_edge(b, a, w);
  };
  und(0, 1, 1);
  und(1, 2, 1);
  und(3, 4, 1);
  const AdjacencyArray<int> rep(g);
  const auto r = prim(rep, 0);
  EXPECT_EQ(r.tree_vertices, 3);
  EXPECT_EQ(r.total_weight, 2);
  EXPECT_EQ(r.parent[3], kNoVertex);
  EXPECT_EQ(r.parent[4], kNoVertex);
}

TEST(PrimTest, ParentEdgesExistWithClaimedWeight) {
  const auto g = random_undirected<int>(60, 0.2, 5);
  const AdjacencyMatrix<int> m(g);
  const auto r = prim(AdjacencyArray<int>(g), 0);
  int total = 0;
  for (vertex_t v = 0; v < 60; ++v) {
    const auto uv = static_cast<std::size_t>(v);
    if (r.parent[uv] == kNoVertex) continue;
    ASSERT_FALSE(is_inf(m.weight(r.parent[uv], v)));
    EXPECT_EQ(r.key[uv], m.weight(r.parent[uv], v));
    total += r.key[uv];
  }
  EXPECT_EQ(total, r.total_weight);
}

TEST(PrimTest, DifferentRootsSameTotalWeight) {
  const auto g = random_undirected<int>(50, 0.15, 9);
  const AdjacencyArray<int> rep(g);
  const auto w0 = prim(rep, 0).total_weight;
  EXPECT_EQ(prim(rep, 17).total_weight, w0);
  EXPECT_EQ(prim(rep, 49).total_weight, w0);
}

TEST(PrimTraced, ArrayBeatsListOnL2Misses) {
  // Table 7 in miniature.
  const auto g = random_undirected<int>(768, 0.1, 33);
  auto run = [&](const auto& rep) {
    memsim::MachineConfig mc;
    mc.name = "t";
    mc.l1 = memsim::CacheConfig{4096, 32, 4};
    mc.l2 = memsim::CacheConfig{65536, 64, 8};
    mc.tlb_entries = 16;
    memsim::CacheHierarchy h(mc);
    memsim::SimMem mem(h);
    prim(rep, 0, mem);
    return h.stats();
  };
  const auto arr = run(AdjacencyArray<int>(g));
  const auto list = run(AdjacencyList<int>(g, 55));
  EXPECT_LT(arr.l2.misses, list.l2.misses);
}

}  // namespace
}  // namespace cachegraph::mst
