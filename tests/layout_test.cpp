// Unit tests for data layouts: bijectivity, tile contiguity, Morton
// ordering, padding rules, and the block-size selection heuristic.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "cachegraph/layout/block_size.hpp"
#include "cachegraph/layout/layouts.hpp"
#include "cachegraph/layout/padding.hpp"
#include "cachegraph/memsim/machine_configs.hpp"

namespace cachegraph::layout {
namespace {

template <MatrixLayout L>
void expect_bijective(const L& l) {
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < l.n(); ++i) {
    for (std::size_t j = 0; j < l.n(); ++j) {
      const std::size_t off = l.offset(i, j);
      EXPECT_LT(off, l.storage_elements());
      EXPECT_TRUE(seen.insert(off).second) << "duplicate offset at " << i << "," << j;
    }
  }
  EXPECT_EQ(seen.size(), l.n() * l.n());
}

TEST(RowMajor, OffsetsAreRowMajor) {
  RowMajorLayout l(8, 4);
  EXPECT_EQ(l.offset(0, 0), 0u);
  EXPECT_EQ(l.offset(0, 7), 7u);
  EXPECT_EQ(l.offset(1, 0), 8u);
  EXPECT_EQ(l.offset(3, 5), 29u);
}

TEST(RowMajor, Bijective) { expect_bijective(RowMajorLayout(16, 4)); }

TEST(RowMajor, TilesAreStridedWindows) {
  RowMajorLayout l(8, 4);
  EXPECT_EQ(l.tile_row_stride(), 8u);
  EXPECT_EQ(l.tile_offset(0, 0), 0u);
  EXPECT_EQ(l.tile_offset(0, 1), 4u);
  EXPECT_EQ(l.tile_offset(1, 0), 32u);
  // Tile origin matches elementwise offset of its top-left element.
  EXPECT_EQ(l.tile_offset(1, 1), l.offset(4, 4));
}

TEST(RowMajor, UntiledConvenienceCtor) {
  RowMajorLayout l(10);
  EXPECT_EQ(l.block(), 10u);
  EXPECT_EQ(l.num_blocks(), 1u);
}

TEST(RowMajor, RejectsNonDividingBlock) {
  EXPECT_THROW(RowMajorLayout(10, 4), PreconditionError);
}

TEST(Bdl, TilesAreContiguous) {
  BlockDataLayout l(8, 4);
  EXPECT_EQ(l.tile_row_stride(), 4u);
  // Tile (0,0) occupies [0,16), tile (0,1) [16,32), (1,0) [32,48)...
  EXPECT_EQ(l.tile_offset(0, 0), 0u);
  EXPECT_EQ(l.tile_offset(0, 1), 16u);
  EXPECT_EQ(l.tile_offset(1, 0), 32u);
  EXPECT_EQ(l.tile_offset(1, 1), 48u);
  // Inside a tile: row-major with stride B.
  EXPECT_EQ(l.offset(0, 0), 0u);
  EXPECT_EQ(l.offset(0, 3), 3u);
  EXPECT_EQ(l.offset(1, 0), 4u);
  EXPECT_EQ(l.offset(4, 4), 48u);
  EXPECT_EQ(l.offset(5, 6), 48u + 4u + 2u);
}

TEST(Bdl, Bijective) { expect_bijective(BlockDataLayout(16, 4)); }

TEST(Bdl, BlockEqualsNDegeneratesToRowMajor) {
  BlockDataLayout l(8, 8);
  RowMajorLayout r(8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(l.offset(i, j), r.offset(i, j));
    }
  }
}

TEST(Morton, QuadrantOrderIsNwNeSwSe) {
  // 4x4 blocks of size 1: tile index equals the Morton code.
  MortonLayout l(4, 1);
  // First level: NW quadrant tiles come first, then NE, SW, SE.
  EXPECT_EQ(l.tile_offset(0, 0), 0u);
  EXPECT_EQ(l.tile_offset(0, 1), 1u);
  EXPECT_EQ(l.tile_offset(1, 0), 2u);
  EXPECT_EQ(l.tile_offset(1, 1), 3u);
  EXPECT_EQ(l.tile_offset(0, 2), 4u);  // NE quadrant starts
  EXPECT_EQ(l.tile_offset(2, 0), 8u);  // SW quadrant starts
  EXPECT_EQ(l.tile_offset(2, 2), 12u); // SE quadrant starts
  EXPECT_EQ(l.tile_offset(3, 3), 15u);
}

TEST(Morton, Bijective) { expect_bijective(MortonLayout(16, 4)); }

TEST(Morton, TilesContiguousRowMajorInside) {
  MortonLayout l(8, 4);
  EXPECT_EQ(l.tile_row_stride(), 4u);
  EXPECT_EQ(l.offset(0, 0), 0u);
  EXPECT_EQ(l.offset(1, 1), 5u);
  // Tile (0,1) is the second tile in Morton order.
  EXPECT_EQ(l.tile_offset(0, 1), 16u);
  EXPECT_EQ(l.offset(0, 4), 16u);
}

TEST(Morton, RequiresPow2Grid) {
  EXPECT_THROW(MortonLayout(12, 4), PreconditionError);  // 3x3 grid
  EXPECT_NO_THROW(MortonLayout(16, 4));
}

TEST(Morton, RecursiveQuadrantsAreContiguousRanges) {
  // The defining property used by FWR: each quadrant of the block grid
  // occupies one contiguous storage range.
  MortonLayout l(8, 1);  // 8x8 grid of 1x1 tiles
  auto range_of_quadrant = [&](std::size_t bi0, std::size_t bj0, std::size_t h) {
    std::size_t lo = SIZE_MAX, hi = 0;
    for (std::size_t i = bi0; i < bi0 + h; ++i) {
      for (std::size_t j = bj0; j < bj0 + h; ++j) {
        lo = std::min(lo, l.tile_offset(i, j));
        hi = std::max(hi, l.tile_offset(i, j));
      }
    }
    return std::pair{lo, hi};
  };
  for (std::size_t h : {4u, 2u}) {
    for (std::size_t bi = 0; bi < 8; bi += h) {
      for (std::size_t bj = 0; bj < 8; bj += h) {
        const auto [lo, hi] = range_of_quadrant(bi, bj, h);
        EXPECT_EQ(hi - lo + 1, h * h) << "quadrant at " << bi << "," << bj;
      }
    }
  }
}

// -------------------------------------------------------------- padding

TEST(Padding, TiledRoundsUpToMultiple) {
  EXPECT_EQ(padded_size_tiled(100, 32), 128u);
  EXPECT_EQ(padded_size_tiled(128, 32), 128u);
  EXPECT_EQ(padded_size_tiled(1, 32), 32u);
  EXPECT_EQ(padded_size_tiled(129, 32), 160u);
}

TEST(Padding, RecursiveRoundsUpToBlockTimesPow2) {
  EXPECT_EQ(padded_size_recursive(100, 32), 128u);
  EXPECT_EQ(padded_size_recursive(128, 32), 128u);
  EXPECT_EQ(padded_size_recursive(129, 32), 256u);
  EXPECT_EQ(padded_size_recursive(1000, 32), 1024u);
  EXPECT_EQ(padded_size_recursive(20, 32), 32u);
}

TEST(Padding, RecursivePaddingMayExceedTiledPadding) {
  // The efficiency note in Section 4.1: recursive padding can be larger.
  EXPECT_GT(padded_size_recursive(129, 32), padded_size_tiled(129, 32));
}

// ----------------------------------------------------------- block size

TEST(BlockSize, EffectiveCapacityAppliesTwoToOneRule) {
  using memsim::CacheConfig;
  EXPECT_EQ(effective_capacity(CacheConfig{32768, 32, 4}), 32768u);   // 4-way: as-is
  EXPECT_EQ(effective_capacity(CacheConfig{32768, 32, 8}), 32768u);   // >=4-way: as-is
  EXPECT_EQ(effective_capacity(CacheConfig{32768, 32, 2}), 16384u);   // 2-way: half
  // Direct-mapped is *also* half, not a quarter: the 2:1 rule halves
  // once for low associativity; it does not compound per doubling.
  // (Regression test — the old loop charged direct-mapped cap/4.)
  EXPECT_EQ(effective_capacity(CacheConfig{32768, 32, 1}), 16384u);
}

TEST(BlockSize, PinnedBlockSizesForPaperMachines) {
  // B = floor(sqrt(C_eff / (3*d))) with d = 4 (int32 weights), pinned
  // for the four machines of Table 2 so an effective_capacity
  // regression shows up as a concrete block-size change.
  struct Expect {
    memsim::MachineConfig m;
    std::size_t l1_exact, l1_pow2, l2_exact, l2_pow2;
  };
  const Expect cases[] = {
      // PIII: L1 32K 4-way -> 32768; L2 1M 8-way -> 1048576.
      {memsim::pentium3(), 52, 32, 295, 256},
      // USIII: L1 64K 4-way -> 65536; L2 8M direct -> 4M effective.
      {memsim::ultrasparc3(), 73, 64, 591, 512},
      // Alpha: L1 64K 2-way -> 32768; L2 4M direct -> 2M effective.
      {memsim::alpha21264(), 52, 32, 418, 256},
      // MIPS: L1 32K 2-way -> 16384; L2 8M direct -> 4M effective.
      {memsim::mips_r12000(), 36, 32, 591, 512},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(pick_block_size(c.m.l1, 4, false), c.l1_exact) << c.m.name;
    EXPECT_EQ(pick_block_size(c.m.l1, 4, true), c.l1_pow2) << c.m.name;
    EXPECT_EQ(pick_block_size(c.m.l2, 4, false), c.l2_exact) << c.m.name;
    EXPECT_EQ(pick_block_size(c.m.l2, 4, true), c.l2_pow2) << c.m.name;
  }
}

TEST(BlockSize, SatisfiesWorkingSetEquation) {
  // 3*B^2*d <= effective capacity must hold for the picked B.
  for (const auto& m : memsim::all_machines()) {
    for (std::size_t d : {4u, 8u}) {
      const std::size_t b = pick_block_size(m.l1, d, /*round_to_pow2=*/false);
      EXPECT_LE(3 * b * b * d, effective_capacity(m.l1)) << m.name;
      // And B is maximal: B+1 must violate the bound.
      EXPECT_GT(3 * (b + 1) * (b + 1) * d, effective_capacity(m.l1)) << m.name;
    }
  }
}

TEST(BlockSize, Pow2RoundingRoundsDown) {
  using memsim::CacheConfig;
  const CacheConfig p3l1{32 * 1024, 32, 4};
  const std::size_t exact = pick_block_size(p3l1, 4, false);
  const std::size_t pow2 = pick_block_size(p3l1, 4, true);
  EXPECT_LE(pow2, exact);
  EXPECT_EQ(pow2 & (pow2 - 1), 0u);
  // Pentium III L1 = 32 KB 4-way, int32 elements:
  // B = floor(sqrt(32768/12)) = 52 -> pow2 32.
  EXPECT_EQ(exact, 52u);
  EXPECT_EQ(pow2, 32u);
}

TEST(BlockSize, NeverBelowTwo) {
  using memsim::CacheConfig;
  EXPECT_GE(pick_block_size(CacheConfig{64, 32, 2}, 8), 2u);
}

}  // namespace
}  // namespace cachegraph::layout
