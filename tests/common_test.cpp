// Unit tests for cachegraph/common: weight arithmetic, RNG, buffers,
// timers, precondition checks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "cachegraph/common/buffer.hpp"
#include "cachegraph/common/check.hpp"
#include "cachegraph/common/rng.hpp"
#include "cachegraph/common/timer.hpp"
#include "cachegraph/common/types.hpp"

namespace cachegraph {
namespace {

// ---------------------------------------------------------------- types

TEST(Weights, InfIntIsHalfMax) {
  EXPECT_EQ(inf<std::int32_t>(), std::numeric_limits<std::int32_t>::max() / 2);
  EXPECT_EQ(inf<std::int64_t>(), std::numeric_limits<std::int64_t>::max() / 2);
}

TEST(Weights, InfDoubleIsIeeeInfinity) {
  EXPECT_TRUE(std::isinf(inf<double>()));
  EXPECT_TRUE(std::isinf(inf<float>()));
  EXPECT_GT(inf<double>(), 0.0);
}

TEST(Weights, IsInfDetectsInfAndAbove) {
  EXPECT_TRUE(is_inf(inf<int>()));
  EXPECT_TRUE(is_inf(inf<double>()));
  EXPECT_FALSE(is_inf(0));
  EXPECT_FALSE(is_inf(inf<int>() - 1));
  EXPECT_FALSE(is_inf(1e308));
}

TEST(Weights, SatAddNeverOverflows) {
  const int big = inf<int>();
  EXPECT_EQ(sat_add(big, big), big);
  EXPECT_EQ(sat_add(big, 1), big);
  EXPECT_EQ(sat_add(1, big), big);
  EXPECT_EQ(sat_add(big - 1, big - 1), big);  // saturates via is_inf on result path
}

TEST(Weights, SatAddSaturatesSumsBelowInf) {
  // Two large-but-finite values must not wrap around.
  const int a = inf<int>() - 5;
  const int b = inf<int>() - 7;
  EXPECT_GE(sat_add(a, b), 0);
}

TEST(Weights, SatAddPlainValues) {
  EXPECT_EQ(sat_add(2, 3), 5);
  EXPECT_DOUBLE_EQ(sat_add(2.5, 3.25), 5.75);
  EXPECT_TRUE(std::isinf(sat_add(inf<double>(), 1.0)));
}

TEST(Weights, RelaxMinPicksShorterPath) {
  EXPECT_EQ(relax_min(10, 3, 4), 7);
  EXPECT_EQ(relax_min(5, 3, 4), 5);
  EXPECT_EQ(relax_min(inf<int>(), 3, 4), 7);
  EXPECT_EQ(relax_min(inf<int>(), inf<int>(), 4), inf<int>());
  EXPECT_EQ(relax_min(9, 4, inf<int>()), 9);
}

TEST(Weights, RelaxMinHandlesNegativeEdges) {
  EXPECT_EQ(relax_min(1, -3, 2), -1);
  EXPECT_EQ(relax_min(-5, -3, 2), -5);
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, KnownFirstValueIsStable) {
  // Regression pin: generator output must never change across platforms
  // or refactors, or every "random" workload in EXPERIMENTS.md shifts.
  Rng r(12345);
  const std::uint64_t v = r();
  Rng r2(12345);
  EXPECT_EQ(v, r2());
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BelowZeroBoundThrows) {
  // Regression: bound 0 used to divide by zero in the rejection
  // threshold ((0 - bound) % bound) before the precondition check.
  Rng r(7);
  EXPECT_THROW((void)r.below(0), PreconditionError);
}

TEST(Rng, UniformIntFullInt64RangeDoesNotWrap) {
  // Regression: hi - lo overflowed int64 for wide ranges; the span is
  // now computed in unsigned arithmetic, and the full-range span (which
  // wraps to 0) falls back to a raw 64-bit draw.
  constexpr auto kLo = std::numeric_limits<std::int64_t>::min();
  constexpr auto kHi = std::numeric_limits<std::int64_t>::max();
  Rng r(21);
  bool saw_negative = false, saw_positive = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(kLo, kHi);
    saw_negative |= (v < 0);
    saw_positive |= (v > 0);
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
  // Deterministic: same seed, same sequence.
  Rng a(21), b(21);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform_int(kLo, kHi), b.uniform_int(kLo, kHi));
}

TEST(Rng, UniformIntWideButNotFullRange) {
  // Spans that overflow int64 but not uint64 (e.g. [min, max-1]) go
  // through the rejection path with an unsigned span.
  constexpr auto kLo = std::numeric_limits<std::int64_t>::min();
  constexpr auto kHi = std::numeric_limits<std::int64_t>::max() - 1;
  Rng r(22);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(kLo, kHi);
    EXPECT_LE(v, kHi);
  }
}

TEST(Rng, UniformIntDegenerateAndInvalidBounds) {
  Rng r(23);
  EXPECT_EQ(r.uniform_int(5, 5), 5);
  EXPECT_EQ(r.uniform_int(-7, -7), -7);
  EXPECT_THROW((void)r.uniform_int(3, 2), PreconditionError);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng r(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Rng r(5);
  shuffle(v.begin(), v.end(), r);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  // And it actually moved things.
  std::vector<int> id(100);
  std::iota(id.begin(), id.end(), 0);
  EXPECT_NE(v, id);
}

TEST(Rng, ShuffleDeterministic) {
  std::vector<int> a(50), b(50);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Rng ra(3), rb(3);
  shuffle(a.begin(), a.end(), ra);
  shuffle(b.begin(), b.end(), rb);
  EXPECT_EQ(a, b);
}

// --------------------------------------------------------------- buffer

TEST(AlignedBuffer, IsCacheLineAligned) {
  AlignedBuffer<double> buf(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes, 0u);
}

TEST(AlignedBuffer, ValueInitialized) {
  AlignedBuffer<int> buf(257);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0);
}

TEST(AlignedBuffer, EmptyBufferIsValid) {
  AlignedBuffer<int> buf;
  EXPECT_EQ(buf.size(), 0u);
  AlignedBuffer<int> zero(0);
  EXPECT_EQ(zero.size(), 0u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(10);
  a[3] = 99;
  AlignedBuffer<int> b = std::move(a);
  EXPECT_EQ(b[3], 99);
  EXPECT_EQ(b.size(), 10u);
}

TEST(AlignedBuffer, RangeForWorks) {
  AlignedBuffer<int> a(5);
  int count = 0;
  for (int v : a) count += (v == 0);
  EXPECT_EQ(count, 5);
}

// ---------------------------------------------------------------- timer

TEST(Timer, MeasuresNonNegativeTime) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Timer, ResetRestarts) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  const double a = t.seconds();
  t.reset();
  EXPECT_LE(t.seconds(), a + 1.0);
}

TEST(TimeRepeated, RunsRequestedReps) {
  int runs = 0;
  const auto res = time_repeated(5, [&] { ++runs; });
  EXPECT_EQ(runs, 5);
  EXPECT_EQ(res.reps, 5);
  EXPECT_GE(res.median_s, res.best_s);
}

TEST(TimeRepeated, SetupRunsBeforeEachRep) {
  int setups = 0, runs = 0;
  time_repeated(
      3, [&] { ++setups; }, [&] { ++runs; });
  EXPECT_EQ(setups, 3);
  EXPECT_EQ(runs, 3);
}

// ---------------------------------------------------------------- check

TEST(Check, PassingCheckIsSilent) { EXPECT_NO_THROW(CG_CHECK(1 + 1 == 2)); }

TEST(Check, FailingCheckThrowsWithContext) {
  try {
    CG_CHECK(false, "context message");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("context message"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace cachegraph
