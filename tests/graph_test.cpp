// Unit tests for graph representations, conversions, and DIMACS I/O.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/graph/adjacency_list.hpp"
#include "cachegraph/graph/adjacency_matrix.hpp"
#include "cachegraph/graph/concepts.hpp"
#include "cachegraph/graph/generators.hpp"
#include "cachegraph/graph/io.hpp"

namespace cachegraph::graph {
namespace {

static_assert(GraphRep<AdjacencyArray<int>>);
static_assert(GraphRep<AdjacencyList<int>>);
static_assert(GraphRep<AdjacencyMatrix<int>>);
static_assert(GraphRep<AdjacencyArray<double>>);

EdgeListGraph<int> small_graph() {
  EdgeListGraph<int> g(5);
  g.add_edge(0, 1, 10);
  g.add_edge(0, 2, 20);
  g.add_edge(1, 2, 30);
  g.add_edge(3, 0, 40);
  g.add_edge(3, 4, 50);
  g.add_edge(4, 3, 60);
  return g;
}

/// Collect (to, weight) pairs via the traced iterator.
template <typename G>
std::multiset<std::pair<vertex_t, int>> neighbors_of(const G& g, vertex_t v) {
  std::multiset<std::pair<vertex_t, int>> out;
  memsim::NullMem mem;
  g.for_neighbors(v, mem, [&](const Neighbor<int>& nb) { out.insert({nb.to, nb.weight}); });
  return out;
}

// ------------------------------------------------------------- EdgeList

TEST(EdgeList, BasicAccounting) {
  const auto g = small_graph();
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_NEAR(g.density(), 6.0 / 20.0, 1e-12);
}

TEST(EdgeList, RejectsOutOfRangeEndpoints) {
  EdgeListGraph<int> g(3);
  EXPECT_THROW(g.add_edge(0, 3, 1), PreconditionError);
  EXPECT_THROW(g.add_edge(-1, 0, 1), PreconditionError);
}

// ----------------------------------------------- representations agree

template <typename Rep>
class RepresentationTest : public ::testing::Test {};

using Reps = ::testing::Types<AdjacencyArray<int>, AdjacencyList<int>, AdjacencyMatrix<int>>;
TYPED_TEST_SUITE(RepresentationTest, Reps);

TYPED_TEST(RepresentationTest, NeighborsMatchEdgeList) {
  const auto el = small_graph();
  const TypeParam rep(el);
  EXPECT_EQ(rep.num_vertices(), el.num_vertices());

  std::map<vertex_t, std::multiset<std::pair<vertex_t, int>>> expected;
  for (const auto& e : el.edges()) expected[e.from].insert({e.to, e.weight});
  for (vertex_t v = 0; v < el.num_vertices(); ++v) {
    EXPECT_EQ(neighbors_of(rep, v), expected[v]) << "vertex " << v;
  }
}

TYPED_TEST(RepresentationTest, EmptyGraph) {
  const EdgeListGraph<int> el(4);
  const TypeParam rep(el);
  EXPECT_EQ(rep.num_vertices(), 4);
  EXPECT_EQ(rep.num_edges(), 0);
  for (vertex_t v = 0; v < 4; ++v) EXPECT_TRUE(neighbors_of(rep, v).empty());
}

TYPED_TEST(RepresentationTest, LargeRandomGraphMatches) {
  const auto el = random_digraph<int>(200, 0.05, 99);
  const TypeParam rep(el);
  std::map<vertex_t, std::multiset<std::pair<vertex_t, int>>> expected;
  for (const auto& e : el.edges()) expected[e.from].insert({e.to, e.weight});
  for (vertex_t v = 0; v < el.num_vertices(); ++v) {
    ASSERT_EQ(neighbors_of(rep, v), expected[v]) << "vertex " << v;
  }
}

TYPED_TEST(RepresentationTest, FootprintIsPositiveForNonEmpty) {
  const TypeParam rep(small_graph());
  EXPECT_GT(rep.footprint_bytes(), 0u);
}

// ----------------------------------------------------- array specifics

TEST(AdjacencyArrayTest, EdgeCountAndDegrees) {
  const AdjacencyArray<int> a(small_graph());
  EXPECT_EQ(a.num_edges(), 6);
  EXPECT_EQ(a.out_degree(0), 2);
  EXPECT_EQ(a.out_degree(1), 1);
  EXPECT_EQ(a.out_degree(2), 0);
  EXPECT_EQ(a.out_degree(3), 2);
  EXPECT_EQ(a.out_degree(4), 1);
}

TEST(AdjacencyArrayTest, NeighborsSpanIsContiguousAndOrdered) {
  const AdjacencyArray<int> a(small_graph());
  const auto nb = a.neighbors(0);
  ASSERT_EQ(nb.size(), 2u);
  // Construction preserves edge insertion order per vertex.
  EXPECT_EQ(nb[0], (Neighbor<int>{1, 10}));
  EXPECT_EQ(nb[1], (Neighbor<int>{2, 20}));
  // Contiguity: records are adjacent in memory.
  EXPECT_EQ(&nb[1], &nb[0] + 1);
}

TEST(AdjacencyArrayTest, FootprintIsLinearInNAndE) {
  const auto g = random_digraph<int>(500, 0.02, 3);
  const AdjacencyArray<int> a(g);
  const std::size_t expected = 501 * sizeof(index_t) +
                               static_cast<std::size_t>(g.num_edges()) * sizeof(Neighbor<int>);
  EXPECT_EQ(a.footprint_bytes(), expected);
}

// Edge cases the blocked store serializer must preserve exactly —
// each checked differentially against EdgeListGraph iteration.

namespace {
template <Weight W>
void expect_matches_edge_list(const EdgeListGraph<W>& g) {
  const AdjacencyArray<W> a(g);
  ASSERT_EQ(a.num_vertices(), g.num_vertices());
  ASSERT_EQ(a.num_edges(), g.num_edges());
  // Per-vertex insertion-ordered runs == the edge list filtered by tail.
  memsim::NullMem mem;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    std::vector<Neighbor<W>> want;
    for (const auto& e : g.edges()) {
      if (e.from == v) want.push_back(Neighbor<W>{e.to, e.weight});
    }
    std::vector<Neighbor<W>> got_span(a.neighbors(v).begin(), a.neighbors(v).end());
    std::vector<Neighbor<W>> got_iter;
    a.for_neighbors(v, mem, [&](const Neighbor<W>& nb) { got_iter.push_back(nb); });
    ASSERT_EQ(got_span.size(), want.size()) << "vertex " << v;
    EXPECT_EQ(got_span, want) << "vertex " << v;
    EXPECT_EQ(got_iter, want) << "vertex " << v;
  }
}
}  // namespace

TEST(AdjacencyArrayTest, EmptyGraphHasNoVerticesOrRecords) {
  const EdgeListGraph<int> g(0);
  const AdjacencyArray<int> a(g);
  EXPECT_EQ(a.num_vertices(), 0);
  EXPECT_EQ(a.num_edges(), 0);
  EXPECT_TRUE(a.records().empty());
  expect_matches_edge_list(g);
}

TEST(AdjacencyArrayTest, IsolatedVerticesHaveEmptyRuns) {
  // Only vertex 3 has out-edges; 0,1,2,4,5 are isolated (some are
  // targets, which must not give them records).
  EdgeListGraph<int> g(6);
  g.add_edge(3, 0, 7);
  g.add_edge(3, 5, 9);
  const AdjacencyArray<int> a(g);
  for (const vertex_t v : {0, 1, 2, 4, 5}) {
    EXPECT_EQ(a.out_degree(v), 0) << v;
    EXPECT_TRUE(a.neighbors(v).empty()) << v;
  }
  EXPECT_EQ(a.out_degree(3), 2);
  expect_matches_edge_list(g);
}

TEST(AdjacencyArrayTest, SingleVertexWithHugeRun) {
  // One vertex owning a run far larger than any store block payload
  // (the run-spans-blocks case); every record must survive in order.
  constexpr vertex_t kN = 2000;
  EdgeListGraph<int> g(kN);
  for (vertex_t v = 1; v < kN; ++v) g.add_edge(0, v, v * 3);
  const AdjacencyArray<int> a(g);
  ASSERT_EQ(a.out_degree(0), kN - 1);
  const auto nb = a.neighbors(0);
  for (vertex_t v = 1; v < kN; ++v) {
    EXPECT_EQ(nb[static_cast<std::size_t>(v - 1)], (Neighbor<int>{v, v * 3}));
  }
  expect_matches_edge_list(g);
}

TEST(AdjacencyArrayTest, DuplicateArcsAreAllPreserved) {
  // DIMACS allows parallel arcs, including identical ones; the CSR
  // build must keep every copy in insertion order, not dedupe.
  EdgeListGraph<int> g(3);
  g.add_edge(0, 1, 5);
  g.add_edge(0, 1, 5);
  g.add_edge(0, 1, 8);
  g.add_edge(2, 2, 1);  // self-loop, twice
  g.add_edge(2, 2, 1);
  const AdjacencyArray<int> a(g);
  EXPECT_EQ(a.out_degree(0), 3);
  EXPECT_EQ(a.out_degree(2), 2);
  const auto nb0 = a.neighbors(0);
  EXPECT_EQ(nb0[0], (Neighbor<int>{1, 5}));
  EXPECT_EQ(nb0[1], (Neighbor<int>{1, 5}));
  EXPECT_EQ(nb0[2], (Neighbor<int>{1, 8}));
  expect_matches_edge_list(g);
}

// ------------------------------------------------------ list specifics

TEST(AdjacencyListTest, WalkPreservesEdgeOrder) {
  const AdjacencyList<int> l(small_graph());
  std::vector<std::pair<vertex_t, int>> walk;
  for (const auto* n = l.head(0); n != nullptr; n = n->next) {
    walk.emplace_back(n->to, n->weight);
  }
  ASSERT_EQ(walk.size(), 2u);
  EXPECT_EQ(walk[0], (std::pair<vertex_t, int>{1, 10}));
  EXPECT_EQ(walk[1], (std::pair<vertex_t, int>{2, 20}));
}

TEST(AdjacencyListTest, ShuffledPlacementScattersNodes) {
  const auto g = random_digraph<int>(100, 0.2, 7);
  const AdjacencyList<int> scattered(g, /*placement_seed=*/123);
  const AdjacencyList<int> sequential(g, AdjacencyList<int>::kSequentialPlacement);

  // Sequential placement: following a list the node addresses are not
  // generally adjacent either (lists interleave), but *scattered*
  // placement must produce strictly more long jumps between consecutive
  // nodes of the same list.
  auto long_jumps = [](const AdjacencyList<int>& l) {
    std::size_t jumps = 0;
    for (vertex_t v = 0; v < l.num_vertices(); ++v) {
      for (const auto* n = l.head(v); n != nullptr && n->next != nullptr; n = n->next) {
        const auto delta = reinterpret_cast<const char*>(n->next) -
                           reinterpret_cast<const char*>(n);
        if (delta < 0 || delta > 256) ++jumps;
      }
    }
    return jumps;
  };
  EXPECT_GT(long_jumps(scattered), long_jumps(sequential));
}

TEST(AdjacencyListTest, OutDegreeCountsNodes) {
  const AdjacencyList<int> l(small_graph());
  EXPECT_EQ(l.out_degree(0), 2);
  EXPECT_EQ(l.out_degree(2), 0);
  EXPECT_EQ(l.num_edges(), 6);
}

// ---------------------------------------------------- matrix specifics

TEST(AdjacencyMatrixTest, WeightsAndDefaults) {
  const AdjacencyMatrix<int> m(small_graph());
  EXPECT_EQ(m.weight(0, 1), 10);
  EXPECT_TRUE(is_inf(m.weight(1, 0)));
  EXPECT_EQ(m.weight(2, 2), 0);
  EXPECT_EQ(m.num_edges(), 6);
}

TEST(AdjacencyMatrixTest, ParallelEdgesKeepLightest) {
  EdgeListGraph<int> g(2);
  g.add_edge(0, 1, 9);
  g.add_edge(0, 1, 4);
  g.add_edge(0, 1, 7);
  const AdjacencyMatrix<int> m(g);
  EXPECT_EQ(m.weight(0, 1), 4);
  EXPECT_EQ(m.num_edges(), 1);  // dense representation dedupes
}

TEST(AdjacencyMatrixTest, WeightsVectorFeedsFw) {
  const AdjacencyMatrix<int> m(small_graph());
  EXPECT_EQ(m.weights().size(), 25u);
  EXPECT_EQ(m.weights()[0 * 5 + 1], 10);
}

// --------------------------------------------------------------- tracing

TEST(TracedIteration, ArrayTouchesFewerLinesThanList) {
  const auto g = random_digraph<int>(400, 0.05, 21);
  const AdjacencyArray<int> arr(g);
  const AdjacencyList<int> list(g, 42);

  auto misses = [&](const auto& rep) {
    memsim::MachineConfig mc;
    mc.name = "t";
    mc.l1 = memsim::CacheConfig{4096, 64, 2};
    mc.l2 = memsim::CacheConfig{32768, 64, 8};
    mc.tlb_entries = 0;
    memsim::CacheHierarchy h(mc);
    memsim::SimMem mem(h);
    rep.map_buffers(mem);
    long total = 0;
    for (vertex_t v = 0; v < rep.num_vertices(); ++v) {
      rep.for_neighbors(v, mem, [&](const Neighbor<int>& nb) { total += nb.weight; });
    }
    EXPECT_GT(total, 0);
    return h.stats().l1.misses;
  };
  EXPECT_LT(misses(arr), misses(list) / 2)
      << "streaming records must miss far less than pointer chasing";
}

// ------------------------------------------------------------------- io

TEST(DimacsIo, RoundTrip) {
  const auto g = random_digraph<int>(50, 0.1, 5);
  std::stringstream ss;
  write_dimacs(ss, g, "round trip test");
  const auto back = read_dimacs<int>(ss);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(DimacsIo, ReadsKnownText) {
  std::stringstream ss("c tiny\np sp 3 2\na 1 2 5\na 3 1 7\n");
  const auto g = read_dimacs<int>(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  ASSERT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.edges()[0], (Edge<int>{0, 1, 5}));
  EXPECT_EQ(g.edges()[1], (Edge<int>{2, 0, 7}));
}

TEST(DimacsIo, RejectsMalformedInput) {
  {
    std::stringstream ss("a 1 2 5\n");  // arc before header
    EXPECT_THROW(read_dimacs<int>(ss), PreconditionError);
  }
  {
    std::stringstream ss("p sp 3 5\na 1 2 5\n");  // wrong edge count
    EXPECT_THROW(read_dimacs<int>(ss), PreconditionError);
  }
  {
    std::stringstream ss("x nonsense\n");
    EXPECT_THROW(read_dimacs<int>(ss), PreconditionError);
  }
}

TEST(DimacsIo, RejectsOutOfRangeVertexIds) {
  // Regression: ids outside [1, n] used to pass straight through the
  // -1 shift into add_edge ("a 0 5 7" became add_edge(-1, 4, 7)).
  {
    std::stringstream ss("p sp 5 1\na 0 5 7\n");  // tail below range
    EXPECT_THROW(read_dimacs<int>(ss), PreconditionError);
  }
  {
    std::stringstream ss("p sp 5 1\na 6 1 7\n");  // tail above range
    EXPECT_THROW(read_dimacs<int>(ss), PreconditionError);
  }
  {
    std::stringstream ss("p sp 5 1\na 1 0 7\n");  // head below range
    EXPECT_THROW(read_dimacs<int>(ss), PreconditionError);
  }
  {
    std::stringstream ss("p sp 5 1\na 1 -3 7\n");  // negative head
    EXPECT_THROW(read_dimacs<int>(ss), PreconditionError);
  }
  // The error names the offending line.
  std::stringstream ss("c comment\np sp 5 2\na 1 2 3\na 9 1 7\n");
  try {
    (void)read_dimacs<int>(ss);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos) << e.what();
  }
  // Boundary ids 1 and n are legal.
  std::stringstream ok("p sp 5 2\na 1 5 7\na 5 1 2\n");
  const auto g = read_dimacs<int>(ok);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(DimacsIo, DoubleWeightsSurvive) {
  EdgeListGraph<double> g(2);
  g.add_edge(0, 1, 2.5);
  std::stringstream ss;
  write_dimacs(ss, g);
  const auto back = read_dimacs<double>(ss);
  ASSERT_EQ(back.num_edges(), 1);
  EXPECT_DOUBLE_EQ(back.edges()[0].weight, 2.5);
}

}  // namespace
}  // namespace cachegraph::graph
