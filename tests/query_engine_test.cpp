// The query subsystem: every request shape differential-tested against
// a full-Dijkstra oracle across queue policies, representations, and
// thread counts; early-exit working-set bounds; the dynamic overlay
// against a rebuilt-from-scratch graph after randomized edge updates;
// component stamps; and the result cache's invalidation protocol
// (stale sources recompute, untouched components keep serving,
// re-served trees bit-identical to fresh computation).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>
#include <set>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cachegraph/graph/adjacency_list.hpp"
#include "cachegraph/graph/generators.hpp"
#include "cachegraph/obs/counters.hpp"
#include "cachegraph/parallel/task_pool.hpp"
#include "cachegraph/pq/dary_heap.hpp"
#include "cachegraph/query/dynamic_overlay.hpp"
#include "cachegraph/query/engine.hpp"
#include "cachegraph/query/request.hpp"
#include "cachegraph/query/result_cache.hpp"
#include "cachegraph/query/search_core.hpp"
#include "cachegraph/sssp/dijkstra.hpp"
#include "test_util.hpp"

namespace cachegraph::query {
namespace {

using graph::AdjacencyArray;
using graph::AdjacencyList;
using graph::EdgeListGraph;
using graph::random_digraph;

template <Weight W, typename M>
using FourAry = pq::DAryHeap<W, 4, M>;

/// Materializes any GraphRep back into an edge list (the oracle runs
/// on a from-scratch rebuild, sharing no state with the overlay).
template <graph::GraphRep G>
EdgeListGraph<typename G::weight_type> materialize(const G& g) {
  EdgeListGraph<typename G::weight_type> out(g.num_vertices());
  memsim::NullMem mem;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    g.for_neighbors(v, mem, [&](const auto& nb) { out.add_edge(v, nb.to, nb.weight); });
  }
  return out;
}

/// Graph with zero-weight edges and deliberate duplicate-weight ties.
EdgeListGraph<int> adversarial_graph(vertex_t n, std::uint64_t seed) {
  EdgeListGraph<int> el(n);
  Rng rng(seed);
  for (vertex_t i = 0; i < n; ++i) {
    for (vertex_t j = 0; j < n; ++j) {
      if (i != j && rng.chance(0.15)) {
        // weights drawn from {0, 1, 1, 2, 2, 5}: plateaus and ties
        constexpr int kW[] = {0, 1, 1, 2, 2, 5};
        el.add_edge(i, j, kW[static_cast<std::size_t>(rng.uniform_int(0, 5))]);
      }
    }
  }
  return el;
}

// --------------------------------- request shapes vs oracle, per policy

template <typename Q>
class SearchPolicies : public ::testing::Test {};

using QueuePolicies =
    ::testing::Types<IndexedQueue<int>, IndexedQueue<int, FourAry>, LazyQueue<int>>;
TYPED_TEST_SUITE(SearchPolicies, QueuePolicies);

TYPED_TEST(SearchPolicies, PointToPointMatchesOracle) {
  const auto el = random_digraph<int>(60, 0.08, 1201);
  const AdjacencyArray<int> rep(el);
  QueryEngine<AdjacencyArray<int>, TypeParam> engine(rep);
  for (vertex_t s = 0; s < 60; s += 9) {
    const auto oracle = sssp::dijkstra(rep, s);
    for (vertex_t t = 0; t < 60; t += 5) {
      EXPECT_EQ(engine.distance(s, t), oracle.dist[static_cast<std::size_t>(t)])
          << s << "->" << t;
    }
  }
}

TYPED_TEST(SearchPolicies, PointToPointOutcomeAndExactDistance) {
  EdgeListGraph<int> el(4);
  el.add_edge(0, 1, 5);
  el.add_edge(1, 2, 5);
  // vertex 3 unreachable
  const AdjacencyArray<int> rep(el);
  QueryEngine<AdjacencyArray<int>, TypeParam> engine(rep);
  parallel::TaskPool pool(2);
  const std::vector<Request<int>> reqs{PointToPoint{0, 2}, PointToPoint{0, 3},
                                       PointToPoint{0, 0}};
  const auto r = engine.run(reqs, pool);
  EXPECT_EQ(r[0].outcome, Outcome::target_settled);
  EXPECT_EQ(r[0].target_dist, 10);
  EXPECT_EQ(r[1].outcome, Outcome::exhausted);  // drained without reaching 3
  EXPECT_TRUE(is_inf(r[1].target_dist));
  EXPECT_EQ(r[2].outcome, Outcome::target_settled);  // source settles first
  EXPECT_EQ(r[2].target_dist, 0);
  EXPECT_EQ(r[2].settled, 1u);
}

TYPED_TEST(SearchPolicies, KNearestIsASortedPrefixOfTheOracle) {
  const auto el = random_digraph<int>(80, 0.06, 77);
  const AdjacencyArray<int> rep(el);
  QueryEngine<AdjacencyArray<int>, TypeParam> engine(rep);
  for (vertex_t s = 0; s < 80; s += 13) {
    auto oracle = sssp::dijkstra(rep, s).dist;
    std::vector<int> reach;
    for (const int d : oracle) {
      if (!is_inf(d)) reach.push_back(d);
    }
    std::sort(reach.begin(), reach.end());
    for (const vertex_t k : {vertex_t{1}, vertex_t{4}, vertex_t{17},
                             static_cast<vertex_t>(reach.size() + 10)}) {
      const auto near = engine.k_nearest(s, k);
      const std::size_t want = std::min<std::size_t>(static_cast<std::size_t>(k), reach.size());
      ASSERT_EQ(near.size(), want) << "s=" << s << " k=" << k;
      for (std::size_t i = 0; i < near.size(); ++i) {
        // Distance multiset must match the sorted oracle prefix exactly
        // (vertex identity may differ on ties; distances may not).
        EXPECT_EQ(near[i].dist, reach[i]) << "s=" << s << " k=" << k << " i=" << i;
        EXPECT_EQ(near[i].dist, oracle[static_cast<std::size_t>(near[i].vertex)]);
        if (i > 0) {
          EXPECT_GE(near[i].dist, near[i - 1].dist);  // settling order sorted
        }
      }
    }
  }
}

TYPED_TEST(SearchPolicies, BoundedReturnsExactlyTheVerticesWithinRadius) {
  const auto el = random_digraph<int>(80, 0.06, 313);
  const AdjacencyArray<int> rep(el);
  QueryEngine<AdjacencyArray<int>, TypeParam> engine(rep);
  for (vertex_t s = 0; s < 80; s += 11) {
    const auto oracle = sssp::dijkstra(rep, s).dist;
    for (const int radius : {0, 3, 25, 200}) {
      std::set<vertex_t> expect;
      for (vertex_t v = 0; v < 80; ++v) {
        const int d = oracle[static_cast<std::size_t>(v)];
        if (!is_inf(d) && d <= radius) expect.insert(v);
      }
      const auto got = engine.within(s, radius);
      std::set<vertex_t> got_set;
      for (const auto& item : got) {
        got_set.insert(item.vertex);
        EXPECT_EQ(item.dist, oracle[static_cast<std::size_t>(item.vertex)]);
        EXPECT_LE(item.dist, radius);
      }
      EXPECT_EQ(got_set, expect) << "s=" << s << " radius=" << radius;
    }
  }
}

TYPED_TEST(SearchPolicies, FullSsspBitIdenticalToOracle) {
  const auto el = random_digraph<int>(70, 0.1, 404);
  const AdjacencyArray<int> rep(el);
  QueryEngine<AdjacencyArray<int>, TypeParam> engine(rep);
  for (vertex_t s = 0; s < 70; s += 7) {
    const auto tree = engine.full(s);
    const auto oracle = sssp::dijkstra(rep, s);
    ASSERT_EQ(tree.dist.size(), oracle.dist.size());
    EXPECT_EQ(std::memcmp(tree.dist.data(), oracle.dist.data(),
                          oracle.dist.size() * sizeof(int)),
              0)
        << "source " << s;
  }
}

TYPED_TEST(SearchPolicies, AdversarialZeroWeightsAndTies) {
  const auto el = adversarial_graph(40, 555);
  const AdjacencyArray<int> rep(el);
  QueryEngine<AdjacencyArray<int>, TypeParam> engine(rep);
  for (vertex_t s = 0; s < 40; s += 3) {
    const auto oracle = sssp::dijkstra(rep, s).dist;
    const auto tree = engine.full(s);
    EXPECT_EQ(tree.dist, oracle) << "source " << s;
    for (vertex_t t = 0; t < 40; t += 7) {
      EXPECT_EQ(engine.distance(s, t), oracle[static_cast<std::size_t>(t)]);
    }
    const auto within2 = engine.within(s, 2);
    for (const auto& item : within2) {
      EXPECT_EQ(item.dist, oracle[static_cast<std::size_t>(item.vertex)]);
    }
    // Zero-radius must still return the whole zero-weight plateau.
    std::size_t plateau = 0;
    for (const int d : oracle) plateau += (d == 0) ? 1u : 0u;
    EXPECT_EQ(engine.within(s, 0).size(), plateau) << "source " << s;
  }
}

TYPED_TEST(SearchPolicies, WorksOverAdjacencyListToo) {
  const auto el = random_digraph<int>(48, 0.1, 808);
  const AdjacencyList<int> list(el);
  const AdjacencyArray<int> rep(el);
  QueryEngine<AdjacencyList<int>, TypeParam> engine(list);
  for (vertex_t s = 0; s < 48; s += 12) {
    EXPECT_EQ(engine.full(s).dist, sssp::dijkstra(rep, s).dist);
  }
}

// ------------------------------------------- LazyQueue hardening

TEST(LazyQueueHardening, ExtractMinOnEmptyThrowsInsteadOfUB) {
  // std::pop_heap on an empty range is UB; the hardened queue must
  // refuse with a diagnosable precondition failure — both when fresh
  // and when drained back to empty.
  LazyQueue<int> q(4);
  EXPECT_THROW((void)q.extract_min(), PreconditionError);
  q.insert(2, 7);
  EXPECT_EQ(q.extract_min().vertex, 2);
  EXPECT_THROW((void)q.extract_min(), PreconditionError);
}

TEST(LazyQueueHardening, PeakEntriesIsTheDuplicateHighWater) {
  LazyQueue<int> q(8);
  q.insert(0, 5);
  q.insert(1, 4);
  q.improve(0, 3);  // lazy deletion: duplicates pile up
  q.improve(1, 2);
  EXPECT_EQ(q.peak_entries(), 4u);
  (void)q.extract_min();
  (void)q.extract_min();
  EXPECT_EQ(q.peak_entries(), 4u);  // high-water survives pops
  q.clear();
  EXPECT_EQ(q.peak_entries(), 0u);  // per-search reset
}

// ----------------------------------------------- batch serving / threads

TEST(QueryEngineBatch, MixedRequestsAcrossThreadCountsMatchOracle) {
  const auto el = random_digraph<int>(100, 0.05, 2024);
  const AdjacencyArray<int> rep(el);
  std::vector<Request<int>> reqs;
  Rng rng(9);
  for (int i = 0; i < 64; ++i) {
    const auto s = static_cast<vertex_t>(rng.uniform_int(0, 99));
    switch (rng.uniform_int(0, 3)) {
      case 0: reqs.push_back(PointToPoint{s, static_cast<vertex_t>(rng.uniform_int(0, 99))}); break;
      case 1: reqs.push_back(KNearest{s, static_cast<vertex_t>(rng.uniform_int(1, 20))}); break;
      case 2: reqs.push_back(Bounded<int>{s, static_cast<int>(rng.uniform_int(0, 60))}); break;
      default: reqs.push_back(FullSSSP{s}); break;
    }
  }
  for (int threads = 1; threads <= 8; ++threads) {
    QueryEngine<AdjacencyArray<int>> engine(rep);
    parallel::TaskPool pool(threads);
    std::vector<std::uint64_t> settled(reqs.size(), 0);
    engine.run(std::span<const Request<int>>(reqs), pool,
               [&](std::size_t i, const Request<int>& req, const auto& resp, const auto& sc) {
                 settled[i] = resp.settled;
                 const auto oracle = sssp::dijkstra(rep, source_of(req));
                 // Every touched vertex's dist is exact once settled;
                 // verify all settled entries against the oracle.
                 for (const vertex_t v : sc.settled_order()) {
                   EXPECT_EQ(sc.dist()[static_cast<std::size_t>(v)],
                             oracle.dist[static_cast<std::size_t>(v)])
                       << "req " << i << " v " << v << " threads " << threads;
                 }
               });
    const auto st = engine.stats();
    EXPECT_EQ(st.requests, reqs.size());
    EXPECT_LE(st.scratch_allocs, static_cast<std::uint64_t>(threads));
    EXPECT_EQ(st.scratch_allocs + st.scratch_reuses, reqs.size());
    // Determinism: per-request settled counts are thread-invariant for
    // the indexed queue (one extraction per settled vertex).
    QueryEngine<AdjacencyArray<int>> serial(rep);
    parallel::TaskPool one(1);
    const auto base = serial.run(std::span<const Request<int>>(reqs), one);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      EXPECT_EQ(settled[i], base[i].settled) << "req " << i << " threads " << threads;
    }
  }
}

TEST(QueryEngineBatch, EarlyExitSettlesStrictlyFewerOnSparseGraphs) {
  const auto el = random_digraph<int>(400, 0.02, 31337);
  const AdjacencyArray<int> rep(el);
  QueryEngine<AdjacencyArray<int>> engine(rep);
  parallel::TaskPool pool(4);
  const vertex_t s = 0;
  const std::vector<Request<int>> reqs{FullSSSP{s}, KNearest{s, 8}, Bounded<int>{s, 3},
                                       PointToPoint{s, 1}};
  const auto r = engine.run(reqs, pool);
  const std::uint64_t full = r[0].settled;
  ASSERT_GT(full, 100u) << "graph too disconnected for the bound to mean anything";
  EXPECT_LT(r[1].settled, full);  // k-nearest: at most 8 settle
  EXPECT_EQ(r[1].settled, 8u);
  EXPECT_LT(r[2].settled, full);  // bounded: only the radius-3 ball
  EXPECT_EQ(r[1].outcome, Outcome::k_settled);
  EXPECT_EQ(r[2].outcome, Outcome::radius_exceeded);
  EXPECT_EQ(engine.stats().early_exits, 3u);  // all but the full run
}

TEST(QueryEngineBatch, ConcurrentSerialHelpersAreSafe) {
  // serve() leases scratch under a mutex; hammer it from many threads
  // (the TSan CI job runs this file at several thread counts).
  const auto el = random_digraph<int>(64, 0.1, 616);
  const AdjacencyArray<int> rep(el);
  QueryEngine<AdjacencyArray<int>> engine(rep);
  std::vector<std::vector<int>> oracle;
  for (vertex_t s = 0; s < 8; ++s) oracle.push_back(sssp::dijkstra(rep, s).dist);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const auto s = static_cast<vertex_t>(t);
      for (int round = 0; round < 20; ++round) {
        EXPECT_EQ(engine.full(s).dist, oracle[static_cast<std::size_t>(s)]);
        EXPECT_EQ(engine.distance(s, static_cast<vertex_t>((t + 3) % 8)),
                  oracle[static_cast<std::size_t>(s)][static_cast<std::size_t>((t + 3) % 8)]);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(engine.stats().scratch_allocs, 8u);
}

TEST(QueryEngineBatch, ValidationRejectsBeforeAnyTaskRuns) {
  const auto el = random_digraph<int>(10, 0.2, 5);
  const AdjacencyArray<int> rep(el);
  QueryEngine<AdjacencyArray<int>> engine(rep);
  parallel::TaskPool pool(2);
  const std::vector<Request<int>> bad_source{FullSSSP{10}};
  EXPECT_THROW((void)engine.run(std::span<const Request<int>>(bad_source), pool),
               PreconditionError);
  const std::vector<Request<int>> bad_target{PointToPoint{0, -1}};
  EXPECT_THROW((void)engine.run(std::span<const Request<int>>(bad_target), pool),
               PreconditionError);
  EXPECT_THROW((void)engine.k_nearest(0, 0), PreconditionError);
  EXPECT_THROW((void)engine.within(0, -1), PreconditionError);
  EXPECT_EQ(engine.stats().requests, 0u);
}

// ------------------------------------------------------- dynamic overlay

/// Applies a random update sequence to both the overlay and a plain
/// edge multiset model, then checks the overlay view and queries over
/// it against a from-scratch rebuild of the model.
TEST(DynamicOverlay, RandomizedUpdatesMatchFromScratchRebuild) {
  const auto base_el = random_digraph<int>(48, 0.08, 4711);
  const AdjacencyArray<int> base(base_el);
  DynamicOverlay<int> overlay(base);
  std::vector<graph::Edge<int>> model(base_el.edges().begin(), base_el.edges().end());

  Rng rng(99);
  for (int step = 0; step < 120; ++step) {
    if (rng.chance(0.45) && !model.empty()) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(model.size()) - 1));
      const auto e = model[pick];
      ASSERT_TRUE(overlay.remove_edge(e.from, e.to)) << "step " << step;
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const auto u = static_cast<vertex_t>(rng.uniform_int(0, 47));
      const auto v = static_cast<vertex_t>(rng.uniform_int(0, 47));
      const auto w = static_cast<int>(rng.uniform_int(0, 30));
      overlay.insert_edge(u, v, w);
      model.push_back(graph::Edge<int>{u, v, w});
    }

    if (step % 20 != 19) continue;
    EXPECT_EQ(overlay.num_edges(), static_cast<index_t>(model.size()));
    // View equivalence: per-vertex neighbour multisets match the model.
    EdgeListGraph<int> rebuilt(48);
    for (const auto& e : model) rebuilt.add_edge(e.from, e.to, e.weight);
    const AdjacencyArray<int> fresh(rebuilt);
    memsim::NullMem mem;
    for (vertex_t v = 0; v < 48; ++v) {
      std::multiset<std::pair<vertex_t, int>> got, want;
      overlay.for_neighbors(v, mem, [&](const auto& nb) { got.emplace(nb.to, nb.weight); });
      for (const auto& nb : fresh.neighbors(v)) want.emplace(nb.to, nb.weight);
      ASSERT_EQ(got, want) << "vertex " << v << " step " << step;
    }
    // Query equivalence: engine over the overlay == oracle over rebuild.
    QueryEngine<DynamicOverlay<int>> engine(overlay);
    for (vertex_t s = 0; s < 48; s += 11) {
      const auto tree = engine.full(s);
      const auto oracle = sssp::dijkstra(fresh, s);
      EXPECT_EQ(std::memcmp(tree.dist.data(), oracle.dist.data(), 48 * sizeof(int)), 0)
          << "source " << s << " step " << step;
    }
  }
}

TEST(DynamicOverlay, RemoveSemantics) {
  EdgeListGraph<int> el(4);
  el.add_edge(0, 1, 3);
  el.add_edge(0, 1, 5);  // parallel edge
  const AdjacencyArray<int> base(el);
  DynamicOverlay<int> overlay(base);
  EXPECT_FALSE(overlay.remove_edge(1, 0));  // absent direction
  EXPECT_FALSE(overlay.remove_edge(2, 3));  // absent entirely
  overlay.insert_edge(0, 1, 9);
  EXPECT_EQ(overlay.num_edges(), 3);
  // Removal prefers the spill, then the base; each call removes one.
  EXPECT_TRUE(overlay.remove_edge(0, 1));
  EXPECT_TRUE(overlay.remove_edge(0, 1));
  EXPECT_TRUE(overlay.remove_edge(0, 1));
  EXPECT_FALSE(overlay.remove_edge(0, 1));
  EXPECT_EQ(overlay.num_edges(), 0);
  memsim::NullMem mem;
  int count = 0;
  overlay.for_neighbors(0, mem, [&](const auto&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(DynamicOverlay, ComponentStampsIsolateUntouchedComponents) {
  // Two components: {0,1,2} and {3,4,5}.
  EdgeListGraph<int> el(6);
  el.add_edge(0, 1, 1);
  el.add_edge(1, 2, 1);
  el.add_edge(3, 4, 1);
  el.add_edge(4, 5, 1);
  const AdjacencyArray<int> base(el);
  DynamicOverlay<int> overlay(base);
  EXPECT_TRUE(overlay.connected(0, 2));
  EXPECT_FALSE(overlay.connected(0, 3));

  const auto a0 = overlay.stamp_of(0);
  const auto b0 = overlay.stamp_of(3);
  overlay.insert_edge(2, 0, 7);  // touches only component A
  EXPECT_NE(overlay.stamp_of(0), a0);
  EXPECT_EQ(overlay.stamp_of(3), b0);  // B untouched

  // Bridging edge merges: both sides' stamps move.
  const auto a1 = overlay.stamp_of(0);
  overlay.insert_edge(2, 3, 1);
  EXPECT_TRUE(overlay.connected(0, 5));
  EXPECT_NE(overlay.stamp_of(0), a1);
  EXPECT_NE(overlay.stamp_of(3), b0);
  EXPECT_EQ(overlay.stamp_of(0), overlay.stamp_of(5));  // one component now

  // Removing the bridge: stamps bump, partition stays conservative
  // until rebuild, then splits — carrying stamps forward unchanged.
  const auto merged = overlay.stamp_of(0);
  ASSERT_TRUE(overlay.remove_edge(2, 3));
  EXPECT_NE(overlay.stamp_of(0), merged);
  EXPECT_TRUE(overlay.components_stale());
  EXPECT_TRUE(overlay.connected(0, 5));  // conservative over-approximation
  const auto before_a = overlay.stamp_of(0);
  const auto before_b = overlay.stamp_of(5);
  overlay.rebuild_components();
  EXPECT_FALSE(overlay.components_stale());
  EXPECT_FALSE(overlay.connected(0, 5));  // now precise
  EXPECT_TRUE(overlay.connected(0, 2));
  EXPECT_EQ(overlay.stamp_of(0), before_a);  // rebuild never bumps
  EXPECT_EQ(overlay.stamp_of(5), before_b);
}

TEST(DynamicOverlay, RebuildPreservesEveryVertexStamp) {
  // The rebuilt partition refines the conservative one, and each new
  // component inherits the max member stamp — which equals every
  // member's old stamp (they shared a conservative component). So
  // stamp_of is invariant across rebuild for all vertices.
  const auto el = random_digraph<int>(32, 0.06, 272);
  const AdjacencyArray<int> base(el);
  DynamicOverlay<int> overlay(base);
  Rng rng(7);
  std::vector<graph::Edge<int>> live(el.edges().begin(), el.edges().end());
  for (int i = 0; i < 25 && !live.empty(); ++i) {
    const auto pick =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
    ASSERT_TRUE(overlay.remove_edge(live[pick].from, live[pick].to));
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  std::vector<std::uint64_t> before(32);
  for (vertex_t v = 0; v < 32; ++v) before[static_cast<std::size_t>(v)] = overlay.stamp_of(v);
  overlay.rebuild_components();
  for (vertex_t v = 0; v < 32; ++v) {
    EXPECT_EQ(overlay.stamp_of(v), before[static_cast<std::size_t>(v)]) << "v " << v;
  }
}

// ---------------------------------------------------------- result cache

TEST(ResultCache, HitsServeTheSameTreeWithoutRecompute) {
  const auto el = random_digraph<int>(40, 0.1, 321);
  const AdjacencyArray<int> base(el);
  DynamicOverlay<int> overlay(base);
  ResultCache<int> cache(overlay);
  const auto t1 = cache.get_or_compute(3);
  const auto t2 = cache.get_or_compute(3);
  EXPECT_EQ(t1.get(), t2.get());  // literally the same tree object
  const auto st = cache.stats();
  EXPECT_EQ(st.recomputes, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(cache.get(3)->dist, sssp::dijkstra(base, 3).dist);
}

TEST(ResultCache, OnlyTouchedComponentSourcesRecompute) {
  // Components A = {0..4} (a path), B = {5..9} (a path).
  EdgeListGraph<int> el(10);
  for (vertex_t v = 0; v < 4; ++v) el.add_edge(v, v + 1, 2);
  for (vertex_t v = 5; v < 9; ++v) el.add_edge(v, v + 1, 2);
  const AdjacencyArray<int> base(el);
  DynamicOverlay<int> overlay(base);
  ResultCache<int> cache(overlay);
  parallel::TaskPool pool(4);
  std::vector<vertex_t> sources(10);
  std::iota(sources.begin(), sources.end(), vertex_t{0});

  const auto first = cache.ensure(sources, pool);
  EXPECT_EQ(first.misses, 10u);
  EXPECT_EQ(first.recomputed, 10u);

  const auto all_fresh = cache.ensure(sources, pool);
  EXPECT_EQ(all_fresh.hits, 10u);
  EXPECT_EQ(all_fresh.recomputed, 0u);

  // Shortcut edge inside A: exactly A's five sources go stale.
  overlay.insert_edge(0, 4, 1);
  const auto after = cache.ensure(sources, pool);
  EXPECT_EQ(after.hits, 5u);
  EXPECT_EQ(after.invalidations, 5u);
  EXPECT_EQ(after.misses, 0u);
  EXPECT_EQ(after.recomputed, 5u);

  // Every re-served tree bit-identical to a from-scratch oracle.
  const auto rebuilt = materialize(overlay);
  const AdjacencyArray<int> fresh(rebuilt);
  for (const vertex_t s : sources) {
    const auto tree = cache.get(s);
    ASSERT_TRUE(tree) << "source " << s;
    const auto oracle = sssp::dijkstra(fresh, s);
    EXPECT_EQ(std::memcmp(tree->dist.data(), oracle.dist.data(), 10 * sizeof(int)), 0)
        << "source " << s;
  }
  // B's trees were served from cache, not recomputed: dist to A stays inf.
  EXPECT_TRUE(is_inf(cache.get(7)->dist[0]));
}

TEST(ResultCache, RandomizedUpdateSequencesStayBitIdenticalToFresh) {
  // Four independent 9-vertex blocks: updates stay inside one block so
  // the other components' cached trees must keep serving untouched.
  EdgeListGraph<int> el(36);
  {
    Rng gen(626);
    for (vertex_t block = 0; block < 4; ++block) {
      const vertex_t lo = block * 9;
      for (vertex_t i = 0; i < 9; ++i) {
        for (vertex_t j = 0; j < 9; ++j) {
          if (i != j && gen.chance(0.3)) {
            el.add_edge(lo + i, lo + j, static_cast<int>(gen.uniform_int(1, 20)));
          }
        }
      }
    }
  }
  const AdjacencyArray<int> base(el);
  DynamicOverlay<int> overlay(base);
  ResultCache<int> cache(overlay);
  parallel::TaskPool pool(4);
  std::vector<vertex_t> sources(36);
  std::iota(sources.begin(), sources.end(), vertex_t{0});
  std::vector<graph::Edge<int>> live(el.edges().begin(), el.edges().end());

  Rng rng(1313);
  std::uint64_t total_recomputed = 0;
  for (int round = 0; round < 8; ++round) {
    const int updates = static_cast<int>(rng.uniform_int(1, 4));
    for (int u = 0; u < updates; ++u) {
      if (rng.chance(0.4) && !live.empty()) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        ASSERT_TRUE(overlay.remove_edge(live[pick].from, live[pick].to));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        const auto lo = static_cast<vertex_t>(9 * rng.uniform_int(0, 3));  // stay in-block
        const auto a = static_cast<vertex_t>(lo + rng.uniform_int(0, 8));
        const auto b = static_cast<vertex_t>(lo + rng.uniform_int(0, 8));
        const auto w = static_cast<int>(rng.uniform_int(1, 20));
        overlay.insert_edge(a, b, w);
        live.push_back(graph::Edge<int>{a, b, w});
      }
    }
    const auto report = cache.ensure(sources, pool);
    EXPECT_EQ(report.hits + report.misses + report.invalidations, sources.size());
    total_recomputed += report.recomputed;

    EdgeListGraph<int> rebuilt(36);
    for (const auto& e : live) rebuilt.add_edge(e.from, e.to, e.weight);
    const AdjacencyArray<int> fresh(rebuilt);
    for (const vertex_t s : sources) {
      const auto tree = cache.get(s);
      ASSERT_TRUE(tree) << "round " << round << " source " << s;
      const auto oracle = sssp::dijkstra(fresh, s);
      ASSERT_EQ(std::memcmp(tree->dist.data(), oracle.dist.data(), 36 * sizeof(int)), 0)
          << "round " << round << " source " << s;
    }
  }
  // The whole point: incremental maintenance re-ran far fewer searches
  // than recompute-everything-every-round would have.
  EXPECT_LT(total_recomputed, 8u * sources.size());
}

TEST(ResultCache, RebuildComponentsDoesNotInvalidate) {
  const auto el = random_digraph<int>(24, 0.1, 911);
  const AdjacencyArray<int> base(el);
  DynamicOverlay<int> overlay(base);
  ResultCache<int> cache(overlay);
  parallel::TaskPool pool(2);
  std::vector<vertex_t> sources(24);
  std::iota(sources.begin(), sources.end(), vertex_t{0});
  ASSERT_TRUE(overlay.remove_edge(el.edges()[0].from, el.edges()[0].to));
  (void)cache.ensure(sources, pool);
  overlay.rebuild_components();
  const auto report = cache.ensure(sources, pool);
  EXPECT_EQ(report.hits, sources.size());
  EXPECT_EQ(report.recomputed, 0u);
}

// ------------------------------------------------- instrumented counters

#if defined(CACHEGRAPH_INSTRUMENT)
TEST(QueryCounters, RequestKindsEarlyExitsAndWorkingSetBounds) {
  auto& reg = obs::CounterRegistry::instance();
  reg.reset();
  const auto el = random_digraph<int>(200, 0.03, 77077);
  const AdjacencyArray<int> rep(el);
  QueryEngine<AdjacencyArray<int>> engine(rep);
  parallel::TaskPool pool(2);
  const std::vector<Request<int>> reqs{FullSSSP{0}, KNearest{0, 5}, Bounded<int>{0, 2},
                                       PointToPoint{0, 1}};
  const auto resp = engine.run(reqs, pool);
  EXPECT_EQ(reg.value("query.runs"), 1u);
  EXPECT_EQ(reg.value("query.requests.full_sssp"), 1u);
  EXPECT_EQ(reg.value("query.requests.k_nearest"), 1u);
  EXPECT_EQ(reg.value("query.requests.bounded"), 1u);
  EXPECT_EQ(reg.value("query.requests.point_to_point"), 1u);
  // query.settled sums all four searches; the early-exiting three must
  // keep it well under four full sweeps.
  std::uint64_t sum = 0;
  for (const auto& r : resp) sum += r.settled;
  EXPECT_EQ(reg.value("query.settled"), sum);
  EXPECT_LT(reg.value("query.settled"), 4 * resp[0].settled);
  EXPECT_EQ(reg.value("query.early_exits"), engine.stats().early_exits);
  EXPECT_GT(reg.value("query.relaxations"), 0u);
  EXPECT_EQ(reg.value("query.stale_pops"), 0u);  // indexed queue never pops stale
}

TEST(QueryCounters, LazyQueueReportsStalePops) {
  auto& reg = obs::CounterRegistry::instance();
  reg.reset();
  const auto el = random_digraph<int>(80, 0.2, 1999);
  const AdjacencyArray<int> rep(el);
  QueryEngine<AdjacencyArray<int>, LazyQueue<int>> engine(rep);
  for (vertex_t s = 0; s < 10; ++s) (void)engine.full(s).dist;
  EXPECT_GT(reg.value("query.stale_pops"), 0u);  // dense graph: duplicates certain
  // The O(E) entry high-water of the lazy queue is recorded per search
  // (max across the batch); stale pops certify duplicates existed, so
  // the peak must exceed the plain frontier's minimum of one.
  EXPECT_GT(reg.value("query.lazy.peak_entries"), 1u);
}

TEST(QueryCounters, CacheAndOverlayCounters) {
  auto& reg = obs::CounterRegistry::instance();
  reg.reset();
  EdgeListGraph<int> el(6);
  el.add_edge(0, 1, 1);
  el.add_edge(3, 4, 1);
  const AdjacencyArray<int> base(el);
  DynamicOverlay<int> overlay(base);
  ResultCache<int> cache(overlay);
  parallel::TaskPool pool(2);
  const std::vector<vertex_t> sources{0, 3};
  (void)cache.ensure(sources, pool);
  (void)cache.ensure(sources, pool);
  overlay.insert_edge(1, 0, 2);
  (void)cache.ensure(sources, pool);
  EXPECT_EQ(reg.value("query.cache.misses"), 2u);
  EXPECT_EQ(reg.value("query.cache.hits"), 3u);           // 2 + untouched source 3
  EXPECT_EQ(reg.value("query.cache.invalidations"), 1u);  // source 0 after insert
  EXPECT_EQ(reg.value("query.overlay.inserts"), 1u);
  overlay.rebuild_components();
  EXPECT_EQ(reg.value("query.overlay.rebuilds"), 1u);
}
#endif

// ------------------------------- hardened surface: every status path
//
// Exhaustive coverage of the closed status set through the public
// API: OK, INVALID_ARGUMENT, DEADLINE_EXCEEDED (including the
// deadline-at-zero edge), CANCELLED (before start, mid-search, and
// mid-batch), OVERLOADED (admission reject), RESOURCE_EXHAUSTED
// (scratch pool at capacity). DATA_LOSS is a persistence-layer code —
// reliability_test covers it against the snapshot format.

using reliability::CancelToken;
using reliability::Deadline;
using reliability::StatusCode;

using IntEngine = QueryEngine<AdjacencyArray<int>>;

TEST(QueryStatus, OkAnswersCarryOkStatusOnBothSurfaces) {
  EdgeListGraph<int> el(3);
  el.add_edge(0, 1, 2);
  el.add_edge(1, 2, 2);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  const auto r = engine.try_serve(Request<int>{PointToPoint{0, 2}});
  EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(r.outcome, Outcome::target_settled);
  EXPECT_EQ(r.target_dist, 4);

  parallel::TaskPool pool(2);
  const std::vector<Request<int>> reqs{FullSSSP{0}, KNearest{0, 2}};
  for (const auto& resp : engine.try_run(reqs, pool)) {
    EXPECT_TRUE(resp.status.is_ok()) << resp.status.to_string();
  }
}

TEST(QueryStatus, InvalidArgumentsResolveWithoutThrowing) {
  const auto el = random_digraph<int>(10, 0.2, 3);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  parallel::TaskPool pool(1);
  const std::vector<Request<int>> bad{
      PointToPoint{-1, 2},          // source below range
      PointToPoint{99, 2},          // source above range
      PointToPoint{0, 99},          // target out of range
      KNearest{0, 0},               // k < 1
      Bounded<int>{0, -5},          // negative radius
  };
  for (const auto& req : bad) {
    const auto r = engine.try_serve(req);
    EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument) << r.status.to_string();
    EXPECT_EQ(r.settled, 0u);
  }
  const auto out = engine.try_run(bad, pool);
  for (const auto& r : out) {
    EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  }
  // The legacy surface still treats the same requests as programmer
  // errors (existing callers rely on the throw).
  EXPECT_THROW((void)engine.distance(-1, 2), PreconditionError);
}

TEST(QueryStatus, DeadlineAtZeroSettlesNothing) {
  const auto el = random_digraph<int>(100, 0.05, 5);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  IntEngine::ServeOptions opts;
  opts.deadline = Deadline::after(std::chrono::nanoseconds{0});
  std::uint64_t sink_settled = 99;
  const auto r = engine.try_serve(Request<int>{FullSSSP{0}}, opts,
                                  [&](const IntEngine::Response& resp, const auto&) {
                                    sink_settled = resp.settled;
                                  });
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded) << r.status.to_string();
  EXPECT_EQ(r.outcome, Outcome::deadline_exceeded);
  EXPECT_EQ(r.settled, 0u) << "the entry poll must fire before any work";
  EXPECT_EQ(sink_settled, 0u);
}

TEST(QueryStatus, CancelBeforeStartSettlesNothing) {
  const auto el = random_digraph<int>(100, 0.05, 7);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  CancelToken token;
  token.cancel();
  IntEngine::ServeOptions opts;
  opts.cancel = &token;
  const auto r = engine.try_serve(Request<int>{FullSSSP{0}}, opts);
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled) << r.status.to_string();
  EXPECT_EQ(r.settled, 0u);

  // Batch flavour: a pre-cancelled batch token resolves every request
  // CANCELLED on the submitting thread.
  parallel::TaskPool pool(2);
  const std::vector<Request<int>> reqs{FullSSSP{0}, KNearest{1, 3}, PointToPoint{2, 3}};
  const auto out = engine.try_run(reqs, pool, opts);
  for (const auto& resp : out) {
    EXPECT_EQ(resp.status.code(), StatusCode::kCancelled);
    EXPECT_EQ(resp.settled, 0u);
  }
}

TEST(QueryStatus, MidSearchCancelStopsAtAPollAndKeepsAnExactPrefix) {
  // A long path graph: the search settles vertices in line order, so a
  // cancel from another thread lands mid-run with near-certainty; the
  // invariant checked is prefix exactness, not the stopping point.
  constexpr vertex_t n = 200'000;
  EdgeListGraph<int> el(n);
  for (vertex_t v = 0; v + 1 < n; ++v) el.add_edge(v, v + 1, 1);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  CancelToken token;
  IntEngine::ServeOptions opts;
  opts.cancel = &token;
  opts.check_every = 64;
  std::thread canceller([&token] { token.cancel(); });
  const auto r = engine.try_serve(
      Request<int>{FullSSSP{0}}, opts, [&](const IntEngine::Response& resp, const auto& sc) {
        // Every settled distance in the prefix is exact: on the path
        // graph dist(v) == v.
        std::uint64_t checked = 0;
        for (const vertex_t v : sc.settled_order()) {
          ASSERT_EQ(sc.dist()[static_cast<std::size_t>(v)], v);
          ++checked;
        }
        EXPECT_EQ(checked, resp.settled);
      });
  canceller.join();
  EXPECT_TRUE(r.status.code() == StatusCode::kCancelled || r.status.is_ok())
      << r.status.to_string();
  if (r.status.code() == StatusCode::kCancelled) {
    EXPECT_EQ(r.outcome, Outcome::cancelled);
    EXPECT_LT(r.settled, static_cast<std::uint64_t>(n));
  }
}

TEST(QueryStatus, CancelMidBatchResolvesTheRestCancelled) {
  constexpr vertex_t n = 20'000;
  EdgeListGraph<int> el(n);
  for (vertex_t v = 0; v + 1 < n; ++v) el.add_edge(v, v + 1, 1);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  parallel::TaskPool pool(1);
  const std::vector<Request<int>> reqs(16, Request<int>{FullSSSP{0}});
  CancelToken batch;
  IntEngine::ServeOptions opts;
  opts.cancel = &batch;
  opts.check_every = 16;
  // Every delivery cancels the batch: the first request(s) to finish
  // resolve OK, everything after the flag fires resolves CANCELLED at
  // its entry poll (or at preflight). At most two executors run
  // concurrently here (one worker + the waiting submitter), so at
  // least 14 of 16 must be CANCELLED.
  int ok = 0, cancelled_n = 0;
  engine.try_run(std::span<const Request<int>>(reqs), pool, opts,
                 [&](std::size_t, const Request<int>&, const IntEngine::Response& r,
                     const auto&) {
                   batch.cancel();
                   if (r.status.is_ok()) ++ok;
                   if (r.status.code() == StatusCode::kCancelled) ++cancelled_n;
                 });
  EXPECT_EQ(ok + cancelled_n, 16);
  EXPECT_GE(cancelled_n, 14);
  EXPECT_GE(ok, 1) << "something must have finished to fire the cancel";
}

TEST(QueryStatus, BatchDeadlineBoundsEveryRequest) {
  constexpr vertex_t n = 50'000;
  EdgeListGraph<int> el(n);
  for (vertex_t v = 0; v + 1 < n; ++v) el.add_edge(v, v + 1, 1);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  parallel::TaskPool pool(2);
  const std::vector<Request<int>> reqs(12, Request<int>{FullSSSP{0}});
  IntEngine::ServeOptions opts;
  opts.deadline = Deadline::after(std::chrono::microseconds{200});
  opts.check_every = 16;
  const auto out = engine.try_run(reqs, pool, opts);
  int timed_out = 0;
  for (const auto& r : out) {
    ASSERT_TRUE(r.status.is_ok() || r.status.code() == StatusCode::kDeadlineExceeded)
        << r.status.to_string();
    if (!r.status.is_ok()) ++timed_out;
  }
  EXPECT_GT(timed_out, 0) << "a 200us budget cannot cover 12 full 50k-vertex sweeps";
}

TEST(QueryStatus, AdmissionRejectResolvesOverloaded) {
  constexpr vertex_t n = 60'000;
  EdgeListGraph<int> el(n);
  for (vertex_t v = 0; v + 1 < n; ++v) el.add_edge(v, v + 1, 1);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  engine.set_admission({.max_in_flight = 1, .policy = OverloadPolicy::kReject});
  parallel::TaskPool pool(1);
  const std::vector<Request<int>> reqs(8, Request<int>{FullSSSP{0}});
  const auto out = engine.try_run(reqs, pool);
  int ok = 0, rejected = 0;
  for (const auto& r : out) {
    ASSERT_TRUE(r.status.is_ok() || r.status.code() == StatusCode::kOverloaded)
        << r.status.to_string();
    (r.status.is_ok() ? ok : rejected)++;
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(rejected, 1) << "submission outruns a 50k-vertex sweep on one slot";
  EXPECT_EQ(engine.stats().rejected, static_cast<std::uint64_t>(rejected));
}

TEST(QueryStatus, AdmissionBlockNeverRefusesAndAnswersStayExact) {
  const auto el = random_digraph<int>(300, 0.04, 11);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  engine.set_admission({.max_in_flight = 2, .policy = OverloadPolicy::kBlock});
  parallel::TaskPool pool(1);  // blocking must make progress even on one thread
  std::vector<Request<int>> reqs;
  for (vertex_t s = 0; s < 32; ++s) reqs.push_back(Request<int>{FullSSSP{s % 300}});
  const auto out = engine.try_run(reqs, pool);
  const auto oracle = sssp::dijkstra(rep, 0);
  for (const auto& r : out) {
    EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
  }
  EXPECT_EQ(out[0].settled, [&] {
    std::uint64_t c = 0;
    for (const int d : oracle.dist) c += is_inf(d) ? 0u : 1u;
    return c;
  }());
}

TEST(QueryStatus, AdmissionShedCancelsTheOldestVictim) {
  constexpr vertex_t n = 60'000;
  EdgeListGraph<int> el(n);
  for (vertex_t v = 0; v + 1 < n; ++v) el.add_edge(v, v + 1, 1);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  engine.set_admission({.max_in_flight = 1, .policy = OverloadPolicy::kShed});
  parallel::TaskPool pool(1);
  const std::vector<Request<int>> reqs(8, Request<int>{FullSSSP{0}});
  IntEngine::ServeOptions opts;
  opts.check_every = 16;  // victims must notice the shed quickly
  const auto out = engine.try_run(reqs, pool, opts);
  int ok = 0, cancelled_n = 0;
  for (const auto& r : out) {
    ASSERT_TRUE(r.status.is_ok() || r.status.code() == StatusCode::kCancelled)
        << r.status.to_string();
    (r.status.is_ok() ? ok : cancelled_n)++;
  }
  EXPECT_EQ(ok + cancelled_n, 8);
  EXPECT_GE(engine.stats().shed, 1u) << "oversubscription must have shed someone";
  EXPECT_GE(cancelled_n, 1);
}

TEST(QueryStatus, ScratchExhaustionIsResourceExhaustedAfterRetries) {
  const auto el = random_digraph<int>(50, 0.1, 13);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  engine.set_scratch_capacity(1);
  reliability::BackoffPolicy fast;
  fast.max_attempts = 2;
  fast.initial_delay = std::chrono::microseconds{10};
  engine.set_lease_backoff(fast);
  // Deterministic exhaustion: the serve() sink holds the only scratch
  // while a nested try_serve asks for a second one.
  IntEngine::Response nested;
  engine.serve(Request<int>{FullSSSP{0}}, [&](const auto&, const auto&) {
    nested = engine.try_serve(Request<int>{FullSSSP{1}});
  });
  EXPECT_EQ(nested.status.code(), StatusCode::kResourceExhausted) << nested.status.to_string();
  EXPECT_EQ(engine.stats().lease_failures, 1u);
}

TEST(QueryStatus, ThrowingTaskResolvesCancelledAndBatchCompletes) {
  const auto el = random_digraph<int>(60, 0.1, 17);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  parallel::TaskPool pool(2);
  const std::vector<Request<int>> reqs{FullSSSP{0}, FullSSSP{1}, FullSSSP{2}};
  // A sink that throws is the one failure the engine cannot absorb
  // in-place; the contract is re-delivery with CANCELLED, never a
  // wedged batch or a lost request.
  std::vector<int> deliveries(reqs.size(), 0);
  std::vector<StatusCode> last(reqs.size(), StatusCode::kOk);
  engine.try_run(std::span<const Request<int>>(reqs), pool, {},
                 [&](std::size_t i, const Request<int>&, const IntEngine::Response& r,
                     const auto&) {
                   deliveries[static_cast<std::size_t>(i)]++;
                   last[static_cast<std::size_t>(i)] = r.status.code();
                   if (i == 1 && deliveries[1] == 1) throw std::runtime_error("sink bug");
                 });
  EXPECT_EQ(deliveries[0], 1);
  EXPECT_EQ(deliveries[2], 1);
  EXPECT_EQ(deliveries[1], 2) << "the throwing delivery is retried exactly once";
  EXPECT_EQ(last[1], StatusCode::kCancelled);
  EXPECT_TRUE(last[0] == StatusCode::kOk && last[2] == StatusCode::kOk);
}

TEST(QueryStatus, TryServeMatchesLegacyAnswersWhenNothingGoesWrong) {
  const auto el = random_digraph<int>(120, 0.05, 19);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  for (vertex_t s = 0; s < 120; s += 17) {
    const auto legacy = sssp::dijkstra(rep, s);
    for (vertex_t t = 0; t < 120; t += 23) {
      const auto r = engine.try_serve(Request<int>{PointToPoint{s, t}});
      ASSERT_TRUE(r.status.is_ok());
      EXPECT_EQ(r.target_dist, legacy.dist[static_cast<std::size_t>(t)]) << s << "->" << t;
    }
  }
}

// ----------------------------------------------- MultiTarget requests

TYPED_TEST(SearchPolicies, MultiTargetSettlesTheWholeSetExactly) {
  const auto el = random_digraph<int>(70, 0.07, 901);
  const AdjacencyArray<int> rep(el);
  QueryEngine<AdjacencyArray<int>, TypeParam> engine(rep);
  for (vertex_t s = 0; s < 70; s += 11) {
    const auto oracle = sssp::dijkstra(rep, s);
    const std::vector<vertex_t> targets{3, 17, 17, 42, 69, s};  // duplicate on purpose
    const Request<int> req{MultiTarget{s, targets}};
    const auto r = engine.try_serve(req, {}, [&](const auto& resp, const auto& sc) {
      ASSERT_TRUE(resp.status.is_ok());
      for (const vertex_t t : targets) {
        EXPECT_EQ(sc.dist()[static_cast<std::size_t>(t)],
                  oracle.dist[static_cast<std::size_t>(t)])
            << s << "->" << t;
      }
    });
    ASSERT_TRUE(r.status.is_ok());
    EXPECT_TRUE(r.outcome == Outcome::targets_settled || r.outcome == Outcome::exhausted);
  }
}

TEST(MultiTarget, StopsEarlyOnceTheSetSettles) {
  // A long path: targets near the source must not drag the search to
  // the far end.
  constexpr vertex_t n = 10'000;
  EdgeListGraph<int> el(n);
  for (vertex_t v = 0; v + 1 < n; ++v) el.add_edge(v, v + 1, 1);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  const std::vector<vertex_t> targets{5, 9, 2};
  const auto r = engine.try_serve(Request<int>{MultiTarget{0, targets}});
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.outcome, Outcome::targets_settled);
  EXPECT_EQ(r.settled, 10u);  // 0..9 settle, then the set is complete
}

TEST(MultiTarget, UnreachableTargetsExhaustWithInfiniteDistance) {
  EdgeListGraph<int> el(6);
  el.add_edge(0, 1, 2);  // 2..5 in a separate component
  el.add_edge(2, 3, 1);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  const std::vector<vertex_t> targets{1, 3};
  const auto r = engine.try_serve(Request<int>{MultiTarget{0, targets}}, {},
                                  [&](const auto& resp, const auto& sc) {
                                    ASSERT_TRUE(resp.status.is_ok());
                                    EXPECT_EQ(sc.dist()[1], 2);
                                    EXPECT_TRUE(is_inf(sc.dist()[3]));
                                  });
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.outcome, Outcome::exhausted);  // drained before 3 could settle
}

TEST(MultiTarget, ValidationRejectsEmptySetAndOutOfRangeTargets) {
  const AdjacencyArray<int> rep(EdgeListGraph<int>(4));
  IntEngine engine(rep);
  const std::vector<vertex_t> empty;
  EXPECT_EQ(engine.try_serve(Request<int>{MultiTarget{0, empty}}).status.code(),
            StatusCode::kInvalidArgument);
  const std::vector<vertex_t> oob{1, 4};
  EXPECT_EQ(engine.try_serve(Request<int>{MultiTarget{0, oob}}).status.code(),
            StatusCode::kInvalidArgument);
}

// A rep whose neighbor scan throws DataLossError at one vertex — the
// shape of an out-of-core graph hitting a corrupt block mid-search.
namespace {
struct PoisonedRep {
  using weight_type = int;
  const AdjacencyArray<int>* inner;
  vertex_t poison = kNoVertex;
  [[nodiscard]] vertex_t num_vertices() const { return inner->num_vertices(); }
  [[nodiscard]] index_t num_edges() const { return inner->num_edges(); }
  template <class Mem, class Fn>
  void for_neighbors(vertex_t u, Mem& mem, Fn&& fn) const {
    if (u == poison) throw reliability::DataLossError("poisoned block");
    inner->for_neighbors(u, mem, std::forward<Fn>(fn));
  }
  template <class Mem>
  void map_buffers(Mem& mem) const {
    inner->map_buffers(mem);
  }
  [[nodiscard]] std::size_t footprint_bytes() const { return inner->footprint_bytes(); }
};
}  // namespace

TEST(MultiTarget, TargetMarksDoNotSurviveAThrowingScan) {
  // Regression: target marks used to be erased only on the normal
  // return path, so a search aborted by a thrown DataLossError leaked
  // them into the leased scratch. The NEXT search then mis-counted
  // `pending` — settling a stale mark drained it early and the search
  // reported targets_settled while the real targets sat at inf: silent
  // data loss dressed up as an OK answer.
  constexpr vertex_t n = 100;
  EdgeListGraph<int> el(n);
  for (vertex_t v = 0; v + 1 < n; ++v) el.add_edge(v, v + 1, 1);
  const AdjacencyArray<int> rep(el);
  SearchScratch<int> sc(n);

  // First search: marks {5, 7}, then throws while scanning vertex 3 —
  // before either target settles, so both marks would leak.
  const PoisonedRep poisoned{&rep, 3};
  const std::vector<vertex_t> leaked{5, 7};
  Limits<int> lim1;
  lim1.targets = leaked;
  EXPECT_THROW((void)search<IndexedQueue<int>>(poisoned, 0, lim1, sc),
               reliability::DataLossError);

  // Second search on the SAME scratch against the healthy rep: its
  // target (90) is past the stale marks, which sit right on the path.
  const std::vector<vertex_t> real{90};
  Limits<int> lim2;
  lim2.targets = real;
  const auto out = search<IndexedQueue<int>>(rep, 0, lim2, sc);
  EXPECT_EQ(out, Outcome::targets_settled);
  EXPECT_EQ(sc.dist()[90], 90);  // stale-mark bug: inf, terminated at 5
}

// ------------------------------------ deadline-aware kBlock admission

TEST(BlockBudget, PredicateShedsAtExactlyHalfTheBudget) {
  using clock = std::chrono::steady_clock;
  const clock::time_point enter{};  // synthetic epoch
  const auto deadline = reliability::Deadline::at(enter + std::chrono::milliseconds(100));
  // Strictly before half the budget: keep blocking.
  EXPECT_FALSE(block_budget_exhausted(enter, deadline, enter));
  EXPECT_FALSE(
      block_budget_exhausted(enter, deadline, enter + std::chrono::milliseconds(49)));
  EXPECT_FALSE(block_budget_exhausted(enter, deadline,
                                      enter + std::chrono::milliseconds(50) -
                                          std::chrono::nanoseconds(1)));
  // At and past the half-way mark: shed.
  EXPECT_TRUE(
      block_budget_exhausted(enter, deadline, enter + std::chrono::milliseconds(50)));
  EXPECT_TRUE(
      block_budget_exhausted(enter, deadline, enter + std::chrono::milliseconds(99)));
}

TEST(BlockBudget, HalfIsMeasuredFromBlockEntryNotDeadlineCreation) {
  using clock = std::chrono::steady_clock;
  const clock::time_point t0{};
  const auto deadline = reliability::Deadline::at(t0 + std::chrono::milliseconds(100));
  // Blocking began at t0+60ms, so 20ms of blocking spends half the
  // *remaining* 40ms budget.
  const auto enter = t0 + std::chrono::milliseconds(60);
  EXPECT_FALSE(
      block_budget_exhausted(enter, deadline, enter + std::chrono::milliseconds(19)));
  EXPECT_TRUE(
      block_budget_exhausted(enter, deadline, enter + std::chrono::milliseconds(20)));
}

TEST(BlockBudget, UnarmedDeadlineNeverSheds) {
  using clock = std::chrono::steady_clock;
  const clock::time_point enter{};
  EXPECT_FALSE(block_budget_exhausted(enter, reliability::Deadline::none(),
                                      enter + std::chrono::hours(24)));
}

TEST(BlockBudget, BlockedAdmissionShedsToOverloadedAtHalfTheDeadline) {
  // The deadline is one uncontended sweep, so the half-budget shed
  // fires at ~s/2 while the slot is still held for ~s. The blocked
  // submitter only observes the shed if it gets a CPU slice inside
  // [s/2, s) — a window of width s/2 that must dwarf OS scheduling
  // granularity on a loaded single core. One sweep's duration varies
  // ~100x across build modes (instrument-off Release vs TSan), so
  // calibrate the path length: probe a warm sweep at a seed size and
  // rescale toward a target long enough that the window is wide in
  // every build.
  const auto build_path = [](vertex_t n) {
    EdgeListGraph<int> el(n);
    for (vertex_t v = 0; v + 1 < n; ++v) el.add_edge(v, v + 1, 1);
    return std::make_unique<const AdjacencyArray<int>>(el);
  };
  const auto warm_sweep = [](IntEngine& e) {
    EXPECT_TRUE(e.try_serve(Request<int>{FullSSSP{0}}).status.is_ok());  // warm scratch
    const auto c0 = std::chrono::steady_clock::now();
    EXPECT_TRUE(e.try_serve(Request<int>{FullSSSP{0}}).status.is_ok());
    return std::max<std::chrono::steady_clock::duration>(
        std::chrono::steady_clock::now() - c0, std::chrono::milliseconds(1));
  };
  constexpr auto kTargetSweep = std::chrono::milliseconds(80);
  vertex_t n = 1 << 18;
  auto rep = build_path(n);
  {
    IntEngine probe(*rep);
    const auto s0 = warm_sweep(probe);
    if (s0 < kTargetSweep) {
      const double scale =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(kTargetSweep).count()) /
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(s0).count());
      n = static_cast<vertex_t>(static_cast<double>(n) * std::min(scale, 48.0));
      rep = build_path(n);
    }
  }
  IntEngine engine(*rep);
  engine.set_admission({.max_in_flight = 1, .policy = OverloadPolicy::kBlock});
  parallel::TaskPool pool(2);
  const auto sweep = warm_sweep(engine);

  // The blocked submitter participates through pool.help_one(), so on
  // a quiet pool it drains its own predecessor and unblocks before the
  // shed can ever fire. Hot external drainers claim the queued sweep
  // first, which is exactly the production shape (other threads serve
  // the pool): the submitter then stays blocked while the sweep runs
  // elsewhere, and must shed OVERLOADED at half its remaining budget
  // rather than ride the block to a certain DEADLINE_EXCEEDED. The
  // submitter can still win the race to its own task on a given
  // attempt, so the scenario retries; the accounting invariants hold
  // on every run.
  std::atomic<bool> stop{false};
  std::vector<std::thread> drainers;
  for (int i = 0; i < 2; ++i) {
    drainers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (!pool.help_one()) std::this_thread::yield();
      }
    });
  }

  const std::vector<Request<int>> reqs(4, Request<int>{FullSSSP{0}});
  int overloaded_total = 0;
  for (int attempt = 0; attempt < 10 && overloaded_total == 0; ++attempt) {
    IntEngine::ServeOptions opts;
    opts.deadline = reliability::Deadline::after(sweep);
    const auto out = engine.try_run(reqs, pool, opts);
    int ok = 0, overloaded = 0, deadline = 0;
    for (const auto& r : out) {
      switch (r.status.code()) {
        case StatusCode::kOk: ++ok; break;
        case StatusCode::kOverloaded: ++overloaded; break;
        case StatusCode::kDeadlineExceeded: ++deadline; break;
        default: FAIL() << r.status.to_string();
      }
    }
    EXPECT_EQ(ok + overloaded + deadline, 4);
    overloaded_total += overloaded;
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : drainers) t.join();
  EXPECT_GE(overloaded_total, 1)
      << "a one-sweep budget cannot cover a queue of equal sweeps";
  EXPECT_EQ(engine.stats().deadline_rejects, static_cast<std::uint64_t>(overloaded_total));
}

TEST(BlockBudget, BlockWithoutADeadlineStillNeverRefuses) {
  const auto el = random_digraph<int>(200, 0.05, 47);
  const AdjacencyArray<int> rep(el);
  IntEngine engine(rep);
  engine.set_admission({.max_in_flight = 1, .policy = OverloadPolicy::kBlock});
  parallel::TaskPool pool(1);
  const std::vector<Request<int>> reqs(8, Request<int>{FullSSSP{0}});
  const auto out = engine.try_run(reqs, pool);
  for (const auto& r : out) EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(engine.stats().deadline_rejects, 0u);
}

}  // namespace
}  // namespace cachegraph::query
