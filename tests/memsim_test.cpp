// Unit tests for the cache simulator: single-level behaviour (LRU,
// associativity, write-back), victim cache, TLB, two-level hierarchy
// accounting, machine presets, and the deterministic address map.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cachegraph/memsim/cache_level.hpp"
#include "cachegraph/memsim/hierarchy.hpp"
#include "cachegraph/memsim/machine_configs.hpp"
#include "cachegraph/memsim/mem_policy.hpp"
#include "test_util.hpp"

namespace cachegraph::memsim {
namespace {

CacheConfig tiny(std::size_t size, std::size_t line, std::size_t assoc) {
  CacheConfig c;
  c.size_bytes = size;
  c.line_bytes = line;
  c.associativity = assoc;
  return c;
}

// ------------------------------------------------------------ CacheLevel

TEST(CacheLevel, ColdMissThenHit) {
  CacheLevel l(tiny(1024, 64, 2));
  EXPECT_FALSE(l.access(0, false));
  l.install(0, false);
  EXPECT_TRUE(l.access(0, false));
  EXPECT_EQ(l.stats().accesses, 2u);
  EXPECT_EQ(l.stats().misses, 1u);
}

TEST(CacheLevel, DirectMappedConflict) {
  // 1024 B direct-mapped, 64 B lines -> 16 sets. Lines 0 and 16 share set 0.
  CacheLevel l(tiny(1024, 64, 1));
  l.install(0, false);
  const Eviction ev = l.install(16, false);
  EXPECT_TRUE(ev.valid);
  EXPECT_EQ(ev.line_addr, 0u);
  EXPECT_FALSE(l.contains(0));
  EXPECT_TRUE(l.contains(16));
}

TEST(CacheLevel, TwoWayHoldsBothConflictingLines) {
  CacheLevel l(tiny(1024, 64, 2));  // 8 sets; lines 0 and 8 share set 0
  l.install(0, false);
  const Eviction ev = l.install(8, false);
  EXPECT_FALSE(ev.valid);
  EXPECT_TRUE(l.contains(0));
  EXPECT_TRUE(l.contains(8));
}

TEST(CacheLevel, LruEvictsLeastRecentlyUsed) {
  CacheLevel l(tiny(1024, 64, 2));  // 8 sets; set 0: lines 0, 8, 16, ...
  l.install(0, false);
  l.install(8, false);
  l.access(0, false);  // 0 becomes MRU
  const Eviction ev = l.install(16, false);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.line_addr, 8u);  // 8 was LRU
  EXPECT_TRUE(l.contains(0));
  EXPECT_TRUE(l.contains(16));
}

TEST(CacheLevel, WriteMarksDirtyAndEvictionReportsIt) {
  CacheLevel l(tiny(1024, 64, 1));
  l.install(0, false);
  l.access(0, true);  // dirty the line
  const Eviction ev = l.install(16, false);
  ASSERT_TRUE(ev.valid);
  EXPECT_TRUE(ev.dirty);
  EXPECT_EQ(l.stats().writebacks, 1u);
}

TEST(CacheLevel, CleanEvictionIsNotAWriteback) {
  CacheLevel l(tiny(1024, 64, 1));
  l.install(0, false);
  l.install(16, false);
  EXPECT_EQ(l.stats().writebacks, 0u);
}

TEST(CacheLevel, FullyAssociativeUsesWholeCapacity) {
  CacheLevel l(tiny(512, 64, 0));  // 8 lines, fully associative
  for (std::uint64_t a = 0; a < 8; ++a) l.install(a * 100, false);
  for (std::uint64_t a = 0; a < 8; ++a) EXPECT_TRUE(l.contains(a * 100));
  const Eviction ev = l.install(9999, false);
  EXPECT_TRUE(ev.valid);
}

TEST(CacheLevel, FlushEmptiesContentsKeepsStats) {
  CacheLevel l(tiny(1024, 64, 2));
  l.access(0, false);
  l.install(0, false);
  l.flush();
  EXPECT_FALSE(l.contains(0));
  EXPECT_EQ(l.stats().accesses, 1u);
}

TEST(CacheLevel, InvalidateRemovesLine) {
  CacheLevel l(tiny(1024, 64, 2));
  l.install(0, false);
  l.invalidate(0);
  EXPECT_FALSE(l.contains(0));
}

TEST(CacheLevel, MarkDirtyOnlyWhenResident) {
  CacheLevel l(tiny(1024, 64, 2));
  EXPECT_FALSE(l.mark_dirty(5));
  l.install(5, false);
  EXPECT_TRUE(l.mark_dirty(5));
}

TEST(CacheLevel, RejectsNonPow2Geometry) {
  EXPECT_THROW(CacheLevel(tiny(1000, 64, 2)), PreconditionError);
  const CacheConfig bad_line = tiny(1024, 48, 1);
  EXPECT_THROW(CacheLevel{bad_line}, PreconditionError);
}

TEST(CacheLevel, MissRateComputation) {
  CacheLevel l(tiny(1024, 64, 2));
  l.access(0, false);
  l.install(0, false);
  l.access(0, false);
  l.access(0, false);
  l.access(64 / 64 * 99, false);  // miss
  EXPECT_NEAR(l.stats().miss_rate(), 2.0 / 4.0, 1e-12);
}

// ------------------------------------------------------------ VictimCache

TEST(VictimCache, HoldsUpToCapacity) {
  VictimCache v(2);
  EXPECT_FALSE(v.insert(1, false).valid);
  EXPECT_FALSE(v.insert(2, false).valid);
  const Eviction ev = v.insert(3, false);
  EXPECT_TRUE(ev.valid);
  EXPECT_EQ(ev.line_addr, 1u);  // LRU slot
}

TEST(VictimCache, ExtractRemovesAndReportsDirty) {
  VictimCache v(4);
  v.insert(7, true);
  bool dirty = false;
  EXPECT_TRUE(v.extract(7, &dirty));
  EXPECT_TRUE(dirty);
  EXPECT_FALSE(v.extract(7, &dirty));  // gone now
}

// ------------------------------------------------------------------ Tlb

TEST(Tlb, CountsPageMisses) {
  Tlb t(2, 4096);
  t.access(0);       // miss
  t.access(100);     // same page: hit
  t.access(4096);    // miss
  t.access(8192);    // miss, evicts page 0 (LRU)
  t.access(0);       // miss again
  EXPECT_EQ(t.stats().accesses, 5u);
  EXPECT_EQ(t.stats().misses, 4u);
}

// -------------------------------------------------------- CacheHierarchy

MachineConfig micro_machine() {
  MachineConfig m;
  m.name = "micro";
  m.l1 = CacheConfig{1024, 64, 2, true, true};
  m.l2 = CacheConfig{4096, 64, 4, true, true};
  m.tlb_entries = 4;
  return m;
}

TEST(Hierarchy, FirstTouchMissesBothLevels) {
  CacheHierarchy h(micro_machine());
  h.read(0, 4);
  const SimStats s = h.stats();
  EXPECT_EQ(s.l1.accesses, 1u);
  EXPECT_EQ(s.l1.misses, 1u);
  EXPECT_EQ(s.l2.accesses, 1u);
  EXPECT_EQ(s.l2.misses, 1u);
  EXPECT_EQ(s.mem_reads, 1u);
}

TEST(Hierarchy, SecondTouchHitsL1) {
  CacheHierarchy h(micro_machine());
  h.read(0, 4);
  h.read(8, 4);  // same 64 B line
  const SimStats s = h.stats();
  EXPECT_EQ(s.l1.accesses, 2u);
  EXPECT_EQ(s.l1.misses, 1u);
  EXPECT_EQ(s.l2.accesses, 1u);
}

TEST(Hierarchy, LineSpanningAccessCostsTwoLookups) {
  CacheHierarchy h(micro_machine());
  h.read(60, 8);  // spans lines 0 and 1
  const SimStats s = h.stats();
  EXPECT_EQ(s.l1.accesses, 2u);
  EXPECT_EQ(s.l1.misses, 2u);
}

TEST(Hierarchy, EvictedFromL1StillHitsL2) {
  CacheHierarchy h(micro_machine());
  // L1: 1 KB 2-way 64 B lines -> 8 sets. Lines 0, 8*64=512 B apart map
  // to the same set; three of them overflow L1's two ways but fit L2.
  h.read(0, 4);
  h.read(512, 4);
  h.read(1024, 4);  // evicts line 0 from L1
  h.read(0, 4);     // L1 miss, L2 hit
  const SimStats s = h.stats();
  EXPECT_EQ(s.l1.misses, 4u);
  EXPECT_EQ(s.l2.accesses, 4u);
  EXPECT_EQ(s.l2.misses, 3u);
  EXPECT_EQ(s.mem_reads, 3u);
}

TEST(Hierarchy, DirtyEvictionWritesBackToL2NotMemory) {
  CacheHierarchy h(micro_machine());
  h.write(0, 4);
  h.read(512, 4);
  h.read(1024, 4);  // dirty line 0 leaves L1, lands in L2
  const SimStats s = h.stats();
  EXPECT_EQ(s.mem_writebacks, 0u);
  EXPECT_EQ(s.l1.writebacks, 1u);
}

TEST(Hierarchy, SequentialStreamMissesOncePerLine) {
  CacheHierarchy h(micro_machine());
  for (std::uint64_t b = 0; b < 1024; b += 4) h.read(b, 4);
  const SimStats s = h.stats();
  EXPECT_EQ(s.l1.accesses, 256u);
  EXPECT_EQ(s.l1.misses, 16u);  // 1024 B / 64 B lines
}

TEST(Hierarchy, VictimCacheCatchesConflictMisses) {
  MachineConfig m = micro_machine();
  m.l1.associativity = 1;  // 16 sets direct-mapped: 0 and 1024 conflict
  m.victim_entries = 4;
  CacheHierarchy h(m);
  h.read(0, 4);
  h.read(1024, 4);  // evicts 0 into victim
  h.read(0, 4);     // victim hit, not an L2 access
  const SimStats s = h.stats();
  EXPECT_EQ(s.victim_hits, 1u);
  EXPECT_EQ(s.l2.accesses, 2u);
}

TEST(Hierarchy, ResetStatsZeroesCounters) {
  CacheHierarchy h(micro_machine());
  h.read(0, 4);
  h.reset_stats();
  const SimStats s = h.stats();
  EXPECT_EQ(s.l1.accesses, 0u);
  EXPECT_EQ(s.mem_reads, 0u);
}

TEST(Hierarchy, FlushForcesColdMisses) {
  CacheHierarchy h(micro_machine());
  h.read(0, 4);
  h.flush();
  h.read(0, 4);
  EXPECT_EQ(h.stats().l1.misses, 2u);
}

TEST(Hierarchy, L2LinesWiderThanL1) {
  MachineConfig m = micro_machine();
  m.l1.line_bytes = 32;
  m.l2.line_bytes = 64;
  CacheHierarchy h(m);
  h.read(0, 4);   // miss both
  h.read(32, 4);  // L1 miss (different 32 B line) but L2 hit (same 64 B line)
  const SimStats s = h.stats();
  EXPECT_EQ(s.l1.misses, 2u);
  EXPECT_EQ(s.l2.misses, 1u);
  EXPECT_EQ(s.mem_reads, 1u);
}

TEST(Hierarchy, MemoryTrafficLinesAddsReadsAndWritebacks) {
  SimStats s;
  s.mem_reads = 10;
  s.mem_writebacks = 4;
  EXPECT_EQ(s.memory_traffic_lines(), 14u);
}

// ------------------------------------------- analytic access patterns

TEST(HierarchyAnalytic, ResidentWorkingSetHitsAfterWarmup) {
  // Working set == half of L1: after one warm-up pass, every access hits.
  CacheHierarchy h(micro_machine());  // 1 KB L1
  for (std::uint64_t b = 0; b < 512; b += 4) h.read(b, 4);
  const auto warm = h.stats();
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t b = 0; b < 512; b += 4) h.read(b, 4);
  }
  const auto after = h.stats();
  EXPECT_EQ(after.l1.misses, warm.l1.misses) << "no further misses once resident";
}

TEST(HierarchyAnalytic, DirectMappedThrashingMissesEveryAccess) {
  // Two lines mapping to the same set of a direct-mapped cache,
  // accessed alternately: every access misses (classic ping-pong).
  MachineConfig m = micro_machine();
  m.l1.associativity = 1;  // 16 sets of 64 B
  CacheHierarchy h(m);
  for (int i = 0; i < 50; ++i) {
    h.read(0, 4);     // set 0
    h.read(1024, 4);  // also set 0
  }
  EXPECT_EQ(h.stats().l1.misses, 100u);
  // The same pattern on a 2-way cache misses exactly twice (cold).
  CacheHierarchy h2(micro_machine());
  for (int i = 0; i < 50; ++i) {
    h2.read(0, 4);
    h2.read(1024, 4);
  }
  EXPECT_EQ(h2.stats().l1.misses, 2u);
}

TEST(HierarchyAnalytic, CyclicScanOverCapacityPlusOneThrashesUnderLru) {
  // Scanning C+1 lines cyclically under true LRU evicts exactly the
  // line needed next: every access misses (the classic LRU pathology).
  MachineConfig m = micro_machine();
  m.l1 = CacheConfig{1024, 64, 0};  // fully associative, 16 lines
  CacheHierarchy h(m);
  const int lines = 17;
  const int passes = 10;
  for (int p = 0; p < passes; ++p) {
    for (int l = 0; l < lines; ++l) h.read(static_cast<std::uint64_t>(l) * 64, 4);
  }
  EXPECT_EQ(h.stats().l1.misses, static_cast<std::uint64_t>(lines * passes));
}

TEST(HierarchyAnalytic, StridedScanTouchesOneMissPerLine) {
  // 8-byte stride over 4 KB: two accesses per 64 B L2 line... at the L1
  // (64 B lines) exactly 4096/64 = 64 cold misses regardless of stride
  // granularity, as long as the stride is below the line size.
  CacheHierarchy h(micro_machine());
  for (std::uint64_t b = 0; b < 4096; b += 8) h.read(b, 4);
  EXPECT_EQ(h.stats().l1.misses, 64u);
  EXPECT_EQ(h.stats().l1.accesses, 512u);
}

// ------------------------------------------------------------ three-level

TEST(ThreeLevel, L3CatchesL2Evictions) {
  MachineConfig m = micro_machine();  // 1 KB L1 / 4 KB L2
  m.l3 = CacheConfig{16384, 64, 4};   // 16 KB L3
  CacheHierarchy h(m);
  // Stream 8 KB: overflows L2 but fits L3; second pass must hit L3 for
  // the lines L2 lost, without touching memory again.
  for (std::uint64_t b = 0; b < 8192; b += 64) h.read(b, 4);
  const auto cold = h.stats();
  EXPECT_EQ(cold.mem_reads, 128u);
  for (std::uint64_t b = 0; b < 8192; b += 64) h.read(b, 4);
  const auto warm = h.stats();
  EXPECT_EQ(warm.mem_reads, 128u) << "no new memory reads: everything lives in L3";
  EXPECT_GT(warm.l3.accesses, cold.l3.accesses);
}

TEST(ThreeLevel, DirtyChainReachesMemoryOnlyWhenL3Overflows) {
  MachineConfig m = micro_machine();
  m.l3 = CacheConfig{8192, 64, 0};  // fully associative 8 KB L3 (128 lines)
  CacheHierarchy h(m);
  // Dirty 4 KB (64 lines): fits L3, so no memory writebacks even after
  // they age out of L1/L2.
  for (std::uint64_t b = 0; b < 4096; b += 64) h.write(b, 4);
  for (std::uint64_t b = 16384; b < 20480; b += 64) h.read(b, 4);  // push them out
  EXPECT_EQ(h.stats().mem_writebacks, 0u);
  // Now dirty far more than L3 holds: dirty lines must reach memory.
  for (std::uint64_t b = 0; b < 65536; b += 64) h.write(b, 4);
  EXPECT_GT(h.stats().mem_writebacks, 0u);
}

TEST(ThreeLevel, StatsStayZeroWithoutL3) {
  CacheHierarchy h(micro_machine());
  for (std::uint64_t b = 0; b < 4096; b += 64) h.read(b, 4);
  EXPECT_EQ(h.stats().l3.accesses, 0u);
  EXPECT_EQ(h.stats().l3.misses, 0u);
}

TEST(ThreeLevel, ModernHostPresetValidates) {
  const auto m = modern_host();
  EXPECT_TRUE(m.has_l3());
  EXPECT_EQ(m.l3.size_bytes, 32u * 1024 * 1024);
  EXPECT_NO_THROW(CacheHierarchy{m});
}

// --------------------------------------------------------- machine configs

TEST(MachineConfigs, AllPresetsValidate) {
  for (const auto& m : all_machines()) {
    EXPECT_NO_THROW(m.l1.validate()) << m.name;
    EXPECT_NO_THROW(m.l2.validate()) << m.name;
    EXPECT_NO_THROW(CacheHierarchy{m}) << m.name;
  }
}

TEST(MachineConfigs, PaperGeometry) {
  const auto p3 = pentium3();
  EXPECT_EQ(p3.l1.size_bytes, 32u * 1024);
  EXPECT_EQ(p3.l1.associativity, 4u);
  EXPECT_EQ(p3.l2.size_bytes, 1u * 1024 * 1024);

  const auto us3 = ultrasparc3();
  EXPECT_EQ(us3.l2.associativity, 1u);  // direct mapped
  EXPECT_EQ(us3.l2.size_bytes, 8u * 1024 * 1024);

  const auto alpha = alpha21264();
  EXPECT_EQ(alpha.victim_entries, 8u);

  const auto ss = simplescalar_default();
  EXPECT_EQ(ss.l1.size_bytes, 16u * 1024);
  EXPECT_EQ(ss.l2.size_bytes, 256u * 1024);
}

// -------------------------------------------------------------- policies

TEST(AddressMapTest, TranslationIsDeterministicAndDisjoint) {
  int x = 0, y = 0;
  AddressMap m1, m2;
  const auto a1 = m1.map(&x, sizeof x);
  const auto b1 = m1.map(&y, sizeof y);
  const auto a2 = m2.map(&x, sizeof x);
  EXPECT_EQ(a1, a2);  // same registration order -> same virtual base
  EXPECT_NE(a1, b1);
  EXPECT_EQ(m1.translate(reinterpret_cast<std::uint64_t>(&x)), a1);
  EXPECT_EQ(m1.translate(reinterpret_cast<std::uint64_t>(&y)), b1);
}

TEST(SimMemTest, RoutesAccessesToHierarchy) {
  CacheHierarchy h(micro_machine());
  SimMem mem(h);
  int data[16] = {};
  mem.map_buffer(data, sizeof data);
  mem.read(&data[0]);
  mem.write(&data[1]);
  mem.read_range(&data[0], 16);
  EXPECT_GT(h.stats().l1.accesses, 0u);
}

TEST(SimMemTest, SameAccessSequenceSameStats) {
  // Run the same logical access pattern on two hierarchies through two
  // different host buffers: mapped addressing must produce identical
  // simulated counters.
  auto run = [](int* buf) {
    CacheHierarchy h(micro_machine());
    SimMem mem(h);
    mem.map_buffer(buf, 4096 * sizeof(int));
    for (int rep = 0; rep < 3; ++rep) {
      for (int i = 0; i < 4096; i += 7) mem.read(&buf[i]);
    }
    return h.stats();
  };
  std::vector<int> b1(4096), b2(4096);
  const SimStats s1 = run(b1.data());
  const SimStats s2 = run(b2.data());
  EXPECT_EQ(s1.l1.accesses, s2.l1.accesses);
  EXPECT_EQ(s1.l1.misses, s2.l1.misses);
  EXPECT_EQ(s1.l2.misses, s2.l2.misses);
  EXPECT_EQ(s1.mem_reads, s2.mem_reads);
}

TEST(SimStatsTest, ToJsonIsValidAndCarriesCounters) {
  CacheHierarchy h(micro_machine());
  SimMem mem(h);
  std::vector<int> buf(4096);
  mem.map_buffer(buf.data(), buf.size() * sizeof(int));
  for (int i = 0; i < 4096; i += 3) mem.read(&buf[static_cast<std::size_t>(i)]);

  const SimStats s = h.stats();
  const std::string j = s.to_json();
  EXPECT_TRUE(testutil::json_is_valid(j)) << j;
  EXPECT_NE(j.find("\"l1\""), std::string::npos);
  EXPECT_NE(j.find("\"memory_traffic_lines\""), std::string::npos);
  // The serialized L1 access count matches the struct.
  EXPECT_NE(j.find("\"accesses\":" + std::to_string(s.l1.accesses)), std::string::npos) << j;
}

TEST(SimStatsTest, StatsSurviveResetAndRerun) {
  // Regression: reset_stats() + an identical re-run must reproduce the
  // first run's counters exactly (the Harness relies on this when one
  // hierarchy is reused across recorded simulation runs).
  CacheHierarchy h(micro_machine());
  std::vector<int> buf(4096);
  auto run = [&] {
    SimMem mem(h);
    mem.map_buffer(buf.data(), buf.size() * sizeof(int));
    for (int rep = 0; rep < 2; ++rep) {
      for (int i = 0; i < 4096; i += 5) {
        mem.read(&buf[static_cast<std::size_t>(i)]);
        if (i % 10 == 0) mem.write(&buf[static_cast<std::size_t>(i)]);
      }
    }
  };
  run();
  const SimStats first = h.stats();
  EXPECT_GT(first.l1.accesses, 0u);

  h.reset_stats();
  const SimStats cleared = h.stats();
  EXPECT_EQ(cleared.l1.accesses, 0u);
  EXPECT_EQ(cleared.l2.misses, 0u);
  EXPECT_EQ(cleared.memory_traffic_lines(), 0u);

  run();
  const SimStats second = h.stats();
  // Note: the cache *contents* are not reset, so the second run starts
  // warm; only the sizes drive this micro machine to full eviction.
  EXPECT_EQ(second.l1.accesses, first.l1.accesses);
  EXPECT_EQ(second.tlb.accesses, first.tlb.accesses);
}

TEST(NullMemTest, SatisfiesConceptAndDoesNothing) {
  static_assert(MemPolicy<NullMem>);
  static_assert(MemPolicy<SimMem>);
  static_assert(!NullMem::tracing);
  static_assert(SimMem::tracing);
  NullMem m;
  int x = 3;
  m.read(&x);
  m.write(&x);
  m.read_range(&x, 1);
  SUCCEED();
}

}  // namespace
}  // namespace cachegraph::memsim
