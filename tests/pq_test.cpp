// Tests for all four priority queues against a common oracle, including
// heavy randomized interleavings of insert / extract-min / decrease-key
// — the exact operation mix Dijkstra and Prim generate.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "cachegraph/common/rng.hpp"
#include "cachegraph/pq/binary_heap.hpp"
#include "cachegraph/pq/concepts.hpp"
#include "cachegraph/pq/dary_heap.hpp"
#include "cachegraph/pq/fibonacci_heap.hpp"
#include "cachegraph/pq/pairing_heap.hpp"

namespace cachegraph::pq {
namespace {

template <typename H>
class HeapTest : public ::testing::Test {};

using Heaps = ::testing::Types<BinaryHeap<int>, DAryHeap<int, 4>, DAryHeap<int, 8>,
                               PairingHeap<int>, FibonacciHeap<int>>;
TYPED_TEST_SUITE(HeapTest, Heaps);

static_assert(IndexedHeap<BinaryHeap<int>>);
static_assert(IndexedHeap<DAryHeap<int, 4>>);
static_assert(IndexedHeap<PairingHeap<int>>);
static_assert(IndexedHeap<FibonacciHeap<int>>);
static_assert(IndexedHeap<BinaryHeap<double>>);

TYPED_TEST(HeapTest, EmptyOnConstruction) {
  TypeParam h(16);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_FALSE(h.contains(3));
}

TYPED_TEST(HeapTest, SingleElement) {
  TypeParam h(4);
  h.insert(2, 17);
  EXPECT_FALSE(h.empty());
  EXPECT_TRUE(h.contains(2));
  EXPECT_EQ(h.key_of(2), 17);
  const auto e = h.extract_min();
  EXPECT_EQ(e.vertex, 2);
  EXPECT_EQ(e.key, 17);
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.contains(2));
}

TYPED_TEST(HeapTest, ExtractsInSortedOrder) {
  const int n = 200;
  std::vector<int> keys(n);
  Rng rng(5);
  for (auto& k : keys) k = static_cast<int>(rng.below(10000));
  TypeParam h(n);
  for (int v = 0; v < n; ++v) h.insert(v, keys[static_cast<std::size_t>(v)]);

  std::vector<int> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < n; ++i) {
    const auto e = h.extract_min();
    EXPECT_EQ(e.key, sorted[static_cast<std::size_t>(i)]) << "extraction " << i;
    EXPECT_EQ(e.key, keys[static_cast<std::size_t>(e.vertex)]);
  }
  EXPECT_TRUE(h.empty());
}

TYPED_TEST(HeapTest, DecreaseKeyMovesToFront) {
  TypeParam h(8);
  for (int v = 0; v < 8; ++v) h.insert(v, 100 + v);
  h.decrease_key(7, 1);
  const auto e = h.extract_min();
  EXPECT_EQ(e.vertex, 7);
  EXPECT_EQ(e.key, 1);
}

TYPED_TEST(HeapTest, DecreaseKeyWithHigherKeyIsNoOp) {
  TypeParam h(4);
  h.insert(0, 10);
  h.insert(1, 20);
  h.decrease_key(1, 30);  // not lower: ignored (Update semantics)
  EXPECT_EQ(h.key_of(1), 20);
  EXPECT_EQ(h.extract_min().vertex, 0);
  EXPECT_EQ(h.extract_min().vertex, 1);
}

TYPED_TEST(HeapTest, DuplicateKeysAllComeOut) {
  TypeParam h(10);
  for (int v = 0; v < 10; ++v) h.insert(v, 7);
  std::vector<bool> seen(10, false);
  for (int i = 0; i < 10; ++i) {
    const auto e = h.extract_min();
    EXPECT_EQ(e.key, 7);
    EXPECT_FALSE(seen[static_cast<std::size_t>(e.vertex)]);
    seen[static_cast<std::size_t>(e.vertex)] = true;
  }
}

TYPED_TEST(HeapTest, ReinsertAfterExtract) {
  TypeParam h(4);
  h.insert(1, 5);
  EXPECT_EQ(h.extract_min().vertex, 1);
  h.insert(1, 3);
  EXPECT_TRUE(h.contains(1));
  EXPECT_EQ(h.extract_min().key, 3);
}

TYPED_TEST(HeapTest, ExtractFromEmptyThrows) {
  TypeParam h(2);
  EXPECT_THROW(h.extract_min(), PreconditionError);
}

TYPED_TEST(HeapTest, RandomizedDijkstraLikeWorkloadMatchesOracle) {
  // Oracle: a sorted map from key to vertex set, supporting the same ops.
  const int n = 500;
  TypeParam h(n);
  std::map<int, std::vector<int>> oracle;         // key -> vertices
  std::vector<int> key_of(n, -1);                 // -1 = not in heap
  Rng rng(31);

  auto oracle_insert = [&](int v, int k) {
    oracle[k].push_back(v);
    key_of[static_cast<std::size_t>(v)] = k;
  };
  auto oracle_erase = [&](int v) {
    const int k = key_of[static_cast<std::size_t>(v)];
    auto& vec = oracle[k];
    vec.erase(std::find(vec.begin(), vec.end(), v));
    if (vec.empty()) oracle.erase(k);
    key_of[static_cast<std::size_t>(v)] = -1;
  };

  int in_heap = 0;
  for (int step = 0; step < 20000; ++step) {
    const auto op = rng.below(10);
    if (op < 4) {  // insert a random absent vertex
      const int v = static_cast<int>(rng.below(n));
      if (key_of[static_cast<std::size_t>(v)] != -1 || h.contains(v)) continue;
      const int k = static_cast<int>(rng.below(100000)) + 1;
      h.insert(v, k);
      oracle_insert(v, k);
      ++in_heap;
    } else if (op < 8 && in_heap > 0) {  // decrease a random present vertex
      const int v = static_cast<int>(rng.below(n));
      const int cur = key_of[static_cast<std::size_t>(v)];
      if (cur == -1) continue;
      const int k = static_cast<int>(rng.below(static_cast<std::uint64_t>(cur) + 1));
      h.decrease_key(v, k);
      if (k < cur) {
        oracle_erase(v);
        oracle_insert(v, k);
      }
      EXPECT_EQ(h.key_of(v), std::min(cur, k));
    } else if (in_heap > 0) {  // extract min
      const auto e = h.extract_min();
      ASSERT_FALSE(oracle.empty());
      const int expect_key = oracle.begin()->first;
      EXPECT_EQ(e.key, expect_key) << "step " << step;
      EXPECT_EQ(key_of[static_cast<std::size_t>(e.vertex)], expect_key);
      oracle_erase(e.vertex);
      --in_heap;
    }
    ASSERT_EQ(h.size(), static_cast<std::size_t>(in_heap));
  }

  // Drain: remaining extractions must be globally sorted.
  int last = -1;
  while (!h.empty()) {
    const auto e = h.extract_min();
    EXPECT_GE(e.key, last);
    last = e.key;
    oracle_erase(e.vertex);
  }
  EXPECT_TRUE(oracle.empty());
}

TYPED_TEST(HeapTest, CascadeOfDecreasesKeepsHeapConsistent) {
  const int n = 100;
  TypeParam h(n);
  for (int v = 0; v < n; ++v) h.insert(v, 1000 + v);
  // Repeatedly make the current max the new min.
  for (int round = 0; round < 50; ++round) {
    h.decrease_key(n - 1 - round % n, round < 999 ? 999 - round : 0);
  }
  int last = std::numeric_limits<int>::min();
  for (int i = 0; i < n; ++i) {
    const auto e = h.extract_min();
    EXPECT_GE(e.key, last);
    last = e.key;
  }
}

TEST(HeapsWithDoubles, WorkWithFloatingKeys) {
  BinaryHeap<double> h(4);
  h.insert(0, 0.5);
  h.insert(1, 0.25);
  h.insert(2, inf<double>());
  EXPECT_EQ(h.extract_min().vertex, 1);
  h.decrease_key(2, 0.1);
  EXPECT_EQ(h.extract_min().vertex, 2);
  EXPECT_EQ(h.extract_min().vertex, 0);
}

TEST(TracedHeap, BinaryHeapReportsTraffic) {
  memsim::MachineConfig mc;
  mc.name = "t";
  mc.l1 = memsim::CacheConfig{1024, 64, 2};
  mc.l2 = memsim::CacheConfig{8192, 64, 4};
  memsim::CacheHierarchy h(mc);
  memsim::SimMem mem(h);
  BinaryHeap<int, memsim::SimMem> heap(100, mem);
  for (int v = 0; v < 100; ++v) heap.insert(v, 1000 - v);
  while (!heap.empty()) heap.extract_min();
  EXPECT_GT(h.stats().l1.accesses, 100u);
}

}  // namespace
}  // namespace cachegraph::pq
