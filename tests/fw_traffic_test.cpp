// Simulated-cache properties of the FW variants (Theorems 3.2/3.5 and
// the paper's simulation tables in miniature): the optimized variants
// must move asymptotically less data than the baseline once the matrix
// exceeds the cache.
#include <gtest/gtest.h>

#include "cachegraph/apsp/run.hpp"
#include "cachegraph/memsim/machine_configs.hpp"
#include "test_util.hpp"

namespace cachegraph::apsp {
namespace {

using memsim::CacheConfig;
using memsim::CacheHierarchy;
using memsim::MachineConfig;
using memsim::SimMem;
using memsim::SimStats;

/// Small hierarchy so that modest N already exceeds L2 and simulation
/// stays fast: 1 KB L1 / 8 KB L2.
MachineConfig tiny_machine() {
  MachineConfig m;
  m.name = "tiny";
  m.l1 = CacheConfig{1024, 32, 4};
  m.l2 = CacheConfig{8192, 64, 8};
  m.tlb_entries = 8;
  return m;
}

template <Weight W>
SimStats simulate(FwVariant v, std::size_t n, std::size_t block, const MachineConfig& machine,
                  std::uint64_t seed = 11) {
  const auto w = testutil::random_weight_matrix<W>(n, 0.3, seed);
  CacheHierarchy h(machine);
  SimMem mem(h);
  run_fw(v, w, n, block, mem);
  return h.stats();
}

TEST(FwTraffic, OptimizedVariantsReduceL2MissesVsBaseline) {
  // N=64 ints = 16 KB matrix = 2x the tiny L2. Block 8 -> 3 tiles =
  // 768 B fit in L1.
  const std::size_t n = 64, b = 8;
  const auto base = simulate<int>(FwVariant::kBaseline, n, b, tiny_machine());
  const auto tiled = simulate<int>(FwVariant::kTiledBdl, n, b, tiny_machine());
  const auto rec = simulate<int>(FwVariant::kRecursiveMorton, n, b, tiny_machine());

  EXPECT_LT(tiled.l2.misses, base.l2.misses / 2) << "tiled should at least halve L2 misses";
  EXPECT_LT(rec.l2.misses, base.l2.misses / 2) << "recursive should at least halve L2 misses";
  EXPECT_LT(tiled.memory_traffic_lines(), base.memory_traffic_lines());
  EXPECT_LT(rec.memory_traffic_lines(), base.memory_traffic_lines());
}

TEST(FwTraffic, OptimizedVariantsReduceL1Misses) {
  const std::size_t n = 64, b = 8;
  const auto base = simulate<int>(FwVariant::kBaseline, n, b, tiny_machine());
  const auto tiled = simulate<int>(FwVariant::kTiledBdl, n, b, tiny_machine());
  const auto rec = simulate<int>(FwVariant::kRecursiveMorton, n, b, tiny_machine());
  EXPECT_LT(tiled.l1.misses, base.l1.misses);
  EXPECT_LT(rec.l1.misses, base.l1.misses);
}

TEST(FwTraffic, TrafficScalesInverselyWithBlockSize) {
  // Theorem 3.5: traffic ~ N^3 / B while 3 B^2 fits the cache. Going
  // from B=4 to B=8 should cut memory traffic roughly in half
  // (tolerance for boundary effects).
  const std::size_t n = 64;
  const auto b4 = simulate<int>(FwVariant::kTiledBdl, n, 4, tiny_machine());
  const auto b8 = simulate<int>(FwVariant::kTiledBdl, n, 8, tiny_machine());
  const double ratio = static_cast<double>(b4.memory_traffic_lines()) /
                       static_cast<double>(b8.memory_traffic_lines());
  EXPECT_GT(ratio, 1.5) << "doubling B should nearly halve traffic";
  EXPECT_LT(ratio, 3.0);
}

TEST(FwTraffic, RecursiveIsCacheOblivious) {
  // The same recursive executable (fixed base block) must adapt to
  // different cache sizes: quadrupling L2 should cut its L2 misses
  // substantially *without retuning B* — and by at least as much,
  // proportionally, as it helps the baseline.
  const std::size_t n = 64, b = 4;
  MachineConfig small = tiny_machine();
  MachineConfig big = tiny_machine();
  big.l2.size_bytes *= 4;

  const auto rec_small = simulate<int>(FwVariant::kRecursiveMorton, n, b, small);
  const auto rec_big = simulate<int>(FwVariant::kRecursiveMorton, n, b, big);
  EXPECT_LT(rec_big.l2.misses, rec_small.l2.misses / 2);
}

TEST(FwTraffic, BdlBeatsRowMajorTilesOnL2) {
  // Table 2's effect: identical tiled compute, different layout. The
  // strided row-major tiles pollute L2 lines; BDL tiles are contiguous.
  const std::size_t n = 128, b = 8;
  const auto rm = simulate<int>(FwVariant::kTiledRowMajor, n, b, tiny_machine());
  const auto bdl = simulate<int>(FwVariant::kTiledBdl, n, b, tiny_machine());
  EXPECT_LT(bdl.l2.misses, rm.l2.misses);
}

TEST(FwTraffic, BdlReducesTlbMissesVsRowMajorTiles) {
  // The BDL's second advantage (Section 3.1.2.2): a tile touches B*B
  // contiguous bytes = few pages, instead of B separate rows = B pages.
  // Scaled-down geometry: 512 B pages and a 4-entry TLB make one row of
  // the 128x128 int matrix exactly one page, so a strided 8-row tile
  // needs 8 TLB entries while a contiguous BDL tile (256 B) needs one.
  MachineConfig m = tiny_machine();
  m.page_bytes = 512;
  m.tlb_entries = 4;
  const std::size_t n = 128, b = 8;
  const auto rm = simulate<int>(FwVariant::kTiledRowMajor, n, b, m);
  const auto bdl = simulate<int>(FwVariant::kTiledBdl, n, b, m);
  EXPECT_LT(bdl.tlb.misses, rm.tlb.misses / 4);
}

TEST(FwTraffic, MortonAndBdlAreClose) {
  // Tables 4/5: the two contiguous-tile layouts should be within ~15%
  // of each other (most reuse happens inside the final block, which is
  // contiguous in both).
  const std::size_t n = 64, b = 8;
  const auto bdl = simulate<int>(FwVariant::kRecursiveBdl, n, b, tiny_machine());
  const auto mor = simulate<int>(FwVariant::kRecursiveMorton, n, b, tiny_machine());
  const double lo = static_cast<double>(mor.l2.misses) * 0.5;
  const double hi = static_cast<double>(mor.l2.misses) * 2.0;
  EXPECT_GT(static_cast<double>(bdl.l2.misses), lo);
  EXPECT_LT(static_cast<double>(bdl.l2.misses), hi);
}

TEST(FwTraffic, AllVariantsTouchSameLogicalWorkload) {
  // Same number of kernel relaxations => L1 *accesses* of tiled/BDL and
  // recursive/Morton agree exactly (identical instrumented kernels over
  // identical padded sizes).
  const std::size_t n = 64, b = 8;
  const auto tiled = simulate<int>(FwVariant::kTiledBdl, n, b, tiny_machine());
  const auto rec = simulate<int>(FwVariant::kRecursiveBdl, n, b, tiny_machine());
  EXPECT_EQ(tiled.l1.accesses, rec.l1.accesses);
}

TEST(FwTraffic, TracedRunsProduceSameDistancesAsUntraced) {
  // Tracing must be observation-only: for every variant the simulated
  // run returns bit-identical distances to the plain run.
  const std::size_t n = 48, b = 8;
  const auto w = testutil::random_weight_matrix<int>(n, 0.3, 21);
  for (const FwVariant v :
       {FwVariant::kBaseline, FwVariant::kTiledRowMajor, FwVariant::kTiledBdl,
        FwVariant::kTiledMorton, FwVariant::kRecursiveRowMajor, FwVariant::kRecursiveBdl,
        FwVariant::kRecursiveMorton}) {
    const auto plain = run_fw(v, w, n, b);
    CacheHierarchy h(tiny_machine());
    SimMem mem(h);
    const auto traced = run_fw(v, w, n, b, mem);
    EXPECT_EQ(traced, plain) << variant_name(v);
    EXPECT_GT(h.stats().l1.accesses, 0u) << variant_name(v);
  }
}

TEST(FwTraffic, DeterministicAcrossRuns) {
  const std::size_t n = 32, b = 4;
  const auto s1 = simulate<int>(FwVariant::kTiledBdl, n, b, tiny_machine());
  const auto s2 = simulate<int>(FwVariant::kTiledBdl, n, b, tiny_machine());
  EXPECT_EQ(s1.l1.accesses, s2.l1.accesses);
  EXPECT_EQ(s1.l1.misses, s2.l1.misses);
  EXPECT_EQ(s1.l2.misses, s2.l2.misses);
  EXPECT_EQ(s1.mem_reads, s2.mem_reads);
  EXPECT_EQ(s1.mem_writebacks, s2.mem_writebacks);
}

}  // namespace
}  // namespace cachegraph::apsp
