// Tests for the workload generators: determinism, density accuracy,
// structural guarantees of the special-case bipartite inputs.
#include <gtest/gtest.h>

#include <set>

#include "cachegraph/graph/generators.hpp"
#include "cachegraph/mst/kruskal.hpp"

namespace cachegraph::graph {
namespace {

TEST(RandomDigraph, DeterministicForSeed) {
  const auto a = random_digraph<int>(100, 0.2, 42);
  const auto b = random_digraph<int>(100, 0.2, 42);
  EXPECT_EQ(a.edges(), b.edges());
  const auto c = random_digraph<int>(100, 0.2, 43);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(RandomDigraph, DensityIsAccurate) {
  for (const double d : {0.05, 0.3, 0.7}) {
    const auto g = random_digraph<int>(300, d, 7);
    EXPECT_NEAR(g.density(), d, 0.02) << "density " << d;
  }
}

TEST(RandomDigraph, NoSelfLoopsNoDuplicates) {
  const auto g = random_digraph<int>(80, 0.4, 5);
  std::set<std::pair<vertex_t, vertex_t>> seen;
  for (const auto& e : g.edges()) {
    EXPECT_NE(e.from, e.to);
    EXPECT_TRUE(seen.insert({e.from, e.to}).second) << "duplicate edge";
  }
}

TEST(RandomDigraph, WeightsInRange) {
  const auto g = random_digraph<int>(60, 0.3, 11, 5, 9);
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.weight, 5);
    EXPECT_LE(e.weight, 9);
  }
}

TEST(RandomDigraph, EdgeCases) {
  EXPECT_EQ(random_digraph<int>(0, 0.5, 1).num_edges(), 0);
  EXPECT_EQ(random_digraph<int>(1, 0.5, 1).num_edges(), 0);
  EXPECT_EQ(random_digraph<int>(10, 0.0, 1).num_edges(), 0);
  EXPECT_EQ(random_digraph<int>(10, 1.0, 1).num_edges(), 90);
}

TEST(RandomUndirected, ArcsComeInSymmetricPairs) {
  const auto g = random_undirected<int>(50, 0.2, 9);
  std::multiset<std::tuple<vertex_t, vertex_t, int>> arcs;
  for (const auto& e : g.edges()) arcs.insert({e.from, e.to, e.weight});
  for (const auto& e : g.edges()) {
    EXPECT_TRUE(arcs.contains({e.to, e.from, e.weight}))
        << "missing reverse of " << e.from << "->" << e.to;
  }
}

TEST(RandomUndirected, EnsureConnectedSpansAllVertices) {
  // Density 0 + connectivity: exactly the Hamiltonian path (2(n-1) arcs),
  // and Kruskal spans all N vertices.
  const auto g = random_undirected<int>(64, 0.0, 17, 1, 100, true);
  EXPECT_EQ(g.num_edges(), 2 * 63);
  const auto mst = mst::kruskal(g);
  EXPECT_EQ(mst.tree_edges.size(), 63u);
}

TEST(RandomUndirected, WithoutConnectivityRespectsDensityOnly) {
  const auto g = random_undirected<int>(200, 0.1, 23, 1, 100, false);
  // Arc count ~= 2 * density * n(n-1)/2.
  const double expected = 0.1 * 200.0 * 199.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.15);
}

TEST(RandomUndirected, TriangularIndexInversionIsExact) {
  // Density 1 without connectivity must produce every pair exactly once.
  const auto g = random_undirected<int>(40, 1.0, 3, 1, 9, false);
  EXPECT_EQ(g.num_edges(), 40 * 39);
  std::set<std::pair<vertex_t, vertex_t>> seen;
  for (const auto& e : g.edges()) {
    EXPECT_TRUE(seen.insert({e.from, e.to}).second);
  }
}

TEST(RandomBipartite, DeterministicAndInRange) {
  const auto a = random_bipartite(64, 64, 0.1, 5);
  const auto b = random_bipartite(64, 64, 0.1, 5);
  EXPECT_EQ(a.edges, b.edges);
  for (const auto& [l, r] : a.edges) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 64);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 64);
  }
  EXPECT_NEAR(a.density(), 0.1, 0.03);
}

TEST(BestCaseBipartite, ContainsChunkLocalPerfectMatching) {
  const auto g = best_case_bipartite(64, 4, 0.2, 7);
  const vertex_t chunk = 64 / 4;
  // Every i->i edge exists, and every edge stays inside its chunk pair.
  std::set<std::pair<vertex_t, vertex_t>> edges(g.edges.begin(), g.edges.end());
  for (vertex_t i = 0; i < 64; ++i) EXPECT_TRUE(edges.contains({i, i}));
  for (const auto& [l, r] : g.edges) {
    EXPECT_EQ(l / chunk, r / chunk) << "edge escapes its chunk";
  }
}

TEST(WorstCaseBipartite, NoEdgeIsChunkInternal) {
  const auto g = worst_case_bipartite(64, 4, 0.3, 9);
  const vertex_t chunk = 64 / 4;
  EXPECT_FALSE(g.edges.empty());
  for (const auto& [l, r] : g.edges) {
    EXPECT_NE(l / chunk, r / chunk) << "edge must cross chunks";
    EXPECT_EQ((l / chunk + 1) % 4, r / chunk);
  }
}

TEST(Generators, RejectBadParameters) {
  EXPECT_THROW(random_digraph<int>(10, -0.1, 1), PreconditionError);
  EXPECT_THROW(random_digraph<int>(10, 1.1, 1), PreconditionError);
  EXPECT_THROW(best_case_bipartite(10, 3, 0.1, 1), PreconditionError);  // 10 % 3 != 0
  EXPECT_THROW(worst_case_bipartite(10, 1, 0.1, 1), PreconditionError); // needs >= 2 parts
}

}  // namespace
}  // namespace cachegraph::graph
