// cachegraph::store — the out-of-core blocked graph store.
//
// The load-bearing contract: every answer computed through an
// OutOfCoreGraph is memcmp-equal to the in-memory AdjacencyArray
// answer, across both read backends, cache budgets from one frame to
// all-resident, and thread counts — and a corrupted or truncated file
// surfaces DATA_LOSS naming the block, never a wrong answer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cachegraph/analytics/pagerank.hpp"
#include "cachegraph/analytics/wcc.hpp"
#include "cachegraph/common/atomic_file.hpp"
#include "cachegraph/graph/adjacency_array.hpp"
#include "cachegraph/graph/generators.hpp"
#include "cachegraph/memsim/block_io.hpp"
#include "cachegraph/obs/metrics.hpp"
#include "cachegraph/query/engine.hpp"
#include "cachegraph/sssp/batch_engine.hpp"
#include "cachegraph/sssp/dijkstra.hpp"
#include "cachegraph/store/block_cache.hpp"
#include "cachegraph/store/blocked_file.hpp"
#include "cachegraph/store/out_of_core_graph.hpp"
#include "cachegraph/store/writer.hpp"

namespace cachegraph {
namespace {

using graph::AdjacencyArray;
using graph::EdgeListGraph;
using graph::Neighbor;
using reliability::StatusCode;
using store::Backend;

constexpr Backend kBackends[] = {Backend::kPread, Backend::kMmap};

std::filesystem::path temp_file(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "cachegraph_store_test";
  std::filesystem::create_directories(dir);
  return dir / (std::string(info->test_suite_name()) + "_" + info->name() + "_" + name);
}

/// An opened out-of-core view plus its owning parts.
struct OnDisk {
  std::unique_ptr<store::BlockedFile<int>> file;
  std::unique_ptr<store::BlockCache> cache;
  std::unique_ptr<store::OutOfCoreGraph<int>> graph;
};

OnDisk open_graph(const std::filesystem::path& path, Backend backend, std::size_t budget,
                  std::size_t shards = 0) {
  OnDisk d;
  auto file = store::BlockedFile<int>::open(path, backend);
  EXPECT_TRUE(file.has_value()) << file.status().to_string();
  d.file = std::move(file.value());
  d.cache = std::make_unique<store::BlockCache>(
      d.file->source(), d.file->block_bytes(), d.file->num_blocks(),
      store::BlockCache::Config{budget, shards});
  d.graph = std::make_unique<store::OutOfCoreGraph<int>>(*d.file, *d.cache);
  return d;
}

/// Budgets the acceptance criteria sweep: one frame, 10%, 50%, all.
std::vector<std::size_t> budget_ladder(std::uint32_t num_blocks) {
  const auto pct = [&](std::size_t p) -> std::size_t {
    return std::max<std::size_t>(1, num_blocks * p / 100);
  };
  return {1, pct(10), pct(50), std::max<std::uint32_t>(1, num_blocks)};
}

void expect_identical_reads(const AdjacencyArray<int>& mem_rep,
                            const store::OutOfCoreGraph<int>& ooc) {
  ASSERT_EQ(ooc.num_vertices(), mem_rep.num_vertices());
  ASSERT_EQ(ooc.num_edges(), mem_rep.num_edges());
  memsim::NullMem mem;
  for (vertex_t v = 0; v < mem_rep.num_vertices(); ++v) {
    const auto want = mem_rep.neighbors(v);
    std::vector<Neighbor<int>> got;
    ooc.for_neighbors(v, mem, [&](const Neighbor<int>& nb) { got.push_back(nb); });
    ASSERT_EQ(got.size(), want.size()) << "vertex " << v;
    if (!want.empty()) {
      ASSERT_EQ(std::memcmp(got.data(), want.data(), want.size() * sizeof(Neighbor<int>)), 0)
          << "vertex " << v;
    }
    // Scoped per vertex: a PinnedRun held across the next vertex's
    // for_neighbors fault would hold a pin while faulting — the one
    // thing the deadlock-freedom contract forbids (and a 1-frame
    // budget would in fact deadlock).
    typename store::OutOfCoreGraph<int>::PinnedRun run;
    const auto span = ooc.neighbors(v, run);
    ASSERT_EQ(span.size(), want.size()) << "vertex " << v;
    if (!want.empty()) {
      ASSERT_EQ(std::memcmp(span.data(), want.data(), want.size() * sizeof(Neighbor<int>)), 0)
          << "vertex " << v << " (span surface)";
    }
  }
}

void flip_byte(const std::filesystem::path& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

// ------------------------------------------------------ format basics

TEST(StoreFormat, WriteOpenRoundTripsMetadata) {
  const auto el = graph::random_digraph<int>(300, 0.03, 77);
  const AdjacencyArray<int> rep(el);
  const auto path = temp_file("meta.cgb");
  store::WriteOptions opt;
  opt.block_bytes = 1024;
  ASSERT_TRUE(store::write_blocked(path, rep, opt).is_ok());
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp")) << "tmp must not survive";

  for (const Backend be : kBackends) {
    auto file = store::BlockedFile<int>::open(path, be);
    ASSERT_TRUE(file.has_value()) << file.status().to_string();
    EXPECT_EQ((*file)->num_vertices(), rep.num_vertices());
    EXPECT_EQ((*file)->num_records(), rep.num_edges());
    EXPECT_EQ((*file)->block_bytes(), 1024u);
    EXPECT_GT((*file)->num_blocks(), 1u);
    for (vertex_t v = 0; v <= rep.num_vertices(); ++v) {
      EXPECT_EQ((*file)->record_offset(v), rep.record_offset(v));
    }
  }
}

TEST(StoreFormat, RejectsBadBlockSizes) {
  const AdjacencyArray<int> rep{EdgeListGraph<int>(2)};
  const auto path = temp_file("bad.cgb");
  store::WriteOptions opt;
  opt.block_bytes = 16;  // below minimum
  EXPECT_EQ(store::write_blocked(path, rep, opt).code(), StatusCode::kInvalidArgument);
}

TEST(StoreFormat, EmptyGraphRoundTrips) {
  const AdjacencyArray<int> rep{EdgeListGraph<int>(0)};
  const auto path = temp_file("empty.cgb");
  ASSERT_TRUE(store::write_blocked(path, rep).is_ok());
  auto d = open_graph(path, Backend::kPread, 4);
  EXPECT_EQ(d.graph->num_vertices(), 0);
  EXPECT_EQ(d.graph->num_edges(), 0);
  EXPECT_EQ(d.file->num_blocks(), 0u);
}

TEST(StoreFormat, OverwriteReplacesPreviousFile) {
  const auto path = temp_file("overwrite.cgb");
  const AdjacencyArray<int> small{graph::random_digraph<int>(20, 0.2, 1)};
  const AdjacencyArray<int> big{graph::random_digraph<int>(200, 0.05, 2)};
  ASSERT_TRUE(store::write_blocked(path, big).is_ok());
  ASSERT_TRUE(store::write_blocked(path, small).is_ok());
  auto d = open_graph(path, Backend::kPread, 4);
  EXPECT_EQ(d.graph->num_vertices(), 20);
  expect_identical_reads(small, *d.graph);
}

// ------------------------------------- differential: raw neighbor reads

TEST(StoreDifferential, NeighborReadsAcrossBackendsAndBudgets) {
  const auto el = graph::random_digraph<int>(400, 0.03, 901);
  const AdjacencyArray<int> rep(el);
  const auto path = temp_file("diff.cgb");
  store::WriteOptions opt;
  opt.block_bytes = 512;  // small blocks: plenty of faults and refills
  ASSERT_TRUE(store::write_blocked(path, rep, opt).is_ok());
  for (const Backend be : kBackends) {
    auto probe = store::BlockedFile<int>::open(path, be);
    ASSERT_TRUE(probe.has_value());
    for (const std::size_t budget : budget_ladder((*probe)->num_blocks())) {
      auto d = open_graph(path, be, budget);
      expect_identical_reads(rep, *d.graph);
      const auto st = d.cache->stats();
      EXPECT_GT(st.misses, 0u);
      EXPECT_EQ(st.pinned_now, 0u) << "all pins released";
    }
  }
}

TEST(StoreDifferential, EdgeCaseGraphs) {
  // The AdjacencyArray edge cases the serializer must preserve: empty,
  // isolated vertices, an oversized run spanning blocks, duplicate arcs.
  std::vector<EdgeListGraph<int>> graphs;
  graphs.emplace_back(0);
  {
    EdgeListGraph<int> g(6);  // only vertex 3 has out-edges
    g.add_edge(3, 0, 7);
    g.add_edge(3, 5, 9);
    graphs.push_back(std::move(g));
  }
  {
    EdgeListGraph<int> g(300);  // vertex 0's run >> one 256-byte block
    for (vertex_t v = 1; v < 300; ++v) g.add_edge(0, v, v);
    g.add_edge(150, 0, 1);
    graphs.push_back(std::move(g));
  }
  {
    EdgeListGraph<int> g(3);  // duplicate + parallel arcs and self-loops
    g.add_edge(0, 1, 5);
    g.add_edge(0, 1, 5);
    g.add_edge(0, 1, 8);
    g.add_edge(2, 2, 1);
    g.add_edge(2, 2, 1);
    graphs.push_back(std::move(g));
  }
  int idx = 0;
  for (const auto& el : graphs) {
    const AdjacencyArray<int> rep(el);
    const auto path = temp_file("edge" + std::to_string(idx++) + ".cgb");
    store::WriteOptions opt;
    opt.block_bytes = 256;
    ASSERT_TRUE(store::write_blocked(path, rep, opt).is_ok());
    for (const Backend be : kBackends) {
      auto d = open_graph(path, be, 2);
      expect_identical_reads(rep, *d.graph);
    }
  }
}

TEST(StoreDifferential, OversizedRunSpansBlocksAndOneFrameSuffices) {
  // A single vertex whose run needs many blocks must stream through a
  // one-frame cache (pins are scoped per block — the deadlock-freedom
  // contract).
  EdgeListGraph<int> el(4000);
  for (vertex_t v = 1; v < 4000; ++v) el.add_edge(0, v, v ^ 5);
  const AdjacencyArray<int> rep(el);
  const auto path = temp_file("span.cgb");
  store::WriteOptions opt;
  opt.block_bytes = 256;  // 28 records per block → ~143 blocks for one run
  ASSERT_TRUE(store::write_blocked(path, rep, opt).is_ok());
  auto d = open_graph(path, Backend::kPread, 1);
  EXPECT_EQ(d.cache->capacity_blocks(), 1u);
  EXPECT_EQ(d.cache->num_shards(), 1u) << "1-frame budget must collapse to one shard";
  expect_identical_reads(rep, *d.graph);
  EXPECT_GE(d.cache->stats().evictions, d.file->num_blocks() - 1);
}

// ----------------------------------- differential: engines & analytics

TEST(StoreDifferential, QueryEngineAnswersMatchInMemoryAcrossThreads) {
  const auto el = graph::random_digraph<int>(220, 0.04, 555);
  const AdjacencyArray<int> rep(el);
  const auto path = temp_file("engine.cgb");
  store::WriteOptions opt;
  opt.block_bytes = 512;
  ASSERT_TRUE(store::write_blocked(path, rep, opt).is_ok());

  std::vector<query::Request<int>> reqs;
  for (vertex_t s = 0; s < 220; s += 7) {
    reqs.emplace_back(query::FullSSSP{s});
    reqs.emplace_back(query::PointToPoint{s, static_cast<vertex_t>((s * 13 + 1) % 220)});
    reqs.emplace_back(query::KNearest{s, 12});
    reqs.emplace_back(query::Bounded<int>{s, 40});
  }
  const std::size_t m = reqs.size();

  // Oracle: the in-memory engine, serial.
  query::QueryEngine<AdjacencyArray<int>> mem_engine(rep);
  std::vector<std::vector<int>> want_dist(m);
  std::vector<std::vector<vertex_t>> want_parent(m);
  {
    parallel::TaskPool one(1);
    mem_engine.run(std::span<const query::Request<int>>(reqs), one,
                   [&](std::size_t i, const query::Request<int>&, const auto&, const auto& sc) {
                     want_dist[i] = sc.dist();
                     want_parent[i] = sc.parent();
                   });
  }

  for (const Backend be : kBackends) {
    auto probe = store::BlockedFile<int>::open(path, be);
    ASSERT_TRUE(probe.has_value());
    for (const std::size_t budget : budget_ladder((*probe)->num_blocks())) {
      for (const int threads : {1, 2, 4, 8}) {
        auto d = open_graph(path, be, budget);
        query::QueryEngine<store::OutOfCoreGraph<int>> engine(*d.graph);
        parallel::TaskPool pool(threads);
        std::vector<char> checked(m, 0);
        engine.run(std::span<const query::Request<int>>(reqs), pool,
                   [&](std::size_t i, const query::Request<int>&, const auto& resp,
                       const auto& sc) {
                     EXPECT_TRUE(resp.status.is_ok());
                     EXPECT_EQ(std::memcmp(sc.dist().data(), want_dist[i].data(),
                                           want_dist[i].size() * sizeof(int)),
                               0)
                         << "request " << i;
                     EXPECT_EQ(std::memcmp(sc.parent().data(), want_parent[i].data(),
                                           want_parent[i].size() * sizeof(vertex_t)),
                               0)
                         << "request " << i;
                     checked[i] = 1;
                   });
        for (std::size_t i = 0; i < m; ++i) {
          EXPECT_TRUE(checked[i]) << "request " << i << " never delivered";
        }
        EXPECT_EQ(d.cache->stats().pinned_now, 0u)
            << "backend=" << backend_name(be) << " budget=" << budget
            << " threads=" << threads;
      }
    }
  }
}

TEST(StoreDifferential, BatchEngineMatchesInMemory) {
  const auto el = graph::random_digraph<int>(200, 0.05, 4242);
  const AdjacencyArray<int> rep(el);
  const auto path = temp_file("batch.cgb");
  store::WriteOptions opt;
  opt.block_bytes = 512;
  ASSERT_TRUE(store::write_blocked(path, rep, opt).is_ok());

  std::vector<vertex_t> sources;
  for (vertex_t s = 0; s < 200; s += 11) sources.push_back(s);
  const std::size_t m = sources.size();

  sssp::BatchEngine<int> mem_engine(rep);
  std::vector<std::vector<int>> want(m);
  {
    parallel::TaskPool one(1);
    mem_engine.run_batch(sources, one,
                         [&](std::size_t i, vertex_t, const auto& sc) { want[i] = sc.dist(); });
  }

  auto d = open_graph(path, Backend::kPread, 8);
  sssp::BatchEngine<int, pq::BinaryHeap, store::OutOfCoreGraph<int>> engine(*d.graph);
  parallel::TaskPool pool(4);
  std::vector<char> checked(m, 0);
  engine.run_batch(sources, pool, [&](std::size_t i, vertex_t, const auto& sc) {
    EXPECT_EQ(std::memcmp(sc.dist().data(), want[i].data(), want[i].size() * sizeof(int)), 0)
        << "source index " << i;
    checked[i] = 1;
  });
  for (std::size_t i = 0; i < m; ++i) EXPECT_TRUE(checked[i]);
}

TEST(StoreDifferential, AnalyticsMatchInMemory) {
  const auto el = graph::random_digraph<int>(150, 0.05, 31337);
  const AdjacencyArray<int> rep(el);
  const auto path = temp_file("analytics.cgb");
  store::WriteOptions opt;
  opt.block_bytes = 512;
  ASSERT_TRUE(store::write_blocked(path, rep, opt).is_ok());
  auto d = open_graph(path, Backend::kMmap, 6);

  analytics::PageRankParams pr;
  pr.max_iters = 15;
  pr.tol = 0.0;
  std::vector<double> want_rank(150, -1.0), got_rank(150, -2.0);
  {
    analytics::Workspace<AdjacencyArray<int>> ws(rep);
    analytics::Scratch sc;
    (void)analytics::pagerank(rep, ws, sc, pr, want_rank, nullptr, analytics::Budget{});
  }
  {
    analytics::Workspace<store::OutOfCoreGraph<int>> ws(*d.graph);
    analytics::Scratch sc;
    (void)analytics::pagerank(*d.graph, ws, sc, pr, got_rank, nullptr, analytics::Budget{});
  }
  EXPECT_EQ(std::memcmp(got_rank.data(), want_rank.data(), 150 * sizeof(double)), 0)
      << "pagerank must be bit-identical, not just close";

  std::vector<vertex_t> want_cc(150, -7), got_cc(150, -8);
  {
    analytics::Workspace<AdjacencyArray<int>> ws(rep);
    analytics::Scratch sc;
    (void)analytics::wcc(rep, ws, sc, {}, want_cc, nullptr, analytics::Budget{});
  }
  {
    analytics::Workspace<store::OutOfCoreGraph<int>> ws(*d.graph);
    analytics::Scratch sc;
    (void)analytics::wcc(*d.graph, ws, sc, {}, got_cc, nullptr, analytics::Budget{});
  }
  EXPECT_EQ(got_cc, want_cc);
}

// --------------------------------------------------- cache mechanics

TEST(BlockCache, ColdScanMissesThenResidentScanHits) {
  const auto el = graph::random_digraph<int>(200, 0.05, 9);
  const AdjacencyArray<int> rep(el);
  const auto path = temp_file("lru.cgb");
  store::WriteOptions opt;
  opt.block_bytes = 512;
  ASSERT_TRUE(store::write_blocked(path, rep, opt).is_ok());
  auto d = open_graph(path, Backend::kPread, SIZE_MAX);  // clamped to num_blocks
  EXPECT_EQ(d.cache->capacity_blocks(), d.file->num_blocks());

  memsim::NullMem mem;
  const auto scan = [&] {
    for (vertex_t v = 0; v < rep.num_vertices(); ++v) {
      d.graph->for_neighbors(v, mem, [](const Neighbor<int>&) {});
    }
  };
  scan();
  auto st = d.cache->stats();
  EXPECT_EQ(st.misses, d.file->num_blocks());
  EXPECT_EQ(st.evictions, 0u);
  const auto hits_after_cold = st.hits;
  scan();
  st = d.cache->stats();
  EXPECT_EQ(st.misses, d.file->num_blocks()) << "warm scan must not fault";
  EXPECT_GT(st.hits, hits_after_cold);
  EXPECT_EQ(st.cached_blocks, d.file->num_blocks());
  EXPECT_GE(st.pinned_high_water, 1u);
  EXPECT_EQ(st.pinned_now, 0u);

  d.cache->publish_gauges();
  auto& mr = obs::MetricsRegistry::instance();
  EXPECT_EQ(mr.gauge("store.cache.capacity_blocks").value(),
            static_cast<double>(d.file->num_blocks()));
  EXPECT_GT(mr.gauge("store.cache.hit_rate").value(), 0.0);
}

TEST(BlockCache, TinyBudgetEvictsAndStaysCorrect) {
  const auto el = graph::random_digraph<int>(200, 0.05, 10);
  const AdjacencyArray<int> rep(el);
  const auto path = temp_file("evict.cgb");
  store::WriteOptions opt;
  opt.block_bytes = 512;
  ASSERT_TRUE(store::write_blocked(path, rep, opt).is_ok());
  auto d = open_graph(path, Backend::kPread, 2);
  expect_identical_reads(rep, *d.graph);
  expect_identical_reads(rep, *d.graph);  // second pass: evictions galore
  const auto st = d.cache->stats();
  EXPECT_GT(st.evictions, 0u);
  EXPECT_GT(st.misses, st.hits == 0 ? 0u : 0u);
}

TEST(BlockIoSim, PredictsCacheFaultsExactly) {
  const auto el = graph::random_digraph<int>(300, 0.04, 2024);
  const AdjacencyArray<int> rep(el);
  const auto path = temp_file("sim.cgb");
  store::WriteOptions opt;
  opt.block_bytes = 512;
  ASSERT_TRUE(store::write_blocked(path, rep, opt).is_ok());
  auto probe = store::BlockedFile<int>::open(path, Backend::kPread);
  ASSERT_TRUE(probe.has_value());
  const std::uint32_t blocks = (*probe)->num_blocks();

  for (const std::size_t budget : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                                   static_cast<std::size_t>(blocks)}) {
    auto d = open_graph(path, Backend::kPread, budget);
    memsim::BlockIoSim sim({d.cache->capacity_blocks(), d.cache->num_shards()});
    ASSERT_EQ(sim.shards(), d.cache->num_shards());
    d.graph->attach_sim(&sim);
    memsim::NullMem mem;
    // A mixed workload: two full scans plus strided revisits.
    for (int pass = 0; pass < 2; ++pass) {
      for (vertex_t v = 0; v < rep.num_vertices(); ++v) {
        d.graph->for_neighbors(v, mem, [](const Neighbor<int>&) {});
      }
    }
    for (vertex_t v = 0; v < rep.num_vertices(); v += 17) {
      d.graph->for_neighbors(v, mem, [](const Neighbor<int>&) {});
    }
    const auto cache_stats = d.cache->stats();
    const auto sim_stats = sim.stats();
    EXPECT_EQ(sim_stats.accesses, cache_stats.hits + cache_stats.misses) << "budget " << budget;
    EXPECT_EQ(sim_stats.faults, cache_stats.misses) << "budget " << budget;
    EXPECT_EQ(sim_stats.evictions, cache_stats.evictions) << "budget " << budget;
  }
}

// ------------------------------------------------- corruption handling

TEST(StoreCorruption, TruncatedFileIsDataLossAtOpen) {
  const AdjacencyArray<int> rep{graph::random_digraph<int>(100, 0.05, 3)};
  const auto path = temp_file("trunc.cgb");
  ASSERT_TRUE(store::write_blocked(path, rep).is_ok());
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  for (const Backend be : kBackends) {
    const auto file = store::BlockedFile<int>::open(path, be);
    ASSERT_FALSE(file.has_value());
    EXPECT_EQ(file.status().code(), StatusCode::kDataLoss) << file.status().to_string();
  }
}

TEST(StoreCorruption, CorruptFooterIsDataLossAtOpen) {
  const AdjacencyArray<int> rep{graph::random_digraph<int>(100, 0.05, 4)};
  const auto path = temp_file("footer.cgb");
  ASSERT_TRUE(store::write_blocked(path, rep).is_ok());
  flip_byte(path, std::filesystem::file_size(path) - 64);
  const auto file = store::BlockedFile<int>::open(path, Backend::kPread);
  ASSERT_FALSE(file.has_value());
  EXPECT_EQ(file.status().code(), StatusCode::kDataLoss);
}

TEST(StoreCorruption, CorruptHeaderChecksumIsDataLossWrongMagicIsInvalid) {
  const AdjacencyArray<int> rep{graph::random_digraph<int>(50, 0.1, 5)};
  const auto path = temp_file("header.cgb");
  ASSERT_TRUE(store::write_blocked(path, rep).is_ok());
  flip_byte(path, 20);  // inside the header, after the magic
  auto file = store::BlockedFile<int>::open(path, Backend::kPread);
  ASSERT_FALSE(file.has_value());
  EXPECT_EQ(file.status().code(), StatusCode::kDataLoss);

  flip_byte(path, 20);  // restore
  flip_byte(path, 0);   // break the magic
  file = store::BlockedFile<int>::open(path, Backend::kPread);
  ASSERT_FALSE(file.has_value());
  EXPECT_EQ(file.status().code(), StatusCode::kInvalidArgument);
}

TEST(StoreCorruption, WrongWeightKindIsInvalidArgument) {
  const AdjacencyArray<int> rep{graph::random_digraph<int>(50, 0.1, 6)};
  const auto path = temp_file("kind.cgb");
  ASSERT_TRUE(store::write_blocked(path, rep).is_ok());
  const auto file = store::BlockedFile<double>::open(path, Backend::kPread);
  ASSERT_FALSE(file.has_value());
  EXPECT_EQ(file.status().code(), StatusCode::kInvalidArgument);
}

TEST(StoreCorruption, CorruptBlockIsDataLossNamingTheBlockNeverAWrongAnswer) {
  const auto el = graph::random_digraph<int>(150, 0.04, 7);
  const AdjacencyArray<int> rep(el);
  const auto path = temp_file("block.cgb");
  store::WriteOptions opt;
  opt.block_bytes = 512;
  ASSERT_TRUE(store::write_blocked(path, rep, opt).is_ok());

  // Corrupt the block holding vertex 42's run (payload byte).
  std::uint32_t victim = store::kNoBlock;
  {
    auto probe = store::BlockedFile<int>::open(path, Backend::kPread);
    ASSERT_TRUE(probe.has_value());
    for (vertex_t v = 42; v < 150; ++v) {
      if ((victim = (*probe)->start_block(v)) != store::kNoBlock) break;
    }
    ASSERT_NE(victim, store::kNoBlock);
  }
  flip_byte(path, sizeof(store::FileHeader) + std::uint64_t{victim} * 512 + 40);

  for (const Backend be : kBackends) {
    auto d = open_graph(path, be, 8);
    query::QueryEngine<store::OutOfCoreGraph<int>> engine(*d.graph);
    std::size_t data_loss_seen = 0;
    for (vertex_t s = 0; s < 150; s += 3) {
      const auto r = engine.try_serve(
          query::Request<int>{query::FullSSSP{s}}, {},
          [&](const auto& resp, const auto& sc) {
            if (!resp.status.is_ok()) return;
            // Any OK answer must be the exact in-memory answer.
            const auto oracle = sssp::dijkstra(rep, s);
            EXPECT_EQ(std::memcmp(sc.dist().data(), oracle.dist.data(),
                                  oracle.dist.size() * sizeof(int)),
                      0)
                << "source " << s;
          });
      if (!r.status.is_ok()) {
        EXPECT_EQ(r.status.code(), StatusCode::kDataLoss) << r.status.to_string();
        EXPECT_NE(r.status.message().find("block " + std::to_string(victim)),
                  std::string::npos)
            << "message must name the block: " << r.status.message();
        ++data_loss_seen;
      }
    }
    EXPECT_GT(data_loss_seen, 0u) << "the corrupt block was never touched — weak test";
    EXPECT_EQ(d.cache->stats().pinned_now, 0u) << "failed fills must not leak pins";
  }
}

TEST(StoreCorruption, DirectIterationThrowsDataLossError) {
  const auto el = graph::random_digraph<int>(60, 0.2, 8);
  const AdjacencyArray<int> rep(el);
  const auto path = temp_file("throw.cgb");
  store::WriteOptions opt;
  opt.block_bytes = 512;
  ASSERT_TRUE(store::write_blocked(path, rep, opt).is_ok());
  flip_byte(path, sizeof(store::FileHeader) + 100);  // block 0 payload
  auto d = open_graph(path, Backend::kPread, 4);
  memsim::NullMem mem;
  vertex_t first_nonempty = 0;
  while (rep.out_degree(first_nonempty) == 0) ++first_nonempty;
  EXPECT_THROW(
      d.graph->for_neighbors(first_nonempty, mem, [](const Neighbor<int>&) {}),
      reliability::DataLossError);
}

// ------------------------------------------------------- concurrency

TEST(StoreConcurrency, RawPinHammerServesConsistentBytes) {
  const auto el = graph::random_digraph<int>(300, 0.04, 11);
  const AdjacencyArray<int> rep(el);
  const auto path = temp_file("hammer.cgb");
  store::WriteOptions opt;
  opt.block_bytes = 512;
  ASSERT_TRUE(store::write_blocked(path, rep, opt).is_ok());
  auto d = open_graph(path, Backend::kPread, 4);  // far fewer frames than blocks

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      memsim::NullMem mem;
      std::uint64_t state = std::uint64_t{0x243f6a8885a308d3u} + static_cast<std::uint64_t>(t);
      for (int iter = 0; iter < 400; ++iter) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        const auto v = static_cast<vertex_t>(state % 300);
        const auto want = rep.neighbors(v);
        std::size_t i = 0;
        d.graph->for_neighbors(v, mem, [&](const Neighbor<int>& nb) {
          if (i >= want.size() || std::memcmp(&nb, &want[i], sizeof(nb)) != 0) {
            failed.store(true);
          }
          ++i;
        });
        if (i != want.size()) failed.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  const auto st = d.cache->stats();
  EXPECT_EQ(st.pinned_now, 0u);
  EXPECT_GT(st.hits + st.misses, 0u);
}

// --------------------------------------------- durable write helper

TEST(AtomicFile, WriteFileDurableCommitsAtomically) {
  const auto path = temp_file("durable.txt");
  ASSERT_TRUE(io::write_file_durable(path.string(), "first").is_ok());
  ASSERT_TRUE(io::write_file_durable(path.string(), "second longer content").is_ok());
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  std::ifstream in(path);
  std::string got((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "second longer content");
}

TEST(AtomicFile, WriteIntoMissingDirectoryFails) {
  const auto path = temp_file("no_such_dir") / "sub" / "x.txt";
  const auto st = io::write_file_durable(path.string(), "content");
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace cachegraph
